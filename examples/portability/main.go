// Portability — the paper's Section I claim, executed: "the techniques
// presented for Pastry can be directly applied to Tapestry and PGrid,
// and the techniques for Chord are applicable to SkipGraphs."
//
// This example builds a skip graph, a P-Grid and a Tapestry mesh over
// the same peer population and the same zipf-skewed lookup mix, then
// runs the *Chord* selection algorithm against the skip graph's
// geometric neighbor ladder and the *Pastry* selection algorithm
// against the P-Grid's prefix references and Tapestry's hex-digit
// routing tables — no changes to any algorithm — and reports the
// measured hop reductions.
//
//	go run ./examples/portability
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"peercache/internal/core"
	"peercache/internal/id"
	"peercache/internal/pgrid"
	"peercache/internal/randx"
	"peercache/internal/skipgraph"
	"peercache/internal/tapestry"
)

const (
	bits = 20
	n    = 400
	k    = 9
)

func main() {
	seed := flag.Int64("seed", 17, "random seed for peer population and lookup mix")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	raw := randx.UniqueIDs(rng, n, 1<<bits)
	ids := make([]id.ID, n)
	for i, x := range raw {
		ids[i] = id.ID(x)
	}

	// One zipf-skewed destination mix shared by both overlays.
	alias := randx.NewAlias(randx.ZipfWeights(n-1, 1.2))
	perm := rng.Perm(n - 1)
	src := ids[0]
	mix := make([]id.ID, 5000)
	freqs := map[id.ID]float64{}
	for i := range mix {
		mix[i] = ids[1+perm[alias.Sample(rng)]]
		freqs[mix[i]]++
	}
	var peers []core.Peer
	for p, f := range freqs {
		peers = append(peers, core.Peer{ID: p, Freq: f})
	}

	// Skip graph + Chord selection.
	sg, err := skipgraph.Build(skipgraph.Config{Space: id.NewSpace(bits), Seed: 4}, ids)
	if err != nil {
		log.Fatal(err)
	}
	sgBefore := measure(func(d id.ID) (int, bool) {
		r, err := sg.Route(src, d)
		return r.Hops, err == nil && r.OK
	}, mix)
	sel, err := core.SelectChordFast(sg.Space(), src, sg.Node(src).Neighbors(), peers, k)
	if err != nil {
		log.Fatal(err)
	}
	if err := sg.SetAux(src, sel.Aux); err != nil {
		log.Fatal(err)
	}
	sgAfter := measure(func(d id.ID) (int, bool) {
		r, err := sg.Route(src, d)
		return r.Hops, err == nil && r.OK
	}, mix)

	// P-Grid + Pastry selection.
	pg, err := pgrid.Build(pgrid.Config{Space: id.NewSpace(bits), Seed: 4}, ids)
	if err != nil {
		log.Fatal(err)
	}
	pgBefore := measure(func(d id.ID) (int, bool) {
		r, err := pg.Route(src, d)
		return r.Hops, err == nil && r.OK
	}, mix)
	psel, err := core.SelectPastryGreedy(pg.Space(), pg.Node(src).References(), peers, k)
	if err != nil {
		log.Fatal(err)
	}
	if err := pg.SetAux(src, psel.Aux); err != nil {
		log.Fatal(err)
	}
	pgAfter := measure(func(d id.ID) (int, bool) {
		r, err := pg.Route(src, d)
		return r.Hops, err == nil && r.OK
	}, mix)

	// Tapestry (hex digits) + digit-aware Pastry selection.
	tp, err := tapestry.Build(tapestry.Config{Space: id.NewSpace(bits), DigitBits: 4}, ids)
	if err != nil {
		log.Fatal(err)
	}
	tpBefore := measure(func(d id.ID) (int, bool) {
		r, err := tp.Route(src, d)
		return r.Hops, err == nil && r.OK
	}, mix)
	tsel, err := core.SelectPastryGreedyDigits(tp.Space(), tp.Node(src).Neighbors(), peers, k, 4)
	if err != nil {
		log.Fatal(err)
	}
	if err := tp.SetAux(src, tsel.Aux); err != nil {
		log.Fatal(err)
	}
	tpAfter := measure(func(d id.ID) (int, bool) {
		r, err := tp.Route(src, d)
		return r.Hops, err == nil && r.OK
	}, mix)

	fmt.Printf("portability of the selection algorithms (%d peers, k = %d, zipf 1.2 mix):\n\n", n, k)
	fmt.Printf("%-34s  %9s  %9s  %9s\n", "overlay + selector", "before", "after", "reduction")
	row := func(name string, b, a float64) {
		fmt.Printf("%-34s  %9.3f  %9.3f  %8.1f%%\n", name, b, a, 100*(b-a)/b)
	}
	row("skip graph + Chord selector", sgBefore, sgAfter)
	row("P-Grid + Pastry selector", pgBefore, pgAfter)
	row("Tapestry + Pastry selector (hex)", tpBefore, tpAfter)
	fmt.Println("\nno algorithm was modified: the skip graph's level ladder is an exponential")
	fmt.Println("ring like Chord's fingers, and P-Grid's references and Tapestry's digit")
	fmt.Println("tables are Pastry routing-table rows — the geometries the selections optimize.")
}

// measure averages hop counts of the mix.
func measure(route func(id.ID) (int, bool), mix []id.ID) float64 {
	total := 0
	for _, d := range mix {
		h, ok := route(d)
		if !ok {
			log.Fatal("lookup failed")
		}
		total += h
	}
	return float64(total) / float64(len(mix))
}
