// P2P DNS with mobile IP — the paper's motivating application
// (Section I): DNS served from a Chord overlay of stable name servers,
// where record values (IP addresses of mobile hosts) change frequently.
//
// The example pits three client strategies against each other on an
// identical query and update stream:
//
//   - plain:  vanilla Chord lookups, no caching of any kind;
//   - items:  classic TTL item caching (what hierarchical DNS does) —
//     cheap hits, but cached answers go stale whenever the
//     mobile host moves;
//   - peers:  the paper's pointer caching — every lookup still reaches
//     the live owner (answers are always fresh), but the
//     frequency-optimal auxiliary neighbors cut the path short.
//
// Run it with different -updates rates to see the staleness of item
// caching grow while pointer caching stays fresh at near-cached speeds.
//
//	go run ./examples/p2pdns [-updates 0.5] [-ttl 60]
package main

import (
	"flag"
	"fmt"
	"log"

	"peercache/internal/chord"
	"peercache/internal/core"
	"peercache/internal/id"
	"peercache/internal/itemcache"
	"peercache/internal/randx"
	"peercache/internal/sim"
	"peercache/internal/workload"
)

func main() {
	var (
		n          = flag.Int("n", 256, "number of DNS server nodes")
		numRecords = flag.Int("records", 2048, "number of DNS records")
		updateRate = flag.Float64("updates", 0.5, "record updates per second, network-wide")
		queryRate  = flag.Float64("queries", 50, "lookups per second, network-wide")
		ttl        = flag.Float64("ttl", 60, "item-cache TTL in seconds")
		duration   = flag.Float64("duration", 1800, "simulated seconds")
		k          = flag.Int("k", 8, "auxiliary neighbors per node")
		seed       = flag.Int64("seed", 42, "random seed")
	)
	flag.Parse()

	space := id.NewSpace(32)
	nw := chord.New(chord.Config{Space: space})
	nodeRNG := randx.New(randx.DeriveSeed(*seed, "nodes"))
	var nodes []id.ID
	for _, raw := range randx.UniqueIDs(nodeRNG, *n, space.Size()) {
		x := id.ID(raw)
		if _, err := nw.AddNode(x); err != nil {
			log.Fatal(err)
		}
		nodes = append(nodes, x)
	}
	nw.StabilizeAll()

	// Records hashed into the id space, zipf-popular, owned by their
	// predecessor node; every node resolves with the same popularity
	// ranking (a shared global hot set, as in public DNS).
	w := workload.New(workload.Config{
		Space:    space,
		NumItems: *numRecords,
		Alpha:    1.2,
		Seed:     randx.DeriveSeed(*seed, "records"),
	})
	store := itemcache.NewVersionedStore()
	caches := make(map[id.ID]*itemcache.Cache, *n)
	for _, x := range nodes {
		caches[x] = itemcache.New(256, *ttl)
	}

	eng := sim.New()
	updRNG := randx.New(randx.DeriveSeed(*seed, "updates"))
	qryRNG := randx.New(randx.DeriveSeed(*seed, "queries"))

	// Mobile hosts move: records update at the configured rate; which
	// record updates follows the same zipf popularity (hot hosts are
	// mobile too — the adversarial case for item caching).
	var scheduleUpdate func()
	scheduleUpdate = func() {
		eng.After(randx.Exp(updRNG, 1 / *updateRate), func() {
			rec := w.SampleItem(updRNG, nodes[0])
			store.Update(w.Key(rec))
			scheduleUpdate()
		})
	}
	if *updateRate > 0 {
		scheduleUpdate()
	}

	// Aux recomputation from observed frequencies, once a minute.
	recompute := func() {
		for _, x := range nodes {
			node := nw.Node(x)
			snap := node.Counter.Snapshot()
			if len(snap) == 0 {
				continue
			}
			peers := make([]core.Peer, 0, len(snap))
			for _, e := range snap {
				peers = append(peers, core.Peer{ID: e.Peer, Freq: float64(e.Count)})
			}
			kEff := *k
			if kEff > len(peers) {
				kEff = len(peers)
			}
			res, err := core.SelectChordFast(space, x, node.Fingers(), peers, kEff)
			if err != nil {
				continue
			}
			if err := nw.SetAux(x, res.Aux); err != nil {
				log.Fatal(err)
			}
		}
	}
	eng.Every(60, func() bool { recompute(); return true })

	// Statistics per strategy.
	type strat struct {
		lookups, stale uint64
		hops           uint64
	}
	var plain, items, peersStrat strat

	var scheduleQuery func()
	scheduleQuery = func() {
		eng.After(randx.Exp(qryRNG, 1 / *queryRate), func() {
			src := nodes[qryRNG.Intn(len(nodes))]
			rec := w.SampleItem(qryRNG, src)
			key := w.Key(rec)

			res, err := nw.Route(src, key)
			if err != nil || !res.OK {
				scheduleQuery()
				return
			}
			dest := res.Dest

			// peers strategy: the routed lookup, always fresh.
			peersStrat.lookups++
			peersStrat.hops += uint64(res.Hops + res.Timeouts)
			nw.Node(src).Counter.Observe(dest)

			// items strategy: TTL cache in front of the same lookup.
			items.lookups++
			if e, ok := caches[src].Lookup(key, eng.Now()); ok {
				if !store.Fresh(key, e.Version) {
					items.stale++
				}
			} else {
				items.hops += uint64(res.Hops + res.Timeouts)
				caches[src].Fill(key, store.Version(key), eng.Now())
			}

			scheduleQuery()
		})
	}
	scheduleQuery()
	eng.RunUntil(*duration)

	// The plain strategy is measured on a twin overlay without aux.
	twin := chord.New(chord.Config{Space: space})
	for _, x := range nodes {
		if _, err := twin.AddNode(x); err != nil {
			log.Fatal(err)
		}
	}
	twin.StabilizeAll()
	twinRNG := randx.New(randx.DeriveSeed(*seed, "queries"))
	twinEng := sim.New()
	var scheduleTwin func()
	scheduleTwin = func() {
		twinEng.After(randx.Exp(twinRNG, 1 / *queryRate), func() {
			src := nodes[twinRNG.Intn(len(nodes))]
			rec := w.SampleItem(twinRNG, src)
			res, err := twin.Route(src, w.Key(rec))
			if err == nil && res.OK {
				plain.lookups++
				plain.hops += uint64(res.Hops)
			}
			scheduleTwin()
		})
	}
	scheduleTwin()
	twinEng.RunUntil(*duration)

	avg := func(s strat) float64 {
		if s.lookups == 0 {
			return 0
		}
		return float64(s.hops) / float64(s.lookups)
	}
	stalePct := func(s strat) float64 {
		if s.lookups == 0 {
			return 0
		}
		return 100 * float64(s.stale) / float64(s.lookups)
	}

	fmt.Printf("P2P DNS: %d servers, %d records, %.1f updates/s, %.0f lookups/s, TTL %.0fs, %.0fs simulated\n\n",
		*n, *numRecords, *updateRate, *queryRate, *ttl, *duration)
	fmt.Printf("record updates applied: %d\n\n", store.Updates())
	fmt.Printf("%-22s  %12s  %12s\n", "strategy", "avg hops", "stale answers")
	fmt.Printf("%-22s  %12s  %12s\n", "--------", "--------", "-------------")
	fmt.Printf("%-22s  %12.3f  %12s\n", "plain Chord", avg(plain), "0.0%")
	fmt.Printf("%-22s  %12.3f  %11.1f%%\n", "item caching (TTL)", avg(items), stalePct(items))
	fmt.Printf("%-22s  %12.3f  %12s\n", "peer caching (paper)", avg(peersStrat), "0.0%")
	fmt.Printf("\npeer caching answers every lookup from the live owner — zero staleness —\n")
	fmt.Printf("while cutting %.1f%% of plain Chord's hops; item caching is cheaper per hit\n",
		100*(avg(plain)-avg(peersStrat))/avg(plain))
	fmt.Printf("but served %.1f%% stale answers at this update rate.\n", stalePct(items))
}
