// QoS-aware auxiliary selection (Sections IV-D and V-C): some lookups —
// a VoIP session-setup service, a real-time location query — must
// resolve within a bounded number of hops, even when their targets are
// unpopular. The plain optimizer ignores them; the QoS variant
// guarantees the bound while staying optimal for everything else.
//
//	go run ./examples/qos
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"

	"peercache"
)

func main() {
	seed := flag.Int64("seed", 3, "random seed for core finger placement")
	flag.Parse()

	const (
		bits = 24
		self = uint64(0)
		k    = 4
	)
	rng := rand.New(rand.NewSource(*seed))

	// Core fingers at exponential distances.
	var core []uint64
	for i := 6; i < bits; i += 4 {
		core = append(core, uint64(1)<<i|uint64(rng.Intn(1<<i)))
	}

	// Observed traffic: heavy mass on a few peers, plus two rarely
	// queried real-time services far from any core finger.
	rtA := uint64(0x7f1234)
	rtB := uint64(0x3ab001)
	peers := []peercache.Peer{
		{ID: 0x900001, Freq: 400},
		{ID: 0x910003, Freq: 350},
		{ID: 0x100200, Freq: 300},
		{ID: 0x450000, Freq: 250},
		{ID: 0x660000, Freq: 200},
		{ID: rtA, Freq: 2},
		{ID: rtB, Freq: 1},
	}

	plain, err := peercache.SelectChord(bits, self, core, peers, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("unconstrained optimum (pure frequency):")
	printSelection(plain)

	// Demand that both real-time services resolve within one estimated
	// hop beyond the first: distance bound 0 forces a direct pointer.
	bounds := map[uint64]uint{rtA: 0, rtB: 0}
	qos, err := peercache.SelectChordQoS(bits, self, core, peers, k, bounds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nQoS optimum (real-time peers bounded to distance 0):")
	printSelection(qos)
	fmt.Printf("\nQoS premium: +%.0f cost to honor the delay bounds\n", qos.Cost-plain.Cost)

	// With too small a budget the bounds cannot be met: the library
	// reports infeasibility instead of silently violating them.
	_, err = peercache.SelectChordQoS(bits, self, core, peers, 1, bounds)
	if errors.Is(err, peercache.ErrInfeasible) {
		fmt.Println("\nwith k = 1 the two distance-0 bounds are correctly reported infeasible")
	} else {
		log.Fatalf("expected ErrInfeasible, got %v", err)
	}

	// The Pastry variant works the same way, with prefix distances.
	pastryQoS, err := peercache.SelectPastryQoS(bits, core, peers, k, map[uint64]uint{rtA: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPastry QoS selection (rtA within prefix distance 2): %#x\n", pastryQoS.Aux)
}

func printSelection(s *peercache.Selection) {
	for _, a := range s.Aux {
		fmt.Printf("  aux %#06x\n", a)
	}
	fmt.Printf("  cost %.0f (weighted distance %.0f)\n", s.Cost, s.WeightedDist)
}
