// Churn-intensive Chord (Section VI-C): nodes crash and re-join with
// exponential mean 900 s lifetimes while queries flow; stabilization
// runs every 25 s and auxiliary neighbors are recomputed every 62.5 s.
// The example runs the paper's paired comparison — frequency-optimal
// versus frequency-oblivious auxiliary selection on identical churn and
// query streams — and prints both sides.
//
//	go run ./examples/churnsim [-n 256] [-duration 3600]
package main

import (
	"flag"
	"fmt"
	"log"

	"peercache"
)

func main() {
	var (
		n        = flag.Int("n", 256, "total node population (about half alive at steady state)")
		duration = flag.Float64("duration", 3600, "measured simulated seconds")
		warmup   = flag.Float64("warmup", 600, "warmup simulated seconds")
		rate     = flag.Float64("rate", 4, "network-wide queries per second")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	cfg := peercache.ExperimentChurnConfig{
		Protocol:     peercache.Chord,
		N:            *n,
		ItemsPerNode: 4,
		QueryRate:    *rate,
		Warmup:       *warmup,
		Duration:     *duration,
		Seed:         *seed,
	}
	cmp, err := peercache.RunChurnComparison(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("churn-intensive Chord: %d nodes, %.0f q/s, exp(900 s) lifetimes,\n", *n, *rate)
	fmt.Printf("stabilize 25 s, aux recompute 62.5 s, %.0f s measured (k = %d)\n\n", *duration, cmp.K)
	fmt.Printf("membership events (crashes + rejoins): %d\n\n", cmp.Optimal.MembershipEvents)

	fmt.Printf("%-12s  %14s  %16s  %9s  %9s\n", "scheme", "avg eff. hops", "timeouts/lookup", "queries", "failures")
	fmt.Printf("%-12s  %14.3f  %16.3f  %9d  %9d\n", "oblivious",
		cmp.Oblivious.AvgEffHops, cmp.Oblivious.AvgTimeouts, cmp.Oblivious.Queries, cmp.Oblivious.Failures)
	fmt.Printf("%-12s  %14.3f  %16.3f  %9d  %9d\n", "optimal",
		cmp.Optimal.AvgEffHops, cmp.Optimal.AvgTimeouts, cmp.Optimal.Queries, cmp.Optimal.Failures)
	fmt.Printf("\nreduction in average effective hops: %.1f%%\n", cmp.Reduction)
	fmt.Println("\n(the same run without churn — cmd/p2psim -mode stable — shows a much larger")
	fmt.Println("reduction: stale pointers and scarcer query history are exactly the churn")
	fmt.Println("penalty Figure 5 of the paper reports)")
}
