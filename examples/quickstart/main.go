// Quickstart: observe lookups at a Chord node, select the optimal
// auxiliary neighbors with the public API, and see the lookup-cost
// drop the paper's eq. 1 predicts.
//
//	go run ./examples/quickstart
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"peercache"
)

func main() {
	seed := flag.Int64("seed", 7, "random seed for the synthetic lookup history")
	flag.Parse()

	const (
		bits = 32
		self = uint64(0)
		k    = 8
	)

	// A node's core neighbors in Chord: fingers at exponentially
	// increasing distances (here: the first node found after each 2^i).
	var core []uint64
	for i := 8; i < bits; i += 3 {
		core = append(core, uint64(1)<<i+uint64(i))
	}

	// The node records every lookup destination in a frequency counter,
	// as Section III of the paper prescribes. We synthesize a skewed
	// history: a handful of hot peers (a name service's popular zones)
	// and a long uniform tail.
	rng := rand.New(rand.NewSource(*seed))
	hot := make([]uint64, 5)
	for i := range hot {
		hot[i] = rng.Uint64() >> (64 - bits)
	}
	counter := peercache.NewCounter()
	for q := 0; q < 20000; q++ {
		if rng.Intn(100) < 70 { // 70% of lookups go to the hot five
			counter.Observe(hot[rng.Intn(len(hot))])
		} else {
			counter.Observe(rng.Uint64() >> (64 - bits))
		}
	}

	// Select the k best auxiliary neighbors (fast algorithm, Section
	// V-B) and compare against keeping none.
	peers := counter.Peers()
	withAux, err := peercache.SelectChord(bits, self, core, peers, k)
	if err != nil {
		log.Fatal(err)
	}
	withoutAux, err := peercache.SelectChord(bits, self, core, peers, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("observed %d lookups over %d distinct peers\n", counter.Total(), len(peers))
	fmt.Printf("core neighbors: %d, auxiliary budget k = %d\n\n", len(core), k)
	fmt.Printf("selected auxiliary neighbors:\n")
	for _, a := range withAux.Aux {
		fmt.Printf("  %#08x\n", a)
	}
	fmt.Printf("\nexpected lookup cost (eq. 1, hops weighted by frequency):\n")
	fmt.Printf("  core only:        %.0f\n", withoutAux.Cost)
	fmt.Printf("  with auxiliaries: %.0f  (%.1f%% lower)\n",
		withAux.Cost, 100*(withoutAux.Cost-withAux.Cost)/withoutAux.Cost)

	// The hot peers should all have been captured.
	selected := make(map[uint64]bool, len(withAux.Aux))
	for _, a := range withAux.Aux {
		selected[a] = true
	}
	captured := 0
	for _, h := range hot {
		if selected[h] {
			captured++
		}
	}
	fmt.Printf("\nhot peers captured by the selection: %d of %d\n", captured, len(hot))
}
