package core

import (
	"fmt"
	"math"

	"peercache/internal/id"
	"peercache/internal/trie"
)

// ptable is the per-vertex table of the Pastry trie algorithms: cost[j] is
// C(T_a, j), the minimum cost contributed within the subtree when j
// auxiliary pointers are placed in it (eq. 3), and left[j] is the number
// of those pointers assigned to child 0 (used for reconstruction; unused
// for leaves and single-child vertices, where the split is forced).
type ptable struct {
	cost []float64
	left []int32
}

// jmax returns the largest pointer count the table covers.
func (t *ptable) jmax() int { return len(t.cost) - 1 }

// mergeMode selects between the paper's two table-combination strategies.
type mergeMode int

const (
	// mergeDP enumerates all j+1 splits per entry: the O(nk²b)
	// algorithm of Section IV-A.
	mergeDP mergeMode = iota
	// mergeGreedy extends the optimal (j-1)-split by one pointer on
	// either side, relying on the nesting property (P): the O(nkb)
	// algorithm of Section IV-B.
	mergeGreedy
)

// pastrySolver carries the shared state of one Pastry selection run.
type pastrySolver struct {
	tr   *trie.Trie
	k    int
	mode mergeMode
	// digitBits is the digit size d: ids are sequences of base-2^d
	// digits (footnote 2 of the paper) and distances count digits.
	// 1 reproduces the binary exposition.
	digitBits uint
	// req marks vertices whose subtree must contain a neighbor (QoS
	// delay bounds, Section IV-D). Nil when unconstrained.
	req map[*trie.Vertex]bool
}

// buildPastryTrie constructs the id trie for an instance: every peer in V
// as a weighted leaf, plus zero-frequency leaves for core neighbors the
// node has not seen queries for (they still attract routes).
func buildPastryTrie(in *instance) *trie.Trie {
	tr := trie.New(in.space)
	for _, p := range in.peers {
		tr.Insert(p.ID, p.Freq, in.core[p.ID])
	}
	for _, c := range in.coreIDs {
		if tr.Leaf(c) == nil {
			tr.Insert(c, 0, true)
		}
	}
	return tr
}

// penalty returns the edge term of eq. 2/3 for a child subtree receiving
// j pointers: F(child) when the child contains no neighbor at all.
//
// With base-2^d digits the distance between two ids is the number of
// digit-aligned ancestors of one that exclude the other, so only
// subtrees rooted at digit boundaries charge their mass; intermediate
// binary levels are free. digitBits == 1 charges every level, the
// paper's binary presentation.
func (s *pastrySolver) penalty(child *trie.Vertex, j int) float64 {
	if j == 0 && !child.HasCore() && child.Depth()%s.digitBits == 0 {
		return child.Freq()
	}
	return 0
}

// computeTable fills v.Tag with the ptable for vertex v, assuming child
// tables are already computed.
func (s *pastrySolver) computeTable(v *trie.Vertex) {
	var t *ptable
	switch {
	case v.IsLeaf():
		jmax := 0
		if !v.IsCore() {
			jmax = min(s.k, 1)
		}
		t = &ptable{cost: make([]float64, jmax+1)}
	case v.Child(0) != nil && v.Child(1) != nil:
		t = s.mergeChildren(v.Child(0), v.Child(1))
	default:
		c := v.Child(0)
		if c == nil {
			c = v.Child(1)
		}
		ct := c.Tag.(*ptable)
		jmax := ct.jmax()
		t = &ptable{cost: make([]float64, jmax+1)}
		for j := 0; j <= jmax; j++ {
			t.cost[j] = ct.cost[j] + s.penalty(c, j)
		}
	}
	if s.req[v] && !v.HasCore() {
		t.cost[0] = math.Inf(1)
	}
	v.Tag = t
}

// mergeChildren combines two child tables per eq. 3 (DP) or eq. 4
// (greedy).
func (s *pastrySolver) mergeChildren(l, r *trie.Vertex) *ptable {
	lt, rt := l.Tag.(*ptable), r.Tag.(*ptable)
	lmax, rmax := lt.jmax(), rt.jmax()
	jmax := min(s.k, lmax+rmax)
	t := &ptable{cost: make([]float64, jmax+1), left: make([]int32, jmax+1)}

	at := func(i, j int) float64 {
		return lt.cost[i] + s.penalty(l, i) + rt.cost[j] + s.penalty(r, j)
	}

	switch s.mode {
	case mergeGreedy:
		li, ri := 0, 0
		t.cost[0] = at(0, 0)
		for j := 1; j <= jmax; j++ {
			a, b := math.Inf(1), math.Inf(1)
			if li+1 <= lmax {
				a = at(li+1, ri)
			}
			if ri+1 <= rmax {
				b = at(li, ri+1)
			}
			if a <= b {
				li++
				t.cost[j] = a
			} else {
				ri++
				t.cost[j] = b
			}
			t.left[j] = int32(li)
		}
	case mergeDP:
		for j := 0; j <= jmax; j++ {
			best, bestL := math.Inf(1), 0
			lo := max(0, j-rmax)
			hi := min(j, lmax)
			for i := lo; i <= hi; i++ {
				if c := at(i, j-i); c < best {
					best, bestL = c, i
				}
			}
			t.cost[j] = best
			t.left[j] = int32(bestL)
		}
	}
	return t
}

// solve computes all tables bottom-up and returns the root table.
func (s *pastrySolver) solve() *ptable {
	var rec func(v *trie.Vertex)
	rec = func(v *trie.Vertex) {
		if v == nil {
			return
		}
		rec(v.Child(0))
		rec(v.Child(1))
		s.computeTable(v)
	}
	rec(s.tr.Root())
	return s.tr.Root().Tag.(*ptable)
}

// reconstruct extracts the optimal j-pointer set below v.
func reconstruct(v *trie.Vertex, j int, out *[]id.ID) {
	if j == 0 || v == nil {
		return
	}
	if v.IsLeaf() {
		// j must be 1 on a selectable leaf by construction.
		*out = append(*out, v.ID())
		return
	}
	l, r := v.Child(0), v.Child(1)
	if l == nil || r == nil {
		c := l
		if c == nil {
			c = r
		}
		reconstruct(c, j, out)
		return
	}
	li := int(v.Tag.(*ptable).left[j])
	reconstruct(l, li, out)
	reconstruct(r, j-li, out)
}

// selectPastry is the common driver for the Pastry entry points.
// digitBits must divide the identifier length; bounds are expressed in
// digit units.
func selectPastry(space id.Space, core []id.ID, peers []Peer, k int, mode mergeMode, digitBits uint, bounds map[id.ID]uint) (Result, error) {
	if digitBits == 0 || space.Bits()%digitBits != 0 {
		return Result{}, fmt.Errorf("core: digit size %d does not divide %d-bit ids", digitBits, space.Bits())
	}
	in, err := newInstance(space, core, peers, k)
	if err != nil {
		return Result{}, err
	}
	tr := buildPastryTrie(in)
	s := &pastrySolver{tr: tr, k: min(k, in.selectable), mode: mode, digitBits: digitBits}
	if bounds != nil {
		s.req, err = markRequired(tr, digitBits, bounds)
		if err != nil {
			return Result{}, err
		}
	}
	root := s.solve()
	j := min(s.k, root.jmax())
	// More pointers never cost more; with exactly j = min(k, selectable)
	// the root table entry is the optimum (Section IV).
	wd := root.cost[j]
	if math.IsInf(wd, 1) {
		return Result{}, ErrInfeasible
	}
	aux := make([]id.ID, 0, j)
	reconstruct(tr.Root(), j, &aux)
	return in.result(aux, wd), nil
}

// markRequired translates per-peer distance bounds (in digit units) into
// required-subtree marks: a peer with bound x needs a neighbor within
// its digit-aligned ancestor subtree of height x digits (Section IV-D).
// Bounds >= the digit length are vacuous. An unknown peer id is an
// error.
func markRequired(tr *trie.Trie, digitBits uint, bounds map[id.ID]uint) (map[*trie.Vertex]bool, error) {
	req := make(map[*trie.Vertex]bool)
	digits := tr.Space().Bits() / digitBits
	for p, x := range bounds {
		leaf := tr.Leaf(p)
		if leaf == nil {
			return nil, fmt.Errorf("core: QoS bound for unknown peer %d", p)
		}
		if x >= digits {
			continue
		}
		v := leaf
		for h := uint(0); h < x*digitBits; h++ {
			v = v.Parent()
		}
		req[v] = true
	}
	return req, nil
}

// SelectPastryDP selects the optimal k auxiliary neighbors for a Pastry
// node using the O(nk²b) dynamic program of Section IV-A. core is the set
// N_s of core neighbors; peers is V with observed frequencies (peers that
// are also core neighbors are allowed and are never re-selected). If k
// exceeds the number of selectable peers, all of them are returned.
func SelectPastryDP(space id.Space, core []id.ID, peers []Peer, k int) (Result, error) {
	return selectPastry(space, core, peers, k, mergeDP, 1, nil)
}

// SelectPastryGreedy selects the optimal k auxiliary neighbors using the
// O(nkb) algorithm of Section IV-B, which exploits the nesting property
// (P). It returns the same cost as SelectPastryDP.
func SelectPastryGreedy(space id.Space, core []id.ID, peers []Peer, k int) (Result, error) {
	return selectPastry(space, core, peers, k, mergeGreedy, 1, nil)
}

// SelectPastryQoS selects the optimal k auxiliary neighbors subject to
// per-peer distance bounds (Section IV-D): for each entry (p, x) in
// bounds, the selection guarantees d(p, N ∪ A) <= x under the prefix
// distance estimate. It returns ErrInfeasible when the bounds cannot be
// met with k pointers.
func SelectPastryQoS(space id.Space, core []id.ID, peers []Peer, k int, bounds map[id.ID]uint) (Result, error) {
	return selectPastry(space, core, peers, k, mergeDP, 1, bounds)
}

// SelectPastryGreedyDigits is SelectPastryGreedy for identifiers viewed
// as sequences of base-2^digitBits digits (footnote 2 of the paper):
// distances count digits rather than bits. digitBits must divide the
// identifier length. digitBits = 1 is exactly SelectPastryGreedy;
// FreePastry deployments use digitBits = 4 (hex digits).
func SelectPastryGreedyDigits(space id.Space, core []id.ID, peers []Peer, k int, digitBits uint) (Result, error) {
	return selectPastry(space, core, peers, k, mergeGreedy, digitBits, nil)
}

// SelectPastryDPDigits is the dynamic-program counterpart of
// SelectPastryGreedyDigits; both return the same optimal cost.
func SelectPastryDPDigits(space id.Space, core []id.ID, peers []Peer, k int, digitBits uint) (Result, error) {
	return selectPastry(space, core, peers, k, mergeDP, digitBits, nil)
}

// SelectPastryQoSDigits is SelectPastryQoS with digit-based distances;
// bounds are expressed in digits.
func SelectPastryQoSDigits(space id.Space, core []id.ID, peers []Peer, k int, digitBits uint, bounds map[id.ID]uint) (Result, error) {
	return selectPastry(space, core, peers, k, mergeDP, digitBits, bounds)
}
