package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"peercache/internal/id"
)

// Property P (Section IV-B, eq. 4): Pastry's greedy selection nests —
// the optimal k-set is contained in the optimal (k+1)-set. The DP-free
// maintainer leans on this to extend a selection instead of resolving
// from scratch, so the property must survive arbitrary frequency
// churn, not just the static instances the eq.-4 derivation covers.
// Two maintainers over the identical instance, differing only in k,
// receive the same random SetFreq batches; after every batch the
// smaller selection must be a subset of the larger.
func TestPastryMaintainerNestingQuick(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		space := id.NewSpace(8)
		k := 1 + rng.Intn(4)

		perm := rng.Perm(int(space.Size()))
		ncore := 1 + rng.Intn(3)
		core := make([]id.ID, ncore)
		for i := range core {
			core[i] = id.ID(perm[i])
		}
		npeers := k + 2 + rng.Intn(12)
		peers := make([]Peer, npeers)
		for i := range peers {
			peers[i] = Peer{ID: id.ID(perm[ncore+i]), Freq: float64(rng.Intn(8))}
		}

		small, err := NewPastryMaintainer(space, core, peers, k)
		if err != nil {
			t.Fatal(err)
		}
		large, err := NewPastryMaintainer(space, core, peers, k+1)
		if err != nil {
			t.Fatal(err)
		}

		for batch := 0; batch < 12; batch++ {
			for u := 0; u < 3; u++ {
				p := peers[rng.Intn(npeers)].ID
				f := float64(rng.Intn(10))
				small.SetFreq(p, f)
				large.SetFreq(p, f)
			}
			if !nests(small.Select().Aux, large.Select().Aux) {
				t.Logf("seed %d batch %d: Aux(k=%d) ⊄ Aux(k=%d)", seed, batch, k, k+1)
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// nests reports small ⊆ large; both are sorted by id (Result.Aux
// contract), so a single merge walk suffices.
func nests(small, large []id.ID) bool {
	j := 0
	for _, s := range small {
		for j < len(large) && large[j] < s {
			j++
		}
		if j == len(large) || large[j] != s {
			return false
		}
		j++
	}
	return true
}
