package core

import (
	"math"
	"testing"

	"peercache/internal/id"
)

func TestChordMaintainerValidation(t *testing.T) {
	space := id.NewSpace(16)
	if _, err := NewChordMaintainer(space, 0, []id.ID{1}, -1, 0.1); err == nil {
		t.Error("negative k accepted")
	}
	if _, err := NewChordMaintainer(space, 0, []id.ID{1}, 2, 0); err == nil {
		t.Error("zero drift accepted")
	}
	if _, err := NewChordMaintainer(space, 0, []id.ID{1}, 2, 1.5); err == nil {
		t.Error("drift > 1 accepted")
	}
	if _, err := NewChordMaintainer(space, 5, []id.ID{5}, 2, 0.1); err == nil {
		t.Error("self in core accepted")
	}
	m, err := NewChordMaintainer(space, 0, []id.ID{1}, 2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetCore([]id.ID{0}); err == nil {
		t.Error("SetCore with self accepted")
	}
}

// The cache must serve while the distribution is stable and recompute
// once it drifts.
func TestChordMaintainerDriftTriggeredRecompute(t *testing.T) {
	space := id.NewSpace(16)
	m, err := NewChordMaintainer(space, 0, []id.ID{1}, 1, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		m.Observe(5000)
	}
	first, err := m.Select()
	if err != nil {
		t.Fatal(err)
	}
	if m.Recomputes != 1 || first.Aux[0] != 5000 {
		t.Fatalf("first select: recomputes=%d aux=%v", m.Recomputes, first.Aux)
	}
	// A few more identical observations: distribution unchanged, the
	// cached result must be served.
	for i := 0; i < 20; i++ {
		m.Observe(5000)
	}
	if _, err := m.Select(); err != nil {
		t.Fatal(err)
	}
	if m.Recomputes != 1 {
		t.Fatalf("recomputed without drift (recomputes=%d)", m.Recomputes)
	}
	// Shift most of the mass to a new peer: drift > 0.3 forces a
	// recomputation and the selection moves.
	for i := 0; i < 400; i++ {
		m.Observe(9000)
	}
	res, err := m.Select()
	if err != nil {
		t.Fatal(err)
	}
	if m.Recomputes != 2 {
		t.Fatalf("no recompute after drift (recomputes=%d)", m.Recomputes)
	}
	if res.Aux[0] != 9000 {
		t.Fatalf("selection did not follow the drift: %v", res.Aux)
	}
}

// The maintainer's recomputed result must equal a fresh SelectChordFast
// on the same normalized distribution.
func TestChordMaintainerMatchesDirectSelection(t *testing.T) {
	space := id.NewSpace(16)
	m, err := NewChordMaintainer(space, 0, []id.ID{1, 64, 900}, 2, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	obs := map[id.ID]int{4000: 50, 8000: 30, 200: 5, 60000: 15}
	for p, c := range obs {
		for i := 0; i < c; i++ {
			m.Observe(p)
		}
	}
	got, err := m.Select()
	if err != nil {
		t.Fatal(err)
	}
	var peers []Peer
	total := 100.0
	for p, c := range obs {
		peers = append(peers, Peer{ID: p, Freq: float64(c) / total})
	}
	want, err := SelectChordFast(space, 0, []id.ID{1, 64, 900}, peers, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.WeightedDist-want.WeightedDist) > 1e-9 {
		t.Fatalf("maintainer %g vs direct %g", got.WeightedDist, want.WeightedDist)
	}
}

func TestChordMaintainerSetCoreInvalidates(t *testing.T) {
	space := id.NewSpace(16)
	m, err := NewChordMaintainer(space, 0, []id.ID{1}, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	m.Observe(5000)
	if _, err := m.Select(); err != nil {
		t.Fatal(err)
	}
	if err := m.SetCore([]id.ID{1, 5000}); err != nil {
		t.Fatal(err)
	}
	res, err := m.Select()
	if err != nil {
		t.Fatal(err)
	}
	if m.Recomputes != 2 {
		t.Fatalf("SetCore did not invalidate cache (recomputes=%d)", m.Recomputes)
	}
	for _, a := range res.Aux {
		if a == 5000 {
			t.Fatal("promoted core neighbor still selected as aux")
		}
	}
}

func TestChordMaintainerSelfObservationsIgnored(t *testing.T) {
	space := id.NewSpace(16)
	m, err := NewChordMaintainer(space, 7, []id.ID{1}, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	m.Observe(7) // self: ignored
	m.Observe(5000)
	res, err := m.Select()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Aux) != 1 || res.Aux[0] != 5000 {
		t.Fatalf("Aux = %v", res.Aux)
	}
}

func TestChordMaintainerNoObservations(t *testing.T) {
	space := id.NewSpace(16)
	m, err := NewChordMaintainer(space, 0, []id.ID{1}, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Select()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Aux) != 0 {
		t.Fatalf("Aux = %v, want empty with no history", res.Aux)
	}
}
