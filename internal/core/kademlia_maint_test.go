package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"peercache/internal/id"
)

// The Kademlia reuse rests on one identity: the XOR bucket-ladder
// distance equals the Pastry prefix distance for every pair in the
// space. Exhaustive over an 8-bit space — this is the theorem the thin
// KademliaMaintainer wrapper depends on, so it is pinned, not assumed.
func TestKademliaDistEqualsPastryPrefixDist(t *testing.T) {
	space := id.NewSpace(8)
	for u := uint64(0); u < space.Size(); u++ {
		for v := uint64(0); v < space.Size(); v++ {
			got := KademliaDist(space, id.ID(u), id.ID(v))
			want := space.Bits() - space.CommonPrefixLen(id.ID(u), id.ID(v))
			if u == v {
				want = 0
			}
			if got != want {
				t.Fatalf("KademliaDist(%d, %d) = %d, want b-LCP = %d", u, v, got, want)
			}
		}
	}
}

// EvalKademlia is computed straight from the XOR definition;
// EvalPastry from the prefix trie. Equal cost on random instances is
// the end-to-end check that SelectKademliaGreedy really optimizes the
// Kademlia objective.
func TestEvalKademliaMatchesEvalPastry(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	space := id.NewSpace(10)
	for trial := 0; trial < 200; trial++ {
		perm := rng.Perm(int(space.Size()))
		core := []id.ID{id.ID(perm[0]), id.ID(perm[1])}
		peers := make([]Peer, 12)
		for i := range peers {
			peers[i] = Peer{ID: id.ID(perm[2+i]), Freq: float64(rng.Intn(9))}
		}
		aux := []id.ID{peers[0].ID, peers[5].ID}
		kad := EvalKademlia(space, core, peers, aux)
		pas := EvalPastry(space, core, peers, aux)
		if kad != pas {
			t.Fatalf("trial %d: EvalKademlia %v != EvalPastry %v", trial, kad, pas)
		}
	}
}

// SelectKademliaGreedy must beat or match every same-size aux set the
// instance admits, measured by the independent XOR evaluator. Small
// instances, exhaustive alternatives.
func TestSelectKademliaGreedyOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	space := id.NewSpace(6)
	for trial := 0; trial < 50; trial++ {
		perm := rng.Perm(int(space.Size()))
		core := []id.ID{id.ID(perm[0])}
		peers := make([]Peer, 8)
		for i := range peers {
			peers[i] = Peer{ID: id.ID(perm[1+i]), Freq: float64(1 + rng.Intn(7))}
		}
		k := 2
		res, err := SelectKademliaGreedy(space, core, peers, k)
		if err != nil {
			t.Fatal(err)
		}
		got := EvalKademlia(space, core, peers, res.Aux)
		if got != res.WeightedDist {
			t.Fatalf("trial %d: reported cost %v, evaluator says %v", trial, res.WeightedDist, got)
		}
		// Every 2-subset of the candidate peers.
		for i := 0; i < len(peers); i++ {
			for j := i + 1; j < len(peers); j++ {
				alt := EvalKademlia(space, core, peers, []id.ID{peers[i].ID, peers[j].ID})
				if alt < got {
					t.Fatalf("trial %d: greedy cost %v beaten by {%d, %d} at %v",
						trial, got, peers[i].ID, peers[j].ID, alt)
				}
			}
		}
	}
}

// Property P carries over to the Kademlia wrapper: Aux(k) ⊆ Aux(k+1)
// must survive arbitrary SetFreq churn when both maintainers see the
// identical update stream. Same shape as the Pastry quick test — run
// against KademliaMaintainer to pin that the embedding does not break
// the incremental path.
func TestKademliaMaintainerNestingQuick(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		space := id.NewSpace(8)
		k := 1 + rng.Intn(4)

		perm := rng.Perm(int(space.Size()))
		ncore := 1 + rng.Intn(3)
		core := make([]id.ID, ncore)
		for i := range core {
			core[i] = id.ID(perm[i])
		}
		npeers := k + 2 + rng.Intn(12)
		peers := make([]Peer, npeers)
		for i := range peers {
			peers[i] = Peer{ID: id.ID(perm[ncore+i]), Freq: float64(rng.Intn(8))}
		}

		small, err := NewKademliaMaintainer(space, core, peers, k)
		if err != nil {
			t.Fatal(err)
		}
		large, err := NewKademliaMaintainer(space, core, peers, k+1)
		if err != nil {
			t.Fatal(err)
		}

		for batch := 0; batch < 12; batch++ {
			for u := 0; u < 3; u++ {
				p := peers[rng.Intn(npeers)].ID
				f := float64(rng.Intn(10))
				small.SetFreq(p, f)
				large.SetFreq(p, f)
			}
			if !nests(small.Select().Aux, large.Select().Aux) {
				t.Logf("seed %d batch %d: Aux(k=%d) ⊄ Aux(k=%d)", seed, batch, k, k+1)
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// The maintainer's incremental selection must agree with the
// from-scratch greedy after churn — the wrapper inherits this from
// Pastry, but the contract is Kademlia's own now, so it gets its own
// pin.
func TestKademliaMaintainerTracksGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	space := id.NewSpace(8)
	perm := rng.Perm(int(space.Size()))
	core := []id.ID{id.ID(perm[0]), id.ID(perm[1])}
	peers := make([]Peer, 10)
	for i := range peers {
		peers[i] = Peer{ID: id.ID(perm[2+i]), Freq: float64(1 + rng.Intn(8))}
	}
	m, err := NewKademliaMaintainer(space, core, peers, 3)
	if err != nil {
		t.Fatal(err)
	}
	cur := append([]Peer(nil), peers...)
	for round := 0; round < 30; round++ {
		i := rng.Intn(len(cur))
		f := float64(rng.Intn(12))
		cur[i].Freq = f
		m.SetFreq(cur[i].ID, f)
		want, err := SelectKademliaGreedy(space, core, cur, 3)
		if err != nil {
			t.Fatal(err)
		}
		got := m.Select()
		if got.WeightedDist != want.WeightedDist {
			t.Fatalf("round %d: maintainer cost %v, greedy %v", round, got.WeightedDist, want.WeightedDist)
		}
		if !reflect.DeepEqual(got.Aux, want.Aux) && EvalKademlia(space, core, cur, got.Aux) != EvalKademlia(space, core, cur, want.Aux) {
			t.Fatalf("round %d: maintainer aux %v costs differently than greedy %v", round, got.Aux, want.Aux)
		}
	}
}
