package core

import (
	"fmt"
	"math"

	"peercache/internal/id"
	"peercache/internal/trie"
)

// PastryMaintainer incrementally maintains the optimal auxiliary-neighbor
// set for a Pastry node as peer popularities change and peers join or
// leave (Section IV-C). Construction costs O(nkb); each subsequent update
// recomputes only the tables on the root-to-leaf path of the affected
// peer, O(bk) per update. Select returns the current optimum in O(kb).
//
// The maintainer is not safe for concurrent use; a node updates it from
// its own event loop.
type PastryMaintainer struct {
	space  id.Space
	k      int
	tr     *trie.Trie
	solver *pastrySolver
}

// NewPastryMaintainer builds a maintainer over the given initial instance.
// The same validation as SelectPastryGreedy applies.
func NewPastryMaintainer(space id.Space, core []id.ID, peers []Peer, k int) (*PastryMaintainer, error) {
	return NewPastryMaintainerDigits(space, core, peers, k, 1)
}

// NewPastryMaintainerDigits is NewPastryMaintainer with base-2^digitBits
// digit distances (footnote 2 of the paper). digitBits must divide the
// identifier length.
func NewPastryMaintainerDigits(space id.Space, core []id.ID, peers []Peer, k int, digitBits uint) (*PastryMaintainer, error) {
	if digitBits == 0 || space.Bits()%digitBits != 0 {
		return nil, fmt.Errorf("core: digit size %d does not divide %d-bit ids", digitBits, space.Bits())
	}
	in, err := newInstance(space, core, peers, k)
	if err != nil {
		return nil, err
	}
	tr := buildPastryTrie(in)
	m := &PastryMaintainer{
		space:  space,
		k:      k,
		tr:     tr,
		solver: &pastrySolver{tr: tr, k: k, mode: mergeGreedy, digitBits: digitBits},
	}
	m.solver.solve()
	return m, nil
}

// K returns the configured number of auxiliary pointers.
func (m *PastryMaintainer) K() int { return m.k }

// Len returns the number of peers currently tracked (including
// zero-frequency core placeholders).
func (m *PastryMaintainer) Len() int { return m.tr.Len() }

// recomputePath refreshes the tables from v up to the root.
func (m *PastryMaintainer) recomputePath(v *trie.Vertex) {
	for u := v; u != nil; u = u.Parent() {
		m.solver.computeTable(u)
	}
}

// SetFreq records the current access frequency of peer p, inserting it if
// unseen. It panics on negative frequency (mirroring the trie) and is the
// O(bk) incremental step of Section IV-C.
func (m *PastryMaintainer) SetFreq(p id.ID, f float64) {
	if v := m.tr.UpdateFreq(p, f); v != nil {
		m.recomputePath(v)
		return
	}
	v := m.tr.Insert(p, f, false)
	m.recomputePath(v)
}

// Remove forgets peer p. A core neighbor is kept as a zero-frequency
// routing anchor (it still attracts routes); a regular peer is deleted
// from the trie. Removing an unknown peer is a no-op.
func (m *PastryMaintainer) Remove(p id.ID) {
	v := m.tr.Leaf(p)
	if v == nil {
		return
	}
	if v.IsCore() {
		m.tr.UpdateFreq(p, 0)
		m.recomputePath(v)
		return
	}
	surviving := m.tr.Remove(p)
	m.recomputePath(surviving)
}

// SetCore marks or unmarks p as a core neighbor, inserting a
// zero-frequency leaf when marking an unseen peer. Unmarking a peer that
// has no recorded frequency removes it entirely.
func (m *PastryMaintainer) SetCore(p id.ID, core bool) {
	v := m.tr.Leaf(p)
	if v == nil {
		if !core {
			return
		}
		v = m.tr.Insert(p, 0, true)
		m.recomputePath(v)
		return
	}
	if v.IsCore() == core {
		return
	}
	if !core && v.Freq() == 0 {
		surviving := m.tr.Remove(p)
		m.recomputePath(surviving)
		return
	}
	m.tr.SetCore(p, core)
	m.recomputePath(v)
}

// Select returns the current optimal auxiliary set. The result matches
// what SelectPastryGreedy would compute from scratch on the current state.
func (m *PastryMaintainer) Select() Result {
	root := m.tr.Root()
	totalF := root.Freq()
	t, ok := root.Tag.(*ptable)
	if !ok || root.Leaves() == 0 {
		return Result{Aux: []id.ID{}, Cost: totalF}
	}
	j := min(m.k, t.jmax())
	wd := t.cost[j]
	if math.IsInf(wd, 1) {
		// Cannot happen without QoS constraints, which the maintainer
		// does not support; defensive.
		return Result{Aux: []id.ID{}, WeightedDist: wd, Cost: math.Inf(1)}
	}
	aux := make([]id.ID, 0, j)
	reconstruct(root, j, &aux)
	in := &instance{totalF: totalF}
	return in.result(aux, wd)
}
