// Package core implements the paper's contribution: optimal selection of k
// auxiliary neighbor pointers that minimize the frequency-weighted average
// lookup distance (eq. 1),
//
//	Cost(A_s) = Σ_v f_v · (1 + d(v, N_s ∪ A_s)),   A_s ⊆ V − N_s, |A_s| = k,
//
// for the two routing geometries the paper studies:
//
//   - Pastry (Section IV): d is the prefix distance b − LCP. The package
//     provides the O(nk²b) trie dynamic program (eq. 3), the O(nkb)
//     greedy/merge algorithm built on the nesting property (P) (eq. 4),
//     an O(bk) incremental maintainer (Section IV-C), and the QoS-aware
//     variant (Section IV-D).
//   - Chord (Section V): d is the ring distance of eq. 6. The package
//     provides the O(n²k) dynamic program (eq. 7) and the fast algorithm
//     of Section V-B that combines O(log b) segment-cost queries with a
//     monotone divide-and-conquer layer solver, plus the QoS variant.
//
// A brute-force reference optimizer is included for verification.
package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"peercache/internal/id"
)

// Peer is one candidate peer with its observed access frequency at the
// selecting node.
type Peer struct {
	ID   id.ID
	Freq float64
}

// Result is the outcome of a selection.
type Result struct {
	// Aux is the selected set of auxiliary neighbors, sorted by id.
	// Its length is min(k, number of selectable peers).
	Aux []id.ID
	// WeightedDist is Σ_v f_v · d(v, N ∪ A), the variable part of eq. 1.
	WeightedDist float64
	// Cost is the full eq. 1 objective, WeightedDist + Σ_v f_v.
	Cost float64
}

// Errors returned by the selection entry points.
var (
	ErrNoNeighbors = errors.New("core: no core neighbors and no selectable peers")
	ErrInfeasible  = errors.New("core: QoS delay bounds are not satisfiable with the given k")
)

// instance is the validated, canonical form of a selection problem:
// deduplicated core set, peers sorted by id, frequencies checked.
type instance struct {
	space   id.Space
	core    map[id.ID]bool
	coreIDs []id.ID // sorted
	peers   []Peer  // sorted by id, deduplicated (validated)
	totalF  float64
	k       int
	// selectable is the number of peers not already core neighbors.
	selectable int
}

func newInstance(space id.Space, core []id.ID, peers []Peer, k int) (*instance, error) {
	if k < 0 {
		return nil, fmt.Errorf("core: negative k = %d", k)
	}
	in := &instance{space: space, core: make(map[id.ID]bool, len(core)), k: k}
	for _, c := range core {
		if uint64(c) >= space.Size() {
			return nil, fmt.Errorf("core: core neighbor %d outside %d-bit space", c, space.Bits())
		}
		in.core[c] = true
	}
	in.coreIDs = make([]id.ID, 0, len(in.core))
	for c := range in.core {
		in.coreIDs = append(in.coreIDs, c)
	}
	sort.Slice(in.coreIDs, func(i, j int) bool { return in.coreIDs[i] < in.coreIDs[j] })

	in.peers = append([]Peer(nil), peers...)
	sort.Slice(in.peers, func(i, j int) bool { return in.peers[i].ID < in.peers[j].ID })
	for i, p := range in.peers {
		if uint64(p.ID) >= space.Size() {
			return nil, fmt.Errorf("core: peer %d outside %d-bit space", p.ID, space.Bits())
		}
		if p.Freq < 0 || math.IsNaN(p.Freq) || math.IsInf(p.Freq, 0) {
			return nil, fmt.Errorf("core: peer %d has invalid frequency %g", p.ID, p.Freq)
		}
		if i > 0 && in.peers[i-1].ID == p.ID {
			return nil, fmt.Errorf("core: duplicate peer id %d", p.ID)
		}
		in.totalF += p.Freq
		if !in.core[p.ID] {
			in.selectable++
		}
	}
	if len(in.core) == 0 && in.selectable == 0 {
		return nil, ErrNoNeighbors
	}
	if len(in.core) == 0 && k == 0 {
		return nil, ErrNoNeighbors
	}
	return in, nil
}

// selectablePeers returns the ids of peers eligible as auxiliary
// neighbors (those not already core), sorted by id.
func (in *instance) selectablePeers() []id.ID {
	out := make([]id.ID, 0, in.selectable)
	for _, p := range in.peers {
		if !in.core[p.ID] {
			out = append(out, p.ID)
		}
	}
	return out
}

// result assembles a Result from a chosen aux set and its weighted
// distance, sorting for determinism.
func (in *instance) result(aux []id.ID, wd float64) Result {
	sorted := append([]id.ID(nil), aux...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return Result{Aux: sorted, WeightedDist: wd, Cost: wd + in.totalF}
}

// EvalPastry computes Σ_v f_v · d(v, core ∪ aux) under the Pastry prefix
// distance, directly from the definition. It is the reference evaluator
// the algorithms are tested against, and is also used to score baseline
// selections. If a peer has no neighbor at all the distance is b (the
// worst case, every bit to fix).
func EvalPastry(space id.Space, core []id.ID, peers []Peer, aux []id.ID) float64 {
	nbrs := make([]id.ID, 0, len(core)+len(aux))
	nbrs = append(nbrs, core...)
	nbrs = append(nbrs, aux...)
	total := 0.0
	for _, p := range peers {
		d := space.Bits()
		for _, w := range nbrs {
			if dw := space.PastryDist(w, p.ID); dw < d {
				d = dw
			}
		}
		total += p.Freq * float64(d)
	}
	return total
}

// EvalPastryDigits is EvalPastry under base-2^digitBits digit distances:
// Σ_v f_v · ceil((b − LCP)/digitBits) to the nearest neighbor. A peer
// with no neighbor at all contributes the full digit length.
func EvalPastryDigits(space id.Space, core []id.ID, peers []Peer, aux []id.ID, digitBits uint) float64 {
	nbrs := make([]id.ID, 0, len(core)+len(aux))
	nbrs = append(nbrs, core...)
	nbrs = append(nbrs, aux...)
	total := 0.0
	for _, p := range peers {
		d := space.Bits() / digitBits
		for _, w := range nbrs {
			if dw := space.PastryDistDigits(w, p.ID, digitBits); dw < d {
				d = dw
			}
		}
		total += p.Freq * float64(d)
	}
	return total
}

// EvalChord computes Σ_v f_v · d(v, core ∪ aux) under the Chord routing
// distance from node self: the first hop goes to the neighbor w closest
// to v without overshooting (clockwise from self), and the remainder is
// the eq. 6 bound d_wv. A peer with no eligible neighbor contributes
// +Inf times its frequency (0 if its frequency is 0).
func EvalChord(space id.Space, self id.ID, core []id.ID, peers []Peer, aux []id.ID) float64 {
	nbrs := make([]id.ID, 0, len(core)+len(aux))
	nbrs = append(nbrs, core...)
	nbrs = append(nbrs, aux...)
	total := 0.0
	for _, p := range peers {
		gv := space.Gap(self, p.ID)
		best := math.Inf(1)
		for _, w := range nbrs {
			if space.Gap(self, w) > gv {
				continue // would overshoot the destination
			}
			if d := float64(space.ChordDist(w, p.ID)); d < best {
				best = d
			}
		}
		if p.Freq > 0 {
			total += p.Freq * best
		}
	}
	return total
}
