package core

import (
	"fmt"
	"math"

	"peercache/internal/freq"
	"peercache/internal/id"
)

// ChordMaintainer packages the maintenance policy Section III describes
// for Chord: observations accumulate in a frequency counter and the
// (non-incremental) optimal selection is recomputed "either periodically
// or based on some criteria that determines that the system has
// undergone a significant change". The criterion here is drift: the
// total variation distance between the frequency distribution at the
// last recomputation and the current one, recomputed lazily on Select.
//
// Unlike PastryMaintainer — whose trie structure supports true O(bk)
// incremental updates (Section IV-C) — Chord's DP has no incremental
// form in the paper, so the maintainer's job is to avoid *unnecessary*
// recomputations while bounding staleness.
type ChordMaintainer struct {
	space id.Space
	self  id.ID
	k     int
	// drift in [0, 1]: recompute when total variation since the last
	// selection reaches this threshold.
	drift float64

	counter freq.Counter
	core    map[id.ID]bool

	// snapshot of the distribution the cached selection was computed
	// from (normalized), plus the cached result.
	lastDist map[id.ID]float64
	cached   Result
	valid    bool
	// Recomputes counts how many times the selection actually ran.
	Recomputes int
}

// NewChordMaintainer returns a maintainer for node self with the given
// core set and auxiliary budget. driftThreshold in (0, 1] sets how much
// the observed distribution must move (total variation) before Select
// recomputes; 0.1 is a reasonable default.
func NewChordMaintainer(space id.Space, self id.ID, core []id.ID, k int, driftThreshold float64) (*ChordMaintainer, error) {
	return NewChordMaintainerWithCounter(space, self, core, k, driftThreshold, freq.NewExact())
}

// NewChordMaintainerWithCounter is NewChordMaintainer with a custom
// frequency counter — e.g. a freq.Windowed so stale traffic ages out of
// the selection input (the live runtime in internal/node uses this), or
// a freq.SpaceSaving sketch to bound memory. The maintainer takes
// ownership: all observations must flow through Observe.
func NewChordMaintainerWithCounter(space id.Space, self id.ID, core []id.ID, k int, driftThreshold float64, counter freq.Counter) (*ChordMaintainer, error) {
	if counter == nil {
		return nil, fmt.Errorf("core: nil frequency counter")
	}
	if k < 0 {
		return nil, fmt.Errorf("core: negative k = %d", k)
	}
	if driftThreshold <= 0 || driftThreshold > 1 {
		return nil, fmt.Errorf("core: drift threshold %g outside (0, 1]", driftThreshold)
	}
	if uint64(self) >= space.Size() {
		return nil, fmt.Errorf("core: self %d outside %d-bit space", self, space.Bits())
	}
	m := &ChordMaintainer{
		space:   space,
		self:    self,
		k:       k,
		drift:   driftThreshold,
		counter: counter,
		core:    make(map[id.ID]bool, len(core)),
	}
	for _, c := range core {
		if c == self {
			return nil, fmt.Errorf("core: self %d appears among core neighbors", self)
		}
		m.core[c] = true
	}
	return m, nil
}

// Observe records one lookup destined for peer p (self is ignored).
func (m *ChordMaintainer) Observe(p id.ID) {
	if p == m.self {
		return
	}
	m.counter.Observe(p)
}

// SetCore replaces the core neighbor set (e.g. after a finger-table
// refresh) and invalidates the cached selection.
func (m *ChordMaintainer) SetCore(core []id.ID) error {
	next := make(map[id.ID]bool, len(core))
	for _, c := range core {
		if c == m.self {
			return fmt.Errorf("core: self %d appears among core neighbors", m.self)
		}
		next[c] = true
	}
	m.core = next
	m.valid = false
	return nil
}

// distribution returns the normalized observed frequencies.
func (m *ChordMaintainer) distribution() map[id.ID]float64 {
	total := float64(m.counter.Total())
	dist := make(map[id.ID]float64)
	if total == 0 {
		return dist
	}
	for _, e := range m.counter.Snapshot() {
		dist[e.Peer] = float64(e.Count) / total
	}
	return dist
}

// totalVariation is ½ Σ |p − q| over the union support.
func totalVariation(p, q map[id.ID]float64) float64 {
	tv := 0.0
	for k, pv := range p {
		tv += math.Abs(pv - q[k])
	}
	for k, qv := range q {
		if _, ok := p[k]; !ok {
			tv += qv
		}
	}
	return tv / 2
}

// Select returns the current auxiliary set, recomputing only when no
// valid cached selection exists or the observed distribution has drifted
// past the threshold since the last recomputation (Section III's
// "significant change" criterion).
func (m *ChordMaintainer) Select() (Result, error) {
	dist := m.distribution()
	if m.valid && totalVariation(m.lastDist, dist) < m.drift {
		return m.cached, nil
	}
	coreIDs := make([]id.ID, 0, len(m.core))
	for c := range m.core {
		coreIDs = append(coreIDs, c)
	}
	peers := make([]Peer, 0, len(dist))
	for p, f := range dist {
		peers = append(peers, Peer{ID: p, Freq: f})
	}
	if len(peers) == 0 && len(coreIDs) == 0 {
		return Result{}, ErrNoNeighbors
	}
	res, err := SelectChordFast(m.space, m.self, coreIDs, peers, m.k)
	if err != nil {
		return Result{}, err
	}
	m.cached = res
	m.lastDist = dist
	m.valid = true
	m.Recomputes++
	return res, nil
}
