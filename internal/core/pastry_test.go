package core

import (
	"math"
	"math/rand"
	"testing"

	"peercache/internal/id"
)

// randPastryInstance draws a random small instance: peers with random
// ids/frequencies and a random core set (some cores overlap peers, some
// are unqueried).
func randPastryInstance(rng *rand.Rand) (id.Space, []id.ID, []Peer, int) {
	bits := uint(5 + rng.Intn(5))
	space := id.NewSpace(bits)
	n := 3 + rng.Intn(12)
	ids := rng.Perm(int(space.Size()))[:n+2]
	peers := make([]Peer, n)
	for i := range peers {
		peers[i] = Peer{ID: id.ID(ids[i]), Freq: float64(rng.Intn(20))}
	}
	var core []id.ID
	nc := 1 + rng.Intn(3)
	for i := 0; i < nc; i++ {
		if rng.Intn(2) == 0 {
			core = append(core, peers[rng.Intn(n)].ID) // overlaps V
		} else {
			core = append(core, id.ID(ids[n+rng.Intn(2)])) // unqueried
		}
	}
	k := 1 + rng.Intn(4)
	return space, core, peers, k
}

func TestPastryHandExample(t *testing.T) {
	// 4-bit space. Core neighbor 0000. Peers: 1111 (f=10), 1110 (f=1),
	// 0001 (f=1). With k=1 the best pointer is 1111: it zeroes the
	// heaviest peer and brings 1110 to distance 1.
	space := id.NewSpace(4)
	core := []id.ID{0b0000}
	peers := []Peer{
		{ID: 0b1111, Freq: 10},
		{ID: 0b1110, Freq: 1},
		{ID: 0b0001, Freq: 1},
	}
	res, err := SelectPastryGreedy(space, core, peers, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Aux) != 1 || res.Aux[0] != 0b1111 {
		t.Fatalf("Aux = %v, want [1111]", res.Aux)
	}
	// Weighted distance: 1111 -> 0, 1110 -> 1 (LCP 3 with 1111),
	// 0001 -> 1 (LCP 3 with core 0000).
	if want := 0.0*10 + 1*1 + 1*1; res.WeightedDist != want {
		t.Errorf("WeightedDist = %g, want %g", res.WeightedDist, want)
	}
	if want := res.WeightedDist + 12; res.Cost != want {
		t.Errorf("Cost = %g, want %g", res.Cost, want)
	}
}

func TestPastryGreedyEqualsDPEqualsBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 300; trial++ {
		space, core, peers, k := randPastryInstance(rng)
		dp, err := SelectPastryDP(space, core, peers, k)
		if err != nil {
			t.Fatalf("trial %d: DP error: %v", trial, err)
		}
		gr, err := SelectPastryGreedy(space, core, peers, k)
		if err != nil {
			t.Fatalf("trial %d: greedy error: %v", trial, err)
		}
		want, _, err := BrutePastry(space, core, peers, k)
		if err != nil {
			t.Fatalf("trial %d: brute error: %v", trial, err)
		}
		if math.Abs(dp.WeightedDist-want) > 1e-9 {
			t.Fatalf("trial %d: DP cost %g, brute %g", trial, dp.WeightedDist, want)
		}
		if math.Abs(gr.WeightedDist-want) > 1e-9 {
			t.Fatalf("trial %d: greedy cost %g, brute %g", trial, gr.WeightedDist, want)
		}
	}
}

// The reported weighted distance must agree with the definitional
// evaluator applied to the returned set — this checks that the trie cost
// decomposition really computes eq. 1.
func TestPastryReportedCostMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 300; trial++ {
		space, core, peers, k := randPastryInstance(rng)
		for _, sel := range []func(id.Space, []id.ID, []Peer, int) (Result, error){
			SelectPastryDP, SelectPastryGreedy,
		} {
			res, err := sel(space, core, peers, k)
			if err != nil {
				t.Fatal(err)
			}
			got := EvalPastry(space, core, peers, res.Aux)
			if math.Abs(got-res.WeightedDist) > 1e-9 {
				t.Fatalf("trial %d: eval %g vs reported %g (aux %v)", trial, got, res.WeightedDist, res.Aux)
			}
		}
	}
}

// Nesting property (P): as k grows, greedy-optimal costs are
// non-increasing and each greedy set extends the previous one.
func TestPastryNestingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for trial := 0; trial < 100; trial++ {
		space, core, peers, _ := randPastryInstance(rng)
		prevCost := math.Inf(1)
		var prevSet map[id.ID]bool
		for k := 0; k <= 5; k++ {
			res, err := SelectPastryGreedy(space, core, peers, k)
			if err != nil {
				t.Fatal(err)
			}
			if res.WeightedDist > prevCost+1e-9 {
				t.Fatalf("trial %d: cost increased from %g to %g at k=%d", trial, prevCost, res.WeightedDist, k)
			}
			prevCost = res.WeightedDist
			cur := make(map[id.ID]bool, len(res.Aux))
			for _, a := range res.Aux {
				cur[a] = true
			}
			for p := range prevSet {
				if !cur[p] {
					// Property (P) guarantees nesting among some optimal
					// sets; our deterministic tie-breaking should realize
					// it. Verify at cost level instead of failing hard:
					// the swapped-in pointer must give equal cost.
					if got := EvalPastry(space, core, peers, res.Aux); math.Abs(got-res.WeightedDist) > 1e-9 {
						t.Fatalf("trial %d: non-nested set is also non-optimal", trial)
					}
				}
			}
			prevSet = cur
		}
	}
}

func TestPastryAuxNeverContainsCore(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 200; trial++ {
		space, core, peers, k := randPastryInstance(rng)
		res, err := SelectPastryGreedy(space, core, peers, k)
		if err != nil {
			t.Fatal(err)
		}
		coreSet := make(map[id.ID]bool)
		for _, c := range core {
			coreSet[c] = true
		}
		for _, a := range res.Aux {
			if coreSet[a] {
				t.Fatalf("trial %d: aux contains core neighbor %d", trial, a)
			}
		}
	}
}

func TestPastryKExceedsSelectable(t *testing.T) {
	space := id.NewSpace(4)
	core := []id.ID{0}
	peers := []Peer{{ID: 1, Freq: 1}, {ID: 2, Freq: 2}, {ID: 0, Freq: 3}}
	res, err := SelectPastryGreedy(space, core, peers, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Aux) != 2 {
		t.Fatalf("Aux = %v, want the 2 selectable peers", res.Aux)
	}
	if res.WeightedDist != 0 {
		t.Errorf("WeightedDist = %g, want 0 (everything is a neighbor)", res.WeightedDist)
	}
}

func TestPastryKZero(t *testing.T) {
	space := id.NewSpace(4)
	core := []id.ID{0b0000}
	peers := []Peer{{ID: 0b1111, Freq: 2}}
	res, err := SelectPastryGreedy(space, core, peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Aux) != 0 {
		t.Fatalf("Aux = %v, want empty", res.Aux)
	}
	if res.WeightedDist != 8 { // distance 4, freq 2
		t.Errorf("WeightedDist = %g, want 8", res.WeightedDist)
	}
}

func TestPastryValidationErrors(t *testing.T) {
	space := id.NewSpace(4)
	cases := []struct {
		name  string
		core  []id.ID
		peers []Peer
		k     int
	}{
		{"negative k", []id.ID{0}, []Peer{{ID: 1, Freq: 1}}, -1},
		{"dup peer", []id.ID{0}, []Peer{{ID: 1, Freq: 1}, {ID: 1, Freq: 2}}, 1},
		{"neg freq", []id.ID{0}, []Peer{{ID: 1, Freq: -1}}, 1},
		{"nan freq", []id.ID{0}, []Peer{{ID: 1, Freq: math.NaN()}}, 1},
		{"peer out of space", []id.ID{0}, []Peer{{ID: 16, Freq: 1}}, 1},
		{"core out of space", []id.ID{16}, []Peer{{ID: 1, Freq: 1}}, 1},
		{"no neighbors possible", nil, []Peer{{ID: 1, Freq: 1}}, 0},
	}
	for _, tc := range cases {
		if _, err := SelectPastryGreedy(space, tc.core, tc.peers, tc.k); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

func TestPastryDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	space, core, peers, k := randPastryInstance(rng)
	a, err := SelectPastryGreedy(space, core, peers, k)
	if err != nil {
		t.Fatal(err)
	}
	// Shuffle the inputs; the canonicalization must make output identical.
	shuffled := append([]Peer(nil), peers...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	b, err := SelectPastryGreedy(space, core, shuffled, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Aux) != len(b.Aux) || a.WeightedDist != b.WeightedDist {
		t.Fatalf("results differ across input orderings: %+v vs %+v", a, b)
	}
	for i := range a.Aux {
		if a.Aux[i] != b.Aux[i] {
			t.Fatalf("aux sets differ: %v vs %v", a.Aux, b.Aux)
		}
	}
}

func TestPastryZeroFrequencyPeersAreNeverPreferred(t *testing.T) {
	// All mass on one peer: the single pointer must go there.
	space := id.NewSpace(6)
	core := []id.ID{0}
	peers := []Peer{
		{ID: 0b111111, Freq: 100},
		{ID: 0b101010, Freq: 0},
		{ID: 0b010101, Freq: 0},
	}
	res, err := SelectPastryGreedy(space, core, peers, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Aux) != 1 || res.Aux[0] != 0b111111 {
		t.Fatalf("Aux = %v, want [111111]", res.Aux)
	}
}
