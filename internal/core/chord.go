package core

import (
	"fmt"
	"math"
	"sort"

	"peercache/internal/id"
)

// chordProblem is the canonical geometry of a Chord selection: all known
// nodes (queried peers plus core neighbors) sorted by clockwise gap from
// the selecting node, with prefix frequency sums and the best
// core-neighbor distance per node.
//
// Node indices are 1-based to mirror the paper's successor numbering;
// index 0 is the virtual "no auxiliary pointer yet" position.
type chordProblem struct {
	in   *instance
	self id.ID

	n    int
	ids  []id.ID   // ids[1..n]
	gaps []uint64  // clockwise gap from self, strictly increasing
	fs   []float64 // query frequency (0 for unqueried core neighbors)
	sel  []bool    // eligible as auxiliary pointer (not core)
	cumF []float64 // cumF[i] = fs[1] + ... + fs[i]

	// bestCoreD[l] is min over core neighbors c with index <= l of
	// ChordDist(c, l): the distance via core routing alone. +Inf when no
	// core neighbor precedes l.
	bestCoreD []float64
	coreIdx   []int // indices of core neighbors, ascending
}

// newChordProblem validates and lays out the instance around self.
func newChordProblem(space id.Space, self id.ID, core []id.ID, peers []Peer, k int) (*chordProblem, error) {
	if uint64(self) >= space.Size() {
		return nil, fmt.Errorf("core: self %d outside %d-bit space", self, space.Bits())
	}
	in, err := newInstance(space, core, peers, k)
	if err != nil {
		return nil, err
	}
	for _, p := range in.peers {
		if p.ID == self {
			return nil, fmt.Errorf("core: self %d appears among peers", self)
		}
	}
	if in.core[self] {
		return nil, fmt.Errorf("core: self %d appears among core neighbors", self)
	}

	type node struct {
		id  id.ID
		gap uint64
		f   float64
		sel bool
	}
	nodes := make([]node, 0, len(in.peers)+len(in.coreIDs))
	for _, p := range in.peers {
		nodes = append(nodes, node{id: p.ID, gap: space.Gap(self, p.ID), f: p.Freq, sel: !in.core[p.ID]})
	}
	seen := make(map[id.ID]bool, len(in.peers))
	for _, p := range in.peers {
		seen[p.ID] = true
	}
	for _, c := range in.coreIDs {
		if !seen[c] {
			nodes = append(nodes, node{id: c, gap: space.Gap(self, c)})
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].gap < nodes[j].gap })

	n := len(nodes)
	p := &chordProblem{
		in:        in,
		self:      self,
		n:         n,
		ids:       make([]id.ID, n+1),
		gaps:      make([]uint64, n+1),
		fs:        make([]float64, n+1),
		sel:       make([]bool, n+1),
		cumF:      make([]float64, n+1),
		bestCoreD: make([]float64, n+1),
	}
	lastCore := -1
	for i, nd := range nodes {
		l := i + 1
		p.ids[l] = nd.id
		p.gaps[l] = nd.gap
		p.fs[l] = nd.f
		p.sel[l] = nd.sel
		p.cumF[l] = p.cumF[l-1] + nd.f
		if !nd.sel {
			p.coreIdx = append(p.coreIdx, l)
			lastCore = l
		}
		if !nd.sel {
			p.bestCoreD[l] = 0
		} else if lastCore < 0 {
			p.bestCoreD[l] = math.Inf(1)
		} else {
			p.bestCoreD[l] = float64(space.ChordDist(p.ids[lastCore], nd.id))
		}
	}
	return p, nil
}

// dist returns the eq. 6 hop distance from node index j (or the virtual
// index 0, meaning "core routing only") to node index l >= j: the minimum
// of the distance via j itself and via the best core neighbor at or
// before l.
func (p *chordProblem) dist(j, l int) float64 {
	d := p.bestCoreD[l]
	if j >= 1 {
		if dj := float64(p.in.space.ChordDist(p.ids[j], p.ids[l])); dj < d {
			d = dj
		}
	}
	return d
}

// selectAll returns the trivial result when k covers every selectable
// peer.
func (p *chordProblem) selectAll() Result {
	aux := p.in.selectablePeers()
	wd := EvalChord(p.in.space, p.self, p.in.coreIDs, p.in.peers, aux)
	return p.in.result(aux, wd)
}

// auxFromChoice backtracks a (k x n) choice table: choice[i][m] holds the
// index of the i-th (last) pointer covering prefix m, or 0 when C_i(m) is
// infeasible.
func (p *chordProblem) auxFromChoice(choice [][]int32, k int) []id.ID {
	aux := make([]id.ID, 0, k)
	m := p.n
	for i := k; i >= 1; i-- {
		j := int(choice[i][m])
		if j <= 0 {
			break
		}
		aux = append(aux, p.ids[j])
		m = j - 1
	}
	return aux
}

// chordDPCore runs the O(n²k) dynamic program of Section V-A (eq. 7).
// bounds, when non-nil, holds per-node maximum distances (QoS,
// Section V-C); a segment that would violate a bound is forbidden.
// It returns the optimal weighted distance and the selected set.
func (p *chordProblem) chordDPCore(k int, bounds []float64) (float64, []id.ID, error) {
	n := p.n
	inf := math.Inf(1)

	// C_0(m): core-only routing cost for the first m successors.
	prev := make([]float64, n+1)
	for m := 1; m <= n; m++ {
		c := prev[m-1]
		d := p.bestCoreD[m]
		if bounds != nil && d > bounds[m] {
			c = inf
		}
		if p.fs[m] > 0 {
			c += p.fs[m] * d
		}
		prev[m] = c
	}

	choice := make([][]int32, k+1)
	cur := make([]float64, n+1)
	for i := 1; i <= k; i++ {
		choice[i] = make([]int32, n+1)
		for m := 0; m <= n; m++ {
			cur[m] = inf
		}
		for j := 1; j <= n; j++ {
			if !p.sel[j] || math.IsInf(prev[j-1], 1) {
				continue
			}
			// Sweep m forward accumulating s(j, m) (eq. 8/10 folded
			// into the per-node min with core neighbors).
			acc := 0.0
			for m := j; m <= n; m++ {
				d := p.dist(j, m)
				if bounds != nil && d > bounds[m] {
					break // s(j, m') is infeasible for all m' >= m
				}
				if p.fs[m] > 0 {
					acc += p.fs[m] * d
				}
				if c := prev[j-1] + acc; c < cur[m] {
					cur[m] = c
					choice[i][m] = int32(j)
				}
			}
		}
		prev, cur = cur, prev
	}

	wd := prev[n]
	if math.IsInf(wd, 1) {
		return wd, nil, ErrInfeasible
	}
	return wd, p.auxFromChoice(choice, k), nil
}

// SelectChordDP selects the optimal k auxiliary neighbors for the Chord
// node self using the O(n²k) dynamic program of Section V-A. core is N_s
// (the finger table); peers is V with observed frequencies. If k exceeds
// the number of selectable peers, all of them are returned.
//
// The weighted distance may be +Inf when some queried peer is unreachable
// under the estimate (no neighbor at or before it); this cannot happen
// when core contains the node's successor, as it always does in Chord.
func SelectChordDP(space id.Space, self id.ID, core []id.ID, peers []Peer, k int) (Result, error) {
	p, err := newChordProblem(space, self, core, peers, k)
	if err != nil {
		return Result{}, err
	}
	if k >= p.in.selectable {
		return p.selectAll(), nil
	}
	wd, aux, err := p.chordDPCore(k, nil)
	if err != nil {
		// Without bounds, an infinite optimum still has a well-defined
		// argmin prefix; fall back to the best effort: select greedily
		// nothing and report the infinite cost.
		return p.in.result(nil, wd), nil
	}
	return p.in.result(aux, wd), nil
}

// SelectChordQoS selects the optimal k auxiliary neighbors subject to
// per-peer distance bounds (Section V-C): for each entry (v, x) in
// bounds, the selection guarantees d(v, N ∪ A) <= x under the eq. 6
// estimate. It returns ErrInfeasible when the bounds cannot be met. Bound
// ids must refer to known peers.
func SelectChordQoS(space id.Space, self id.ID, core []id.ID, peers []Peer, k int, bounds map[id.ID]uint) (Result, error) {
	p, err := newChordProblem(space, self, core, peers, k)
	if err != nil {
		return Result{}, err
	}
	bv := make([]float64, p.n+1)
	for l := 1; l <= p.n; l++ {
		bv[l] = math.Inf(1)
	}
	byID := make(map[id.ID]int, p.n)
	for l := 1; l <= p.n; l++ {
		byID[p.ids[l]] = l
	}
	for v, x := range bounds {
		l, ok := byID[v]
		if !ok {
			return Result{}, fmt.Errorf("core: QoS bound for unknown peer %d", v)
		}
		bv[l] = float64(x)
	}
	kEff := min(k, p.in.selectable)
	wd, aux, err := p.chordDPCore(kEff, bv)
	if err != nil {
		return Result{}, err
	}
	return p.in.result(aux, wd), nil
}
