package core

// Fuzz targets: decode arbitrary byte strings into selection instances
// and check that the fast algorithms agree with the exact dynamic
// programs. Run with `go test -fuzz FuzzChordAgreement ./internal/core`
// for continuous fuzzing; the seed corpus also runs under plain
// `go test`.

import (
	"math"
	"testing"

	"peercache/internal/id"
)

// decodeInstance deterministically maps fuzz bytes to a small instance:
// byte triples become (id, freq) pairs, the first bytes pick core
// neighbors and k.
func decodeInstance(data []byte) (space id.Space, self id.ID, core []id.ID, peers []Peer, k int, ok bool) {
	if len(data) < 8 {
		return space, 0, nil, nil, 0, false
	}
	space = id.NewSpace(8)
	self = id.ID(data[0])
	k = int(data[1]%4) + 1
	nCore := int(data[2]%3) + 1
	rest := data[3:]
	seen := map[id.ID]bool{self: true}
	for i := 0; i+1 < len(rest) && len(peers) < 12; i += 2 {
		p := id.ID(rest[i])
		if seen[p] {
			continue
		}
		seen[p] = true
		peers = append(peers, Peer{ID: p, Freq: float64(rest[i+1])})
	}
	if len(peers) < 2 {
		return space, 0, nil, nil, 0, false
	}
	for i := 0; i < nCore && i < len(peers); i++ {
		core = append(core, peers[i*len(peers)/nCore].ID)
	}
	return space, self, core, peers, k, true
}

func FuzzChordAgreement(f *testing.F) {
	f.Add([]byte{0, 2, 1, 10, 5, 60, 1, 120, 9, 200, 3})
	f.Add([]byte{7, 1, 2, 20, 0, 40, 0, 80, 100, 160, 1, 250, 30})
	f.Add([]byte{255, 3, 1, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6})
	f.Fuzz(func(t *testing.T, data []byte) {
		space, self, coreSet, peers, k, ok := decodeInstance(data)
		if !ok {
			t.Skip()
		}
		fast, errF := SelectChordFast(space, self, coreSet, peers, k)
		dp, errD := SelectChordDP(space, self, coreSet, peers, k)
		if (errF == nil) != (errD == nil) {
			t.Fatalf("error disagreement: fast=%v dp=%v", errF, errD)
		}
		if errF != nil {
			t.Skip()
		}
		fi, di := math.IsInf(fast.WeightedDist, 1), math.IsInf(dp.WeightedDist, 1)
		if fi != di {
			t.Fatalf("infinity disagreement: fast=%v dp=%v", fast.WeightedDist, dp.WeightedDist)
		}
		if !fi && math.Abs(fast.WeightedDist-dp.WeightedDist) > 1e-9 {
			t.Fatalf("cost disagreement: fast=%g dp=%g (self=%d core=%v peers=%v k=%d)",
				fast.WeightedDist, dp.WeightedDist, self, coreSet, peers, k)
		}
		if !fi {
			ev := EvalChord(space, self, coreSet, peers, fast.Aux)
			if math.Abs(ev-fast.WeightedDist) > 1e-9 {
				t.Fatalf("eval disagreement: %g vs %g", ev, fast.WeightedDist)
			}
		}
	})
}

func FuzzPastryAgreement(f *testing.F) {
	f.Add([]byte{0, 2, 1, 10, 5, 60, 1, 120, 9, 200, 3})
	f.Add([]byte{7, 1, 2, 20, 0, 40, 0, 80, 100, 160, 1, 250, 30})
	f.Fuzz(func(t *testing.T, data []byte) {
		space, _, coreSet, peers, k, ok := decodeInstance(data)
		if !ok {
			t.Skip()
		}
		gr, errG := SelectPastryGreedy(space, coreSet, peers, k)
		dp, errD := SelectPastryDP(space, coreSet, peers, k)
		if (errG == nil) != (errD == nil) {
			t.Fatalf("error disagreement: greedy=%v dp=%v", errG, errD)
		}
		if errG != nil {
			t.Skip()
		}
		if math.Abs(gr.WeightedDist-dp.WeightedDist) > 1e-9 {
			t.Fatalf("cost disagreement: greedy=%g dp=%g", gr.WeightedDist, dp.WeightedDist)
		}
		ev := EvalPastry(space, coreSet, peers, gr.Aux)
		if math.Abs(ev-gr.WeightedDist) > 1e-9 {
			t.Fatalf("eval disagreement: %g vs %g", ev, gr.WeightedDist)
		}
	})
}

// FuzzMaintainerConsistency drives the incremental maintainer with a
// byte-coded operation sequence and cross-checks against full
// recomputation at the end.
func FuzzMaintainerConsistency(f *testing.F) {
	f.Add([]byte{1, 10, 5, 2, 20, 0, 0, 30, 9})
	f.Add([]byte{0, 1, 1, 1, 2, 2, 2, 3, 3, 3, 4, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		space := id.NewSpace(8)
		m, err := NewPastryMaintainer(space, []id.ID{0}, []Peer{{ID: 255, Freq: 1}}, 2)
		if err != nil {
			t.Skip()
		}
		freqs := map[id.ID]float64{255: 1}
		coreSet := map[id.ID]bool{0: true}
		for i := 0; i+2 < len(data); i += 3 {
			op, p, v := data[i]%4, id.ID(data[i+1]), float64(data[i+2])
			switch op {
			case 0:
				if !coreSet[p] {
					m.SetFreq(p, v)
					freqs[p] = v
				}
			case 1:
				if !coreSet[p] {
					m.Remove(p)
					delete(freqs, p)
				}
			case 2:
				m.SetCore(p, true)
				coreSet[p] = true
			case 3:
				if coreSet[p] && p != 0 {
					m.SetCore(p, false)
					delete(coreSet, p)
					// A demoted core with no recorded frequency
					// disappears from the maintainer.
					if _, hasF := freqs[p]; !hasF {
						_ = p
					}
				}
			}
		}
		got := m.Select()

		var coreIDs []id.ID
		for c := range coreSet {
			coreIDs = append(coreIDs, c)
		}
		var peers []Peer
		for p, fv := range freqs {
			peers = append(peers, Peer{ID: p, Freq: fv})
		}
		want, err := SelectPastryGreedy(space, coreIDs, peers, 2)
		if err != nil {
			t.Skip()
		}
		if math.Abs(got.WeightedDist-want.WeightedDist) > 1e-9 {
			t.Fatalf("incremental %g vs full %g (core=%v peers=%v)",
				got.WeightedDist, want.WeightedDist, coreIDs, peers)
		}
	})
}
