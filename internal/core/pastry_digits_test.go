package core

import (
	"math"
	"math/rand"
	"testing"

	"peercache/internal/id"
)

// bruteDigits is the reference optimizer under digit distances.
func bruteDigits(space id.Space, coreSet []id.ID, peers []Peer, k int, digitBits uint) float64 {
	in, err := newInstance(space, coreSet, peers, k)
	if err != nil {
		panic(err)
	}
	best, _ := bruteForce(in.selectablePeers(), k, func(aux []id.ID) float64 {
		return EvalPastryDigits(space, in.coreIDs, in.peers, aux, digitBits)
	})
	return best
}

func TestPastryDistDigits(t *testing.T) {
	s := id.NewSpace(8)
	tests := []struct {
		u, v id.ID
		d    uint
		want uint
	}{
		{0b10110010, 0b10110010, 2, 0},
		{0b10110010, 0b10110011, 2, 1}, // differ in last bit -> last digit
		{0b10110010, 0b10111111, 2, 2}, // lcp 4 bits -> 4 bits left -> 2 digits
		{0b00000000, 0b10000000, 4, 2}, // no shared prefix: all 2 hex digits
		{0b00000000, 0b00001000, 4, 1},
		{0b10110010, 0b10110010, 8, 0},
		{0b10110010, 0b00110010, 8, 1}, // single 8-bit digit
	}
	for _, tt := range tests {
		if got := s.PastryDistDigits(tt.u, tt.v, tt.d); got != tt.want {
			t.Errorf("PastryDistDigits(%08b,%08b,d=%d) = %d, want %d", tt.u, tt.v, tt.d, got, tt.want)
		}
	}
}

func TestPastryDistDigitsPanicsOnBadDigit(t *testing.T) {
	s := id.NewSpace(8)
	defer func() {
		if recover() == nil {
			t.Error("non-dividing digit size did not panic")
		}
	}()
	s.PastryDistDigits(1, 2, 3)
}

func TestPastryDistDigitsOneEqualsBitDistance(t *testing.T) {
	s := id.NewSpace(10)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		u := id.ID(rng.Intn(1 << 10))
		v := id.ID(rng.Intn(1 << 10))
		if s.PastryDistDigits(u, v, 1) != s.PastryDist(u, v) {
			t.Fatalf("digit-1 distance differs from bit distance for (%d,%d)", u, v)
		}
	}
}

// The headline correctness result for the footnote-2 extension: for
// digit sizes 1, 2 and 4, greedy and DP both match brute force under the
// digit-distance objective.
func TestPastryDigitsMatchBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(4141))
	for trial := 0; trial < 200; trial++ {
		bits := uint(4 + 4*rng.Intn(2)) // 4 or 8, divisible by 1,2,4
		space := id.NewSpace(bits)
		n := 3 + rng.Intn(10)
		raw := rng.Perm(int(space.Size()))[:n+2]
		peers := make([]Peer, n)
		for i := range peers {
			peers[i] = Peer{ID: id.ID(raw[i]), Freq: float64(rng.Intn(20))}
		}
		coreSet := []id.ID{id.ID(raw[n])}
		if rng.Intn(2) == 0 {
			coreSet = append(coreSet, peers[rng.Intn(n)].ID)
		}
		k := 1 + rng.Intn(3)
		for _, d := range []uint{1, 2, 4} {
			want := bruteDigits(space, coreSet, peers, k, d)
			gr, err := SelectPastryGreedyDigits(space, coreSet, peers, k, d)
			if err != nil {
				t.Fatalf("trial %d d=%d: %v", trial, d, err)
			}
			dp, err := SelectPastryDPDigits(space, coreSet, peers, k, d)
			if err != nil {
				t.Fatalf("trial %d d=%d: %v", trial, d, err)
			}
			if math.Abs(gr.WeightedDist-want) > 1e-9 {
				t.Fatalf("trial %d d=%d: greedy %g, brute %g", trial, d, gr.WeightedDist, want)
			}
			if math.Abs(dp.WeightedDist-want) > 1e-9 {
				t.Fatalf("trial %d d=%d: dp %g, brute %g", trial, d, dp.WeightedDist, want)
			}
			// Reported cost must match the definitional evaluator.
			if ev := EvalPastryDigits(space, coreSet, peers, gr.Aux, d); math.Abs(ev-gr.WeightedDist) > 1e-9 {
				t.Fatalf("trial %d d=%d: eval %g vs reported %g", trial, d, ev, gr.WeightedDist)
			}
		}
	}
}

func TestPastryDigitsRejectsBadDigitSize(t *testing.T) {
	space := id.NewSpace(8)
	peers := []Peer{{ID: 1, Freq: 1}}
	if _, err := SelectPastryGreedyDigits(space, []id.ID{0}, peers, 1, 3); err == nil {
		t.Error("digit size 3 over 8-bit ids accepted")
	}
	if _, err := SelectPastryGreedyDigits(space, []id.ID{0}, peers, 1, 0); err == nil {
		t.Error("digit size 0 accepted")
	}
	if _, err := NewPastryMaintainerDigits(space, []id.ID{0}, peers, 1, 5); err == nil {
		t.Error("maintainer digit size 5 over 8-bit ids accepted")
	}
}

// Hex digits change the optimum: two peers in the same 4-bit branch are
// "equally far" digit-wise, so mass concentrates differently than under
// bit distance.
func TestPastryDigitsChangeSelection(t *testing.T) {
	space := id.NewSpace(8)
	coreSet := []id.ID{0b00000000}
	peers := []Peer{
		// Under bit distance, 1000_0000 at f=6 beats covering the two
		// 0b1111xxxx peers; under hex-digit distance the 1111 branch
		// (combined f=10, both distance 2 digits) wins with one pointer
		// covering both at distance <=1 digit... the optima may differ.
		{ID: 0b11110000, Freq: 5},
		{ID: 0b11110001, Freq: 5},
		{ID: 0b10000000, Freq: 6},
	}
	bit, err := SelectPastryGreedy(space, coreSet, peers, 1)
	if err != nil {
		t.Fatal(err)
	}
	hex, err := SelectPastryGreedyDigits(space, coreSet, peers, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Both must equal their own brute-force optimum; what they select
	// can legitimately differ.
	if want := bruteDigits(space, coreSet, peers, 1, 1); math.Abs(bit.WeightedDist-want) > 1e-9 {
		t.Errorf("bit selection suboptimal: %g vs %g", bit.WeightedDist, want)
	}
	if want := bruteDigits(space, coreSet, peers, 1, 4); math.Abs(hex.WeightedDist-want) > 1e-9 {
		t.Errorf("hex selection suboptimal: %g vs %g", hex.WeightedDist, want)
	}
}

// QoS with digit bounds: brute-force cross-check on small instances.
func TestPastryQoSDigitsMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 100; trial++ {
		space := id.NewSpace(8)
		n := 3 + rng.Intn(8)
		raw := rng.Perm(256)[:n+1]
		peers := make([]Peer, n)
		for i := range peers {
			peers[i] = Peer{ID: id.ID(raw[i]), Freq: float64(rng.Intn(10))}
		}
		coreSet := []id.ID{id.ID(raw[n])}
		k := 1 + rng.Intn(2)
		const d = 2
		bounds := map[id.ID]uint{}
		for _, p := range peers {
			if rng.Intn(4) == 0 {
				bounds[p.ID] = uint(rng.Intn(4))
			}
		}
		in, err := newInstance(space, coreSet, peers, k)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := bruteForce(in.selectablePeers(), k, func(aux []id.ID) float64 {
			for v, x := range bounds {
				dd := space.Bits() / d
				for _, w := range append(append([]id.ID{}, in.coreIDs...), aux...) {
					if dw := space.PastryDistDigits(w, v, d); dw < dd {
						dd = dw
					}
				}
				if dd > x {
					return math.Inf(1)
				}
			}
			return EvalPastryDigits(space, in.coreIDs, in.peers, aux, d)
		})
		res, err := SelectPastryQoSDigits(space, coreSet, peers, k, d, bounds)
		if err == ErrInfeasible {
			if !math.IsInf(want, 1) {
				t.Fatalf("trial %d: infeasible reported but brute found %g", trial, want)
			}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.WeightedDist-want) > 1e-9 {
			t.Fatalf("trial %d: QoS digits %g, brute %g", trial, res.WeightedDist, want)
		}
	}
}

// The incremental maintainer under hex digits must track full
// recomputation.
func TestMaintainerDigitsMatchesFull(t *testing.T) {
	space := id.NewSpace(8)
	rng := rand.New(rand.NewSource(4343))
	m, err := NewPastryMaintainerDigits(space, []id.ID{0}, []Peer{{ID: 255, Freq: 1}}, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	freqs := map[id.ID]float64{255: 1}
	for step := 0; step < 300; step++ {
		p := id.ID(rng.Intn(255) + 1)
		f := float64(rng.Intn(10))
		m.SetFreq(p, f)
		freqs[p] = f
		if step%25 != 0 {
			continue
		}
		var peers []Peer
		for pid, fv := range freqs {
			peers = append(peers, Peer{ID: pid, Freq: fv})
		}
		want, err := SelectPastryGreedyDigits(space, []id.ID{0}, peers, 2, 4)
		if err != nil {
			t.Fatal(err)
		}
		got := m.Select()
		if math.Abs(got.WeightedDist-want.WeightedDist) > 1e-9 {
			t.Fatalf("step %d: incremental %g vs full %g", step, got.WeightedDist, want.WeightedDist)
		}
	}
}
