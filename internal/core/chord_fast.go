package core

import (
	"math"
	"sort"

	"peercache/internal/id"
)

// segOracle answers segment-cost queries s(j, m) — the cost of routing
// queries to nodes j..m when the last auxiliary pointer is at j — in
// O(log) time after O(n·b·log n) preprocessing, following Section V-B.
//
// For each node j it tabulates the jump points p_j(r) (the farthest node
// within distance r of j, eq. 9) and the prefix sums
//
//	W_j(r) = Σ_{r'=1..r} r' · (F(p_j(r')) − F(p_j(r'−1))),
//
// so a core-free segment cost is two lookups. Core neighbors split a
// segment per eq. 10; consecutive inter-core segment costs are
// pre-summed, so the split needs one binary search over the core indices.
type segOracle struct {
	p *chordProblem
	b int

	// jump[j][r] and w[j][r], r in [0, b]; jump[j][0] = j, w[j][0] = 0.
	jump [][]int32
	w    [][]float64

	// corePrefix[t] = Σ_{u<t} snc(coreIdx[u], coreIdx[u+1]−1).
	corePrefix []float64
}

func newSegOracle(p *chordProblem) *segOracle {
	b := int(p.in.space.Bits())
	o := &segOracle{
		p:    p,
		b:    b,
		jump: make([][]int32, p.n+1),
		w:    make([][]float64, p.n+1),
	}
	for j := 1; j <= p.n; j++ {
		jr := make([]int32, b+1)
		wr := make([]float64, b+1)
		jr[0] = int32(j)
		for r := 1; r <= b; r++ {
			// Farthest node at distance <= r: gap <= 2^r − 1.
			limit := p.gaps[j] + (uint64(1)<<uint(r) - 1)
			lo := int(jr[r-1])
			hi := sort.Search(p.n-lo, func(x int) bool {
				return p.gaps[lo+1+x] > limit
			}) + lo
			jr[r] = int32(hi)
			wr[r] = wr[r-1] + float64(r)*(p.cumF[hi]-p.cumF[jr[r-1]])
		}
		o.jump[j] = jr
		o.w[j] = wr
	}
	o.corePrefix = make([]float64, len(p.coreIdx))
	for t := 1; t < len(p.coreIdx); t++ {
		o.corePrefix[t] = o.corePrefix[t-1] + o.snc(p.coreIdx[t-1], p.coreIdx[t]-1)
	}
	return o
}

// snc is the core-free segment cost s(j, m) of eq. 9: every node l in
// (j, m] pays f_l times its eq. 6 distance from j.
func (o *segOracle) snc(j, m int) float64 {
	if m <= j {
		return 0
	}
	d := int(o.p.in.space.ChordDist(o.p.ids[j], o.p.ids[m]))
	pj := int(o.jump[j][d-1])
	return o.w[j][d-1] + float64(d)*(o.p.cumF[m]-o.p.cumF[pj])
}

// s is the full segment cost with core-neighbor splitting (eq. 10).
func (o *segOracle) s(j, m int) float64 {
	ci := o.p.coreIdx
	// Cores strictly after j and at most m.
	lo := sort.SearchInts(ci, j+1)
	hi := sort.SearchInts(ci, m+1) - 1
	if lo > hi {
		return o.snc(j, m)
	}
	return o.snc(j, ci[lo]-1) + (o.corePrefix[hi] - o.corePrefix[lo]) + o.snc(ci[hi], m)
}

// SelectChordFast selects the optimal k auxiliary neighbors for the Chord
// node self using the fast algorithm of Section V-B: O(log b)-amortized
// segment-cost queries over precomputed jump tables, combined with a
// monotone divide-and-conquer solver per DP layer — O(n log n) segment
// queries per layer instead of the O(n²) of SelectChordDP. The two return
// the same optimal cost.
func SelectChordFast(space id.Space, self id.ID, core []id.ID, peers []Peer, k int) (Result, error) {
	p, err := newChordProblem(space, self, core, peers, k)
	if err != nil {
		return Result{}, err
	}
	if k >= p.in.selectable {
		return p.selectAll(), nil
	}
	o := newSegOracle(p)
	n := p.n
	inf := math.Inf(1)

	// C_0(m): core-only routing prefix cost.
	prev := make([]float64, n+1)
	for m := 1; m <= n; m++ {
		prev[m] = prev[m-1]
		if p.fs[m] > 0 {
			prev[m] += p.fs[m] * p.bestCoreD[m]
		}
	}

	choice := make([][]int32, k+1)
	cur := make([]float64, n+1)
	for i := 1; i <= k; i++ {
		choice[i] = make([]int32, n+1)
		cur[0] = inf
		val := func(j, m int) float64 {
			if !p.sel[j] || math.IsInf(prev[j-1], 1) {
				return inf
			}
			return prev[j-1] + o.s(j, m)
		}
		dncRowMinima(n, val, cur, choice[i])
		prev, cur = cur, prev
	}

	wd := prev[n]
	if math.IsInf(wd, 1) {
		return p.in.result(nil, wd), nil
	}
	return p.in.result(p.auxFromChoice(choice, k), wd), nil
}
