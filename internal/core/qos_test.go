package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"peercache/internal/id"
)

// bruteQoS is a brute-force optimizer that discards subsets violating the
// distance bounds, for verifying the QoS-constrained algorithms.
func bruteQoSPastry(space id.Space, core []id.ID, peers []Peer, k int, bounds map[id.ID]uint) float64 {
	in, err := newInstance(space, core, peers, k)
	if err != nil {
		panic(err)
	}
	dist := func(v id.ID, aux []id.ID) uint {
		d := space.Bits()
		for _, w := range in.coreIDs {
			if dw := space.PastryDist(w, v); dw < d {
				d = dw
			}
		}
		for _, w := range aux {
			if dw := space.PastryDist(w, v); dw < d {
				d = dw
			}
		}
		return d
	}
	best, _ := bruteForce(in.selectablePeers(), k, func(aux []id.ID) float64 {
		for v, x := range bounds {
			if dist(v, aux) > x {
				return math.Inf(1)
			}
		}
		return EvalPastry(space, in.coreIDs, in.peers, aux)
	})
	return best
}

func bruteQoSChord(space id.Space, self id.ID, core []id.ID, peers []Peer, k int, bounds map[id.ID]uint) float64 {
	p, err := newChordProblem(space, self, core, peers, k)
	if err != nil {
		panic(err)
	}
	dist := func(v id.ID, aux []id.ID) float64 {
		gv := space.Gap(self, v)
		best := math.Inf(1)
		for _, w := range append(append([]id.ID{}, p.in.coreIDs...), aux...) {
			if space.Gap(self, w) > gv {
				continue
			}
			if d := float64(space.ChordDist(w, v)); d < best {
				best = d
			}
		}
		return best
	}
	best, _ := bruteForce(p.in.selectablePeers(), min(k, p.in.selectable), func(aux []id.ID) float64 {
		for v, x := range bounds {
			if dist(v, aux) > float64(x) {
				return math.Inf(1)
			}
		}
		return EvalChord(space, self, p.in.coreIDs, p.in.peers, aux)
	})
	return best
}

func randBounds(rng *rand.Rand, peers []Peer, bits uint) map[id.ID]uint {
	bounds := make(map[id.ID]uint)
	for _, p := range peers {
		if rng.Intn(4) == 0 {
			bounds[p.ID] = uint(rng.Intn(int(bits)))
		}
	}
	return bounds
}

func TestPastryQoSMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(1515))
	feasible, infeasible := 0, 0
	for trial := 0; trial < 200; trial++ {
		space, core, peers, k := randPastryInstance(rng)
		bounds := randBounds(rng, peers, space.Bits())
		want := bruteQoSPastry(space, core, peers, k, bounds)
		res, err := SelectPastryQoS(space, core, peers, k, bounds)
		if errors.Is(err, ErrInfeasible) {
			if !math.IsInf(want, 1) {
				t.Fatalf("trial %d: reported infeasible but brute found %g", trial, want)
			}
			infeasible++
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		feasible++
		if math.Abs(res.WeightedDist-want) > 1e-9 {
			t.Fatalf("trial %d: QoS cost %g, brute %g", trial, res.WeightedDist, want)
		}
		// Every bound must actually hold for the returned set.
		for v, x := range bounds {
			d := space.Bits()
			for _, w := range append(append([]id.ID{}, core...), res.Aux...) {
				if dw := space.PastryDist(w, v); dw < d {
					d = dw
				}
			}
			if d > x {
				t.Fatalf("trial %d: bound %d for peer %d violated (d=%d)", trial, x, v, d)
			}
		}
	}
	if feasible == 0 || infeasible == 0 {
		t.Logf("coverage note: feasible=%d infeasible=%d", feasible, infeasible)
	}
}

func TestChordQoSMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(1616))
	feasible, infeasible := 0, 0
	for trial := 0; trial < 200; trial++ {
		space, self, core, peers, k := randChordInstance(rng, true)
		bounds := randBounds(rng, peers, space.Bits())
		want := bruteQoSChord(space, self, core, peers, k, bounds)
		res, err := SelectChordQoS(space, self, core, peers, k, bounds)
		if errors.Is(err, ErrInfeasible) {
			if !math.IsInf(want, 1) {
				t.Fatalf("trial %d: reported infeasible but brute found %g", trial, want)
			}
			infeasible++
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		feasible++
		if math.Abs(res.WeightedDist-want) > 1e-9 {
			t.Fatalf("trial %d: QoS cost %g, brute %g", trial, res.WeightedDist, want)
		}
	}
	if feasible == 0 || infeasible == 0 {
		t.Logf("coverage note: feasible=%d infeasible=%d", feasible, infeasible)
	}
}

func TestQoSNeverCheaperThanUnconstrained(t *testing.T) {
	rng := rand.New(rand.NewSource(1717))
	for trial := 0; trial < 100; trial++ {
		space, core, peers, k := randPastryInstance(rng)
		bounds := randBounds(rng, peers, space.Bits())
		free, err := SelectPastryGreedy(space, core, peers, k)
		if err != nil {
			t.Fatal(err)
		}
		res, err := SelectPastryQoS(space, core, peers, k, bounds)
		if errors.Is(err, ErrInfeasible) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if res.WeightedDist < free.WeightedDist-1e-9 {
			t.Fatalf("trial %d: constrained %g cheaper than unconstrained %g", trial, res.WeightedDist, free.WeightedDist)
		}
	}
}

func TestQoSEmptyBoundsEqualsUnconstrained(t *testing.T) {
	rng := rand.New(rand.NewSource(1818))
	for trial := 0; trial < 50; trial++ {
		space, core, peers, k := randPastryInstance(rng)
		free, err := SelectPastryDP(space, core, peers, k)
		if err != nil {
			t.Fatal(err)
		}
		res, err := SelectPastryQoS(space, core, peers, k, map[id.ID]uint{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.WeightedDist-free.WeightedDist) > 1e-9 {
			t.Fatalf("trial %d: empty-bounds QoS %g vs plain %g", trial, res.WeightedDist, free.WeightedDist)
		}

		spaceC, self, coreC, peersC, kC := randChordInstance(rng, true)
		freeC, err := SelectChordDP(spaceC, self, coreC, peersC, kC)
		if err != nil {
			t.Fatal(err)
		}
		resC, err := SelectChordQoS(spaceC, self, coreC, peersC, kC, map[id.ID]uint{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(resC.WeightedDist-freeC.WeightedDist) > 1e-9 {
			t.Fatalf("trial %d: chord empty-bounds QoS %g vs plain %g", trial, resC.WeightedDist, freeC.WeightedDist)
		}
	}
}

func TestQoSUnknownPeerErrors(t *testing.T) {
	space := id.NewSpace(4)
	if _, err := SelectPastryQoS(space, []id.ID{0}, []Peer{{ID: 1, Freq: 1}}, 1, map[id.ID]uint{9: 1}); err == nil {
		t.Error("Pastry QoS with unknown peer: no error")
	}
	if _, err := SelectChordQoS(space, 0, []id.ID{1}, []Peer{{ID: 2, Freq: 1}}, 1, map[id.ID]uint{9: 1}); err == nil {
		t.Error("Chord QoS with unknown peer: no error")
	}
}

func TestPastryQoSForcesColdSubtree(t *testing.T) {
	// All mass at 1111; a bound on cold peer 0001 forces a pointer into
	// its height-0 subtree (the leaf itself), overriding pure frequency.
	space := id.NewSpace(4)
	core := []id.ID{0b1000}
	peers := []Peer{
		{ID: 0b1111, Freq: 100},
		{ID: 0b0001, Freq: 1},
	}
	res, err := SelectPastryQoS(space, core, peers, 1, map[id.ID]uint{0b0001: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Aux) != 1 || res.Aux[0] != 0b0001 {
		t.Fatalf("Aux = %v, want [0001]", res.Aux)
	}
	// With k=2 both can be satisfied.
	res, err = SelectPastryQoS(space, core, peers, 2, map[id.ID]uint{0b0001: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Aux) != 2 {
		t.Fatalf("Aux = %v, want both peers", res.Aux)
	}
}

func TestChordQoSInfeasibleDetected(t *testing.T) {
	// Two far-apart cold peers each demanding distance 0 but only one
	// pointer available: infeasible.
	space := id.NewSpace(6)
	core := []id.ID{1}
	peers := []Peer{
		{ID: 20, Freq: 1},
		{ID: 40, Freq: 1},
	}
	_, err := SelectChordQoS(space, 0, core, peers, 1, map[id.ID]uint{20: 0, 40: 0})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	res, err := SelectChordQoS(space, 0, core, peers, 2, map[id.ID]uint{20: 0, 40: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Aux) != 2 {
		t.Fatalf("Aux = %v, want both", res.Aux)
	}
}
