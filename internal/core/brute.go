package core

import (
	"math"

	"peercache/internal/id"
)

// bruteForce enumerates every size-k subset of candidates and returns the
// minimum of eval over them. It is the reference optimizer the selection
// algorithms are verified against; exponential, test-sized inputs only.
func bruteForce(candidates []id.ID, k int, eval func(aux []id.ID) float64) (float64, []id.ID) {
	if k > len(candidates) {
		k = len(candidates)
	}
	best := math.Inf(1)
	var bestSet []id.ID
	subset := make([]id.ID, 0, k)
	var rec func(start, remaining int)
	rec = func(start, remaining int) {
		if remaining == 0 {
			if c := eval(subset); c < best {
				best = c
				bestSet = append([]id.ID(nil), subset...)
			}
			return
		}
		for i := start; i+remaining <= len(candidates); i++ {
			subset = append(subset, candidates[i])
			rec(i+1, remaining-1)
			subset = subset[:len(subset)-1]
		}
	}
	rec(0, k)
	return best, bestSet
}

// BrutePastry returns the optimal weighted distance for a Pastry instance
// by exhaustive search. Exported for benchmarks and examples that want a
// ground-truth comparison; exponential in k.
func BrutePastry(space id.Space, core []id.ID, peers []Peer, k int) (float64, []id.ID, error) {
	in, err := newInstance(space, core, peers, k)
	if err != nil {
		return 0, nil, err
	}
	wd, aux := bruteForce(in.selectablePeers(), k, func(aux []id.ID) float64 {
		return EvalPastry(space, in.coreIDs, in.peers, aux)
	})
	return wd, aux, nil
}

// BruteChord returns the optimal weighted distance for a Chord instance
// by exhaustive search. Exponential in k; testing and calibration only.
func BruteChord(space id.Space, self id.ID, core []id.ID, peers []Peer, k int) (float64, []id.ID, error) {
	p, err := newChordProblem(space, self, core, peers, k)
	if err != nil {
		return 0, nil, err
	}
	wd, aux := bruteForce(p.in.selectablePeers(), k, func(aux []id.ID) float64 {
		return EvalChord(space, self, p.in.coreIDs, p.in.peers, aux)
	})
	return wd, aux, nil
}
