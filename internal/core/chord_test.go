package core

import (
	"math"
	"math/rand"
	"testing"

	"peercache/internal/id"
)

// randChordInstance draws a random small instance around a random self.
// When withSuccessor is true the core set contains self's immediate
// successor, as real Chord finger tables always do, making every peer
// reachable (finite costs).
func randChordInstance(rng *rand.Rand, withSuccessor bool) (id.Space, id.ID, []id.ID, []Peer, int) {
	bits := uint(5 + rng.Intn(5))
	space := id.NewSpace(bits)
	n := 3 + rng.Intn(12)
	raw := rng.Perm(int(space.Size()))[:n+3]
	self := id.ID(raw[n+2])
	peers := make([]Peer, n)
	for i := range peers {
		peers[i] = Peer{ID: id.ID(raw[i]), Freq: float64(rng.Intn(20))}
	}
	var core []id.ID
	if withSuccessor {
		succ := peers[0].ID
		bestGap := space.Gap(self, succ)
		for _, p := range peers[1:] {
			if g := space.Gap(self, p.ID); g < bestGap {
				succ, bestGap = p.ID, g
			}
		}
		if g := space.Gap(self, id.ID(raw[n])); g < bestGap {
			succ = id.ID(raw[n])
		}
		core = append(core, succ)
	}
	nc := 1 + rng.Intn(2)
	for i := 0; i < nc; i++ {
		if rng.Intn(2) == 0 {
			core = append(core, peers[rng.Intn(n)].ID)
		} else {
			core = append(core, id.ID(raw[n+1]))
		}
	}
	k := 1 + rng.Intn(4)
	return space, self, core, peers, k
}

func TestChordHandExample(t *testing.T) {
	// 4-bit ring, self = 0. Core = {1} (successor). Peers: 9 (f=10),
	// 10 (f=1), 2 (f=1). Distances via core 1: d(1,9)=4 (gap 8),
	// d(1,10)=4 (gap 9 -> leftmost 1 pos 4), d(1,2)=1.
	// One pointer at 9 gives: 9 -> 0, 10 -> d(9,10)=1, 2 -> 1. Total 2.
	space := id.NewSpace(4)
	res, err := SelectChordDP(space, 0, []id.ID{1}, []Peer{
		{ID: 9, Freq: 10}, {ID: 10, Freq: 1}, {ID: 2, Freq: 1},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Aux) != 1 || res.Aux[0] != 9 {
		t.Fatalf("Aux = %v, want [9]", res.Aux)
	}
	if res.WeightedDist != 2 {
		t.Errorf("WeightedDist = %g, want 2", res.WeightedDist)
	}
}

func TestChordDPEqualsFastEqualsBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	for trial := 0; trial < 300; trial++ {
		space, self, core, peers, k := randChordInstance(rng, true)
		dp, err := SelectChordDP(space, self, core, peers, k)
		if err != nil {
			t.Fatalf("trial %d: DP error: %v", trial, err)
		}
		fast, err := SelectChordFast(space, self, core, peers, k)
		if err != nil {
			t.Fatalf("trial %d: fast error: %v", trial, err)
		}
		want, _, err := BruteChord(space, self, core, peers, k)
		if err != nil {
			t.Fatalf("trial %d: brute error: %v", trial, err)
		}
		if math.Abs(dp.WeightedDist-want) > 1e-9 {
			t.Fatalf("trial %d: DP cost %g, brute %g", trial, dp.WeightedDist, want)
		}
		if math.Abs(fast.WeightedDist-want) > 1e-9 {
			t.Fatalf("trial %d: fast cost %g, brute %g", trial, fast.WeightedDist, want)
		}
	}
}

// Instances whose peers may precede every core neighbor exercise the
// +Inf paths: both algorithms must still agree.
func TestChordAgreementWithUnreachablePeers(t *testing.T) {
	rng := rand.New(rand.NewSource(707))
	for trial := 0; trial < 200; trial++ {
		space, self, core, peers, k := randChordInstance(rng, false)
		dp, err := SelectChordDP(space, self, core, peers, k)
		if err != nil {
			t.Fatalf("trial %d: DP error: %v", trial, err)
		}
		fast, err := SelectChordFast(space, self, core, peers, k)
		if err != nil {
			t.Fatalf("trial %d: fast error: %v", trial, err)
		}
		want, _, err := BruteChord(space, self, core, peers, k)
		if err != nil {
			t.Fatal(err)
		}
		bothInf := math.IsInf(dp.WeightedDist, 1) && math.IsInf(want, 1)
		if !bothInf && math.Abs(dp.WeightedDist-want) > 1e-9 {
			t.Fatalf("trial %d: DP cost %v, brute %v", trial, dp.WeightedDist, want)
		}
		bothInf = math.IsInf(fast.WeightedDist, 1) && math.IsInf(want, 1)
		if !bothInf && math.Abs(fast.WeightedDist-want) > 1e-9 {
			t.Fatalf("trial %d: fast cost %v, brute %v", trial, fast.WeightedDist, want)
		}
	}
}

func TestChordReportedCostMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(808))
	for trial := 0; trial < 300; trial++ {
		space, self, core, peers, k := randChordInstance(rng, true)
		for _, sel := range []func(id.Space, id.ID, []id.ID, []Peer, int) (Result, error){
			SelectChordDP, SelectChordFast,
		} {
			res, err := sel(space, self, core, peers, k)
			if err != nil {
				t.Fatal(err)
			}
			got := EvalChord(space, self, core, peers, res.Aux)
			if math.Abs(got-res.WeightedDist) > 1e-9 {
				t.Fatalf("trial %d: eval %g vs reported %g (aux %v)", trial, got, res.WeightedDist, res.Aux)
			}
		}
	}
}

func TestChordCostMonotoneInK(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	for trial := 0; trial < 50; trial++ {
		space, self, core, peers, _ := randChordInstance(rng, true)
		prev := math.Inf(1)
		for k := 0; k <= 6; k++ {
			res, err := SelectChordFast(space, self, core, peers, k)
			if err != nil {
				t.Fatal(err)
			}
			if res.WeightedDist > prev+1e-9 {
				t.Fatalf("trial %d: cost increased at k=%d: %g -> %g", trial, k, prev, res.WeightedDist)
			}
			prev = res.WeightedDist
		}
	}
}

func TestChordAuxNeverContainsCoreOrSelf(t *testing.T) {
	rng := rand.New(rand.NewSource(1010))
	for trial := 0; trial < 200; trial++ {
		space, self, core, peers, k := randChordInstance(rng, true)
		res, err := SelectChordFast(space, self, core, peers, k)
		if err != nil {
			t.Fatal(err)
		}
		coreSet := make(map[id.ID]bool)
		for _, c := range core {
			coreSet[c] = true
		}
		for _, a := range res.Aux {
			if coreSet[a] || a == self {
				t.Fatalf("trial %d: invalid aux %d", trial, a)
			}
		}
	}
}

func TestChordKExceedsSelectable(t *testing.T) {
	space := id.NewSpace(4)
	res, err := SelectChordFast(space, 0, []id.ID{1}, []Peer{
		{ID: 5, Freq: 1}, {ID: 9, Freq: 2}, {ID: 1, Freq: 1},
	}, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Aux) != 2 {
		t.Fatalf("Aux = %v, want the 2 selectable peers", res.Aux)
	}
	if res.WeightedDist != 0 {
		t.Errorf("WeightedDist = %g, want 0", res.WeightedDist)
	}
}

func TestChordValidationErrors(t *testing.T) {
	space := id.NewSpace(4)
	cases := []struct {
		name  string
		self  id.ID
		core  []id.ID
		peers []Peer
		k     int
	}{
		{"self among peers", 3, []id.ID{1}, []Peer{{ID: 3, Freq: 1}}, 1},
		{"self among core", 3, []id.ID{3}, []Peer{{ID: 1, Freq: 1}}, 1},
		{"self out of space", 16, []id.ID{1}, []Peer{{ID: 1, Freq: 1}}, 1},
		{"negative k", 0, []id.ID{1}, []Peer{{ID: 2, Freq: 1}}, -2},
	}
	for _, tc := range cases {
		if _, err := SelectChordDP(space, tc.self, tc.core, tc.peers, tc.k); err == nil {
			t.Errorf("%s: no error from DP", tc.name)
		}
		if _, err := SelectChordFast(space, tc.self, tc.core, tc.peers, tc.k); err == nil {
			t.Errorf("%s: no error from fast", tc.name)
		}
	}
}

// The paper's key intuition: frequency-aware placement beats putting the
// pointer anywhere else when popularity is skewed.
func TestChordSkewRewardsPopularRegion(t *testing.T) {
	space := id.NewSpace(10)
	self := id.ID(0)
	core := []id.ID{1, 3, 6, 12, 24, 48, 100, 200, 400, 800}
	var peers []Peer
	// A hot cluster far from self plus cold peers elsewhere.
	for i := 0; i < 8; i++ {
		peers = append(peers, Peer{ID: id.ID(900 + i), Freq: 50})
	}
	for i := 0; i < 8; i++ {
		peers = append(peers, Peer{ID: id.ID(30 + 7*i), Freq: 1})
	}
	res, err := SelectChordFast(space, self, core, peers, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Aux) != 1 || res.Aux[0] < 900 {
		t.Fatalf("Aux = %v, want a pointer into the hot cluster", res.Aux)
	}
}

func TestSegOracleMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(1111))
	for trial := 0; trial < 100; trial++ {
		space, self, core, peers, k := randChordInstance(rng, true)
		p, err := newChordProblem(space, self, core, peers, k)
		if err != nil {
			t.Fatal(err)
		}
		o := newSegOracle(p)
		for j := 1; j <= p.n; j++ {
			for m := j; m <= p.n; m++ {
				want := 0.0
				for l := j; l <= m; l++ {
					if p.fs[l] > 0 {
						want += p.fs[l] * p.dist(j, l)
					}
				}
				if got := o.s(j, m); math.Abs(got-want) > 1e-9 {
					t.Fatalf("trial %d: s(%d,%d) = %g, want %g", trial, j, m, got, want)
				}
			}
		}
	}
}

// The inverse quadrangle inequality the fast layer solver relies on:
// s(j, m+1) - s(j, m) is non-increasing in j.
func TestSegmentCostInverseQuadrangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(1212))
	for trial := 0; trial < 100; trial++ {
		space, self, core, peers, k := randChordInstance(rng, true)
		p, err := newChordProblem(space, self, core, peers, k)
		if err != nil {
			t.Fatal(err)
		}
		o := newSegOracle(p)
		for m := 1; m < p.n; m++ {
			prevDelta := math.Inf(1)
			for j := 1; j <= m; j++ {
				delta := o.s(j, m+1) - o.s(j, m)
				if delta > prevDelta+1e-9 {
					t.Fatalf("trial %d: IQI violated at j=%d m=%d: %g > %g", trial, j, m, delta, prevDelta)
				}
				prevDelta = delta
			}
		}
	}
}

func TestDncRowMinimaAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1313))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		// Build a random matrix satisfying the inverse quadrangle
		// inequality: val(j,m) = E(j) + w(j,m) with w built from
		// per-column increment sequences that are non-increasing in j.
		e := make([]float64, n+1)
		for j := 1; j <= n; j++ {
			e[j] = rng.Float64() * 10
			if rng.Intn(5) == 0 {
				e[j] = math.Inf(1)
			}
		}
		// incr[m] values shared across columns, scaled down as j grows.
		base := make([]float64, n+1)
		for m := range base {
			base[m] = rng.Float64() * 5
		}
		w := make([][]float64, n+2)
		for j := 0; j <= n+1; j++ {
			w[j] = make([]float64, n+1)
		}
		for j := 1; j <= n; j++ {
			for m := j + 1; m <= n; m++ {
				// increment from m-1 to m for column j: must be
				// non-increasing in j; base[m]/(1+j) is.
				w[j][m] = w[j][m-1] + base[m]/(1+float64(j))
			}
		}
		val := func(j, m int) float64 { return e[j] + w[j][m] }

		cost := make([]float64, n+1)
		bestJ := make([]int32, n+1)
		dncRowMinima(n, val, cost, bestJ)

		for m := 1; m <= n; m++ {
			want := math.Inf(1)
			for j := 1; j <= m; j++ {
				if v := val(j, m); v < want {
					want = v
				}
			}
			if math.IsInf(want, 1) {
				if !math.IsInf(cost[m], 1) || bestJ[m] != 0 {
					t.Fatalf("trial %d m=%d: want inf, got %g (j=%d)", trial, m, cost[m], bestJ[m])
				}
				continue
			}
			if math.Abs(cost[m]-want) > 1e-9 {
				t.Fatalf("trial %d m=%d: cost %g, want %g", trial, m, cost[m], want)
			}
			if got := val(int(bestJ[m]), m); math.Abs(got-cost[m]) > 1e-9 {
				t.Fatalf("trial %d m=%d: bestJ does not achieve cost", trial, m)
			}
		}
	}
}
