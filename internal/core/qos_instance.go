package core

// Shared instance builder for the live runtime's QoS-aware aux
// selection: all three geometry packages turn a frequency-window
// snapshot plus the runtime's latency model into the (peers, bounds)
// arguments the QoS selectors take, with identical filtering rules —
// so the logic lives here once, next to the selectors it feeds.

import (
	"sort"

	"peercache/internal/freq"
	"peercache/internal/id"
)

// qosInstanceCap bounds the peer count of a live QoS instance. The
// selectors are superlinear in the instance size (the Chord V-C DP is
// O(n²k)) and the live runtime re-runs them on every aux tick with no
// drift cache (costs move with every RTT sample), so an unbounded busy
// window — an intermediate node forwards traffic for thousands of keys
// — would turn the maintenance tick into a CPU hog that distorts the
// very latencies QoS selection is trying to improve. With an aux
// budget of k ≪ 64, peers outside the top 64 weighted frequencies
// essentially never reach the optimum; their bounds are dropped with
// them (a peer too cold to rank cannot justify a reserved direct
// pointer). Instances at or under the cap are passed through exactly,
// which keeps the degenerate no-cost/no-bound case objective-equal to
// the unconstrained selection (the property the live conformance test
// pins).
const qosInstanceCap = 64

// QoSInstance builds a cost-weighted selection instance from a
// frequency snapshot: observed peers minus self and the core set, each
// peer's frequency multiplied by cost(peer) (weight 1 when cost returns
// false or a non-positive value — no estimate means no opinion), and a
// bound map holding bound(peer) for exactly the peers that made it into
// the instance (the QoS selectors reject bounds on unknown ids). The
// weighted objective Σ f(v)·c(v)·d(v, N∪A) is expected latency when
// c(v) is the measured RTT to v. Instances larger than qosInstanceCap
// are truncated to the top weighted frequencies. A nil bound callback
// means no peer is bounded — the cost-weighted unconstrained instance.
func QoSInstance(snapshot []freq.Entry, self id.ID, coreIDs []id.ID, cost func(id.ID) (float64, bool), bound func(id.ID) (uint, bool)) ([]Peer, map[id.ID]uint) {
	coreSet := make(map[id.ID]bool, len(coreIDs))
	for _, c := range coreIDs {
		coreSet[c] = true
	}
	var peers []Peer
	var bounds map[id.ID]uint
	for _, e := range snapshot {
		if e.Count == 0 || e.Peer == self || coreSet[e.Peer] {
			continue
		}
		w := 1.0
		if c, ok := cost(e.Peer); ok && c > 0 {
			w = c
		}
		peers = append(peers, Peer{ID: e.Peer, Freq: float64(e.Count) * w})
	}
	if len(peers) > qosInstanceCap {
		sort.Slice(peers, func(i, j int) bool {
			if peers[i].Freq != peers[j].Freq {
				return peers[i].Freq > peers[j].Freq
			}
			return peers[i].ID < peers[j].ID
		})
		peers = peers[:qosInstanceCap]
	}
	for i := range peers {
		if bound == nil {
			break
		}
		if b, ok := bound(peers[i].ID); ok {
			if bounds == nil {
				bounds = make(map[id.ID]uint)
			}
			bounds[peers[i].ID] = b
		}
	}
	return peers, bounds
}
