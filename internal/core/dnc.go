package core

import "math"

// dncRowMinima computes, for every m in [1, n],
//
//	cost[m]  = min over j in [1, m] of val(j, m)
//	bestJ[m] = the largest j attaining it (0 when every value is +Inf)
//
// in O(n log n) evaluations of val, assuming the largest argmin is
// non-decreasing in m. That holds whenever val(j, m) = E(j) + w(j, m)
// with w satisfying the inverse quadrangle inequality
// w(j+1, m+1) - w(j+1, m) <= w(j, m+1) - w(j, m), which the Chord segment
// cost s(j, m) does: its per-node increment f_{m+1}·d(j, m+1) is
// non-increasing in j because the eq. 6 distance is monotone in the id
// gap. Columns with E(j) = +Inf never win and do not disturb
// monotonicity.
//
// cost and bestJ must have length n+1; index 0 is left untouched.
func dncRowMinima(n int, val func(j, m int) float64, cost []float64, bestJ []int32) {
	var rec func(mlo, mhi, jlo, jhi int)
	rec = func(mlo, mhi, jlo, jhi int) {
		if mlo > mhi {
			return
		}
		mid := (mlo + mhi) / 2
		best := math.Inf(1)
		bj := 0
		hi := min(jhi, mid)
		for j := jlo; j <= hi; j++ {
			if v := val(j, mid); v <= best && !math.IsInf(v, 1) {
				best = v
				bj = j
			}
		}
		cost[mid] = best
		bestJ[mid] = int32(bj)
		loSplit, hiSplit := jhi, jlo
		if bj > 0 {
			loSplit, hiSplit = bj, bj
		}
		rec(mlo, mid-1, jlo, loSplit)
		rec(mid+1, mhi, hiSplit, jhi)
	}
	rec(1, n, 1, n)
}
