package core

// Tests at the 63-bit identifier extreme, where any unsigned arithmetic
// slip (gap sums, jump-table limits, shift widths) would overflow.

import (
	"math"
	"math/rand"
	"testing"

	"peercache/internal/id"
)

func TestChordMaxBitsAgreement(t *testing.T) {
	space := id.NewSpace(63)
	rng := rand.New(rand.NewSource(636363))
	n := 60
	seen := map[uint64]bool{}
	peers := make([]Peer, 0, n)
	for len(peers) < n {
		v := rng.Uint64() >> 1 // 63-bit
		if v == 0 || seen[v] {
			continue
		}
		seen[v] = true
		peers = append(peers, Peer{ID: id.ID(v), Freq: rng.Float64() * 10})
	}
	// Core includes the successor of self=0 plus spread-out ids near the
	// top of the space (wrap-around stress).
	succ := peers[0].ID
	for _, p := range peers {
		if p.ID < succ {
			succ = p.ID
		}
	}
	coreSet := []id.ID{succ, peers[10].ID, id.ID(uint64(1)<<62 + 12345)}

	for _, k := range []int{1, 3, 7} {
		fast, err := SelectChordFast(space, 0, coreSet, peers, k)
		if err != nil {
			t.Fatal(err)
		}
		dp, err := SelectChordDP(space, 0, coreSet, peers, k)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fast.WeightedDist-dp.WeightedDist) > 1e-6 {
			t.Fatalf("k=%d: fast %g vs dp %g at 63 bits", k, fast.WeightedDist, dp.WeightedDist)
		}
		if ev := EvalChord(space, 0, coreSet, peers, fast.Aux); math.Abs(ev-fast.WeightedDist) > 1e-6 {
			t.Fatalf("k=%d: eval %g vs reported %g at 63 bits", k, ev, fast.WeightedDist)
		}
	}
}

func TestPastryMaxBitsAgreement(t *testing.T) {
	space := id.NewSpace(63)
	rng := rand.New(rand.NewSource(717171))
	n := 60
	seen := map[uint64]bool{}
	peers := make([]Peer, 0, n)
	for len(peers) < n {
		v := rng.Uint64() >> 1
		if seen[v] {
			continue
		}
		seen[v] = true
		peers = append(peers, Peer{ID: id.ID(v), Freq: rng.Float64() * 10})
	}
	coreSet := []id.ID{peers[0].ID, id.ID(uint64(1)<<62 - 1)}

	for _, k := range []int{1, 4} {
		gr, err := SelectPastryGreedy(space, coreSet, peers, k)
		if err != nil {
			t.Fatal(err)
		}
		dp, err := SelectPastryDP(space, coreSet, peers, k)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(gr.WeightedDist-dp.WeightedDist) > 1e-6 {
			t.Fatalf("k=%d: greedy %g vs dp %g at 63 bits", k, gr.WeightedDist, dp.WeightedDist)
		}
		if ev := EvalPastry(space, coreSet, peers, gr.Aux); math.Abs(ev-gr.WeightedDist) > 1e-6 {
			t.Fatalf("k=%d: eval %g vs reported %g at 63 bits", k, ev, gr.WeightedDist)
		}
	}
	// Digit variants at 63 bits: digit sizes dividing 63.
	for _, d := range []uint{3, 7, 9, 21} {
		gr, err := SelectPastryGreedyDigits(space, coreSet, peers, 3, d)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if ev := EvalPastryDigits(space, coreSet, peers, gr.Aux, d); math.Abs(ev-gr.WeightedDist) > 1e-6 {
			t.Fatalf("d=%d: eval %g vs reported %g", d, ev, gr.WeightedDist)
		}
	}
}

// Wrap-around stress: peers clustered around the top of the ring where
// gaps cross zero.
func TestChordWraparoundCluster(t *testing.T) {
	space := id.NewSpace(63)
	top := uint64(1)<<63 - 1
	self := id.ID(top - 5)
	peers := []Peer{
		{ID: id.ID(top - 4), Freq: 1}, // just ahead of self
		{ID: id.ID(top), Freq: 3},     // at the very top
		{ID: 0, Freq: 7},              // wraps to zero
		{ID: 3, Freq: 2},
		{ID: id.ID(uint64(1) << 40), Freq: 5},
	}
	coreSet := []id.ID{id.ID(top - 4)}
	fast, err := SelectChordFast(space, self, coreSet, peers, 2)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := SelectChordDP(space, self, coreSet, peers, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := BruteChord(space, self, coreSet, peers, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fast.WeightedDist-want) > 1e-9 || math.Abs(dp.WeightedDist-want) > 1e-9 {
		t.Fatalf("wraparound: fast %g dp %g brute %g", fast.WeightedDist, dp.WeightedDist, want)
	}
}
