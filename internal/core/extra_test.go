package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"peercache/internal/id"
)

// quick-driven property: for any frequency assignment over a fixed peer
// layout, greedy Pastry equals brute force.
func TestPastryGreedyBruteQuickProperty(t *testing.T) {
	space := id.NewSpace(8)
	coreSet := []id.ID{0b00010000}
	layout := []id.ID{0b11110000, 0b11001100, 0b10101010, 0b01010101, 0b00001111, 0b00111100}
	f := func(fs [6]uint8) bool {
		peers := make([]Peer, len(layout))
		for i, p := range layout {
			peers[i] = Peer{ID: p, Freq: float64(fs[i])}
		}
		gr, err := SelectPastryGreedy(space, coreSet, peers, 2)
		if err != nil {
			return false
		}
		want, _, err := BrutePastry(space, coreSet, peers, 2)
		if err != nil {
			return false
		}
		return math.Abs(gr.WeightedDist-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// quick-driven property: for any frequency assignment, fast Chord equals
// brute force.
func TestChordFastBruteQuickProperty(t *testing.T) {
	space := id.NewSpace(8)
	self := id.ID(0)
	coreSet := []id.ID{3, 40}
	layout := []id.ID{17, 60, 99, 130, 180, 240}
	f := func(fs [6]uint8) bool {
		peers := make([]Peer, len(layout))
		for i, p := range layout {
			peers[i] = Peer{ID: p, Freq: float64(fs[i])}
		}
		fast, err := SelectChordFast(space, self, coreSet, peers, 2)
		if err != nil {
			return false
		}
		want, _, err := BruteChord(space, self, coreSet, peers, 2)
		if err != nil {
			return false
		}
		return math.Abs(fast.WeightedDist-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Aux outputs are always sorted and duplicate-free, for every algorithm.
func TestResultsSortedAndUnique(t *testing.T) {
	rng := rand.New(rand.NewSource(2020))
	for trial := 0; trial < 100; trial++ {
		space, coreSet, peers, k := randPastryInstance(rng)
		checks := []Result{}
		if r, err := SelectPastryGreedy(space, coreSet, peers, k); err == nil {
			checks = append(checks, r)
		}
		if r, err := SelectPastryDP(space, coreSet, peers, k); err == nil {
			checks = append(checks, r)
		}
		spaceC, self, coreC, peersC, kC := randChordInstance(rng, true)
		if r, err := SelectChordDP(spaceC, self, coreC, peersC, kC); err == nil {
			checks = append(checks, r)
		}
		if r, err := SelectChordFast(spaceC, self, coreC, peersC, kC); err == nil {
			checks = append(checks, r)
		}
		for _, r := range checks {
			for i := 1; i < len(r.Aux); i++ {
				if r.Aux[i-1] >= r.Aux[i] {
					t.Fatalf("aux not sorted/unique: %v", r.Aux)
				}
			}
		}
	}
}

// All peers already core: nothing selectable, zero weighted distance.
func TestAllPeersAreCore(t *testing.T) {
	space := id.NewSpace(8)
	peers := []Peer{{ID: 10, Freq: 5}, {ID: 200, Freq: 3}}
	coreSet := []id.ID{10, 200}
	for _, sel := range []func() (Result, error){
		func() (Result, error) { return SelectPastryGreedy(space, coreSet, peers, 3) },
		func() (Result, error) { return SelectChordFast(space, 0, coreSet, peers, 3) },
		func() (Result, error) { return SelectChordDP(space, 0, coreSet, peers, 3) },
	} {
		r, err := sel()
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Aux) != 0 {
			t.Fatalf("Aux = %v, want empty", r.Aux)
		}
		if r.WeightedDist != 0 {
			t.Fatalf("WeightedDist = %g, want 0 (all peers are neighbors)", r.WeightedDist)
		}
	}
}

// Zero-frequency instances are legal: any k-subset costs 0, and the
// algorithms must not crash or divide by the total.
func TestAllZeroFrequencies(t *testing.T) {
	space := id.NewSpace(8)
	peers := []Peer{{ID: 10}, {ID: 90}, {ID: 170}}
	r, err := SelectChordFast(space, 0, []id.ID{1}, peers, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.WeightedDist != 0 || r.Cost != 0 {
		t.Fatalf("zero-frequency result = %+v", r)
	}
	if len(r.Aux) != 2 {
		t.Fatalf("Aux = %v, want 2 picks even with zero mass", r.Aux)
	}
}

// Large-instance agreement: a 2000-peer zipf instance where any indexing
// or overflow bug in the jump tables or the D&C solver would surface.
func TestChordLargeInstanceAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("large instance")
	}
	space := id.NewSpace(32)
	rng := rand.New(rand.NewSource(31337))
	n := 2000
	seen := make(map[uint64]bool)
	peers := make([]Peer, 0, n)
	for len(peers) < n {
		v := rng.Uint64() >> 32
		if v == 0 || seen[v] {
			continue
		}
		seen[v] = true
		peers = append(peers, Peer{ID: id.ID(v), Freq: rng.Float64() * 100})
	}
	var coreSet []id.ID
	coreSet = append(coreSet, peers[0].ID)
	for i := 1; i < 12; i++ {
		coreSet = append(coreSet, peers[i*37].ID)
	}
	// Include the successor of self=0: the smallest id present.
	succ := peers[0].ID
	for _, p := range peers {
		if p.ID < succ {
			succ = p.ID
		}
	}
	coreSet = append(coreSet, succ)

	for _, k := range []int{1, 5, 16} {
		fast, err := SelectChordFast(space, 0, coreSet, peers, k)
		if err != nil {
			t.Fatal(err)
		}
		dp, err := SelectChordDP(space, 0, coreSet, peers, k)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fast.WeightedDist-dp.WeightedDist) > 1e-6*dp.WeightedDist {
			t.Fatalf("k=%d: fast %.6f vs dp %.6f", k, fast.WeightedDist, dp.WeightedDist)
		}
		if ev := EvalChord(space, 0, coreSet, peers, fast.Aux); math.Abs(ev-fast.WeightedDist) > 1e-6*ev {
			t.Fatalf("k=%d: eval %.6f vs reported %.6f", k, ev, fast.WeightedDist)
		}
	}
}

// Large Pastry instance: greedy vs DP agreement plus eval consistency.
func TestPastryLargeInstanceAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("large instance")
	}
	space := id.NewSpace(32)
	rng := rand.New(rand.NewSource(99991))
	n := 2000
	seen := make(map[uint64]bool)
	peers := make([]Peer, 0, n)
	for len(peers) < n {
		v := rng.Uint64() >> 32
		if seen[v] {
			continue
		}
		seen[v] = true
		peers = append(peers, Peer{ID: id.ID(v), Freq: rng.Float64() * 100})
	}
	coreSet := []id.ID{peers[0].ID, peers[500].ID, peers[999].ID}

	for _, k := range []int{1, 8, 32} {
		gr, err := SelectPastryGreedy(space, coreSet, peers, k)
		if err != nil {
			t.Fatal(err)
		}
		dp, err := SelectPastryDP(space, coreSet, peers, k)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(gr.WeightedDist-dp.WeightedDist) > 1e-6 {
			t.Fatalf("k=%d: greedy %.6f vs dp %.6f", k, gr.WeightedDist, dp.WeightedDist)
		}
		if ev := EvalPastry(space, coreSet, peers, gr.Aux); math.Abs(ev-gr.WeightedDist) > 1e-6 {
			t.Fatalf("k=%d: eval %.6f vs reported %.6f", k, ev, gr.WeightedDist)
		}
	}
}

// Convexity (Lemma 4.1's consequence): the optimal Pastry cost sequence
// over k has non-increasing marginal gains.
func TestPastryCostConvexInK(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 50; trial++ {
		space, coreSet, peers, _ := randPastryInstance(rng)
		var costs []float64
		for k := 0; k <= 6; k++ {
			r, err := SelectPastryGreedy(space, coreSet, peers, k)
			if err != nil {
				t.Fatal(err)
			}
			costs = append(costs, r.WeightedDist)
		}
		for k := 2; k < len(costs); k++ {
			gainPrev := costs[k-2] - costs[k-1]
			gain := costs[k-1] - costs[k]
			if gain > gainPrev+1e-9 {
				t.Fatalf("trial %d: marginal gain increased at k=%d: %g > %g (costs %v)",
					trial, k, gain, gainPrev, costs)
			}
		}
	}
}

// The incremental maintainer must stay correct when frequencies go to
// zero and back — exercised because zero-frequency subtrees change the
// penalty terms.
func TestMaintainerZeroFrequencyTransitions(t *testing.T) {
	space := id.NewSpace(8)
	m, err := NewPastryMaintainer(space, []id.ID{0}, []Peer{
		{ID: 0b11110000, Freq: 5},
		{ID: 0b11001100, Freq: 1},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.SetFreq(0b11110000, 0)
	got := m.Select()
	want, err := SelectPastryGreedy(space, []id.ID{0}, []Peer{
		{ID: 0b11110000, Freq: 0},
		{ID: 0b11001100, Freq: 1},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.WeightedDist-want.WeightedDist) > 1e-9 {
		t.Fatalf("after zeroing: incremental %g vs full %g", got.WeightedDist, want.WeightedDist)
	}
	m.SetFreq(0b11110000, 10)
	if got := m.Select(); got.Aux[0] != 0b11110000 {
		t.Fatalf("after restore Aux = %v", got.Aux)
	}
}

// Scaling all frequencies by a constant must not change the chosen set
// (the paper remarks the choice is invariant to constant scaling).
func TestSelectionScaleInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(888))
	for trial := 0; trial < 50; trial++ {
		space, self, coreSet, peers, k := randChordInstance(rng, true)
		scaled := make([]Peer, len(peers))
		for i, p := range peers {
			scaled[i] = Peer{ID: p.ID, Freq: p.Freq * 1000}
		}
		a, err := SelectChordFast(space, self, coreSet, peers, k)
		if err != nil {
			t.Fatal(err)
		}
		b, err := SelectChordFast(space, self, coreSet, scaled, k)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a.WeightedDist*1000-b.WeightedDist) > 1e-6*(1+b.WeightedDist) {
			t.Fatalf("trial %d: scaling changed optimum: %g*1000 vs %g", trial, a.WeightedDist, b.WeightedDist)
		}
	}
}
