package core

import (
	"math/bits"

	"peercache/internal/id"
)

// Kademlia adaptation of the paper's selection framework (the paper
// treats Pastry and Chord; Kademlia's XOR metric slots into the same
// eq. 1 objective). After a first hop to neighbor w, a Kademlia lookup
// for v still has to fix every bit below the highest bit where w and v
// differ — each FIND_NODE step clears at least one more leading bit of
// XOR(w, v) — so the residual hop bound is the index of v's k-bucket at
// w:
//
//	d(w, v) = ⌈log2⌉ of XOR(w, v) = b − LCP(w, v).
//
// That is exactly the Pastry prefix distance of Section IV, so the trie
// dynamic program, the greedy/merge algorithm, the nesting property
// (P), and the O(bk) incremental maintainer all apply verbatim; only
// the framing changes. KademliaMaintainer is that reuse made explicit,
// and EvalKademlia is an independent evaluator computing the distance
// straight from the XOR definition (the equivalence with EvalPastry is
// pinned by tests, not assumed).

// KademliaMaintainer incrementally maintains the optimal
// auxiliary-neighbor set for a Kademlia node under the XOR bucket-ladder
// distance. It is the Pastry maintainer under a distance identity; see
// the package comment above. Not safe for concurrent use.
type KademliaMaintainer struct {
	*PastryMaintainer
}

// NewKademliaMaintainer builds a maintainer over the given initial
// instance. The same validation as NewPastryMaintainer applies.
func NewKademliaMaintainer(space id.Space, core []id.ID, peers []Peer, k int) (*KademliaMaintainer, error) {
	m, err := NewPastryMaintainer(space, core, peers, k)
	if err != nil {
		return nil, err
	}
	return &KademliaMaintainer{PastryMaintainer: m}, nil
}

// SelectKademliaGreedy computes the optimal k auxiliary neighbors for
// the XOR bucket-ladder distance from scratch, O(nkb).
func SelectKademliaGreedy(space id.Space, core []id.ID, peers []Peer, k int) (Result, error) {
	return SelectPastryGreedy(space, core, peers, k)
}

// KademliaDist is the XOR bucket-ladder distance d(u, v): the number of
// significant bits of XOR(u, v), i.e. the index (counted from the
// deepest bucket) of the k-bucket v falls into at u. 0 iff u == v.
func KademliaDist(space id.Space, u, v id.ID) uint {
	return uint(bits.Len64(uint64(u) ^ uint64(v)))
}

// EvalKademlia computes Σ_v f_v · d(v, core ∪ aux) under the XOR
// bucket-ladder distance, directly from the definition — the reference
// evaluator the reuse of the Pastry machinery is verified against. A
// peer with no neighbor at all contributes the full b bits.
func EvalKademlia(space id.Space, core []id.ID, peers []Peer, aux []id.ID) float64 {
	nbrs := make([]id.ID, 0, len(core)+len(aux))
	nbrs = append(nbrs, core...)
	nbrs = append(nbrs, aux...)
	total := 0.0
	for _, p := range peers {
		d := space.Bits()
		for _, w := range nbrs {
			if dw := KademliaDist(space, w, p.ID); dw < d {
				d = dw
			}
		}
		total += p.Freq * float64(d)
	}
	return total
}
