package core

import (
	"math"
	"math/rand"
	"testing"

	"peercache/internal/id"
)

// currentState mirrors the maintainer's state so a fresh full run can be
// compared against the incremental result.
type maintMirror struct {
	freq map[id.ID]float64
	core map[id.ID]bool
}

func (mm *maintMirror) instance() ([]id.ID, []Peer) {
	var core []id.ID
	for c := range mm.core {
		core = append(core, c)
	}
	var peers []Peer
	for p, f := range mm.freq {
		peers = append(peers, Peer{ID: p, Freq: f})
	}
	return core, peers
}

// The incremental O(bk) maintainer must track SelectPastryGreedy exactly
// across any interleaving of frequency updates, inserts, removals and
// core changes (Section IV-C).
func TestMaintainerMatchesFullRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(1414))
	for trial := 0; trial < 30; trial++ {
		space := id.NewSpace(8)
		k := 1 + rng.Intn(4)

		mm := &maintMirror{freq: map[id.ID]float64{}, core: map[id.ID]bool{}}
		// Seed: a couple of core neighbors and a few peers.
		perm := rng.Perm(256)
		mm.core[id.ID(perm[0])] = true
		mm.core[id.ID(perm[1])] = true
		for i := 2; i < 8; i++ {
			mm.freq[id.ID(perm[i])] = float64(rng.Intn(10))
		}
		core, peers := mm.instance()
		m, err := NewPastryMaintainer(space, core, peers, k)
		if err != nil {
			t.Fatal(err)
		}

		for step := 0; step < 200; step++ {
			p := id.ID(perm[rng.Intn(40)])
			switch rng.Intn(4) {
			case 0: // set/insert frequency
				if mm.core[p] {
					break
				}
				f := float64(rng.Intn(10))
				m.SetFreq(p, f)
				mm.freq[p] = f
			case 1: // remove
				if mm.core[p] {
					break
				}
				m.Remove(p)
				delete(mm.freq, p)
			case 2: // promote to core
				m.SetCore(p, true)
				mm.core[p] = true
			case 3: // demote from core
				if !mm.core[p] {
					break
				}
				m.SetCore(p, false)
				delete(mm.core, p)
				if _, seen := mm.freq[p]; !seen {
					// Maintainer drops zero-frequency ex-cores; mirror
					// has nothing to do.
					_ = seen
				}
			}
			if step%20 != 0 {
				continue
			}
			got := m.Select()
			core, peers := mm.instance()
			if len(core) == 0 && len(peers) == 0 {
				continue
			}
			want, err := SelectPastryGreedy(space, core, peers, k)
			if err != nil {
				// Degenerate states (no neighbors possible) are skipped.
				continue
			}
			if math.Abs(got.WeightedDist-want.WeightedDist) > 1e-9 {
				t.Fatalf("trial %d step %d: incremental %g vs full %g", trial, step, got.WeightedDist, want.WeightedDist)
			}
			// The selected set must achieve the reported cost.
			if ev := EvalPastry(space, core, peers, got.Aux); math.Abs(ev-got.WeightedDist) > 1e-9 {
				t.Fatalf("trial %d step %d: eval %g vs reported %g", trial, step, ev, got.WeightedDist)
			}
		}
	}
}

func TestMaintainerBasics(t *testing.T) {
	space := id.NewSpace(4)
	m, err := NewPastryMaintainer(space, []id.ID{0}, []Peer{{ID: 0b1111, Freq: 5}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.K() != 1 {
		t.Errorf("K = %d, want 1", m.K())
	}
	res := m.Select()
	if len(res.Aux) != 1 || res.Aux[0] != 0b1111 {
		t.Fatalf("Aux = %v, want [1111]", res.Aux)
	}
	if res.WeightedDist != 0 {
		t.Errorf("WeightedDist = %g, want 0", res.WeightedDist)
	}

	// A hotter peer appears: the pointer must move.
	m.SetFreq(0b1000, 50)
	res = m.Select()
	if len(res.Aux) != 1 || res.Aux[0] != 0b1000 {
		t.Fatalf("after update Aux = %v, want [1000]", res.Aux)
	}

	// Remove it: pointer moves back.
	m.Remove(0b1000)
	res = m.Select()
	if len(res.Aux) != 1 || res.Aux[0] != 0b1111 {
		t.Fatalf("after removal Aux = %v, want [1111]", res.Aux)
	}
}

func TestMaintainerRemoveCoreKeepsAnchor(t *testing.T) {
	space := id.NewSpace(4)
	m, err := NewPastryMaintainer(space, []id.ID{0b0011}, []Peer{
		{ID: 0b0011, Freq: 4}, {ID: 0b1100, Freq: 1},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.Remove(0b0011) // core: frequency zeroed, anchor kept
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (core anchor retained)", m.Len())
	}
	res := m.Select()
	if len(res.Aux) != 1 || res.Aux[0] != 0b1100 {
		t.Fatalf("Aux = %v, want [1100]", res.Aux)
	}
}

func TestMaintainerRemoveUnknownNoop(t *testing.T) {
	space := id.NewSpace(4)
	m, err := NewPastryMaintainer(space, []id.ID{0}, []Peer{{ID: 3, Freq: 1}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.Remove(9)
	if m.Len() != 2 {
		t.Errorf("Len = %d, want 2", m.Len())
	}
}

func TestMaintainerSetCoreUnseenThenDemote(t *testing.T) {
	space := id.NewSpace(4)
	m, err := NewPastryMaintainer(space, []id.ID{0}, []Peer{{ID: 3, Freq: 1}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.SetCore(12, true)
	if m.Len() != 3 {
		t.Fatalf("Len = %d, want 3", m.Len())
	}
	m.SetCore(12, false) // zero-frequency ex-core disappears
	if m.Len() != 2 {
		t.Fatalf("Len after demote = %d, want 2", m.Len())
	}
}
