package chord

import (
	"math/rand"
	"testing"

	"peercache/internal/id"
	"peercache/internal/randx"
)

func buildNetwork(t *testing.T, bits uint, ids []uint64) *Network {
	t.Helper()
	nw := New(Config{Space: id.NewSpace(bits)})
	for _, x := range ids {
		if _, err := nw.AddNode(id.ID(x)); err != nil {
			t.Fatal(err)
		}
	}
	nw.StabilizeAll()
	return nw
}

func randomNetwork(t *testing.T, rng *rand.Rand, bits uint, n int) *Network {
	t.Helper()
	return buildNetwork(t, bits, randx.UniqueIDs(rng, n, uint64(1)<<bits))
}

func TestAddNodeErrors(t *testing.T) {
	nw := New(Config{Space: id.NewSpace(4)})
	if _, err := nw.AddNode(5); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.AddNode(5); err == nil {
		t.Error("duplicate AddNode: no error")
	}
	if _, err := nw.AddNode(16); err == nil {
		t.Error("out-of-space AddNode: no error")
	}
}

func TestOwnerPredecessorAssignment(t *testing.T) {
	nw := buildNetwork(t, 4, []uint64{2, 7, 12})
	tests := []struct {
		key  id.ID
		want id.ID
	}{
		{2, 2}, {3, 2}, {6, 2}, {7, 7}, {11, 7}, {12, 12}, {15, 12}, {0, 12}, {1, 12},
	}
	for _, tt := range tests {
		got, ok := nw.Owner(tt.key)
		if !ok || got != tt.want {
			t.Errorf("Owner(%d) = %d, want %d", tt.key, got, tt.want)
		}
	}
}

func TestOwnerEmpty(t *testing.T) {
	nw := New(Config{Space: id.NewSpace(4)})
	if _, ok := nw.Owner(3); ok {
		t.Error("Owner on empty overlay reported ok")
	}
}

func TestFingersFollowPaperRule(t *testing.T) {
	// Nodes 0..15 all present in a 4-bit space: node 0's fingers are
	// the first nodes in (1,2], (2,4], (4,8], (8,16] = 2, 3, 5, 9.
	ids := make([]uint64, 16)
	for i := range ids {
		ids[i] = uint64(i)
	}
	nw := buildNetwork(t, 4, ids)
	got := nw.Node(0).Fingers()
	want := []id.ID{2, 3, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("fingers = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fingers = %v, want %v", got, want)
		}
	}
}

func TestFingersSkipEmptyIntervals(t *testing.T) {
	nw := buildNetwork(t, 4, []uint64{0, 9})
	got := nw.Node(0).Fingers()
	if len(got) != 1 || got[0] != 9 {
		t.Fatalf("fingers = %v, want [9]", got)
	}
}

func TestSuccessorList(t *testing.T) {
	nw := buildNetwork(t, 4, []uint64{1, 4, 8, 12})
	succ := nw.Node(12).Successors()
	want := []id.ID{1, 4, 8}
	if len(succ) != 3 {
		t.Fatalf("succ = %v, want %v", succ, want)
	}
	for i := range want {
		if succ[i] != want[i] {
			t.Fatalf("succ = %v, want %v", succ, want)
		}
	}
}

func TestRouteReachesOwnerStable(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	nw := randomNetwork(t, rng, 16, 200)
	ids := nw.AliveIDs()
	for i := 0; i < 3000; i++ {
		from := ids[rng.Intn(len(ids))]
		key := id.ID(rng.Intn(1 << 16))
		res, err := nw.Route(from, key)
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK {
			t.Fatalf("lookup failed in stable network: from=%d key=%d", from, key)
		}
		if res.Timeouts != 0 {
			t.Fatalf("timeouts in stable network: %+v", res)
		}
		want, _ := nw.Owner(key)
		if res.Dest != want {
			t.Fatalf("Dest = %d, want %d", res.Dest, want)
		}
	}
}

// In the steady state a lookup takes at most b hops (eq. 6 is an upper
// bound with d <= b).
func TestRouteHopBoundStable(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	nw := randomNetwork(t, rng, 16, 512)
	ids := nw.AliveIDs()
	for i := 0; i < 3000; i++ {
		from := ids[rng.Intn(len(ids))]
		key := id.ID(rng.Intn(1 << 16))
		res, err := nw.Route(from, key)
		if err != nil {
			t.Fatal(err)
		}
		if res.Hops > 16 {
			t.Fatalf("lookup took %d hops, bound is 16", res.Hops)
		}
	}
}

// The measured hop count must never exceed the eq. 6 estimate used by
// the selection algorithms (it is an upper bound in the steady state).
func TestRouteHopsAtMostEq6Estimate(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	s := id.NewSpace(16)
	nw := randomNetwork(t, rng, 16, 300)
	ids := nw.AliveIDs()
	for i := 0; i < 2000; i++ {
		from := ids[rng.Intn(len(ids))]
		to := ids[rng.Intn(len(ids))]
		res, err := nw.Route(from, to)
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK || res.Dest != to {
			t.Fatalf("direct lookup failed: %+v", res)
		}
		if est := int(s.ChordDist(from, to)); res.Hops > est {
			t.Fatalf("hops %d exceed eq.6 estimate %d (from=%d to=%d)", res.Hops, est, from, to)
		}
	}
}

func TestRouteSelfOwned(t *testing.T) {
	nw := buildNetwork(t, 4, []uint64{3, 10})
	res, err := nw.Route(3, 5) // key 5 owned by 3
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || res.Hops != 0 || res.Dest != 3 {
		t.Fatalf("res = %+v, want 0-hop self-owned", res)
	}
}

func TestRouteFromDeadNodeErrors(t *testing.T) {
	nw := buildNetwork(t, 4, []uint64{3, 10})
	if err := nw.Crash(3); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Route(3, 5); err == nil {
		t.Error("route from dead node: no error")
	}
	if _, err := nw.Route(9, 5); err == nil {
		t.Error("route from unknown node: no error")
	}
}

func TestAuxShortcutsReduceHops(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	nw := randomNetwork(t, rng, 16, 300)
	ids := nw.AliveIDs()
	from := ids[0]
	// Find a destination several hops away.
	var far id.ID
	base := 0
	for _, to := range ids[1:] {
		res, err := nw.Route(from, to)
		if err != nil {
			t.Fatal(err)
		}
		if res.Hops > base {
			base, far = res.Hops, to
		}
	}
	if base < 2 {
		t.Skip("no multi-hop destination found")
	}
	if err := nw.SetAux(from, []id.ID{far}); err != nil {
		t.Fatal(err)
	}
	res, err := nw.Route(from, far)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hops != 1 {
		t.Fatalf("hops with direct aux = %d, want 1", res.Hops)
	}
}

func TestSetAuxValidation(t *testing.T) {
	nw := buildNetwork(t, 4, []uint64{3, 10})
	if err := nw.SetAux(3, []id.ID{3}); err == nil {
		t.Error("self-aux: no error")
	}
	if err := nw.SetAux(9, []id.ID{3}); err == nil {
		t.Error("aux on unknown node: no error")
	}
}

func TestCrashRejoinLifecycle(t *testing.T) {
	nw := buildNetwork(t, 8, []uint64{10, 50, 90, 130, 170, 210})
	if err := nw.Crash(90); err != nil {
		t.Fatal(err)
	}
	if nw.NumAlive() != 5 {
		t.Fatalf("NumAlive = %d, want 5", nw.NumAlive())
	}
	if err := nw.Crash(90); err == nil {
		t.Error("double crash: no error")
	}
	// Ownership shifted to the predecessor of 90's range.
	owner, _ := nw.Owner(95)
	if owner != 50 {
		t.Errorf("Owner(95) = %d, want 50", owner)
	}
	if err := nw.Rejoin(90); err != nil {
		t.Fatal(err)
	}
	if err := nw.Rejoin(90); err == nil {
		t.Error("double rejoin: no error")
	}
	owner, _ = nw.Owner(95)
	if owner != 90 {
		t.Errorf("Owner(95) after rejoin = %d, want 90", owner)
	}
	n := nw.Node(90)
	if len(n.Aux()) != 0 {
		t.Error("rejoin did not drop stale aux")
	}
}

// After crashes without stabilization, lookups may time out on stale
// entries but the successor-list fallback keeps them succeeding; after
// stabilization everything is clean again.
func TestChurnThenStabilizeRecovers(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	nw := randomNetwork(t, rng, 16, 300)
	ids := nw.AliveIDs()
	// Crash 20% of nodes without telling anyone.
	for i := 0; i < 60; i++ {
		nw.Crash(ids[i*5])
	}
	alive := nw.AliveIDs()
	timeouts := 0
	for i := 0; i < 500; i++ {
		from := alive[rng.Intn(len(alive))]
		key := id.ID(rng.Intn(1 << 16))
		res, err := nw.Route(from, key)
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK {
			t.Fatalf("lookup failed despite successor lists: %+v", res)
		}
		timeouts += res.Timeouts
	}
	if timeouts == 0 {
		t.Error("expected some timeouts on stale entries after churn")
	}
	nw.StabilizeAll()
	for i := 0; i < 500; i++ {
		from := alive[rng.Intn(len(alive))]
		key := id.ID(rng.Intn(1 << 16))
		res, err := nw.Route(from, key)
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK || res.Timeouts != 0 {
			t.Fatalf("post-stabilization lookup not clean: %+v", res)
		}
	}
}

func TestStabilizePrunesDeadAux(t *testing.T) {
	nw := buildNetwork(t, 8, []uint64{10, 50, 90, 130})
	if err := nw.SetAux(10, []id.ID{90, 130}); err != nil {
		t.Fatal(err)
	}
	nw.Crash(90)
	nw.Stabilize(10)
	aux := nw.Node(10).Aux()
	if len(aux) != 1 || aux[0] != 130 {
		t.Fatalf("aux after prune = %v, want [130]", aux)
	}
}

func TestCounterRecordsLookups(t *testing.T) {
	nw := buildNetwork(t, 4, []uint64{1, 8})
	n := nw.Node(1)
	n.Counter.Observe(8)
	n.Counter.Observe(8)
	if n.Counter.Count(8) != 2 {
		t.Errorf("counter = %d, want 2", n.Counter.Count(8))
	}
}

func TestConfigDefaults(t *testing.T) {
	nw := New(Config{Space: id.NewSpace(8)})
	cfg := nw.Config()
	if cfg.SuccessorListLen != 8 {
		t.Errorf("SuccessorListLen = %d, want 8", cfg.SuccessorListLen)
	}
	if cfg.MaxHops != 32 {
		t.Errorf("MaxHops = %d, want 32", cfg.MaxHops)
	}
}
