package chord

// Model-based testing: the Network's membership and ownership behaviour
// is compared against a trivially correct reference model (a plain map)
// under long random operation sequences, with routing invariants checked
// along the way.

import (
	"math/rand"
	"sort"
	"testing"

	"peercache/internal/id"
)

type refModel struct {
	space id.Space
	alive map[id.ID]bool
	known map[id.ID]bool
}

func (m *refModel) owner(key id.ID) (id.ID, bool) {
	var ids []id.ID
	for x := range m.alive {
		ids = append(ids, x)
	}
	if len(ids) == 0 {
		return 0, false
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	// Predecessor-or-equal with wraparound.
	best := ids[len(ids)-1]
	for _, x := range ids {
		if x <= key {
			best = x
		}
	}
	return best, true
}

func TestModelBasedMembership(t *testing.T) {
	space := id.NewSpace(12)
	nw := New(Config{Space: space})
	model := &refModel{space: space, alive: map[id.ID]bool{}, known: map[id.ID]bool{}}
	rng := rand.New(rand.NewSource(4242))

	for step := 0; step < 5000; step++ {
		x := id.ID(rng.Intn(1 << 12))
		switch rng.Intn(5) {
		case 0: // add
			_, err := nw.AddNode(x)
			if model.known[x] {
				if err == nil {
					t.Fatalf("step %d: duplicate add of %d succeeded", step, x)
				}
			} else if err != nil {
				t.Fatalf("step %d: add %d failed: %v", step, x, err)
			} else {
				model.known[x] = true
				model.alive[x] = true
			}
		case 1: // crash
			err := nw.Crash(x)
			if model.alive[x] {
				if err != nil {
					t.Fatalf("step %d: crash %d failed: %v", step, x, err)
				}
				delete(model.alive, x)
			} else if err == nil {
				t.Fatalf("step %d: crash of dead/absent %d succeeded", step, x)
			}
		case 2: // rejoin
			err := nw.Rejoin(x)
			if model.known[x] && !model.alive[x] {
				if err != nil {
					t.Fatalf("step %d: rejoin %d failed: %v", step, x, err)
				}
				model.alive[x] = true
			} else if err == nil {
				t.Fatalf("step %d: rejoin of alive/absent %d succeeded", step, x)
			}
		case 3: // ownership check
			key := id.ID(rng.Intn(1 << 12))
			got, gotOK := nw.Owner(key)
			want, wantOK := model.owner(key)
			if gotOK != wantOK || (gotOK && got != want) {
				t.Fatalf("step %d: Owner(%d) = %d,%v want %d,%v", step, key, got, gotOK, want, wantOK)
			}
		case 4: // alive set check
			if nw.NumAlive() != len(model.alive) {
				t.Fatalf("step %d: NumAlive %d, model %d", step, nw.NumAlive(), len(model.alive))
			}
			ids := nw.AliveIDs()
			for i := 1; i < len(ids); i++ {
				if ids[i-1] >= ids[i] {
					t.Fatalf("step %d: AliveIDs not strictly sorted", step)
				}
			}
			for _, a := range ids {
				if !model.alive[a] {
					t.Fatalf("step %d: %d alive in network but not model", step, a)
				}
			}
		}
	}

	// End-state routing sanity: after a full stabilization, every
	// lookup from every live node succeeds cleanly.
	nw.StabilizeAll()
	alive := nw.AliveIDs()
	if len(alive) < 2 {
		t.Skip("membership collapsed; routing check not meaningful")
	}
	for i := 0; i < 500; i++ {
		from := alive[rng.Intn(len(alive))]
		key := id.ID(rng.Intn(1 << 12))
		res, err := nw.Route(from, key)
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK || res.Timeouts != 0 {
			t.Fatalf("post-stabilization lookup dirty: %+v", res)
		}
		want, _ := model.owner(key)
		if res.Dest != want {
			t.Fatalf("Dest %d, model owner %d", res.Dest, want)
		}
	}
}

// Fingers must match a from-scratch reference computation on arbitrary
// memberships.
func TestFingersAgainstReference(t *testing.T) {
	space := id.NewSpace(10)
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 50; trial++ {
		nw := New(Config{Space: space})
		n := 2 + rng.Intn(60)
		members := map[id.ID]bool{}
		for len(members) < n {
			x := id.ID(rng.Intn(1 << 10))
			if !members[x] {
				members[x] = true
				nw.AddNode(x)
			}
		}
		nw.StabilizeAll()
		var sorted []id.ID
		for x := range members {
			sorted = append(sorted, x)
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

		for x := range members {
			// Reference: for each i, the first node in (x+2^i, x+2^{i+1}].
			var want []id.ID
			var prev id.ID
			hasPrev := false
			for i := uint(0); i < 10; i++ {
				var best id.ID
				bestGap := uint64(1) << 63
				found := false
				for _, w := range sorted {
					if w == x {
						continue
					}
					g := space.Gap(x, w)
					if g > uint64(1)<<i && g <= uint64(1)<<(i+1) && g < bestGap {
						best, bestGap, found = w, g, true
					}
				}
				if found && (!hasPrev || best != prev) {
					want = append(want, best)
					prev, hasPrev = best, true
				}
			}
			got := nw.Node(x).Fingers()
			if len(got) != len(want) {
				t.Fatalf("node %d: fingers %v, want %v", x, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("node %d: fingers %v, want %v", x, got, want)
				}
			}
		}
	}
}
