// Package chord is an event-driven Chord overlay simulator implementing
// the paper's protocol variant (Section II-B): keys are assigned to their
// predecessor, the i-th finger of node x is the first node with id in
// (x + 2^i, x + 2^{i+1}], and routing forwards to the known neighbor —
// core finger, successor-list entry or auxiliary neighbor — closest to
// the target without overshooting.
//
// The package models the state machine (membership, routing tables,
// lookups with timeout accounting); the experiment layer drives churn,
// stabilization and auxiliary recomputation schedules on top of it.
package chord

import (
	"fmt"
	"sort"

	"peercache/internal/freq"
	"peercache/internal/id"
)

// Config parameterizes a simulated overlay.
type Config struct {
	// Space is the identifier space (the paper uses 32-bit ids).
	Space id.Space
	// SuccessorListLen is the number of immediate successors each node
	// tracks for routing robustness. Defaults to 8 when 0.
	SuccessorListLen int
	// MaxHops caps a lookup before it is declared failed, guarding
	// against pathological stale-state walks. Defaults to 4·b when 0.
	MaxHops int
}

func (c Config) withDefaults() Config {
	if c.SuccessorListLen == 0 {
		c.SuccessorListLen = 8
	}
	if c.MaxHops == 0 {
		c.MaxHops = 4 * int(c.Space.Bits())
	}
	return c
}

// Node is one Chord peer. Routing state (fingers, successors) reflects
// the membership as of the node's last stabilization; auxiliary
// neighbors are set by the selection layer and only pruned of dead
// entries during stabilization, mirroring Section III's maintenance
// discussion.
type Node struct {
	id      id.ID
	alive   bool
	fingers []id.ID
	succ    []id.ID
	aux     []id.ID

	// Counter accumulates the destinations of lookups this node
	// originated, the access-frequency input to auxiliary selection.
	Counter *freq.Exact
}

// ID returns the node's identifier.
func (n *Node) ID() id.ID { return n.id }

// Alive reports whether the node is currently up.
func (n *Node) Alive() bool { return n.alive }

// Fingers returns a copy of the node's core neighbor set (deduplicated
// finger table).
func (n *Node) Fingers() []id.ID { return append([]id.ID(nil), n.fingers...) }

// Successors returns a copy of the node's successor list.
func (n *Node) Successors() []id.ID { return append([]id.ID(nil), n.succ...) }

// Aux returns a copy of the node's auxiliary neighbor set.
func (n *Node) Aux() []id.ID { return append([]id.ID(nil), n.aux...) }

// Network is the simulated overlay.
type Network struct {
	cfg   Config
	nodes map[id.ID]*Node
	alive []id.ID // sorted
}

// New returns an empty overlay.
func New(cfg Config) *Network {
	return &Network{cfg: cfg.withDefaults(), nodes: make(map[id.ID]*Node)}
}

// Config returns the effective configuration (defaults applied).
func (nw *Network) Config() Config { return nw.cfg }

// Space returns the identifier space.
func (nw *Network) Space() id.Space { return nw.cfg.Space }

// NumAlive returns the number of live nodes.
func (nw *Network) NumAlive() int { return len(nw.alive) }

// AliveIDs returns a copy of the live node ids in ascending order.
func (nw *Network) AliveIDs() []id.ID { return append([]id.ID(nil), nw.alive...) }

// Node returns the node with the given id, or nil.
func (nw *Network) Node(x id.ID) *Node { return nw.nodes[x] }

// AddNode creates a live node with empty routing state. Call Stabilize
// (or StabilizeAll) to build its tables. Duplicate ids are an error.
func (nw *Network) AddNode(x id.ID) (*Node, error) {
	if uint64(x) >= nw.cfg.Space.Size() {
		return nil, fmt.Errorf("chord: node %d outside %d-bit space", x, nw.cfg.Space.Bits())
	}
	if _, ok := nw.nodes[x]; ok {
		return nil, fmt.Errorf("chord: duplicate node %d", x)
	}
	n := &Node{id: x, alive: true, Counter: freq.NewExact()}
	nw.nodes[x] = n
	nw.insertAlive(x)
	return n, nil
}

// Crash marks a node dead. Its routing state is retained (it is simply
// unreachable); other nodes discover the failure through timeouts and
// stabilization. Crashing an absent or dead node is an error.
func (nw *Network) Crash(x id.ID) error {
	n := nw.nodes[x]
	if n == nil || !n.alive {
		return fmt.Errorf("chord: crash of absent or dead node %d", x)
	}
	n.alive = false
	nw.removeAlive(x)
	return nil
}

// Rejoin brings a crashed node back: auxiliary neighbors are dropped
// (they are stale) and routing tables are rebuilt from the current
// membership. The node's observed-frequency history is retained — a
// rejoining peer remembers what it used to look up; callers that want
// fresh counters can Reset them explicitly.
func (nw *Network) Rejoin(x id.ID) error {
	n := nw.nodes[x]
	if n == nil || n.alive {
		return fmt.Errorf("chord: rejoin of absent or live node %d", x)
	}
	n.alive = true
	n.aux = nil
	nw.insertAlive(x)
	nw.Stabilize(x)
	return nil
}

// insertAlive adds x to the sorted membership slice.
func (nw *Network) insertAlive(x id.ID) {
	i := sort.Search(len(nw.alive), func(i int) bool { return nw.alive[i] >= x })
	nw.alive = append(nw.alive, 0)
	copy(nw.alive[i+1:], nw.alive[i:])
	nw.alive[i] = x
}

// removeAlive drops x from the sorted membership slice.
func (nw *Network) removeAlive(x id.ID) {
	i := sort.Search(len(nw.alive), func(i int) bool { return nw.alive[i] >= x })
	if i < len(nw.alive) && nw.alive[i] == x {
		nw.alive = append(nw.alive[:i], nw.alive[i+1:]...)
	}
}

// successorOf returns the first live node with id >= v (wrapping), or
// false when the overlay is empty.
func (nw *Network) successorOf(v id.ID) (id.ID, bool) {
	if len(nw.alive) == 0 {
		return 0, false
	}
	i := sort.Search(len(nw.alive), func(i int) bool { return nw.alive[i] >= v })
	if i == len(nw.alive) {
		i = 0
	}
	return nw.alive[i], true
}

// Owner returns the live node responsible for key under the paper's
// predecessor assignment: the node whose id most closely precedes (or
// equals) the key. The second result is false when the overlay is empty.
func (nw *Network) Owner(key id.ID) (id.ID, bool) {
	if len(nw.alive) == 0 {
		return 0, false
	}
	// Predecessor-or-equal: the successor of key+1, stepped back one.
	i := sort.Search(len(nw.alive), func(i int) bool { return nw.alive[i] > key })
	if i == 0 {
		i = len(nw.alive)
	}
	return nw.alive[i-1], true
}

// Stabilize rebuilds x's routing state from the current membership —
// the effect of a completed ping/repair round (the paper stabilizes
// every 25 s under churn): fingers per the (x+2^i, x+2^{i+1}] rule,
// successor list, and pruning of dead auxiliary entries.
func (nw *Network) Stabilize(x id.ID) {
	n := nw.nodes[x]
	if n == nil || !n.alive {
		return
	}
	s := nw.cfg.Space
	n.fingers = n.fingers[:0]
	var last id.ID
	haveLast := false
	for i := uint(0); i < s.Bits(); i++ {
		lo := s.Add(x, (uint64(1)<<i)+1) // first id in (x+2^i, x+2^{i+1}]
		cand, ok := nw.successorOf(lo)
		if !ok || cand == x {
			continue
		}
		g := s.Gap(x, cand)
		if g <= uint64(1)<<i || g > uint64(1)<<(i+1) {
			continue // interval empty
		}
		if haveLast && cand == last {
			continue
		}
		n.fingers = append(n.fingers, cand)
		last, haveLast = cand, true
	}
	// Successor list: the next L live nodes clockwise.
	n.succ = n.succ[:0]
	if len(nw.alive) > 1 {
		i := sort.Search(len(nw.alive), func(i int) bool { return nw.alive[i] > x })
		for c := 0; c < nw.cfg.SuccessorListLen && c < len(nw.alive)-1; c++ {
			n.succ = append(n.succ, nw.alive[(i+c)%len(nw.alive)])
		}
	}
	// Prune dead auxiliary entries (Section III: stale entries are
	// removed and refilled at the next selection round).
	live := n.aux[:0]
	for _, a := range n.aux {
		if an := nw.nodes[a]; an != nil && an.alive {
			live = append(live, a)
		}
	}
	n.aux = live
}

// StabilizeAll stabilizes every live node (initial network build, or a
// global stabilization round).
func (nw *Network) StabilizeAll() {
	for _, x := range nw.AliveIDs() {
		nw.Stabilize(x)
	}
}

// SetAux installs the auxiliary neighbor set of node x, replacing any
// previous set. Entries equal to x are rejected.
func (nw *Network) SetAux(x id.ID, aux []id.ID) error {
	n := nw.nodes[x]
	if n == nil {
		return fmt.Errorf("chord: SetAux on unknown node %d", x)
	}
	for _, a := range aux {
		if a == x {
			return fmt.Errorf("chord: aux of node %d contains itself", x)
		}
	}
	n.aux = append(n.aux[:0:0], aux...)
	return nil
}

// RouteResult describes one lookup.
type RouteResult struct {
	// Dest is the node that owned the key at lookup time.
	Dest id.ID
	// Hops is the number of successful forwardings (0 when the source
	// owns the key).
	Hops int
	// Timeouts counts forwarding attempts to dead neighbors; each
	// costs one timeout before the router falls back to the next-best
	// entry.
	Timeouts int
	// OK is false when the lookup could not reach the owner (routing
	// dead end or hop cap exceeded).
	OK bool

	path []id.ID // populated only by RoutePath
}

// RoutePath is Route but additionally returns the sequence of nodes the
// lookup visited, source first, owner last (on success). Replication
// schemes use it to find where along the path a replica would have
// answered.
func (nw *Network) RoutePath(from id.ID, key id.ID) (RouteResult, []id.ID, error) {
	res, err := nw.route(from, key, true)
	return res, res.path, err
}

// Route performs a lookup for key starting at node from, using the
// paper's policy: at each step forward to the known neighbor closest to
// the key's owner without overshooting; dead entries cost a timeout and
// the next-best entry is tried.
func (nw *Network) Route(from id.ID, key id.ID) (RouteResult, error) {
	res, err := nw.route(from, key, false)
	return res, err
}

func (nw *Network) route(from id.ID, key id.ID, wantPath bool) (RouteResult, error) {
	src := nw.nodes[from]
	if src == nil || !src.alive {
		return RouteResult{}, fmt.Errorf("chord: route from absent or dead node %d", from)
	}
	dest, ok := nw.Owner(key)
	if !ok {
		return RouteResult{}, fmt.Errorf("chord: empty overlay")
	}
	res := RouteResult{Dest: dest}
	s := nw.cfg.Space
	cur := src
	if wantPath {
		res.path = append(res.path, cur.id)
	}
	for cur.id != dest {
		if res.Hops >= nw.cfg.MaxHops {
			return res, nil // OK stays false
		}
		gt := s.Gap(cur.id, dest)
		// Gather candidates in (cur, dest], best (closest to dest,
		// i.e. largest forward gap) first.
		var cands []id.ID
		for _, set := range [][]id.ID{cur.fingers, cur.aux, cur.succ} {
			for _, w := range set {
				if g := s.Gap(cur.id, w); g > 0 && g <= gt {
					cands = append(cands, w)
				}
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			return s.Gap(cur.id, cands[i]) > s.Gap(cur.id, cands[j])
		})
		advanced := false
		var lastTried id.ID
		triedAny := false
		for _, w := range cands {
			if triedAny && w == lastTried {
				continue // duplicate entry across tables
			}
			lastTried, triedAny = w, true
			next := nw.nodes[w]
			if next == nil || !next.alive {
				res.Timeouts++
				continue
			}
			cur = next
			res.Hops++
			if wantPath {
				res.path = append(res.path, cur.id)
			}
			advanced = true
			break
		}
		if !advanced {
			return res, nil // dead end; OK stays false
		}
	}
	res.OK = true
	return res, nil
}
