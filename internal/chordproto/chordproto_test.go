package chordproto

import (
	"math/rand"
	"sort"
	"testing"

	"peercache/internal/chord"
	"peercache/internal/id"
	"peercache/internal/randx"
	"peercache/internal/sim"
)

// buildRing bootstraps one node and joins the rest through it at
// 5-second intervals (simultaneous joins through a one-node ring are the
// protocol's worst case: every successor pointer starts at the bootstrap
// and walks back one position per stabilize round), then runs the
// protocol for settle further seconds.
func buildRing(t *testing.T, bits uint, ids []uint64, settle float64) (*Network, *sim.Engine) {
	t.Helper()
	eng := sim.New()
	nw := New(Config{Space: id.NewSpace(bits), Seed: 1}, eng, rand.New(rand.NewSource(1)))
	if _, err := nw.Bootstrap(id.ID(ids[0])); err != nil {
		t.Fatal(err)
	}
	for i, x := range ids[1:] {
		x := x
		eng.At(float64(i)*5, func() {
			if err := nw.Join(id.ID(x), id.ID(ids[0]), nil); err != nil {
				t.Errorf("join %d: %v", x, err)
			}
		})
	}
	eng.RunUntil(float64(len(ids))*5 + settle)
	return nw, eng
}

func sortedIDs(ids []uint64) []id.ID {
	out := make([]id.ID, len(ids))
	for i, x := range ids {
		out[i] = id.ID(x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// After enough stabilization rounds in a static network, every node's
// successor and predecessor pointers must form the sorted ring.
func TestRingConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ids := randx.UniqueIDs(rng, 40, 1<<16)
	nw, _ := buildRing(t, 16, ids, 600)

	ring := sortedIDs(ids)
	for i, x := range ring {
		n := nw.Node(x)
		wantSucc := ring[(i+1)%len(ring)]
		wantPred := ring[(i+len(ring)-1)%len(ring)]
		succ, ok := n.Successor()
		if !ok || succ != wantSucc {
			t.Errorf("node %d successor = %d (%v), want %d", x, succ, ok, wantSucc)
		}
		pred, ok := n.Predecessor()
		if !ok || pred != wantPred {
			t.Errorf("node %d predecessor = %d (%v), want %d", x, pred, ok, wantPred)
		}
	}
}

// The protocol's converged finger tables must equal what the oracle
// simulator computes from global state — the abstraction-soundness check
// for internal/chord.
func TestFingersMatchOracleSimulator(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ids := randx.UniqueIDs(rng, 30, 1<<12)
	// Long settle: every finger refreshed several times (12 fingers at
	// one per 5 s needs 60 s; allow many rounds).
	nw, _ := buildRing(t, 12, ids, 1200)

	oracle := chord.New(chord.Config{Space: id.NewSpace(12)})
	for _, x := range ids {
		if _, err := oracle.AddNode(id.ID(x)); err != nil {
			t.Fatal(err)
		}
	}
	oracle.StabilizeAll()

	for _, x := range ids {
		got := nw.Node(id.ID(x)).Fingers()
		want := oracle.Node(id.ID(x)).Fingers()
		if len(got) != len(want) {
			t.Fatalf("node %d fingers %v, oracle %v", x, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("node %d fingers %v, oracle %v", x, got, want)
			}
		}
	}
}

// Lookups from every node resolve the same owner the sorted ring
// implies, within O(log n)-ish hops.
func TestLookupCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ids := randx.UniqueIDs(rng, 50, 1<<16)
	nw, eng := buildRing(t, 16, ids, 1200)
	ring := sortedIDs(ids)

	ownerOf := func(key id.ID) id.ID {
		i := sort.Search(len(ring), func(i int) bool { return ring[i] >= key })
		return ring[i%len(ring)]
	}

	type result struct {
		owner id.ID
		ok    bool
		hops  int
		want  id.ID
	}
	var results []result
	for i := 0; i < 300; i++ {
		from := id.ID(ids[rng.Intn(len(ids))])
		key := id.ID(rng.Intn(1 << 16))
		want := ownerOf(key)
		if err := nw.Lookup(from, key, func(owner id.ID, ok bool, hops int) {
			results = append(results, result{owner, ok, hops, want})
		}); err != nil {
			t.Fatal(err)
		}
	}
	eng.RunUntil(eng.Now() + 120)

	if len(results) != 300 {
		t.Fatalf("only %d of 300 lookups completed", len(results))
	}
	for _, r := range results {
		if !r.ok {
			t.Fatalf("lookup failed: %+v", r)
		}
		if r.owner != r.want {
			t.Fatalf("lookup owner %d, want %d", r.owner, r.want)
		}
		if r.hops > 40 {
			t.Errorf("lookup took %d hops", r.hops)
		}
	}
}

// After crashes, stabilization heals the ring around the dead nodes.
func TestCrashHealing(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ids := randx.UniqueIDs(rng, 40, 1<<16)
	nw, eng := buildRing(t, 16, ids, 900)

	// Kill every fourth node silently.
	dead := map[id.ID]bool{}
	for i := 0; i < len(ids); i += 4 {
		if err := nw.Crash(id.ID(ids[i])); err != nil {
			t.Fatal(err)
		}
		dead[id.ID(ids[i])] = true
	}
	// Give the survivors time to heal (several stabilize rounds).
	eng.RunUntil(eng.Now() + 600)

	var ring []id.ID
	for _, x := range sortedIDs(ids) {
		if !dead[x] {
			ring = append(ring, x)
		}
	}
	for i, x := range ring {
		n := nw.Node(x)
		succ, ok := n.Successor()
		want := ring[(i+1)%len(ring)]
		if !ok || succ != want {
			t.Errorf("node %d successor = %d (%v), want %d after healing", x, succ, ok, want)
		}
	}
	if nw.Stats().Timeouts == 0 {
		t.Error("expected timeout-driven failure detection")
	}
}

// Protocol traffic counters move and scale with the population.
func TestMaintenanceTrafficCounted(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	small := randx.UniqueIDs(rng, 10, 1<<16)
	big := randx.UniqueIDs(rng, 40, 1<<16)
	nwS, _ := buildRing(t, 16, small, 300)
	nwB, _ := buildRing(t, 16, big, 300)
	if nwS.Stats().Messages == 0 {
		t.Fatal("no protocol traffic counted")
	}
	if nwB.Stats().Messages <= nwS.Stats().Messages {
		t.Errorf("traffic did not grow with population: %d vs %d",
			nwB.Stats().Messages, nwS.Stats().Messages)
	}
	if nwS.Stats().Joins != 9 {
		t.Errorf("joins = %d, want 9", nwS.Stats().Joins)
	}
}

func TestValidationErrors(t *testing.T) {
	eng := sim.New()
	nw := New(Config{Space: id.NewSpace(8)}, eng, rand.New(rand.NewSource(1)))
	if _, err := nw.Bootstrap(999); err == nil {
		t.Error("out-of-space bootstrap accepted")
	}
	if _, err := nw.Bootstrap(5); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Bootstrap(5); err == nil {
		t.Error("duplicate bootstrap accepted")
	}
	if err := nw.Join(5, 5, nil); err == nil {
		t.Error("duplicate join accepted")
	}
	if err := nw.Join(7, 99, nil); err == nil {
		t.Error("join via absent bootstrap accepted")
	}
	if err := nw.Crash(99); err == nil {
		t.Error("crash of absent node accepted")
	}
	if err := nw.Crash(5); err != nil {
		t.Fatal(err)
	}
	if err := nw.Crash(5); err == nil {
		t.Error("double crash accepted")
	}
	if err := nw.Lookup(5, 1, nil); err == nil {
		t.Error("lookup from dead node accepted")
	}
}
