// Package chordproto is a message-level Chord implementation: nodes
// maintain their rings with the classic join / stabilize / notify /
// fix-fingers protocol of Stoica et al., exchanging request/response
// messages over the discrete-event engine with configurable link
// latency. Nothing reads global state: every routing-table entry a node
// holds was learned through a message.
//
// The package serves two purposes in this reproduction:
//
//   - it validates the oracle-stabilization abstraction used by
//     internal/chord (tests show the protocol converges to exactly the
//     finger tables the oracle computes), and
//   - it meters maintenance traffic — the cost side of the paper's
//     routing-table size trade-off (Section I discusses how the ping
//     and refresh load grows with the table size; auxiliary neighbors
//     add to that load and the ExtMaintenance experiment quantifies it).
package chordproto

import (
	"fmt"
	"math/rand"

	"peercache/internal/id"
	"peercache/internal/sim"
)

// Config parameterizes a protocol network.
type Config struct {
	// Space is the identifier space.
	Space id.Space
	// SuccessorListLen is the successor-list length (default 4).
	SuccessorListLen int
	// StabilizeEvery is the period of the stabilize/notify round
	// (default 25 s, the paper's setting).
	StabilizeEvery float64
	// FixFingersEvery is the period between fix-fingers steps; each
	// step refreshes one finger, round-robin (default 5 s).
	FixFingersEvery float64
	// MinDelay and MaxDelay bound the one-way message latency, drawn
	// uniformly per message (defaults 10 ms and 100 ms).
	MinDelay, MaxDelay float64
	// RPCTimeout is how long a caller waits before declaring a peer
	// dead (default 1 s).
	RPCTimeout float64
	// LossRate drops each message leg (request or response)
	// independently with this probability; the caller observes the
	// loss as an RPC timeout, exactly as it would a dead peer. The
	// live runtime (internal/node) faces the same ambiguity over real
	// UDP; this knob lets the simulator validate that the protocol's
	// retry-through-timeout semantics still converge the ring.
	LossRate float64
	// RPCRetries is how many times a caller re-sends an RPC after a
	// timeout before treating the callee as dead (default 0: a single
	// timeout is fatal). The live runtime retries, so a lossy network
	// should be simulated with retries too — otherwise every dropped
	// leg false-positives a live successor as dead.
	RPCRetries int
	// Seed drives latency sampling and stabilization phases.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.SuccessorListLen == 0 {
		c.SuccessorListLen = 4
	}
	if c.StabilizeEvery == 0 {
		c.StabilizeEvery = 25
	}
	if c.FixFingersEvery == 0 {
		c.FixFingersEvery = 5
	}
	if c.MinDelay == 0 {
		c.MinDelay = 0.01
	}
	if c.MaxDelay == 0 {
		c.MaxDelay = 0.1
	}
	if c.RPCTimeout == 0 {
		c.RPCTimeout = 1
	}
	return c
}

// Node is one protocol participant. All fields reflect protocol state
// learned through messages, never global knowledge.
type Node struct {
	id    id.ID
	alive bool

	succ    []id.ID // successor list; succ[0] is THE successor
	pred    id.ID
	hasPred bool

	fingers    []id.ID // fingers[i] covers (id+2^i, id+2^{i+1}]
	hasFinger  []bool
	nextFinger uint

	// auxPing is the number of auxiliary neighbors this node pings
	// every stabilization round (Section III: the ping process checks
	// auxiliary entries alongside core ones).
	auxPing int
}

// ID returns the node id.
func (n *Node) ID() id.ID { return n.id }

// Alive reports whether the node is up.
func (n *Node) Alive() bool { return n.alive }

// Successor returns the node's current successor pointer.
func (n *Node) Successor() (id.ID, bool) {
	if len(n.succ) == 0 {
		return 0, false
	}
	return n.succ[0], true
}

// Predecessor returns the node's current predecessor pointer.
func (n *Node) Predecessor() (id.ID, bool) { return n.pred, n.hasPred }

// Fingers returns the populated finger entries, deduplicated, ascending
// by interval.
func (n *Node) Fingers() []id.ID {
	var out []id.ID
	var last id.ID
	has := false
	for i, ok := range n.hasFinger {
		if !ok {
			continue
		}
		f := n.fingers[i]
		if has && f == last {
			continue
		}
		out = append(out, f)
		last, has = f, true
	}
	return out
}

// Stats counts protocol traffic.
type Stats struct {
	// Messages is the total number of protocol messages delivered
	// (requests and responses).
	Messages uint64
	// Timeouts counts RPCs abandoned because the callee was dead.
	Timeouts uint64
	// Drops counts message legs lost to the configured LossRate.
	Drops uint64
	// Joins completed.
	Joins uint64
}

// Network is the protocol simulation.
type Network struct {
	cfg      Config
	eng      *sim.Engine
	rng      *rand.Rand
	nodes    map[id.ID]*Node
	stats    Stats
	lossRate float64
}

// New returns an empty protocol network driven by the given engine.
func New(cfg Config, eng *sim.Engine, rng *rand.Rand) *Network {
	cfg = cfg.withDefaults()
	return &Network{cfg: cfg, eng: eng, rng: rng, nodes: make(map[id.ID]*Node), lossRate: cfg.LossRate}
}

// SetLossRate changes the message-loss probability mid-run (e.g. a
// lossy phase followed by a clean one).
func (nw *Network) SetLossRate(p float64) { nw.lossRate = p }

// lost samples whether one message leg is dropped.
func (nw *Network) lost() bool {
	return nw.lossRate > 0 && nw.rng.Float64() < nw.lossRate
}

// Engine returns the driving event engine.
func (nw *Network) Engine() *sim.Engine { return nw.eng }

// Stats returns cumulative traffic counters.
func (nw *Network) Stats() Stats { return nw.stats }

// Node returns the node with the given id, or nil.
func (nw *Network) Node(x id.ID) *Node { return nw.nodes[x] }

// delay samples a one-way message latency.
func (nw *Network) delay() float64 {
	return nw.cfg.MinDelay + nw.rng.Float64()*(nw.cfg.MaxDelay-nw.cfg.MinDelay)
}

// rpc delivers a request to the callee and its response back to the
// caller, counting one message per delivered leg; if the callee is dead
// at delivery time, or either leg is lost to LossRate, the caller
// learns nothing until RPCTimeout expires — a caller cannot tell loss
// from death. After RPCRetries re-sends all time out, the caller treats
// the callee as unreachable via the shared onDead path.
func (nw *Network) rpc(callee id.ID, handle func(*Node), onDead func()) {
	nw.rpcAttempt(callee, nw.cfg.RPCRetries, handle, onDead)
}

func (nw *Network) rpcAttempt(callee id.ID, retries int, handle func(*Node), onDead func()) {
	timedOut := func() {
		nw.stats.Timeouts++
		after := onDead
		if retries > 0 {
			after = func() { nw.rpcAttempt(callee, retries-1, handle, onDead) }
		}
		nw.eng.After(nw.cfg.RPCTimeout, after)
	}
	if nw.lost() { // request leg dropped in flight
		nw.stats.Drops++
		timedOut()
		return
	}
	nw.eng.After(nw.delay(), func() {
		c := nw.nodes[callee]
		if c == nil || !c.alive {
			timedOut()
			return
		}
		nw.stats.Messages++ // request delivered
		if nw.lost() {      // response leg dropped in flight
			nw.stats.Drops++
			timedOut()
			return
		}
		resp := nw.delay()
		nw.eng.After(resp, func() {
			nw.stats.Messages++ // response delivered
			handle(c)
		})
	})
}

// Bootstrap creates the first node, which forms a ring of one.
func (nw *Network) Bootstrap(x id.ID) (*Node, error) {
	if err := nw.checkNew(x); err != nil {
		return nil, err
	}
	n := nw.newNode(x)
	n.succ = []id.ID{x}
	nw.scheduleMaintenance(n)
	return n, nil
}

// Join starts the join protocol for x through the given bootstrap peer:
// x learns its successor via a find-successor lookup and lets
// stabilization integrate it into the ring. done (optional) fires when
// the successor pointer is set.
func (nw *Network) Join(x, bootstrap id.ID, done func()) error {
	if err := nw.checkNew(x); err != nil {
		return err
	}
	if b := nw.nodes[bootstrap]; b == nil || !b.alive {
		return fmt.Errorf("chordproto: bootstrap %d absent or dead", bootstrap)
	}
	n := nw.newNode(x)
	var attempt func()
	attempt = func() {
		if !n.alive {
			return
		}
		nw.findSuccessor(bootstrap, nw.cfg.Space.Add(x, 1), 0, func(s id.ID, ok bool, _ int) {
			if !ok {
				// Retry through the same bootstrap later.
				nw.eng.After(nw.cfg.RPCTimeout, attempt)
				return
			}
			n.succ = []id.ID{s}
			nw.stats.Joins++
			nw.scheduleMaintenance(n)
			if done != nil {
				done()
			}
		})
	}
	attempt()
	return nil
}

func (nw *Network) checkNew(x id.ID) error {
	if uint64(x) >= nw.cfg.Space.Size() {
		return fmt.Errorf("chordproto: node %d outside %d-bit space", x, nw.cfg.Space.Bits())
	}
	if _, ok := nw.nodes[x]; ok {
		return fmt.Errorf("chordproto: duplicate node %d", x)
	}
	return nil
}

func (nw *Network) newNode(x id.ID) *Node {
	b := nw.cfg.Space.Bits()
	n := &Node{
		id:        x,
		alive:     true,
		fingers:   make([]id.ID, b),
		hasFinger: make([]bool, b),
	}
	nw.nodes[x] = n
	return n
}

// SetAuxPingCount sets how many auxiliary entries node x keeps alive by
// pinging each stabilization round; the pings are counted as
// maintenance traffic. Unknown nodes are ignored.
func (nw *Network) SetAuxPingCount(x id.ID, k int) {
	if n := nw.nodes[x]; n != nil && k >= 0 {
		n.auxPing = k
	}
}

// Crash kills a node silently; peers discover via timeouts.
func (nw *Network) Crash(x id.ID) error {
	n := nw.nodes[x]
	if n == nil || !n.alive {
		return fmt.Errorf("chordproto: crash of absent or dead node %d", x)
	}
	n.alive = false
	return nil
}

// scheduleMaintenance starts the node's periodic stabilize and
// fix-fingers loops, with a random phase so rings do not synchronize.
func (nw *Network) scheduleMaintenance(n *Node) {
	nw.eng.After(nw.rng.Float64()*nw.cfg.StabilizeEvery, func() {
		nw.eng.Every(nw.cfg.StabilizeEvery, func() bool {
			if !n.alive {
				return false
			}
			nw.stabilize(n)
			return true
		})
		nw.stabilize(n)
	})
	nw.eng.After(nw.rng.Float64()*nw.cfg.FixFingersEvery, func() {
		nw.eng.Every(nw.cfg.FixFingersEvery, func() bool {
			if !n.alive {
				return false
			}
			nw.fixNextFinger(n)
			return true
		})
	})
}

// stabilize is the classic round: ask the successor for its predecessor,
// adopt it if it sits between, then notify the successor of ourselves,
// and refresh the successor list from its list.
func (nw *Network) stabilize(n *Node) {
	// Liveness pings for the auxiliary entries ride on the same round:
	// one request/response pair per entry.
	nw.stats.Messages += 2 * uint64(n.auxPing)
	s, ok := n.Successor()
	if !ok {
		return
	}
	if s == n.id {
		// Ring of one: adopt any known predecessor as successor.
		if n.hasPred && n.pred != n.id {
			n.succ = []id.ID{n.pred}
		}
		return
	}
	space := nw.cfg.Space
	nw.rpc(s, func(sn *Node) {
		if sn.hasPred && space.Between(sn.pred, n.id, s) {
			if p := nw.nodes[sn.pred]; p != nil && p.alive {
				n.succ = append([]id.ID{sn.pred}, n.succ...)
			}
		}
		// notify + successor-list refresh piggybacked on one more RPC.
		cur, _ := n.Successor()
		nw.rpc(cur, func(cn *Node) {
			if !cn.hasPred || space.Between(n.id, cn.pred, cn.id) || !nw.isAlive(cn.pred) {
				cn.pred = n.id
				cn.hasPred = true
			}
			list := append([]id.ID{cn.id}, cn.succ...)
			if len(list) > nw.cfg.SuccessorListLen {
				list = list[:nw.cfg.SuccessorListLen]
			}
			n.succ = list
		}, func() {
			n.dropSuccessor(cur)
		})
	}, func() {
		n.dropSuccessor(s)
	})
}

// isAlive is the failure-detector outcome a node would get from a ping;
// modeled as current liveness (counted as traffic by the caller's rpc).
func (nw *Network) isAlive(x id.ID) bool {
	n := nw.nodes[x]
	return n != nil && n.alive
}

// dropSuccessor removes a dead successor, falling back on the list.
func (n *Node) dropSuccessor(dead id.ID) {
	out := n.succ[:0]
	for _, s := range n.succ {
		if s != dead {
			out = append(out, s)
		}
	}
	n.succ = out
	if len(n.succ) == 0 {
		n.succ = []id.ID{n.id} // last resort: ring of one until re-join
	}
}

// fixNextFinger refreshes one finger per the paper's interval rule:
// finger i is the first node in (id+2^i, id+2^{i+1}], found with a
// find-successor lookup; an out-of-interval answer clears the entry.
func (nw *Network) fixNextFinger(n *Node) {
	i := n.nextFinger
	n.nextFinger = (n.nextFinger + 1) % nw.cfg.Space.Bits()
	space := nw.cfg.Space
	start := space.Add(n.id, (uint64(1)<<i)+1)
	nw.findSuccessor(n.id, start, 0, func(s id.ID, ok bool, _ int) {
		if !ok {
			return
		}
		g := space.Gap(n.id, s)
		if s != n.id && g > uint64(1)<<i && g <= uint64(1)<<(i+1) {
			n.fingers[i] = s
			n.hasFinger[i] = true
		} else {
			n.hasFinger[i] = false
		}
	})
}

// findSuccessor resolves the first live node whose id is >= target
// (wrapping), by iteratively asking nodes for their closest preceding
// entry — each step is one RPC. cb receives the answer, whether the
// lookup succeeded, and the number of hops taken.
func (nw *Network) findSuccessor(from id.ID, target id.ID, hops int, cb func(id.ID, bool, int)) {
	const maxHops = 256
	if hops > maxHops {
		cb(0, false, hops)
		return
	}
	space := nw.cfg.Space
	nw.rpc(from, func(n *Node) {
		s, ok := n.Successor()
		if !ok {
			cb(0, false, hops)
			return
		}
		// target in (n, successor] -> the successor is the answer.
		if s == n.id || space.BetweenIncl(target, n.id, s) {
			cb(s, true, hops+1)
			return
		}
		next := n.closestPreceding(space, target)
		if next == n.id {
			// No progress possible from local state; hand to the
			// successor.
			nw.findSuccessor(s, target, hops+1, cb)
			return
		}
		nw.findSuccessor(next, target, hops+1, cb)
	}, func() {
		cb(0, false, hops)
	})
}

// closestPreceding returns the entry from the node's fingers and
// successor list that most closely precedes target.
func (n *Node) closestPreceding(space id.Space, target id.ID) id.ID {
	best := n.id
	bestGap := uint64(0)
	consider := func(w id.ID) {
		if w == n.id {
			return
		}
		if !space.Between(w, n.id, target) {
			return
		}
		if g := space.Gap(n.id, w); g > bestGap {
			best, bestGap = w, g
		}
	}
	for i, ok := range n.hasFinger {
		if ok {
			consider(n.fingers[i])
		}
	}
	for _, s := range n.succ {
		consider(s)
	}
	return best
}

// Lookup resolves the owner of key (its successor under the protocol's
// assignment) from the given origin node, reporting hops.
func (nw *Network) Lookup(from id.ID, key id.ID, cb func(owner id.ID, ok bool, hops int)) error {
	n := nw.nodes[from]
	if n == nil || !n.alive {
		return fmt.Errorf("chordproto: lookup from absent or dead node %d", from)
	}
	nw.findSuccessor(from, key, 0, cb)
	return nil
}
