package chordproto

import (
	"math/rand"
	"testing"

	"peercache/internal/chord"
	"peercache/internal/id"
	"peercache/internal/randx"
	"peercache/internal/sim"
)

// A ring built and stabilized under sustained message loss must still
// converge to exactly the oracle finger tables once the network calms
// down: every lost leg surfaces as an RPC timeout, the caller treats
// the peer as unreachable (dropping successors, retrying joins), and
// the stabilize/fix-fingers machinery must repair all of that damage.
// This is the retry semantics the live runtime (internal/node) mirrors
// over real UDP, where loss and death are equally indistinguishable.
func TestConvergesUnderMessageLoss(t *testing.T) {
	const (
		bits     = 12
		n        = 32
		lossRate = 0.15
		lossyFor = 900.0 // seconds of lossy operation after the last join
	)
	rng := rand.New(rand.NewSource(21))
	ids := randx.UniqueIDs(rng, n, 1<<bits)

	eng := sim.New()
	nw := New(Config{Space: id.NewSpace(bits), LossRate: lossRate, RPCRetries: 2, Seed: 1}, eng, rand.New(rand.NewSource(2)))
	if _, err := nw.Bootstrap(id.ID(ids[0])); err != nil {
		t.Fatal(err)
	}
	for i, x := range ids[1:] {
		x := x
		eng.At(float64(i)*5, func() {
			if err := nw.Join(id.ID(x), id.ID(ids[0]), nil); err != nil {
				t.Errorf("join %d: %v", x, err)
			}
		})
	}
	joinsDone := float64(n) * 5
	eng.RunUntil(joinsDone + lossyFor)

	st := nw.Stats()
	if st.Drops == 0 {
		t.Fatalf("loss rate %g produced no drops over %d messages", lossRate, st.Messages)
	}
	if st.Joins != n-1 {
		t.Fatalf("joins completed under loss: %d, want %d", st.Joins, n-1)
	}

	// Loss ends; the protocol must now converge exactly.
	nw.SetLossRate(0)
	eng.RunUntil(eng.Now() + 900)

	oracle := chord.New(chord.Config{Space: id.NewSpace(bits)})
	for _, x := range ids {
		if _, err := oracle.AddNode(id.ID(x)); err != nil {
			t.Fatal(err)
		}
	}
	oracle.StabilizeAll()

	ring := sortedIDs(ids)
	for i, x := range ring {
		node := nw.Node(x)
		wantSucc := ring[(i+1)%len(ring)]
		if succ, ok := node.Successor(); !ok || succ != wantSucc {
			t.Errorf("node %d successor %d (%t), want %d", x, succ, ok, wantSucc)
		}
		wantPred := ring[(i+len(ring)-1)%len(ring)]
		if pred, ok := node.Predecessor(); !ok || pred != wantPred {
			t.Errorf("node %d predecessor %d (%t), want %d", x, pred, ok, wantPred)
		}
		got := node.Fingers()
		want := oracle.Node(x).Fingers()
		if len(got) != len(want) {
			t.Errorf("node %d fingers %v, oracle %v", x, got, want)
			continue
		}
		for j := range got {
			if got[j] != want[j] {
				t.Errorf("node %d fingers %v, oracle %v", x, got, want)
				break
			}
		}
	}
}

// With every message lost, a lookup must fail cleanly (not hang or
// succeed), and restoring the loss rate to zero heals the path.
func TestTotalLossFailsLookupsCleanly(t *testing.T) {
	eng := sim.New()
	nw := New(Config{Space: id.NewSpace(10), Seed: 3}, eng, rand.New(rand.NewSource(3)))
	if _, err := nw.Bootstrap(5); err != nil {
		t.Fatal(err)
	}
	if err := nw.Join(600, 5, nil); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(600)

	nw.SetLossRate(1)
	var called, ok bool
	if err := nw.Lookup(5, 700, func(_ id.ID, lookupOK bool, _ int) {
		called, ok = true, lookupOK
	}); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(eng.Now() + 100)
	if !called || ok {
		t.Fatalf("lookup under total loss: called=%t ok=%t, want called and not ok", called, ok)
	}
	if nw.Stats().Drops == 0 {
		t.Fatal("no drops counted under total loss")
	}

	nw.SetLossRate(0)
	eng.RunUntil(eng.Now() + 300) // let stabilization repair dropped successors
	called, ok = false, false
	if err := nw.Lookup(5, 700, func(owner id.ID, lookupOK bool, _ int) {
		called, ok = true, lookupOK
	}); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(eng.Now() + 100)
	if !called || !ok {
		t.Fatalf("lookup after loss cleared: called=%t ok=%t", called, ok)
	}
}
