// Package livebench boots a full live overlay — real node runtime,
// real wire codec, memnet switchboard — at 1k+ node scale in one
// process, drives a Zipf workload through it, and reports a
// machine-readable performance snapshot. It is the live counterpart of
// internal/experiment's simulator figures: where those reproduce the
// paper's discrete-event sweeps, livebench measures what the actual
// implementation does — hops, latency, message and byte rates,
// auxiliary cache hit rate, maintenance overhead — so every future
// change shows its delta against the committed BENCH_live.json
// trajectory.
//
// Scale is what the harness is built around: nodes share one
// node.BatchScheduler (a single timer heap + bounded worker pool
// instead of four ticker goroutines each) and maintenance periods
// default to values scaled with n, so a 1024-node overlay boots,
// converges against the cluster package's exact oracles, and completes
// its workload on modest hardware.
package livebench

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"time"

	"peercache/internal/chunk"
	"peercache/internal/cluster"
	"peercache/internal/id"
	"peercache/internal/memnet"
	"peercache/internal/node"
	"peercache/internal/node/chordring"
	"peercache/internal/node/kadring"
	"peercache/internal/node/pastryring"
	"peercache/internal/node/ring"
	"peercache/internal/randx"
)

// Protos lists the geometries a live run can measure, in canonical
// order.
var Protos = []string{"chord", "pastry", "kademlia"}

var factories = map[string]ring.Factory{
	"chord":    chordring.New,
	"pastry":   pastryring.New,
	"kademlia": kadring.New,
}

// Options parameterizes one live benchmark run (one geometry).
type Options struct {
	// Proto is the routing geometry: chord, pastry, or kademlia.
	Proto string
	// N is the overlay size (default 1024).
	N int
	// Seed drives every random choice: ids, keys, workload, memnet.
	Seed int64
	// Bits is the identifier length (default 16).
	Bits uint
	// AuxCount is the auxiliary-neighbor budget k (default 8).
	AuxCount int
	// SuccessorListLen is the near-neighbor list bound (default 4; one
	// leaf-set side in Pastry).
	SuccessorListLen int
	// BucketSize bounds Kademlia k-buckets (default 8 — at 1k nodes the
	// protocol default of 20 multiplies convergence traffic for no
	// routing benefit at 16-bit scale). Ignored by the ring geometries.
	BucketSize int
	// FixFingersBatch is how many long-range table entries each chord
	// maintenance tick refreshes (default 8 — one-per-tick needs
	// bits·period to lap a 16-entry table, and at n=1024 that serial
	// refresh dominated converge time). Pastry and Kademlia ignore it.
	FixFingersBatch int

	// Keys is the preloaded key count (default 8·N, capped to a quarter
	// of the id space). Sizing the universe in multiples of N is what
	// makes the anti-entropy figures representative: each owner then
	// digests multi-entry batches, which is the regime the digest
	// protocol's byte reduction is designed for (a one-item overlay
	// would price only the per-message overhead).
	Keys int
	// ZipfAlpha is the workload skew exponent (default 1.2, the paper's
	// hot sweep).
	ZipfAlpha float64
	// WarmupOps are unmeasured lookups that feed the frequency
	// observers before aux selection is judged (default 4·N).
	WarmupOps int
	// Ops are the measured lookups (default 8·N).
	Ops int
	// Workers is the client concurrency for the workload phases
	// (default 8).
	Workers int
	// HotReads is the per-arm read count of the hot-key phase: every
	// worker hammers the single hottest key, once through owner reads
	// (Get) and once through replica-accepting reads (FindValue), so
	// the two read contracts are priced against each other on the same
	// key (default 4·N).
	HotReads int

	// StreamObjectBytes sizes the streaming-phase object (default
	// 1 MiB — 257 chunks at the wire-limit chunk size).
	StreamObjectBytes int
	// StreamReads is how many times the streaming phase reads the
	// object back sequentially, each from a fresh random origin
	// (default 3).
	StreamReads int
	// StreamPrefetch is the reader lookahead depth (default 2; -1
	// reads strictly on demand).
	StreamPrefetch int

	// WANRegions is the geographic cluster count of the WAN phase's
	// latency topology (default 3 — enough for a bimodal intra/inter
	// RTT split without fragmenting 32 sources across too many metros).
	WANRegions int
	// WANScale compresses the WAN topology's delays (default 0.12:
	// worst trans-continental RTT ≈ 40ms, safely under the 250ms RPC
	// timeout while keeping a 20x intra/inter spread).
	WANScale float64
	// WANSources is how many nodes act as measured lookup origins in
	// the WAN phase (default 32, capped at N/4). Arms toggle QoS on the
	// sources only, so hop-greedy and QoS measurements route through an
	// otherwise identical overlay.
	WANSources int
	// WANHotKeys is the hot working set of the WAN arms: the Zipf-
	// hottest ranks, sampled with the workload's skew (default
	// 2·AuxCount — twice the aux budget, so selection policy decides
	// which half of the set gets direct pointers).
	WANHotKeys int
	// WANOps is the measured lookup count of each WAN arm (default 2·N).
	WANOps int
	// WANChurnMeanLife is the mean of the exponential node-lifetime
	// distribution driving the churn arm (default 900s, the paper's
	// median session time; the aggregate departure rate is
	// N/WANChurnMeanLife, so at n=1024 the arm sees roughly one
	// crash-and-rejoin per second).
	WANChurnMeanLife time.Duration
	// WANFlashReads is the per-burst read count of the flash-crowd arm
	// (default N).
	WANFlashReads int

	// IdleWindow is how long to watch the converged, idle overlay to
	// price pure maintenance overhead (default 3s).
	IdleWindow time.Duration
	// ConvergeTimeout bounds the oracle convergence wait (default 10m).
	ConvergeTimeout time.Duration

	// StabilizeEvery etc. override the n-scaled maintenance periods
	// when non-zero.
	StabilizeEvery, FixFingersEvery, AuxEvery, ReplicateEvery time.Duration

	// Logf, when non-nil, receives phase-progress lines.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() (Options, error) {
	if _, ok := factories[o.Proto]; !ok {
		return o, fmt.Errorf("livebench: unknown proto %q", o.Proto)
	}
	def := func(p *int, v int) {
		if *p == 0 {
			*p = v
		}
	}
	def(&o.N, 1024)
	if o.N < 8 {
		return o, fmt.Errorf("livebench: n %d below 8", o.N)
	}
	if o.Bits == 0 {
		o.Bits = 16
	}
	if uint64(o.N)*4 > uint64(1)<<o.Bits {
		return o, fmt.Errorf("livebench: n %d too dense for %d-bit space", o.N, o.Bits)
	}
	def(&o.AuxCount, 8)
	def(&o.SuccessorListLen, 4)
	def(&o.BucketSize, 8)
	def(&o.Keys, 8*o.N)
	if cap := int(uint64(1) << o.Bits / 4); o.Keys > cap {
		o.Keys = cap
	}
	if o.ZipfAlpha == 0 {
		o.ZipfAlpha = 1.2
	}
	def(&o.WarmupOps, 4*o.N)
	def(&o.Ops, 8*o.N)
	def(&o.Workers, 8)
	def(&o.HotReads, 4*o.N)
	def(&o.FixFingersBatch, 8)
	def(&o.StreamObjectBytes, 1<<20)
	def(&o.StreamReads, 3)
	def(&o.StreamPrefetch, 2)
	def(&o.WANRegions, 3)
	if o.WANScale == 0 {
		o.WANScale = 0.12
	}
	def(&o.WANSources, min(32, o.N/4))
	if o.WANSources > o.N {
		o.WANSources = o.N
	}
	def(&o.WANHotKeys, 2*o.AuxCount)
	if o.WANHotKeys > o.Keys {
		o.WANHotKeys = o.Keys
	}
	def(&o.WANOps, 2*o.N)
	if o.WANChurnMeanLife == 0 {
		o.WANChurnMeanLife = 900 * time.Second
	}
	def(&o.WANFlashReads, o.N)
	if o.StreamPrefetch < 0 {
		o.StreamPrefetch = 0 // explicit on-demand
	}
	if o.IdleWindow == 0 {
		o.IdleWindow = 3 * time.Second
	}
	if o.ConvergeTimeout == 0 {
		o.ConvergeTimeout = 10 * time.Minute
	}
	// Maintenance periods scale with n: tight 25ms/5ms cluster-test
	// timings are right for 56 nodes but at 1k+ they demand more
	// maintenance CPU than exists, so rounds stretch arbitrarily under
	// scheduler backpressure anyway — better to pick honest periods and
	// record them. The scaling keeps total maintenance load (runs/sec =
	// n/period) roughly constant across n.
	scale := time.Duration((o.N + 63) / 64)
	defDur := func(p *time.Duration, v time.Duration) {
		if *p == 0 {
			*p = v
		}
	}
	defDur(&o.StabilizeEvery, min(2*time.Second, scale*25*time.Millisecond))
	defDur(&o.FixFingersEvery, min(time.Second, scale*8*time.Millisecond))
	defDur(&o.AuxEvery, min(2*time.Second, scale*100*time.Millisecond))
	defDur(&o.ReplicateEvery, min(20*time.Second, scale*time.Second))
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o, nil
}

// Result is the machine-readable outcome of one live run; field names
// are the BENCH_live.json schema (documented in docs/BENCHMARKS.md).
type Result struct {
	Proto string `json:"proto"`
	Nodes int    `json:"nodes"`
	Seed  int64  `json:"seed"`
	Bits  uint   `json:"bits"`

	AuxCount         int     `json:"aux_count"`
	Alpha            int     `json:"alpha"`
	SuccessorListLen int     `json:"successor_list_len"`
	BucketSize       int     `json:"bucket_size,omitempty"`
	Keys             int     `json:"keys"`
	ZipfAlpha        float64 `json:"zipf_alpha"`
	WarmupOps        int     `json:"warmup_ops"`
	Ops              int     `json:"ops"`
	Workers          int     `json:"workers"`
	StabilizeMS      int64   `json:"stabilize_ms"`
	FixFingersMS     int64   `json:"fix_fingers_ms"`
	FixFingersBatch  int     `json:"fix_fingers_batch"`
	AuxEveryMS       int64   `json:"aux_every_ms"`

	BootMS     int64 `json:"boot_ms"`
	ConvergeMS int64 `json:"converge_ms"`

	MeanHops float64 `json:"mean_hops"`
	P50Hops  float64 `json:"p50_hops"`
	P99Hops  float64 `json:"p99_hops"`

	MeanLatencyUS float64 `json:"mean_latency_us"`
	P50LatencyUS  float64 `json:"p50_latency_us"`
	P99LatencyUS  float64 `json:"p99_latency_us"`

	OpsPerSec      float64 `json:"ops_per_sec"`
	MsgsPerSec     float64 `json:"msgs_per_sec"`
	BytesPerSec    float64 `json:"bytes_per_sec"`
	AuxHitRate     float64 `json:"aux_hit_rate"`
	LookupFailures int     `json:"lookup_failures"`

	// Maintenance overhead: per-node message and byte rates measured on
	// the converged overlay with zero application traffic.
	MaintMsgsPerSecPerNode  float64 `json:"maint_msgs_per_sec_per_node"`
	MaintBytesPerSecPerNode float64 `json:"maint_bytes_per_sec_per_node"`

	// Streaming phase (chunked large-value transfer): one object of
	// StreamObjectBytes is put through internal/chunk — wire-sized
	// chunks under derived keys plus a checksummed manifest — then
	// read back StreamReads times from random origins with lookahead
	// prefetch, byte-verified each time. TTFB covers the manifest
	// fetch plus the first chunk; MB/s is sustained over the whole
	// read including TTFB. Both are means across the reads.
	StreamObjectBytes int     `json:"stream_object_bytes"`
	StreamChunkSize   int     `json:"stream_chunk_size"`
	StreamChunks      int     `json:"stream_chunks"`
	StreamPrefetch    int     `json:"stream_prefetch"`
	StreamReads       int     `json:"stream_reads"`
	StreamTTFBUS      float64 `json:"stream_ttfb_us"`
	StreamMBPS        float64 `json:"stream_mbps"`

	// Replication data plane (schema v3). The anti-entropy window is
	// measured on the preloaded, write-quiet overlay: one ReplicateEvery
	// period after the preload (so the round that ships the new items
	// has passed), two further periods are priced. ReplBytesPerSec is
	// what the digest protocol actually sent cluster-wide in that
	// window — digest requests, digest responses, and any diff or
	// fallback pushes; ReplFullPushBytesPerSec is the counterfactual
	// the owners maintained alongside it: the bytes the pre-digest
	// protocol (full push of every owned item per round) would have
	// sent for the same batches. ReplReduction is their ratio — the
	// headline anti-entropy saving, ≥5 at full scale.
	ReplicateEveryMS        int64   `json:"replicate_every_ms"`
	StoreShards             int     `json:"store_shards"`
	ReplBytesPerSec         float64 `json:"repl_bytes_per_sec"`
	ReplFullPushBytesPerSec float64 `json:"repl_full_push_bytes_per_sec"`
	ReplReduction           float64 `json:"repl_reduction"`
	// ReplFallbacks counts digest rounds that timed out and fell back
	// to a full push during the measured window (0 on a quiet overlay).
	ReplFallbacks uint64 `json:"repl_fallbacks"`

	// Hot-key phase: reads of the single hottest key under the two read
	// contracts. On the healthy overlay both arms funnel to the owner
	// (the α-race's first probe rides the warm aux pointer straight
	// there), so owner and any-copy throughput match — the any-copy
	// contract costs nothing when nothing is wrong. The degraded arm is
	// where it pays: with the owner partitioned away, owner reads would
	// time out to zero, while the race hedges past the dead owner to
	// the key's replica holders and keeps serving at real throughput.
	// ReplicaHitRate is the fraction of degraded reads answered from a
	// replica copy (cluster-wide replica-served count over reads
	// issued); it decays over a long window as stranded repair promotes
	// a replica to owner, which is the overlay healing, not a miss.
	HotReads             int     `json:"hot_reads"`
	HotDegradedReads     int     `json:"hot_degraded_reads"`
	HotOwnerOpsPerSec    float64 `json:"hot_owner_ops_per_sec"`
	HotAnyOpsPerSec      float64 `json:"hot_any_ops_per_sec"`
	HotDegradedOpsPerSec float64 `json:"hot_degraded_ops_per_sec"`
	HotFailures          int     `json:"hot_failures"`
	ReplicaHitRate       float64 `json:"replica_hit_rate"`

	// WAN latency phase (schema v4). The converged overlay is moved onto
	// a seeded coordinate WAN topology (every RPC pays heterogeneous
	// propagation delay) and WANSources origins drive Zipf lookups over
	// the WANHotKeys hottest ranks, wall latency per lookup. Four arms:
	// hop-greedy aux selection (the frequency-only baseline), QoS-aware
	// selection (measured RTTs weight the objective and the delay bound
	// forces direct pointers to heavy over-bound targets), the QoS arm
	// repeated under exponential-lifetime churn (crash-and-rejoin at the
	// paper's session rate), and a flash crowd on a cold key before and
	// after one QoS aux adaptation. The headline contract — QoS p99
	// strictly below hop-greedy p99 — is enforced by Validate at full
	// scale across the document's geometries.
	WANRegions    int     `json:"wan_regions"`
	WANScale      float64 `json:"wan_scale"`
	WANSources    int     `json:"wan_sources"`
	WANHotKeys    int     `json:"wan_hot_keys"`
	WANOps        int     `json:"wan_ops"`
	WANQoSBoundMS float64 `json:"wan_qos_bound_ms"`

	WANHopP50US float64 `json:"wan_hop_p50_us"`
	WANHopP99US float64 `json:"wan_hop_p99_us"`
	WANQoSP50US float64 `json:"wan_qos_p50_us"`
	WANQoSP99US float64 `json:"wan_qos_p99_us"`

	// WANQoSSelects / WANQoSInfeasible aggregate the sources' QoS
	// selection counters over the phase: how many aux recomputations the
	// constrained optimizer decided, and how many fell back because the
	// delay bound was unsatisfiable. WANFailures counts failed lookups
	// across the hop, QoS, and flash arms (churn failures are separate —
	// crashing owners legitimately fail lookups mid-arm).
	WANQoSSelects    uint64 `json:"wan_qos_selects"`
	WANQoSInfeasible uint64 `json:"wan_qos_infeasible"`
	WANFailures      int    `json:"wan_failures"`

	WANChurnMeanLifeMS int64   `json:"wan_churn_mean_life_ms"`
	WANChurnRestarts   int     `json:"wan_churn_restarts"`
	WANChurnP50US      float64 `json:"wan_churn_p50_us"`
	WANChurnP99US      float64 `json:"wan_churn_p99_us"`
	WANChurnFailures   int     `json:"wan_churn_failures"`

	// Flash crowd: WANFlashP99US is the burst p99 while the cold key is
	// reached by routing alone; WANFlashAdaptedP99US is the same burst
	// after the sources' observers absorbed the first one and a QoS aux
	// recompute installed direct pointers.
	WANFlashReads        int     `json:"wan_flash_reads"`
	WANFlashP99US        float64 `json:"wan_flash_p99_us"`
	WANFlashAdaptedP99US float64 `json:"wan_flash_adapted_p99_us"`

	// StrandedKeys counts preloaded keys surviving only as replicas
	// (no live owner copy) at the end of the run. The replication
	// loop's stranded repair re-homes such keys within a few periods,
	// so Run fails rather than record a non-zero count: a committed
	// v2 file always carries 0 here.
	StrandedKeys int `json:"stranded_keys"`

	Net    memnet.Stats `json:"net"`
	WallMS int64        `json:"wall_ms"`
}

// counterSnap is the per-phase aggregate of node transport counters.
type counterSnap struct {
	msgs, bytes, auxHits uint64
}

func snapshot(nodes []*node.Node) counterSnap {
	var s counterSnap
	for _, n := range nodes {
		m := n.Metrics()
		s.msgs += m.DatagramsIn + m.DatagramsOut
		s.bytes += m.BytesIn + m.BytesOut
		s.auxHits += m.AuxHits
	}
	return s
}

// replSnap is the cluster-wide aggregate of the replication data-plane
// counters.
type replSnap struct {
	out, fullPush, fallbacks, serves uint64
}

func replSnapshot(nodes []*node.Node) replSnap {
	var s replSnap
	for _, n := range nodes {
		m := n.Metrics()
		s.out += m.ReplBytesOut
		s.fullPush += m.ReplBytesFullPush
		s.fallbacks += m.FullPushFallbacks
		s.serves += m.ReplicaServes
	}
	return s
}

// Run executes one live benchmark: boot, converge, idle maintenance
// window, preload, warmup, measured workload, stranded scan.
func Run(o Options) (*Result, error) {
	o, err := o.withDefaults()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	space := id.NewSpace(o.Bits)
	rng := rand.New(rand.NewSource(o.Seed))
	ids := randx.UniqueIDs(rng, o.N, space.Size())
	keyIDs := randx.UniqueIDs(rng, o.Keys, space.Size())
	keys := make([]id.ID, o.Keys)
	for i, k := range keyIDs {
		keys[i] = id.ID(k)
	}

	nw := memnet.New(o.Seed)
	sched := node.NewBatchScheduler(0)
	// The WAN topology and the QoS delay bound derived from it exist
	// before boot: addresses are deterministic (cluster.AddrFor), so the
	// bound every node carries in its config — inert until the WAN phase
	// toggles SetAuxQoS — is a pure function of the run's seed.
	topo := memnet.NewWANTopology(o.Seed, memnet.WANOptions{Regions: o.WANRegions, Scale: o.WANScale})
	wanBound := wanQoSBound(topo, ids)
	// mkCfg is the single source of node configuration: cluster boot
	// applies it per index, and the churn arm's crash-and-rejoin
	// restarts reuse it so a reborn node is configured exactly like its
	// previous life.
	mkCfg := func(x uint64) node.Config {
		return node.Config{
			Space:             space,
			ID:                id.ID(x),
			Addr:              cluster.AddrFor(id.ID(x)),
			NewRing:           factories[o.Proto],
			SuccessorListLen:  o.SuccessorListLen,
			BucketSize:        o.BucketSize,
			AuxCount:          o.AuxCount,
			StabilizeEvery:    o.StabilizeEvery,
			FixFingersEvery:   o.FixFingersEvery,
			FixFingersBatch:   o.FixFingersBatch,
			AuxEvery:          o.AuxEvery,
			ReplicateEvery:    o.ReplicateEvery,
			AuxQoSDelayBound:  wanBound,
			RPCTimeout:        250 * time.Millisecond,
			RPCRetries:        1,
			ItemCacheCapacity: -1, // hops must reach owners: no local copies
			Scheduler:         sched,
			Listen: func(addr string) (node.PacketConn, error) {
				return nw.Listen(addr)
			},
		}
	}
	o.Logf("livebench: %s n=%d seed=%d: booting", o.Proto, o.N, o.Seed)
	c, err := cluster.Start(space, nw, ids, func(i int, cfg *node.Config) {
		*cfg = mkCfg(ids[i])
	})
	if err != nil {
		sched.Close()
		nw.CloseAll()
		return nil, err
	}
	defer func() {
		c.Close()
		sched.Close()
		nw.CloseAll()
	}()
	r := &Result{
		Proto: o.Proto, Nodes: o.N, Seed: o.Seed, Bits: o.Bits,
		AuxCount: o.AuxCount, Alpha: c.Nodes[0].Metrics().Alpha,
		SuccessorListLen: o.SuccessorListLen,
		Keys:             o.Keys, ZipfAlpha: o.ZipfAlpha,
		WarmupOps: o.WarmupOps, Ops: o.Ops, Workers: o.Workers,
		StabilizeMS:      o.StabilizeEvery.Milliseconds(),
		FixFingersMS:     o.FixFingersEvery.Milliseconds(),
		FixFingersBatch:  o.FixFingersBatch,
		AuxEveryMS:       o.AuxEvery.Milliseconds(),
		ReplicateEveryMS: o.ReplicateEvery.Milliseconds(),
		StoreShards:      c.Nodes[0].Metrics().StoreShards,
		HotReads:         o.HotReads,
		BootMS:           time.Since(start).Milliseconds(),
	}
	if o.Proto == "kademlia" {
		r.BucketSize = o.BucketSize
	}
	o.Logf("livebench: booted in %dms, waiting for convergence", r.BootMS)

	waitConverged := func() error {
		switch o.Proto {
		case "pastry":
			return c.WaitConvergedPastry(o.SuccessorListLen, o.ConvergeTimeout)
		case "kademlia":
			return c.WaitConvergedKademlia(o.BucketSize, o.ConvergeTimeout)
		default:
			return c.WaitConverged(o.ConvergeTimeout)
		}
	}
	convergeStart := time.Now()
	if err := waitConverged(); err != nil {
		return nil, fmt.Errorf("livebench: %s n=%d: %w", o.Proto, o.N, err)
	}
	r.ConvergeMS = time.Since(convergeStart).Milliseconds()
	o.Logf("livebench: converged in %dms, pricing idle maintenance", r.ConvergeMS)

	// Idle window: the overlay is converged and carries no application
	// traffic, so every message in this window is maintenance.
	idleBefore := snapshot(c.Nodes)
	time.Sleep(o.IdleWindow)
	idleAfter := snapshot(c.Nodes)
	idleSecs := o.IdleWindow.Seconds()
	r.MaintMsgsPerSecPerNode = float64(idleAfter.msgs-idleBefore.msgs) / idleSecs / float64(o.N)
	r.MaintBytesPerSecPerNode = float64(idleAfter.bytes-idleBefore.bytes) / idleSecs / float64(o.N)

	// Preload the key universe through random origins, sharded across
	// the workload workers — 8·N sequential puts would dominate the
	// wall clock at full scale.
	val := make([]byte, 64)
	rng.Read(val)
	{
		var wg sync.WaitGroup
		errs := make([]error, o.Workers)
		for w := 0; w < o.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				wrng := rand.New(rand.NewSource(randx.DeriveSeed(o.Seed, fmt.Sprintf("preload-%d", w))))
				for i := w; i < len(keys); i += o.Workers {
					origin := c.Nodes[wrng.Intn(len(c.Nodes))]
					if _, err := origin.Put(keys[i], val); err != nil {
						errs[w] = fmt.Errorf("livebench: preload put %d (key %d): %w", i, keys[i], err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	o.Logf("livebench: %d keys preloaded, pricing anti-entropy (%v window)", len(keys), 2*o.ReplicateEvery)

	// Anti-entropy window: the overlay is write-quiet, so after one
	// period (which lets the round that ships the freshly preloaded
	// items pass) every further round is steady-state digest traffic.
	// Two periods guarantee at least one full round per owner
	// regardless of ticker phase.
	time.Sleep(o.ReplicateEvery)
	replBefore := replSnapshot(c.Nodes)
	replStart := time.Now()
	time.Sleep(2 * o.ReplicateEvery)
	replAfter := replSnapshot(c.Nodes)
	replSecs := time.Since(replStart).Seconds()
	r.ReplBytesPerSec = float64(replAfter.out-replBefore.out) / replSecs
	r.ReplFullPushBytesPerSec = float64(replAfter.fullPush-replBefore.fullPush) / replSecs
	r.ReplFallbacks = replAfter.fallbacks - replBefore.fallbacks
	if d := replAfter.out - replBefore.out; d > 0 {
		r.ReplReduction = float64(replAfter.fullPush-replBefore.fullPush) / float64(d)
	}
	o.Logf("livebench: anti-entropy %.0f B/s vs %.0f B/s full-push (%.1fx reduction, %d fallbacks), warming up (%d ops)",
		r.ReplBytesPerSec, r.ReplFullPushBytesPerSec, r.ReplReduction, r.ReplFallbacks, o.WarmupOps)

	// Zipf workload: rank r's popularity ∝ r^-alpha, ranks assigned to
	// keys in preload order (the mapping is arbitrary but fixed by the
	// seed). Warmup feeds each origin's frequency observer so aux
	// recomputation has a distribution to optimize before measurement.
	alias := randx.NewAlias(randx.ZipfWeights(o.Keys, o.ZipfAlpha))
	runPhase := func(ops int, record bool) ([]int, []int64, int) {
		var (
			mu        sync.Mutex
			hops      []int
			latencies []int64
			failures  int
		)
		var wg sync.WaitGroup
		perWorker := ops / o.Workers
		for w := 0; w < o.Workers; w++ {
			n := perWorker
			if w == 0 {
				n += ops % o.Workers
			}
			wg.Add(1)
			go func(w, n int) {
				defer wg.Done()
				wrng := rand.New(rand.NewSource(randx.DeriveSeed(o.Seed, fmt.Sprintf("worker-%d-%t", w, record))))
				myHops := make([]int, 0, n)
				myLat := make([]int64, 0, n)
				myFail := 0
				for i := 0; i < n; i++ {
					origin := c.Nodes[wrng.Intn(len(c.Nodes))]
					key := keys[alias.Sample(wrng)]
					t0 := time.Now()
					_, h, err := origin.Lookup(key)
					if err != nil {
						myFail++
						continue
					}
					if record {
						myHops = append(myHops, h)
						myLat = append(myLat, time.Since(t0).Microseconds())
					}
				}
				mu.Lock()
				hops = append(hops, myHops...)
				latencies = append(latencies, myLat...)
				failures += myFail
				mu.Unlock()
			}(w, n)
		}
		wg.Wait()
		return hops, latencies, failures
	}

	runPhase(o.WarmupOps, false)
	// Let aux recomputation see the warmed-up window before measuring:
	// two aux periods cover a rotation plus a recompute.
	time.Sleep(2 * o.AuxEvery)
	o.Logf("livebench: warmed up, measuring (%d ops)", o.Ops)

	before := snapshot(c.Nodes)
	measureStart := time.Now()
	hops, latencies, failures := runPhase(o.Ops, true)
	elapsed := time.Since(measureStart)
	after := snapshot(c.Nodes)

	r.LookupFailures = failures
	if len(hops) == 0 {
		return nil, fmt.Errorf("livebench: %s n=%d: every measured lookup failed", o.Proto, o.N)
	}
	r.MeanHops = meanInt(hops)
	r.P50Hops = percentileInt(hops, 50)
	r.P99Hops = percentileInt(hops, 99)
	r.MeanLatencyUS = meanInt64(latencies)
	r.P50LatencyUS = percentileInt64(latencies, 50)
	r.P99LatencyUS = percentileInt64(latencies, 99)
	secs := elapsed.Seconds()
	r.OpsPerSec = float64(len(hops)+failures) / secs
	r.MsgsPerSec = float64(after.msgs-before.msgs) / secs
	r.BytesPerSec = float64(after.bytes-before.bytes) / secs
	r.AuxHitRate = float64(after.auxHits-before.auxHits) / float64(len(hops)+failures)

	if err := hotPhase(o, c, nw, keys[0], waitConverged, r); err != nil {
		return nil, err
	}

	if err := streamPhase(o, c, space, rng, r); err != nil {
		return nil, err
	}

	if err := wanPhase(o, c, nw, topo, wanBound, keys, mkCfg, waitConverged, r); err != nil {
		return nil, err
	}

	// Stranded drain: keys surviving only as replicas are re-homed by
	// the replication loop's stranded repair within a few periods (a
	// replica must age 3 periods before it counts as stranded, then
	// one more round pushes it to the resolved owner). A key still
	// stranded after the drain window is a durability hole, and the
	// bench fails rather than record it.
	drainDeadline := time.Now().Add(8 * o.ReplicateEvery)
	for {
		r.StrandedKeys = countStranded(c.Nodes, keys)
		if r.StrandedKeys == 0 || time.Now().After(drainDeadline) {
			break
		}
		o.Logf("livebench: %d keys stranded, waiting for repair", r.StrandedKeys)
		time.Sleep(o.ReplicateEvery / 2)
	}
	if r.StrandedKeys > 0 {
		return nil, fmt.Errorf("livebench: %s n=%d: %d keys still stranded after the repair drain window",
			o.Proto, o.N, r.StrandedKeys)
	}

	r.Net = nw.Stats()
	r.WallMS = time.Since(start).Milliseconds()
	o.Logf("livebench: %s n=%d done: mean hops %.3f, aux hit rate %.3f, stream ttfb %.0fus %.2f MB/s, wall %dms",
		o.Proto, o.N, r.MeanHops, r.AuxHitRate, r.StreamTTFBUS, r.StreamMBPS, r.WallMS)
	return r, nil
}

// hotPhase prices the two read contracts on the single hottest key
// (Zipf rank 0, so its aux pointers are warm from the measured
// workload). Two healthy arms first: owner reads (Get — resolve the
// owner, fetch there) and any-copy reads (FindValue — race find-value
// probes, take the first copy a holder answers with). On a healthy
// overlay both funnel to the owner, so their throughputs match: the
// weaker contract costs nothing when nothing is wrong. The third arm
// partitions the owner away and repeats the any-copy reads — the
// regime the replica-served read path exists for: owner reads would
// time out to zero, while the race hedges past the dead owner to the
// replica holders the neighborhood advertisement names and keeps
// serving at real throughput, with ReplicaHitRate of the reads
// answered from replica copies. The partition is healed and the
// overlay re-converged against the oracle before the next phase.
// Origins skip the key's own holders so every read pays the network.
func hotPhase(o Options, c *cluster.Cluster, nw *memnet.Network, hot id.ID, waitConverged func() error, r *Result) error {
	arm := func(reads int, read func(*node.Node) error) (float64, int) {
		var (
			wg       sync.WaitGroup
			mu       sync.Mutex
			failures int
		)
		start := time.Now()
		per := reads / o.Workers
		for w := 0; w < o.Workers; w++ {
			n := per
			if w == 0 {
				n += reads % o.Workers
			}
			wg.Add(1)
			go func(w, n int) {
				defer wg.Done()
				wrng := rand.New(rand.NewSource(randx.DeriveSeed(o.Seed, fmt.Sprintf("hot-%d", w))))
				myFail := 0
				for i := 0; i < n; i++ {
					origin := c.Nodes[wrng.Intn(len(c.Nodes))]
					if _, ok := origin.ItemDetail(hot); ok {
						continue // holders answer locally; not a priced read
					}
					// One client-level retry before a read counts as
					// failed: the kv client gives its callers the same
					// budget, and a single lost race under an active
					// partition is availability noise. The retry's cost
					// stays in the arm's wall clock, so ops/sec still
					// pays for it.
					if err := read(origin); err != nil {
						if err = read(origin); err != nil {
							myFail++
						}
					}
				}
				mu.Lock()
				failures += myFail
				mu.Unlock()
			}(w, n)
		}
		wg.Wait()
		return float64(reads) / time.Since(start).Seconds(), failures
	}
	ownerRead := func(n *node.Node) error {
		_, err := n.Get(hot)
		return err
	}
	anyRead := func(n *node.Node) error {
		_, err := n.FindValue(hot)
		return err
	}

	ownerOps, ownerFail := arm(o.HotReads, ownerRead)
	anyOps, anyFail := arm(o.HotReads, anyRead)

	// The degraded arm is short: each read pays hedged probes past the
	// dead owner (a quarter RPC timeout each), so a full-length arm
	// would dominate the bench's wall clock without adding signal.
	degradedReads := o.HotReads / 8
	if degradedReads < 64 {
		degradedReads = 64
	}
	var ownerNode *node.Node
	for _, n := range c.Nodes {
		if it, ok := n.ItemDetail(hot); ok && it.Owned {
			ownerNode = n
			break
		}
	}
	if ownerNode == nil {
		return fmt.Errorf("livebench: hot key %d has no live owner before the degraded arm", hot)
	}
	nw.Partition("livebench-hot-owner", ownerNode.Addr())
	servesBefore := replSnapshot(c.Nodes).serves
	degradedOps, degradedFail := arm(degradedReads, anyRead)
	servesAfter := replSnapshot(c.Nodes).serves
	nw.Heal("livebench-hot-owner")
	if err := waitConverged(); err != nil {
		return fmt.Errorf("livebench: re-converge after the degraded hot arm: %w", err)
	}

	r.HotDegradedReads = degradedReads
	r.HotOwnerOpsPerSec = ownerOps
	r.HotAnyOpsPerSec = anyOps
	r.HotDegradedOpsPerSec = degradedOps
	r.HotFailures = ownerFail + anyFail + degradedFail
	r.ReplicaHitRate = float64(servesAfter-servesBefore) / float64(degradedReads)
	o.Logf("livebench: hot key %d: owner %.0f ops/s, any-copy %.0f ops/s, owner-down any-copy %.0f ops/s, replica hit rate %.3f (%d failures)",
		hot, ownerOps, anyOps, degradedOps, r.ReplicaHitRate, r.HotFailures)
	return nil
}

// streamPhase puts one large object through the chunk layer and reads
// it back sequentially from fresh random origins, recording mean TTFB
// and sustained throughput. Chunk fetches ride the normal lookup path
// (FindValue), so prefetch lookahead feeds the origins' frequency
// observers exactly like foreground traffic.
func streamPhase(o Options, c *cluster.Cluster, space id.Space, rng *rand.Rand, r *Result) error {
	storeOver := func(n *node.Node) (*chunk.Store, error) {
		return chunk.New(chunk.FuncKV{
			PutFunc: func(key id.ID, value []byte) error {
				_, err := n.Put(key, value)
				return err
			},
			GetFunc: func(key id.ID) ([]byte, int, error) {
				res, err := n.FindValue(key)
				return res.Value, res.Hops, err
			},
		}, chunk.Options{Space: space, Window: 8, Prefetch: o.StreamPrefetch, Retries: 3,
			// A chunk key can collide with a preloaded workload key in
			// the bench's small id space; the chunk put then bumps that
			// key's version, and until the next digest round an
			// any-copy read can be served the bounded-stale preload
			// value. Escalate digest mismatches to an owner read.
			StrongGet: func(key id.ID) ([]byte, int, error) {
				res, err := n.Get(key)
				return res.Value, res.Hops, err
			}})
	}
	obj := make([]byte, o.StreamObjectBytes)
	rng.Read(obj)
	root := space.Hash([]byte("livebench-stream-object"))
	ws, err := storeOver(c.Nodes[rng.Intn(len(c.Nodes))])
	if err != nil {
		return err
	}
	m, err := ws.PutObject(root, obj)
	if err != nil {
		return fmt.Errorf("livebench: stream put: %w", err)
	}
	r.StreamObjectBytes = o.StreamObjectBytes
	r.StreamChunkSize = int(m.ChunkSize)
	r.StreamChunks = m.Chunks()
	r.StreamPrefetch = o.StreamPrefetch
	r.StreamReads = o.StreamReads
	o.Logf("livebench: streaming %d bytes in %d chunks, %d reads", m.TotalLen, m.Chunks(), o.StreamReads)

	var ttfbSum, mbpsSum float64
	for i := 0; i < o.StreamReads; i++ {
		rs, err := storeOver(c.Nodes[rng.Intn(len(c.Nodes))])
		if err != nil {
			return err
		}
		readStart := time.Now()
		rd, err := rs.NewReader(root)
		if err != nil {
			return fmt.Errorf("livebench: stream read %d: open: %w", i, err)
		}
		got, err := io.ReadAll(rd)
		elapsed := time.Since(readStart)
		rd.Close()
		if err != nil {
			return fmt.Errorf("livebench: stream read %d: %w", i, err)
		}
		if !bytes.Equal(got, obj) {
			return fmt.Errorf("livebench: stream read %d: bytes differ from the stored object", i)
		}
		st := rd.Stats()
		ttfbSum += float64(st.TTFB.Microseconds())
		mbpsSum += float64(st.BytesRead) / (1 << 20) / elapsed.Seconds()
	}
	r.StreamTTFBUS = ttfbSum / float64(o.StreamReads)
	r.StreamMBPS = mbpsSum / float64(o.StreamReads)
	return nil
}

// wanQoSBound derives the QoS delay bound from the topology before any
// node boots: sample RTTs between deterministic member addresses,
// classify each pair intra- or inter-region, and split the gap between
// the slowest intra RTT and the fastest inter RTT. A contact past the
// bound is on the far side of a long-haul link, which is exactly the
// set the QoS selector should force direct pointers to.
func wanQoSBound(t *memnet.WANTopology, ids []uint64) time.Duration {
	sample := ids
	if len(sample) > 96 {
		sample = sample[:96]
	}
	maxIntra, minInter := time.Duration(0), time.Duration(1)<<62
	for i := 0; i < len(sample); i++ {
		a := cluster.AddrFor(id.ID(sample[i]))
		for j := i + 1; j < len(sample); j++ {
			b := cluster.AddrFor(id.ID(sample[j]))
			rtt := t.RTT(a, b)
			if t.RegionOf(a) == t.RegionOf(b) {
				maxIntra = max(maxIntra, rtt)
			} else {
				minInter = min(minInter, rtt)
			}
		}
	}
	if minInter > time.Duration(1)<<61 {
		// Degenerate sample (every member hashed into one region): no
		// long-haul link exists for the bound to separate.
		return maxIntra * 2
	}
	return (maxIntra + minInter) / 2
}

// wanPhase moves the converged overlay onto the seeded WAN topology and
// prices auxiliary selection policy under real heterogeneous latency:
// hop-greedy arm, QoS arm (the source nodes — the only nodes whose RTT
// tables the workload warms — flip to QoS-aware selection and routing),
// the QoS arm under paper-rate churn, and a flash crowd on a cold key
// before and after one aux adaptation. The topology is removed and the
// overlay re-converged before the caller's stranded drain.
func wanPhase(o Options, c *cluster.Cluster, nw *memnet.Network, topo *memnet.WANTopology,
	bound time.Duration, keys []id.ID, mkCfg func(uint64) node.Config,
	waitConverged func() error, r *Result) error {
	r.WANRegions, r.WANScale = o.WANRegions, o.WANScale
	r.WANSources, r.WANHotKeys, r.WANOps = o.WANSources, o.WANHotKeys, o.WANOps
	r.WANQoSBoundMS = float64(bound) / float64(time.Millisecond)
	r.WANChurnMeanLifeMS = o.WANChurnMeanLife.Milliseconds()
	r.WANFlashReads = o.WANFlashReads

	rng := rand.New(rand.NewSource(randx.DeriveSeed(o.Seed, "wan")))
	perm := rng.Perm(len(c.Nodes))
	srcIdx := make(map[int]bool, o.WANSources)
	sources := make([]*node.Node, o.WANSources)
	for i := 0; i < o.WANSources; i++ {
		srcIdx[perm[i]] = true
		sources[i] = c.Nodes[perm[i]]
	}
	hot := keys[:o.WANHotKeys]
	hotAlias := randx.NewAlias(randx.ZipfWeights(len(hot), o.ZipfAlpha))

	nw.SetTopology(topo)
	o.Logf("livebench: WAN topology on (%d regions, scale %.2f, QoS bound %.1fms), warming %d sources over %d hot keys",
		o.WANRegions, o.WANScale, r.WANQoSBoundMS, len(sources), len(hot))

	// Warm + prime: each source observes a Zipf-shaped slice of the hot
	// set (feeding its frequency window) and actively measures each hot
	// owner — resolve once, then ping. On Chord a lookup resolves at the
	// owner's predecessor, so without the active measurement step a
	// source would never hold an RTT estimate for the owners themselves,
	// and the delay bound would have nothing to judge.
	{
		var wg sync.WaitGroup
		for si, s := range sources {
			wg.Add(1)
			go func(si int, s *node.Node) {
				defer wg.Done()
				wrng := rand.New(rand.NewSource(randx.DeriveSeed(o.Seed, fmt.Sprintf("wan-warm-%d", si))))
				for i := 0; i < 4*len(hot); i++ {
					s.Lookup(hot[hotAlias.Sample(wrng)])
				}
				for _, k := range hot {
					ct, _, err := s.Lookup(k)
					if err != nil {
						continue
					}
					s.Ping(ct.Addr)
					s.Ping(ct.Addr)
				}
			}(si, s)
		}
		wg.Wait()
	}

	// measure drives ops lookups from the sources through o.Workers
	// clients and returns per-lookup wall latencies (µs) plus failures.
	measure := func(tag string, ops int, keyFor func(*rand.Rand) id.ID) ([]int64, int, error) {
		var (
			mu        sync.Mutex
			latencies []int64
			failures  int
			wg        sync.WaitGroup
		)
		per := ops / o.Workers
		for w := 0; w < o.Workers; w++ {
			n := per
			if w == 0 {
				n += ops % o.Workers
			}
			wg.Add(1)
			go func(w, n int) {
				defer wg.Done()
				wrng := rand.New(rand.NewSource(randx.DeriveSeed(o.Seed, fmt.Sprintf("wan-%s-%d", tag, w))))
				myLat := make([]int64, 0, n)
				myFail := 0
				for i := 0; i < n; i++ {
					origin := sources[wrng.Intn(len(sources))]
					key := keyFor(wrng)
					t0 := time.Now()
					if _, _, err := origin.Lookup(key); err != nil {
						myFail++
						continue
					}
					myLat = append(myLat, time.Since(t0).Microseconds())
				}
				mu.Lock()
				latencies = append(latencies, myLat...)
				failures += myFail
				mu.Unlock()
			}(w, n)
		}
		wg.Wait()
		if len(latencies) == 0 {
			return nil, failures, fmt.Errorf("livebench: WAN %s arm: every lookup failed", tag)
		}
		return latencies, failures, nil
	}
	hotKey := func(wrng *rand.Rand) id.ID { return hot[hotAlias.Sample(wrng)] }
	recompute := func(nodes []*node.Node) {
		for _, s := range nodes {
			if _, err := s.RecomputeAux(); err != nil {
				o.Logf("livebench: WAN aux recompute on %d: %v", s.ID(), err)
			}
		}
	}

	// Hop-greedy arm: aux recomputed from the warmed observers with the
	// default frequency-only objective.
	recompute(c.Nodes)
	hopLat, hopFail, err := measure("hop", o.WANOps, hotKey)
	if err != nil {
		return err
	}
	r.WANHopP50US = percentileInt64(hopLat, 50)
	r.WANHopP99US = percentileInt64(hopLat, 99)
	o.Logf("livebench: WAN hop-greedy arm: p50 %.0fus p99 %.0fus (%d failures)", r.WANHopP50US, r.WANHopP99US, hopFail)

	// QoS arm: same workload, QoS flipped on the sources only. The
	// sources are where the latency plane has data — their warm-up fed
	// both the frequency windows and the RTT tables for hot owners and
	// recurring walk intermediates — so they both re-select aux under
	// the cost/bound objective and route each lookup step by proximity
	// (qosProbeIndex: a near-in-distance candidate with a known-cheap
	// link is probed ahead of the geometry's blind pick). Every
	// intermediate node keeps the exact hop-greedy aux state of the
	// previous arm, so the arms differ in the sources' policy alone —
	// and the other ~n nodes don't burn this one-core machine's budget
	// rerunning the QoS optimizer every aux tick, which would inflate
	// the very wall-clock percentiles under measurement.
	for _, s := range sources {
		s.SetAuxQoS(true)
	}
	recompute(sources)
	qosLat, qosFail, err := measure("qos", o.WANOps, hotKey)
	if err != nil {
		return err
	}
	r.WANQoSP50US = percentileInt64(qosLat, 50)
	r.WANQoSP99US = percentileInt64(qosLat, 99)
	o.Logf("livebench: WAN QoS arm: p50 %.0fus p99 %.0fus (%d failures)", r.WANQoSP50US, r.WANQoSP99US, qosFail)

	// Churn arm: the QoS workload again, now with nodes crashing and
	// rejoining at the aggregate rate n/meanLife of exponential
	// lifetimes. A victim rejoins under a FRESH id (and thus a fresh
	// derived address): a departed peer's identity doesn't come back in
	// a real overlay, and an instant same-id reincarnation is also a
	// trap — the hot set's position-aliased aux pointers all over the
	// overlay still name the victim's old position, so every join walk
	// for that id funnels into the reborn ring-of-one node, which then
	// answers Done-with-self and claims the keyspace (soak sidesteps
	// the same trap with delayed id recycling). The convergence oracle
	// derives the ideal ring from c.Nodes at call time, so swapping the
	// slot's id keeps the post-phase re-converge honest. Sources are
	// exempt (they hold the selection state under test); restarted
	// nodes stay hop-greedy like every other intermediate.
	stopChurn := make(chan struct{})
	churnErr := make(chan error, 1)
	var (
		churnWG  sync.WaitGroup
		restarts int
	)
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		crng := rand.New(rand.NewSource(randx.DeriveSeed(o.Seed, "wan-churn")))
		// Fresh rejoin ids must dodge every id ever used for a node or a
		// key — node ids for ring uniqueness, key ids because a node
		// sitting exactly AT a key's position would shadow the
		// position-aliased aux entries pointing at the key's owner.
		used := make(map[uint64]bool, len(c.Nodes)+len(keys))
		for _, n := range c.Nodes {
			used[uint64(n.ID())] = true
		}
		for _, k := range keys {
			used[uint64(k)] = true
		}
		sp := id.NewSpace(o.Bits)
		freshID := func() uint64 {
			for {
				x := crng.Uint64() % sp.Size()
				if !used[x] {
					used[x] = true
					return x
				}
			}
		}
		for {
			gap := time.Duration(crng.ExpFloat64() * float64(o.WANChurnMeanLife) / float64(len(c.Nodes)))
			select {
			case <-stopChurn:
				return
			case <-time.After(gap):
			}
			vi := crng.Intn(len(c.Nodes))
			if srcIdx[vi] || vi == 0 {
				continue // the lifetime draw hit an exempt node
			}
			old := c.Nodes[vi]
			old.Close()
			time.Sleep(150 * time.Millisecond) // downtime before the rejoin
			x := freshID()
			var nn *node.Node
			var err error
			for attempt := 0; attempt < 5; attempt++ {
				if nn, err = node.Start(mkCfg(x)); err == nil {
					break
				}
				time.Sleep(100 * time.Millisecond)
			}
			if err != nil {
				churnErr <- fmt.Errorf("livebench: WAN churn: restart %d: %w", x, err)
				return
			}
			for attempt := 0; attempt < 3; attempt++ {
				if err = nn.Join(sources[crng.Intn(len(sources))].Addr()); err == nil {
					break
				}
			}
			if err != nil {
				nn.Close()
				churnErr <- fmt.Errorf("livebench: WAN churn: rejoin %d: %w", x, err)
				return
			}
			c.Nodes[vi] = nn
			restarts++
		}
	}()
	churnLat, churnFail, err := measure("churn", o.WANOps, hotKey)
	close(stopChurn)
	churnWG.Wait()
	if err != nil {
		return err
	}
	select {
	case err := <-churnErr:
		return err
	default:
	}
	r.WANChurnRestarts = restarts
	r.WANChurnP50US = percentileInt64(churnLat, 50)
	r.WANChurnP99US = percentileInt64(churnLat, 99)
	r.WANChurnFailures = churnFail
	o.Logf("livebench: WAN churn arm: %d restarts, p50 %.0fus p99 %.0fus (%d failures)",
		restarts, r.WANChurnP50US, r.WANChurnP99US, churnFail)

	// Flash crowd: a cold mid-rank key is hammered by every source. The
	// first burst pays routing (no aux pointer names a cold key); then
	// each source actively measures the flash owner and recomputes, and
	// the second burst shows what one QoS adaptation buys.
	flash := keys[len(keys)/2]
	flashKey := func(*rand.Rand) id.ID { return flash }
	flashLat, flashFail1, err := measure("flash", o.WANFlashReads, flashKey)
	if err != nil {
		return err
	}
	r.WANFlashP99US = percentileInt64(flashLat, 99)
	for _, s := range sources {
		if ct, _, err := s.Lookup(flash); err == nil {
			s.Ping(ct.Addr)
			s.Ping(ct.Addr)
		}
	}
	recompute(sources)
	adaptedLat, flashFail2, err := measure("flash-adapted", o.WANFlashReads, flashKey)
	if err != nil {
		return err
	}
	r.WANFlashAdaptedP99US = percentileInt64(adaptedLat, 99)
	o.Logf("livebench: WAN flash crowd on key %d: p99 %.0fus cold, %.0fus adapted",
		flash, r.WANFlashP99US, r.WANFlashAdaptedP99US)

	for _, s := range c.Nodes {
		m := s.Metrics()
		r.WANQoSSelects += m.AuxQoSSelects
		r.WANQoSInfeasible += m.AuxQoSInfeasible
		s.SetAuxQoS(false)
	}
	r.WANFailures = hopFail + qosFail + flashFail1 + flashFail2
	if r.WANQoSSelects == 0 {
		return fmt.Errorf("livebench: WAN phase: the QoS selector never engaged (bound %.1fms)", r.WANQoSBoundMS)
	}

	nw.SetTopology(nil)
	if err := waitConverged(); err != nil {
		return fmt.Errorf("livebench: re-converge after the WAN phase: %w", err)
	}
	return nil
}

// countStranded tallies preloaded keys that survive only as replicas:
// copies exist but no live node holds the key as owner, so overlay
// GETs miss while the bytes survive (soak's countStranded, applied to
// the bench's key universe).
func countStranded(nodes []*node.Node, keys []id.ID) int {
	stranded := 0
	for _, k := range keys {
		owners, copies := 0, 0
		for _, n := range nodes {
			if it, ok := n.ItemDetail(k); ok {
				copies++
				if it.Owned {
					owners++
				}
			}
		}
		if owners == 0 && copies > 0 {
			stranded++
		}
	}
	return stranded
}

func meanInt(xs []int) float64 {
	total := 0
	for _, x := range xs {
		total += x
	}
	return float64(total) / float64(len(xs))
}

func meanInt64(xs []int64) float64 {
	total := int64(0)
	for _, x := range xs {
		total += x
	}
	return float64(total) / float64(len(xs))
}

func percentileInt(xs []int, p int) float64 {
	s := append([]int(nil), xs...)
	sort.Ints(s)
	return float64(s[(len(s)-1)*p/100])
}

func percentileInt64(xs []int64, p int) float64 {
	s := append([]int64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return float64(s[(len(s)-1)*p/100])
}
