package livebench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Schema identifies the BENCH_live.json document format. Bump the
// version on any incompatible field change and teach Validate both.
const (
	// Schema is the current format: v4 adds the WAN latency phase — the
	// converged overlay on a seeded coordinate WAN topology, with
	// hop-greedy and QoS-aware auxiliary selection arms (wall-latency
	// p50/p99 each), the QoS arm repeated under exponential-lifetime
	// churn at the paper's session rate, and a flash-crowd arm before
	// and after one aux adaptation. At full scale (nodes ≥ 1024) the
	// headline claim is part of the schema: across the document's
	// full-scale runs, QoS p99 must beat hop-greedy p99 on at least two
	// geometries.
	Schema = "peercache-livebench/v4"
	// SchemaV3 is the previous format — replication data plane
	// (anti-entropy byte rates, repl_reduction, the hot-key read phase)
	// — still loadable so committed trajectories and older tooling keep
	// working; WAN fields are not enforced on it.
	SchemaV3 = "peercache-livebench/v3"
	// SchemaV2 added the streaming phase, fix_fingers_batch, and the
	// stranded_keys-at-zero gate; replication fields are not enforced on
	// it.
	SchemaV2 = "peercache-livebench/v2"
	// SchemaV1 is the original format; stream fields and the stranded
	// gate are not enforced on it either.
	SchemaV1 = "peercache-livebench/v1"
)

// File is the persisted BENCH_live.json document: one run per geometry
// from a single generation pass, plus provenance.
type File struct {
	Schema      string   `json:"schema"`
	GeneratedAt string   `json:"generated_at"` // RFC 3339 UTC
	Runs        []Result `json:"runs"`
}

// NewFile assembles a document from runs, stamped now.
func NewFile(runs []Result) *File {
	return &File{
		Schema:      Schema,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Runs:        runs,
	}
}

// Write marshals the document to path, indented, trailing newline.
func (f *File) Write(path string) error {
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Load reads and validates a BENCH_live.json document. Unknown fields
// are rejected: the file is a schema-checked artifact, not a config.
func Load(path string) (*File, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var f File
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("livebench: %s: %w", path, err)
	}
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("livebench: %s: %w", path, err)
	}
	return &f, nil
}

// Validate checks the document against the schema's semantic
// constraints — the CI job runs this against freshly emitted files so
// a field that silently stops being populated fails the build instead
// of committing zeros into the trajectory.
func (f *File) Validate() error {
	v4 := f.Schema == Schema
	v3 := v4 || f.Schema == SchemaV3
	v2 := v3 || f.Schema == SchemaV2
	if !v2 && f.Schema != SchemaV1 {
		return fmt.Errorf("schema %q, want %q (or legacy %q, %q, %q)", f.Schema, Schema, SchemaV3, SchemaV2, SchemaV1)
	}
	if _, err := time.Parse(time.RFC3339, f.GeneratedAt); err != nil {
		return fmt.Errorf("generated_at: %w", err)
	}
	if len(f.Runs) == 0 {
		return fmt.Errorf("no runs")
	}
	known := make(map[string]bool, len(Protos))
	for _, p := range Protos {
		known[p] = true
	}
	seen := make(map[string]bool)
	for i, r := range f.Runs {
		at := func(field string) string {
			return fmt.Sprintf("run %d (%s): %s", i, r.Proto, field)
		}
		if !known[r.Proto] {
			return fmt.Errorf("run %d: unknown proto %q", i, r.Proto)
		}
		if seen[r.Proto] {
			return fmt.Errorf("run %d: duplicate proto %q", i, r.Proto)
		}
		seen[r.Proto] = true
		pos := map[string]float64{
			"nodes":                       float64(r.Nodes),
			"bits":                        float64(r.Bits),
			"alpha":                       float64(r.Alpha),
			"keys":                        float64(r.Keys),
			"zipf_alpha":                  r.ZipfAlpha,
			"ops":                         float64(r.Ops),
			"workers":                     float64(r.Workers),
			"mean_hops":                   r.MeanHops,
			"mean_latency_us":             r.MeanLatencyUS,
			"p99_latency_us":              r.P99LatencyUS,
			"ops_per_sec":                 r.OpsPerSec,
			"msgs_per_sec":                r.MsgsPerSec,
			"bytes_per_sec":               r.BytesPerSec,
			"maint_msgs_per_sec_per_node": r.MaintMsgsPerSecPerNode,
			"wall_ms":                     float64(r.WallMS),
		}
		if v2 {
			pos["fix_fingers_batch"] = float64(r.FixFingersBatch)
			pos["stream_object_bytes"] = float64(r.StreamObjectBytes)
			pos["stream_chunk_size"] = float64(r.StreamChunkSize)
			pos["stream_chunks"] = float64(r.StreamChunks)
			pos["stream_reads"] = float64(r.StreamReads)
			pos["stream_ttfb_us"] = r.StreamTTFBUS
			pos["stream_mbps"] = r.StreamMBPS
		}
		if v3 {
			pos["replicate_every_ms"] = float64(r.ReplicateEveryMS)
			pos["store_shards"] = float64(r.StoreShards)
			pos["repl_bytes_per_sec"] = r.ReplBytesPerSec
			pos["repl_full_push_bytes_per_sec"] = r.ReplFullPushBytesPerSec
			pos["repl_reduction"] = r.ReplReduction
			pos["hot_reads"] = float64(r.HotReads)
			pos["hot_degraded_reads"] = float64(r.HotDegradedReads)
			pos["hot_owner_ops_per_sec"] = r.HotOwnerOpsPerSec
			pos["hot_any_ops_per_sec"] = r.HotAnyOpsPerSec
			pos["hot_degraded_ops_per_sec"] = r.HotDegradedOpsPerSec
			// The degraded arm exists to show replicas serving; a zero
			// hit rate means the replica read path never engaged.
			pos["replica_hit_rate"] = r.ReplicaHitRate
		}
		if v4 {
			pos["wan_regions"] = float64(r.WANRegions)
			pos["wan_scale"] = r.WANScale
			pos["wan_sources"] = float64(r.WANSources)
			pos["wan_hot_keys"] = float64(r.WANHotKeys)
			pos["wan_ops"] = float64(r.WANOps)
			pos["wan_qos_bound_ms"] = r.WANQoSBoundMS
			pos["wan_hop_p50_us"] = r.WANHopP50US
			pos["wan_hop_p99_us"] = r.WANHopP99US
			pos["wan_qos_p50_us"] = r.WANQoSP50US
			pos["wan_qos_p99_us"] = r.WANQoSP99US
			pos["wan_churn_mean_life_ms"] = float64(r.WANChurnMeanLifeMS)
			pos["wan_churn_p50_us"] = r.WANChurnP50US
			pos["wan_churn_p99_us"] = r.WANChurnP99US
			pos["wan_flash_reads"] = float64(r.WANFlashReads)
			pos["wan_flash_p99_us"] = r.WANFlashP99US
			pos["wan_flash_adapted_p99_us"] = r.WANFlashAdaptedP99US
			// A run where the constrained optimizer never decided a
			// selection measured nothing: the QoS arm was hop-greedy with
			// extra steps.
			pos["wan_qos_selects"] = float64(r.WANQoSSelects)
		}
		for field, v := range pos {
			if v <= 0 {
				return fmt.Errorf("%s = %g, want > 0", at(field), v)
			}
		}
		nonNeg := map[string]float64{
			"p50_hops":        r.P50Hops,
			"p99_hops":        r.P99Hops,
			"aux_hit_rate":    r.AuxHitRate,
			"lookup_failures": float64(r.LookupFailures),
			"stranded_keys":   float64(r.StrandedKeys),
			"converge_ms":     float64(r.ConvergeMS),
		}
		if v2 {
			nonNeg["stream_prefetch"] = float64(r.StreamPrefetch)
		}
		if v3 {
			nonNeg["repl_fallbacks"] = float64(r.ReplFallbacks)
			nonNeg["hot_failures"] = float64(r.HotFailures)
		}
		if v4 {
			nonNeg["wan_qos_infeasible"] = float64(r.WANQoSInfeasible)
			nonNeg["wan_failures"] = float64(r.WANFailures)
			nonNeg["wan_churn_restarts"] = float64(r.WANChurnRestarts)
			nonNeg["wan_churn_failures"] = float64(r.WANChurnFailures)
		}
		for field, v := range nonNeg {
			if v < 0 {
				return fmt.Errorf("%s = %g, want >= 0", at(field), v)
			}
		}
		// v2 promotes stranded keys from a recorded count to a failing
		// invariant: the repair loop must have drained every one.
		if v2 && r.StrandedKeys != 0 {
			return fmt.Errorf("%s = %d, want 0 (the repair loop must drain stranded keys)",
				at("stranded_keys"), r.StrandedKeys)
		}
		// v3 makes the digest protocol's headline claim part of the
		// schema at full scale: a committed 1024-node trajectory that
		// stops showing the ≥5x anti-entropy reduction fails here
		// instead of silently recording the regression. Small-n quick
		// runs (fewer owned items per node, so per-message overhead
		// weighs more) are exempt from the absolute floor; Compare
		// still gates them against the baseline's ratio.
		if v3 && r.Nodes >= 1024 && r.ReplReduction < 5 {
			return fmt.Errorf("%s = %.2f, want >= 5 at n >= 1024 (digest anti-entropy reduction)",
				at("repl_reduction"), r.ReplReduction)
		}
		if r.P99Hops < r.P50Hops {
			return fmt.Errorf("%s", at("p99_hops below p50_hops"))
		}
		if r.AuxHitRate > 1 {
			return fmt.Errorf("%s = %g, want <= 1", at("aux_hit_rate"), r.AuxHitRate)
		}
		if v4 {
			if r.WANHopP99US < r.WANHopP50US {
				return fmt.Errorf("%s", at("wan_hop_p99_us below wan_hop_p50_us"))
			}
			if r.WANQoSP99US < r.WANQoSP50US {
				return fmt.Errorf("%s", at("wan_qos_p99_us below wan_qos_p50_us"))
			}
			if r.WANChurnP99US < r.WANChurnP50US {
				return fmt.Errorf("%s", at("wan_churn_p99_us below wan_churn_p50_us"))
			}
			// At the paper's session rate a full-scale churn arm sees
			// about one departure per second; a zero-restart arm means
			// the churn machinery silently stopped.
			if r.Nodes >= 1024 && r.WANChurnRestarts == 0 {
				return fmt.Errorf("%s = 0, want >= 1 at n >= 1024 (churn arm never churned)", at("wan_churn_restarts"))
			}
		}
	}
	// v4's headline claim at full scale is cross-run: among the
	// document's full-scale geometries, latency-aware selection must
	// beat the frequency-only baseline at the tail on at least two (all,
	// when the document carries fewer than two).
	if v4 {
		fullScale, wins := 0, 0
		for _, r := range f.Runs {
			if r.Nodes < 1024 {
				continue
			}
			fullScale++
			if r.WANQoSP99US < r.WANHopP99US {
				wins++
			}
		}
		if need := min(2, fullScale); wins < need {
			return fmt.Errorf("wan_qos_p99_us below wan_hop_p99_us on %d of %d full-scale runs, want >= %d (QoS selection must beat hop-greedy at the tail)",
				wins, fullScale, need)
		}
	}
	return nil
}

// Compare gates runs against a committed baseline: for every geometry
// present in both, the new mean hop count must not exceed the
// baseline's by more than hopsTolerance (additive — hops are the
// routing-quality signal and stable across machine speeds, where
// latency and throughput are not), and when both sides carry streaming
// results the new stream TTFB must not exceed the baseline's by more
// than the multiplicative ttfbTolerance. TTFB is machine-speed
// sensitive, so its gate is a coarse fell-off-a-cliff guard with
// generous headroom, not a hop-style budget; it is skipped entirely
// when either side predates the streaming phase (v1 baselines) or
// ttfbTolerance is zero. When both sides carry replication data (v3),
// the new run's anti-entropy reduction (repl_reduction, the full-push
// bytes over the digest bytes actually sent) must not fall below the
// baseline's divided by replTolerance — the ratio is scale- and
// machine-stable where the raw byte rates are not (a quick CI run has
// fewer nodes, so cluster-wide bytes/s is incomparable, but how many
// bytes the digests save per byte sent is the protocol property being
// guarded). Zero replTolerance disables that gate. When both sides
// carry WAN results (v4), the new run's QoS-arm tail latency
// (wan_qos_p99_us) must not exceed the baseline's by more than the
// multiplicative p99Tolerance — like TTFB it is machine-speed
// sensitive, so the gate is a coarse cliff guard; zero p99Tolerance or
// a pre-WAN side skips it. Geometries in only one side are ignored, so
// a quick CI run (smaller n, where hops are lower anyway) still
// compares meaningfully against the committed full-scale file.
func Compare(baseline *File, runs []Result, hopsTolerance, ttfbTolerance, replTolerance, p99Tolerance float64) error {
	base := make(map[string]Result, len(baseline.Runs))
	for _, r := range baseline.Runs {
		base[r.Proto] = r
	}
	for _, r := range runs {
		b, ok := base[r.Proto]
		if !ok {
			continue
		}
		if r.MeanHops > b.MeanHops+hopsTolerance {
			return fmt.Errorf("livebench: %s mean hops %.3f exceeds baseline %.3f by more than %.2f (n=%d vs baseline n=%d)",
				r.Proto, r.MeanHops, b.MeanHops, hopsTolerance, r.Nodes, b.Nodes)
		}
		if ttfbTolerance > 0 && r.StreamTTFBUS > 0 && b.StreamTTFBUS > 0 &&
			r.StreamTTFBUS > b.StreamTTFBUS*ttfbTolerance {
			return fmt.Errorf("livebench: %s stream ttfb %.0fus exceeds %.1fx the baseline %.0fus (n=%d vs baseline n=%d)",
				r.Proto, r.StreamTTFBUS, ttfbTolerance, b.StreamTTFBUS, r.Nodes, b.Nodes)
		}
		if replTolerance > 0 && r.ReplReduction > 0 && b.ReplReduction > 0 &&
			r.ReplReduction < b.ReplReduction/replTolerance {
			return fmt.Errorf("livebench: %s anti-entropy reduction %.2fx below 1/%.1f of the baseline %.2fx (n=%d vs baseline n=%d)",
				r.Proto, r.ReplReduction, replTolerance, b.ReplReduction, r.Nodes, b.Nodes)
		}
		if p99Tolerance > 0 && r.WANQoSP99US > 0 && b.WANQoSP99US > 0 &&
			r.WANQoSP99US > b.WANQoSP99US*p99Tolerance {
			return fmt.Errorf("livebench: %s WAN QoS p99 %.0fus exceeds %.1fx the baseline %.0fus (n=%d vs baseline n=%d)",
				r.Proto, r.WANQoSP99US, p99Tolerance, b.WANQoSP99US, r.Nodes, b.Nodes)
		}
	}
	return nil
}
