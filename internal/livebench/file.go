package livebench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Schema identifies the BENCH_live.json document format. Bump the
// version on any incompatible field change and teach Validate both.
const (
	// Schema is the current format: v3 adds the replication data plane —
	// the anti-entropy byte rates (repl_bytes_per_sec against the
	// full-push counterfactual, and their ratio repl_reduction), the
	// store shard count, and the hot-key read phase (owner vs any-copy
	// ops/s plus replica_hit_rate). At full scale (nodes ≥ 1024) a v3
	// document must show repl_reduction ≥ 5 — the digest protocol's
	// headline claim is part of the schema, like v2's stranded gate.
	Schema = "peercache-livebench/v3"
	// SchemaV2 is the previous format — streaming phase, fix_fingers_batch,
	// stranded_keys gated at zero — still loadable so committed
	// trajectories and older tooling keep working; replication fields
	// are not enforced on it.
	SchemaV2 = "peercache-livebench/v2"
	// SchemaV1 is the original format; stream fields and the stranded
	// gate are not enforced on it either.
	SchemaV1 = "peercache-livebench/v1"
)

// File is the persisted BENCH_live.json document: one run per geometry
// from a single generation pass, plus provenance.
type File struct {
	Schema      string   `json:"schema"`
	GeneratedAt string   `json:"generated_at"` // RFC 3339 UTC
	Runs        []Result `json:"runs"`
}

// NewFile assembles a document from runs, stamped now.
func NewFile(runs []Result) *File {
	return &File{
		Schema:      Schema,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Runs:        runs,
	}
}

// Write marshals the document to path, indented, trailing newline.
func (f *File) Write(path string) error {
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Load reads and validates a BENCH_live.json document. Unknown fields
// are rejected: the file is a schema-checked artifact, not a config.
func Load(path string) (*File, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var f File
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("livebench: %s: %w", path, err)
	}
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("livebench: %s: %w", path, err)
	}
	return &f, nil
}

// Validate checks the document against the schema's semantic
// constraints — the CI job runs this against freshly emitted files so
// a field that silently stops being populated fails the build instead
// of committing zeros into the trajectory.
func (f *File) Validate() error {
	v3 := f.Schema == Schema
	v2 := v3 || f.Schema == SchemaV2
	if !v2 && f.Schema != SchemaV1 {
		return fmt.Errorf("schema %q, want %q (or legacy %q, %q)", f.Schema, Schema, SchemaV2, SchemaV1)
	}
	if _, err := time.Parse(time.RFC3339, f.GeneratedAt); err != nil {
		return fmt.Errorf("generated_at: %w", err)
	}
	if len(f.Runs) == 0 {
		return fmt.Errorf("no runs")
	}
	known := make(map[string]bool, len(Protos))
	for _, p := range Protos {
		known[p] = true
	}
	seen := make(map[string]bool)
	for i, r := range f.Runs {
		at := func(field string) string {
			return fmt.Sprintf("run %d (%s): %s", i, r.Proto, field)
		}
		if !known[r.Proto] {
			return fmt.Errorf("run %d: unknown proto %q", i, r.Proto)
		}
		if seen[r.Proto] {
			return fmt.Errorf("run %d: duplicate proto %q", i, r.Proto)
		}
		seen[r.Proto] = true
		pos := map[string]float64{
			"nodes":                       float64(r.Nodes),
			"bits":                        float64(r.Bits),
			"alpha":                       float64(r.Alpha),
			"keys":                        float64(r.Keys),
			"zipf_alpha":                  r.ZipfAlpha,
			"ops":                         float64(r.Ops),
			"workers":                     float64(r.Workers),
			"mean_hops":                   r.MeanHops,
			"mean_latency_us":             r.MeanLatencyUS,
			"p99_latency_us":              r.P99LatencyUS,
			"ops_per_sec":                 r.OpsPerSec,
			"msgs_per_sec":                r.MsgsPerSec,
			"bytes_per_sec":               r.BytesPerSec,
			"maint_msgs_per_sec_per_node": r.MaintMsgsPerSecPerNode,
			"wall_ms":                     float64(r.WallMS),
		}
		if v2 {
			pos["fix_fingers_batch"] = float64(r.FixFingersBatch)
			pos["stream_object_bytes"] = float64(r.StreamObjectBytes)
			pos["stream_chunk_size"] = float64(r.StreamChunkSize)
			pos["stream_chunks"] = float64(r.StreamChunks)
			pos["stream_reads"] = float64(r.StreamReads)
			pos["stream_ttfb_us"] = r.StreamTTFBUS
			pos["stream_mbps"] = r.StreamMBPS
		}
		if v3 {
			pos["replicate_every_ms"] = float64(r.ReplicateEveryMS)
			pos["store_shards"] = float64(r.StoreShards)
			pos["repl_bytes_per_sec"] = r.ReplBytesPerSec
			pos["repl_full_push_bytes_per_sec"] = r.ReplFullPushBytesPerSec
			pos["repl_reduction"] = r.ReplReduction
			pos["hot_reads"] = float64(r.HotReads)
			pos["hot_degraded_reads"] = float64(r.HotDegradedReads)
			pos["hot_owner_ops_per_sec"] = r.HotOwnerOpsPerSec
			pos["hot_any_ops_per_sec"] = r.HotAnyOpsPerSec
			pos["hot_degraded_ops_per_sec"] = r.HotDegradedOpsPerSec
			// The degraded arm exists to show replicas serving; a zero
			// hit rate means the replica read path never engaged.
			pos["replica_hit_rate"] = r.ReplicaHitRate
		}
		for field, v := range pos {
			if v <= 0 {
				return fmt.Errorf("%s = %g, want > 0", at(field), v)
			}
		}
		nonNeg := map[string]float64{
			"p50_hops":        r.P50Hops,
			"p99_hops":        r.P99Hops,
			"aux_hit_rate":    r.AuxHitRate,
			"lookup_failures": float64(r.LookupFailures),
			"stranded_keys":   float64(r.StrandedKeys),
			"converge_ms":     float64(r.ConvergeMS),
		}
		if v2 {
			nonNeg["stream_prefetch"] = float64(r.StreamPrefetch)
		}
		if v3 {
			nonNeg["repl_fallbacks"] = float64(r.ReplFallbacks)
			nonNeg["hot_failures"] = float64(r.HotFailures)
		}
		for field, v := range nonNeg {
			if v < 0 {
				return fmt.Errorf("%s = %g, want >= 0", at(field), v)
			}
		}
		// v2 promotes stranded keys from a recorded count to a failing
		// invariant: the repair loop must have drained every one.
		if v2 && r.StrandedKeys != 0 {
			return fmt.Errorf("%s = %d, want 0 (the repair loop must drain stranded keys)",
				at("stranded_keys"), r.StrandedKeys)
		}
		// v3 makes the digest protocol's headline claim part of the
		// schema at full scale: a committed 1024-node trajectory that
		// stops showing the ≥5x anti-entropy reduction fails here
		// instead of silently recording the regression. Small-n quick
		// runs (fewer owned items per node, so per-message overhead
		// weighs more) are exempt from the absolute floor; Compare
		// still gates them against the baseline's ratio.
		if v3 && r.Nodes >= 1024 && r.ReplReduction < 5 {
			return fmt.Errorf("%s = %.2f, want >= 5 at n >= 1024 (digest anti-entropy reduction)",
				at("repl_reduction"), r.ReplReduction)
		}
		if r.P99Hops < r.P50Hops {
			return fmt.Errorf("%s", at("p99_hops below p50_hops"))
		}
		if r.AuxHitRate > 1 {
			return fmt.Errorf("%s = %g, want <= 1", at("aux_hit_rate"), r.AuxHitRate)
		}
	}
	return nil
}

// Compare gates runs against a committed baseline: for every geometry
// present in both, the new mean hop count must not exceed the
// baseline's by more than hopsTolerance (additive — hops are the
// routing-quality signal and stable across machine speeds, where
// latency and throughput are not), and when both sides carry streaming
// results the new stream TTFB must not exceed the baseline's by more
// than the multiplicative ttfbTolerance. TTFB is machine-speed
// sensitive, so its gate is a coarse fell-off-a-cliff guard with
// generous headroom, not a hop-style budget; it is skipped entirely
// when either side predates the streaming phase (v1 baselines) or
// ttfbTolerance is zero. When both sides carry replication data (v3),
// the new run's anti-entropy reduction (repl_reduction, the full-push
// bytes over the digest bytes actually sent) must not fall below the
// baseline's divided by replTolerance — the ratio is scale- and
// machine-stable where the raw byte rates are not (a quick CI run has
// fewer nodes, so cluster-wide bytes/s is incomparable, but how many
// bytes the digests save per byte sent is the protocol property being
// guarded). Zero replTolerance disables that gate. Geometries in only
// one side are ignored, so a quick CI run (smaller n, where hops are
// lower anyway) still compares meaningfully against the committed
// full-scale file.
func Compare(baseline *File, runs []Result, hopsTolerance, ttfbTolerance, replTolerance float64) error {
	base := make(map[string]Result, len(baseline.Runs))
	for _, r := range baseline.Runs {
		base[r.Proto] = r
	}
	for _, r := range runs {
		b, ok := base[r.Proto]
		if !ok {
			continue
		}
		if r.MeanHops > b.MeanHops+hopsTolerance {
			return fmt.Errorf("livebench: %s mean hops %.3f exceeds baseline %.3f by more than %.2f (n=%d vs baseline n=%d)",
				r.Proto, r.MeanHops, b.MeanHops, hopsTolerance, r.Nodes, b.Nodes)
		}
		if ttfbTolerance > 0 && r.StreamTTFBUS > 0 && b.StreamTTFBUS > 0 &&
			r.StreamTTFBUS > b.StreamTTFBUS*ttfbTolerance {
			return fmt.Errorf("livebench: %s stream ttfb %.0fus exceeds %.1fx the baseline %.0fus (n=%d vs baseline n=%d)",
				r.Proto, r.StreamTTFBUS, ttfbTolerance, b.StreamTTFBUS, r.Nodes, b.Nodes)
		}
		if replTolerance > 0 && r.ReplReduction > 0 && b.ReplReduction > 0 &&
			r.ReplReduction < b.ReplReduction/replTolerance {
			return fmt.Errorf("livebench: %s anti-entropy reduction %.2fx below 1/%.1f of the baseline %.2fx (n=%d vs baseline n=%d)",
				r.Proto, r.ReplReduction, replTolerance, b.ReplReduction, r.Nodes, b.Nodes)
		}
	}
	return nil
}
