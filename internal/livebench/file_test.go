package livebench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goodRun returns a Result that passes every Validate constraint.
func goodRun(proto string) Result {
	r := Result{
		Proto: proto, Nodes: 128, Seed: 1, Bits: 16,
		AuxCount: 8, Alpha: 2, SuccessorListLen: 4,
		Keys: 128, ZipfAlpha: 1.2, WarmupOps: 512, Ops: 1024, Workers: 8,
		StabilizeMS: 50, FixFingersMS: 16, FixFingersBatch: 8, AuxEveryMS: 200,
		BootMS: 900, ConvergeMS: 80,
		MeanHops: 1.6, P50Hops: 1, P99Hops: 4,
		MeanLatencyUS: 300, P50LatencyUS: 200, P99LatencyUS: 900,
		OpsPerSec: 5000, MsgsPerSec: 20000, BytesPerSec: 800000,
		AuxHitRate: 0.35, MaintMsgsPerSecPerNode: 30,
		MaintBytesPerSecPerNode: 1200, WallMS: 9000,
		StreamObjectBytes: 1 << 20, StreamChunkSize: 4096, StreamChunks: 257,
		StreamPrefetch: 2, StreamReads: 3, StreamTTFBUS: 2200, StreamMBPS: 35,
		ReplicateEveryMS: 2000, StoreShards: 16,
		ReplBytesPerSec: 4000, ReplFullPushBytesPerSec: 26000, ReplReduction: 6.5,
		HotReads: 512, HotDegradedReads: 64,
		HotOwnerOpsPerSec: 3000, HotAnyOpsPerSec: 3100, HotDegradedOpsPerSec: 150,
		ReplicaHitRate: 0.8,
		WANRegions: 3, WANScale: 0.12, WANSources: 32, WANHotKeys: 16,
		WANOps: 256, WANQoSBoundMS: 12.5,
		WANHopP50US: 9000, WANHopP99US: 42000,
		WANQoSP50US: 8000, WANQoSP99US: 30000,
		WANQoSSelects: 64, WANQoSInfeasible: 0, WANFailures: 0,
		WANChurnMeanLifeMS: 900000, WANChurnRestarts: 5,
		WANChurnP50US: 9500, WANChurnP99US: 48000, WANChurnFailures: 2,
		WANFlashReads: 128, WANFlashP99US: 52000, WANFlashAdaptedP99US: 18000,
	}
	if proto == "kademlia" {
		r.BucketSize = 8
	}
	return r
}

// A freshly assembled document with sane runs must round-trip through
// Write and Load, and Load must enforce the schema.
func TestFileRoundTrip(t *testing.T) {
	f := NewFile([]Result{goodRun("chord"), goodRun("pastry"), goodRun("kademlia")})
	if err := f.Validate(); err != nil {
		t.Fatalf("good document fails validation: %v", err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_live.json")
	if err := f.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Runs) != 3 || got.Runs[0].MeanHops != 1.6 {
		t.Fatalf("round trip mangled runs: %+v", got.Runs)
	}
}

// Load must reject documents CI should never accept: wrong schema tag,
// unknown fields (stale field renames), and semantically dead values.
func TestFileValidateRejects(t *testing.T) {
	cases := map[string]struct {
		mutate func(*File)
		want   string
	}{
		"wrong schema": {
			mutate: func(f *File) { f.Schema = "peercache-livebench/v0" },
			want:   "schema",
		},
		"bad timestamp": {
			mutate: func(f *File) { f.GeneratedAt = "yesterday" },
			want:   "generated_at",
		},
		"no runs": {
			mutate: func(f *File) { f.Runs = nil },
			want:   "no runs",
		},
		"unknown proto": {
			mutate: func(f *File) { f.Runs[0].Proto = "gnutella" },
			want:   "unknown proto",
		},
		"duplicate proto": {
			mutate: func(f *File) { f.Runs = append(f.Runs, goodRun("chord")) },
			want:   "duplicate proto",
		},
		"zeroed hops": {
			mutate: func(f *File) { f.Runs[0].MeanHops = 0 },
			want:   "mean_hops",
		},
		"inverted percentiles": {
			mutate: func(f *File) { f.Runs[0].P50Hops = 9 },
			want:   "p99_hops below p50_hops",
		},
		"impossible hit rate": {
			mutate: func(f *File) { f.Runs[0].AuxHitRate = 1.5 },
			want:   "aux_hit_rate",
		},
		"missing stream ttfb": {
			mutate: func(f *File) { f.Runs[0].StreamTTFBUS = 0 },
			want:   "stream_ttfb_us",
		},
		"missing stream throughput": {
			mutate: func(f *File) { f.Runs[0].StreamMBPS = 0 },
			want:   "stream_mbps",
		},
		"stranded keys survive in v2": {
			mutate: func(f *File) { f.Runs[0].StrandedKeys = 3 },
			want:   "stranded_keys",
		},
		"missing repl bytes": {
			mutate: func(f *File) { f.Runs[0].ReplBytesPerSec = 0 },
			want:   "repl_bytes_per_sec",
		},
		"missing hot throughput": {
			mutate: func(f *File) { f.Runs[0].HotAnyOpsPerSec = 0 },
			want:   "hot_any_ops_per_sec",
		},
		"replica path never engaged": {
			mutate: func(f *File) { f.Runs[0].ReplicaHitRate = 0 },
			want:   "replica_hit_rate",
		},
		"full-scale run below the reduction floor": {
			mutate: func(f *File) {
				f.Runs[0].Nodes = 1024
				f.Runs[0].ReplReduction = 3
			},
			want: "repl_reduction",
		},
		"missing wan hop p99": {
			mutate: func(f *File) { f.Runs[0].WANHopP99US = 0 },
			want:   "wan_hop_p99_us",
		},
		"inverted wan qos percentiles": {
			mutate: func(f *File) { f.Runs[0].WANQoSP50US = f.Runs[0].WANQoSP99US * 2 },
			want:   "wan_qos_p99_us below wan_qos_p50_us",
		},
		"qos selector never engaged": {
			mutate: func(f *File) { f.Runs[0].WANQoSSelects = 0 },
			want:   "wan_qos_selects",
		},
		"full-scale churn arm never churned": {
			mutate: func(f *File) {
				f.Runs[0].Nodes = 1024
				f.Runs[0].WANChurnRestarts = 0
			},
			want: "wan_churn_restarts",
		},
		"full-scale qos loses to hop-greedy": {
			mutate: func(f *File) {
				f.Runs[0].Nodes = 1024
				f.Runs[0].WANQoSP99US = f.Runs[0].WANHopP99US + 1
			},
			want: "wan_qos_p99_us below wan_hop_p99_us",
		},
	}
	for name, tc := range cases {
		f := NewFile([]Result{goodRun("chord")})
		tc.mutate(f)
		err := f.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want mention of %q", name, err, tc.want)
		}
	}

	// Unknown fields mark a schema drift and must fail Load.
	path := filepath.Join(t.TempDir(), "drift.json")
	f := NewFile([]Result{goodRun("chord")})
	if err := f.Write(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	drifted := strings.Replace(string(b), `"mean_hops"`, `"avg_hops"`, 1)
	if err := os.WriteFile(path, []byte(drifted), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("Load accepted a document with an unknown field")
	}
}

// stripRepl zeroes every v3 replication field, as a pre-digest
// document would carry.
func stripRepl(r *Result) {
	r.ReplicateEveryMS, r.StoreShards = 0, 0
	r.ReplBytesPerSec, r.ReplFullPushBytesPerSec, r.ReplReduction = 0, 0, 0
	r.ReplFallbacks = 0
	r.HotReads, r.HotDegradedReads, r.HotFailures = 0, 0, 0
	r.HotOwnerOpsPerSec, r.HotAnyOpsPerSec, r.HotDegradedOpsPerSec = 0, 0, 0
	r.ReplicaHitRate = 0
}

// stripWAN zeroes every v4 WAN-phase field, as a pre-latency-plane
// document would carry.
func stripWAN(r *Result) {
	r.WANRegions, r.WANSources, r.WANHotKeys, r.WANOps = 0, 0, 0, 0
	r.WANScale, r.WANQoSBoundMS = 0, 0
	r.WANHopP50US, r.WANHopP99US, r.WANQoSP50US, r.WANQoSP99US = 0, 0, 0, 0
	r.WANQoSSelects, r.WANQoSInfeasible = 0, 0
	r.WANFailures, r.WANChurnRestarts, r.WANChurnFailures = 0, 0, 0
	r.WANChurnMeanLifeMS = 0
	r.WANChurnP50US, r.WANChurnP99US = 0, 0
	r.WANFlashReads = 0
	r.WANFlashP99US, r.WANFlashAdaptedP99US = 0, 0
}

// A legacy v1 document — no stream fields, no batch knob, stranded
// count recorded rather than gated — must still load and validate.
func TestFileAcceptsV1(t *testing.T) {
	f := NewFile([]Result{goodRun("chord")})
	f.Schema = SchemaV1
	r := &f.Runs[0]
	r.FixFingersBatch = 0
	r.StreamObjectBytes, r.StreamChunkSize, r.StreamChunks = 0, 0, 0
	r.StreamPrefetch, r.StreamReads = 0, 0
	r.StreamTTFBUS, r.StreamMBPS = 0, 0
	r.StrandedKeys = 2
	stripRepl(r)
	stripWAN(r)
	if err := f.Validate(); err != nil {
		t.Fatalf("v1 document rejected: %v", err)
	}
	path := filepath.Join(t.TempDir(), "v1.json")
	if err := f.Write(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err != nil {
		t.Fatalf("v1 document fails Load: %v", err)
	}
}

// A legacy v2 document — streaming fields present, replication fields
// absent — must still load and validate, with the stranded gate (a v2
// constraint) enforced and the replication fields not.
func TestFileAcceptsV2(t *testing.T) {
	f := NewFile([]Result{goodRun("chord")})
	f.Schema = SchemaV2
	stripRepl(&f.Runs[0])
	stripWAN(&f.Runs[0])
	if err := f.Validate(); err != nil {
		t.Fatalf("v2 document rejected: %v", err)
	}
	f.Runs[0].StrandedKeys = 1
	if err := f.Validate(); err == nil {
		t.Fatal("v2 document with stranded keys accepted")
	}
	f.Runs[0].StrandedKeys = 0
	path := filepath.Join(t.TempDir(), "v2.json")
	if err := f.Write(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err != nil {
		t.Fatalf("v2 document fails Load: %v", err)
	}
}

// A legacy v3 document — replication and hot-key fields present, WAN
// fields absent — must still load and validate, with the v3 gates (the
// full-scale reduction floor) enforced and the WAN fields not.
func TestFileAcceptsV3(t *testing.T) {
	f := NewFile([]Result{goodRun("chord")})
	f.Schema = SchemaV3
	stripWAN(&f.Runs[0])
	if err := f.Validate(); err != nil {
		t.Fatalf("v3 document rejected: %v", err)
	}
	f.Runs[0].Nodes = 1024
	f.Runs[0].ReplReduction = 3
	if err := f.Validate(); err == nil {
		t.Fatal("v3 document below the full-scale reduction floor accepted")
	}
	f.Runs[0].Nodes = 128
	f.Runs[0].ReplReduction = 6.5
	path := filepath.Join(t.TempDir(), "v3.json")
	if err := f.Write(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err != nil {
		t.Fatalf("v3 document fails Load: %v", err)
	}
}

// The cross-run full-scale gate: a v4 document whose full-scale runs do
// not show QoS beating hop-greedy on at least two geometries fails, and
// a document with a single full-scale run needs only that one.
func TestFileQoSBeatsHopGate(t *testing.T) {
	full := func(proto string) Result {
		r := goodRun(proto)
		r.Nodes = 1024
		return r
	}
	f := NewFile([]Result{full("chord"), full("pastry"), full("kademlia")})
	if err := f.Validate(); err != nil {
		t.Fatalf("three winning full-scale runs rejected: %v", err)
	}
	// One loss of three still passes; two losses fail.
	f.Runs[0].WANQoSP99US = f.Runs[0].WANHopP99US * 1.5
	if err := f.Validate(); err != nil {
		t.Fatalf("two of three wins rejected: %v", err)
	}
	f.Runs[1].WANQoSP99US = f.Runs[1].WANHopP99US * 1.5
	if err := f.Validate(); err == nil {
		t.Fatal("one of three wins accepted")
	}
	// A single full-scale run must itself win.
	solo := NewFile([]Result{full("chord")})
	solo.Runs[0].WANQoSP99US = solo.Runs[0].WANHopP99US * 1.5
	if err := solo.Validate(); err == nil {
		t.Fatal("sole losing full-scale run accepted")
	}
	// Small-n documents are exempt: quick CI runs are not where the
	// headline claim is judged.
	quick := NewFile([]Result{goodRun("chord")})
	quick.Runs[0].WANQoSP99US = quick.Runs[0].WANHopP99US * 1.5
	if err := quick.Validate(); err != nil {
		t.Fatalf("small-n run gated on the full-scale claim: %v", err)
	}
}

// Compare gates mean hops per geometry additively, stream TTFB
// multiplicatively, and the anti-entropy reduction ratio against a
// shrink factor; tolerates small regressions, skips gates when a side
// predates the relevant phase, and ignores geometries missing from
// either side.
func TestCompare(t *testing.T) {
	baseline := NewFile([]Result{goodRun("chord"), goodRun("pastry")})

	ok := goodRun("chord")
	ok.MeanHops = baseline.Runs[0].MeanHops + 0.5
	if err := Compare(baseline, []Result{ok}, 0.75, 3, 2, 3); err != nil {
		t.Fatalf("within-tolerance run rejected: %v", err)
	}

	bad := goodRun("chord")
	bad.MeanHops = baseline.Runs[0].MeanHops + 1.0
	if err := Compare(baseline, []Result{bad}, 0.75, 3, 2, 3); err == nil {
		t.Fatal("regressed run accepted")
	}

	novel := goodRun("kademlia") // not in baseline: ignored
	novel.MeanHops = 99
	if err := Compare(baseline, []Result{novel}, 0.75, 3, 2, 3); err != nil {
		t.Fatalf("novel geometry gated against nothing: %v", err)
	}

	slow := goodRun("chord")
	slow.StreamTTFBUS = baseline.Runs[0].StreamTTFBUS * 2
	if err := Compare(baseline, []Result{slow}, 0.75, 3, 2, 3); err != nil {
		t.Fatalf("within-tolerance ttfb rejected: %v", err)
	}
	slow.StreamTTFBUS = baseline.Runs[0].StreamTTFBUS * 4
	if err := Compare(baseline, []Result{slow}, 0.75, 3, 2, 3); err == nil {
		t.Fatal("cliff-regressed ttfb accepted")
	}

	// A v1 baseline carries no stream numbers: the TTFB gate must not
	// fire against a zero.
	v1 := NewFile([]Result{goodRun("chord")})
	v1.Runs[0].StreamTTFBUS = 0
	if err := Compare(v1, []Result{slow}, 0.75, 3, 2, 3); err != nil {
		t.Fatalf("ttfb gated against a streamless baseline: %v", err)
	}

	// The anti-entropy gate: a reduction within the shrink factor of
	// the baseline passes, below it fails, and a baseline without
	// replication data (v2 and earlier) disables the gate.
	lessEff := goodRun("chord")
	lessEff.ReplReduction = baseline.Runs[0].ReplReduction / 1.5
	if err := Compare(baseline, []Result{lessEff}, 0.75, 3, 2, 3); err != nil {
		t.Fatalf("within-shrink-factor reduction rejected: %v", err)
	}
	lessEff.ReplReduction = baseline.Runs[0].ReplReduction / 4
	if err := Compare(baseline, []Result{lessEff}, 0.75, 3, 2, 3); err == nil {
		t.Fatal("collapsed anti-entropy reduction accepted")
	}
	if err := Compare(baseline, []Result{lessEff}, 0.75, 3, 0, 3); err != nil {
		t.Fatalf("disabled repl gate still fired: %v", err)
	}
	v2 := NewFile([]Result{goodRun("chord")})
	stripRepl(&v2.Runs[0])
	if err := Compare(v2, []Result{lessEff}, 0.75, 3, 2, 3); err != nil {
		t.Fatalf("repl gated against a pre-digest baseline: %v", err)
	}
}
