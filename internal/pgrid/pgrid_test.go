package pgrid

import (
	"math/rand"
	"testing"

	"peercache/internal/core"
	"peercache/internal/id"
	"peercache/internal/randx"
)

func buildGrid(t *testing.T, bits uint, n int, seed int64) *Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	raw := randx.UniqueIDs(rng, n, uint64(1)<<bits)
	ids := make([]id.ID, n)
	for i, x := range raw {
		ids[i] = id.ID(x)
	}
	nw, err := Build(Config{Space: id.NewSpace(bits), Seed: seed}, ids)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestBuildValidation(t *testing.T) {
	space := id.NewSpace(8)
	if _, err := Build(Config{Space: space}, []id.ID{1}); err == nil {
		t.Error("single peer accepted")
	}
	if _, err := Build(Config{Space: space}, []id.ID{1, 1}); err == nil {
		t.Error("duplicate peers accepted")
	}
	if _, err := Build(Config{Space: space}, []id.ID{1, 300}); err == nil {
		t.Error("out-of-space peer accepted")
	}
}

// Paths must be minimal distinguishing prefixes: unique across peers,
// and one bit longer than the longest LCP with any other peer.
func TestPathsAreMinimalDistinguishingPrefixes(t *testing.T) {
	nw := buildGrid(t, 16, 200, 3)
	ids := nw.IDs()
	space := nw.Space()
	for _, x := range ids {
		n := nw.Node(x)
		maxL := uint(0)
		for _, y := range ids {
			if y == x {
				continue
			}
			if l := space.CommonPrefixLen(x, y); l > maxL {
				maxL = l
			}
		}
		want := maxL + 1
		if want > space.Bits() {
			want = space.Bits()
		}
		if n.PathLen() != want {
			t.Fatalf("peer %d path length %d, want %d", x, n.PathLen(), want)
		}
	}
}

// Every reference at level l must share exactly l bits with the peer.
func TestReferenceLevels(t *testing.T) {
	nw := buildGrid(t, 16, 200, 4)
	space := nw.Space()
	for _, x := range nw.IDs() {
		n := nw.Node(x)
		for l, level := range n.refs {
			for _, w := range level {
				if got := space.CommonPrefixLen(x, w); got != uint(l) {
					t.Fatalf("peer %d level-%d ref %d shares %d bits", x, l, w, got)
				}
			}
		}
	}
}

func TestOwnerIsMaxPrefixPeer(t *testing.T) {
	nw := buildGrid(t, 16, 150, 5)
	space := nw.Space()
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 2000; i++ {
		key := id.ID(rng.Intn(1 << 16))
		owner := nw.Owner(key)
		ol := space.CommonPrefixLen(owner, key)
		for _, y := range nw.IDs() {
			if space.CommonPrefixLen(y, key) > ol {
				t.Fatalf("owner %d (lcp %d) not maximal: peer %d is deeper", owner, ol, y)
			}
		}
	}
}

func TestRouteReachesOwner(t *testing.T) {
	nw := buildGrid(t, 16, 300, 7)
	rng := rand.New(rand.NewSource(8))
	ids := nw.IDs()
	fails := 0
	for i := 0; i < 3000; i++ {
		from := ids[rng.Intn(len(ids))]
		key := id.ID(rng.Intn(1 << 16))
		res, err := nw.Route(from, key)
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK {
			fails++
			continue
		}
		if res.Dest != nw.Owner(key) {
			t.Fatalf("Dest %d, want %d", res.Dest, nw.Owner(key))
		}
		if res.Hops > 32 {
			t.Errorf("lookup took %d hops", res.Hops)
		}
	}
	if fails > 0 {
		t.Fatalf("%d of 3000 lookups failed", fails)
	}
}

func TestSetAuxValidation(t *testing.T) {
	nw := buildGrid(t, 16, 50, 10)
	x := nw.IDs()[0]
	if err := nw.SetAux(x, []id.ID{x}); err == nil {
		t.Error("self-aux accepted")
	}
	if err := nw.SetAux(12345, nil); err == nil {
		t.Error("unknown peer accepted")
	}
}

// The paper's portability claim for trie-structured systems: the Pastry
// selection algorithm run against a P-Grid peer's references cuts its
// measured lookups.
func TestPastrySelectionPortsToPGrid(t *testing.T) {
	nw := buildGrid(t, 20, 400, 11)
	rng := rand.New(rand.NewSource(12))
	ids := nw.IDs()
	src := ids[0]

	alias := randx.NewAlias(randx.ZipfWeights(len(ids)-1, 1.2))
	perm := rng.Perm(len(ids) - 1)
	mix := make([]id.ID, 4000)
	for i := range mix {
		mix[i] = ids[1+perm[alias.Sample(rng)]]
		nw.Node(src).Counter.Observe(mix[i])
	}
	measure := func() float64 {
		total := 0
		for _, dst := range mix {
			res, err := nw.Route(src, dst)
			if err != nil || !res.OK {
				t.Fatalf("lookup failed: %v %+v", err, res)
			}
			total += res.Hops
		}
		return float64(total) / float64(len(mix))
	}
	before := measure()

	var peers []core.Peer
	for _, e := range nw.Node(src).Counter.Snapshot() {
		peers = append(peers, core.Peer{ID: e.Peer, Freq: float64(e.Count)})
	}
	res, err := core.SelectPastryGreedy(nw.Space(), nw.Node(src).References(), peers, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.SetAux(src, res.Aux); err != nil {
		t.Fatal(err)
	}
	after := measure()
	if after >= before {
		t.Fatalf("selection did not help on P-Grid: %.3f -> %.3f", before, after)
	}
	if reduction := 100 * (before - after) / before; reduction < 20 {
		t.Errorf("reduction only %.1f%% (before %.3f after %.3f)", reduction, before, after)
	}
}

func TestDeterministicBuild(t *testing.T) {
	a := buildGrid(t, 16, 100, 13)
	b := buildGrid(t, 16, 100, 13)
	for _, x := range a.IDs() {
		na, nb := a.Node(x), b.Node(x)
		if na.PathLen() != nb.PathLen() {
			t.Fatal("path lengths differ across identical builds")
		}
		ra, rb := na.References(), nb.References()
		if len(ra) != len(rb) {
			t.Fatal("reference sets differ across identical builds")
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatal("references differ across identical builds")
			}
		}
	}
}
