// Package pgrid implements a P-Grid overlay (Aberer et al.), the
// trie-structured system the paper lists alongside Tapestry as a direct
// target for its Pastry techniques (Section I: "the techniques presented
// for Pastry can be directly applied to Tapestry and PGrid").
//
// Each peer is responsible for a binary key-space path (its id prefix);
// for every level l of its path it keeps references to peers on the
// other side of that split — exactly the structure of a Pastry routing
// table row. Routing resolves one bit per hop, so the prefix distance
// b − LCP is the hop metric and the paper's Pastry selection algorithm
// applies unchanged.
package pgrid

import (
	"fmt"
	"math/rand"
	"sort"

	"peercache/internal/freq"
	"peercache/internal/id"
)

// Config parameterizes a P-Grid.
type Config struct {
	// Space is the identifier space; peer paths are id prefixes.
	Space id.Space
	// RefsPerLevel is how many references a peer keeps per level
	// (default 2; P-Grid keeps several for robustness).
	RefsPerLevel int
	// MaxHops caps a lookup (default 4·b).
	MaxHops int
	// Seed drives reference sampling.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.RefsPerLevel == 0 {
		c.RefsPerLevel = 2
	}
	if c.MaxHops == 0 {
		c.MaxHops = 4 * int(c.Space.Bits())
	}
	return c
}

// Node is one P-Grid peer.
type Node struct {
	id id.ID
	// pathLen is the length of the peer's responsibility path: the
	// shortest prefix of its id distinguishing it from every other
	// peer (the trie depth at which it sits alone).
	pathLen uint
	// refs[l] are peers whose paths share exactly l bits with this
	// peer (the "other side" references at level l).
	refs [][]id.ID
	aux  []id.ID

	// Counter accumulates lookup destinations.
	Counter *freq.Exact
}

// ID returns the peer id.
func (n *Node) ID() id.ID { return n.id }

// PathLen returns the peer's responsibility-path length.
func (n *Node) PathLen() uint { return n.pathLen }

// References returns the deduplicated reference set — the core
// neighbors for auxiliary selection.
func (n *Node) References() []id.ID {
	seen := make(map[id.ID]bool)
	var out []id.ID
	for _, level := range n.refs {
		for _, w := range level {
			if !seen[w] {
				seen[w] = true
				out = append(out, w)
			}
		}
	}
	return out
}

// Aux returns a copy of the auxiliary set.
func (n *Node) Aux() []id.ID { return append([]id.ID(nil), n.aux...) }

// Network is a built P-Grid over a fixed peer population.
type Network struct {
	cfg    Config
	sorted []id.ID
	nodes  map[id.ID]*Node
}

// Build constructs the grid: each peer's path is its minimal
// distinguishing prefix, and each level's references are sampled from
// the peers on the other side of the corresponding trie split.
func Build(cfg Config, ids []id.ID) (*Network, error) {
	cfg = cfg.withDefaults()
	if len(ids) < 2 {
		return nil, fmt.Errorf("pgrid: need at least 2 peers, have %d", len(ids))
	}
	nw := &Network{cfg: cfg, nodes: make(map[id.ID]*Node, len(ids))}
	nw.sorted = append([]id.ID(nil), ids...)
	sort.Slice(nw.sorted, func(i, j int) bool { return nw.sorted[i] < nw.sorted[j] })
	space := cfg.Space
	for i, x := range nw.sorted {
		if uint64(x) >= space.Size() {
			return nil, fmt.Errorf("pgrid: peer %d outside %d-bit space", x, space.Bits())
		}
		if i > 0 && nw.sorted[i-1] == x {
			return nil, fmt.Errorf("pgrid: duplicate peer %d", x)
		}
	}
	// Path length: 1 + longest LCP with any other peer (sorted
	// neighbors suffice), capped at b.
	for i, x := range nw.sorted {
		longest := uint(0)
		if i > 0 {
			if l := space.CommonPrefixLen(x, nw.sorted[i-1]); l > longest {
				longest = l
			}
		}
		if i+1 < len(nw.sorted) {
			if l := space.CommonPrefixLen(x, nw.sorted[i+1]); l > longest {
				longest = l
			}
		}
		pathLen := longest + 1
		if pathLen > space.Bits() {
			pathLen = space.Bits()
		}
		nw.nodes[x] = &Node{id: x, pathLen: pathLen, Counter: freq.NewExact()}
	}
	// References per level: peers sharing exactly l bits form a
	// contiguous id range; sample RefsPerLevel of them.
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, x := range nw.sorted {
		n := nw.nodes[x]
		n.refs = make([][]id.ID, n.pathLen)
		for l := uint(0); l < n.pathLen; l++ {
			lo, hi := prefixRange(space, x, l)
			cands := nw.rangePeers(lo, hi)
			if len(cands) == 0 {
				continue
			}
			picks := cfg.RefsPerLevel
			if picks > len(cands) {
				picks = len(cands)
			}
			for _, j := range rng.Perm(len(cands))[:picks] {
				n.refs[l] = append(n.refs[l], cands[j])
			}
			sort.Slice(n.refs[l], func(a, b int) bool { return n.refs[l][a] < n.refs[l][b] })
		}
	}
	return nw, nil
}

// prefixRange returns the id range of peers sharing exactly l bits with
// x (x's first l bits, bit l flipped).
func prefixRange(space id.Space, x id.ID, l uint) (uint64, uint64) {
	b := space.Bits()
	flipped := space.SetBit(x, l, 1-space.Bit(x, l))
	shift := b - l - 1
	lo := uint64(flipped) >> shift << shift
	return lo, lo + (uint64(1)<<shift - 1)
}

// rangePeers returns the peers with ids in [lo, hi].
func (nw *Network) rangePeers(lo, hi uint64) []id.ID {
	i := sort.Search(len(nw.sorted), func(i int) bool { return uint64(nw.sorted[i]) >= lo })
	var out []id.ID
	for ; i < len(nw.sorted) && uint64(nw.sorted[i]) <= hi; i++ {
		out = append(out, nw.sorted[i])
	}
	return out
}

// Space returns the identifier space.
func (nw *Network) Space() id.Space { return nw.cfg.Space }

// IDs returns the sorted peer ids (do not modify).
func (nw *Network) IDs() []id.ID { return nw.sorted }

// Node returns the peer with the given id, or nil.
func (nw *Network) Node(x id.ID) *Node { return nw.nodes[x] }

// Owner returns the peer responsible for key: the peer with the longest
// common prefix with the key (whose path covers it, when one does), ties
// broken toward the numerically closest on the circle and then toward
// the predecessor — deterministic, and always one of the key's two
// sorted neighbors, since LCP against a sorted set is maximized there.
func (nw *Network) Owner(key id.ID) id.ID {
	space := nw.cfg.Space
	m := len(nw.sorted)
	i := sort.Search(m, func(i int) bool { return nw.sorted[i] > key })
	succ := nw.sorted[i%m]
	pred := nw.sorted[(i+m-1)%m]
	lp, ls := space.CommonPrefixLen(pred, key), space.CommonPrefixLen(succ, key)
	switch {
	case lp > ls:
		return pred
	case ls > lp:
		return succ
	}
	// Equal prefixes: numerically closest, predecessor on a tie.
	dp, ds := circDist(space, pred, key), circDist(space, succ, key)
	if ds < dp {
		return succ
	}
	return pred
}

// circDist is the circular numeric distance between x and key.
func circDist(space id.Space, x, key id.ID) uint64 {
	g1, g2 := space.Gap(x, key), space.Gap(key, x)
	if g1 < g2 {
		return g1
	}
	return g2
}

// SetAux installs peer x's auxiliary neighbor set.
func (nw *Network) SetAux(x id.ID, aux []id.ID) error {
	n := nw.nodes[x]
	if n == nil {
		return fmt.Errorf("pgrid: SetAux on unknown peer %d", x)
	}
	for _, a := range aux {
		if a == x {
			return fmt.Errorf("pgrid: aux of peer %d contains itself", x)
		}
	}
	n.aux = append(n.aux[:0:0], aux...)
	return nil
}

// RouteResult describes one lookup.
type RouteResult struct {
	Dest id.ID
	Hops int
	OK   bool
}

// Route performs a lookup: at each step forward to the known peer —
// reference or auxiliary — sharing the longest prefix with the key,
// provided it extends the current prefix. One bit (at least) resolves
// per hop.
func (nw *Network) Route(from id.ID, key id.ID) (RouteResult, error) {
	src := nw.nodes[from]
	if src == nil {
		return RouteResult{}, fmt.Errorf("pgrid: route from unknown peer %d", from)
	}
	dest := nw.Owner(key)
	res := RouteResult{Dest: dest}
	space := nw.cfg.Space
	cur := src
	for cur.id != dest {
		if res.Hops >= nw.cfg.MaxHops {
			return res, nil
		}
		l := space.CommonPrefixLen(cur.id, key)
		// Prefer the deepest prefix extension; fall back to numeric
		// progress among equal-prefix peers (the final subtree walk).
		var best id.ID
		bestL := l
		bestDist := circDist(space, cur.id, key)
		found := false
		consider := func(w id.ID) {
			wl := space.CommonPrefixLen(w, key)
			wd := circDist(space, w, key)
			if wl > bestL || (wl == bestL && wd < bestDist) {
				best, bestL, bestDist, found = w, wl, wd, true
			}
		}
		for _, level := range cur.refs {
			for _, w := range level {
				consider(w)
			}
		}
		for _, w := range cur.aux {
			consider(w)
		}
		if !found {
			return res, nil // dead end
		}
		cur = nw.nodes[best]
		res.Hops++
	}
	res.OK = true
	return res, nil
}
