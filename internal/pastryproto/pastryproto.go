// Package pastryproto is a message-level Pastry implementation of the
// protocol machinery the paper's evaluation assumes is in place: node
// arrival by routing a JOIN toward the new id (each node on the path
// contributes its routing table, the numerically closest node its leaf
// set, and the joiner then announces itself to everyone it learned of),
// plus periodic leaf-set and routing-table repair by probing.
//
// Like internal/chordproto for Chord, the package validates the oracle
// abstraction used by the internal/pastry simulator: tests show the
// protocol's converged leaf sets equal the oracle's exactly, every
// routing-table slot it fills is correctly placed, and its slot coverage
// matches the oracle's.
package pastryproto

import (
	"fmt"
	"math/rand"
	"sort"

	"peercache/internal/id"
	"peercache/internal/sim"
)

// Config parameterizes a protocol network.
type Config struct {
	// Space is the identifier space.
	Space id.Space
	// LeafHalf is the number of leaf-set entries per side (default 4).
	LeafHalf int
	// RepairEvery is the period of the probe/repair round (default 30 s).
	RepairEvery float64
	// MinDelay and MaxDelay bound one-way message latency (defaults
	// 10 ms and 100 ms).
	MinDelay, MaxDelay float64
	// Seed drives latency sampling and repair phases.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.LeafHalf == 0 {
		c.LeafHalf = 4
	}
	if c.RepairEvery == 0 {
		c.RepairEvery = 30
	}
	if c.MinDelay == 0 {
		c.MinDelay = 0.01
	}
	if c.MaxDelay == 0 {
		c.MaxDelay = 0.1
	}
	return c
}

// Node is one protocol participant; all state arrives via messages.
type Node struct {
	id       id.ID
	alive    bool
	leafHalf int

	// table[l] is the row-l slot for the opposite bit at position l
	// (binary digits: one slot per row).
	table    []id.ID
	hasEntry []bool

	// leafCW/leafCCW are the clockwise and counter-clockwise leaf-set
	// sides, each sorted nearest-first, at most LeafHalf entries.
	leafCW, leafCCW []id.ID
}

// ID returns the node id.
func (n *Node) ID() id.ID { return n.id }

// Alive reports whether the node is up.
func (n *Node) Alive() bool { return n.alive }

// Leaves returns the node's full leaf set, clockwise side first.
func (n *Node) Leaves() []id.ID {
	out := append([]id.ID(nil), n.leafCW...)
	return append(out, n.leafCCW...)
}

// TableEntries returns the populated routing-table entries by row.
func (n *Node) TableEntries() map[int]id.ID {
	out := make(map[int]id.ID)
	for l, ok := range n.hasEntry {
		if ok {
			out[l] = n.table[l]
		}
	}
	return out
}

// Stats counts protocol traffic.
type Stats struct {
	Messages uint64
	Timeouts uint64
	Joins    uint64
}

// Network is the protocol simulation.
type Network struct {
	cfg   Config
	eng   *sim.Engine
	rng   *rand.Rand
	nodes map[id.ID]*Node
	stats Stats
}

// New returns an empty protocol network on the given engine.
func New(cfg Config, eng *sim.Engine, rng *rand.Rand) *Network {
	return &Network{cfg: cfg.withDefaults(), eng: eng, rng: rng, nodes: make(map[id.ID]*Node)}
}

// Stats returns cumulative traffic counters.
func (nw *Network) Stats() Stats { return nw.stats }

// Node returns the node with the given id, or nil.
func (nw *Network) Node(x id.ID) *Node { return nw.nodes[x] }

func (nw *Network) delay() float64 {
	return nw.cfg.MinDelay + nw.rng.Float64()*(nw.cfg.MaxDelay-nw.cfg.MinDelay)
}

// rpc models a request/response exchange; onDead fires if the callee is
// down when the request arrives.
func (nw *Network) rpc(callee id.ID, handle func(*Node), onDead func()) {
	nw.eng.After(nw.delay(), func() {
		c := nw.nodes[callee]
		if c == nil || !c.alive {
			nw.stats.Timeouts++
			if onDead != nil {
				nw.eng.After(nw.delay(), onDead)
			}
			return
		}
		nw.stats.Messages += 2
		nw.eng.After(nw.delay(), func() { handle(c) })
	})
}

// Bootstrap creates the first node.
func (nw *Network) Bootstrap(x id.ID) (*Node, error) {
	if err := nw.checkNew(x); err != nil {
		return nil, err
	}
	n := nw.newNode(x)
	nw.scheduleRepair(n)
	return n, nil
}

func (nw *Network) checkNew(x id.ID) error {
	if uint64(x) >= nw.cfg.Space.Size() {
		return fmt.Errorf("pastryproto: node %d outside %d-bit space", x, nw.cfg.Space.Bits())
	}
	if _, ok := nw.nodes[x]; ok {
		return fmt.Errorf("pastryproto: duplicate node %d", x)
	}
	return nil
}

func (nw *Network) newNode(x id.ID) *Node {
	b := nw.cfg.Space.Bits()
	n := &Node{
		id:       x,
		alive:    true,
		leafHalf: nw.cfg.LeafHalf,
		table:    make([]id.ID, b),
		hasEntry: make([]bool, b),
	}
	nw.nodes[x] = n
	return n
}

// Crash kills a node silently.
func (nw *Network) Crash(x id.ID) error {
	n := nw.nodes[x]
	if n == nil || !n.alive {
		return fmt.Errorf("pastryproto: crash of absent or dead node %d", x)
	}
	n.alive = false
	return nil
}

// Join routes a JOIN for x through bootstrap: every node on the path
// contributes its routing table, the final node its leaf set; the joiner
// then announces itself to every node it learned about. done (optional)
// fires when the announcement fan-out has been sent.
func (nw *Network) Join(x, bootstrap id.ID, done func()) error {
	if err := nw.checkNew(x); err != nil {
		return err
	}
	if b := nw.nodes[bootstrap]; b == nil || !b.alive {
		return fmt.Errorf("pastryproto: bootstrap %d absent or dead", bootstrap)
	}
	n := nw.newNode(x)

	var walk func(cur id.ID, hops int)
	walk = func(cur id.ID, hops int) {
		nw.rpc(cur, func(c *Node) {
			// The path node contributes every entry it knows.
			for l, ok := range c.hasEntry {
				if ok {
					n.learn(nw.cfg.Space, c.table[l])
				}
			}
			n.learn(nw.cfg.Space, c.id)
			for _, w := range c.Leaves() {
				n.learn(nw.cfg.Space, w)
			}
			next, found := c.nextHop(nw.cfg.Space, x)
			if !found || hops > 4*int(nw.cfg.Space.Bits()) {
				// cur is the numerically closest node: finish the join
				// and announce.
				nw.stats.Joins++
				nw.scheduleRepair(n)
				nw.announce(n)
				if done != nil {
					done()
				}
				return
			}
			walk(next, hops+1)
		}, func() {
			// Path node died mid-join; retry from the bootstrap.
			nw.eng.After(1, func() {
				if n.alive {
					walk(bootstrap, 0)
				}
			})
		})
	}
	walk(bootstrap, 0)
	return nil
}

// announce tells every node the joiner knows about that it exists; they
// fold it into their own state.
func (nw *Network) announce(n *Node) {
	targets := make(map[id.ID]bool)
	for l, ok := range n.hasEntry {
		if ok {
			targets[n.table[l]] = true
		}
	}
	for _, w := range n.Leaves() {
		targets[w] = true
	}
	for w := range targets {
		nw.rpc(w, func(peer *Node) {
			peer.learn(nw.cfg.Space, n.id)
		}, nil)
	}
}

// learn folds a newly seen node into this node's routing state: the
// matching routing-table slot if empty, and the leaf set if it is among
// the LeafHalf nearest on its side.
func (n *Node) learn(space id.Space, w id.ID) {
	if w == n.id {
		return
	}
	l := space.CommonPrefixLen(n.id, w)
	if int(l) < len(n.table) && !n.hasEntry[l] {
		n.table[l] = w
		n.hasEntry[l] = true
	}
	n.leafCW = insertLeaf(space, n.leafCW, n.id, w, n.leafHalf, true)
	n.leafCCW = insertLeaf(space, n.leafCCW, n.id, w, n.leafHalf, false)
}

// insertLeaf maintains one leaf-set side: sorted nearest-first by
// clockwise (cw) or counter-clockwise gap, capped at half entries.
func insertLeaf(space id.Space, side []id.ID, self, w id.ID, half int, cw bool) []id.ID {
	gap := func(a id.ID) uint64 {
		if cw {
			return space.Gap(self, a)
		}
		return space.Gap(a, self)
	}
	for _, e := range side {
		if e == w {
			return side
		}
	}
	side = append(side, w)
	sort.Slice(side, func(i, j int) bool { return gap(side[i]) < gap(side[j]) })
	if len(side) > half {
		side = side[:half]
	}
	return side
}

// nextHop is the standard Pastry forwarding decision for target:
// leaf-set delivery when the key falls within the leaf arc, else the
// deepest prefix extension, else an equal-prefix numerically closer
// node; (0, false) when cur is the closest node it knows.
func (n *Node) nextHop(space id.Space, target id.ID) (id.ID, bool) {
	// Rule 1: leaf-set delivery. The leaf arc spans from the farthest
	// counter-clockwise leaf to the farthest clockwise leaf.
	if len(n.leafCW) > 0 || len(n.leafCCW) > 0 {
		ccw, cw := n.id, n.id
		if len(n.leafCCW) > 0 {
			ccw = n.leafCCW[len(n.leafCCW)-1]
		}
		if len(n.leafCW) > 0 {
			cw = n.leafCW[len(n.leafCW)-1]
		}
		if space.Gap(ccw, target) <= space.Gap(ccw, cw) {
			best := n.id
			for _, w := range n.Leaves() {
				if closer(space, w, best, target) {
					best = w
				}
			}
			if best != n.id {
				return best, true
			}
			return 0, false // cur is the numerically closest it knows
		}
	}
	// Rule 2: deepest strictly longer prefix.
	l := space.CommonPrefixLen(n.id, target)
	bestL := l
	var best id.ID
	found := false
	for row, ok := range n.hasEntry {
		if ok {
			if wl := space.CommonPrefixLen(n.table[row], target); wl > bestL {
				best, bestL, found = n.table[row], wl, true
			}
		}
	}
	for _, w := range n.Leaves() {
		if wl := space.CommonPrefixLen(w, target); wl > bestL {
			best, bestL, found = w, wl, true
		}
	}
	if found {
		return best, true
	}
	// Rule 3: equal prefix, numerically closer.
	best = n.id
	for _, w := range n.Leaves() {
		if space.CommonPrefixLen(w, target) != l {
			continue
		}
		if closer(space, w, best, target) {
			best, found = w, true
		}
	}
	if !found {
		return 0, false
	}
	return best, true
}

func circDist(space id.Space, x, key id.ID) uint64 {
	g1, g2 := space.Gap(x, key), space.Gap(key, x)
	if g1 < g2 {
		return g1
	}
	return g2
}

// closer reports whether a is strictly numerically closer to key than b,
// breaking equidistant ties toward the predecessor side — the same
// deterministic convention the oracle simulator uses for ownership.
func closer(space id.Space, a, b, key id.ID) bool {
	da, db := circDist(space, a, key), circDist(space, b, key)
	if da != db {
		return da < db
	}
	return space.Gap(a, key) < space.Gap(b, key)
}

// scheduleRepair starts the periodic probe/repair loop: leaf neighbors
// exchange leaf sets (dead entries drop out, better ones merge in) and
// dead table entries are cleared and re-filled from the leaves' tables.
func (nw *Network) scheduleRepair(n *Node) {
	nw.eng.After(nw.rng.Float64()*nw.cfg.RepairEvery, func() {
		nw.eng.Every(nw.cfg.RepairEvery, func() bool {
			if !n.alive {
				return false
			}
			nw.repair(n)
			return true
		})
		nw.repair(n)
	})
}

func (nw *Network) repair(n *Node) {
	space := nw.cfg.Space
	// Probe every leaf: survivors send their leaf sets and tables.
	// Entries gossiped back may themselves be stale, so candidates are
	// pinged before adoption — otherwise dead nodes keep circulating
	// between peers that drop and re-learn them.
	adopt := func(w id.ID) {
		if w == n.id || n.knows(w) {
			return
		}
		nw.rpc(w, func(*Node) {
			n.learn(space, w)
		}, nil)
	}
	for _, w := range n.Leaves() {
		w := w
		nw.rpc(w, func(peer *Node) {
			for _, v := range peer.Leaves() {
				adopt(v)
			}
			for l, ok := range peer.hasEntry {
				if ok {
					adopt(peer.table[l])
				}
			}
		}, func() {
			n.dropPeer(w)
		})
	}
	// Probe table entries; dead ones are cleared (the next repair or
	// announcement refills them).
	for l, ok := range n.hasEntry {
		if !ok {
			continue
		}
		l, w := l, n.table[l]
		nw.rpc(w, func(*Node) {}, func() {
			if n.hasEntry[l] && n.table[l] == w {
				n.hasEntry[l] = false
			}
			n.dropPeer(w)
		})
	}
}

// knows reports whether w already appears in the node's state.
func (n *Node) knows(w id.ID) bool {
	for _, e := range n.Leaves() {
		if e == w {
			return true
		}
	}
	for l, ok := range n.hasEntry {
		if ok && n.table[l] == w {
			return true
		}
	}
	return false
}

// dropPeer removes a dead peer from all local state.
func (n *Node) dropPeer(w id.ID) {
	filter := func(side []id.ID) []id.ID {
		out := side[:0]
		for _, e := range side {
			if e != w {
				out = append(out, e)
			}
		}
		return out
	}
	n.leafCW = filter(n.leafCW)
	n.leafCCW = filter(n.leafCCW)
	for l, ok := range n.hasEntry {
		if ok && n.table[l] == w {
			n.hasEntry[l] = false
		}
	}
}

// Route walks the protocol state synchronously (for tests and
// measurements): the usual Pastry forwarding over the tables and leaf
// sets the protocol built.
func (nw *Network) Route(from id.ID, key id.ID) (dest id.ID, hops int, ok bool, err error) {
	n := nw.nodes[from]
	if n == nil || !n.alive {
		return 0, 0, false, fmt.Errorf("pastryproto: route from absent or dead node %d", from)
	}
	space := nw.cfg.Space
	cur := n
	maxHops := 4 * int(space.Bits())
	for hops <= maxHops {
		next, found := cur.nextHop(space, key)
		if !found {
			return cur.id, hops, true, nil // cur is the closest it knows
		}
		peer := nw.nodes[next]
		if peer == nil || !peer.alive {
			return cur.id, hops, false, nil
		}
		cur = peer
		hops++
	}
	return cur.id, hops, false, nil
}
