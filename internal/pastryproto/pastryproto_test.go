package pastryproto

import (
	"math/rand"
	"testing"

	"peercache/internal/id"
	"peercache/internal/pastry"
	"peercache/internal/randx"
	"peercache/internal/sim"
)

// buildNet bootstraps one node, joins the rest at 5-second intervals
// through it, and runs the protocol for settle further seconds.
func buildNet(t *testing.T, bits uint, ids []uint64, settle float64) (*Network, *sim.Engine) {
	t.Helper()
	eng := sim.New()
	nw := New(Config{Space: id.NewSpace(bits), Seed: 1}, eng, rand.New(rand.NewSource(1)))
	if _, err := nw.Bootstrap(id.ID(ids[0])); err != nil {
		t.Fatal(err)
	}
	for i, x := range ids[1:] {
		x := x
		eng.At(float64(i)*5, func() {
			if err := nw.Join(id.ID(x), id.ID(ids[0]), nil); err != nil {
				t.Errorf("join %d: %v", x, err)
			}
		})
	}
	eng.RunUntil(float64(len(ids))*5 + settle)
	return nw, eng
}

// oracle builds the oracle Pastry simulator over the same ids for
// comparison (leaf half 4 matches the protocol default).
func oracle(t *testing.T, bits uint, ids []uint64) *pastry.Network {
	t.Helper()
	nw := pastry.New(pastry.Config{Space: id.NewSpace(bits), LeafSetSize: 8})
	for _, x := range ids {
		if _, err := nw.AddNode(id.ID(x), pastry.Coord{}); err != nil {
			t.Fatal(err)
		}
	}
	nw.StabilizeAll()
	return nw
}

// Converged leaf sets must equal the oracle's: the set of the 4 nearest
// live nodes on each side is unique, so this is an exact check.
func TestLeafSetsMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ids := randx.UniqueIDs(rng, 40, 1<<16)
	nw, _ := buildNet(t, 16, ids, 600)
	or := oracle(t, 16, ids)

	for _, x := range ids {
		got := map[id.ID]bool{}
		for _, w := range nw.Node(id.ID(x)).Leaves() {
			got[w] = true
		}
		want := map[id.ID]bool{}
		for _, w := range or.Node(id.ID(x)).Leaf() {
			want[w] = true
		}
		if len(got) != len(want) {
			t.Fatalf("node %d: protocol leaves %v, oracle %v", x, got, want)
		}
		for w := range want {
			if !got[w] {
				t.Fatalf("node %d missing leaf %d (has %v)", x, w, got)
			}
		}
	}
}

// Every populated routing-table slot must hold a correctly placed node
// (shares exactly `row` bits), and slot coverage must match the oracle:
// a row the oracle populates must be populated by the protocol too.
func TestTableSlotsValidAndCovered(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ids := randx.UniqueIDs(rng, 60, 1<<16)
	nw, _ := buildNet(t, 16, ids, 900)
	or := oracle(t, 16, ids)
	space := id.NewSpace(16)

	for _, x := range ids {
		n := nw.Node(id.ID(x))
		entries := n.TableEntries()
		for row, w := range entries {
			if got := space.CommonPrefixLen(id.ID(x), w); got != uint(row) {
				t.Fatalf("node %d row %d holds %d sharing %d bits", x, row, w, got)
			}
			if alive := nw.Node(w); alive == nil || !alive.Alive() {
				t.Fatalf("node %d row %d holds dead node %d", x, row, w)
			}
		}
		// Coverage: rows the oracle fills must be filled here.
		oracleRows := map[uint]bool{}
		for _, e := range or.Node(id.ID(x)).TableEntries() {
			oracleRows[space.CommonPrefixLen(id.ID(x), e)] = true
		}
		for row := range oracleRows {
			if _, ok := entries[int(row)]; !ok {
				t.Fatalf("node %d row %d empty but oracle fills it", x, row)
			}
		}
	}
}

// Routing over the protocol state must deliver every key to the same
// owner the oracle assigns.
func TestRoutingMatchesOracleOwnership(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ids := randx.UniqueIDs(rng, 50, 1<<16)
	nw, _ := buildNet(t, 16, ids, 900)
	or := oracle(t, 16, ids)

	for i := 0; i < 2000; i++ {
		from := id.ID(ids[rng.Intn(len(ids))])
		key := id.ID(rng.Intn(1 << 16))
		dest, hops, ok, err := nw.Route(from, key)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("protocol route failed: from=%d key=%d", from, key)
		}
		want, _ := or.Owner(key)
		if dest != want {
			t.Fatalf("protocol dest %d, oracle owner %d (key %d)", dest, want, key)
		}
		if hops > 20 {
			t.Errorf("route took %d hops", hops)
		}
	}
}

// Crashed nodes disappear from leaf sets and tables after repair rounds,
// and routing still reaches the right surviving owners.
func TestCrashRepair(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ids := randx.UniqueIDs(rng, 50, 1<<16)
	nw, eng := buildNet(t, 16, ids, 600)

	dead := map[id.ID]bool{}
	for i := 0; i < len(ids); i += 5 {
		if err := nw.Crash(id.ID(ids[i])); err != nil {
			t.Fatal(err)
		}
		dead[id.ID(ids[i])] = true
	}
	eng.RunUntil(eng.Now() + 600)

	var survivors []uint64
	for _, x := range ids {
		if !dead[id.ID(x)] {
			survivors = append(survivors, x)
		}
	}
	// No survivor references a dead node.
	for _, x := range survivors {
		n := nw.Node(id.ID(x))
		for _, w := range n.Leaves() {
			if dead[w] {
				t.Fatalf("node %d still lists dead leaf %d", x, w)
			}
		}
		for row, w := range n.TableEntries() {
			if dead[w] {
				t.Fatalf("node %d row %d still lists dead node %d", x, row, w)
			}
		}
	}
	// Routing among survivors matches the surviving oracle.
	or := oracle(t, 16, survivors)
	for i := 0; i < 500; i++ {
		from := id.ID(survivors[rng.Intn(len(survivors))])
		key := id.ID(rng.Intn(1 << 16))
		dest, _, ok, err := nw.Route(from, key)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := or.Owner(key)
		if !ok || dest != want {
			t.Fatalf("post-crash route: dest %d ok=%v, want %d", dest, ok, want)
		}
	}
	if nw.Stats().Timeouts == 0 {
		t.Error("expected timeout-driven failure detection")
	}
}

func TestValidationErrors(t *testing.T) {
	eng := sim.New()
	nw := New(Config{Space: id.NewSpace(8)}, eng, rand.New(rand.NewSource(1)))
	if _, err := nw.Bootstrap(999); err == nil {
		t.Error("out-of-space bootstrap accepted")
	}
	if _, err := nw.Bootstrap(5); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Bootstrap(5); err == nil {
		t.Error("duplicate bootstrap accepted")
	}
	if err := nw.Join(5, 5, nil); err == nil {
		t.Error("duplicate join accepted")
	}
	if err := nw.Join(7, 99, nil); err == nil {
		t.Error("join via absent bootstrap accepted")
	}
	if err := nw.Crash(99); err == nil {
		t.Error("crash of absent node accepted")
	}
	if _, _, _, err := nw.Route(99, 1); err == nil {
		t.Error("route from absent node accepted")
	}
}
