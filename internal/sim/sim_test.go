package sim

import (
	"testing"
)

func TestOrderingAndClock(t *testing.T) {
	e := New()
	var order []int
	e.At(5, func() { order = append(order, 2) })
	e.At(1, func() { order = append(order, 1) })
	e.At(9, func() { order = append(order, 3) })
	e.Run()
	if e.Now() != 9 {
		t.Errorf("Now = %g, want 9", e.Now())
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestFIFOAtEqualTimes(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(3, func() { order = append(order, i) })
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("equal-time events reordered: %v", order)
		}
	}
}

func TestAfterAndNesting(t *testing.T) {
	e := New()
	var times []float64
	e.After(2, func() {
		times = append(times, e.Now())
		e.After(3, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 2 || times[0] != 2 || times[1] != 5 {
		t.Fatalf("times = %v, want [2 5]", times)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := New()
	e.At(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	e.At(5, func() {})
}

func TestRunUntil(t *testing.T) {
	e := New()
	count := 0
	e.Every(10, func() bool { count++; return true })
	e.RunUntil(35)
	if count != 3 {
		t.Errorf("count = %d, want 3 (ticks at 10,20,30)", count)
	}
	if e.Now() != 35 {
		t.Errorf("Now = %g, want 35", e.Now())
	}
	if e.Len() != 1 {
		t.Errorf("pending = %d, want 1 (next tick)", e.Len())
	}
}

func TestEveryStops(t *testing.T) {
	e := New()
	count := 0
	e.Every(1, func() bool {
		count++
		return count < 4
	})
	e.Run()
	if count != 4 {
		t.Errorf("count = %d, want 4", count)
	}
}

func TestEveryInvalidPeriodPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Error("non-positive period did not panic")
		}
	}()
	e.Every(0, func() bool { return false })
}

func TestStepEmpty(t *testing.T) {
	e := New()
	if e.Step() {
		t.Error("Step on empty queue returned true")
	}
}
