// Package sim is a minimal discrete-event simulation engine: a virtual
// clock and an ordered event queue. The churn-mode experiments (Section
// VI-C) schedule node lifetimes, stabilization rounds, auxiliary-neighbor
// recomputations and query arrivals on it.
//
// Events at equal timestamps fire in scheduling order, so a run is fully
// deterministic given deterministic callbacks.
package sim

import (
	"container/heap"
	"fmt"
)

// Engine is the simulation clock and event queue. The zero value is not
// ready; use New.
type Engine struct {
	now float64
	pq  eventQueue
	seq uint64
}

type event struct {
	at  float64
	seq uint64
	fn  func()
}

// New returns an engine with the clock at 0.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Len returns the number of pending events.
func (e *Engine) Len() int { return len(e.pq) }

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: it is always a logic error in a discrete-event model.
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %g before now %g", t, e.now))
	}
	e.seq++
	heap.Push(&e.pq, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run delay seconds from now. Negative delays panic.
func (e *Engine) After(delay float64, fn func()) { e.At(e.now+delay, fn) }

// Every schedules fn at now+period, now+2·period, ... until fn returns
// false. It panics on a non-positive period.
func (e *Engine) Every(period float64, fn func() bool) {
	if period <= 0 {
		panic(fmt.Sprintf("sim: non-positive period %g", period))
	}
	var tick func()
	tick = func() {
		if fn() {
			e.After(period, tick)
		}
	}
	e.After(period, tick)
}

// Step runs the earliest pending event, advancing the clock. It reports
// whether an event ran.
func (e *Engine) Step() bool {
	if len(e.pq) == 0 {
		return false
	}
	ev := heap.Pop(&e.pq).(*event)
	e.now = ev.at
	ev.fn()
	return true
}

// RunUntil processes events with timestamps <= t, then advances the clock
// to exactly t. Events scheduled during processing are honored if due.
func (e *Engine) RunUntil(t float64) {
	for len(e.pq) > 0 && e.pq[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// Run processes every pending event (including newly scheduled ones)
// until the queue drains. Callers with self-rescheduling events should
// use RunUntil instead.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// eventQueue is a min-heap ordered by (time, sequence).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	*q = old[:n-1]
	return ev
}
