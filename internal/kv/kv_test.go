package kv_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"peercache/internal/cluster"
	"peercache/internal/id"
	"peercache/internal/kv"
	"peercache/internal/memnet"
	"peercache/internal/node"
	"peercache/internal/wire"
)

func startRing(t *testing.T, space id.Space, ids []uint64) (*cluster.Cluster, *memnet.Network) {
	t.Helper()
	nw := memnet.New(1)
	c, err := cluster.Start(space, nw, ids, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	return c, nw
}

func dial(t *testing.T, c *cluster.Cluster, nw *memnet.Network) *kv.Client {
	t.Helper()
	cl, err := kv.Dial(kv.Config{
		Space:     c.Space,
		Bootstrap: c.Addr(0),
		Addr:      "mem/client",
		Timeout:   100 * time.Millisecond,
		Listen:    func(addr string) (node.PacketConn, error) { return nw.Listen(addr) },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func TestClientPutGetAgainstRing(t *testing.T) {
	space := id.NewSpace(16)
	c, nw := startRing(t, space, []uint64{100, 20000, 40000})
	cl := dial(t, c, nw)

	key := id.ID(10000) // owned by 20000
	owner, version, err := cl.Put(key, []byte("hello"))
	if err != nil {
		t.Fatalf("put: %v", err)
	}
	if owner.ID != 20000 || version != 1 {
		t.Fatalf("put landed at %d v%d, want 20000 v1", owner.ID, version)
	}
	val, version, err := cl.Get(key)
	if err != nil || !bytes.Equal(val, []byte("hello")) || version != 1 {
		t.Fatalf("get: %q v%d, %v", val, version, err)
	}
	// Overwrite bumps the version at the owner.
	if _, version, err = cl.Put(key, []byte("hello2")); err != nil || version != 2 {
		t.Fatalf("overwrite: v%d, %v", version, err)
	}
	if val, _, err = cl.Get(key); err != nil || !bytes.Equal(val, []byte("hello2")) {
		t.Fatalf("get after overwrite: %q, %v", val, err)
	}
	if _, _, err := cl.Get(id.ID(50000)); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("get of missing key: %v, want ErrNotFound", err)
	}
	if _, _, err := cl.Put(key, make([]byte, wire.MaxValueLen+1)); !errors.Is(err, wire.ErrValueLen) {
		t.Fatalf("oversized put: %v, want ErrValueLen", err)
	}

	// Resolve alone works and counts its RPCs.
	got, hops, err := cl.Resolve(key)
	if err != nil || got.ID != 20000 || hops < 1 {
		t.Fatalf("resolve: %v in %d hops, %v", got, hops, err)
	}

	// The anonymity invariant: a client never enters the ring's routing
	// state. No member may know the client's address as a contact.
	for _, n := range c.Nodes {
		contacts := append(n.Successors(), n.Fingers()...)
		contacts = append(contacts, n.Aux()...)
		if p, ok := n.Predecessor(); ok {
			contacts = append(contacts, p)
		}
		for _, ct := range contacts {
			if ct.Addr == "mem/client" {
				t.Fatalf("node %d adopted the client as contact %v", n.ID(), ct)
			}
		}
	}
}

func TestClientAgainstDeadBootstrap(t *testing.T) {
	space := id.NewSpace(16)
	nw := memnet.New(2)
	cl, err := kv.Dial(kv.Config{
		Space:     space,
		Bootstrap: "mem/nobody",
		Addr:      "mem/client",
		Timeout:   50 * time.Millisecond,
		Retries:   1,
		Listen:    func(addr string) (node.PacketConn, error) { return nw.Listen(addr) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, _, err := cl.Get(1); !errors.Is(err, kv.ErrTimeout) {
		t.Fatalf("get via dead bootstrap: %v, want ErrTimeout", err)
	}
}

func TestClientConfigValidation(t *testing.T) {
	if _, err := kv.Dial(kv.Config{Bootstrap: "x"}); err == nil {
		t.Fatal("zero space accepted")
	}
	if _, err := kv.Dial(kv.Config{Space: id.NewSpace(16)}); err == nil {
		t.Fatal("missing bootstrap accepted")
	}
}

// A lost GET response — not a lost request — must be absorbed by the
// client's retry loop. The ring answers Resolve at the bootstrap (100's
// successor covers the key), so the owner's first datagram to the
// client is exactly the GET response; DropNext removes precisely that
// one and the retried RPC must come back with the same value.
func TestClientRetriesDroppedGetResponse(t *testing.T) {
	space := id.NewSpace(16)
	c, nw := startRing(t, space, []uint64{100, 20000, 40000})
	cl := dial(t, c, nw)

	key := id.ID(10000) // owned by 20000
	if _, _, err := cl.Put(key, []byte("survives")); err != nil {
		t.Fatalf("put: %v", err)
	}

	dropped := nw.Stats().Dropped
	nw.DropNext("mem/20000", "mem/client", 1)
	val, version, err := cl.Get(key)
	if err != nil {
		t.Fatalf("get with dropped response: %v", err)
	}
	if !bytes.Equal(val, []byte("survives")) || version != 1 {
		t.Fatalf("get returned %q v%d, want \"survives\" v1", val, version)
	}
	// The drop must actually have hit — otherwise the retry path was
	// never exercised and the test is vacuous.
	if got := nw.Stats().Dropped; got != dropped+1 {
		t.Fatalf("dropped %d datagrams during the get, want exactly 1", got-dropped)
	}

	// The forced drop is one-shot: a subsequent get sails through with
	// no further loss.
	if _, _, err := cl.Get(key); err != nil {
		t.Fatalf("get after drop consumed: %v", err)
	}
	if got := nw.Stats().Dropped; got != dropped+1 {
		t.Fatalf("drop survived past its count: %d total", got-dropped)
	}
}

// The default read accepts replica answers under the bounded-staleness
// contract: with the owner partitioned away, the walk reaches the
// replica holder and returns the last replicated version. OwnerRead
// refuses exactly that — the same read must fail rather than serve a
// copy whose freshness it cannot prove.
func TestClientReplicaReadAndOwnerRead(t *testing.T) {
	space := id.NewSpace(16)
	c, nw := startRing(t, space, []uint64{100, 20000, 40000})
	cl := dial(t, c, nw)

	key := id.ID(10000) // owned by 20000, replicated to 40000
	if _, _, err := cl.Put(key, []byte("replicated")); err != nil {
		t.Fatalf("put: %v", err)
	}
	// Force the replica across and verify it landed before partitioning.
	owner := c.Nodes[1]
	owner.ReplicationRound()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, ok := c.Nodes[2].Item(key); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replica never reached 40000")
		}
		time.Sleep(5 * time.Millisecond)
	}

	strict, err := kv.Dial(kv.Config{
		Space:     space,
		Bootstrap: c.Addr(0),
		Addr:      "mem/client-strict",
		Timeout:   100 * time.Millisecond,
		OwnerRead: true,
		Listen:    func(addr string) (node.PacketConn, error) { return nw.Listen(addr) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer strict.Close()

	nw.Partition("owner-down", c.Addr(1))
	defer nw.Heal("owner-down")

	// Immediately after the partition the ring still resolves the dead
	// node as owner, so the owner-only read must fail rather than fall
	// back to a replica. (Given time the overlay heals and re-resolves
	// ownership — that recovery is TestKVReplicationSurvivesOwnerFailure's
	// territory; this window is exactly where the two read modes differ.)
	if _, _, err := strict.Get(key); err == nil {
		t.Fatal("owner-read get succeeded with the owner partitioned")
	}

	val, version, err := cl.Get(key)
	if err != nil {
		t.Fatalf("replica-accepting get with owner partitioned: %v", err)
	}
	if !bytes.Equal(val, []byte("replicated")) || version != 1 {
		t.Fatalf("replica read returned %q v%d, want \"replicated\" v1", val, version)
	}
}
