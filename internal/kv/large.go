package kv

import (
	"peercache/internal/chunk"
	"peercache/internal/id"
	"peercache/internal/wire"
)

// LargeOptions tunes the client's chunked-object operations. The zero
// value is usable: wire-limit chunks, window 4, prefetch 2.
type LargeOptions struct {
	// ChunkSize is the split width (default chunk.DefaultChunkSize).
	ChunkSize int
	// Window bounds parallel chunk transfers (default 4).
	Window int
	// Prefetch is the stream lookahead depth (default 2; set -1 for
	// strictly on-demand reads).
	Prefetch int
}

func (o LargeOptions) resolve() chunk.Options {
	co := chunk.Options{
		ChunkSize: o.ChunkSize,
		Window:    o.Window,
		Prefetch:  o.Prefetch,
	}
	if co.Prefetch == 0 {
		co.Prefetch = 2
	} else if co.Prefetch < 0 {
		co.Prefetch = 0
	}
	return co
}

// chunkStore builds a chunk.Store over this client. Each chunk put/get
// is an independent Resolve + owner RPC with the client's own retry
// budget; the chunk layer adds its per-chunk retry (with re-resolution)
// on top.
func (c *Client) chunkStore(o LargeOptions) (*chunk.Store, error) {
	co := o.resolve()
	co.Space = c.cfg.Space
	return chunk.New(chunk.FuncKV{
		PutFunc: func(key id.ID, value []byte) error {
			_, _, err := c.Put(key, value)
			return err
		},
		GetFunc: func(key id.ID) ([]byte, int, error) {
			owner, hops, err := c.Resolve(key)
			if err != nil {
				return nil, hops, err
			}
			b, _, err := c.getAt(owner, key)
			return b, hops, err
		},
	}, co)
}

// getAt fetches key from a known owner, skipping the resolve Get would
// repeat.
func (c *Client) getAt(owner wire.Contact, key id.ID) ([]byte, uint64, error) {
	resp, err := c.call(owner.Addr, &wire.Message{Type: wire.TGet, Key: key})
	if err != nil {
		return nil, 0, err
	}
	if !resp.OK {
		return nil, 0, ErrNotFound
	}
	return resp.Value, resp.Version, nil
}

// PutLarge stores a value of any size the manifest bound allows
// (see chunk.MaxObjectLen): the value is split into chunks stored under
// derived keys scattered across the ring, then a checksummed manifest
// is stored under key. Values that fit a single stored value still go
// through the chunk layer for a uniform read path. Returns the manifest.
func (c *Client) PutLarge(key id.ID, value []byte, o LargeOptions) (*chunk.Manifest, error) {
	s, err := c.chunkStore(o)
	if err != nil {
		return nil, err
	}
	return s.PutObject(key, value)
}

// GetLarge fetches and reassembles the whole chunked object stored
// under key, verifying every chunk digest.
func (c *Client) GetLarge(key id.ID, o LargeOptions) ([]byte, error) {
	s, err := c.chunkStore(o)
	if err != nil {
		return nil, err
	}
	return s.GetObject(key)
}

// OpenStream opens a sequential reader over the chunked object stored
// under key. While the caller consumes chunk i, the next Prefetch
// chunks are resolved and fetched ahead of need — repeated
// position-local lookups that warm the ring's aux caches along the
// stream's path. Close the reader when done.
func (c *Client) OpenStream(key id.ID, o LargeOptions) (*chunk.Reader, error) {
	s, err := c.chunkStore(o)
	if err != nil {
		return nil, err
	}
	return s.NewReader(key)
}
