// Package kv is a standalone client for the overlay's data plane. It
// resolves a key's owner by driving the same iterative find-successor
// protocol the ring members use among themselves, then issues the PUT
// or GET RPC against the owner directly — all from an anonymous
// endpoint that never joins the ring. The client's datagrams carry a
// zero sender contact (no id, no address), which ring members ignore
// when updating their routing state, so any number of clients can come
// and go without disturbing the overlay; replies ride the transport
// source address, not the advertised contact.
//
// The client speaks node.PacketConn, so it runs over real UDP
// (cmd/p2pkv) and over memnet in tests, against the same nodes either
// way.
package kv

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"peercache/internal/id"
	"peercache/internal/node"
	"peercache/internal/wire"
)

// Client errors.
var (
	// ErrNotFound reports a GET for a key the ring does not store.
	ErrNotFound = errors.New("kv: key not found")
	// ErrStoreFull reports a PUT the owner refused for capacity.
	ErrStoreFull = errors.New("kv: store full at owner")
	// ErrTimeout is returned by an RPC whose every attempt expired.
	ErrTimeout = errors.New("kv: rpc timed out")
	// ErrClosed is returned once the client has shut down.
	ErrClosed = errors.New("kv: closed")
	// ErrValueTooLarge rejects a plain Put whose value exceeds the wire
	// limit for one stored value; the chunk layer (PutLarge) is the way
	// to move such objects. Wraps wire.ErrValueLen so existing checks
	// keep matching.
	ErrValueTooLarge = fmt.Errorf("kv: value too large for single put: %w", wire.ErrValueLen)
)

// Config parameterizes a client.
type Config struct {
	// Space is the ring's identifier space (required; must match the
	// nodes' -bits).
	Space id.Space
	// Bootstrap is the address of any ring member (required); every
	// lookup starts there.
	Bootstrap string
	// Addr is the local bind address (default "127.0.0.1:0").
	Addr string
	// Timeout bounds one RPC attempt (default 500ms).
	Timeout time.Duration
	// Retries is how many times a timed-out RPC is retried with a fresh
	// MsgID (default 2).
	Retries int
	// MaxHops aborts runaway lookups (default 64).
	MaxHops int
	// OwnerRead makes Get resolve the key's owner and read only there,
	// refusing replica answers. The default (false) lets any copy
	// holder answer under the data plane's bounded-staleness contract:
	// the value is at worst one anti-entropy round behind the last
	// acknowledged write, and the returned version lets the caller
	// judge. Set it when the read must observe the latest acked write.
	OwnerRead bool
	// Listen opens the datagram endpoint (default node.ListenUDP).
	Listen node.Listener
}

func (c Config) withDefaults() (Config, error) {
	if c.Space.Bits() == 0 {
		return c, fmt.Errorf("kv: zero-value id space")
	}
	if c.Bootstrap == "" {
		return c, fmt.Errorf("kv: no bootstrap address")
	}
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.Timeout == 0 {
		c.Timeout = 500 * time.Millisecond
	}
	if c.Retries == 0 {
		c.Retries = 2
	}
	if c.MaxHops == 0 {
		c.MaxHops = 64
	}
	if c.Listen == nil {
		c.Listen = node.ListenUDP
	}
	return c, nil
}

// Client is an anonymous data-plane endpoint. Safe for concurrent use.
type Client struct {
	cfg  Config
	conn node.PacketConn

	mu       sync.Mutex
	inflight map[uint64]chan *wire.Message
	nextID   atomic.Uint64

	done   chan struct{}
	closed atomic.Bool
	wg     sync.WaitGroup
}

// Dial opens a client endpoint. It performs no network traffic yet; the
// bootstrap node is first contacted by the first operation.
func Dial(cfg Config) (*Client, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	conn, err := cfg.Listen(cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("kv: %w", err)
	}
	c := &Client{
		cfg:      cfg,
		conn:     conn,
		inflight: make(map[uint64]chan *wire.Message),
		done:     make(chan struct{}),
	}
	c.wg.Add(1)
	go c.readLoop()
	return c, nil
}

// Close shuts the endpoint down; blocked RPCs return ErrClosed.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	close(c.done)
	err := c.conn.Close()
	c.wg.Wait()
	return err
}

// readLoop delivers responses to their registered waiter; anything else
// (a request — nothing should send us one — or an unclaimed straggler)
// is dropped.
func (c *Client) readLoop() {
	defer c.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, _, err := c.conn.ReadFrom(buf)
		if err != nil {
			if c.closed.Load() || errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		m, err := wire.Decode(buf[:n])
		if err != nil || !m.Type.IsResponse() {
			continue
		}
		c.mu.Lock()
		ch, ok := c.inflight[m.MsgID]
		if ok {
			delete(c.inflight, m.MsgID)
		}
		c.mu.Unlock()
		if ok {
			ch <- m
		}
	}
}

// call is the client's RPC primitive: fresh MsgID per attempt, so late
// or duplicated responses find no waiter (the node transport's rule).
// The request's From stays zero — the anonymous contact.
func (c *Client) call(addr string, req *wire.Message) (*wire.Message, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	want := req.Type.Response()
	for attempt := 0; ; attempt++ {
		msgID := c.nextID.Add(1)
		req.MsgID = msgID
		b, err := wire.Encode(req)
		if err != nil {
			return nil, err
		}
		ch := make(chan *wire.Message, 1)
		c.mu.Lock()
		c.inflight[msgID] = ch
		c.mu.Unlock()
		deregister := func() {
			c.mu.Lock()
			delete(c.inflight, msgID)
			c.mu.Unlock()
		}
		if _, err := c.conn.WriteTo(b, addr); err != nil {
			deregister()
			if c.closed.Load() {
				return nil, ErrClosed
			}
			return nil, fmt.Errorf("kv: rpc %v to %s: %w", req.Type, addr, err)
		}
		timer := time.NewTimer(c.cfg.Timeout)
		select {
		case resp := <-ch:
			timer.Stop()
			if resp.Type != want {
				return nil, fmt.Errorf("kv: rpc %v to %s: got %v response", req.Type, addr, resp.Type)
			}
			return resp, nil
		case <-timer.C:
			deregister()
		case <-c.done:
			timer.Stop()
			deregister()
			return nil, ErrClosed
		}
		if attempt >= c.cfg.Retries {
			return nil, fmt.Errorf("kv: rpc %v to %s after %d attempts: %w", req.Type, addr, attempt+1, ErrTimeout)
		}
	}
}

// Resolve finds the node currently responsible for key, driving the
// iterative lookup from the bootstrap node. The returned hop count is
// the number of find-successor RPCs spent.
func (c *Client) Resolve(key id.ID) (wire.Contact, int, error) {
	if uint64(key) >= c.cfg.Space.Size() {
		return wire.Contact{}, 0, fmt.Errorf("kv: key %d outside %d-bit space", key, c.cfg.Space.Bits())
	}
	cur := c.cfg.Bootstrap
	hops := 0
	for ; hops <= c.cfg.MaxHops; hops++ {
		resp, err := c.call(cur, &wire.Message{Type: wire.TFindSucc, Target: key})
		if err != nil {
			return wire.Contact{}, hops, fmt.Errorf("kv: resolve %d at %s: %w", key, cur, err)
		}
		if resp.Done {
			if resp.Found.IsZero() {
				return wire.Contact{}, hops, fmt.Errorf("kv: resolve %d: empty answer from %s", key, cur)
			}
			return resp.Found, hops + 1, nil
		}
		if resp.Next.IsZero() || resp.Next.Addr == cur {
			return wire.Contact{}, hops, fmt.Errorf("kv: resolve %d: no progress at %s", key, cur)
		}
		cur = resp.Next.Addr
	}
	return wire.Contact{}, hops, fmt.Errorf("kv: resolve %d: exceeded %d hops", key, c.cfg.MaxHops)
}

// Put stores value under key at the key's owner and returns the owner
// and the item's new version.
func (c *Client) Put(key id.ID, value []byte) (wire.Contact, uint64, error) {
	if len(value) > wire.MaxValueLen {
		return wire.Contact{}, 0, fmt.Errorf(
			"kv: put %d: %w: value is %d bytes, limit %d — use PutLarge (p2pstream put) for chunked transfer",
			key, ErrValueTooLarge, len(value), wire.MaxValueLen)
	}
	owner, _, err := c.Resolve(key)
	if err != nil {
		return wire.Contact{}, 0, err
	}
	resp, err := c.call(owner.Addr, &wire.Message{Type: wire.TPut, Key: key, Value: value})
	if err != nil {
		return owner, 0, fmt.Errorf("kv: put %d at %v: %w", key, owner, err)
	}
	if !resp.OK {
		return owner, 0, fmt.Errorf("kv: put %d at %v: %w", key, owner, ErrStoreFull)
	}
	return owner, resp.Version, nil
}

// Get fetches the value stored under key. By default the read walks
// find-value hops from the bootstrap and the first copy holder answers
// — owner or replica, under the bounded-staleness contract (the copy is
// at worst one anti-entropy round behind the last acknowledged write;
// the returned version is the caller's evidence). With Config.OwnerRead
// the client instead resolves the owner and reads only there.
func (c *Client) Get(key id.ID) ([]byte, uint64, error) {
	if c.cfg.OwnerRead {
		owner, _, err := c.Resolve(key)
		if err != nil {
			return nil, 0, err
		}
		resp, err := c.call(owner.Addr, &wire.Message{Type: wire.TGet, Key: key})
		if err != nil {
			return nil, 0, fmt.Errorf("kv: get %d at %v: %w", key, owner, err)
		}
		if !resp.OK {
			return nil, 0, fmt.Errorf("kv: get %d at %v: %w", key, owner, ErrNotFound)
		}
		return resp.Value, resp.Version, nil
	}
	return c.findValue(key)
}

// findValue is the replica-accepting read: one find-value RPC per hop,
// the next hop chosen from the frontier of discovered contacts by
// minimal circular distance to the key (either direction — replicas sit
// just past the key, where a one-directional routing metric would never
// look). The walk ends at the first value-bearing answer. An
// unresponsive hop is skipped, not fatal — serving around a dead owner
// is this read path's purpose — so the walk fails only when the
// frontier is exhausted: with every probe unanswered it reports the
// last RPC error, otherwise the consulted nodes around the key held no
// copy and the key is not stored.
func (c *Client) findValue(key id.ID) ([]byte, uint64, error) {
	if uint64(key) >= c.cfg.Space.Size() {
		return nil, 0, fmt.Errorf("kv: key %d outside %d-bit space", key, c.cfg.Space.Bits())
	}
	type hop struct {
		addr string
		dist uint64
	}
	frontier := []hop{{c.cfg.Bootstrap, ^uint64(0)}}
	visited := map[string]bool{}
	var lastErr error
	answered := false
	for hops := 0; hops <= c.cfg.MaxHops && len(frontier) > 0; hops++ {
		best := 0
		for i := range frontier {
			if frontier[i].dist < frontier[best].dist {
				best = i
			}
		}
		cur := frontier[best].addr
		frontier = append(frontier[:best], frontier[best+1:]...)
		visited[cur] = true
		resp, err := c.call(cur, &wire.Message{Type: wire.TFindValue, Key: key})
		if err != nil {
			lastErr = fmt.Errorf("kv: get %d at %s: %w", key, cur, err)
			continue
		}
		answered = true
		if resp.OK {
			return resp.Value, resp.Version, nil
		}
		for _, ct := range resp.Closest {
			if ct.Addr == "" || visited[ct.Addr] {
				continue
			}
			visited[ct.Addr] = true
			d := min(c.cfg.Space.Gap(ct.ID, key), c.cfg.Space.Gap(key, ct.ID))
			frontier = append(frontier, hop{ct.Addr, d})
		}
	}
	if !answered && lastErr != nil {
		return nil, 0, lastErr
	}
	if len(frontier) > 0 {
		return nil, 0, fmt.Errorf("kv: get %d: exceeded %d hops", key, c.cfg.MaxHops)
	}
	return nil, 0, fmt.Errorf("kv: get %d: %w", key, ErrNotFound)
}
