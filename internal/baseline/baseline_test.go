package baseline

import (
	"testing"

	"peercache/internal/id"
	"peercache/internal/randx"
)

func TestChordObliviousBasics(t *testing.T) {
	space := id.NewSpace(8)
	self := id.ID(0)
	core := []id.ID{1, 5}
	var candidates []id.ID
	for i := 1; i < 200; i++ {
		candidates = append(candidates, id.ID(i))
	}
	rng := randx.New(1)
	aux := ChordOblivious(space, self, core, candidates, 8, rng)
	if len(aux) != 8 {
		t.Fatalf("got %d aux, want 8", len(aux))
	}
	seen := map[id.ID]bool{}
	for _, a := range aux {
		if a == self || a == 1 || a == 5 {
			t.Fatalf("invalid aux %d", a)
		}
		if seen[a] {
			t.Fatalf("duplicate aux %d", a)
		}
		seen[a] = true
	}
	// Sorted output.
	for i := 1; i < len(aux); i++ {
		if aux[i-1] >= aux[i] {
			t.Fatal("aux not sorted")
		}
	}
}

// Round-robin across ranges: with abundant candidates everywhere, the
// picks must span several distinct distance ranges, not cluster.
func TestChordObliviousSpreadsAcrossRanges(t *testing.T) {
	space := id.NewSpace(8)
	self := id.ID(0)
	var candidates []id.ID
	for i := 1; i < 256; i++ {
		candidates = append(candidates, id.ID(i))
	}
	aux := ChordOblivious(space, self, nil, candidates, 8, randx.New(2))
	ranges := map[uint]bool{}
	for _, a := range aux {
		ranges[space.ChordDist(self, a)] = true
	}
	if len(ranges) < 6 {
		t.Errorf("picks cover only %d distance ranges: %v", len(ranges), aux)
	}
}

func TestChordObliviousFewCandidates(t *testing.T) {
	space := id.NewSpace(8)
	aux := ChordOblivious(space, 0, []id.ID{10}, []id.ID{10, 20, 0}, 5, randx.New(3))
	if len(aux) != 1 || aux[0] != 20 {
		t.Fatalf("aux = %v, want [20]", aux)
	}
}

func TestChordObliviousKZero(t *testing.T) {
	space := id.NewSpace(8)
	if aux := ChordOblivious(space, 0, nil, []id.ID{3}, 0, randx.New(4)); len(aux) != 0 {
		t.Fatalf("aux = %v, want empty", aux)
	}
}

func TestPastryObliviousBasics(t *testing.T) {
	space := id.NewSpace(8)
	self := id.ID(0b10101010)
	var candidates []id.ID
	for i := 0; i < 256; i++ {
		if id.ID(i) != self {
			candidates = append(candidates, id.ID(i))
		}
	}
	aux := PastryOblivious(space, self, []id.ID{0}, candidates, 8, randx.New(5))
	if len(aux) != 8 {
		t.Fatalf("got %d aux, want 8", len(aux))
	}
	rows := map[uint]bool{}
	for _, a := range aux {
		if a == self || a == 0 {
			t.Fatalf("invalid aux %d", a)
		}
		rows[space.CommonPrefixLen(self, a)] = true
	}
	if len(rows) < 6 {
		t.Errorf("picks cover only %d prefix rows", len(rows))
	}
}

func TestObliviousDeterministicGivenRNG(t *testing.T) {
	space := id.NewSpace(8)
	var candidates []id.ID
	for i := 1; i < 100; i++ {
		candidates = append(candidates, id.ID(i))
	}
	// Same stream, different candidate order: identical result.
	shuffled := append([]id.ID(nil), candidates...)
	randx.New(77).Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	a := ChordOblivious(space, 0, nil, candidates, 6, randx.New(6))
	b := ChordOblivious(space, 0, nil, shuffled, 6, randx.New(6))
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("results differ: %v vs %v", a, b)
		}
	}
}

func TestObliviousDuplicateCandidatesIgnored(t *testing.T) {
	space := id.NewSpace(8)
	aux := ChordOblivious(space, 0, nil, []id.ID{7, 7, 7, 9}, 4, randx.New(8))
	if len(aux) != 2 {
		t.Fatalf("aux = %v, want 2 distinct picks", aux)
	}
}
