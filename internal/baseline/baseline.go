// Package baseline implements the frequency-oblivious auxiliary-neighbor
// selection the paper compares against (Section VI-A): in Chord, with
// k = r·log n, it picks r auxiliary neighbors at random in each range
// (self + 2^i, self + 2^{i+1}]; in Pastry, r random neighbors per prefix
// match length. It draws from the same candidate pool the optimizing
// selector sees — the peers the node has observed queries for — but
// ignores their frequencies entirely.
package baseline

import (
	"fmt"
	"math/rand"
	"sort"

	"peercache/internal/id"
)

// ChordOblivious picks up to k auxiliary neighbors for node self by
// distributing slots round-robin over the populated distance ranges
// (self + 2^i, self + 2^{i+1}] and sampling uniformly without replacement
// within each range. Candidates equal to self or in the core set are
// excluded. The result is sorted by id.
func ChordOblivious(space id.Space, self id.ID, core []id.ID, candidates []id.ID, k int, rng *rand.Rand) []id.ID {
	buckets := make([][]id.ID, space.Bits())
	coreSet := make(map[id.ID]bool, len(core))
	for _, c := range core {
		coreSet[c] = true
	}
	seen := make(map[id.ID]bool, len(candidates))
	for _, c := range candidates {
		if c == self || coreSet[c] || seen[c] {
			continue
		}
		seen[c] = true
		g := space.Gap(self, c)
		// g in (2^i, 2^{i+1}] -> bucket i; g == 1 lands in bucket 0.
		i := id.CeilLog2(g)
		if i > 0 {
			i--
		}
		buckets[i] = append(buckets[i], c)
	}
	return drawRoundRobin(buckets, k, rng)
}

// PastryOblivious picks up to k auxiliary neighbors for node self by
// distributing slots round-robin over the populated prefix-length rows
// (candidates sharing exactly l leading bits with self) and sampling
// uniformly within each row. The result is sorted by id.
func PastryOblivious(space id.Space, self id.ID, core []id.ID, candidates []id.ID, k int, rng *rand.Rand) []id.ID {
	return PastryObliviousDigits(space, self, core, candidates, k, 1, rng)
}

// PastryObliviousDigits is PastryOblivious for base-2^digitBits digit
// routing: rows are shared digit-prefix lengths. digitBits must divide
// the identifier length; it panics otherwise (a configuration error).
func PastryObliviousDigits(space id.Space, self id.ID, core []id.ID, candidates []id.ID, k int, digitBits uint, rng *rand.Rand) []id.ID {
	if digitBits == 0 || space.Bits()%digitBits != 0 {
		panic(fmt.Sprintf("baseline: digit size %d does not divide %d-bit ids", digitBits, space.Bits()))
	}
	buckets := make([][]id.ID, space.Bits()/digitBits)
	coreSet := make(map[id.ID]bool, len(core))
	for _, c := range core {
		coreSet[c] = true
	}
	seen := make(map[id.ID]bool, len(candidates))
	for _, c := range candidates {
		if c == self || coreSet[c] || seen[c] {
			continue
		}
		seen[c] = true
		l := space.CommonPrefixLen(self, c) / digitBits
		if int(l) >= len(buckets) {
			l = uint(len(buckets) - 1) // c == self is excluded, cannot happen
		}
		buckets[l] = append(buckets[l], c)
	}
	return drawRoundRobin(buckets, k, rng)
}

// drawRoundRobin cycles over the non-empty buckets, drawing one uniform
// sample without replacement from each, until k picks are made or all
// buckets are exhausted. Buckets are pre-sorted so the output depends
// only on the rng stream, not on candidate order.
func drawRoundRobin(buckets [][]id.ID, k int, rng *rand.Rand) []id.ID {
	for _, b := range buckets {
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	}
	picked := make([]id.ID, 0, k)
	for len(picked) < k {
		progress := false
		for i := range buckets {
			if len(picked) >= k {
				break
			}
			b := buckets[i]
			if len(b) == 0 {
				continue
			}
			j := rng.Intn(len(b))
			picked = append(picked, b[j])
			b[j] = b[len(b)-1]
			buckets[i] = b[:len(b)-1]
			progress = true
		}
		if !progress {
			break
		}
	}
	sort.Slice(picked, func(i, j int) bool { return picked[i] < picked[j] })
	return picked
}
