// Package workload generates the query workloads of Section VI-A: a
// corpus of items with randomly generated identifiers, zipfian item
// popularities, and either one global popularity ranking (identical at
// all nodes — the paper's Pastry plots) or several distinct rankings
// assigned randomly to nodes (the paper's Chord plots use five).
package workload

import (
	"fmt"
	"math/rand"

	"peercache/internal/id"
	"peercache/internal/randx"
)

// Config parameterizes a workload.
type Config struct {
	// Space is the identifier space items are hashed into.
	Space id.Space
	// NumItems is the corpus size.
	NumItems int
	// Alpha is the zipf exponent (the paper sweeps 1.2 and 0.91).
	Alpha float64
	// NumRankings is the number of distinct popularity rankings; 1
	// means identical popularity at all nodes, 5 reproduces the
	// paper's per-node variation. Defaults to 1 when 0.
	NumRankings int
	// Seed makes the workload reproducible.
	Seed int64
}

// Workload holds the item corpus and per-ranking popularity structure.
type Workload struct {
	cfg     Config
	items   []id.ID
	weights []float64 // zipf weight by rank

	// rankOf[r][itemIdx] = rank of the item under ranking r.
	rankOf [][]int
	// samplers[r] draws item indices under ranking r.
	samplers []*randx.Alias

	// ranking assignment per node, fixed for the workload's lifetime.
	nodeRanking map[id.ID]int
	rankingRNG  *rand.Rand
}

// New builds a workload. It panics on a non-positive item count (a
// configuration bug, not a runtime condition).
func New(cfg Config) *Workload {
	if cfg.NumItems <= 0 {
		panic(fmt.Sprintf("workload: NumItems = %d", cfg.NumItems))
	}
	if cfg.NumRankings == 0 {
		cfg.NumRankings = 1
	}
	itemRNG := randx.New(randx.DeriveSeed(cfg.Seed, "items"))
	w := &Workload{
		cfg:         cfg,
		weights:     randx.ZipfWeights(cfg.NumItems, cfg.Alpha),
		nodeRanking: make(map[id.ID]int),
		rankingRNG:  randx.New(randx.DeriveSeed(cfg.Seed, "node-ranking")),
	}
	for _, raw := range randx.UniqueIDs(itemRNG, cfg.NumItems, cfg.Space.Size()) {
		w.items = append(w.items, id.ID(raw))
	}
	permRNG := randx.New(randx.DeriveSeed(cfg.Seed, "rankings"))
	for r := 0; r < cfg.NumRankings; r++ {
		rank := make([]int, cfg.NumItems)
		probs := make([]float64, cfg.NumItems)
		var perm []int
		if r == 0 {
			// Ranking 0 is the identity: item 0 is the most popular.
			perm = make([]int, cfg.NumItems)
			for i := range perm {
				perm[i] = i
			}
		} else {
			perm = permRNG.Perm(cfg.NumItems)
		}
		for rnk, itemIdx := range perm {
			rank[itemIdx] = rnk
			probs[itemIdx] = w.weights[rnk]
		}
		w.rankOf = append(w.rankOf, rank)
		w.samplers = append(w.samplers, randx.NewAlias(probs))
	}
	return w
}

// Items returns the item keys (do not modify).
func (w *Workload) Items() []id.ID { return w.items }

// NumItems returns the corpus size.
func (w *Workload) NumItems() int { return len(w.items) }

// RankingOf returns the popularity ranking index assigned to the node,
// assigning one uniformly at random (but deterministically per workload
// seed) on first use. Assignments persist across crash/rejoin cycles.
func (w *Workload) RankingOf(node id.ID) int {
	r, ok := w.nodeRanking[node]
	if !ok {
		r = w.rankingRNG.Intn(len(w.samplers))
		w.nodeRanking[node] = r
	}
	return r
}

// Prob returns the probability that a query at the given node targets
// item itemIdx.
func (w *Workload) Prob(node id.ID, itemIdx int) float64 {
	return w.weights[w.rankOf[w.RankingOf(node)][itemIdx]]
}

// SampleItem draws an item index for a query originating at node.
func (w *Workload) SampleItem(rng *rand.Rand, node id.ID) int {
	return w.samplers[w.RankingOf(node)].Sample(rng)
}

// Key returns the identifier of item itemIdx.
func (w *Workload) Key(itemIdx int) id.ID { return w.items[itemIdx] }

// DestMass aggregates a node's per-item query distribution into
// per-destination-node probability mass, given the item-to-owner
// assignment. The mass for destinations equal to the node itself is
// dropped (those lookups terminate locally and cost zero hops for every
// scheme). owner must map every item index.
func (w *Workload) DestMass(node id.ID, owner func(itemIdx int) id.ID) map[id.ID]float64 {
	mass := make(map[id.ID]float64)
	for i := range w.items {
		o := owner(i)
		if o == node {
			continue
		}
		mass[o] += w.Prob(node, i)
	}
	return mass
}
