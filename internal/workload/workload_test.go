package workload

import (
	"math"
	"testing"

	"peercache/internal/id"
	"peercache/internal/randx"
)

func testConfig(rankings int) Config {
	return Config{
		Space:       id.NewSpace(16),
		NumItems:    100,
		Alpha:       1.2,
		NumRankings: rankings,
		Seed:        7,
	}
}

func TestItemsUniqueAndInSpace(t *testing.T) {
	w := New(testConfig(1))
	seen := make(map[id.ID]bool)
	for _, it := range w.Items() {
		if uint64(it) >= 1<<16 {
			t.Fatalf("item %d out of space", it)
		}
		if seen[it] {
			t.Fatalf("duplicate item %d", it)
		}
		seen[it] = true
	}
	if w.NumItems() != 100 {
		t.Fatalf("NumItems = %d, want 100", w.NumItems())
	}
}

func TestSingleRankingIdenticalAcrossNodes(t *testing.T) {
	w := New(testConfig(1))
	for i := 0; i < 10; i++ {
		if w.RankingOf(id.ID(i)) != 0 {
			t.Fatalf("node %d got ranking %d, want 0", i, w.RankingOf(id.ID(i)))
		}
	}
	// Under ranking 0 item 0 is most popular.
	if w.Prob(1, 0) <= w.Prob(1, 50) {
		t.Error("item 0 not most popular under identity ranking")
	}
}

func TestProbsSumToOne(t *testing.T) {
	w := New(testConfig(5))
	for node := id.ID(0); node < 10; node++ {
		sum := 0.0
		for i := 0; i < w.NumItems(); i++ {
			sum += w.Prob(node, i)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("node %d probs sum to %g", node, sum)
		}
	}
}

func TestRankingAssignmentStable(t *testing.T) {
	w := New(testConfig(5))
	first := make(map[id.ID]int)
	for node := id.ID(0); node < 50; node++ {
		first[node] = w.RankingOf(node)
	}
	for node := id.ID(0); node < 50; node++ {
		if w.RankingOf(node) != first[node] {
			t.Fatal("ranking assignment changed between calls")
		}
	}
	// With 5 rankings and 50 nodes, more than one ranking should appear.
	counts := make(map[int]int)
	for _, r := range first {
		counts[r]++
	}
	if len(counts) < 2 {
		t.Error("all nodes got the same ranking out of 5")
	}
}

func TestSampleMatchesProb(t *testing.T) {
	w := New(testConfig(5))
	rng := randx.New(99)
	node := id.ID(3)
	const draws = 200000
	counts := make([]int, w.NumItems())
	for i := 0; i < draws; i++ {
		counts[w.SampleItem(rng, node)]++
	}
	for i := 0; i < w.NumItems(); i += 13 {
		want := w.Prob(node, i)
		got := float64(counts[i]) / draws
		if math.Abs(got-want) > 0.01 {
			t.Errorf("item %d: sampled %g, want %g", i, got, want)
		}
	}
}

func TestDestMassAggregatesAndSkipsSelf(t *testing.T) {
	w := New(testConfig(1))
	self := id.ID(42)
	// Owner: items 0..49 -> node 1, items 50..99 -> self.
	owner := func(i int) id.ID {
		if i < 50 {
			return 1
		}
		return self
	}
	mass := w.DestMass(self, owner)
	if _, ok := mass[self]; ok {
		t.Error("DestMass contains self")
	}
	want := 0.0
	for i := 0; i < 50; i++ {
		want += w.Prob(self, i)
	}
	if math.Abs(mass[1]-want) > 1e-12 {
		t.Errorf("mass[1] = %g, want %g", mass[1], want)
	}
}

func TestDeterministicAcrossConstructions(t *testing.T) {
	a := New(testConfig(5))
	b := New(testConfig(5))
	for i := range a.Items() {
		if a.Items()[i] != b.Items()[i] {
			t.Fatal("item corpus not deterministic")
		}
	}
	for node := id.ID(0); node < 20; node++ {
		if a.RankingOf(node) != b.RankingOf(node) {
			t.Fatal("ranking assignment not deterministic")
		}
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NumItems=0 did not panic")
		}
	}()
	New(Config{Space: id.NewSpace(8), NumItems: 0, Alpha: 1})
}
