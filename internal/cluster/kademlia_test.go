package cluster

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"peercache/internal/id"
	"peercache/internal/memnet"
	"peercache/internal/node"
	"peercache/internal/node/kadring"
	"peercache/internal/randx"
)

// TestClusterKademliaPartitionHealDurabilityAuxGain is the acceptance
// test for the third live geometry: the same 56-node memnet overlay the
// Chord and Pastry cluster tests run, but with every node on kadring —
// XOR k-buckets maintained over FIND_NODE walks, ping-before-evict, and
// hearsay adoption instead of successor stabilization. The bucket size
// is deliberately tiny (3, against the production default of 20) so a
// 56-node overlay actually routes in multiple hops; at k=20 every node
// would know every other and the aux comparison would measure nothing.
// Phases:
//
//  1. Boot through the Kademlia join walk and converge to the
//     expected-bucket-coverage oracle; PUT a keyspace through rotating
//     sources, owners checked against the XOR oracle, and wait for
//     replication factor 2 placement.
//  2. Cut 12 nodes off; wait until the minority provably reorganizes
//     into its own overlay (its buckets satisfy the oracle computed
//     over minority members alone). Heal, reconverge to the full
//     oracle.
//  3. Require full durability: every key GETs its exact value — also
//     through the combined FIND_VALUE walk — ownership reconciles to
//     exactly one owner per key, and placement recovers to >= factor
//     copies. No owned key lost across the partition.
//  4. Drive a per-source Zipf lookup stream twice — aux-disabled while
//     the frequency observers accumulate, then after every node runs
//     the XOR-adapted greedy selection (core.KademliaMaintainer) over
//     what it observed — and require the with-aux mean hop count
//     strictly below aux-disabled, same seed and stream.
//
// Everything is seeded; runs race-enabled.
func TestClusterKademliaPartitionHealDurabilityAuxGain(t *testing.T) {
	if testing.Short() {
		t.Skip("56-node in-process cluster test")
	}
	const (
		numNodes   = 56
		numCut     = 12
		numKeys    = 64
		bucketSize = 3
		k          = 8 // auxiliary budget
		factor     = 2 // replication factor
		alpha      = 1.2
		perSource  = 30
		seed       = 31
	)
	space := id.NewSpace(16)
	rng := rand.New(rand.NewSource(seed))
	ids := randx.UniqueIDs(rng, numNodes, space.Size())

	nw := memnet.New(seed)
	nw.SetDefaultPolicy(memnet.LinkPolicy{
		Dup:      0.02,
		MaxDelay: time.Millisecond, // jitter ⇒ reordering
	})

	cl, err := Start(space, nw, ids, func(i int, cfg *node.Config) {
		cfg.NewRing = kadring.New
		cfg.BucketSize = bucketSize
		cfg.AuxCount = k
		cfg.AuxEvery = 0 // recomputation driven explicitly between passes
		cfg.ReplicationFactor = factor
		cfg.ReplicateEvery = 150 * time.Millisecond
		cfg.ItemCacheCapacity = -1 // hop counts must measure routing, not caching
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for _, n := range cl.Nodes {
		if got := n.Protocol(); got != "kademlia" {
			t.Fatalf("node %d protocol %q, want kademlia", n.ID(), got)
		}
	}
	if err := cl.WaitConvergedKademlia(bucketSize, 90*time.Second); err != nil {
		t.Fatalf("initial convergence: %v", err)
	}
	members := RingOf(cl.Nodes)
	nodeIDs := make(map[id.ID]bool, numNodes)
	for _, x := range members {
		nodeIDs[x] = true
	}
	t.Log("phase 1: converged to kademlia bucket oracle")

	// Populate: random key positions, values derived from them, PUTs
	// rotating through every node; each must land on the XOR owner.
	keys := make([]id.ID, numKeys)
	for i, v := range randx.UniqueIDs(rng, numKeys, space.Size()) {
		keys[i] = id.ID(v)
	}
	valueOf := func(key id.ID) []byte { return []byte(fmt.Sprintf("value-%d", key)) }
	for j, key := range keys {
		src := cl.Nodes[j%numNodes]
		put, err := src.Put(key, valueOf(key))
		if err != nil {
			t.Fatalf("put %d from node %d: %v", key, src.ID(), err)
		}
		if want := OwnerKademlia(members, key); put.Owner.ID != want {
			t.Fatalf("put %d landed at %d, want XOR owner %d", key, put.Owner.ID, want)
		}
	}
	copies := func(key id.ID) int {
		c := 0
		for _, n := range cl.Nodes {
			if v, _, ok := n.Item(key); ok {
				if !bytes.Equal(v, valueOf(key)) {
					t.Fatalf("node %d stores %q under key %d", n.ID(), v, key)
				}
				c++
			}
		}
		return c
	}
	waitPlacement := func(label string, deadline time.Duration) {
		end := time.Now().Add(deadline)
		for {
			short := 0
			for _, key := range keys {
				if copies(key) < factor {
					short++
				}
			}
			if short == 0 {
				return
			}
			if time.Now().After(end) {
				t.Fatalf("%s: %d/%d keys below %d copies", label, short, numKeys, factor)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	waitPlacement("initial replication", 30*time.Second)
	t.Logf("phase 1: %d keys stored, every key at >= %d copies", numKeys, factor)

	// Phase 2: partition the first numCut nodes. The divergence oracle
	// is the bucket check computed over minority members only: it holds
	// once every dead majority contact has been evicted and the
	// minority's own regions are re-covered.
	cut := make([]int, numCut)
	for i := range cut {
		cut[i] = i
	}
	minority := cl.Nodes[:numCut]
	nw.Partition("split", cl.Addrs(cut...)...)
	deadline := time.Now().Add(60 * time.Second)
	for {
		err := CheckKademliaConverged(space, minority, bucketSize)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("minority never reorganized into its own overlay: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Log("phase 2: minority reorganized into its own overlay")

	nw.Heal("split")
	if err := cl.WaitConvergedKademlia(bucketSize, 90*time.Second); err != nil {
		t.Fatalf("post-heal reconvergence: %v", err)
	}
	t.Log("phase 2: healed and reconverged to full bucket oracle")

	// Phase 3: durability. Every key must come back with its exact
	// value — through Get and through the combined FIND_VALUE walk —
	// and ownership must reconcile to exactly one owner per key.
	deadline = time.Now().Add(30 * time.Second)
	for {
		err := func() error {
			for j, key := range keys {
				src := cl.Nodes[(j*7+3)%numNodes]
				got, err := src.Get(key)
				if err != nil {
					return fmt.Errorf("get %d from node %d: %w", key, src.ID(), err)
				}
				if !bytes.Equal(got.Value, valueOf(key)) {
					t.Fatalf("key %d returned %q, want %q", key, got.Value, valueOf(key))
				}
			}
			owned := 0
			for _, n := range cl.Nodes {
				owned += n.Metrics().ItemsOwned
			}
			if owned != numKeys {
				return fmt.Errorf("%d owned items across the cluster, want %d", owned, numKeys)
			}
			return nil
		}()
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("durability not restored after heal: %v", err)
		}
		time.Sleep(250 * time.Millisecond)
	}
	for j, key := range keys {
		src := cl.Nodes[(j*11+5)%numNodes]
		got, err := src.FindValue(key)
		if err != nil {
			t.Fatalf("find-value %d from node %d: %v", key, src.ID(), err)
		}
		if !bytes.Equal(got.Value, valueOf(key)) {
			t.Fatalf("find-value %d returned %q, want %q", key, got.Value, valueOf(key))
		}
	}
	waitPlacement("post-heal replication", 30*time.Second)
	t.Logf("phase 3: all %d keys durable after heal, via GET and FIND_VALUE", numKeys)

	// Phase 4: per-source Zipf destination mix over the other nodes —
	// the same workload shape as the Chord and Pastry cluster tests, so
	// the three geometries' aux gains are comparable.
	zipf := randx.NewAlias(randx.ZipfWeights(numNodes-1, alpha))
	destsByRank := make([][]id.ID, numNodes)
	for i := range cl.Nodes {
		others := make([]id.ID, 0, numNodes-1)
		for j, n := range cl.Nodes {
			if j != i {
				others = append(others, n.ID())
			}
		}
		perm := rng.Perm(len(others))
		ranked := make([]id.ID, len(others))
		for r, p := range perm {
			ranked[r] = others[p]
		}
		destsByRank[i] = ranked
	}
	type query struct {
		src    int
		target id.ID
	}
	stream := make([]query, numNodes*perSource)
	for q := range stream {
		src := q % numNodes
		stream[q] = query{src: src, target: destsByRank[src][zipf.Sample(rng)]}
	}
	runStream := func(label string) float64 {
		total := 0
		for _, q := range stream {
			owner, hops, err := cl.Nodes[q.src].Lookup(q.target)
			if err != nil {
				t.Fatalf("%s: lookup %d from node %d: %v", label, q.target, cl.Nodes[q.src].ID(), err)
			}
			if owner.ID != q.target {
				t.Fatalf("%s: lookup %d resolved to %d", label, q.target, owner.ID)
			}
			total += hops
		}
		return float64(total) / float64(len(stream))
	}

	auxDisabled := runStream("aux-disabled")
	installed := 0
	for _, n := range cl.Nodes {
		got, err := n.RecomputeAux()
		if err != nil {
			t.Fatalf("recompute aux at node %d: %v", n.ID(), err)
		}
		installed += got
	}
	if installed == 0 {
		t.Fatal("no node installed any auxiliary neighbor")
	}
	withAux := runStream("with-aux")

	s := nw.Stats()
	t.Logf("mean hops: aux-disabled %.4f, with k=%d XOR-adapted aux %.4f (%d nodes, %d queries, %d aux installed)",
		auxDisabled, k, withAux, numNodes, len(stream), installed)
	t.Logf("memnet: %+v", s)
	if !(withAux < auxDisabled) {
		t.Fatalf("XOR-adapted aux did not reduce mean hops: aux-disabled %.4f, with-aux %.4f", auxDisabled, withAux)
	}
	if s.Blocked == 0 {
		t.Fatal("partition blocked no datagrams")
	}
	if s.Duplicated == 0 {
		t.Fatal("duplication policy never fired")
	}
	for _, n := range cl.Nodes {
		if m := n.Metrics(); m.DecodeErrors != 0 {
			t.Errorf("node %d: %d decode errors", n.ID(), m.DecodeErrors)
		}
	}
}

// TestClusterRacingBeatsSerialUnderLoss pins the point of α-parallel
// lookup racing: on a lossy network, hedging up to α probes per step
// lets a lookup win through whichever peer answers first instead of
// burning a full timeout-and-retry budget on every dropped datagram. Two
// identical seeded Chord overlays run the same lookup stream under 10%
// loss, differing only in LookupAlpha; the raced run must finish the
// stream faster with fewer retries. Failure counts are only
// sanity-bounded, not compared: which datagrams drop diverges between
// the runs as soon as their traffic differs, so a handful of
// loss-induced failures lands on either side by luck. (α=1's exact
// serial equivalence is pinned white-box in internal/node.)
func TestClusterRacingBeatsSerialUnderLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node in-process cluster test")
	}
	const (
		numNodes = 16
		lookups  = 500
		seed     = 41
	)
	run := func(alpha int) (elapsed time.Duration, failed int, retries uint64) {
		space := id.NewSpace(16)
		rng := rand.New(rand.NewSource(seed))
		ids := randx.UniqueIDs(rng, numNodes, space.Size())
		nw := memnet.New(seed)
		cl, err := Start(space, nw, ids, func(i int, cfg *node.Config) {
			cfg.LookupAlpha = alpha
			cfg.RPCRetries = 2
		})
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		if err := cl.WaitConverged(30 * time.Second); err != nil {
			t.Fatal(err)
		}
		// Loss switches on only after the ring is up, so convergence
		// and the loss experiment stay independent.
		nw.SetDefaultPolicy(memnet.LinkPolicy{Drop: 0.10})

		ring := cl.Ring()
		start := time.Now()
		for q := 0; q < lookups; q++ {
			src := cl.Nodes[q%numNodes]
			key := id.ID(rng.Uint64() & (space.Size() - 1))
			owner, _, err := src.Lookup(key)
			// An error is a full retry budget lost to drops; a wrong
			// owner is a transiently mutilated ring (drops DropPeer live
			// successors, and a node missing its predecessor overclaims).
			// Both count as the stream's loss-induced failures.
			if err != nil || owner.ID != Owner(ring, key) {
				failed++
			}
		}
		elapsed = time.Since(start)
		for _, n := range cl.Nodes {
			retries += n.Metrics().Retries
		}
		if s := nw.Stats(); s.Dropped == 0 {
			t.Fatalf("alpha %d: loss policy never fired: %+v", alpha, s)
		}
		return elapsed, failed, retries
	}

	serialT, serialFailed, serialRetries := run(1)
	racedT, racedFailed, racedRetries := run(3)
	t.Logf("serial α=1: %v, %d/%d failed, %d retries", serialT, serialFailed, lookups, serialRetries)
	t.Logf("raced  α=3: %v, %d/%d failed, %d retries", racedT, racedFailed, lookups, racedRetries)
	if max := lookups / 10; serialFailed > max || racedFailed > max {
		t.Fatalf("10%% loss broke lookups wholesale: serial %d, raced %d failed of %d (cap %d)",
			serialFailed, racedFailed, lookups, max)
	}
	if racedRetries >= serialRetries {
		t.Fatalf("racing did not cut retries under 10%% loss: α=3 spent %d, α=1 spent %d", racedRetries, serialRetries)
	}
	if racedT >= serialT {
		t.Fatalf("racing was not faster under 10%% loss: α=3 took %v, α=1 took %v", racedT, serialT)
	}
}
