// Package cluster boots whole overlays of live nodes (internal/node)
// over memnet's in-process switchboard, for tests that need scale a
// socket-per-node harness cannot reach: 50–100 nodes in one process,
// race detector on, with seeded fault injection and partitions.
//
// The harness is deliberately thin — it owns node lifecycle and the
// oracle convergence check; workloads (query streams, churn schedules,
// fault scripts) stay in the tests, where their parameters are visible
// next to the assertions they drive.
package cluster

import (
	"fmt"
	"sort"
	"time"

	"peercache/internal/id"
	"peercache/internal/memnet"
	"peercache/internal/node"
)

// Cluster is a set of running nodes sharing one memnet network.
type Cluster struct {
	Space id.Space
	Net   *memnet.Network
	Nodes []*node.Node
}

// Start boots one node per id on nw, joining each through the first.
// Node i listens on Addr(i) ("mem/<id>"). mod, when non-nil, edits each
// node's config before start — timings default to tight in-process
// values (25ms stabilize, 5ms per-finger refresh, 100ms RPC timeout,
// 1 retry). On error, every node already started is closed.
func Start(space id.Space, nw *memnet.Network, ids []uint64, mod func(i int, cfg *node.Config)) (*Cluster, error) {
	c := &Cluster{Space: space, Net: nw, Nodes: make([]*node.Node, 0, len(ids))}
	for i, x := range ids {
		cfg := node.Config{
			Space:           space,
			ID:              id.ID(x),
			Addr:            AddrFor(id.ID(x)),
			StabilizeEvery:  25 * time.Millisecond,
			FixFingersEvery: 5 * time.Millisecond,
			RPCTimeout:      100 * time.Millisecond,
			RPCRetries:      1,
			Listen: func(addr string) (node.PacketConn, error) {
				return nw.Listen(addr)
			},
		}
		if mod != nil {
			mod(i, &cfg)
		}
		n, err := node.Start(cfg)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("cluster: start node %d: %w", x, err)
		}
		c.Nodes = append(c.Nodes, n)
		if i > 0 {
			if err := n.Join(c.Nodes[0].Addr()); err != nil {
				c.Close()
				return nil, fmt.Errorf("cluster: join node %d: %w", x, err)
			}
		}
	}
	return c, nil
}

// AddrFor is the memnet address convention for a node id; exported so
// harnesses that manage node lifecycle themselves (internal/soak) stay
// address-compatible with clusters started here.
func AddrFor(x id.ID) string { return fmt.Sprintf("mem/%d", uint64(x)) }

// Addr returns node i's transport address (for partition scripts).
func (c *Cluster) Addr(i int) string { return c.Nodes[i].Addr() }

// Addrs returns the transport addresses of the given node indices.
func (c *Cluster) Addrs(indices ...int) []string {
	out := make([]string, len(indices))
	for j, i := range indices {
		out[j] = c.Addr(i)
	}
	return out
}

// Close shuts every node down.
func (c *Cluster) Close() {
	for _, n := range c.Nodes {
		n.Close()
	}
}

// Ring returns the node ids in ring (ascending) order.
func (c *Cluster) Ring() []id.ID {
	ring := make([]id.ID, len(c.Nodes))
	for i, n := range c.Nodes {
		ring[i] = n.ID()
	}
	sort.Slice(ring, func(i, j int) bool { return ring[i] < ring[j] })
	return ring
}

// ExpectedFingers computes the converged finger list of x over the
// ring: finger i is the nearest node whose clockwise gap from x lies in
// (2^i, 2^{i+1}], with consecutive duplicates elided — the same oracle
// the simulator's protocol tests derive. The nearest-in-interval node
// is found by binary search over the sorted ring, so one call is
// O(n log n) in the sort instead of the old O(bits·n) scan — the
// difference between a 1k-node convergence poll finishing in
// microseconds and dominating the harness's wall-clock.
func ExpectedFingers(space id.Space, ring []id.ID, x id.ID) []id.ID {
	sorted := ring
	if !sort.SliceIsSorted(sorted, func(i, j int) bool { return sorted[i] < sorted[j] }) {
		sorted = append([]id.ID(nil), ring...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	}
	var out []id.ID
	for i := uint(0); i < space.Bits(); i++ {
		// The interval's first position clockwise from x is x+2^i+1;
		// its clockwise-nearest member is the one the old linear scan's
		// min-gap rule selected (Gap(x, x) is 0, so x itself never
		// qualifies).
		t := space.Add(x, uint64(1)<<i+1)
		j := sort.Search(len(sorted), func(k int) bool { return sorted[k] >= t })
		if j == len(sorted) {
			j = 0
		}
		g := space.Gap(x, sorted[j])
		if g > uint64(1)<<i && g <= uint64(1)<<(i+1) &&
			(len(out) == 0 || out[len(out)-1] != sorted[j]) {
			out = append(out, sorted[j])
		}
	}
	return out
}

// Owner returns the ring member responsible for key k: the first id
// clockwise from k, inclusive.
func Owner(ring []id.ID, k id.ID) id.ID {
	for _, x := range ring {
		if uint64(x) >= uint64(k) {
			return x
		}
	}
	return ring[0]
}

// RingOf returns the given nodes' ids in ring (ascending) order — the
// membership oracle the Check* functions judge against.
func RingOf(nodes []*node.Node) []id.ID {
	ring := make([]id.ID, len(nodes))
	for i, n := range nodes {
		ring[i] = n.ID()
	}
	sort.Slice(ring, func(i, j int) bool { return ring[i] < ring[j] })
	return ring
}

// CheckChordConverged is the Chord convergence oracle as a pure,
// single-shot check over an arbitrary node list: every node's
// successor, predecessor, and finger table must match the ideal ring
// of exactly those nodes. It returns the first mismatch, nil when
// converged. WaitConverged polls it; harnesses with their own clock
// (internal/soak) call it directly.
func CheckChordConverged(space id.Space, nodes []*node.Node) error {
	ring := RingOf(nodes)
	pos := make(map[id.ID]int, len(ring))
	for i, x := range ring {
		pos[x] = i
	}
	for _, n := range nodes {
		i := pos[n.ID()]
		wantSucc := ring[(i+1)%len(ring)]
		wantPred := ring[(i+len(ring)-1)%len(ring)]
		if got := n.Successor(); got.ID != wantSucc {
			return fmt.Errorf("node %d successor %d, want %d", n.ID(), got.ID, wantSucc)
		}
		if p, ok := n.Predecessor(); !ok || p.ID != wantPred {
			return fmt.Errorf("node %d predecessor %v (%t), want %d", n.ID(), p.ID, ok, wantPred)
		}
		got := n.Fingers()
		want := ExpectedFingers(space, ring, n.ID())
		if len(got) != len(want) {
			return fmt.Errorf("node %d has %d fingers, want %d", n.ID(), len(got), len(want))
		}
		for j := range got {
			if got[j].ID != want[j] {
				return fmt.Errorf("node %d finger %d is %d, want %d", n.ID(), j, got[j].ID, want[j])
			}
		}
	}
	return nil
}

// WaitConverged polls CheckChordConverged until every node's successor,
// predecessor, and finger table match the ideal ring of the cluster's
// current members, or the timeout passes, in which case it returns the
// last mismatch.
func (c *Cluster) WaitConverged(timeout time.Duration) error {
	var last error
	for end := time.Now().Add(timeout); time.Now().Before(end); {
		if last = CheckChordConverged(c.Space, c.Nodes); last == nil {
			return nil
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("cluster: not converged after %v: %w", timeout, last)
}
