package cluster

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"peercache/internal/id"
	"peercache/internal/memnet"
	"peercache/internal/node"
	"peercache/internal/randx"
)

// TestClusterKVDurabilityAndItemAuxGain is the acceptance test for the
// live data plane: 56 nodes over memnet storing a real keyspace, with
// replication factor 2 and the item cache disabled so every number below
// is about routing and durability, not local caching. Phases:
//
//  1. Boot, converge, PUT every key through rotating sources, and wait
//     until replication has given each key at least factor copies.
//  2. Cut 12 nodes off, wait for the minority to diverge into its own
//     subring (both sides promote replicas they are now responsible
//     for), then heal.
//  3. After oracle reconvergence, require full durability: every key
//     GETs its exact value, ownership reconciles back to exactly one
//     owner per key, and the replica placement recovers to ≥ factor
//     copies — no owned key lost across the partition.
//  4. Drive a per-source Zipf GET stream twice: aux-disabled while the
//     frequency observers accumulate the *key* ids, then after every
//     node recomputes its auxiliary set from that item-driven
//     distribution. The with-aux mean GET hop count must undercut the
//     baseline by at least 30% (PR 2's control-plane analogue measured
//     2.22 → 1.10 on node-id streams), and some of the installed aux
//     pointers must be position-aliased — sitting on a key's ring
//     position, addressed at its owner.
//
// Everything is seeded; runs race-enabled within the package's
// two-minute budget.
func TestClusterKVDurabilityAndItemAuxGain(t *testing.T) {
	if testing.Short() {
		t.Skip("56-node in-process cluster test")
	}
	const (
		numNodes  = 56
		numCut    = 12
		numKeys   = 80
		k         = 8 // auxiliary budget
		factor    = 2 // replication factor
		alpha     = 1.2
		perSource = 30
		seed      = 23
	)
	space := id.NewSpace(16)
	rng := rand.New(rand.NewSource(seed))
	ids := randx.UniqueIDs(rng, numNodes, space.Size())

	nw := memnet.New(seed)
	nw.SetDefaultPolicy(memnet.LinkPolicy{
		Dup:      0.02,
		MaxDelay: time.Millisecond,
	})

	cl, err := Start(space, nw, ids, func(i int, cfg *node.Config) {
		cfg.AuxCount = k
		cfg.AuxEvery = 0 // recomputation driven explicitly between passes
		cfg.ReplicationFactor = factor
		cfg.ReplicateEvery = 150 * time.Millisecond
		cfg.ItemCacheCapacity = -1 // hop counts must measure routing, not caching
		// This is the suite's heaviest RPC stream (3360 gets over 56
		// nodes); under the race detector a scheduling stall can exceed
		// the default two 100ms attempts, so give every call one more.
		cfg.RPCRetries = 2
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.WaitConverged(60 * time.Second); err != nil {
		t.Fatalf("initial convergence: %v", err)
	}
	ring := cl.Ring()
	nodeIDs := make(map[id.ID]bool, numNodes)
	for _, x := range ring {
		nodeIDs[x] = true
	}

	// Phase 1: populate. Keys are random ring positions, values derived
	// from them; PUTs rotate through every node as source.
	keys := make([]id.ID, numKeys)
	for i, v := range randx.UniqueIDs(rng, numKeys, space.Size()) {
		keys[i] = id.ID(v)
	}
	valueOf := func(key id.ID) []byte { return []byte(fmt.Sprintf("value-%d", key)) }
	for j, key := range keys {
		src := cl.Nodes[j%numNodes]
		put, err := src.Put(key, valueOf(key))
		if err != nil {
			t.Fatalf("put %d from node %d: %v", key, src.ID(), err)
		}
		if want := Owner(ring, key); put.Owner.ID != want {
			t.Fatalf("put %d landed at %d, want owner %d", key, put.Owner.ID, want)
		}
	}
	// copies counts the nodes holding key in their store (owner or
	// replica — never the disabled cache).
	copies := func(key id.ID) int {
		c := 0
		for _, n := range cl.Nodes {
			if v, _, ok := n.Item(key); ok {
				if !bytes.Equal(v, valueOf(key)) {
					t.Fatalf("node %d stores %q under key %d", n.ID(), v, key)
				}
				c++
			}
		}
		return c
	}
	waitPlacement := func(label string, deadline time.Duration) {
		end := time.Now().Add(deadline)
		for {
			short := 0
			for _, key := range keys {
				if copies(key) < factor {
					short++
				}
			}
			if short == 0 {
				return
			}
			if time.Now().After(end) {
				t.Fatalf("%s: %d/%d keys below %d copies", label, short, numKeys, factor)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	waitPlacement("initial replication", 30*time.Second)
	t.Logf("phase 1: %d keys stored, every key at >= %d copies", numKeys, factor)

	// Phase 2: partition the first numCut nodes; both sides reorganize
	// and promote the replicas they have become responsible for.
	cut := make([]int, numCut)
	minorityRing := make([]id.ID, numCut)
	for i := range cut {
		cut[i] = i
		minorityRing[i] = cl.Nodes[i].ID()
	}
	sortIDs(minorityRing)
	nw.Partition("split", cl.Addrs(cut...)...)
	deadline := time.Now().Add(45 * time.Second)
	for {
		err := func() error {
			for _, i := range cut {
				n := cl.Nodes[i]
				if got, want := n.Successor().ID, ringSuccessor(minorityRing, n.ID()); got != want {
					return fmt.Errorf("minority node %d successor %d, want %d", n.ID(), got, want)
				}
			}
			return nil
		}()
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("minority never formed its own subring: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Log("phase 2: minority diverged into its own subring")

	nw.Heal("split")
	if err := cl.WaitConverged(60 * time.Second); err != nil {
		t.Fatalf("post-heal reconvergence: %v", err)
	}

	// Phase 3: durability. Every key must come back with its exact
	// value; ownership must reconcile to exactly one owner per key
	// (promoted duplicates demote once responsibility returns); and the
	// replica placement must recover to the full factor.
	deadline = time.Now().Add(30 * time.Second)
	for {
		err := func() error {
			for j, key := range keys {
				src := cl.Nodes[(j*7+3)%numNodes]
				got, err := src.Get(key)
				if err != nil {
					return fmt.Errorf("get %d from node %d: %w", key, src.ID(), err)
				}
				if !bytes.Equal(got.Value, valueOf(key)) {
					t.Fatalf("key %d returned %q, want %q", key, got.Value, valueOf(key))
				}
			}
			owned := 0
			for _, n := range cl.Nodes {
				owned += n.Metrics().ItemsOwned
			}
			if owned != numKeys {
				return fmt.Errorf("%d owned items across the cluster, want %d", owned, numKeys)
			}
			return nil
		}()
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("durability not restored after heal: %v", err)
		}
		time.Sleep(250 * time.Millisecond)
	}
	waitPlacement("post-heal replication", 30*time.Second)
	promotions := uint64(0)
	for _, n := range cl.Nodes {
		promotions += n.Metrics().Promotions
	}
	if promotions == 0 {
		t.Fatal("partition+heal exercised no replica promotion")
	}
	t.Logf("phase 3: all %d keys durable after heal (%d promotions cluster-wide)", numKeys, promotions)

	// Phase 4: per-source Zipf popularity over the keyspace.
	alias := randx.NewAlias(randx.ZipfWeights(numKeys, alpha))
	keysByRank := make([][]id.ID, numNodes)
	for i := range cl.Nodes {
		perm := rng.Perm(numKeys)
		ranked := make([]id.ID, numKeys)
		for r, p := range perm {
			ranked[r] = keys[p]
		}
		keysByRank[i] = ranked
	}
	type query struct {
		src int
		key id.ID
	}
	stream := make([]query, numNodes*perSource)
	for q := range stream {
		src := q % numNodes
		stream[q] = query{src: src, key: keysByRank[src][alias.Sample(rng)]}
	}
	runStream := func(label string) float64 {
		total := 0
		for _, q := range stream {
			got, err := cl.Nodes[q.src].Get(q.key)
			if err != nil {
				t.Fatalf("%s: get %d from node %d: %v", label, q.key, cl.Nodes[q.src].ID(), err)
			}
			if !bytes.Equal(got.Value, valueOf(q.key)) {
				t.Fatalf("%s: key %d returned %q", label, q.key, got.Value)
			}
			total += got.Hops
		}
		return float64(total) / float64(len(stream))
	}

	baseline := runStream("aux-disabled")
	installed, aliased := 0, 0
	for _, n := range cl.Nodes {
		got, err := n.RecomputeAux()
		if err != nil {
			t.Fatalf("recompute aux at node %d: %v", n.ID(), err)
		}
		installed += got
		for _, a := range n.Aux() {
			if !nodeIDs[a.ID] {
				aliased++
			}
		}
	}
	if installed == 0 {
		t.Fatal("no node installed any auxiliary neighbor")
	}
	if aliased == 0 {
		t.Fatal("no position-aliased aux pointer: item-driven selection never targeted a key position")
	}
	withAux := runStream("with-aux")

	t.Logf("mean GET hops: aux-disabled %.4f, item-driven k=%d aux %.4f (%d aux installed, %d position-aliased)",
		baseline, k, withAux, installed, aliased)
	t.Logf("memnet: %+v", nw.Stats())
	if withAux > 0.70*baseline {
		t.Fatalf("item-driven aux cut mean GET hops only %.4f -> %.4f; need >= 30%% reduction",
			baseline, withAux)
	}
	for _, n := range cl.Nodes {
		if m := n.Metrics(); m.DecodeErrors != 0 {
			t.Errorf("node %d: %d decode errors", n.ID(), m.DecodeErrors)
		}
	}
}
