package cluster

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"peercache/internal/id"
	"peercache/internal/memnet"
	"peercache/internal/node"
	"peercache/internal/randx"
)

// TestClusterQoSAuxBeatsHopGreedyP99 is the end-to-end acceptance test
// for latency-aware aux selection: on a seeded two-region WAN topology,
// QoS placement (measured RTTs as costs, delay bound forcing direct
// pointers to over-bound peers) must beat plain hop-greedy placement on
// p99 lookup latency for the same overlay and the same query stream.
//
// Region assignment follows id bands — the nodes in the top id band
// live across the WAN. Chord routing closes in on a target through its
// id neighborhood, so a cross-region walk spends its final hops probing
// far-region nodes: two to three WAN round trips per far lookup. That
// is the regime where a direct pointer pays, and exactly what the
// paper's Section V delay bounds encode. Each source's query mix is
// heavy near-region traffic plus a light tail of far-region targets:
//
//   - hop-greedy selection spends every aux slot on the high-frequency
//     near targets (cheap lookups that were already cheap), so the far
//     tail keeps paying multi-WAN walks — that tail is the p99;
//   - QoS selection sees the far targets' measured RTTs above the delay
//     bound and pins direct pointers to them, collapsing the tail to a
//     single WAN round trip.
//
// Everything is seeded; the test runs race-enabled in CI.
func TestClusterQoSAuxBeatsHopGreedyP99(t *testing.T) {
	if testing.Short() {
		t.Skip("36-node WAN cluster test")
	}
	const (
		numNodes   = 36
		numFar     = 10 // top id band lives across the WAN
		k          = 6  // aux budget
		nearPerSrc = 6
		farPerSrc  = 4
		nearReps   = 10
		farReps    = 2
		rttProbes  = 3
		seed       = 71
	)
	space := id.NewSpace(16)
	rng := rand.New(rand.NewSource(seed))
	ids := randx.UniqueIDs(rng, numNodes, space.Size())

	sorted := append([]uint64(nil), ids...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	farSet := make(map[uint64]bool, numFar)
	for _, x := range sorted[numNodes-numFar:] {
		farSet[x] = true
	}

	nw := memnet.New(seed)
	topo := memnet.NewWANTopology(seed, memnet.WANOptions{Regions: 2, Scale: 0.16})
	for _, x := range ids {
		r := 0
		if farSet[x] {
			r = 1
		}
		topo.Pin(AddrFor(id.ID(x)), r)
	}
	nw.SetTopology(topo)

	// The topology is deterministic, so the delay envelope is known
	// before any node starts: the delay bound must separate every
	// intra-region RTT from every cross-region RTT, or the test's
	// premise (far peers over bound, near peers under) doesn't hold.
	var maxNear, minFar time.Duration
	minFar = time.Hour
	for _, a := range ids {
		for _, b := range ids {
			if a == b {
				continue
			}
			d := topo.Delay(AddrFor(id.ID(a)), AddrFor(id.ID(b)))
			switch {
			case farSet[a] != farSet[b]:
				if d < minFar {
					minFar = d
				}
			case !farSet[a]:
				if d > maxNear {
					maxNear = d
				}
			}
		}
	}
	if minFar < 2*maxNear {
		t.Fatalf("seed %d: WAN separation too weak (max intra %v, min inter %v); pick another seed", seed, maxNear, minFar)
	}
	bound := maxNear + minFar // between the worst near RTT and the best far RTT
	t.Logf("topology: intra one-way ≤ %v, inter one-way ≥ %v, delay bound %v", maxNear, minFar, bound)

	cl, err := Start(space, nw, ids, func(i int, cfg *node.Config) {
		cfg.AuxCount = k
		cfg.AuxEvery = 0 // recomputation driven explicitly between arms
		cfg.AuxQoSDelayBound = bound
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.WaitConverged(120 * time.Second); err != nil {
		t.Fatalf("initial convergence: %v", err)
	}

	// Sources are the near-region nodes. Each draws a seeded target mix:
	// heavy near traffic, light far tail.
	type source struct {
		n    *node.Node
		near []id.ID
		far  []id.ID
	}
	var nearIDs, farIDs []id.ID
	for _, x := range ids {
		if farSet[x] {
			farIDs = append(farIDs, id.ID(x))
		} else {
			nearIDs = append(nearIDs, id.ID(x))
		}
	}
	pick := func(from []id.ID, count int, self id.ID) []id.ID {
		perm := rng.Perm(len(from))
		out := make([]id.ID, 0, count)
		for _, p := range perm {
			if from[p] == self {
				continue
			}
			out = append(out, from[p])
			if len(out) == count {
				break
			}
		}
		return out
	}
	var sources []source
	for _, n := range cl.Nodes {
		if farSet[uint64(n.ID())] {
			continue
		}
		sources = append(sources, source{
			n:    n,
			near: pick(nearIDs, nearPerSrc, n.ID()),
			far:  pick(farIDs, farPerSrc, n.ID()),
		})
	}

	// Prime the RTT estimators: chord resolves a target at its
	// predecessor, so the lookup stream alone never times the far
	// targets themselves. Active probes are how a latency-aware node
	// measures candidates (Node.Ping feeds the estimator).
	for _, s := range sources {
		for _, tgt := range append(append([]id.ID(nil), s.near...), s.far...) {
			for p := 0; p < rttProbes; p++ {
				if err := s.n.Ping(AddrFor(tgt)); err != nil {
					t.Fatalf("rtt probe %d → %d: %v", s.n.ID(), tgt, err)
				}
			}
		}
	}

	// runStream drives every source's mix concurrently (one worker per
	// source, serial within a source) and returns the merged per-lookup
	// wall latencies.
	runStream := func(label string) []time.Duration {
		perSrc := make([][]time.Duration, len(sources))
		var wg sync.WaitGroup
		for i, s := range sources {
			wg.Add(1)
			go func(i int, s source) {
				defer wg.Done()
				var lat []time.Duration
				for rep := 0; rep < nearReps; rep++ {
					for _, tgt := range s.near {
						start := time.Now()
						if _, _, err := s.n.Lookup(tgt); err != nil {
							t.Errorf("%s: near lookup %d from %d: %v", label, tgt, s.n.ID(), err)
							return
						}
						lat = append(lat, time.Since(start))
					}
					if rep < farReps {
						for _, tgt := range s.far {
							start := time.Now()
							if _, _, err := s.n.Lookup(tgt); err != nil {
								t.Errorf("%s: far lookup %d from %d: %v", label, tgt, s.n.ID(), err)
								return
							}
							lat = append(lat, time.Since(start))
						}
					}
				}
				perSrc[i] = lat
			}(i, s)
		}
		wg.Wait()
		var all []time.Duration
		for _, l := range perSrc {
			all = append(all, l...)
		}
		return all
	}
	pct := func(lat []time.Duration, p float64) time.Duration {
		s := append([]time.Duration(nil), lat...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		return s[int(float64(len(s)-1)*p)]
	}
	recomputeAll := func(label string) {
		installed := 0
		for _, n := range cl.Nodes {
			got, err := n.RecomputeAux()
			if err != nil {
				t.Fatalf("%s recompute at node %d: %v", label, n.ID(), err)
			}
			installed += got
		}
		if installed == 0 {
			t.Fatalf("%s recompute installed no auxiliary neighbors", label)
		}
	}

	// Arm 1: observe the workload, then hop-greedy placement.
	runStream("observe")
	recomputeAll("hop-greedy")
	hop := runStream("hop-greedy")

	// Arm 2: same overlay, same stream, QoS placement.
	for _, n := range cl.Nodes {
		n.SetAuxQoS(true)
	}
	recomputeAll("qos")
	var selects, infeasible uint64
	for _, n := range cl.Nodes {
		m := n.Metrics()
		selects += m.AuxQoSSelects
		infeasible += m.AuxQoSInfeasible
	}
	if selects == 0 {
		t.Fatal("no node ran the QoS selection")
	}
	qos := runStream("qos")

	hopP50, hopP99 := pct(hop, 0.50), pct(hop, 0.99)
	qosP50, qosP99 := pct(qos, 0.50), pct(qos, 0.99)
	t.Logf("hop-greedy: p50 %v p99 %v (%d lookups)", hopP50, hopP99, len(hop))
	t.Logf("qos:        p50 %v p99 %v (%d lookups; %d selects, %d infeasible fallbacks)",
		qosP50, qosP99, len(qos), selects, infeasible)
	if !(qosP99 < hopP99) {
		t.Fatalf("QoS placement did not improve p99: hop-greedy %v, qos %v", hopP99, qosP99)
	}
}
