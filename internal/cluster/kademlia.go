package cluster

import (
	"fmt"
	"time"

	"peercache/internal/id"
	"peercache/internal/node"
	"peercache/internal/node/kadring"
)

// OwnerKademlia returns the member responsible for key under the XOR
// metric: the one closest to the key. Distinct ids never tie in XOR
// distance, so the owner is unique — the Kademlia analogue of Owner.
func OwnerKademlia(members []id.ID, key id.ID) id.ID {
	best := members[0]
	for _, x := range members[1:] {
		if uint64(x)^uint64(key) < uint64(best)^uint64(key) {
			best = x
		}
	}
	return best
}

// ExpectedBucket returns the members of x's bucket-i region: every
// other member sharing exactly i leading bits with x. A converged
// k-bucket holds min(|region|, bucketSize) of these — all of them when
// the region fits.
func ExpectedBucket(space id.Space, members []id.ID, x id.ID, i uint) []id.ID {
	var out []id.ID
	for _, y := range members {
		if y != x && space.CommonPrefixLen(x, y) == i {
			out = append(out, y)
		}
	}
	return out
}

// CheckKademliaConverged is the Kademlia convergence oracle as a pure,
// single-shot check over an arbitrary node list: every node's bucket i
// must hold exactly min(|region_i|, bucketSize) live members whose
// common prefix length with the node is exactly i, with set equality
// whenever the region fits the bucket (a region larger than the bucket
// leaves the choice of which k members to keep to LRU order, so only
// fullness and membership are checked there). The nodes must have been
// started with kadring.New and bucketSize as their BucketSize. It
// returns the first mismatch, nil when converged. WaitConvergedKademlia
// polls it; harnesses with their own clock (internal/soak) call it
// directly.
func CheckKademliaConverged(space id.Space, nodes []*node.Node, bucketSize int) error {
	members := RingOf(nodes)
	member := make(map[id.ID]bool, len(members))
	for _, x := range members {
		member[x] = true
	}
	for _, n := range nodes {
		kr, ok := n.Ring().(*kadring.Ring)
		if !ok {
			return fmt.Errorf("node %d is not a kadring node", n.ID())
		}
		buckets := kr.Buckets()
		// One O(n) pass partitions the membership into all bucket
		// regions at once; calling ExpectedBucket per bit repeats the
		// membership scan bits times per node, which is what made this
		// oracle quadratic-per-poll at 1k nodes.
		regions := make([][]id.ID, space.Bits())
		for _, y := range members {
			if y != n.ID() {
				cpl := space.CommonPrefixLen(n.ID(), y)
				regions[cpl] = append(regions[cpl], y)
			}
		}
		for i := uint(0); i < space.Bits(); i++ {
			region := regions[i]
			want := len(region)
			if want > bucketSize {
				want = bucketSize
			}
			got := buckets[i]
			if len(got) != want {
				return fmt.Errorf("node %d bucket %d has %d entries, want %d (region %d)",
					n.ID(), i, len(got), want, len(region))
			}
			seen := make(map[id.ID]bool, len(got))
			for _, c := range got {
				if !member[c.ID] {
					return fmt.Errorf("node %d bucket %d holds non-member %d", n.ID(), i, c.ID)
				}
				if cpl := space.CommonPrefixLen(n.ID(), c.ID); cpl != i {
					return fmt.Errorf("node %d bucket %d holds %d with prefix %d", n.ID(), i, c.ID, cpl)
				}
				if seen[c.ID] {
					return fmt.Errorf("node %d bucket %d holds %d twice", n.ID(), i, c.ID)
				}
				seen[c.ID] = true
			}
			if len(region) <= bucketSize {
				for _, y := range region {
					if !seen[y] {
						return fmt.Errorf("node %d bucket %d missing region member %d", n.ID(), i, y)
					}
				}
			}
		}
	}
	return nil
}

// WaitConvergedKademlia polls CheckKademliaConverged until every node's
// buckets match the expected-bucket-coverage oracle, or the timeout
// passes, in which case it returns the last mismatch.
func (c *Cluster) WaitConvergedKademlia(bucketSize int, timeout time.Duration) error {
	var last error
	for end := time.Now().Add(timeout); time.Now().Before(end); {
		if last = CheckKademliaConverged(c.Space, c.Nodes, bucketSize); last == nil {
			return nil
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("cluster: kademlia not converged after %v: %w", timeout, last)
}
