package cluster

import (
	"math/rand"
	"testing"
	"time"

	"peercache/internal/id"
	"peercache/internal/memnet"
	"peercache/internal/node"
	"peercache/internal/node/pastryring"
	"peercache/internal/randx"
)

// TestClusterPastryAuxGain is the acceptance test for the pluggable
// routing geometry: the same 56-node memnet overlay the Chord cluster
// test runs, but with every node on pastryring — leaf sets and prefix
// rows maintained over TLeafProbe/TRowExchange instead of successor
// stabilization — under duplication and latency jitter. Phases:
//
//  1. Boot through the Pastry join walk and converge to the leaf-set
//     and coverable-row oracle.
//  2. Drive a per-source Zipf lookup stream twice — core-only while the
//     frequency observers accumulate, then after every node runs the
//     paper's greedy Pastry selection (core.PastryMaintainer) over what
//     it observed — and require the with-aux mean hop count strictly
//     below core-only.
//
// Everything is seeded; the whole test runs race-enabled.
func TestClusterPastryAuxGain(t *testing.T) {
	if testing.Short() {
		t.Skip("56-node in-process cluster test")
	}
	const (
		numNodes  = 56
		leafHalf  = 4
		k         = 8 // auxiliary budget
		alpha     = 1.2
		perSource = 50
		seed      = 23
	)
	space := id.NewSpace(16)
	rng := rand.New(rand.NewSource(seed))
	ids := randx.UniqueIDs(rng, numNodes, space.Size())

	nw := memnet.New(seed)
	nw.SetDefaultPolicy(memnet.LinkPolicy{
		Dup:      0.02,
		MaxDelay: time.Millisecond, // jitter ⇒ reordering
	})

	cl, err := Start(space, nw, ids, func(i int, cfg *node.Config) {
		cfg.NewRing = pastryring.New
		cfg.SuccessorListLen = leafHalf
		cfg.AuxCount = k
		cfg.AuxEvery = 0 // recomputation driven explicitly between passes
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for _, n := range cl.Nodes {
		if got := n.Protocol(); got != "pastry" {
			t.Fatalf("node %d protocol %q, want pastry", n.ID(), got)
		}
	}
	if err := cl.WaitConvergedPastry(leafHalf, 60*time.Second); err != nil {
		t.Fatalf("initial convergence: %v", err)
	}
	t.Log("phase 1: converged to pastry leaf/row oracle")

	// Phase 2: per-source Zipf destination mix over the other nodes,
	// with a node-specific popularity ranking — the same workload shape
	// as the Chord cluster test, so the two geometries' aux gains are
	// comparable.
	alias := randx.NewAlias(randx.ZipfWeights(numNodes-1, alpha))
	destsByRank := make([][]id.ID, numNodes)
	for i := range cl.Nodes {
		others := make([]id.ID, 0, numNodes-1)
		for j, n := range cl.Nodes {
			if j != i {
				others = append(others, n.ID())
			}
		}
		perm := rng.Perm(len(others))
		ranked := make([]id.ID, len(others))
		for r, p := range perm {
			ranked[r] = others[p]
		}
		destsByRank[i] = ranked
	}
	type query struct {
		src    int
		target id.ID
	}
	stream := make([]query, numNodes*perSource)
	for q := range stream {
		src := q % numNodes
		stream[q] = query{src: src, target: destsByRank[src][alias.Sample(rng)]}
	}
	runStream := func(label string) float64 {
		total := 0
		for _, q := range stream {
			owner, hops, err := cl.Nodes[q.src].Lookup(q.target)
			if err != nil {
				t.Fatalf("%s: lookup %d from node %d: %v", label, q.target, cl.Nodes[q.src].ID(), err)
			}
			if owner.ID != q.target {
				t.Fatalf("%s: lookup %d resolved to %d", label, q.target, owner.ID)
			}
			total += hops
		}
		return float64(total) / float64(len(stream))
	}

	coreOnly := runStream("core-only")
	for _, n := range cl.Nodes {
		if len(n.Aux()) != 0 {
			t.Fatalf("node %d has auxiliary neighbors before any recompute", n.ID())
		}
	}
	installed := 0
	for _, n := range cl.Nodes {
		got, err := n.RecomputeAux()
		if err != nil {
			t.Fatalf("recompute aux at node %d: %v", n.ID(), err)
		}
		installed += got
	}
	if installed == 0 {
		t.Fatal("no node installed any auxiliary neighbor")
	}
	withAux := runStream("with-aux")

	s := nw.Stats()
	t.Logf("mean hops: core-only %.4f, with k=%d aux %.4f (%d nodes, %d queries, %d aux installed)",
		coreOnly, k, withAux, numNodes, len(stream), installed)
	t.Logf("memnet: %+v", s)
	if !(withAux < coreOnly) {
		t.Fatalf("auxiliary neighbors did not reduce mean hops: core-only %.4f, with-aux %.4f", coreOnly, withAux)
	}
	if s.Duplicated == 0 {
		t.Fatal("duplication policy never fired")
	}
	for _, n := range cl.Nodes {
		if m := n.Metrics(); m.DecodeErrors != 0 {
			t.Errorf("node %d: %d decode errors", n.ID(), m.DecodeErrors)
		}
	}
}
