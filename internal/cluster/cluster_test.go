package cluster

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"peercache/internal/id"
	"peercache/internal/memnet"
	"peercache/internal/node"
	"peercache/internal/randx"
)

// TestClusterPartitionHealAuxGain is the acceptance test for the
// transport-agnostic runtime: 56 nodes in one process over memnet —
// far past what socket-per-node loopback tests could reach — under
// duplication and latency jitter, surviving a 12-node partition and
// heal, and still delivering the paper's core claim. Phases:
//
//  1. Boot and converge to the oracle ring.
//  2. Raise a named partition isolating 12 nodes; wait until the
//     minority provably diverges into its own subring (every minority
//     successor pointer is the minority-oracle successor).
//  3. Heal; the runtime's heal probe must re-merge both rings back to
//     the full-oracle successor/predecessor/finger state.
//  4. Drive a per-source Zipf lookup stream twice — core-only while
//     the frequency observers accumulate, then after every node
//     recomputes its auxiliary set (eq. 1) from what it observed — and
//     require the with-aux mean hop count strictly below core-only.
//
// Everything is seeded; the whole test runs race-enabled in well under
// the two-minute budget.
func TestClusterPartitionHealAuxGain(t *testing.T) {
	if testing.Short() {
		t.Skip("56-node in-process cluster test")
	}
	const (
		numNodes  = 56
		numCut    = 12 // partitioned minority
		k         = 8  // auxiliary budget
		alpha     = 1.2
		perSource = 50
		seed      = 17
	)
	space := id.NewSpace(16)
	rng := rand.New(rand.NewSource(seed))
	ids := randx.UniqueIDs(rng, numNodes, space.Size())

	nw := memnet.New(seed)
	nw.SetDefaultPolicy(memnet.LinkPolicy{
		Dup:      0.02,
		MaxDelay: time.Millisecond, // jitter ⇒ reordering
	})

	cl, err := Start(space, nw, ids, func(i int, cfg *node.Config) {
		cfg.AuxCount = k
		cfg.AuxEvery = 0 // recomputation driven explicitly between passes
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.WaitConverged(60 * time.Second); err != nil {
		t.Fatalf("initial convergence: %v", err)
	}
	t.Log("phase 1: converged to oracle ring")

	// Phase 2: cut the first numCut nodes off. The two sides must each
	// reorganize into a self-consistent subring — the divergence that
	// makes healing non-trivial, because no routing-state pointer
	// crosses the boundary anymore.
	cut := make([]int, numCut)
	minoritySet := make(map[id.ID]bool, numCut)
	for i := range cut {
		cut[i] = i
		minoritySet[cl.Nodes[i].ID()] = true
	}
	minorityRing := make([]id.ID, 0, numCut)
	for x := range minoritySet {
		minorityRing = append(minorityRing, x)
	}
	sortIDs(minorityRing)
	nw.Partition("split", cl.Addrs(cut...)...)

	minoritySucc := func() error {
		for _, i := range cut {
			n := cl.Nodes[i]
			want := ringSuccessor(minorityRing, n.ID())
			if got := n.Successor(); got.ID != want {
				return fmt.Errorf("minority node %d successor %d, want %d", n.ID(), got.ID, want)
			}
		}
		return nil
	}
	deadline := time.Now().Add(45 * time.Second)
	for {
		if err := minoritySucc(); err == nil {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("minority never formed its own subring: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Log("phase 2: minority diverged into its own subring")

	// Phase 3: heal. Only the heal probe can re-merge the rings —
	// stabilize and notify never leave the current routing state — so
	// full reconvergence to the oracle is the probe's acceptance test.
	nw.Heal("split")
	if err := cl.WaitConverged(60 * time.Second); err != nil {
		t.Fatalf("post-heal reconvergence: %v", err)
	}
	t.Log("phase 3: healed and reconverged to oracle ring")

	// Phase 4: per-source Zipf destination mix over the other nodes,
	// with a node-specific popularity ranking.
	alias := randx.NewAlias(randx.ZipfWeights(numNodes-1, alpha))
	destsByRank := make([][]id.ID, numNodes)
	for i := range cl.Nodes {
		others := make([]id.ID, 0, numNodes-1)
		for j, n := range cl.Nodes {
			if j != i {
				others = append(others, n.ID())
			}
		}
		perm := rng.Perm(len(others))
		ranked := make([]id.ID, len(others))
		for r, p := range perm {
			ranked[r] = others[p]
		}
		destsByRank[i] = ranked
	}
	type query struct {
		src    int
		target id.ID
	}
	stream := make([]query, numNodes*perSource)
	for q := range stream {
		src := q % numNodes
		stream[q] = query{src: src, target: destsByRank[src][alias.Sample(rng)]}
	}
	runStream := func(label string) float64 {
		total := 0
		for _, q := range stream {
			owner, hops, err := cl.Nodes[q.src].Lookup(q.target)
			if err != nil {
				t.Fatalf("%s: lookup %d from node %d: %v", label, q.target, cl.Nodes[q.src].ID(), err)
			}
			if owner.ID != q.target {
				t.Fatalf("%s: lookup %d resolved to %d", label, q.target, owner.ID)
			}
			total += hops
		}
		return float64(total) / float64(len(stream))
	}

	coreOnly := runStream("core-only")
	for _, n := range cl.Nodes {
		if len(n.Aux()) != 0 {
			t.Fatalf("node %d has auxiliary neighbors before any recompute", n.ID())
		}
	}
	installed := 0
	for _, n := range cl.Nodes {
		got, err := n.RecomputeAux()
		if err != nil {
			t.Fatalf("recompute aux at node %d: %v", n.ID(), err)
		}
		installed += got
	}
	if installed == 0 {
		t.Fatal("no node installed any auxiliary neighbor")
	}
	withAux := runStream("with-aux")

	s := nw.Stats()
	t.Logf("mean hops: core-only %.4f, with k=%d aux %.4f (%d nodes, %d queries, %d aux installed)",
		coreOnly, k, withAux, numNodes, len(stream), installed)
	t.Logf("memnet: %+v", s)
	if !(withAux < coreOnly) {
		t.Fatalf("auxiliary neighbors did not reduce mean hops: core-only %.4f, with-aux %.4f", coreOnly, withAux)
	}
	// The fault machinery must actually have been exercised.
	if s.Blocked == 0 {
		t.Fatal("partition blocked no datagrams")
	}
	if s.Duplicated == 0 {
		t.Fatal("duplication policy never fired")
	}
	for _, n := range cl.Nodes {
		if m := n.Metrics(); m.DecodeErrors != 0 {
			t.Errorf("node %d: %d decode errors", n.ID(), m.DecodeErrors)
		}
	}
}

// TestClusterLookupsUnderLoss runs a smaller overlay on a lossy network
// and checks the retry policy absorbs the loss: almost every lookup
// still resolves to the correct oracle owner.
func TestClusterLookupsUnderLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node in-process cluster test")
	}
	const numNodes = 16
	space := id.NewSpace(16)
	rng := rand.New(rand.NewSource(29))
	ids := randx.UniqueIDs(rng, numNodes, space.Size())

	nw := memnet.New(29)
	cl, err := Start(space, nw, ids, func(i int, cfg *node.Config) {
		cfg.RPCRetries = 3
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.WaitConverged(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Loss switches on only after the ring is up, so convergence and
	// the loss experiment stay independent.
	nw.SetDefaultPolicy(memnet.LinkPolicy{Drop: 0.03})

	ring := cl.Ring()
	const lookups = 400
	failed := 0
	for q := 0; q < lookups; q++ {
		src := cl.Nodes[q%numNodes]
		key := id.ID(rng.Uint64() & (space.Size() - 1))
		owner, _, err := src.Lookup(key)
		if err != nil {
			failed++ // a full retry budget lost to drops; rare but legal
			continue
		}
		if owner.ID != Owner(ring, key) {
			t.Fatalf("lookup %d: owner %d, want %d", key, owner.ID, Owner(ring, key))
		}
	}
	if failed > lookups/50 {
		t.Fatalf("%d/%d lookups failed under 3%% loss with 4 attempts", failed, lookups)
	}
	if s := nw.Stats(); s.Dropped == 0 {
		t.Fatalf("loss policy never fired: %+v", s)
	}
}

func sortIDs(xs []id.ID) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// ringSuccessor returns x's successor in the sorted ring.
func ringSuccessor(ring []id.ID, x id.ID) id.ID {
	for i, y := range ring {
		if y == x {
			return ring[(i+1)%len(ring)]
		}
	}
	return x
}
