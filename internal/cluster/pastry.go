package cluster

import (
	"fmt"
	"time"

	"peercache/internal/id"
	"peercache/internal/node"
	"peercache/internal/node/pastryring"
	"peercache/internal/wire"
)

// ExpectedLeaves computes the converged leaf-set sides of x over the
// sorted ring: up to half members walking clockwise and up to half
// walking counter-clockwise, nearest first — the oracle pastryring must
// converge to, the live analogue of internal/pastry's simulator state.
func ExpectedLeaves(ring []id.ID, x id.ID, half int) (cw, ccw []id.ID) {
	i := 0
	for ; i < len(ring); i++ {
		if ring[i] == x {
			break
		}
	}
	n := len(ring)
	for j := 1; j <= half && j < n; j++ {
		cw = append(cw, ring[(i+j)%n])
	}
	for j := 1; j <= half && j < n; j++ {
		ccw = append(ccw, ring[(i+n-j)%n])
	}
	return cw, ccw
}

// CoverableRows returns the prefix-table row indices x can possibly
// populate: row l is coverable iff some other member shares exactly l
// leading bits with x. A converged table fills exactly these.
func CoverableRows(space id.Space, ring []id.ID, x id.ID) map[uint]bool {
	out := make(map[uint]bool)
	for _, y := range ring {
		if y != x {
			out[space.CommonPrefixLen(x, y)] = true
		}
	}
	return out
}

// CheckPastryConverged is the Pastry convergence oracle as a pure,
// single-shot check over an arbitrary node list: every node's leaf-set
// sides must equal the ideal ring's and its populated prefix-table row
// set must equal the coverable-row oracle (each entry a live member in
// the right row). The nodes must have been started with pastryring.New
// and half as their SuccessorListLen. It returns the first mismatch,
// nil when converged. WaitConvergedPastry polls it; harnesses with
// their own clock (internal/soak) call it directly.
func CheckPastryConverged(space id.Space, nodes []*node.Node, half int) error {
	ring := RingOf(nodes)
	member := make(map[id.ID]bool, len(ring))
	for _, x := range ring {
		member[x] = true
	}
	for _, n := range nodes {
		pr, ok := n.Ring().(*pastryring.Ring)
		if !ok {
			return fmt.Errorf("node %d is not a pastryring node", n.ID())
		}
		wantCW, wantCCW := ExpectedLeaves(ring, n.ID(), half)
		cw, ccw := pr.Leaves()
		if err := matchSide("cw", n.ID(), wantCW, cw); err != nil {
			return err
		}
		if err := matchSide("ccw", n.ID(), wantCCW, ccw); err != nil {
			return err
		}
		coverable := CoverableRows(space, ring, n.ID())
		rows := pr.Rows()
		if len(rows) != len(coverable) {
			return fmt.Errorf("node %d has %d rows, want %d", n.ID(), len(rows), len(coverable))
		}
		for l, e := range rows {
			if !coverable[l] {
				return fmt.Errorf("node %d row %d populated but not coverable", n.ID(), l)
			}
			if !member[e.ID] {
				return fmt.Errorf("node %d row %d holds non-member %d", n.ID(), l, e.ID)
			}
			if got := space.CommonPrefixLen(n.ID(), e.ID); got != l {
				return fmt.Errorf("node %d row %d holds %d with prefix %d", n.ID(), l, e.ID, got)
			}
		}
	}
	return nil
}

// WaitConvergedPastry polls CheckPastryConverged until every node's
// leaf sets and prefix rows match the oracle, or the timeout passes,
// in which case it returns the last mismatch.
func (c *Cluster) WaitConvergedPastry(half int, timeout time.Duration) error {
	var last error
	for end := time.Now().Add(timeout); time.Now().Before(end); {
		if last = CheckPastryConverged(c.Space, c.Nodes, half); last == nil {
			return nil
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("cluster: pastry not converged after %v: %w", timeout, last)
}

// matchSide compares one leaf-set side against its oracle, in order.
func matchSide(side string, x id.ID, want []id.ID, got []wire.Contact) error {
	if len(got) != len(want) {
		return fmt.Errorf("node %d %s leaves %d, want %d", x, side, len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i] {
			return fmt.Errorf("node %d %s leaf %d is %d, want %d", x, side, i, got[i].ID, want[i])
		}
	}
	return nil
}
