package cluster

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"testing"
	"time"

	"peercache/internal/chunk"
	"peercache/internal/id"
	"peercache/internal/memnet"
	"peercache/internal/node"
	"peercache/internal/randx"
)

// TestClusterChunkedStreamSurvivesPartition is the acceptance test for
// the chunk layer: 56 nodes over memnet at replication factor 2 carry a
// >1 MiB object (257 chunks + manifest scattered across the ring).
// Phases:
//
//  1. Boot, converge, put the object through the chunk store with
//     window-8 parallel chunk puts, and wait until every derived chunk
//     key and the manifest sit at >= factor copies.
//  2. Cut 12 nodes off, wait for the minority to form its own subring,
//     heal, reconverge — the partition torture the plain-kv acceptance
//     test applies, now over an object whose loss needs only one of 258
//     keys to vanish.
//  3. Stream the object back byte-exactly twice from fresh origins:
//     prefetch w=0 (strictly on demand) and w=2. The w=2 stream must
//     block on measurably fewer per-chunk lookup hops — the prefetcher
//     resolves chunks i+1..i+2 while chunk i is being consumed, so the
//     hops are still spent but no longer sit on the reader's critical
//     path.
//
// Seeded; runs race-enabled.
func TestClusterChunkedStreamSurvivesPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("56-node in-process cluster test")
	}
	const (
		numNodes   = 56
		numCut     = 12
		factor     = 2
		seed       = 31
		objectSize = 1<<20 + 777 // 257 chunks: 256 full + sub-chunk tail
	)
	space := id.NewSpace(16)
	rng := rand.New(rand.NewSource(seed))
	ids := randx.UniqueIDs(rng, numNodes, space.Size())

	nw := memnet.New(seed)
	nw.SetDefaultPolicy(memnet.LinkPolicy{
		Dup:      0.02,
		MaxDelay: time.Millisecond,
	})

	cl, err := Start(space, nw, ids, func(i int, cfg *node.Config) {
		cfg.AuxEvery = 0
		cfg.ReplicationFactor = factor
		cfg.ReplicateEvery = 150 * time.Millisecond
		cfg.ItemCacheCapacity = -1 // hop counts must measure routing, not caching
		cfg.RPCRetries = 2
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.WaitConverged(60 * time.Second); err != nil {
		t.Fatalf("initial convergence: %v", err)
	}

	// storeOver builds a chunk store whose data plane is one node: puts
	// route with Put, reads race FindValue probes, so any holder — owner
	// or replica — can answer a chunk fetch.
	storeOver := func(n *node.Node, prefetch int) *chunk.Store {
		s, err := chunk.New(chunk.FuncKV{
			PutFunc: func(key id.ID, value []byte) error {
				_, err := n.Put(key, value)
				return err
			},
			GetFunc: func(key id.ID) ([]byte, int, error) {
				res, err := n.FindValue(key)
				if err != nil {
					return nil, res.Hops, err
				}
				return res.Value, res.Hops, nil
			},
		}, chunk.Options{Space: space, Window: 8, Prefetch: prefetch, Retries: 4})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	// Phase 1: put the object and wait for full replica placement of
	// every derived key.
	value := make([]byte, objectSize)
	rng.Read(value)
	root := space.Hash([]byte("the-movie"))
	m, err := storeOver(cl.Nodes[7], 0).PutObject(root, value)
	if err != nil {
		t.Fatalf("put object: %v", err)
	}
	if m.Chunks() != 257 {
		t.Fatalf("object split into %d chunks, want 257", m.Chunks())
	}
	allKeys := make([]id.ID, 0, m.Chunks()+1)
	allKeys = append(allKeys, root)
	for i := 0; i < m.Chunks(); i++ {
		allKeys = append(allKeys, chunk.Key(space, root, i))
	}
	copies := func(key id.ID) int {
		c := 0
		for _, n := range cl.Nodes {
			if _, _, ok := n.Item(key); ok {
				c++
			}
		}
		return c
	}
	waitPlacement := func(label string, deadline time.Duration) {
		t.Helper()
		end := time.Now().Add(deadline)
		for {
			short := 0
			for _, key := range allKeys {
				if copies(key) < factor {
					short++
				}
			}
			if short == 0 {
				return
			}
			if time.Now().After(end) {
				t.Fatalf("%s: %d/%d keys below %d copies", label, short, len(allKeys), factor)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	waitPlacement("initial replication", 30*time.Second)
	t.Logf("phase 1: %d bytes in %d chunk keys, every key at >= %d copies", objectSize, len(allKeys), factor)

	// Phase 2: partition the first numCut nodes, let both sides
	// reorganize, heal, reconverge.
	cut := make([]int, numCut)
	minorityRing := make([]id.ID, numCut)
	for i := range cut {
		cut[i] = i
		minorityRing[i] = cl.Nodes[i].ID()
	}
	sortIDs(minorityRing)
	nw.Partition("split", cl.Addrs(cut...)...)
	deadline := time.Now().Add(45 * time.Second)
	for {
		err := func() error {
			for _, i := range cut {
				n := cl.Nodes[i]
				if got, want := n.Successor().ID, ringSuccessor(minorityRing, n.ID()); got != want {
					return fmt.Errorf("minority node %d successor %d, want %d", n.ID(), got, want)
				}
			}
			return nil
		}()
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("minority never formed its own subring: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	nw.Heal("split")
	if err := cl.WaitConverged(60 * time.Second); err != nil {
		t.Fatalf("post-heal reconvergence: %v", err)
	}
	waitPlacement("post-heal replication", 45*time.Second)
	t.Log("phase 2: partition healed, placement recovered")

	// Phase 3: stream the object back byte-exactly from two fresh
	// origins, strictly-on-demand vs prefetch w=2.
	readStream := func(label string, origin int, prefetch int) chunk.Stats {
		t.Helper()
		r, err := storeOver(cl.Nodes[origin], prefetch).NewReader(root)
		if err != nil {
			t.Fatalf("%s: open stream: %v", label, err)
		}
		defer r.Close()
		got, err := io.ReadAll(r)
		if err != nil {
			t.Fatalf("%s: stream: %v", label, err)
		}
		if !bytes.Equal(got, value) {
			t.Fatalf("%s: streamed bytes differ from the original object", label)
		}
		return r.Stats()
	}
	st0 := readStream("w=0", 20, 0)
	st2 := readStream("w=2", 33, 2)

	meanStall := func(st chunk.Stats) time.Duration { return st.WaitTime / time.Duration(st.Chunks) }
	t.Logf("w=0: ttfb %v, blocked on %d/%d chunks, mean stall %v/chunk, %d blocking hops (%d total fetch hops)",
		st0.TTFB, st0.WaitChunks, st0.Chunks, meanStall(st0), st0.WaitHops, st0.FetchHops)
	t.Logf("w=2: ttfb %v, blocked on %d/%d chunks, mean stall %v/chunk, %d blocking hops (%d total fetch hops)",
		st2.TTFB, st2.WaitChunks, st2.Chunks, meanStall(st2), st2.WaitHops, st2.FetchHops)

	// On-demand blocks on every chunk by construction.
	if st0.WaitChunks != st0.Chunks {
		t.Fatalf("w=0 blocked on %d/%d chunks, want all", st0.WaitChunks, st0.Chunks)
	}
	// Prefetch must take chunk fetches off the reader's critical path.
	// The fetch hops are still spent, but they overlap the wait on
	// earlier chunks, so the per-chunk critical-path stall — the number
	// that bounds sustained stream throughput — must drop by at least
	// 30% (three fetches deep, the steady-state pipeline cuts it ~2/3;
	// the blocked-chunk count drops too, but less sharply, since a
	// nearly-done prefetch still counts as a block).
	if st2.WaitChunks >= st0.WaitChunks && meanStall(st2) >= meanStall(st0) {
		t.Fatal("prefetch w=2 did not reduce blocking at all")
	}
	if float64(meanStall(st2)) > 0.70*float64(meanStall(st0)) {
		t.Fatalf("prefetch w=2 left mean stall %v/chunk vs %v on demand; need >= 30%% reduction",
			meanStall(st2), meanStall(st0))
	}
	for _, n := range cl.Nodes {
		if m := n.Metrics(); m.DecodeErrors != 0 {
			t.Errorf("node %d: %d decode errors", n.ID(), m.DecodeErrors)
		}
	}
}
