package pastry

import (
	"math/rand"
	"testing"

	"peercache/internal/id"
	"peercache/internal/randx"
)

func digitNetwork(t *testing.T, rng *rand.Rand, bits, digitBits uint, n int) *Network {
	t.Helper()
	nw := New(Config{Space: id.NewSpace(bits), DigitBits: digitBits, LocalityAware: true})
	for _, x := range randx.UniqueIDs(rng, n, uint64(1)<<bits) {
		if _, err := nw.AddNode(id.ID(x), Coord{rng.Float64(), rng.Float64()}); err != nil {
			t.Fatal(err)
		}
	}
	nw.StabilizeAll()
	return nw
}

func TestNewPanicsOnBadDigitSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("digit size 3 over 16-bit ids did not panic")
		}
	}()
	New(Config{Space: id.NewSpace(16), DigitBits: 3})
}

func TestDigitOf(t *testing.T) {
	nw := New(Config{Space: id.NewSpace(8), DigitBits: 4})
	// 0xB7 -> digits 11, 7.
	if got := nw.digitOf(0xB7, 0); got != 0xB {
		t.Errorf("digit 0 = %x, want b", got)
	}
	if got := nw.digitOf(0xB7, 1); got != 0x7 {
		t.Errorf("digit 1 = %x, want 7", got)
	}
}

func TestRoutingTableSlotsPerDigit(t *testing.T) {
	// 8-bit ids, hex digits: node 0x00 must fill slot (0, v) for every
	// digit value v present in the population.
	nw := New(Config{Space: id.NewSpace(8), DigitBits: 4})
	ids := []uint64{0x00, 0x13, 0x27, 0x3A, 0xF0}
	for _, x := range ids {
		if _, err := nw.AddNode(id.ID(x), Coord{}); err != nil {
			t.Fatal(err)
		}
	}
	nw.StabilizeAll()
	n := nw.Node(0)
	wantSlots := map[uint]id.ID{0x1: 0x13, 0x2: 0x27, 0x3: 0x3A, 0xF: 0xF0}
	for v, want := range wantSlots {
		if !n.hasEntry[0][v] || n.table[0][v] != want {
			t.Errorf("slot (0,%x) = %v/%02x, want %02x", v, n.hasEntry[0][v], uint64(n.table[0][v]), uint64(want))
		}
	}
	if n.hasEntry[0][0x0] {
		t.Error("slot for own digit populated")
	}
	// Row 1: nodes sharing digit 0 with 0x00 (none besides itself
	// except... only 0x00 starts with 0x0? 0x13 starts with 1 — so row
	// 1 should be empty except if another 0x0X exists).
	for v := uint(0); v < 16; v++ {
		if n.hasEntry[1][v] {
			t.Errorf("unexpected row-1 slot %x populated", v)
		}
	}
}

func TestHexRoutingReachesOwner(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	nw := digitNetwork(t, rng, 16, 4, 300)
	ids := nw.AliveIDs()
	for i := 0; i < 3000; i++ {
		from := ids[rng.Intn(len(ids))]
		key := id.ID(rng.Intn(1 << 16))
		res, err := nw.Route(from, key)
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK || res.Timeouts != 0 {
			t.Fatalf("hex lookup failed: %+v", res)
		}
		want, _ := nw.Owner(key)
		if res.Dest != want {
			t.Fatalf("Dest = %d, want %d", res.Dest, want)
		}
	}
}

// Hex digits fix 4 bits per hop: average hop counts must come in well
// below the binary-digit overlay on the same membership.
func TestHexRoutingFewerHopsThanBinary(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	raw := randx.UniqueIDs(rng, 400, 1<<20)
	build := func(digitBits uint) *Network {
		crng := rand.New(rand.NewSource(5))
		nw := New(Config{Space: id.NewSpace(20), DigitBits: digitBits, LocalityAware: true})
		for _, x := range raw {
			if _, err := nw.AddNode(id.ID(x), Coord{crng.Float64(), crng.Float64()}); err != nil {
				t.Fatal(err)
			}
		}
		nw.StabilizeAll()
		return nw
	}
	binary := build(1)
	hex := build(4)
	qrng := rand.New(rand.NewSource(7))
	totalBin, totalHex := 0, 0
	for i := 0; i < 2000; i++ {
		from := id.ID(raw[qrng.Intn(len(raw))])
		key := id.ID(qrng.Intn(1 << 20))
		rb, err := binary.Route(from, key)
		if err != nil || !rb.OK {
			t.Fatalf("binary lookup failed: %v %+v", err, rb)
		}
		rh, err := hex.Route(from, key)
		if err != nil || !rh.OK {
			t.Fatalf("hex lookup failed: %v %+v", err, rh)
		}
		totalBin += rb.Hops
		totalHex += rh.Hops
	}
	if totalHex >= totalBin {
		t.Errorf("hex routing not faster: %d vs %d total hops", totalHex, totalBin)
	}
}

// End to end with digit-aware selection: aux chosen under the hex digit
// metric shorten hex-routed lookups.
func TestHexAuxReduceHops(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	nw := digitNetwork(t, rng, 16, 4, 300)
	ids := nw.AliveIDs()
	src := ids[0]
	var far id.ID
	base := 0
	for _, to := range ids[1:] {
		res, err := nw.Route(src, to)
		if err != nil {
			t.Fatal(err)
		}
		if res.Hops > base {
			base, far = res.Hops, to
		}
	}
	if base < 2 {
		t.Skip("no multi-hop destination")
	}
	if err := nw.SetAux(src, []id.ID{far}); err != nil {
		t.Fatal(err)
	}
	res, err := nw.Route(src, far)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hops != 1 {
		t.Fatalf("hops with direct aux = %d, want 1", res.Hops)
	}
}
