// Package pastry is an event-driven Pastry overlay simulator reproducing
// the behaviours the paper's evaluation depends on (Sections II-A, VI-B):
// binary prefix routing over a routing table with one row per matched
// prefix length, a leaf set for final delivery, and FreePastry's
// locality-aware choice among next-hop candidates, with per-node
// proximity coordinates standing in for network round-trip times.
//
// Auxiliary neighbors installed by the selection layer participate in
// routing exactly like core entries (Section III: "no change in the
// underlying routing policy").
package pastry

import (
	"fmt"
	"sort"

	"peercache/internal/freq"
	"peercache/internal/id"
)

// Config parameterizes a simulated overlay.
type Config struct {
	// Space is the identifier space (the paper uses 32-bit binary ids).
	Space id.Space
	// DigitBits is the routing digit size d: ids are sequences of
	// base-2^d digits (footnote 2 of the paper; FreePastry uses d = 4).
	// Must divide the identifier length. Defaults to 1 (binary digits,
	// the paper's exposition).
	DigitBits uint
	// LeafSetSize is the total leaf set size (half per side). Defaults
	// to 8 when 0.
	LeafSetSize int
	// MaxHops caps a lookup before it is declared failed. Defaults to
	// 4·b when 0.
	MaxHops int
	// LocalityAware selects FreePastry's behaviour: among equally
	// useful next-hop candidates pick the one closest in the proximity
	// space. When false, ties are broken by numeric closeness to the
	// key (the id-greedy policy the paper's Chord simulator uses).
	LocalityAware bool
}

func (c Config) withDefaults() Config {
	if c.DigitBits == 0 {
		c.DigitBits = 1
	}
	if c.LeafSetSize == 0 {
		c.LeafSetSize = 8
	}
	if c.MaxHops == 0 {
		c.MaxHops = 4 * int(c.Space.Bits())
	}
	return c
}

// Coord is a point in the proximity space; distances between coordinates
// model inter-node round-trip times.
type Coord struct{ X, Y float64 }

func (a Coord) dist2(b Coord) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return dx*dx + dy*dy
}

// Node is one Pastry peer.
type Node struct {
	id    id.ID
	alive bool
	coord Coord

	// table[l] is the row-l routing entry set: table[l][v] is a node
	// sharing exactly l prefix digits with this node and having digit
	// value v at position l (hasEntry[l][v] marks populated slots).
	table    [][]id.ID
	hasEntry [][]bool
	leaf     []id.ID
	// leafCCW/leafCW delimit the clockwise arc [leafCCW, leafCW]
	// (through this node) that the leaf set covers; equal to id when
	// the leaf set is empty.
	leafCCW, leafCW id.ID
	aux             []id.ID

	// Counter accumulates destinations of lookups this node
	// originated.
	Counter *freq.Exact
}

// ID returns the node's identifier.
func (n *Node) ID() id.ID { return n.id }

// Alive reports whether the node is up.
func (n *Node) Alive() bool { return n.alive }

// Coord returns the node's proximity coordinate.
func (n *Node) Coord() Coord { return n.coord }

// Leaf returns a copy of the node's leaf set.
func (n *Node) Leaf() []id.ID { return append([]id.ID(nil), n.leaf...) }

// Aux returns a copy of the node's auxiliary neighbor set.
func (n *Node) Aux() []id.ID { return append([]id.ID(nil), n.aux...) }

// TableEntries returns the populated routing-table entries.
func (n *Node) TableEntries() []id.ID {
	var out []id.ID
	for l, row := range n.hasEntry {
		for v, ok := range row {
			if ok {
				out = append(out, n.table[l][v])
			}
		}
	}
	return out
}

// CoreNeighbors returns the node's core neighbor set as the selection
// layer sees it: routing table entries plus leaf set, deduplicated.
func (n *Node) CoreNeighbors() []id.ID {
	seen := make(map[id.ID]bool)
	var out []id.ID
	add := func(w id.ID) {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	for l, row := range n.hasEntry {
		for v, ok := range row {
			if ok {
				add(n.table[l][v])
			}
		}
	}
	for _, w := range n.leaf {
		add(w)
	}
	return out
}

// Network is the simulated overlay.
type Network struct {
	cfg   Config
	nodes map[id.ID]*Node
	alive []id.ID // sorted
}

// New returns an empty overlay. It panics if DigitBits does not divide
// the identifier length — a static configuration error.
func New(cfg Config) *Network {
	cfg = cfg.withDefaults()
	if cfg.Space.Bits()%cfg.DigitBits != 0 {
		panic(fmt.Sprintf("pastry: digit size %d does not divide %d-bit ids", cfg.DigitBits, cfg.Space.Bits()))
	}
	return &Network{cfg: cfg, nodes: make(map[id.ID]*Node)}
}

// digits returns the id length in digits.
func (nw *Network) digits() uint { return nw.cfg.Space.Bits() / nw.cfg.DigitBits }

// digitOf returns the i-th digit (MSB-first) of x.
func (nw *Network) digitOf(x id.ID, i uint) uint {
	d := nw.cfg.DigitBits
	shift := nw.cfg.Space.Bits() - (i+1)*d
	return uint(uint64(x)>>shift) & (1<<d - 1)
}

// lcpDigits returns the number of leading digits shared by u and v.
func (nw *Network) lcpDigits(u, v id.ID) uint {
	return nw.cfg.Space.CommonPrefixLen(u, v) / nw.cfg.DigitBits
}

// Config returns the effective configuration.
func (nw *Network) Config() Config { return nw.cfg }

// Space returns the identifier space.
func (nw *Network) Space() id.Space { return nw.cfg.Space }

// NumAlive returns the number of live nodes.
func (nw *Network) NumAlive() int { return len(nw.alive) }

// AliveIDs returns a copy of the live node ids in ascending order.
func (nw *Network) AliveIDs() []id.ID { return append([]id.ID(nil), nw.alive...) }

// Node returns the node with the given id, or nil.
func (nw *Network) Node(x id.ID) *Node { return nw.nodes[x] }

// AddNode creates a live node at the given proximity coordinate with
// empty routing state; call Stabilize or StabilizeAll to build tables.
func (nw *Network) AddNode(x id.ID, coord Coord) (*Node, error) {
	if uint64(x) >= nw.cfg.Space.Size() {
		return nil, fmt.Errorf("pastry: node %d outside %d-bit space", x, nw.cfg.Space.Bits())
	}
	if _, ok := nw.nodes[x]; ok {
		return nil, fmt.Errorf("pastry: duplicate node %d", x)
	}
	rows := nw.digits()
	slots := uint(1) << nw.cfg.DigitBits
	n := &Node{
		id:      x,
		alive:   true,
		coord:   coord,
		Counter: freq.NewExact(),
	}
	n.table = make([][]id.ID, rows)
	n.hasEntry = make([][]bool, rows)
	for l := uint(0); l < rows; l++ {
		n.table[l] = make([]id.ID, slots)
		n.hasEntry[l] = make([]bool, slots)
	}
	nw.nodes[x] = n
	nw.insertAlive(x)
	return n, nil
}

// Crash marks a node dead, retaining its routing state.
func (nw *Network) Crash(x id.ID) error {
	n := nw.nodes[x]
	if n == nil || !n.alive {
		return fmt.Errorf("pastry: crash of absent or dead node %d", x)
	}
	n.alive = false
	nw.removeAlive(x)
	return nil
}

// Rejoin brings a crashed node back: auxiliary neighbors are dropped
// (they are stale) and tables are rebuilt. The observed-frequency
// history is retained; callers wanting fresh counters Reset explicitly.
func (nw *Network) Rejoin(x id.ID) error {
	n := nw.nodes[x]
	if n == nil || n.alive {
		return fmt.Errorf("pastry: rejoin of absent or live node %d", x)
	}
	n.alive = true
	n.aux = nil
	nw.insertAlive(x)
	nw.Stabilize(x)
	return nil
}

func (nw *Network) insertAlive(x id.ID) {
	i := sort.Search(len(nw.alive), func(i int) bool { return nw.alive[i] >= x })
	nw.alive = append(nw.alive, 0)
	copy(nw.alive[i+1:], nw.alive[i:])
	nw.alive[i] = x
}

func (nw *Network) removeAlive(x id.ID) {
	i := sort.Search(len(nw.alive), func(i int) bool { return nw.alive[i] >= x })
	if i < len(nw.alive) && nw.alive[i] == x {
		nw.alive = append(nw.alive[:i], nw.alive[i+1:]...)
	}
}

// closer reports whether node a is strictly numerically closer to key
// than node b, on the circular id space. Equidistant pairs (one on each
// side) are broken in favor of the counter-clockwise node (the key's
// predecessor side), deterministically.
func (nw *Network) closer(a, b, key id.ID) bool {
	s := nw.cfg.Space
	da, db := circDist(s, a, key), circDist(s, b, key)
	if da != db {
		return da < db
	}
	// Prefer the predecessor side: gap(a, key) <= gap(b, key).
	return s.Gap(a, key) < s.Gap(b, key)
}

func circDist(s id.Space, x, key id.ID) uint64 {
	g1, g2 := s.Gap(x, key), s.Gap(key, x)
	if g1 < g2 {
		return g1
	}
	return g2
}

// Owner returns the live node numerically closest to key (Section II-A:
// queries are routed to the node numerically closest to the queried
// key). The second result is false when the overlay is empty.
func (nw *Network) Owner(key id.ID) (id.ID, bool) {
	if len(nw.alive) == 0 {
		return 0, false
	}
	// The owner is one of the two neighbors of key in the sorted ring.
	i := sort.Search(len(nw.alive), func(i int) bool { return nw.alive[i] > key })
	succ := nw.alive[i%len(nw.alive)]
	pred := nw.alive[(i+len(nw.alive)-1)%len(nw.alive)]
	if nw.closer(pred, succ, key) {
		return pred, true
	}
	return succ, true
}

// Stabilize rebuilds x's routing table and leaf set from the current
// membership and prunes dead auxiliary entries. Slot (l, v) is filled
// with a live node sharing exactly l prefix digits with x and carrying
// digit v at position l; when several candidates exist the
// locality-aware mode picks the proximity-closest (FreePastry),
// otherwise the lowest id.
func (nw *Network) Stabilize(x id.ID) {
	n := nw.nodes[x]
	if n == nil || !n.alive {
		return
	}
	s := nw.cfg.Space
	b := s.Bits()
	d := nw.cfg.DigitBits
	rows := nw.digits()
	slots := uint(1) << d
	for l := uint(0); l < rows; l++ {
		own := nw.digitOf(x, l)
		for v := uint(0); v < slots; v++ {
			n.hasEntry[l][v] = false
			if v == own {
				continue
			}
			// Candidates share x's first l digits and carry digit v
			// at position l: the contiguous id range [lo, hi].
			shift := b - (l+1)*d
			prefixBits := uint64(x) >> (b - l*d) << d // first l digits
			lo := (prefixBits | uint64(v)) << shift
			hi := lo + (uint64(1)<<shift - 1)
			i := sort.Search(len(nw.alive), func(i int) bool { return uint64(nw.alive[i]) >= lo })
			bestSet := false
			var best id.ID
			var bestProx float64
			for ; i < len(nw.alive) && uint64(nw.alive[i]) <= hi; i++ {
				w := nw.alive[i]
				if !nw.cfg.LocalityAware {
					best, bestSet = w, true // lowest id: first in range
					break
				}
				prox := n.coord.dist2(nw.nodes[w].coord)
				if !bestSet || prox < bestProx {
					best, bestProx, bestSet = w, prox, true
				}
			}
			if bestSet {
				n.table[l][v] = best
				n.hasEntry[l][v] = true
			}
		}
	}
	// Leaf set: LeafSetSize/2 nearest live nodes on each side.
	n.leaf = n.leaf[:0]
	n.leafCCW, n.leafCW = x, x
	if len(nw.alive) > 1 {
		half := nw.cfg.LeafSetSize / 2
		pos := sort.Search(len(nw.alive), func(i int) bool { return nw.alive[i] >= x })
		m := len(nw.alive)
		for c := 1; c <= half && c < m; c++ {
			n.leafCW = nw.alive[(pos+c)%m]
			n.leaf = append(n.leaf, n.leafCW)
		}
		for c := 1; c <= half && c < m; c++ {
			n.leafCCW = nw.alive[(pos-c+2*m)%m]
			n.leaf = append(n.leaf, n.leafCCW)
		}
	}
	// Prune dead auxiliary entries.
	live := n.aux[:0]
	for _, a := range n.aux {
		if an := nw.nodes[a]; an != nil && an.alive {
			live = append(live, a)
		}
	}
	n.aux = live
}

// StabilizeAll stabilizes every live node.
func (nw *Network) StabilizeAll() {
	for _, x := range nw.AliveIDs() {
		nw.Stabilize(x)
	}
}

// SetAux installs the auxiliary neighbor set of node x.
func (nw *Network) SetAux(x id.ID, aux []id.ID) error {
	n := nw.nodes[x]
	if n == nil {
		return fmt.Errorf("pastry: SetAux on unknown node %d", x)
	}
	for _, a := range aux {
		if a == x {
			return fmt.Errorf("pastry: aux of node %d contains itself", x)
		}
	}
	n.aux = append(n.aux[:0:0], aux...)
	return nil
}

// RouteResult describes one lookup.
type RouteResult struct {
	Dest     id.ID
	Hops     int
	Timeouts int
	OK       bool
}

// Route performs a lookup for key starting at from, under binary Pastry
// routing: prefer candidates extending the shared prefix with the key
// (deepest extension first — the most specific entry wins, exactly as a
// routing-table row lookup would); fall back to leaf-set style numeric
// progress when no prefix progress is available. Among equally deep
// candidates the locality-aware mode picks the proximity-closest live
// node (FreePastry); otherwise the numerically closest to the key. Dead
// entries cost one timeout each before the next candidate is tried.
func (nw *Network) Route(from id.ID, key id.ID) (RouteResult, error) {
	src := nw.nodes[from]
	if src == nil || !src.alive {
		return RouteResult{}, fmt.Errorf("pastry: route from absent or dead node %d", from)
	}
	dest, ok := nw.Owner(key)
	if !ok {
		return RouteResult{}, fmt.Errorf("pastry: empty overlay")
	}
	res := RouteResult{Dest: dest}
	cur := src
	for cur.id != dest {
		if res.Hops >= nw.cfg.MaxHops {
			return res, nil
		}
		next, timeouts := nw.nextHop(cur, key)
		res.Timeouts += timeouts
		if next == nil {
			return res, nil // dead end
		}
		cur = next
		res.Hops++
	}
	res.OK = true
	return res, nil
}

// nextHop chooses the forwarding target for key at node cur per the
// standard Pastry rules, returning nil when no candidate advances the
// query. Dead candidates each cost a timeout.
//
//  1. Leaf-set delivery: when the key falls inside cur's leaf-set range,
//     forward to the numerically closest leaf (final-delivery rule).
//  2. Prefix progress: forward to a known node sharing a strictly longer
//     prefix with the key; the deepest extension wins, ties broken by
//     proximity (locality-aware) or numeric closeness.
//  3. Rare-case fallback: a known node with an equal-length prefix that
//     is numerically closer to the key.
func (nw *Network) nextHop(cur *Node, key id.ID) (*Node, int) {
	s := nw.cfg.Space
	l := nw.lcpDigits(cur.id, key)
	timeouts := 0

	// try returns the node if alive, charging a timeout otherwise.
	try := func(w id.ID) *Node {
		n := nw.nodes[w]
		if n.alive {
			return n
		}
		timeouts++
		return nil
	}

	// Rule 1: leaf-set range check. The leaf set spans the clockwise
	// arc [leafCCW, leafCW] through cur.
	if len(cur.leaf) > 0 {
		if s.Gap(cur.leafCCW, key) <= s.Gap(cur.leafCCW, cur.leafCW) {
			// Try leaves in order of numeric closeness to the key,
			// nearer than cur itself.
			leaves := append([]id.ID(nil), cur.leaf...)
			sort.Slice(leaves, func(i, j int) bool { return nw.closer(leaves[i], leaves[j], key) })
			for _, w := range leaves {
				if !nw.closer(w, cur.id, key) {
					break
				}
				if n := try(w); n != nil {
					return n, timeouts
				}
			}
			// Fall through to the prefix rules when every closer leaf
			// is dead.
		}
	}

	// Gather all known entries once for rules 2 and 3.
	type cand struct {
		id   id.ID
		lcp  uint
		prox float64
	}
	seen := map[id.ID]bool{cur.id: true}
	var cands []cand
	add := func(w id.ID) {
		if seen[w] {
			return
		}
		seen[w] = true
		c := cand{id: w, lcp: nw.lcpDigits(w, key)}
		if nw.cfg.LocalityAware {
			c.prox = cur.coord.dist2(nw.nodes[w].coord)
		}
		cands = append(cands, c)
	}
	for row, slots := range cur.hasEntry {
		for v, ok := range slots {
			if ok {
				add(cur.table[row][v])
			}
		}
	}
	for _, w := range cur.leaf {
		add(w)
	}
	for _, w := range cur.aux {
		add(w)
	}
	// Deepest prefix extension wins (Pastry forwards to a node sharing
	// a strictly longer prefix; the most specific known entry gives the
	// most progress). Among equally deep candidates the locality-aware
	// mode picks the proximity-closest live one (FreePastry, Section
	// VI-C); otherwise the numerically closest to the key — the
	// analogue of the paper's Chord router picking the entry closest to
	// the destination.
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.lcp != b.lcp {
			return a.lcp > b.lcp
		}
		if nw.cfg.LocalityAware && a.prox != b.prox {
			return a.prox < b.prox
		}
		return nw.closer(a.id, b.id, key)
	})

	// Rule 2: strictly longer prefix.
	for _, c := range cands {
		if c.lcp <= l {
			break // sorted: no more prefix progress available
		}
		if n := try(c.id); n != nil {
			return n, timeouts
		}
	}
	// Rule 3: equal prefix, numerically closer.
	for _, c := range cands {
		if c.lcp != l || !nw.closer(c.id, cur.id, key) {
			continue
		}
		if n := try(c.id); n != nil {
			return n, timeouts
		}
	}
	return nil, timeouts
}
