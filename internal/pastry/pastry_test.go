package pastry

import (
	"math/rand"
	"testing"

	"peercache/internal/id"
	"peercache/internal/randx"
)

func buildNetwork(t *testing.T, bits uint, ids []uint64, locality bool) *Network {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(len(ids))))
	nw := New(Config{Space: id.NewSpace(bits), LocalityAware: locality})
	for _, x := range ids {
		if _, err := nw.AddNode(id.ID(x), Coord{rng.Float64(), rng.Float64()}); err != nil {
			t.Fatal(err)
		}
	}
	nw.StabilizeAll()
	return nw
}

func randomNetwork(t *testing.T, rng *rand.Rand, bits uint, n int, locality bool) *Network {
	t.Helper()
	nw := New(Config{Space: id.NewSpace(bits), LocalityAware: locality})
	for _, x := range randx.UniqueIDs(rng, n, uint64(1)<<bits) {
		if _, err := nw.AddNode(id.ID(x), Coord{rng.Float64(), rng.Float64()}); err != nil {
			t.Fatal(err)
		}
	}
	nw.StabilizeAll()
	return nw
}

func TestAddNodeErrors(t *testing.T) {
	nw := New(Config{Space: id.NewSpace(4)})
	if _, err := nw.AddNode(5, Coord{}); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.AddNode(5, Coord{}); err == nil {
		t.Error("duplicate AddNode: no error")
	}
	if _, err := nw.AddNode(99, Coord{}); err == nil {
		t.Error("out-of-space AddNode: no error")
	}
}

func TestOwnerNumericallyClosest(t *testing.T) {
	nw := buildNetwork(t, 4, []uint64{2, 7, 12}, false)
	tests := []struct {
		key  id.ID
		want id.ID
	}{
		// 15 is equidistant from 12 and 2; the predecessor side wins.
		{2, 2}, {4, 2}, {5, 7}, {7, 7}, {9, 7}, {10, 12}, {14, 12}, {0, 2}, {15, 12},
	}
	for _, tt := range tests {
		got, ok := nw.Owner(tt.key)
		if !ok || got != tt.want {
			t.Errorf("Owner(%d) = %d, want %d", tt.key, got, tt.want)
		}
	}
}

func TestOwnerEquidistantDeterministic(t *testing.T) {
	nw := buildNetwork(t, 4, []uint64{4, 8}, false)
	// Key 6 is equidistant from 4 and 8; the predecessor side wins.
	got, _ := nw.Owner(6)
	if got != 4 {
		t.Errorf("Owner(6) = %d, want 4 (predecessor side)", got)
	}
}

func TestRoutingTableRows(t *testing.T) {
	// Node 0000 with nodes covering several prefix rows.
	nw := buildNetwork(t, 4, []uint64{0b0000, 0b1000, 0b0100, 0b0010, 0b0001}, false)
	n := nw.Node(0)
	entries := n.TableEntries()
	want := map[id.ID]bool{0b1000: true, 0b0100: true, 0b0010: true, 0b0001: true}
	if len(entries) != 4 {
		t.Fatalf("entries = %v, want 4 rows", entries)
	}
	for _, e := range entries {
		if !want[e] {
			t.Errorf("unexpected entry %04b", e)
		}
	}
}

func TestRoutingTableLocalityChoosesClosest(t *testing.T) {
	nw := New(Config{Space: id.NewSpace(4), LocalityAware: true})
	nw.AddNode(0b0000, Coord{0, 0})
	nw.AddNode(0b1000, Coord{5, 5}) // row-0 candidate, far
	nw.AddNode(0b1100, Coord{1, 1}) // row-0 candidate, near
	nw.StabilizeAll()
	n := nw.Node(0)
	if !n.hasEntry[0][1] || n.table[0][1] != 0b1100 {
		t.Errorf("row 0 entry = %04b, want 1100 (proximity-closest)", n.table[0][1])
	}
}

func TestLeafSetBothSides(t *testing.T) {
	nw := buildNetwork(t, 8, []uint64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}, false)
	leaf := nw.Node(50).Leaf()
	want := map[id.ID]bool{60: true, 70: true, 80: true, 90: true, 40: true, 30: true, 20: true, 10: true}
	if len(leaf) != 8 {
		t.Fatalf("leaf set size = %d, want 8", len(leaf))
	}
	for _, w := range leaf {
		if !want[w] {
			t.Errorf("unexpected leaf %d", w)
		}
	}
}

func TestRouteReachesOwnerStable(t *testing.T) {
	for _, locality := range []bool{false, true} {
		rng := rand.New(rand.NewSource(42))
		nw := randomNetwork(t, rng, 16, 200, locality)
		ids := nw.AliveIDs()
		for i := 0; i < 3000; i++ {
			from := ids[rng.Intn(len(ids))]
			key := id.ID(rng.Intn(1 << 16))
			res, err := nw.Route(from, key)
			if err != nil {
				t.Fatal(err)
			}
			if !res.OK {
				t.Fatalf("locality=%v: lookup failed in stable network: from=%d key=%d", locality, from, key)
			}
			if res.Timeouts != 0 {
				t.Fatalf("timeouts in stable network: %+v", res)
			}
			want, _ := nw.Owner(key)
			if res.Dest != want {
				t.Fatalf("Dest = %d, want %d", res.Dest, want)
			}
		}
	}
}

// In a stable network prefix routing takes O(log n) hops; b is a hard
// upper bound (one digit per hop plus final leaf-set delivery).
func TestRouteHopBoundStable(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	nw := randomNetwork(t, rng, 16, 512, true)
	ids := nw.AliveIDs()
	for i := 0; i < 2000; i++ {
		from := ids[rng.Intn(len(ids))]
		key := id.ID(rng.Intn(1 << 16))
		res, err := nw.Route(from, key)
		if err != nil {
			t.Fatal(err)
		}
		if res.Hops > 17 {
			t.Fatalf("lookup took %d hops", res.Hops)
		}
	}
}

func TestRouteSelfOwned(t *testing.T) {
	nw := buildNetwork(t, 4, []uint64{3, 10}, false)
	res, err := nw.Route(3, 4) // key 4 closest to 3
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || res.Hops != 0 || res.Dest != 3 {
		t.Fatalf("res = %+v, want 0-hop self-owned", res)
	}
}

func TestRouteFromDeadNodeErrors(t *testing.T) {
	nw := buildNetwork(t, 4, []uint64{3, 10}, false)
	nw.Crash(3)
	if _, err := nw.Route(3, 5); err == nil {
		t.Error("route from dead node: no error")
	}
	if _, err := nw.Route(9, 5); err == nil {
		t.Error("route from unknown node: no error")
	}
}

// A direct auxiliary pointer shares every bit with the destination, so
// it is the deepest candidate and the lookup completes in one hop.
func TestAuxShortcutsReduceHops(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	nw := randomNetwork(t, rng, 16, 400, true)
	ids := nw.AliveIDs()
	from := ids[0]
	var far id.ID
	base := 0
	for _, to := range ids[1:] {
		res, err := nw.Route(from, to)
		if err != nil {
			t.Fatal(err)
		}
		if res.Hops > base {
			base, far = res.Hops, to
		}
	}
	if base < 2 {
		t.Skip("no multi-hop destination found")
	}
	if err := nw.SetAux(from, []id.ID{far}); err != nil {
		t.Fatal(err)
	}
	res, err := nw.Route(from, far)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hops != 1 {
		t.Fatalf("hops with direct aux = %d, want 1 (got %+v)", res.Hops, res)
	}
}

func TestSetAuxValidation(t *testing.T) {
	nw := buildNetwork(t, 4, []uint64{3, 10}, false)
	if err := nw.SetAux(3, []id.ID{3}); err == nil {
		t.Error("self-aux: no error")
	}
	if err := nw.SetAux(9, []id.ID{3}); err == nil {
		t.Error("aux on unknown node: no error")
	}
}

func TestCrashRejoinLifecycle(t *testing.T) {
	nw := buildNetwork(t, 8, []uint64{10, 50, 90, 130, 170, 210}, false)
	if err := nw.Crash(90); err != nil {
		t.Fatal(err)
	}
	if err := nw.Crash(90); err == nil {
		t.Error("double crash: no error")
	}
	if nw.NumAlive() != 5 {
		t.Fatalf("NumAlive = %d, want 5", nw.NumAlive())
	}
	if err := nw.Rejoin(90); err != nil {
		t.Fatal(err)
	}
	if err := nw.Rejoin(90); err == nil {
		t.Error("double rejoin: no error")
	}
	n := nw.Node(90)
	if len(n.Aux()) != 0 {
		t.Error("rejoin did not drop stale aux")
	}
}

func TestChurnThenStabilizeRecovers(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	nw := randomNetwork(t, rng, 16, 300, true)
	ids := nw.AliveIDs()
	for i := 0; i < 45; i++ {
		nw.Crash(ids[i*6])
	}
	alive := nw.AliveIDs()
	fails, timeouts := 0, 0
	for i := 0; i < 500; i++ {
		from := alive[rng.Intn(len(alive))]
		key := id.ID(rng.Intn(1 << 16))
		res, err := nw.Route(from, key)
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK {
			fails++
		}
		timeouts += res.Timeouts
	}
	if timeouts == 0 {
		t.Error("expected timeouts on stale entries after churn")
	}
	// Some failures are possible mid-churn; they must be rare thanks to
	// leaf-set redundancy.
	if fails > 25 {
		t.Errorf("too many failed lookups mid-churn: %d/500", fails)
	}
	nw.StabilizeAll()
	for i := 0; i < 500; i++ {
		from := alive[rng.Intn(len(alive))]
		key := id.ID(rng.Intn(1 << 16))
		res, err := nw.Route(from, key)
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK || res.Timeouts != 0 {
			t.Fatalf("post-stabilization lookup not clean: %+v", res)
		}
	}
}

func TestStabilizePrunesDeadAux(t *testing.T) {
	nw := buildNetwork(t, 8, []uint64{10, 50, 90, 130}, false)
	if err := nw.SetAux(10, []id.ID{90, 130}); err != nil {
		t.Fatal(err)
	}
	nw.Crash(90)
	nw.Stabilize(10)
	aux := nw.Node(10).Aux()
	if len(aux) != 1 || aux[0] != 130 {
		t.Fatalf("aux after prune = %v, want [130]", aux)
	}
}

func TestCoreNeighborsDeduplicated(t *testing.T) {
	nw := buildNetwork(t, 8, []uint64{10, 50, 90, 130}, false)
	core := nw.Node(10).CoreNeighbors()
	seen := map[id.ID]bool{}
	for _, c := range core {
		if seen[c] {
			t.Fatalf("duplicate core neighbor %d", c)
		}
		if c == 10 {
			t.Fatal("node lists itself as core neighbor")
		}
		seen[c] = true
	}
	if len(core) == 0 {
		t.Fatal("no core neighbors")
	}
}

func TestConfigDefaults(t *testing.T) {
	nw := New(Config{Space: id.NewSpace(8)})
	cfg := nw.Config()
	if cfg.LeafSetSize != 8 || cfg.MaxHops != 32 {
		t.Errorf("defaults = %+v", cfg)
	}
}
