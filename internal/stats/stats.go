// Package stats provides the small set of descriptive statistics the
// experiment harness reports: online mean/variance (Welford), percentiles,
// normal-approximation confidence intervals, and integer hop histograms.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Running accumulates a stream of observations with Welford's online
// algorithm. The zero value is ready to use.
type Running struct {
	n    uint64
	mean float64
	m2   float64
}

// Add records one observation.
func (r *Running) Add(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of observations.
func (r *Running) N() uint64 { return r.n }

// Mean returns the sample mean (0 for an empty stream).
func (r *Running) Mean() float64 {
	if r.n == 0 {
		return 0
	}
	return r.mean
}

// Variance returns the sample variance (n-1 denominator; 0 when n < 2).
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// Stddev returns the sample standard deviation.
func (r *Running) Stddev() float64 { return math.Sqrt(r.Variance()) }

// CI95 returns the half-width of the 95% normal-approximation confidence
// interval around the mean.
func (r *Running) CI95() float64 {
	if r.n < 2 {
		return 0
	}
	return 1.96 * r.Stddev() / math.Sqrt(float64(r.n))
}

// WeightedMean accumulates a probability- or frequency-weighted mean,
// used by the exact-expectation evaluator where each (source, destination)
// pair contributes its hop count weighted by query probability. The zero
// value is ready to use.
type WeightedMean struct {
	sumW  float64
	sumWX float64
}

// Add records value x with non-negative weight w; w <= 0 is ignored.
func (m *WeightedMean) Add(x, w float64) {
	if w <= 0 {
		return
	}
	m.sumW += w
	m.sumWX += w * x
}

// Weight returns the total accumulated weight.
func (m *WeightedMean) Weight() float64 { return m.sumW }

// Mean returns the weighted mean (0 when no weight accumulated).
func (m *WeightedMean) Mean() float64 {
	if m.sumW == 0 {
		return 0
	}
	return m.sumWX / m.sumW
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. It panics on an empty slice
// or out-of-range p. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %g out of range", p))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram is a frequency histogram over small non-negative integers
// (hop counts). The zero value is ready to use.
type Histogram struct {
	counts []uint64
	total  uint64
}

// Add records one observation of value v (v < 0 panics).
func (h *Histogram) Add(v int) {
	if v < 0 {
		panic(fmt.Sprintf("stats: negative histogram value %d", v))
	}
	for len(h.counts) <= v {
		h.counts = append(h.counts, 0)
	}
	h.counts[v]++
	h.total++
}

// Total returns the number of observations.
func (h *Histogram) Total() uint64 { return h.total }

// Count returns the number of observations of value v.
func (h *Histogram) Count(v int) uint64 {
	if v < 0 || v >= len(h.counts) {
		return 0
	}
	return h.counts[v]
}

// Mean returns the mean observed value.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	sum := 0.0
	for v, c := range h.counts {
		sum += float64(v) * float64(c)
	}
	return sum / float64(h.total)
}

// Percentile returns the smallest value v such that at least p percent
// of observations are <= v (nearest-rank). It panics on an empty
// histogram or p outside [0, 100].
func (h *Histogram) Percentile(p float64) int {
	if h.total == 0 {
		panic("stats: Percentile of empty histogram")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %g out of range", p))
	}
	rank := uint64(math.Ceil(p / 100 * float64(h.total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for v, c := range h.counts {
		cum += c
		if cum >= rank {
			return v
		}
	}
	return len(h.counts) - 1
}

// Max returns the largest observed value (0 when empty).
func (h *Histogram) Max() int {
	for v := len(h.counts) - 1; v >= 0; v-- {
		if h.counts[v] > 0 {
			return v
		}
	}
	return 0
}

// String renders the histogram as "v:count" pairs, for logs and examples.
func (h *Histogram) String() string {
	var b strings.Builder
	for v, c := range h.counts {
		if c == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%d", v, c)
	}
	if b.Len() == 0 {
		return "(empty)"
	}
	return b.String()
}

// PercentReduction returns 100 * (base - ours) / base, the paper's
// performance metric (Section VI-A): percentage reduction in the average
// number of hops compared to the frequency-oblivious scheme. It returns 0
// when base is 0.
func PercentReduction(base, ours float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (base - ours) / base
}
