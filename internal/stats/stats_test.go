package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestRunningEmpty(t *testing.T) {
	var r Running
	if r.N() != 0 || r.Mean() != 0 || r.Variance() != 0 || r.CI95() != 0 {
		t.Error("zero-value Running not all-zero")
	}
}

func TestRunningKnownValues(t *testing.T) {
	var r Running
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Errorf("N = %d, want 8", r.N())
	}
	if math.Abs(r.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %g, want 5", r.Mean())
	}
	// Sample variance with n-1: sum of squared deviations = 32, 32/7.
	if want := 32.0 / 7.0; math.Abs(r.Variance()-want) > 1e-12 {
		t.Errorf("Variance = %g, want %g", r.Variance(), want)
	}
}

func TestRunningMatchesDirectComputation(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	var r Running
	var xs []float64
	for i := 0; i < 10000; i++ {
		x := rng.NormFloat64()*3 + 10
		xs = append(xs, x)
		r.Add(x)
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	varSum := 0.0
	for _, x := range xs {
		varSum += (x - mean) * (x - mean)
	}
	variance := varSum / float64(len(xs)-1)
	if math.Abs(r.Mean()-mean) > 1e-9 {
		t.Errorf("Mean = %g, want %g", r.Mean(), mean)
	}
	if math.Abs(r.Variance()-variance) > 1e-6 {
		t.Errorf("Variance = %g, want %g", r.Variance(), variance)
	}
	if r.CI95() <= 0 {
		t.Error("CI95 not positive for non-degenerate stream")
	}
}

func TestWeightedMean(t *testing.T) {
	var m WeightedMean
	if m.Mean() != 0 {
		t.Error("empty WeightedMean not 0")
	}
	m.Add(10, 1)
	m.Add(20, 3)
	m.Add(999, 0)  // ignored
	m.Add(999, -1) // ignored
	if math.Abs(m.Mean()-17.5) > 1e-12 {
		t.Errorf("Mean = %g, want 17.5", m.Mean())
	}
	if m.Weight() != 4 {
		t.Errorf("Weight = %g, want 4", m.Weight())
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 15}, {100, 50}, {50, 35}, {25, 20}, {75, 40},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Percentile(%g) = %g, want %g", tt.p, got, tt.want)
		}
	}
	// Interpolation between ranks.
	if got := Percentile([]float64{10, 20}, 50); math.Abs(got-15) > 1e-12 {
		t.Errorf("interpolated median = %g, want 15", got)
	}
	// Input must not be mutated.
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentilePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty": func() { Percentile(nil, 50) },
		"p>100": func() { Percentile([]float64{1}, 101) },
		"p<0":   func() { Percentile([]float64{1}, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for _, v := range []int{0, 1, 1, 3, 3, 3} {
		h.Add(v)
	}
	if h.Total() != 6 {
		t.Errorf("Total = %d, want 6", h.Total())
	}
	if h.Count(1) != 2 || h.Count(2) != 0 || h.Count(3) != 3 || h.Count(99) != 0 {
		t.Error("histogram counts wrong")
	}
	if want := (0.0 + 2 + 9) / 6; math.Abs(h.Mean()-want) > 1e-12 {
		t.Errorf("Mean = %g, want %g", h.Mean(), want)
	}
	if h.Max() != 3 {
		t.Errorf("Max = %d, want 3", h.Max())
	}
	if got := h.String(); got != "0:1 1:2 3:3" {
		t.Errorf("String = %q", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Max() != 0 || h.String() != "(empty)" {
		t.Error("empty histogram misbehaves")
	}
}

func TestHistogramNegativePanics(t *testing.T) {
	var h Histogram
	defer func() {
		if recover() == nil {
			t.Error("negative Add did not panic")
		}
	}()
	h.Add(-1)
}

func TestPercentReduction(t *testing.T) {
	tests := []struct {
		base, ours, want float64
	}{
		{10, 5, 50},
		{10, 10, 0},
		{10, 12, -20},
		{0, 5, 0},
		{4, 1.72, 57.00000000000001},
	}
	for _, tt := range tests {
		if got := PercentReduction(tt.base, tt.ours); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("PercentReduction(%g,%g) = %g, want %g", tt.base, tt.ours, got, tt.want)
		}
	}
}

func TestHistogramPercentile(t *testing.T) {
	var h Histogram
	for _, v := range []int{1, 1, 2, 3, 3, 3, 4, 9} {
		h.Add(v)
	}
	tests := []struct {
		p    float64
		want int
	}{
		// Nearest-rank over 8 samples: rank = ceil(p/100*8).
		{0, 1}, {25, 1}, {50, 3}, {75, 3}, {87.5, 4}, {90, 9}, {100, 9},
	}
	for _, tt := range tests {
		if got := h.Percentile(tt.p); got != tt.want {
			t.Errorf("Percentile(%g) = %d, want %d", tt.p, got, tt.want)
		}
	}
}

func TestHistogramPercentilePanics(t *testing.T) {
	var h Histogram
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty histogram did not panic")
			}
		}()
		h.Percentile(50)
	}()
	h.Add(1)
	defer func() {
		if recover() == nil {
			t.Error("p>100 did not panic")
		}
	}()
	h.Percentile(101)
}
