package itemcache

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"peercache/internal/id"
)

func TestTTLCacheBasics(t *testing.T) {
	now := time.Unix(0, 0)
	c := NewTTL[string](2, time.Second)
	if _, ok := c.Get(1, now); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(1, "a", now)
	if v, ok := c.Get(1, now); !ok || v != "a" {
		t.Fatalf("got %q/%t, want a/true", v, ok)
	}
	// Expiry is per entry, from its last Put.
	if _, ok := c.Get(1, now.Add(time.Second)); ok {
		t.Fatal("expired entry served")
	}
	if c.Len() != 0 {
		t.Fatalf("expired entry not collected: len %d", c.Len())
	}
	// Overwrite refreshes the TTL.
	c.Put(2, "b", now)
	c.Put(2, "b2", now.Add(500*time.Millisecond))
	if v, ok := c.Get(2, now.Add(1400*time.Millisecond)); !ok || v != "b2" {
		t.Fatalf("refreshed entry: got %q/%t", v, ok)
	}
	s := c.Stats()
	if s.Expired != 1 {
		t.Fatalf("expired count %d, want 1", s.Expired)
	}
}

func TestTTLCacheLRUEviction(t *testing.T) {
	now := time.Unix(0, 0)
	c := NewTTL[int](3, time.Hour)
	for i := 1; i <= 3; i++ {
		c.Put(id.ID(i), i, now)
	}
	// Touch 1 so 2 becomes the LRU victim.
	if _, ok := c.Get(1, now); !ok {
		t.Fatal("miss on fresh entry")
	}
	c.Put(4, 4, now)
	if _, ok := c.Get(2, now); ok {
		t.Fatal("LRU victim survived")
	}
	for _, k := range []id.ID{1, 3, 4} {
		if _, ok := c.Get(k, now); !ok {
			t.Fatalf("key %d evicted, want 2 evicted", k)
		}
	}
	if got := c.Stats().Evicted; got != 1 {
		t.Fatalf("evicted count %d, want 1", got)
	}
}

// Eviction under concurrent access: many goroutines fill and read a
// small cache over overlapping key ranges. The invariants — checked both
// during the storm (Len from a racing goroutine) and after it — are that
// occupancy never exceeds capacity and the cache stays internally
// consistent (every surviving key still returns its own value). Run with
// -race this doubles as the data-race proof for the node's cached-copy
// path, where the read loop fills while application Gets read.
func TestTTLCacheConcurrentEviction(t *testing.T) {
	const (
		capacity   = 16
		goroutines = 8
		opsEach    = 2000
		keyRange   = 64 // 4x capacity: constant eviction pressure
	)
	c := NewTTL[uint64](capacity, time.Hour)
	now := time.Unix(0, 0)

	stop := make(chan struct{})
	observerDone := make(chan struct{})
	go func() { // racing occupancy observer
		defer close(observerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if n := c.Len(); n > capacity {
				t.Errorf("occupancy %d exceeds capacity %d", n, capacity)
				return
			}
		}
	}()
	var workers sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		workers.Add(1)
		go func(g int) {
			defer workers.Done()
			for i := 0; i < opsEach; i++ {
				k := id.ID((uint64(g)*2654435761 + uint64(i)) % keyRange)
				switch i % 3 {
				case 0, 1:
					c.Put(k, uint64(k)*10, now)
				case 2:
					if v, ok := c.Get(k, now); ok && v != uint64(k)*10 {
						t.Errorf("key %d returned foreign value %d", k, v)
						return
					}
				}
			}
		}(g)
	}
	workers.Wait()
	close(stop)
	<-observerDone

	if n := c.Len(); n > capacity {
		t.Fatalf("final occupancy %d exceeds capacity %d", n, capacity)
	}
	// Every surviving entry must map to its own value.
	for k := 0; k < keyRange; k++ {
		if v, ok := c.Get(id.ID(k), now); ok && v != uint64(k)*10 {
			t.Fatalf("key %d holds foreign value %d", k, v)
		}
	}
	s := c.Stats()
	if s.Evicted == 0 {
		t.Fatal("no eviction under 4x overcommit")
	}
	t.Logf("concurrent storm: %+v, final len %d", s, c.Len())
}

// Invalidate under concurrent fills must neither panic nor leave the
// map and LRU list disagreeing.
func TestTTLCacheConcurrentInvalidate(t *testing.T) {
	c := NewTTL[int](8, time.Hour)
	now := time.Unix(0, 0)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				k := id.ID(i % 16)
				if g%2 == 0 {
					c.Put(k, i, now)
				} else {
					c.Invalidate(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n > 8 {
		t.Fatalf("len %d exceeds capacity", n)
	}
}

func TestTTLCachePanicsOnBadConfig(t *testing.T) {
	for _, tc := range []struct {
		capacity int
		ttl      time.Duration
	}{{0, time.Second}, {-1, time.Second}, {1, 0}, {1, -time.Second}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewTTL(%d, %v) did not panic", tc.capacity, tc.ttl)
				}
			}()
			NewTTL[int](tc.capacity, tc.ttl)
		}()
	}
}

func BenchmarkTTLCachePutGet(b *testing.B) {
	c := NewTTL[[]byte](1024, time.Hour)
	now := time.Unix(0, 0)
	val := []byte("value")
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			k := id.ID(i % 2048)
			if i%2 == 0 {
				c.Put(k, val, now)
			} else {
				c.Get(k, now)
			}
			i++
		}
	})
	_ = fmt.Sprint(c.Len())
}
