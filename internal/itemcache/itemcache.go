// Package itemcache models the item-caching alternative the paper's
// introduction argues against (Section I): nodes cache previously
// queried items with a TTL, as DNS resolvers do. Cached answers cost
// zero hops but go stale when items are updated — exactly the
// frequently-changing-items regime (mobile-IP DNS) where the paper's
// pointer caching keeps answers fresh.
//
// The package provides a TTL cache with explicit version tracking so an
// experiment can measure both the hop savings and the stale-answer rate,
// head to head against auxiliary-neighbor pointer caching.
package itemcache

import (
	"container/list"
	"fmt"

	"peercache/internal/id"
)

// Entry is a cached item: the value version seen at fill time and the
// simulation time the entry expires.
type Entry struct {
	Item      id.ID
	Version   uint64
	ExpiresAt float64
}

// Cache is a fixed-capacity TTL item cache with LRU eviction. The zero
// value is not usable; construct with New.
type Cache struct {
	capacity int
	ttl      float64

	entries map[id.ID]*list.Element
	lru     *list.List // front = most recent

	hits, misses, expired uint64
}

// New returns a cache holding at most capacity items, each valid for ttl
// seconds after fill. It panics on non-positive capacity or ttl — both
// are configuration errors.
func New(capacity int, ttl float64) *Cache {
	if capacity < 1 {
		panic(fmt.Sprintf("itemcache: capacity %d", capacity))
	}
	if ttl <= 0 {
		panic(fmt.Sprintf("itemcache: ttl %g", ttl))
	}
	return &Cache{
		capacity: capacity,
		ttl:      ttl,
		entries:  make(map[id.ID]*list.Element, capacity),
		lru:      list.New(),
	}
}

// Capacity returns the maximum number of cached items.
func (c *Cache) Capacity() int { return c.capacity }

// Len returns the number of cached items (including not-yet-collected
// expired ones).
func (c *Cache) Len() int { return c.lru.Len() }

// Lookup returns the cached entry for item at time now, if present and
// unexpired. Expired entries are removed on access.
func (c *Cache) Lookup(item id.ID, now float64) (Entry, bool) {
	el, ok := c.entries[item]
	if !ok {
		c.misses++
		return Entry{}, false
	}
	e := el.Value.(Entry)
	if now >= e.ExpiresAt {
		c.removeElement(el)
		c.expired++
		c.misses++
		return Entry{}, false
	}
	c.lru.MoveToFront(el)
	c.hits++
	return e, true
}

// Fill stores the item's current version at time now, evicting the
// least-recently-used entry when full.
func (c *Cache) Fill(item id.ID, version uint64, now float64) {
	e := Entry{Item: item, Version: version, ExpiresAt: now + c.ttl}
	if el, ok := c.entries[item]; ok {
		el.Value = e
		c.lru.MoveToFront(el)
		return
	}
	if c.lru.Len() >= c.capacity {
		c.removeElement(c.lru.Back())
	}
	c.entries[item] = c.lru.PushFront(e)
}

// Invalidate drops the item if cached (used when an authoritative update
// notification reaches the node).
func (c *Cache) Invalidate(item id.ID) {
	if el, ok := c.entries[item]; ok {
		c.removeElement(el)
	}
}

func (c *Cache) removeElement(el *list.Element) {
	delete(c.entries, el.Value.(Entry).Item)
	c.lru.Remove(el)
}

// Stats reports cumulative hit/miss/expiry counts.
func (c *Cache) Stats() (hits, misses, expired uint64) {
	return c.hits, c.misses, c.expired
}

// VersionedStore tracks the authoritative version of every item; an
// update bumps the version. It stands in for the item owners' data in
// staleness experiments.
type VersionedStore struct {
	versions map[id.ID]uint64
	updates  uint64
}

// NewVersionedStore returns an empty store; unknown items have version 0.
func NewVersionedStore() *VersionedStore {
	return &VersionedStore{versions: make(map[id.ID]uint64)}
}

// Version returns the item's current authoritative version.
func (s *VersionedStore) Version(item id.ID) uint64 { return s.versions[item] }

// Update bumps the item's version (the mobile host moved; the record
// changed) and returns the new version.
func (s *VersionedStore) Update(item id.ID) uint64 {
	s.versions[item]++
	s.updates++
	return s.versions[item]
}

// Updates returns the total number of updates applied.
func (s *VersionedStore) Updates() uint64 { return s.updates }

// Fresh reports whether a cached version matches the authoritative one.
func (s *VersionedStore) Fresh(item id.ID, cached uint64) bool {
	return s.versions[item] == cached
}
