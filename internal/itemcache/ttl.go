package itemcache

import (
	"container/list"
	"fmt"
	"sync"
	"time"

	"peercache/internal/id"
)

// TTLCache is the live-runtime sibling of Cache: a mutex-guarded,
// capacity-bounded LRU cache over wall-clock time, generic in what it
// stores. Where Cache models the paper's item-caching comparison inside
// the simulator (float64 virtual time, single-threaded), TTLCache is
// built for the data plane in internal/node, where the read loop, the
// replication ticker, and any number of application Get calls touch the
// cache concurrently: every method takes the lock, and eviction under
// concurrent fills never exceeds capacity (itemcache's concurrency test
// pins this down).
//
// The caller passes `now` explicitly, keeping the cache deterministic
// under test and free of its own clock reads on hot paths that already
// have one.
type TTLCache[V any] struct {
	mu       sync.Mutex
	capacity int
	ttl      time.Duration

	entries map[id.ID]*list.Element
	lru     *list.List // front = most recent

	hits, misses, expired, evicted uint64
}

type ttlEntry[V any] struct {
	key     id.ID
	value   V
	expires time.Time
}

// NewTTL returns a cache holding at most capacity entries, each valid
// for ttl after its fill. It panics on non-positive capacity or ttl —
// both are configuration errors.
func NewTTL[V any](capacity int, ttl time.Duration) *TTLCache[V] {
	if capacity < 1 {
		panic(fmt.Sprintf("itemcache: capacity %d", capacity))
	}
	if ttl <= 0 {
		panic(fmt.Sprintf("itemcache: ttl %v", ttl))
	}
	return &TTLCache[V]{
		capacity: capacity,
		ttl:      ttl,
		entries:  make(map[id.ID]*list.Element, capacity),
		lru:      list.New(),
	}
}

// Capacity returns the maximum number of cached entries.
func (c *TTLCache[V]) Capacity() int { return c.capacity }

// Len returns the number of cached entries, including expired ones not
// yet collected by an access.
func (c *TTLCache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Get returns the value cached under key at time now, if present and
// unexpired. Expired entries are removed on access.
func (c *TTLCache[V]) Get(key id.ID, now time.Time) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var zero V
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return zero, false
	}
	e := el.Value.(*ttlEntry[V])
	if !now.Before(e.expires) {
		c.removeLocked(el)
		c.expired++
		c.misses++
		return zero, false
	}
	c.lru.MoveToFront(el)
	c.hits++
	return e.value, true
}

// Put stores value under key at time now, refreshing the TTL and LRU
// position of an existing entry, and evicting the least-recently-used
// entry when the cache is full.
func (c *TTLCache[V]) Put(key id.ID, value V, now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*ttlEntry[V])
		e.value = value
		e.expires = now.Add(c.ttl)
		c.lru.MoveToFront(el)
		return
	}
	if c.lru.Len() >= c.capacity {
		c.removeLocked(c.lru.Back())
		c.evicted++
	}
	c.entries[key] = c.lru.PushFront(&ttlEntry[V]{key: key, value: value, expires: now.Add(c.ttl)})
}

// Invalidate drops the entry under key if present.
func (c *TTLCache[V]) Invalidate(key id.ID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.removeLocked(el)
	}
}

func (c *TTLCache[V]) removeLocked(el *list.Element) {
	delete(c.entries, el.Value.(*ttlEntry[V]).key)
	c.lru.Remove(el)
}

// TTLStats is a snapshot of the cache's cumulative counters.
type TTLStats struct {
	Hits, Misses, Expired, Evicted uint64
}

// Stats returns the cumulative hit/miss/expiry/eviction counts.
func (c *TTLCache[V]) Stats() TTLStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return TTLStats{Hits: c.hits, Misses: c.misses, Expired: c.expired, Evicted: c.evicted}
}
