package itemcache

import (
	"testing"

	"peercache/internal/id"
)

func TestNewPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"capacity": func() { New(0, 10) },
		"ttl":      func() { New(4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestLookupFillBasics(t *testing.T) {
	c := New(4, 30)
	if _, ok := c.Lookup(1, 0); ok {
		t.Fatal("hit on empty cache")
	}
	c.Fill(1, 7, 0)
	e, ok := c.Lookup(1, 10)
	if !ok || e.Version != 7 || e.Item != 1 {
		t.Fatalf("entry = %+v ok=%v", e, ok)
	}
	hits, misses, expired := c.Stats()
	if hits != 1 || misses != 1 || expired != 0 {
		t.Errorf("stats = %d/%d/%d", hits, misses, expired)
	}
}

func TestTTLExpiry(t *testing.T) {
	c := New(4, 30)
	c.Fill(1, 1, 0)
	if _, ok := c.Lookup(1, 29.9); !ok {
		t.Fatal("expired before TTL")
	}
	if _, ok := c.Lookup(1, 30); ok {
		t.Fatal("hit at TTL boundary")
	}
	_, _, expired := c.Stats()
	if expired != 1 {
		t.Errorf("expired = %d, want 1", expired)
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d after expiry collection", c.Len())
	}
}

func TestRefillExtendsTTLAndVersion(t *testing.T) {
	c := New(4, 30)
	c.Fill(1, 1, 0)
	c.Fill(1, 2, 20)
	e, ok := c.Lookup(1, 45)
	if !ok || e.Version != 2 {
		t.Fatalf("entry = %+v ok=%v, want version 2 alive at t=45", e, ok)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1 (refill must not duplicate)", c.Len())
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2, 100)
	c.Fill(1, 1, 0)
	c.Fill(2, 1, 1)
	c.Lookup(1, 2)  // 1 becomes most recent
	c.Fill(3, 1, 3) // evicts 2
	if _, ok := c.Lookup(2, 4); ok {
		t.Error("LRU item 2 not evicted")
	}
	if _, ok := c.Lookup(1, 4); !ok {
		t.Error("recently used item 1 evicted")
	}
	if _, ok := c.Lookup(3, 4); !ok {
		t.Error("new item 3 missing")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestInvalidate(t *testing.T) {
	c := New(2, 100)
	c.Fill(1, 1, 0)
	c.Invalidate(1)
	c.Invalidate(9) // absent: no-op
	if _, ok := c.Lookup(1, 1); ok {
		t.Error("invalidated entry still served")
	}
}

func TestVersionedStore(t *testing.T) {
	s := NewVersionedStore()
	if s.Version(5) != 0 {
		t.Error("unknown item version not 0")
	}
	if v := s.Update(5); v != 1 {
		t.Errorf("Update = %d, want 1", v)
	}
	s.Update(5)
	if s.Version(5) != 2 || s.Updates() != 2 {
		t.Errorf("version=%d updates=%d", s.Version(5), s.Updates())
	}
	if s.Fresh(5, 1) {
		t.Error("stale version reported fresh")
	}
	if !s.Fresh(5, 2) {
		t.Error("current version reported stale")
	}
}

// The staleness scenario from the paper's introduction: an entry cached
// before an update keeps being served (fresh TTL) with the old version.
func TestStaleServingWindow(t *testing.T) {
	c := New(4, 60)
	s := NewVersionedStore()
	item := id.ID(42)
	s.Update(item) // version 1
	c.Fill(item, s.Version(item), 0)
	s.Update(item) // the mobile host moved: version 2
	e, ok := c.Lookup(item, 30)
	if !ok {
		t.Fatal("entry should still be within TTL")
	}
	if s.Fresh(item, e.Version) {
		t.Fatal("cache serves version 1 but store is at 2: must be stale")
	}
}
