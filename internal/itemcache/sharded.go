package itemcache

import (
	"math/bits"
	"time"

	"peercache/internal/id"
)

// ShardedTTL partitions a TTLCache across a power-of-two number of
// independent lock domains by key *prefix* (the top log2(shards) bits
// of the identifier), mirroring the node store's sharding layout: the
// read loop, the stabilize ticker, and application lookups all touch
// the owner-hint cache concurrently, and at cluster scale a single
// cache mutex serializes them. Each shard is a full TTLCache with its
// own LRU and its own slice of the capacity, so eviction stays local —
// a hot prefix evicts within its shard instead of scanning a global
// list under one lock.
type ShardedTTL[V any] struct {
	shards []*TTLCache[V]
	shift  uint // key >> shift selects the shard
	mask   uint64
}

// NewShardedTTL returns a sharded cache of roughly `capacity` total
// entries (each shard holds ceil(capacity/shards), so the exact global
// bound rounds up) valid for ttl after fill, over a spaceBits-bit key
// space. The shard count is rounded up to a power of two and clamped
// so a shard always covers at least one id prefix. Panics on
// non-positive capacity or ttl, like NewTTL.
func NewShardedTTL[V any](capacity int, ttl time.Duration, shards int, spaceBits uint) *ShardedTTL[V] {
	if shards < 1 {
		shards = 1
	}
	lg := uint(bits.Len(uint(shards - 1))) // ceil(log2(shards))
	if lg > spaceBits {
		lg = spaceBits
	}
	n := 1 << lg
	per := (capacity + n - 1) / n
	s := &ShardedTTL[V]{
		shards: make([]*TTLCache[V], n),
		shift:  spaceBits - lg,
		mask:   uint64(n - 1),
	}
	for i := range s.shards {
		s.shards[i] = NewTTL[V](per, ttl)
	}
	return s
}

// shardFor routes a key to its prefix shard; the mask folds keys with
// bits above the id space into a valid shard.
func (s *ShardedTTL[V]) shardFor(key id.ID) *TTLCache[V] {
	return s.shards[(uint64(key)>>s.shift)&s.mask]
}

// ShardCount reports the number of lock domains.
func (s *ShardedTTL[V]) ShardCount() int { return len(s.shards) }

// Capacity returns the summed capacity of all shards.
func (s *ShardedTTL[V]) Capacity() int {
	total := 0
	for _, sh := range s.shards {
		total += sh.Capacity()
	}
	return total
}

// Len returns the number of cached entries across shards, including
// expired ones not yet collected by an access.
func (s *ShardedTTL[V]) Len() int {
	total := 0
	for _, sh := range s.shards {
		total += sh.Len()
	}
	return total
}

// Get returns the value cached under key at time now, if present and
// unexpired.
func (s *ShardedTTL[V]) Get(key id.ID, now time.Time) (V, bool) {
	return s.shardFor(key).Get(key, now)
}

// Put stores value under key at time now.
func (s *ShardedTTL[V]) Put(key id.ID, value V, now time.Time) {
	s.shardFor(key).Put(key, value, now)
}

// Invalidate drops the entry under key if present.
func (s *ShardedTTL[V]) Invalidate(key id.ID) {
	s.shardFor(key).Invalidate(key)
}

// Stats sums the cumulative counters across shards.
func (s *ShardedTTL[V]) Stats() TTLStats {
	var t TTLStats
	for _, sh := range s.shards {
		st := sh.Stats()
		t.Hits += st.Hits
		t.Misses += st.Misses
		t.Expired += st.Expired
		t.Evicted += st.Evicted
	}
	return t
}
