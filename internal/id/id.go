// Package id implements b-bit ring identifier arithmetic shared by the
// Chord and Pastry overlays and by the auxiliary-neighbor selection
// algorithms.
//
// Identifiers live on a circular space 0..2^b-1. The package provides the
// two hop-distance estimates the paper builds on: the Chord distance
// d_uv = 1 + ceil(log2((v-u) mod 2^b)) (eq. 6) and the Pastry distance
// b - LCP(u, v) (Section IV).
package id

import (
	"fmt"
	"hash/fnv"
	"math/bits"
)

// ID is an identifier on the ring. Only the low Space.Bits bits are
// meaningful; constructors and arithmetic keep values reduced mod 2^b.
type ID uint64

// Space describes a 2^Bits identifier circle. The zero value is invalid;
// use NewSpace.
type Space struct {
	bits uint
	mask uint64
}

// MaxBits is the largest supported identifier length. 63 keeps every gap
// representable in an int64 and every sum of distances far from overflow.
const MaxBits = 63

// NewSpace returns a Space with b-bit identifiers. It panics if b is not in
// [1, MaxBits]; the identifier length is a static design parameter, so a
// bad value is a programming error, not a runtime condition.
func NewSpace(b uint) Space {
	if b < 1 || b > MaxBits {
		panic(fmt.Sprintf("id: invalid identifier length %d (want 1..%d)", b, MaxBits))
	}
	return Space{bits: b, mask: 1<<b - 1}
}

// Bits returns the identifier length in bits.
func (s Space) Bits() uint { return s.bits }

// Size returns 2^b, the number of identifiers on the ring.
func (s Space) Size() uint64 { return s.mask + 1 }

// Wrap reduces v modulo 2^b.
func (s Space) Wrap(v uint64) ID { return ID(v & s.mask) }

// Add returns (u + delta) mod 2^b.
func (s Space) Add(u ID, delta uint64) ID { return ID((uint64(u) + delta) & s.mask) }

// Gap returns the clockwise distance (v - u) mod 2^b. Gap(u, u) is 0.
func (s Space) Gap(u, v ID) uint64 { return (uint64(v) - uint64(u)) & s.mask }

// CeilLog2 returns ceil(log2(g)) for g >= 1, and 0 for g == 0 or g == 1.
func CeilLog2(g uint64) uint {
	if g <= 1 {
		return 0
	}
	return uint(bits.Len64(g - 1))
}

// ChordDist returns the paper's Chord hop-distance upper bound (eq. 6),
// the position (1-based) of the leftmost '1' in the clockwise gap
// (v-u) mod 2^b, i.e. 1 + floor(log2(gap)) for gap >= 1. ChordDist(u, u)
// is 0: a node is zero hops from itself. The function is deliberately
// asymmetric, matching clockwise routing.
func (s Space) ChordDist(u, v ID) uint {
	return uint(bits.Len64(s.Gap(u, v)))
}

// CommonPrefixLen returns the number of leading bits (out of b, from the
// most significant meaningful bit) shared by u and v. It is b when u == v.
func (s Space) CommonPrefixLen(u, v ID) uint {
	x := (uint64(u) ^ uint64(v)) & s.mask
	if x == 0 {
		return s.bits
	}
	return s.bits - uint(bits.Len64(x))
}

// PastryDist returns the paper's Pastry hop-distance estimate:
// b - LCP(u, v). It is 0 when u == v and symmetric otherwise.
func (s Space) PastryDist(u, v ID) uint {
	return s.bits - s.CommonPrefixLen(u, v)
}

// PastryDistDigits generalizes PastryDist to digits of digitBits bits
// (footnote 2 of the paper: ids viewed as sequences of digits with base
// 2^d): the number of digits left to fix, ceil((b − LCP)/digitBits).
// digitBits must divide the identifier length; it panics otherwise.
func (s Space) PastryDistDigits(u, v ID, digitBits uint) uint {
	if digitBits == 0 || s.bits%digitBits != 0 {
		panic(fmt.Sprintf("id: digit size %d does not divide %d-bit ids", digitBits, s.bits))
	}
	r := s.bits - s.CommonPrefixLen(u, v)
	return (r + digitBits - 1) / digitBits
}

// Bit returns bit i of v counting from the most significant meaningful bit
// (i = 0 is the top bit of the b-bit identifier). It panics if i >= b.
func (s Space) Bit(v ID, i uint) uint {
	if i >= s.bits {
		panic(fmt.Sprintf("id: bit index %d out of range for %d-bit space", i, s.bits))
	}
	return uint(uint64(v)>>(s.bits-1-i)) & 1
}

// SetBit returns v with bit i (MSB-first indexing, as in Bit) set to x.
func (s Space) SetBit(v ID, i uint, x uint) ID {
	if i >= s.bits {
		panic(fmt.Sprintf("id: bit index %d out of range for %d-bit space", i, s.bits))
	}
	pos := s.bits - 1 - i
	if x&1 == 1 {
		return ID(uint64(v) | 1<<pos)
	}
	return ID(uint64(v) &^ (1 << pos))
}

// Between reports whether x lies strictly inside the clockwise open
// interval (a, b). The interval wraps; when a == b it denotes the whole
// ring minus {a}, following the usual Chord convention.
func (s Space) Between(x, a, b ID) bool {
	if a == b {
		return x != a
	}
	return s.Gap(a, x) > 0 && s.Gap(a, x) < s.Gap(a, b)
}

// BetweenIncl reports whether x lies in the clockwise half-open interval
// (a, b] — the interval Chord uses for successor responsibility.
func (s Space) BetweenIncl(x, a, b ID) bool {
	if a == b {
		return true
	}
	g := s.Gap(a, x)
	return g > 0 && g <= s.Gap(a, b)
}

// Hash maps an arbitrary byte key onto the identifier space with FNV-1a.
// It is the stand-in for the cryptographic hash a deployment would use;
// only uniformity matters for the simulations.
func (s Space) Hash(key []byte) ID {
	h := fnv.New64a()
	h.Write(key)
	return s.Wrap(h.Sum64())
}

// HashString is Hash for string keys.
func (s Space) HashString(key string) ID { return s.Hash([]byte(key)) }

// Format renders v as a zero-padded binary string of exactly b digits,
// matching the paper's presentation of identifiers.
func (s Space) Format(v ID) string {
	return fmt.Sprintf("%0*b", s.bits, uint64(v)&s.mask)
}
