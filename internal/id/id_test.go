package id

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSpacePanics(t *testing.T) {
	for _, b := range []uint{0, 64, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSpace(%d) did not panic", b)
				}
			}()
			NewSpace(b)
		}()
	}
}

func TestSpaceBasics(t *testing.T) {
	s := NewSpace(4)
	if s.Bits() != 4 {
		t.Fatalf("Bits = %d, want 4", s.Bits())
	}
	if s.Size() != 16 {
		t.Fatalf("Size = %d, want 16", s.Size())
	}
	if got := s.Wrap(17); got != 1 {
		t.Errorf("Wrap(17) = %d, want 1", got)
	}
	if got := s.Add(15, 3); got != 2 {
		t.Errorf("Add(15,3) = %d, want 2", got)
	}
}

func TestGap(t *testing.T) {
	s := NewSpace(4)
	tests := []struct {
		u, v ID
		want uint64
	}{
		{0, 0, 0},
		{0, 1, 1},
		{1, 0, 15},
		{15, 2, 3},
		{7, 7, 0},
		{3, 12, 9},
	}
	for _, tt := range tests {
		if got := s.Gap(tt.u, tt.v); got != tt.want {
			t.Errorf("Gap(%d,%d) = %d, want %d", tt.u, tt.v, got, tt.want)
		}
	}
}

func TestCeilLog2(t *testing.T) {
	tests := []struct {
		g    uint64
		want uint
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1 << 20, 20}, {1<<20 + 1, 21},
	}
	for _, tt := range tests {
		if got := CeilLog2(tt.g); got != tt.want {
			t.Errorf("CeilLog2(%d) = %d, want %d", tt.g, got, tt.want)
		}
	}
}

func TestChordDist(t *testing.T) {
	s := NewSpace(4)
	tests := []struct {
		u, v ID
		want uint
	}{
		{0, 0, 0},
		{0, 1, 1},  // gap 1: leftmost 1 at position 1
		{0, 2, 2},  // gap 2
		{0, 3, 2},  // gap 3 = 0b11: leftmost 1 at position 2
		{0, 4, 3},  // gap 4
		{0, 5, 3},  // gap 5 = 0b101
		{0, 8, 4},  // gap 8
		{0, 9, 4},  // gap 9
		{0, 15, 4}, // gap 15 = 0b1111
		{14, 2, 3}, // wrap, gap 4
	}
	for _, tt := range tests {
		if got := s.ChordDist(tt.u, tt.v); got != tt.want {
			t.Errorf("ChordDist(%d,%d) = %d, want %d", tt.u, tt.v, got, tt.want)
		}
	}
}

// ChordDist must be the position of the leftmost '1' bit of the gap,
// which is what the paper states below eq. 6.
func TestChordDistLeftmostOneProperty(t *testing.T) {
	s := NewSpace(16)
	f := func(a, b uint16) bool {
		u, v := s.Wrap(uint64(a)), s.Wrap(uint64(b))
		g := s.Gap(u, v)
		want := uint(0)
		for pos := uint(1); pos <= 16; pos++ {
			if g&(1<<(pos-1)) != 0 {
				want = pos // highest set bit wins; keep scanning
			}
		}
		return s.ChordDist(u, v) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCommonPrefixLen(t *testing.T) {
	s := NewSpace(4)
	tests := []struct {
		u, v ID
		want uint
	}{
		{0b1011, 0b1111, 1},
		{0b1011, 0b1011, 4},
		{0b1011, 0b1010, 3},
		{0b0000, 0b1000, 0},
		{0b0100, 0b0101, 3},
	}
	for _, tt := range tests {
		if got := s.CommonPrefixLen(tt.u, tt.v); got != tt.want {
			t.Errorf("CommonPrefixLen(%s,%s) = %d, want %d", s.Format(tt.u), s.Format(tt.v), got, tt.want)
		}
	}
}

// The paper's worked example: the distance between 4-bit ids 1011 and 1111
// is 3 because the longest prefix match is 1.
func TestPastryDistPaperExample(t *testing.T) {
	s := NewSpace(4)
	if got := s.PastryDist(0b1011, 0b1111); got != 3 {
		t.Fatalf("PastryDist(1011,1111) = %d, want 3", got)
	}
}

func TestPastryDistSymmetricProperty(t *testing.T) {
	s := NewSpace(24)
	f := func(a, b uint32) bool {
		u, v := s.Wrap(uint64(a)), s.Wrap(uint64(b))
		return s.PastryDist(u, v) == s.PastryDist(v, u)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitRoundTrip(t *testing.T) {
	s := NewSpace(8)
	v := ID(0b10110010)
	wantBits := []uint{1, 0, 1, 1, 0, 0, 1, 0}
	for i, want := range wantBits {
		if got := s.Bit(v, uint(i)); got != want {
			t.Errorf("Bit(%s, %d) = %d, want %d", s.Format(v), i, got, want)
		}
	}
	// Rebuild the id one bit at a time.
	var r ID
	for i := uint(0); i < 8; i++ {
		r = s.SetBit(r, i, s.Bit(v, i))
	}
	if r != v {
		t.Errorf("SetBit round trip = %s, want %s", s.Format(r), s.Format(v))
	}
}

func TestBitPanicsOutOfRange(t *testing.T) {
	s := NewSpace(4)
	defer func() {
		if recover() == nil {
			t.Error("Bit out of range did not panic")
		}
	}()
	s.Bit(0, 4)
}

func TestBetween(t *testing.T) {
	s := NewSpace(4)
	tests := []struct {
		x, a, b ID
		want    bool
	}{
		{5, 3, 8, true},
		{3, 3, 8, false},
		{8, 3, 8, false},
		{1, 14, 3, true},  // wrapping interval
		{15, 14, 3, true}, // wrapping interval
		{14, 14, 3, false},
		{5, 7, 7, true}, // full ring minus {7}
		{7, 7, 7, false},
	}
	for _, tt := range tests {
		if got := s.Between(tt.x, tt.a, tt.b); got != tt.want {
			t.Errorf("Between(%d,%d,%d) = %v, want %v", tt.x, tt.a, tt.b, got, tt.want)
		}
	}
}

func TestBetweenIncl(t *testing.T) {
	s := NewSpace(4)
	tests := []struct {
		x, a, b ID
		want    bool
	}{
		{8, 3, 8, true},
		{3, 3, 8, false},
		{9, 3, 8, false},
		{3, 14, 3, true},
		{7, 7, 7, true}, // whole ring
	}
	for _, tt := range tests {
		if got := s.BetweenIncl(tt.x, tt.a, tt.b); got != tt.want {
			t.Errorf("BetweenIncl(%d,%d,%d) = %v, want %v", tt.x, tt.a, tt.b, got, tt.want)
		}
	}
}

// Exhaustive consistency on a small ring: Between(x,a,b) must match the
// definition by clockwise gaps for every triple.
func TestBetweenExhaustiveSmallRing(t *testing.T) {
	s := NewSpace(3)
	for a := ID(0); a < 8; a++ {
		for b := ID(0); b < 8; b++ {
			for x := ID(0); x < 8; x++ {
				var want bool
				if a == b {
					want = x != a
				} else {
					// Walk clockwise from a to b, checking interior.
					for c := s.Add(a, 1); c != b; c = s.Add(c, 1) {
						if c == x {
							want = true
							break
						}
					}
				}
				if got := s.Between(x, a, b); got != want {
					t.Fatalf("Between(%d,%d,%d) = %v, want %v", x, a, b, got, want)
				}
			}
		}
	}
}

func TestHashDeterministicAndInRange(t *testing.T) {
	s := NewSpace(20)
	a := s.HashString("example.com")
	b := s.HashString("example.com")
	if a != b {
		t.Fatalf("Hash not deterministic: %d vs %d", a, b)
	}
	if uint64(a) >= s.Size() {
		t.Fatalf("Hash out of range: %d >= %d", a, s.Size())
	}
	if s.HashString("example.com") == s.HashString("example.org") {
		t.Error("distinct keys hashed to the same id (possible but indicates a bug at 20 bits for these keys)")
	}
}

func TestFormat(t *testing.T) {
	s := NewSpace(6)
	if got := s.Format(5); got != "000101" {
		t.Errorf("Format(5) = %q, want %q", got, "000101")
	}
}

// Gap and Between must agree: x in (a,b) iff gap(a,x) < gap(a,b), gap>0.
func TestGapBetweenAgreementProperty(t *testing.T) {
	s := NewSpace(32)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		a := s.Wrap(rng.Uint64())
		b := s.Wrap(rng.Uint64())
		x := s.Wrap(rng.Uint64())
		want := false
		if a == b {
			want = x != a
		} else {
			want = s.Gap(a, x) > 0 && s.Gap(a, x) < s.Gap(a, b)
		}
		if got := s.Between(x, a, b); got != want {
			t.Fatalf("Between(%d,%d,%d) = %v, want %v", x, a, b, got, want)
		}
	}
}

// ChordDist is monotone in the clockwise gap: nodes farther away (in id
// space) are never estimated closer. The selection algorithms rely on this.
func TestChordDistMonotoneProperty(t *testing.T) {
	s := NewSpace(32)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		u := s.Wrap(rng.Uint64())
		g1 := rng.Uint64() % s.Size()
		g2 := rng.Uint64() % s.Size()
		if g1 > g2 {
			g1, g2 = g2, g1
		}
		v1 := s.Add(u, g1)
		v2 := s.Add(u, g2)
		if s.ChordDist(u, v1) > s.ChordDist(u, v2) {
			t.Fatalf("ChordDist not monotone: d(u,u+%d)=%d > d(u,u+%d)=%d",
				g1, s.ChordDist(u, v1), g2, s.ChordDist(u, v2))
		}
	}
}
