package skipgraph

import (
	"math"
	"math/rand"
	"testing"

	"peercache/internal/core"
	"peercache/internal/id"
	"peercache/internal/randx"
)

func buildGraph(t *testing.T, bits uint, n int, seed int64) *Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	raw := randx.UniqueIDs(rng, n, uint64(1)<<bits)
	ids := make([]id.ID, n)
	for i, x := range raw {
		ids[i] = id.ID(x)
	}
	nw, err := Build(Config{Space: id.NewSpace(bits), Seed: seed}, ids)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestBuildValidation(t *testing.T) {
	space := id.NewSpace(8)
	if _, err := Build(Config{Space: space}, []id.ID{1}); err == nil {
		t.Error("single node accepted")
	}
	if _, err := Build(Config{Space: space}, []id.ID{1, 1}); err == nil {
		t.Error("duplicate ids accepted")
	}
	if _, err := Build(Config{Space: space}, []id.ID{1, 999}); err == nil {
		t.Error("out-of-space id accepted")
	}
}

// Level 0 must be the plain successor ring; level i neighbors must agree
// on the first i membership bits and be the closest such node.
func TestLevelStructure(t *testing.T) {
	nw := buildGraph(t, 16, 100, 3)
	ids := nw.IDs()
	for pos, x := range ids {
		n := nw.Node(x)
		if len(n.rights) == 0 {
			t.Fatalf("node %d has no levels", x)
		}
		succ := ids[(pos+1)%len(ids)]
		if n.rights[0] != succ {
			t.Errorf("node %d level-0 neighbor %d, want successor %d", x, n.rights[0], succ)
		}
		for level := 1; level < len(n.rights); level++ {
			mask := ^uint64(0) << (64 - level)
			w := nw.Node(n.rights[level])
			if w.membership&mask != n.membership&mask {
				t.Fatalf("node %d level-%d neighbor disagrees on membership prefix", x, level)
			}
			// No closer clockwise node with the same prefix.
			s := nw.Space()
			for _, other := range ids {
				if other == x || other == n.rights[level] {
					continue
				}
				if nw.Node(other).membership&mask != n.membership&mask {
					continue
				}
				if s.Gap(x, other) < s.Gap(x, n.rights[level]) {
					t.Fatalf("node %d level-%d neighbor %d not closest (found %d)", x, level, n.rights[level], other)
				}
			}
		}
	}
}

// Expected levels grow with log n: neighbors form the Chord-like
// exponential ladder the paper's claim rests on.
func TestLevelsScaleLogarithmically(t *testing.T) {
	small := buildGraph(t, 20, 32, 5)
	big := buildGraph(t, 20, 512, 5)
	avg := func(nw *Network) float64 {
		total := 0
		for _, x := range nw.IDs() {
			total += nw.Node(x).Levels()
		}
		return float64(total) / float64(len(nw.IDs()))
	}
	s, b := avg(small), avg(big)
	if b <= s {
		t.Errorf("levels did not grow with n: %.2f vs %.2f", s, b)
	}
	if b > 3*math.Log2(512) {
		t.Errorf("levels implausibly large: %.2f", b)
	}
}

func TestRouteReachesOwner(t *testing.T) {
	nw := buildGraph(t, 16, 300, 7)
	rng := rand.New(rand.NewSource(8))
	ids := nw.IDs()
	for i := 0; i < 3000; i++ {
		from := ids[rng.Intn(len(ids))]
		key := id.ID(rng.Intn(1 << 16))
		res, err := nw.Route(from, key)
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK {
			t.Fatalf("lookup failed: %+v", res)
		}
		if res.Dest != nw.Owner(key) {
			t.Fatalf("Dest %d, want %d", res.Dest, nw.Owner(key))
		}
		if res.Hops > 30 {
			t.Errorf("lookup took %d hops", res.Hops)
		}
	}
}

func TestRouteSelfOwned(t *testing.T) {
	nw := buildGraph(t, 16, 50, 9)
	x := nw.IDs()[0]
	res, err := nw.Route(x, x)
	if err != nil || !res.OK || res.Hops != 0 {
		t.Fatalf("self lookup: %+v %v", res, err)
	}
}

func TestSetAuxValidation(t *testing.T) {
	nw := buildGraph(t, 16, 50, 10)
	x := nw.IDs()[0]
	if err := nw.SetAux(x, []id.ID{x}); err == nil {
		t.Error("self-aux accepted")
	}
	if err := nw.SetAux(12345, nil); err == nil {
		t.Error("unknown node accepted")
	}
}

// The paper's portability claim, executed: the Chord selection algorithm
// run against a skip-graph node's neighbors cuts its measured lookups.
func TestChordSelectionPortsToSkipGraph(t *testing.T) {
	nw := buildGraph(t, 20, 400, 11)
	rng := rand.New(rand.NewSource(12))
	ids := nw.IDs()
	src := ids[0]

	// Zipf-skewed destination mix, observed in the node's counter.
	alias := randx.NewAlias(randx.ZipfWeights(len(ids)-1, 1.2))
	perm := rng.Perm(len(ids) - 1)
	mix := make([]id.ID, 4000)
	for i := range mix {
		mix[i] = ids[1+perm[alias.Sample(rng)]]
		nw.Node(src).Counter.Observe(mix[i])
	}
	measure := func() float64 {
		total := 0
		for _, dst := range mix {
			res, err := nw.Route(src, dst)
			if err != nil || !res.OK {
				t.Fatalf("lookup failed: %v %+v", err, res)
			}
			total += res.Hops
		}
		return float64(total) / float64(len(mix))
	}
	before := measure()

	peers := make([]core.Peer, 0)
	for _, e := range nw.Node(src).Counter.Snapshot() {
		peers = append(peers, core.Peer{ID: e.Peer, Freq: float64(e.Count)})
	}
	res, err := core.SelectChordFast(nw.Space(), src, nw.Node(src).Neighbors(), peers, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.SetAux(src, res.Aux); err != nil {
		t.Fatal(err)
	}
	after := measure()
	if after >= before {
		t.Fatalf("selection did not help on skip graph: %.3f -> %.3f", before, after)
	}
	if reduction := 100 * (before - after) / before; reduction < 20 {
		t.Errorf("reduction only %.1f%% (before %.3f after %.3f)", reduction, before, after)
	}
}

func TestDeterministicBuild(t *testing.T) {
	a := buildGraph(t, 16, 100, 13)
	b := buildGraph(t, 16, 100, 13)
	for _, x := range a.IDs() {
		na, nb := a.Node(x), b.Node(x)
		if na.Levels() != nb.Levels() {
			t.Fatal("levels differ across identical builds")
		}
		for i := range na.rights {
			if na.rights[i] != nb.rights[i] {
				t.Fatal("neighbors differ across identical builds")
			}
		}
	}
}
