// Package skipgraph implements a circular skip graph (Aspnes & Shah),
// the third overlay family the paper names: "the techniques presented
// for Chord are applicable to SkipGraphs" (Section I). Each node draws a
// random membership vector; its level-i neighbor is the closest
// clockwise node agreeing with it on the first i membership bits, so
// neighbor distances grow geometrically — the same exponential
// small-world structure as Chord's fingers, which is exactly why the
// eq. 6 distance estimate and the Chord selection algorithm carry over.
//
// Routing is the familiar greedy rule: forward to the known neighbor —
// level neighbor or auxiliary — closest to the target without
// overshooting.
package skipgraph

import (
	"fmt"
	"math/rand"
	"sort"

	"peercache/internal/freq"
	"peercache/internal/id"
)

// Config parameterizes a skip graph.
type Config struct {
	// Space is the identifier space.
	Space id.Space
	// MaxHops caps a lookup. Defaults to 4·b when 0.
	MaxHops int
	// Seed draws the membership vectors.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.MaxHops == 0 {
		c.MaxHops = 4 * int(c.Space.Bits())
	}
	return c
}

// Node is one skip-graph participant.
type Node struct {
	id         id.ID
	membership uint64
	// rights[i] is the level-i clockwise neighbor: the closest node
	// agreeing on the first i membership bits. Level 0 is the plain
	// successor. Levels stop once the node is alone in its list.
	rights []id.ID
	aux    []id.ID

	// Counter accumulates lookup destinations, the selection input.
	Counter *freq.Exact
}

// ID returns the node id.
func (n *Node) ID() id.ID { return n.id }

// Neighbors returns the node's deduplicated level neighbors — its core
// neighbor set for auxiliary selection.
func (n *Node) Neighbors() []id.ID {
	seen := make(map[id.ID]bool, len(n.rights))
	var out []id.ID
	for _, w := range n.rights {
		if w != n.id && !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

// Aux returns a copy of the auxiliary set.
func (n *Node) Aux() []id.ID { return append([]id.ID(nil), n.aux...) }

// Levels returns how many list levels the node participates in.
func (n *Node) Levels() int { return len(n.rights) }

// Network is a built skip graph over a fixed membership (the paper's
// stable-mode setting).
type Network struct {
	cfg    Config
	sorted []id.ID
	nodes  map[id.ID]*Node
}

// Build constructs the skip graph over the given node ids: membership
// vectors are drawn from the config seed, and every level list is
// derived from them. Duplicate ids are an error.
func Build(cfg Config, ids []id.ID) (*Network, error) {
	cfg = cfg.withDefaults()
	if len(ids) < 2 {
		return nil, fmt.Errorf("skipgraph: need at least 2 nodes, have %d", len(ids))
	}
	nw := &Network{cfg: cfg, nodes: make(map[id.ID]*Node, len(ids))}
	rng := rand.New(rand.NewSource(cfg.Seed))
	nw.sorted = append([]id.ID(nil), ids...)
	sort.Slice(nw.sorted, func(i, j int) bool { return nw.sorted[i] < nw.sorted[j] })
	for i, x := range nw.sorted {
		if uint64(x) >= cfg.Space.Size() {
			return nil, fmt.Errorf("skipgraph: node %d outside %d-bit space", x, cfg.Space.Bits())
		}
		if i > 0 && nw.sorted[i-1] == x {
			return nil, fmt.Errorf("skipgraph: duplicate node %d", x)
		}
	}
	// Membership vectors in id order for determinism.
	for _, x := range nw.sorted {
		nw.nodes[x] = &Node{id: x, membership: rng.Uint64(), Counter: freq.NewExact()}
	}
	// Level-i right neighbor: the closest clockwise node sharing the
	// first i membership bits. Stop when alone at a level.
	m := len(nw.sorted)
	for pos, x := range nw.sorted {
		n := nw.nodes[x]
		for level := 0; level < 64; level++ {
			mask := uint64(0)
			if level > 0 {
				mask = ^uint64(0) << (64 - level)
			}
			found := false
			for step := 1; step < m; step++ {
				w := nw.sorted[(pos+step)%m]
				if nw.nodes[w].membership&mask == n.membership&mask {
					n.rights = append(n.rights, w)
					found = true
					break
				}
			}
			if !found {
				break // alone in this level's list
			}
		}
	}
	return nw, nil
}

// Space returns the identifier space.
func (nw *Network) Space() id.Space { return nw.cfg.Space }

// IDs returns the sorted node ids (do not modify).
func (nw *Network) IDs() []id.ID { return nw.sorted }

// Node returns the node with the given id, or nil.
func (nw *Network) Node(x id.ID) *Node { return nw.nodes[x] }

// Owner returns the node responsible for key under the predecessor
// assignment, mirroring the Chord convention.
func (nw *Network) Owner(key id.ID) id.ID {
	i := sort.Search(len(nw.sorted), func(i int) bool { return nw.sorted[i] > key })
	if i == 0 {
		i = len(nw.sorted)
	}
	return nw.sorted[i-1]
}

// SetAux installs node x's auxiliary neighbor set.
func (nw *Network) SetAux(x id.ID, aux []id.ID) error {
	n := nw.nodes[x]
	if n == nil {
		return fmt.Errorf("skipgraph: SetAux on unknown node %d", x)
	}
	for _, a := range aux {
		if a == x {
			return fmt.Errorf("skipgraph: aux of node %d contains itself", x)
		}
	}
	n.aux = append(n.aux[:0:0], aux...)
	return nil
}

// RouteResult describes one lookup.
type RouteResult struct {
	Dest id.ID
	Hops int
	OK   bool
}

// Route performs a lookup for key from node from: greedy clockwise
// forwarding over level neighbors and auxiliaries, never overshooting
// the owner.
func (nw *Network) Route(from id.ID, key id.ID) (RouteResult, error) {
	src := nw.nodes[from]
	if src == nil {
		return RouteResult{}, fmt.Errorf("skipgraph: route from unknown node %d", from)
	}
	dest := nw.Owner(key)
	res := RouteResult{Dest: dest}
	s := nw.cfg.Space
	cur := src
	for cur.id != dest {
		if res.Hops >= nw.cfg.MaxHops {
			return res, nil
		}
		gt := s.Gap(cur.id, dest)
		var best id.ID
		bestGap := uint64(0)
		for _, set := range [][]id.ID{cur.rights, cur.aux} {
			for _, w := range set {
				if g := s.Gap(cur.id, w); g > bestGap && g <= gt {
					best, bestGap = w, g
				}
			}
		}
		if bestGap == 0 {
			return res, nil // dead end (cannot happen with a level-0 ring)
		}
		cur = nw.nodes[best]
		res.Hops++
	}
	res.OK = true
	return res, nil
}
