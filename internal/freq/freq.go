// Package freq tracks per-peer access frequencies at a node, the input to
// the auxiliary-neighbor selection algorithms.
//
// Section III of the paper: frequencies "can be easily maintained by s
// based on past history of accesses within a time window", and when the
// number of accessed nodes is large, "a node can simply store the top-n
// frequent nodes ... using standard streaming algorithms". The package
// provides both: an Exact counter table and a SpaceSaving top-N sketch
// (Metwally, Agrawal, El Abbadi) with the usual guarantee that every peer
// whose true count exceeds N/capacity is monitored.
package freq

import (
	"container/heap"
	"fmt"
	"sort"

	"peercache/internal/id"
)

// Entry is one peer's observed access count. For SpaceSaving counters the
// Count may overestimate the true count by at most Err.
type Entry struct {
	Peer  id.ID
	Count uint64
	Err   uint64
}

// Counter is the access-frequency tracking interface consumed by the
// selection layer.
type Counter interface {
	// Observe records one query destined for peer p.
	Observe(p id.ID)
	// Total returns the number of observations recorded.
	Total() uint64
	// Snapshot returns the tracked peers ordered by descending count
	// (ties broken by ascending id, so snapshots are deterministic).
	Snapshot() []Entry
	// Reset clears all state, starting a fresh observation window.
	Reset()
}

// Exact counts every distinct peer exactly. Memory grows with the number
// of distinct peers observed.
type Exact struct {
	counts map[id.ID]uint64
	total  uint64
}

// NewExact returns an empty exact counter.
func NewExact() *Exact {
	return &Exact{counts: make(map[id.ID]uint64)}
}

// Observe implements Counter.
func (e *Exact) Observe(p id.ID) {
	e.counts[p]++
	e.total++
}

// ObserveN records n queries for p in one call.
func (e *Exact) ObserveN(p id.ID, n uint64) {
	if n == 0 {
		return
	}
	e.counts[p] += n
	e.total += n
}

// Total implements Counter.
func (e *Exact) Total() uint64 { return e.total }

// Count returns the exact count for p (0 if never observed).
func (e *Exact) Count(p id.ID) uint64 { return e.counts[p] }

// Distinct returns the number of distinct peers observed.
func (e *Exact) Distinct() int { return len(e.counts) }

// Snapshot implements Counter.
func (e *Exact) Snapshot() []Entry {
	out := make([]Entry, 0, len(e.counts))
	for p, c := range e.counts {
		out = append(out, Entry{Peer: p, Count: c})
	}
	sortEntries(out)
	return out
}

// Reset implements Counter.
func (e *Exact) Reset() {
	e.counts = make(map[id.ID]uint64)
	e.total = 0
}

// SpaceSaving is the Space-Saving top-N streaming sketch. It monitors at
// most capacity peers using O(capacity) memory. Guarantees, with N the
// number of observations: every peer with true count > N/capacity is
// monitored, and for each monitored peer,
// trueCount <= Count <= trueCount + Err with Err <= N/capacity.
type SpaceSaving struct {
	capacity int
	total    uint64
	byPeer   map[id.ID]*ssEntry
	h        ssHeap
}

type ssEntry struct {
	peer  id.ID
	count uint64
	err   uint64
	index int // position in the heap
}

// NewSpaceSaving returns a sketch monitoring at most capacity peers. It
// panics if capacity < 1.
func NewSpaceSaving(capacity int) *SpaceSaving {
	if capacity < 1 {
		panic(fmt.Sprintf("freq: SpaceSaving capacity %d", capacity))
	}
	return &SpaceSaving{
		capacity: capacity,
		byPeer:   make(map[id.ID]*ssEntry, capacity),
	}
}

// Capacity returns the maximum number of monitored peers.
func (s *SpaceSaving) Capacity() int { return s.capacity }

// Observe implements Counter.
func (s *SpaceSaving) Observe(p id.ID) {
	s.total++
	if e, ok := s.byPeer[p]; ok {
		e.count++
		heap.Fix(&s.h, e.index)
		return
	}
	if len(s.h) < s.capacity {
		e := &ssEntry{peer: p, count: 1}
		s.byPeer[p] = e
		heap.Push(&s.h, e)
		return
	}
	// Evict the minimum-count peer; the newcomer inherits its count as
	// the standard Space-Saving overestimate.
	min := s.h[0]
	delete(s.byPeer, min.peer)
	min.err = min.count
	min.count++
	min.peer = p
	s.byPeer[p] = min
	heap.Fix(&s.h, 0)
}

// Total implements Counter.
func (s *SpaceSaving) Total() uint64 { return s.total }

// Monitored returns the number of peers currently tracked.
func (s *SpaceSaving) Monitored() int { return len(s.h) }

// Snapshot implements Counter.
func (s *SpaceSaving) Snapshot() []Entry {
	out := make([]Entry, 0, len(s.h))
	for _, e := range s.h {
		out = append(out, Entry{Peer: e.peer, Count: e.count, Err: e.err})
	}
	sortEntries(out)
	return out
}

// Reset implements Counter.
func (s *SpaceSaving) Reset() {
	s.total = 0
	s.byPeer = make(map[id.ID]*ssEntry, s.capacity)
	s.h = nil
}

func sortEntries(es []Entry) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].Count != es[j].Count {
			return es[i].Count > es[j].Count
		}
		return es[i].Peer < es[j].Peer
	})
}

// ssHeap is a min-heap by count.
type ssHeap []*ssEntry

func (h ssHeap) Len() int           { return len(h) }
func (h ssHeap) Less(i, j int) bool { return h[i].count < h[j].count }
func (h ssHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *ssHeap) Push(x any)        { e := x.(*ssEntry); e.index = len(*h); *h = append(*h, e) }
func (h *ssHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
