package freq

import (
	"testing"

	"peercache/internal/id"
)

func TestWindowedMatchesExactWithinWindow(t *testing.T) {
	w := NewWindowed(4)
	e := NewExact()
	for i := 0; i < 1000; i++ {
		p := id.ID(i % 37)
		w.Observe(p)
		e.Observe(p)
	}
	if w.Total() != e.Total() {
		t.Fatalf("total %d, want %d", w.Total(), e.Total())
	}
	ws, es := w.Snapshot(), e.Snapshot()
	if len(ws) != len(es) {
		t.Fatalf("snapshot lengths %d vs %d", len(ws), len(es))
	}
	for i := range ws {
		if ws[i].Peer != es[i].Peer || ws[i].Count != es[i].Count {
			t.Fatalf("entry %d: %+v vs %+v", i, ws[i], es[i])
		}
	}
}

// Observations must disappear exactly after len(buckets) rotations.
func TestWindowedForgets(t *testing.T) {
	const buckets = 3
	w := NewWindowed(buckets)
	w.Observe(id.ID(1))
	for r := 1; r < buckets; r++ {
		w.Rotate()
		if got := w.Count(1); got != 1 {
			t.Fatalf("after %d rotations: count %d, want 1", r, got)
		}
	}
	w.Rotate()
	if got := w.Count(1); got != 0 {
		t.Fatalf("after %d rotations: count %d, want 0", buckets, got)
	}
	if w.Total() != 0 {
		t.Fatalf("total %d, want 0", w.Total())
	}
}

// Rotation retires buckets oldest-first: mass observed later survives
// rotations that erase earlier mass.
func TestWindowedRetiresOldestFirst(t *testing.T) {
	w := NewWindowed(2)
	w.Observe(id.ID(10)) // bucket 0
	w.Rotate()
	w.Observe(id.ID(20)) // bucket 1
	w.Rotate()           // retires bucket 0 (peer 10)
	if w.Count(10) != 0 {
		t.Fatalf("old peer survived: count %d", w.Count(10))
	}
	if w.Count(20) != 1 {
		t.Fatalf("recent peer lost: count %d", w.Count(20))
	}
}

func TestWindowedResetAndDegenerate(t *testing.T) {
	w := NewWindowed(0) // clamped to 1 bucket
	w.Observe(id.ID(5))
	w.Rotate() // single bucket: rotate == forget everything
	if w.Total() != 0 {
		t.Fatalf("total %d after single-bucket rotate", w.Total())
	}
	w.Observe(id.ID(6))
	w.Reset()
	if w.Total() != 0 || len(w.Snapshot()) != 0 {
		t.Fatalf("reset left state: total %d", w.Total())
	}
}
