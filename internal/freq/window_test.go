package freq

import (
	"testing"

	"peercache/internal/id"
)

func TestWindowedMatchesExactWithinWindow(t *testing.T) {
	w := NewWindowed(4)
	e := NewExact()
	for i := 0; i < 1000; i++ {
		p := id.ID(i % 37)
		w.Observe(p)
		e.Observe(p)
	}
	if w.Total() != e.Total() {
		t.Fatalf("total %d, want %d", w.Total(), e.Total())
	}
	ws, es := w.Snapshot(), e.Snapshot()
	if len(ws) != len(es) {
		t.Fatalf("snapshot lengths %d vs %d", len(ws), len(es))
	}
	for i := range ws {
		if ws[i].Peer != es[i].Peer || ws[i].Count != es[i].Count {
			t.Fatalf("entry %d: %+v vs %+v", i, ws[i], es[i])
		}
	}
}

// Observations must disappear exactly after len(buckets) rotations.
func TestWindowedForgets(t *testing.T) {
	const buckets = 3
	w := NewWindowed(buckets)
	w.Observe(id.ID(1))
	for r := 1; r < buckets; r++ {
		w.Rotate()
		if got := w.Count(1); got != 1 {
			t.Fatalf("after %d rotations: count %d, want 1", r, got)
		}
	}
	w.Rotate()
	if got := w.Count(1); got != 0 {
		t.Fatalf("after %d rotations: count %d, want 0", buckets, got)
	}
	if w.Total() != 0 {
		t.Fatalf("total %d, want 0", w.Total())
	}
}

// Rotation retires buckets oldest-first: mass observed later survives
// rotations that erase earlier mass.
func TestWindowedRetiresOldestFirst(t *testing.T) {
	w := NewWindowed(2)
	w.Observe(id.ID(10)) // bucket 0
	w.Rotate()
	w.Observe(id.ID(20)) // bucket 1
	w.Rotate()           // retires bucket 0 (peer 10)
	if w.Count(10) != 0 {
		t.Fatalf("old peer survived: count %d", w.Count(10))
	}
	if w.Count(20) != 1 {
		t.Fatalf("recent peer lost: count %d", w.Count(20))
	}
}

// A long idle gap — many more rotations than there are buckets, with
// no observations at all — must drain the window to empty and leave it
// fully usable: the live node rotates on a timer whether or not traffic
// flowed, so an overnight-quiet node spins through hundreds of empty
// rotations and then has to account fresh traffic exactly.
func TestWindowedLongIdleGap(t *testing.T) {
	const buckets = 4
	w := NewWindowed(buckets)
	for i := 0; i < 100; i++ {
		w.Observe(id.ID(i % 7))
	}
	if w.Total() != 100 {
		t.Fatalf("total %d before the gap", w.Total())
	}
	// Idle: 50 rotations spanning the ring many times over, never
	// observing anything.
	for r := 0; r < 50; r++ {
		w.Rotate()
	}
	if w.Total() != 0 || len(w.Snapshot()) != 0 {
		t.Fatalf("idle gap left residue: total %d, snapshot %v", w.Total(), w.Snapshot())
	}
	// The counter must come back exact after the gap.
	w.Observe(id.ID(3))
	w.Observe(id.ID(3))
	w.Observe(id.ID(9))
	if w.Count(3) != 2 || w.Count(9) != 1 || w.Total() != 3 {
		t.Fatalf("post-gap counts: 3→%d 9→%d total %d", w.Count(3), w.Count(9), w.Total())
	}
	s := w.Snapshot()
	if len(s) != 2 || s[0].Peer != 3 || s[0].Count != 2 {
		t.Fatalf("post-gap snapshot %v", s)
	}
}

// An observation landing exactly at a rotation boundary belongs to
// whichever bucket is current at that instant, and its lifetime is
// measured from that bucket: observed immediately *after* a rotation it
// survives a full len(buckets) further rotations minus one; observed
// immediately *before*, it is the oldest content and dies that much
// sooner. The boundary must not double-count or skip.
func TestWindowedRotationBoundaryCounts(t *testing.T) {
	const buckets = 3
	w := NewWindowed(buckets)

	// Observed just before a rotation: the bucket it sits in becomes
	// one rotation old immediately.
	w.Observe(id.ID(1))
	w.Rotate()
	// Observed just after the same rotation: a full lifetime ahead.
	w.Observe(id.ID(2))

	// One more rotation: both still visible (ages 2 and 1 of 3).
	w.Rotate()
	if w.Count(1) != 1 || w.Count(2) != 1 {
		t.Fatalf("after rotation: 1→%d 2→%d", w.Count(1), w.Count(2))
	}
	// Third rotation retires peer 1's bucket but not peer 2's.
	w.Rotate()
	if w.Count(1) != 0 {
		t.Fatalf("peer observed pre-boundary survived %d rotations: count %d", buckets, w.Count(1))
	}
	if w.Count(2) != 1 {
		t.Fatalf("peer observed post-boundary died early: count %d", w.Count(2))
	}
	if w.Total() != 1 {
		t.Fatalf("total %d, want 1", w.Total())
	}
	// And one more retires peer 2 too.
	w.Rotate()
	if w.Count(2) != 0 || w.Total() != 0 {
		t.Fatalf("peer 2 outlived its window: count %d total %d", w.Count(2), w.Total())
	}
}

// Observations split across a rotation boundary for the same peer must
// aggregate in Count/Snapshot while each half still expires on its own
// schedule.
func TestWindowedBoundarySplitAggregates(t *testing.T) {
	w := NewWindowed(2)
	w.Observe(id.ID(5))
	w.Observe(id.ID(5))
	w.Rotate()
	w.Observe(id.ID(5))
	if w.Count(5) != 3 {
		t.Fatalf("split count %d, want 3", w.Count(5))
	}
	s := w.Snapshot()
	if len(s) != 1 || s[0].Count != 3 {
		t.Fatalf("split snapshot %v", s)
	}
	w.Rotate() // retires the two pre-boundary observations only
	if w.Count(5) != 1 {
		t.Fatalf("after retiring the old half: count %d, want 1", w.Count(5))
	}
}

func TestWindowedResetAndDegenerate(t *testing.T) {
	w := NewWindowed(0) // clamped to 1 bucket
	w.Observe(id.ID(5))
	w.Rotate() // single bucket: rotate == forget everything
	if w.Total() != 0 {
		t.Fatalf("total %d after single-bucket rotate", w.Total())
	}
	w.Observe(id.ID(6))
	w.Reset()
	if w.Total() != 0 || len(w.Snapshot()) != 0 {
		t.Fatalf("reset left state: total %d", w.Total())
	}
}
