package freq

import (
	"math/rand"
	"testing"
	"testing/quick"

	"peercache/internal/id"
	"peercache/internal/randx"
)

func TestExactBasics(t *testing.T) {
	e := NewExact()
	e.Observe(3)
	e.Observe(3)
	e.Observe(7)
	e.ObserveN(9, 5)
	e.ObserveN(9, 0) // no-op

	if e.Total() != 8 {
		t.Errorf("Total = %d, want 8", e.Total())
	}
	if e.Count(3) != 2 || e.Count(7) != 1 || e.Count(9) != 5 || e.Count(100) != 0 {
		t.Errorf("counts wrong: %d %d %d %d", e.Count(3), e.Count(7), e.Count(9), e.Count(100))
	}
	if e.Distinct() != 3 {
		t.Errorf("Distinct = %d, want 3", e.Distinct())
	}
	snap := e.Snapshot()
	want := []Entry{{Peer: 9, Count: 5}, {Peer: 3, Count: 2}, {Peer: 7, Count: 1}}
	if len(snap) != len(want) {
		t.Fatalf("snapshot length %d, want %d", len(snap), len(want))
	}
	for i := range want {
		if snap[i].Peer != want[i].Peer || snap[i].Count != want[i].Count {
			t.Errorf("snap[%d] = %+v, want %+v", i, snap[i], want[i])
		}
	}
}

func TestExactSnapshotTieBreak(t *testing.T) {
	e := NewExact()
	e.Observe(5)
	e.Observe(2)
	e.Observe(9)
	snap := e.Snapshot()
	if snap[0].Peer != 2 || snap[1].Peer != 5 || snap[2].Peer != 9 {
		t.Errorf("tie break not by ascending id: %v", snap)
	}
}

func TestExactReset(t *testing.T) {
	e := NewExact()
	e.Observe(1)
	e.Reset()
	if e.Total() != 0 || e.Distinct() != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestSpaceSavingExactWhenUnderCapacity(t *testing.T) {
	s := NewSpaceSaving(10)
	for i := 0; i < 5; i++ {
		for j := 0; j <= i; j++ {
			s.Observe(id.ID(i))
		}
	}
	if s.Monitored() != 5 {
		t.Fatalf("Monitored = %d, want 5", s.Monitored())
	}
	for _, e := range s.Snapshot() {
		if e.Err != 0 {
			t.Errorf("peer %d has error %d under capacity", e.Peer, e.Err)
		}
		if e.Count != uint64(e.Peer)+1 {
			t.Errorf("peer %d count = %d, want %d", e.Peer, e.Count, uint64(e.Peer)+1)
		}
	}
}

func TestSpaceSavingCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("capacity 0 did not panic")
		}
	}()
	NewSpaceSaving(0)
}

// The Space-Saving guarantee: every peer with true count > N/capacity is
// monitored, and the sketch never underestimates a monitored peer.
func TestSpaceSavingGuarantees(t *testing.T) {
	const capacity = 32
	s := NewSpaceSaving(capacity)
	truth := make(map[id.ID]uint64)

	rng := rand.New(rand.NewSource(17))
	alias := randx.NewAlias(randx.ZipfWeights(500, 1.2))
	perm := rng.Perm(500)
	const n = 100000
	for i := 0; i < n; i++ {
		p := id.ID(perm[alias.Sample(rng)])
		truth[p]++
		s.Observe(p)
	}
	if s.Total() != n {
		t.Fatalf("Total = %d, want %d", s.Total(), n)
	}

	monitored := make(map[id.ID]Entry)
	for _, e := range s.Snapshot() {
		monitored[e.Peer] = e
	}
	threshold := uint64(n / capacity)
	for p, c := range truth {
		if c > threshold {
			if _, ok := monitored[p]; !ok {
				t.Errorf("heavy hitter %d (count %d > %d) not monitored", p, c, threshold)
			}
		}
	}
	for p, e := range monitored {
		if e.Count < truth[p] {
			t.Errorf("peer %d underestimated: %d < %d", p, e.Count, truth[p])
		}
		if e.Count-e.Err > truth[p] {
			t.Errorf("peer %d: count-err %d exceeds truth %d", p, e.Count-e.Err, truth[p])
		}
		if e.Err > threshold {
			t.Errorf("peer %d error %d exceeds N/capacity %d", p, e.Err, threshold)
		}
	}
	if len(monitored) > capacity {
		t.Errorf("monitored %d peers, capacity %d", len(monitored), capacity)
	}
}

func TestSpaceSavingEviction(t *testing.T) {
	s := NewSpaceSaving(2)
	s.Observe(1)
	s.Observe(1)
	s.Observe(2)
	s.Observe(3) // must evict peer 2 (count 1), newcomer gets count 2, err 1
	snap := s.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("monitoring %d, want 2", len(snap))
	}
	byPeer := map[id.ID]Entry{}
	for _, e := range snap {
		byPeer[e.Peer] = e
	}
	if _, ok := byPeer[2]; ok {
		t.Error("peer 2 should have been evicted")
	}
	e3, ok := byPeer[3]
	if !ok || e3.Count != 2 || e3.Err != 1 {
		t.Errorf("peer 3 entry = %+v, want count 2 err 1", e3)
	}
}

func TestSpaceSavingReset(t *testing.T) {
	s := NewSpaceSaving(4)
	for i := 0; i < 10; i++ {
		s.Observe(id.ID(i))
	}
	s.Reset()
	if s.Total() != 0 || s.Monitored() != 0 {
		t.Error("Reset did not clear state")
	}
	s.Observe(1)
	if s.Monitored() != 1 {
		t.Error("sketch unusable after Reset")
	}
}

// Exact and SpaceSaving must agree exactly when capacity covers the whole
// universe of peers.
func TestSpaceSavingMatchesExactWithFullCapacity(t *testing.T) {
	e := NewExact()
	s := NewSpaceSaving(64)
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 20000; i++ {
		p := id.ID(rng.Intn(64))
		e.Observe(p)
		s.Observe(p)
	}
	se, ss := e.Snapshot(), s.Snapshot()
	if len(se) != len(ss) {
		t.Fatalf("snapshot lengths differ: %d vs %d", len(se), len(ss))
	}
	for i := range se {
		if se[i].Peer != ss[i].Peer || se[i].Count != ss[i].Count || ss[i].Err != 0 {
			t.Errorf("entry %d: exact %+v vs sketch %+v", i, se[i], ss[i])
		}
	}
}

var _ Counter = (*Exact)(nil)
var _ Counter = (*SpaceSaving)(nil)

// quick property: for any observation stream, the sketch never
// underestimates a monitored peer and never exceeds its capacity.
func TestSpaceSavingQuickProperties(t *testing.T) {
	f := func(stream []uint8) bool {
		s := NewSpaceSaving(8)
		truth := map[id.ID]uint64{}
		for _, raw := range stream {
			p := id.ID(raw % 32)
			s.Observe(p)
			truth[p]++
		}
		if s.Monitored() > 8 {
			return false
		}
		for _, e := range s.Snapshot() {
			if e.Count < truth[e.Peer] {
				return false
			}
		}
		return s.Total() == uint64(len(stream))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
