package freq

import "peercache/internal/id"

// Windowed is a rotating-bucket counter: observations land in the
// current bucket, Rotate retires the oldest of the configured buckets,
// and Snapshot/Total aggregate over all live buckets. It realizes the
// paper's "past history of accesses within a time window" (Section III)
// for the live runtime, where traffic shifts over time and a node must
// forget peers it no longer queries — an Exact counter would keep cold
// peers in the candidate set forever. The caller drives rotation (the
// live node ties it to its recompute ticker), which keeps this package
// free of clocks and fully deterministic under test.
type Windowed struct {
	buckets []*Exact
	cur     int
}

// NewWindowed returns a counter aggregating over n rotating buckets
// (n >= 1; with n == 1 each Rotate is a full reset). Observations are
// forgotten after n rotations.
func NewWindowed(n int) *Windowed {
	if n < 1 {
		n = 1
	}
	w := &Windowed{buckets: make([]*Exact, n)}
	for i := range w.buckets {
		w.buckets[i] = NewExact()
	}
	return w
}

// Observe implements Counter.
func (w *Windowed) Observe(p id.ID) { w.buckets[w.cur].Observe(p) }

// Rotate retires the oldest bucket and starts a fresh one; observations
// older than len(buckets) rotations disappear from Snapshot and Total.
func (w *Windowed) Rotate() {
	w.cur = (w.cur + 1) % len(w.buckets)
	w.buckets[w.cur] = NewExact()
}

// Total implements Counter: the number of observations still in the
// window.
func (w *Windowed) Total() uint64 {
	var t uint64
	for _, b := range w.buckets {
		t += b.Total()
	}
	return t
}

// Count returns p's observation count within the window.
func (w *Windowed) Count(p id.ID) uint64 {
	var c uint64
	for _, b := range w.buckets {
		c += b.Count(p)
	}
	return c
}

// Snapshot implements Counter, aggregating the live buckets.
func (w *Windowed) Snapshot() []Entry {
	merged := make(map[id.ID]uint64)
	for _, b := range w.buckets {
		for _, e := range b.Snapshot() {
			merged[e.Peer] += e.Count
		}
	}
	out := make([]Entry, 0, len(merged))
	for p, c := range merged {
		out = append(out, Entry{Peer: p, Count: c})
	}
	sortEntries(out)
	return out
}

// Reset implements Counter, clearing every bucket.
func (w *Windowed) Reset() {
	for i := range w.buckets {
		w.buckets[i] = NewExact()
	}
	w.cur = 0
}
