package chunk

import (
	"errors"
	"fmt"
	"time"

	"peercache/internal/id"
)

// KV is the data-plane surface the chunk layer drives. Two adapters
// exist today: internal/kv wraps its anonymous client (Resolve + owner
// RPC per key), and the harnesses wrap node.Node directly — typically
// over FindValue, whose α-raced any-copy walk gives chunk reads the
// owner+replica fallback for free. Implementations must be safe for
// concurrent use; the fetch engine calls Get from Window goroutines.
type KV interface {
	// Put stores value under key at the key's owner.
	Put(key id.ID, value []byte) error
	// Get fetches the value stored under key and reports the lookup
	// hops spent resolving it (0 when the adapter cannot count them).
	Get(key id.ID) (value []byte, hops int, err error)
}

// FuncKV adapts two closures to KV, the idiom for wrapping a node or a
// client without a dependency on either from this package.
type FuncKV struct {
	PutFunc func(id.ID, []byte) error
	GetFunc func(id.ID) ([]byte, int, error)
}

// Put implements KV.
func (f FuncKV) Put(key id.ID, value []byte) error { return f.PutFunc(key, value) }

// Get implements KV.
func (f FuncKV) Get(key id.ID) ([]byte, int, error) { return f.GetFunc(key) }

// Options parameterizes a Store.
type Options struct {
	// Space is the ring's identifier space (required; chunk keys are
	// derived in it).
	Space id.Space
	// ChunkSize is the split width (default DefaultChunkSize, the wire
	// value limit; smaller values trade per-chunk overhead for more
	// placement spread and are mainly useful in tests).
	ChunkSize int
	// Window bounds the parallel chunk transfers of PutObject and
	// GetObject (default 4).
	Window int
	// Prefetch is a Reader's lookahead depth w: while the application
	// consumes chunk i, chunks i+1..i+w are already being resolved and
	// fetched, warming the origin's frequency observer and owner-hint
	// cache before the read arrives. 0 (the default here) fetches
	// strictly on demand; user-facing layers pick their own default
	// (kv.OpenStream and cmd/p2pstream use 2).
	Prefetch int
	// Retries is how many times one chunk fetch is retried after an
	// error or digest mismatch (default 2). Each retry re-resolves the
	// key, so a churned or partitioned-away owner falls back to
	// whatever holder the next lookup finds.
	Retries int
	// RetryBackoff is the delay before the first retry, doubling per
	// attempt (default 20ms).
	RetryBackoff time.Duration
	// StrongGet, when set, replaces Get on the retry attempts that
	// follow a digest or manifest-decode mismatch. An any-copy read may
	// return a bounded-stale replica copy — after an overwrite, up to
	// one replication period behind the owner — and for
	// integrity-checked chunk data that staleness surfaces as a digest
	// mismatch. Re-racing the same any-copy lookup can land on the same
	// stale holder, so the escalation is an authoritative read (the
	// key's resolved owner). Plain errors (timeouts, lookup failures)
	// keep using Get: those are availability problems, where the
	// any-copy race is the right tool.
	StrongGet func(id.ID) ([]byte, int, error)
}

func (o Options) withDefaults() (Options, error) {
	if o.Space.Bits() == 0 {
		return o, fmt.Errorf("chunk: zero-value id space")
	}
	if o.ChunkSize == 0 {
		o.ChunkSize = DefaultChunkSize
	}
	if o.ChunkSize < 1 || o.ChunkSize > DefaultChunkSize {
		return o, fmt.Errorf("chunk: chunk size %d outside [1, %d]", o.ChunkSize, DefaultChunkSize)
	}
	if o.Window == 0 {
		o.Window = 4
	}
	if o.Window < 1 {
		return o, fmt.Errorf("chunk: window %d below 1", o.Window)
	}
	if o.Prefetch < 0 {
		return o, fmt.Errorf("chunk: negative prefetch %d", o.Prefetch)
	}
	if o.Retries < 0 {
		return o, fmt.Errorf("chunk: negative retries %d", o.Retries)
	}
	if o.Retries == 0 {
		o.Retries = 2
	}
	if o.RetryBackoff == 0 {
		o.RetryBackoff = 20 * time.Millisecond
	}
	return o, nil
}

// Error is the typed failure of one chunk transfer: which chunk index
// (and derived key) exhausted its retries, wrapping the last cause.
// -1 indexes the manifest itself.
type Error struct {
	// Index is the failed chunk's position, or -1 for the manifest.
	Index int
	// Key is the derived ring key the transfer targeted.
	Key id.ID
	// Err is the last attempt's failure.
	Err error
}

func (e *Error) Error() string {
	if e.Index < 0 {
		return fmt.Sprintf("chunk: manifest (key %d): %v", e.Key, e.Err)
	}
	return fmt.Sprintf("chunk: chunk %d (key %d): %v", e.Index, e.Key, e.Err)
}

func (e *Error) Unwrap() error { return e.Err }

// ErrDigest reports a fetched chunk whose content digest does not match
// the manifest — a corrupt or truncated copy, retried like a miss.
var ErrDigest = errors.New("chunk: digest mismatch")

// Store puts and gets chunked objects over a KV. Safe for concurrent
// use; each operation runs its own bounded worker set.
type Store struct {
	kv KV
	o  Options
}

// New builds a Store over kv.
func New(kv KV, o Options) (*Store, error) {
	o, err := o.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Store{kv: kv, o: o}, nil
}

// Options returns the store's resolved options.
func (s *Store) Options() Options { return s.o }

// PutObject splits value, stores every chunk under its derived key with
// Window-bounded parallelism and per-chunk retry, and finally stores
// the manifest under root — manifest last, so a reader that can decode
// a manifest can rely on the chunks having been offered to the ring
// already. Returns the manifest it stored.
func (s *Store) PutObject(root id.ID, value []byte) (*Manifest, error) {
	if uint64(len(value)) > MaxObjectLen(s.o.ChunkSize) {
		return nil, fmt.Errorf("%w: %d bytes exceeds %d-byte limit at chunk size %d",
			ErrTooLarge, len(value), MaxObjectLen(s.o.ChunkSize), s.o.ChunkSize)
	}
	chunks := Split(value, s.o.ChunkSize)
	m := &Manifest{
		TotalLen:  uint64(len(value)),
		ChunkSize: uint32(s.o.ChunkSize),
		Digests:   make([]uint64, len(chunks)),
	}
	for i, c := range chunks {
		m.Digests[i] = Digest(c)
	}
	if err := s.forEachChunk(len(chunks), func(i int) error {
		return s.putChunk(Key(s.o.Space, root, i), chunks[i], i)
	}); err != nil {
		return nil, err
	}
	enc, err := m.Encode()
	if err != nil {
		return nil, err
	}
	if err := s.putChunk(root, enc, -1); err != nil {
		return nil, err
	}
	return m, nil
}

// Manifest fetches and decodes the manifest stored under root, with the
// same retry policy as a chunk.
func (s *Store) Manifest(root id.ID) (*Manifest, error) {
	var (
		m     *Manifest
		stale bool
	)
	err := s.withRetry(root, -1, func() error {
		b, _, err := s.get(root, &stale)
		if err != nil {
			return err
		}
		if m, err = DecodeManifest(b); err != nil {
			stale = true
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}

// GetObject fetches the manifest under root and reassembles the whole
// object with Window-bounded parallel chunk fetches, verifying every
// chunk's digest.
func (s *Store) GetObject(root id.ID) ([]byte, error) {
	m, err := s.Manifest(root)
	if err != nil {
		return nil, err
	}
	out := make([]byte, m.TotalLen)
	if err := s.forEachChunk(m.Chunks(), func(i int) error {
		b, _, err := s.fetchChunk(m, root, i)
		if err != nil {
			return err
		}
		copy(out[uint64(i)*uint64(m.ChunkSize):], b)
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// fetchChunk fetches and verifies chunk i of m, reporting the lookup
// hops its successful attempt spent.
func (s *Store) fetchChunk(m *Manifest, root id.ID, i int) ([]byte, int, error) {
	key := Key(s.o.Space, root, i)
	var (
		value []byte
		hops  int
		stale bool
	)
	err := s.withRetry(key, i, func() error {
		b, h, err := s.get(key, &stale)
		if err != nil {
			return err
		}
		if len(b) != m.ChunkLen(i) || Digest(b) != m.Digests[i] {
			stale = true
			return fmt.Errorf("%w: %d bytes, digest %#x", ErrDigest, len(b), Digest(b))
		}
		value, hops = b, h
		return nil
	})
	return value, hops, err
}

// get issues one read attempt: the plain any-copy Get normally, the
// StrongGet escalation once a previous attempt for this key proved the
// copy it reached stale (*stale set by the caller's verification).
func (s *Store) get(key id.ID, stale *bool) ([]byte, int, error) {
	if *stale && s.o.StrongGet != nil {
		return s.o.StrongGet(key)
	}
	return s.kv.Get(key)
}

// putChunk stores one value with the retry policy; index names the
// chunk in the typed error (-1: the manifest).
func (s *Store) putChunk(key id.ID, value []byte, index int) error {
	return s.withRetry(key, index, func() error {
		return s.kv.Put(key, value)
	})
}

// withRetry runs op up to 1+Retries times with doubling backoff and
// wraps exhaustion in the typed per-chunk Error.
func (s *Store) withRetry(key id.ID, index int, op func() error) error {
	backoff := s.o.RetryBackoff
	var err error
	for attempt := 0; attempt <= s.o.Retries; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		if err = op(); err == nil {
			return nil
		}
	}
	return &Error{Index: index, Key: key, Err: err}
}

// forEachChunk runs fn(i) for every chunk index with Window-bounded
// parallelism, returning the first error (remaining work is skipped,
// in-flight calls drain).
func (s *Store) forEachChunk(n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	workers := s.o.Window
	if workers > n {
		workers = n
	}
	work := make(chan int)
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			var err error
			for i := range work {
				if err != nil {
					continue // drain after failure
				}
				err = fn(i)
			}
			errs <- err
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	var first error
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}
