package chunk

import (
	"fmt"
	"io"
	"time"

	"peercache/internal/id"
)

// Stats accumulates what a Reader observed; read it after (or during)
// the stream with Reader.Stats.
type Stats struct {
	// Chunks is how many chunks were consumed so far.
	Chunks int
	// BytesRead is how many object bytes were returned to the caller.
	BytesRead int64
	// FetchHops sums the lookup hops of every successful chunk fetch,
	// whether the reader waited for it or the prefetcher had it ready.
	FetchHops int
	// WaitChunks counts the chunks the reader actually had to block on —
	// the fetch was not complete when the stream position reached it.
	// With Prefetch 0 this equals Chunks; with a warm window it tends
	// toward the first chunk only.
	WaitChunks int
	// WaitHops sums the lookup hops of just the WaitChunks fetches: the
	// hops the stream position actually stalled behind. Prefetch turns
	// FetchHops into background work and drives WaitHops toward zero.
	WaitHops int
	// WaitTime is the total wall-clock time the reader spent blocked
	// waiting for chunk fetches — the stream's critical-path stall. A
	// blocked-on fetch that was issued ahead of need and is nearly done
	// contributes almost nothing here even though its full hops land in
	// WaitHops, so this is the sharpest measure of what prefetch buys.
	WaitTime time.Duration
	// TTFB is the time from NewReader until the first byte was
	// available to Read (the manifest fetch plus the first blocking
	// chunk fetch).
	TTFB time.Duration
}

// fetchResult is one chunk fetch's outcome, parked in a buffered
// channel until the stream position reaches it.
type fetchResult struct {
	data []byte
	hops int
	err  error
}

// pending is an in-flight or completed chunk fetch.
type pending struct {
	index int
	ch    chan fetchResult // buffered, cap 1: the fetch goroutine never blocks
}

// Reader streams a chunked object sequentially. While the caller
// consumes chunk i, up to Prefetch subsequent chunks are being resolved
// and fetched concurrently — each prefetch walks the normal lookup
// path, so it warms the origin node's frequency observer and owner-hint
// cache (and thus the item-driven aux aliasing) before the stream
// position arrives. Not safe for concurrent use by multiple goroutines.
type Reader struct {
	s     *Store
	root  id.ID
	m     *Manifest
	start time.Time

	inflight []pending // fetches issued, in index order
	next     int       // next chunk index to issue
	cur      []byte    // unread remainder of the current chunk
	err      error     // sticky terminal error
	eof      bool

	stats Stats
}

// NewReader fetches the manifest under root and returns a streaming
// reader positioned at byte 0. The manifest fetch happens here, so TTFB
// as reported in Stats covers it.
func (s *Store) NewReader(root id.ID) (*Reader, error) {
	start := time.Now()
	m, err := s.Manifest(root)
	if err != nil {
		return nil, err
	}
	r := &Reader{s: s, root: root, m: m, start: start}
	r.fill()
	return r, nil
}

// Manifest returns the object's manifest (total length, chunk layout).
func (r *Reader) Manifest() *Manifest { return r.m }

// Len returns the object's total byte length.
func (r *Reader) Len() int64 { return int64(r.m.TotalLen) }

// Stats returns a snapshot of the reader's counters.
func (r *Reader) Stats() Stats { return r.stats }

// fill tops the prefetch window up: the chunk the stream needs next
// plus Prefetch lookahead chunks, each fetched in its own goroutine.
func (r *Reader) fill() {
	for len(r.inflight) < 1+r.s.o.Prefetch && r.next < r.m.Chunks() {
		p := pending{index: r.next, ch: make(chan fetchResult, 1)}
		r.next++
		r.inflight = append(r.inflight, p)
		go func() {
			data, hops, err := r.s.fetchChunk(r.m, r.root, p.index)
			p.ch <- fetchResult{data: data, hops: hops, err: err}
		}()
	}
}

// advance blocks until the next chunk in stream order is available and
// makes it the current chunk, accounting wait-vs-prefetched in stats.
func (r *Reader) advance() error {
	if len(r.inflight) == 0 {
		return io.EOF
	}
	p := r.inflight[0]
	var res fetchResult
	select {
	case res = <-p.ch: // prefetch already done: no stall
	default:
		blocked := time.Now()
		res = <-p.ch
		r.stats.WaitTime += time.Since(blocked)
		r.stats.WaitChunks++
		r.stats.WaitHops += res.hops
	}
	if res.err != nil {
		return res.err
	}
	r.inflight = r.inflight[1:]
	r.stats.Chunks++
	r.stats.FetchHops += res.hops
	if r.stats.TTFB == 0 {
		r.stats.TTFB = time.Since(r.start)
	}
	r.cur = res.data
	r.fill()
	return nil
}

// Read implements io.Reader over the object's bytes.
func (r *Reader) Read(p []byte) (int, error) {
	if r.err != nil {
		return 0, r.err
	}
	for len(r.cur) == 0 {
		if r.eof {
			return 0, io.EOF
		}
		if err := r.advance(); err != nil {
			if err == io.EOF {
				r.eof = true
				if r.stats.TTFB == 0 { // empty object: first "byte" is EOF
					r.stats.TTFB = time.Since(r.start)
				}
				return 0, io.EOF
			}
			r.err = err
			return 0, err
		}
	}
	n := copy(p, r.cur)
	r.cur = r.cur[n:]
	r.stats.BytesRead += int64(n)
	return n, nil
}

// Close abandons the stream. In-flight prefetches finish in the
// background and park their results in buffered channels, so no
// goroutine leaks; their hops are simply not accounted.
func (r *Reader) Close() error {
	if r.err == nil {
		r.err = fmt.Errorf("chunk: reader for root %d closed", r.root)
	}
	r.inflight = nil
	return nil
}
