// Package chunk layers large-value transfer on the overlay's kv data
// plane. The plane caps one stored value at wire.MaxValueLen bytes, so
// a large object is split into fixed-size chunks, each stored under a
// derived key hashed independently across the ring, plus a versioned,
// checksummed manifest (total length, chunk size, per-chunk digests)
// stored under the object's root key. Readers fetch the manifest and
// then drive a bounded-parallelism chunk fetch engine (fetch.go) that
// supports both whole-object Get and sequential io.Reader streaming
// with lookahead prefetch (reader.go).
//
// The layer introduces no new wire message types: chunks and manifests
// are ordinary values moved with the existing put/get/replicate
// messages, so replication, reconciliation, item caching, and the
// auxiliary selection machinery all apply to chunk keys unchanged —
// which is the point: sequential chunk reads are exactly the repeated
// position-local traffic the paper's aux caches pay off on, and the
// reader's prefetch resolves upcoming chunk keys through the same
// lookup path that feeds the frequency observer and owner-hint cache.
package chunk

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"

	"peercache/internal/id"
	"peercache/internal/wire"
)

// Manifest format constants.
const (
	// manifestMagic opens every encoded manifest ("pcmf").
	manifestMagic = uint32(0x70636d66)
	// ManifestVersion is the current manifest encoding version.
	ManifestVersion = 1
	// manifestOverhead is the encoded size without digests: magic (4),
	// version (1), total length (8), chunk size (4), chunk count (4),
	// trailing checksum (8).
	manifestOverhead = 4 + 1 + 8 + 4 + 4 + 8

	// DefaultChunkSize is the largest chunk the data plane accepts.
	DefaultChunkSize = wire.MaxValueLen
)

// Codec errors.
var (
	// ErrBadManifest reports a manifest that fails structural or
	// checksum validation on decode.
	ErrBadManifest = errors.New("chunk: bad manifest")
	// ErrTooLarge reports an object whose manifest would not fit in one
	// stored value; see MaxObjectLen.
	ErrTooLarge = errors.New("chunk: object too large")
)

// Manifest describes one chunked object: the byte length, the split
// width, and one digest per chunk so a reader verifies every fetched
// chunk independently before assembling the object.
type Manifest struct {
	// TotalLen is the object length in bytes.
	TotalLen uint64
	// ChunkSize is the split width; every chunk but the last is exactly
	// this long, the last carries the tail (1..ChunkSize bytes).
	ChunkSize uint32
	// Digests holds the FNV-64a digest of each chunk, in order. Its
	// length is the chunk count, ceil(TotalLen/ChunkSize).
	Digests []uint64
}

// Chunks returns the chunk count.
func (m *Manifest) Chunks() int { return len(m.Digests) }

// ChunkLen returns the byte length of chunk i.
func (m *Manifest) ChunkLen(i int) int {
	if i < len(m.Digests)-1 {
		return int(m.ChunkSize)
	}
	tail := m.TotalLen % uint64(m.ChunkSize)
	if tail == 0 {
		return int(m.ChunkSize)
	}
	return int(tail)
}

// check validates the manifest's internal consistency: a legal chunk
// size and a digest count matching ceil(TotalLen/ChunkSize).
func (m *Manifest) check() error {
	if m.ChunkSize == 0 || m.ChunkSize > wire.MaxValueLen {
		return fmt.Errorf("%w: chunk size %d outside [1, %d]", ErrBadManifest, m.ChunkSize, wire.MaxValueLen)
	}
	want := int((m.TotalLen + uint64(m.ChunkSize) - 1) / uint64(m.ChunkSize))
	if len(m.Digests) != want {
		return fmt.Errorf("%w: %d digests for %d bytes at chunk size %d (want %d)",
			ErrBadManifest, len(m.Digests), m.TotalLen, m.ChunkSize, want)
	}
	return nil
}

// MaxObjectLen returns the largest object a manifest can describe at
// the given chunk size while still fitting in one stored value: the
// digest list is the manifest's dominant term, so the bound is
// (MaxValueLen − overhead)/8 chunks.
func MaxObjectLen(chunkSize int) uint64 {
	maxChunks := uint64((wire.MaxValueLen - manifestOverhead) / 8)
	return maxChunks * uint64(chunkSize)
}

// Encode serializes the manifest: magic, version, total length, chunk
// size, chunk count, the digest list, and a trailing FNV-64a checksum
// over everything preceding it. The result always fits in one stored
// value for any manifest Put accepts.
func (m *Manifest) Encode() ([]byte, error) {
	if err := m.check(); err != nil {
		return nil, err
	}
	size := manifestOverhead + 8*len(m.Digests)
	if size > wire.MaxValueLen {
		return nil, fmt.Errorf("%w: manifest needs %d bytes, limit %d (max %d bytes per object at chunk size %d)",
			ErrTooLarge, size, wire.MaxValueLen, MaxObjectLen(int(m.ChunkSize)), m.ChunkSize)
	}
	b := make([]byte, 0, size)
	b = binary.BigEndian.AppendUint32(b, manifestMagic)
	b = append(b, ManifestVersion)
	b = binary.BigEndian.AppendUint64(b, m.TotalLen)
	b = binary.BigEndian.AppendUint32(b, m.ChunkSize)
	b = binary.BigEndian.AppendUint32(b, uint32(len(m.Digests)))
	for _, d := range m.Digests {
		b = binary.BigEndian.AppendUint64(b, d)
	}
	return binary.BigEndian.AppendUint64(b, Digest(b)), nil
}

// DecodeManifest parses and validates an encoded manifest: magic,
// version, checksum, and structural consistency all gate acceptance, so
// a value that is not a manifest — or a manifest corrupted in flight or
// at a holder — is rejected rather than driving the fetch engine into
// garbage chunk keys.
func DecodeManifest(b []byte) (*Manifest, error) {
	if len(b) < manifestOverhead {
		return nil, fmt.Errorf("%w: %d bytes, need at least %d", ErrBadManifest, len(b), manifestOverhead)
	}
	if got := binary.BigEndian.Uint32(b); got != manifestMagic {
		return nil, fmt.Errorf("%w: magic %#x", ErrBadManifest, got)
	}
	if v := b[4]; v != ManifestVersion {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrBadManifest, v, ManifestVersion)
	}
	body, sum := b[:len(b)-8], binary.BigEndian.Uint64(b[len(b)-8:])
	if Digest(body) != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadManifest)
	}
	m := &Manifest{
		TotalLen:  binary.BigEndian.Uint64(b[5:]),
		ChunkSize: binary.BigEndian.Uint32(b[13:]),
	}
	count := binary.BigEndian.Uint32(b[17:])
	if want := manifestOverhead + 8*int(count); len(b) != want {
		return nil, fmt.Errorf("%w: %d bytes for %d digests, want %d", ErrBadManifest, len(b), count, want)
	}
	m.Digests = make([]uint64, count)
	for i := range m.Digests {
		m.Digests[i] = binary.BigEndian.Uint64(b[21+8*i:])
	}
	if err := m.check(); err != nil {
		return nil, err
	}
	return m, nil
}

// Digest is the chunk content digest: FNV-64a, matching the id space's
// hash family — an integrity check against truncation and bit rot, not
// an adversarial MAC (neither is the ring hash).
func Digest(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// Key derives the ring key of chunk i of the object rooted at root.
// Each chunk hashes independently, so one object's chunks scatter
// across the ring and a large write spreads over many owners instead
// of hot-spotting the root's successor.
func Key(space id.Space, root id.ID, i int) id.ID {
	var b [17]byte
	b[0] = 'c' // domain-separates chunk keys from anything hashing raw ids
	binary.BigEndian.PutUint64(b[1:], uint64(root))
	binary.BigEndian.PutUint64(b[9:], uint64(i))
	return space.Hash(b[:])
}

// Split cuts value into chunkSize-wide slices (the last one short when
// the length is not a multiple). The slices alias value. An empty value
// yields no chunks: the manifest alone records the zero length.
func Split(value []byte, chunkSize int) [][]byte {
	if len(value) == 0 {
		return nil
	}
	out := make([][]byte, 0, (len(value)+chunkSize-1)/chunkSize)
	for off := 0; off < len(value); off += chunkSize {
		end := off + chunkSize
		if end > len(value) {
			end = len(value)
		}
		out = append(out, value[off:end])
	}
	return out
}
