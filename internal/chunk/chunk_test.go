package chunk

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"

	"peercache/internal/id"
	"peercache/internal/wire"
)

// memKV is a thread-safe in-memory KV for exercising the fetch engine
// without an overlay. hops is reported as 1 per get so hop accounting
// is observable; faults lets tests inject per-key failures.
type memKV struct {
	mu    sync.Mutex
	m     map[id.ID][]byte
	puts  int
	gets  int
	fault func(key id.ID, stored []byte, gets int) ([]byte, error)
}

func newMemKV() *memKV { return &memKV{m: make(map[id.ID][]byte)} }

func (kv *memKV) Put(key id.ID, value []byte) error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	kv.puts++
	kv.m[key] = append([]byte(nil), value...)
	return nil
}

func (kv *memKV) Get(key id.ID) ([]byte, int, error) {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	kv.gets++
	stored, ok := kv.m[key]
	if kv.fault != nil {
		b, err := kv.fault(key, stored, kv.gets)
		return b, 1, err
	}
	if !ok {
		return nil, 1, fmt.Errorf("memkv: key %d not found", key)
	}
	return stored, 1, nil
}

func testStore(t *testing.T, kv KV, o Options) *Store {
	t.Helper()
	if o.Space.Bits() == 0 {
		o.Space = id.NewSpace(16)
	}
	if o.RetryBackoff == 0 {
		o.RetryBackoff = time.Microsecond
	}
	s, err := New(kv, o)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestManifestRoundTrip(t *testing.T) {
	for _, chunks := range []int{0, 1, 2, 7, 100, 508} {
		m := &Manifest{ChunkSize: 4096, Digests: make([]uint64, chunks)}
		m.TotalLen = uint64(chunks) * 4096
		if chunks > 0 {
			m.TotalLen -= 17 // sub-chunk tail
		}
		for i := range m.Digests {
			m.Digests[i] = rand.Uint64()
		}
		enc, err := m.Encode()
		if err != nil {
			t.Fatalf("chunks=%d Encode: %v", chunks, err)
		}
		if len(enc) > wire.MaxValueLen {
			t.Fatalf("chunks=%d: encoded %d bytes > MaxValueLen", chunks, len(enc))
		}
		got, err := DecodeManifest(enc)
		if err != nil {
			t.Fatalf("chunks=%d Decode: %v", chunks, err)
		}
		if got.TotalLen != m.TotalLen || got.ChunkSize != m.ChunkSize || len(got.Digests) != len(m.Digests) {
			t.Fatalf("chunks=%d: round-trip mismatch: %+v vs %+v", chunks, got, m)
		}
		for i := range m.Digests {
			if got.Digests[i] != m.Digests[i] {
				t.Fatalf("chunks=%d: digest %d mismatch", chunks, i)
			}
		}
	}
}

func TestManifestRejects(t *testing.T) {
	good := &Manifest{TotalLen: 3*4096 + 5, ChunkSize: 4096, Digests: []uint64{1, 2, 3, 4}}
	enc, err := good.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"short", func(b []byte) []byte { return b[:10] }},
		{"truncated digest list", func(b []byte) []byte { return b[:len(b)-9] }},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"future version", func(b []byte) []byte { b[4] = ManifestVersion + 1; return b }},
		{"flipped length bit", func(b []byte) []byte { b[7] ^= 0x01; return b }},
		{"flipped digest bit", func(b []byte) []byte { b[25] ^= 0x80; return b }},
		{"bad checksum", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }},
		{"trailing garbage", func(b []byte) []byte { return append(b, 0) }},
	}
	for _, c := range cases {
		b := c.mutate(append([]byte(nil), enc...))
		if _, err := DecodeManifest(b); !errors.Is(err, ErrBadManifest) {
			t.Errorf("%s: want ErrBadManifest, got %v", c.name, err)
		}
	}
	// Structurally invalid manifests must not encode either.
	for name, bad := range map[string]*Manifest{
		"zero chunk size":     {TotalLen: 10, ChunkSize: 0, Digests: []uint64{1}},
		"oversize chunk size": {TotalLen: 10, ChunkSize: wire.MaxValueLen + 1, Digests: []uint64{1}},
		"digest count low":    {TotalLen: 2 * 4096, ChunkSize: 4096, Digests: []uint64{1}},
		"digest count high":   {TotalLen: 100, ChunkSize: 4096, Digests: []uint64{1, 2}},
	} {
		if _, err := bad.Encode(); !errors.Is(err, ErrBadManifest) {
			t.Errorf("encode %s: want ErrBadManifest, got %v", name, err)
		}
	}
	huge := &Manifest{TotalLen: 600 * 4096, ChunkSize: 4096, Digests: make([]uint64, 600)}
	if _, err := huge.Encode(); !errors.Is(err, ErrTooLarge) {
		t.Errorf("encode huge: want ErrTooLarge, got %v", err)
	}
}

func TestSplitAndChunkLen(t *testing.T) {
	cases := []struct {
		total, chunkSize int
		want             []int // chunk lengths
	}{
		{0, 4096, nil},
		{1, 4096, []int{1}},
		{4096, 4096, []int{4096}},
		{4097, 4096, []int{4096, 1}},
		{8192, 4096, []int{4096, 4096}},
		{700, 256, []int{256, 256, 188}},
	}
	for _, c := range cases {
		value := make([]byte, c.total)
		chunks := Split(value, c.chunkSize)
		if len(chunks) != len(c.want) {
			t.Fatalf("Split(%d,%d): %d chunks, want %d", c.total, c.chunkSize, len(chunks), len(c.want))
		}
		m := &Manifest{TotalLen: uint64(c.total), ChunkSize: uint32(c.chunkSize), Digests: make([]uint64, len(chunks))}
		for i, ch := range chunks {
			if len(ch) != c.want[i] {
				t.Errorf("Split(%d,%d)[%d]: len %d, want %d", c.total, c.chunkSize, i, len(ch), c.want[i])
			}
			if got := m.ChunkLen(i); got != c.want[i] {
				t.Errorf("ChunkLen(%d,%d)[%d]: %d, want %d", c.total, c.chunkSize, i, got, c.want[i])
			}
		}
	}
}

func TestKeyDerivationScatters(t *testing.T) {
	space := id.NewSpace(16)
	root := space.Hash([]byte("object"))
	seen := map[id.ID]int{root: -1}
	for i := 0; i < 64; i++ {
		k := Key(space, root, i)
		if prev, dup := seen[k]; dup {
			t.Fatalf("chunk %d collides with %d on key %d", i, prev, k)
		}
		seen[k] = i
	}
	if Key(space, root, 0) != Key(space, root, 0) {
		t.Fatal("key derivation not deterministic")
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	kv := newMemKV()
	s := testStore(t, kv, Options{ChunkSize: 512, Window: 3})
	for _, size := range []int{0, 1, 511, 512, 513, 1024, 5*512 + 99} {
		value := make([]byte, size)
		rng.Read(value)
		root := s.Options().Space.Hash([]byte(fmt.Sprintf("obj-%d", size)))
		m, err := s.PutObject(root, value)
		if err != nil {
			t.Fatalf("size=%d PutObject: %v", size, err)
		}
		if m.TotalLen != uint64(size) {
			t.Fatalf("size=%d: manifest TotalLen %d", size, m.TotalLen)
		}
		got, err := s.GetObject(root)
		if err != nil {
			t.Fatalf("size=%d GetObject: %v", size, err)
		}
		if !bytes.Equal(got, value) {
			t.Fatalf("size=%d: GetObject bytes differ", size)
		}
	}
	oversize := make([]byte, MaxObjectLen(512)+1)
	if _, err := s.PutObject(1, oversize); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize put: want ErrTooLarge, got %v", err)
	}
}

// TestStreamEquivalence checks the sequential reader returns exactly
// the bytes GetObject does, across random sizes including exact
// chunk-multiple lengths and sub-chunk tails, for several prefetch
// depths.
func TestStreamEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sizes := []int{0, 1, 256, 255, 257, 512, 2 * 256, 7*256 + 1}
	for i := 0; i < 8; i++ {
		sizes = append(sizes, rng.Intn(16<<10))
	}
	for _, prefetch := range []int{0, 1, 2, 5} {
		kv := newMemKV()
		s := testStore(t, kv, Options{ChunkSize: 256, Window: 4, Prefetch: prefetch})
		for _, size := range sizes {
			value := make([]byte, size)
			rng.Read(value)
			root := s.Options().Space.Hash([]byte(fmt.Sprintf("s-%d-%d", prefetch, size)))
			if _, err := s.PutObject(root, value); err != nil {
				t.Fatalf("w=%d size=%d put: %v", prefetch, size, err)
			}
			whole, err := s.GetObject(root)
			if err != nil {
				t.Fatalf("w=%d size=%d get: %v", prefetch, size, err)
			}
			r, err := s.NewReader(root)
			if err != nil {
				t.Fatalf("w=%d size=%d NewReader: %v", prefetch, size, err)
			}
			if r.Len() != int64(size) {
				t.Fatalf("w=%d size=%d: Len %d", prefetch, size, r.Len())
			}
			// Read through an odd-sized buffer to cross chunk boundaries.
			var streamed bytes.Buffer
			if _, err := io.CopyBuffer(&streamed, r, make([]byte, 97)); err != nil {
				t.Fatalf("w=%d size=%d stream: %v", prefetch, size, err)
			}
			if !bytes.Equal(streamed.Bytes(), whole) || !bytes.Equal(streamed.Bytes(), value) {
				t.Fatalf("w=%d size=%d: stream bytes differ from GetObject", prefetch, size)
			}
			st := r.Stats()
			if st.BytesRead != int64(size) || st.Chunks != (size+255)/256 {
				t.Fatalf("w=%d size=%d: stats %+v", prefetch, size, st)
			}
			if st.TTFB <= 0 {
				t.Fatalf("w=%d size=%d: TTFB not recorded", prefetch, size)
			}
			if prefetch == 0 && st.WaitChunks != st.Chunks {
				t.Fatalf("w=0 size=%d: WaitChunks %d != Chunks %d", size, st.WaitChunks, st.Chunks)
			}
			if err := r.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			if _, err := r.Read(make([]byte, 1)); err == nil {
				t.Fatal("read after close succeeded")
			}
		}
	}
}

// TestPrefetchHidesLatency pins the stats contract the cluster test and
// livebench rely on: with slow gets, prefetch w=2 blocks on strictly
// fewer chunks than w=0.
func TestPrefetchHidesLatency(t *testing.T) {
	value := make([]byte, 8*256)
	rand.New(rand.NewSource(3)).Read(value)
	waits := map[int]int{}
	for _, prefetch := range []int{0, 2} {
		kv := newMemKV()
		base := kv.Get
		slow := FuncKV{
			PutFunc: kv.Put,
			GetFunc: func(key id.ID) ([]byte, int, error) {
				time.Sleep(2 * time.Millisecond)
				return base(key)
			},
		}
		s := testStore(t, slow, Options{ChunkSize: 256, Window: 4, Prefetch: prefetch})
		root := s.Options().Space.Hash([]byte("latency"))
		if _, err := s.PutObject(root, value); err != nil {
			t.Fatalf("put: %v", err)
		}
		r, err := s.NewReader(root)
		if err != nil {
			t.Fatalf("NewReader: %v", err)
		}
		got, err := io.ReadAll(r)
		if err != nil || !bytes.Equal(got, value) {
			t.Fatalf("w=%d: read: err=%v equal=%v", prefetch, err, bytes.Equal(got, value))
		}
		st := r.Stats()
		// Consume slowly enough that prefetched chunks finish: ReadAll is
		// CPU-bound between chunks, so rely on the window having been
		// issued concurrently; only require strictly fewer waits.
		waits[prefetch] = st.WaitChunks
		if st.FetchHops != st.Chunks { // memKV reports 1 hop per get
			t.Fatalf("w=%d: FetchHops %d != Chunks %d", prefetch, st.FetchHops, st.Chunks)
		}
	}
	if waits[2] >= waits[0] {
		t.Fatalf("prefetch did not reduce blocking: w=2 waited on %d chunks, w=0 on %d", waits[2], waits[0])
	}
}

func TestOptionsValidation(t *testing.T) {
	space := id.NewSpace(16)
	bad := []Options{
		{},                              // zero space
		{Space: space, ChunkSize: -1},   // negative chunk
		{Space: space, ChunkSize: 4097}, // above wire limit
		{Space: space, Window: -2},      // negative window
		{Space: space, Prefetch: -1},    // negative prefetch
		{Space: space, Retries: -1},     // negative retries
	}
	for i, o := range bad {
		if _, err := New(newMemKV(), o); err == nil {
			t.Errorf("options case %d accepted: %+v", i, o)
		}
	}
	s := testStore(t, newMemKV(), Options{Space: space})
	o := s.Options()
	if o.ChunkSize != DefaultChunkSize || o.Window != 4 || o.Prefetch != 0 || o.Retries != 2 {
		t.Fatalf("defaults: %+v", o)
	}
}
