package chunk

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"peercache/internal/id"
)

// lossyKV wraps a memKV with seeded probabilistic get loss, the
// package-level analogue of memnet link drop: the fetch engine must
// ride out transient misses via retry and fail with a typed per-chunk
// error once a key is persistently gone.
type lossyKV struct {
	*memKV
	mu   chan struct{} // serializes rng
	rng  *rand.Rand
	drop float64
	dead map[id.ID]bool // keys that always fail
}

func newLossyKV(seed int64, drop float64) *lossyKV {
	l := &lossyKV{memKV: newMemKV(), mu: make(chan struct{}, 1), rng: rand.New(rand.NewSource(seed)), drop: drop, dead: map[id.ID]bool{}}
	l.mu <- struct{}{}
	return l
}

func (l *lossyKV) Get(key id.ID) ([]byte, int, error) {
	<-l.mu
	lost := l.rng.Float64() < l.drop
	dead := l.dead[key]
	l.mu <- struct{}{}
	if dead || lost {
		return nil, 1, fmt.Errorf("lossykv: key %d dropped", key)
	}
	return l.memKV.Get(key)
}

// TestFetchRetriesThroughLoss: 20% get loss, generous retry budget —
// the whole object still assembles.
func TestFetchRetriesThroughLoss(t *testing.T) {
	kv := newLossyKV(7, 0.20)
	s := testStore(t, kv, Options{ChunkSize: 256, Window: 4, Retries: 8})
	value := make([]byte, 20*256+31)
	rand.New(rand.NewSource(9)).Read(value)
	root := s.Options().Space.Hash([]byte("lossy"))
	if _, err := s.PutObject(root, value); err != nil {
		t.Fatalf("put under loss: %v", err)
	}
	got, err := s.GetObject(root)
	if err != nil {
		t.Fatalf("get under loss: %v", err)
	}
	if !bytes.Equal(got, value) {
		t.Fatal("bytes differ after lossy fetch")
	}
}

// TestFetchExhaustionTypedError: one chunk's key is persistently dead;
// retry exhaustion must surface a *chunk.Error naming exactly that
// chunk's index and derived key, from both GetObject and the streaming
// reader.
func TestFetchExhaustionTypedError(t *testing.T) {
	const deadIndex = 5
	kv := newLossyKV(11, 0)
	s := testStore(t, kv, Options{ChunkSize: 256, Window: 3, Retries: 1, RetryBackoff: time.Microsecond})
	value := make([]byte, 9*256)
	rand.New(rand.NewSource(10)).Read(value)
	root := s.Options().Space.Hash([]byte("dead-chunk"))
	if _, err := s.PutObject(root, value); err != nil {
		t.Fatalf("put: %v", err)
	}
	deadKey := Key(s.Options().Space, root, deadIndex)
	kv.dead[deadKey] = true

	_, err := s.GetObject(root)
	var ce *Error
	if !errors.As(err, &ce) {
		t.Fatalf("GetObject: want *chunk.Error, got %v", err)
	}
	if ce.Index != deadIndex || ce.Key != deadKey {
		t.Fatalf("GetObject error names chunk %d key %d, want %d key %d", ce.Index, ce.Key, deadIndex, deadKey)
	}

	r, err := s.NewReader(root)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	buf := make([]byte, 64)
	for {
		_, err = r.Read(buf)
		if err != nil {
			break
		}
	}
	ce = nil
	if !errors.As(err, &ce) || ce.Index != deadIndex {
		t.Fatalf("stream: want *chunk.Error for chunk %d, got %v", deadIndex, err)
	}
	// The error is sticky.
	if _, err2 := r.Read(buf); !errors.As(err2, &ce) {
		t.Fatalf("stream error not sticky: %v", err2)
	}
}

// TestFetchDeadManifest: a missing manifest is a typed error with
// index -1.
func TestFetchDeadManifest(t *testing.T) {
	kv := newLossyKV(13, 0)
	s := testStore(t, kv, Options{ChunkSize: 256, Retries: 1, RetryBackoff: time.Microsecond})
	root := s.Options().Space.Hash([]byte("absent"))
	_, err := s.GetObject(root)
	var ce *Error
	if !errors.As(err, &ce) || ce.Index != -1 || ce.Key != root {
		t.Fatalf("want manifest *chunk.Error (index -1, key %d), got %v", root, err)
	}
}

// TestFetchCorruptChunkRejected: a holder serving truncated or
// bit-flipped chunk bytes fails digest verification and, with no clean
// copy to fall back to, surfaces ErrDigest through the typed error.
func TestFetchCorruptChunkRejected(t *testing.T) {
	for _, corrupt := range []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)-1] }},
		{"bit flip", func(b []byte) []byte { b[0] ^= 0x40; return b }},
		{"extended", func(b []byte) []byte { return append(b, 0xab) }},
	} {
		kv := newMemKV()
		s := testStore(t, kv, Options{ChunkSize: 256, Retries: 1, RetryBackoff: time.Microsecond})
		value := make([]byte, 3*256+7)
		rand.New(rand.NewSource(14)).Read(value)
		root := s.Options().Space.Hash([]byte("corrupt-" + corrupt.name))
		if _, err := s.PutObject(root, value); err != nil {
			t.Fatalf("%s: put: %v", corrupt.name, err)
		}
		victim := Key(s.Options().Space, root, 1)
		kv.mu.Lock()
		kv.m[victim] = corrupt.mutate(kv.m[victim])
		kv.mu.Unlock()
		_, err := s.GetObject(root)
		var ce *Error
		if !errors.As(err, &ce) || ce.Index != 1 || !errors.Is(err, ErrDigest) {
			t.Fatalf("%s: want chunk 1 ErrDigest, got %v", corrupt.name, err)
		}
	}
}

// TestFetchCorruptCopyHealedByRetry: the first get of a chunk returns
// corrupt bytes, the retry returns the clean copy — modelling a bad
// replica with a good owner; digest verification plus per-chunk retry
// must transparently recover.
func TestFetchCorruptCopyHealedByRetry(t *testing.T) {
	kv := newMemKV()
	served := map[id.ID]int{}
	kv.fault = func(key id.ID, stored []byte, gets int) ([]byte, error) {
		if stored == nil {
			return nil, fmt.Errorf("memkv: key %d not found", key)
		}
		served[key]++
		if served[key] == 1 {
			bad := append([]byte(nil), stored...)
			bad[len(bad)/2] ^= 0xff
			return bad, nil
		}
		return stored, nil
	}
	s := testStore(t, kv, Options{ChunkSize: 256, Window: 1, Retries: 2, RetryBackoff: time.Microsecond})
	value := make([]byte, 4*256+100)
	rand.New(rand.NewSource(15)).Read(value)
	root := s.Options().Space.Hash([]byte("bad-replica"))
	if _, err := s.PutObject(root, value); err != nil {
		t.Fatalf("put: %v", err)
	}
	// The manifest itself is also served corrupt once; Manifest() must
	// retry past it too.
	got, err := s.GetObject(root)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if !bytes.Equal(got, value) {
		t.Fatal("healed fetch returned wrong bytes")
	}
}

// TestFetchStaleCopyEscalatesToStrongGet: every any-copy get of one
// chunk key persistently returns the value the key held before the
// chunk was stored (a bounded-stale replica answering the race), so
// plain retries can never converge. With StrongGet set, the first
// digest mismatch escalates that key's retries to the authoritative
// read and the object assembles; without it, retries exhaust with
// ErrDigest.
func TestFetchStaleCopyEscalatesToStrongGet(t *testing.T) {
	kv := newMemKV()
	s := testStore(t, kv, Options{ChunkSize: 256, Window: 2, Retries: 2, RetryBackoff: time.Microsecond})
	value := make([]byte, 5*256+33)
	rand.New(rand.NewSource(16)).Read(value)
	root := s.Options().Space.Hash([]byte("stale-replica"))
	if _, err := s.PutObject(root, value); err != nil {
		t.Fatalf("put: %v", err)
	}
	victim := Key(s.Options().Space, root, 2)
	stale := []byte("previous tenant of this key")
	kv.fault = func(key id.ID, stored []byte, gets int) ([]byte, error) {
		if stored == nil {
			return nil, fmt.Errorf("memkv: key %d not found", key)
		}
		if key == victim {
			return stale, nil
		}
		return stored, nil
	}
	if _, err := s.GetObject(root); !errors.Is(err, ErrDigest) {
		t.Fatalf("without StrongGet: want ErrDigest, got %v", err)
	}

	strongCalls := 0
	opts := s.Options()
	opts.StrongGet = func(key id.ID) ([]byte, int, error) {
		strongCalls++
		if key != victim {
			t.Fatalf("StrongGet called for non-stale key %d", key)
		}
		kv.mu.Lock()
		b := append([]byte(nil), kv.m[key]...)
		kv.mu.Unlock()
		return b, 1, nil
	}
	s2 := testStore(t, kv, opts)
	got, err := s2.GetObject(root)
	if err != nil {
		t.Fatalf("with StrongGet: %v", err)
	}
	if !bytes.Equal(got, value) {
		t.Fatal("escalated fetch returned wrong bytes")
	}
	if strongCalls != 1 {
		t.Fatalf("StrongGet calls = %d, want 1 (only the stale key, only after a mismatch)", strongCalls)
	}

	// The manifest path escalates the same way: the root key is served
	// a stale non-manifest value by every any-copy read.
	kv.fault = func(key id.ID, stored []byte, gets int) ([]byte, error) {
		if stored == nil {
			return nil, fmt.Errorf("memkv: key %d not found", key)
		}
		if key == root {
			return stale, nil
		}
		return stored, nil
	}
	opts.StrongGet = func(key id.ID) ([]byte, int, error) {
		if key != root {
			t.Fatalf("StrongGet called for key %d, want manifest root %d", key, root)
		}
		kv.mu.Lock()
		b := append([]byte(nil), kv.m[key]...)
		kv.mu.Unlock()
		return b, 1, nil
	}
	s3 := testStore(t, kv, opts)
	if got, err = s3.GetObject(root); err != nil {
		t.Fatalf("manifest escalation: %v", err)
	}
	if !bytes.Equal(got, value) {
		t.Fatal("manifest-escalated fetch returned wrong bytes")
	}
}
