package chunk

import (
	"math/rand"
	"reflect"
	"testing"
)

// FuzzDecodeManifest feeds arbitrary bytes to the manifest decoder. Two
// invariants: no input panics, and anything accepted is a canonical
// encoding — it re-encodes byte-identically and re-decodes to the same
// manifest. Seeds cover valid manifests of several shapes plus the
// corruption classes the decoder must reject (truncation, bad magic,
// future version, flipped digests, checksum damage, trailing bytes).
func FuzzDecodeManifest(f *testing.F) {
	rng := rand.New(rand.NewSource(5))
	for _, shape := range []struct {
		total     uint64
		chunkSize uint32
	}{
		{0, 4096},
		{1, 4096},
		{4096, 4096},
		{4097, 4096},
		{3*4096 + 17, 4096},
		{700, 256},
		{508 * 4096, 4096}, // largest manifest that fits a stored value
	} {
		chunks := int((shape.total + uint64(shape.chunkSize) - 1) / uint64(shape.chunkSize))
		m := &Manifest{TotalLen: shape.total, ChunkSize: shape.chunkSize, Digests: make([]uint64, chunks)}
		for i := range m.Digests {
			m.Digests[i] = rng.Uint64()
		}
		enc, err := m.Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
		// Corrupt-manifest and truncated seeds off the valid encoding.
		f.Add(enc[:len(enc)/2])
		if len(enc) > 0 {
			cut := append([]byte(nil), enc...)
			cut[0] ^= 0xff // magic
			f.Add(cut)
			ver := append([]byte(nil), enc...)
			ver[4] = ManifestVersion + 1
			f.Add(ver)
			sum := append([]byte(nil), enc...)
			sum[len(sum)-1] ^= 0x01 // checksum
			f.Add(sum)
			f.Add(append(append([]byte(nil), enc...), 0)) // trailing byte
		}
		if len(enc) > 25 {
			dig := append([]byte(nil), enc...)
			dig[22] ^= 0x10 // inside first digest (or count for empty manifests)
			f.Add(dig)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0x70, 0x63, 0x6d, 0x66}) // bare magic

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err != nil {
			return
		}
		out, err := m.Encode()
		if err != nil {
			t.Fatalf("decoded manifest fails to encode: %+v: %v", m, err)
		}
		if !reflect.DeepEqual(out, data) {
			t.Fatalf("non-canonical encoding survived decode:\n in  %x\n out %x", data, out)
		}
		m2, err := DecodeManifest(out)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("round trip:\n first  %+v\n second %+v", m, m2)
		}
	})
}
