// Package replication implements a Beehive-flavored item replication
// scheme (the Section II-C comparison point [16]): popular items are
// replicated at nodes immediately preceding their owner on the ring, so
// lookups — which approach a key clockwise through its predecessors —
// terminate early at the first replica. Replicas are kept synchronously
// consistent, so every item update costs one message per replica.
//
// The scheme makes the paper's trade-off concrete: replication buys hop
// reductions comparable to auxiliary-neighbor caching, but its
// maintenance cost scales with the item update rate, while pointer
// caching's does not (Section I).
package replication

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"peercache/internal/id"
)

// Placement is a computed replica assignment over a fixed membership.
type Placement struct {
	space id.Space
	nodes []id.ID // sorted ring membership

	// replicasOf[i] lists the replica nodes of item i (owner excluded),
	// in placement order (closest predecessor first).
	replicasOf [][]id.ID
	owners     []id.ID
	// holds[node] is the set of item indices replicated at node.
	holds map[id.ID]map[int]bool
}

// Assign distributes a global replica budget over items greedily by
// popularity: each additional replica of item i is worth approximately
// pop[i] · (log2(m+2) − log2(m+1)) saved hops when the item already has
// m replicas (each doubling of the replicated predecessor range absorbs
// about one more routing hop). Replicas are placed at the owner's
// closest predecessors. nodes must be the sorted live membership; owner
// assignment is Chord's predecessor rule.
func Assign(space id.Space, nodes []id.ID, items []id.ID, pop []float64, budget int) (*Placement, error) {
	if len(nodes) < 2 {
		return nil, fmt.Errorf("replication: need at least 2 nodes, have %d", len(nodes))
	}
	if len(items) != len(pop) {
		return nil, fmt.Errorf("replication: %d items but %d popularities", len(items), len(pop))
	}
	if !sort.SliceIsSorted(nodes, func(i, j int) bool { return nodes[i] < nodes[j] }) {
		return nil, fmt.Errorf("replication: nodes not sorted")
	}
	p := &Placement{
		space:      space,
		nodes:      nodes,
		replicasOf: make([][]id.ID, len(items)),
		owners:     make([]id.ID, len(items)),
		holds:      make(map[id.ID]map[int]bool),
	}
	for i, key := range items {
		p.owners[i] = p.ownerOf(key)
	}

	// Greedy marginal-gain assignment via a max-heap.
	h := &gainHeap{}
	for i := range items {
		if pop[i] > 0 {
			heap.Push(h, gainEntry{item: i, gain: pop[i] * marginal(0)})
		}
	}
	maxReplicas := len(nodes) - 1
	for placed := 0; placed < budget && h.Len() > 0; placed++ {
		e := heap.Pop(h).(gainEntry)
		i := e.item
		m := len(p.replicasOf[i])
		if m >= maxReplicas {
			continue
		}
		// The m-th replica goes to the (m+1)-th predecessor of the
		// owner.
		r := p.predecessor(p.owners[i], m+1)
		p.replicasOf[i] = append(p.replicasOf[i], r)
		if p.holds[r] == nil {
			p.holds[r] = make(map[int]bool)
		}
		p.holds[r][i] = true
		if m+1 < maxReplicas {
			heap.Push(h, gainEntry{item: i, gain: pop[i] * marginal(m+1)})
		}
	}
	return p, nil
}

// marginal is the estimated hop gain of the (m+1)-th replica.
func marginal(m int) float64 {
	return math.Log2(float64(m+2)) - math.Log2(float64(m+1))
}

// ownerOf is the predecessor-or-equal rule.
func (p *Placement) ownerOf(key id.ID) id.ID {
	i := sort.Search(len(p.nodes), func(i int) bool { return p.nodes[i] > key })
	if i == 0 {
		i = len(p.nodes)
	}
	return p.nodes[i-1]
}

// predecessor returns the c-th predecessor of node x on the ring.
func (p *Placement) predecessor(x id.ID, c int) id.ID {
	i := sort.Search(len(p.nodes), func(i int) bool { return p.nodes[i] >= x })
	m := len(p.nodes)
	return p.nodes[((i-c)%m+m)%m]
}

// Owner returns item i's owner node.
func (p *Placement) Owner(i int) id.ID { return p.owners[i] }

// Replicas returns item i's replica count (owner excluded).
func (p *Placement) Replicas(i int) int { return len(p.replicasOf[i]) }

// TotalReplicas returns the number of replicas placed across all items.
func (p *Placement) TotalReplicas() int {
	total := 0
	for _, r := range p.replicasOf {
		total += len(r)
	}
	return total
}

// Holds reports whether node x can answer item i (as owner or replica).
func (p *Placement) Holds(x id.ID, i int) bool {
	if p.owners[i] == x {
		return true
	}
	return p.holds[x][i]
}

// UpdateCost returns the number of messages needed to update item i
// synchronously: one per replica (the owner applies it locally).
func (p *Placement) UpdateCost(i int) int { return len(p.replicasOf[i]) }

// CutPath returns the effective hop count of a lookup for item i that
// would have taken the given node path (source first, owner last): the
// prefix length until the first node holding the item. The source
// holding the item costs zero hops.
func (p *Placement) CutPath(i int, path []id.ID) int {
	for h, x := range path {
		if p.Holds(x, i) {
			return h
		}
	}
	return len(path) - 1
}

// gainHeap is a max-heap of marginal replica gains.
type gainEntry struct {
	item int
	gain float64
}

type gainHeap []gainEntry

func (h gainHeap) Len() int           { return len(h) }
func (h gainHeap) Less(i, j int) bool { return h[i].gain > h[j].gain }
func (h gainHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *gainHeap) Push(x any)        { *h = append(*h, x.(gainEntry)) }
func (h *gainHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
