package replication

import (
	"reflect"
	"testing"

	"peercache/internal/id"
)

func TestTargetsPicksNearestDistinctSuccessors(t *testing.T) {
	succs := []id.ID{10, 20, 30, 40}
	got := Targets(5, succs, 3)
	if want := []id.ID{10, 20}; !reflect.DeepEqual(got, want) {
		t.Fatalf("targets %v, want %v", got, want)
	}
}

func TestTargetsSkipsSelfAndDuplicates(t *testing.T) {
	// A successor list degraded by churn can contain self (ring of one
	// fallback) and duplicates (merging lists from two peers).
	succs := []id.ID{5, 10, 10, 20, 5, 30}
	got := Targets(5, succs, 3)
	if want := []id.ID{10, 20}; !reflect.DeepEqual(got, want) {
		t.Fatalf("targets %v, want %v", got, want)
	}
}

// The successor set shrinking below the replication factor must degrade
// gracefully: every usable successor is returned, never an error, and
// the shortfall is visible as len(result) < factor-1.
func TestTargetsSuccessorSetBelowFactor(t *testing.T) {
	cases := []struct {
		name   string
		succs  []id.ID
		factor int
		want   []id.ID
	}{
		{"one successor, factor 3", []id.ID{10}, 3, []id.ID{10}},
		{"two successors, factor 4", []id.ID{10, 20}, 4, []id.ID{10, 20}},
		{"only self left", []id.ID{5}, 2, nil},
		{"empty list", nil, 2, nil},
		{"self and dup collapse below factor", []id.ID{5, 10, 10}, 3, []id.ID{10}},
	}
	for _, tc := range cases {
		got := Targets(5, tc.succs, tc.factor)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: targets %v, want %v", tc.name, got, tc.want)
		}
		if len(got) >= tc.factor {
			t.Errorf("%s: %d targets with factor %d would exceed the factor copies", tc.name, len(got), tc.factor)
		}
	}
}

func TestTargetsFactorBelowTwo(t *testing.T) {
	succs := []id.ID{10, 20}
	if got := Targets(5, succs, 1); got != nil {
		t.Fatalf("factor 1 returned %v, want nil", got)
	}
	if got := Targets(5, succs, 0); got != nil {
		t.Fatalf("factor 0 returned %v, want nil", got)
	}
	if got := Targets(5, succs, -3); got != nil {
		t.Fatalf("negative factor returned %v, want nil", got)
	}
}
