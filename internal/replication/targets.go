package replication

import "peercache/internal/id"

// Targets returns the nodes that should hold replicas of the items owned
// by self, given its current successor list (nearest first) and the
// desired replication factor — the total number of copies including the
// owner's own. The result is the first factor-1 distinct successors,
// with self and duplicate entries removed while preserving order.
//
// The successor list is allowed to be shorter than the factor demands:
// after heavy churn or a partition, a node may see only one live
// successor (or none) while needing two replicas. Targets then returns
// every usable successor rather than failing — the owner keeps the data
// durable on whatever peers remain, and the next replication round
// restores the full factor once the successor list recovers. Callers
// can detect degraded placement by comparing len(result) to factor-1.
//
// A factor below 2 means "owner only": no replicas, nil result.
func Targets(self id.ID, succs []id.ID, factor int) []id.ID {
	if factor < 2 || len(succs) == 0 {
		return nil
	}
	want := factor - 1
	out := make([]id.ID, 0, want)
	seen := make(map[id.ID]bool, len(succs))
	for _, s := range succs {
		if s == self || seen[s] {
			continue
		}
		seen[s] = true
		out = append(out, s)
		if len(out) == want {
			break
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
