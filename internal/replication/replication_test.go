package replication

import (
	"math/rand"
	"testing"

	"peercache/internal/chord"
	"peercache/internal/id"
	"peercache/internal/randx"
)

func sortedNodes(rng *rand.Rand, bits uint, n int) []id.ID {
	raw := randx.UniqueIDs(rng, n, uint64(1)<<bits)
	out := make([]id.ID, n)
	for i, r := range raw {
		out[i] = id.ID(r)
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func TestAssignValidation(t *testing.T) {
	space := id.NewSpace(8)
	if _, err := Assign(space, []id.ID{5}, []id.ID{1}, []float64{1}, 1); err == nil {
		t.Error("single node accepted")
	}
	if _, err := Assign(space, []id.ID{5, 9}, []id.ID{1}, []float64{1, 2}, 1); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := Assign(space, []id.ID{9, 5}, []id.ID{1}, []float64{1}, 1); err == nil {
		t.Error("unsorted nodes accepted")
	}
}

func TestBudgetRespectedAndPopularFirst(t *testing.T) {
	space := id.NewSpace(10)
	rng := rand.New(rand.NewSource(1))
	nodes := sortedNodes(rng, 10, 50)
	items := []id.ID{10, 200, 300, 400, 900}
	pop := []float64{100, 1, 1, 1, 50}
	p, err := Assign(space, nodes, items, pop, 12)
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalReplicas() != 12 {
		t.Fatalf("placed %d replicas, want 12", p.TotalReplicas())
	}
	if p.Replicas(0) <= p.Replicas(1) {
		t.Errorf("hot item got %d replicas, cold got %d", p.Replicas(0), p.Replicas(1))
	}
	if p.Replicas(4) <= p.Replicas(2) {
		t.Errorf("warm item got %d replicas, cold got %d", p.Replicas(4), p.Replicas(2))
	}
	// Update cost mirrors replica count.
	for i := range items {
		if p.UpdateCost(i) != p.Replicas(i) {
			t.Errorf("item %d: update cost %d != replicas %d", i, p.UpdateCost(i), p.Replicas(i))
		}
	}
}

func TestZeroPopularityGetsNothing(t *testing.T) {
	space := id.NewSpace(10)
	rng := rand.New(rand.NewSource(2))
	nodes := sortedNodes(rng, 10, 20)
	p, err := Assign(space, nodes, []id.ID{10, 20}, []float64{5, 0}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if p.Replicas(1) != 0 {
		t.Errorf("zero-popularity item replicated %d times", p.Replicas(1))
	}
}

func TestBudgetBeyondCapacity(t *testing.T) {
	// With n-1 as the per-item cap, a huge budget saturates without
	// looping forever or double-placing.
	space := id.NewSpace(10)
	rng := rand.New(rand.NewSource(3))
	nodes := sortedNodes(rng, 10, 8)
	p, err := Assign(space, nodes, []id.ID{10}, []float64{5}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if p.Replicas(0) != 7 {
		t.Fatalf("replicas = %d, want n-1 = 7", p.Replicas(0))
	}
}

func TestHoldsOwnerAndReplicas(t *testing.T) {
	space := id.NewSpace(10)
	rng := rand.New(rand.NewSource(4))
	nodes := sortedNodes(rng, 10, 30)
	items := []id.ID{500}
	p, err := Assign(space, nodes, items, []float64{1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	owner := p.Owner(0)
	if !p.Holds(owner, 0) {
		t.Error("owner does not hold its item")
	}
	holders := 0
	for _, x := range nodes {
		if p.Holds(x, 0) {
			holders++
		}
	}
	if holders != 4 { // owner + 3 replicas
		t.Errorf("holders = %d, want 4", holders)
	}
}

// Replicas sit at the owner's immediate predecessors, so a routed path
// must terminate strictly earlier once the item is replicated.
func TestCutPathShortensRealLookups(t *testing.T) {
	space := id.NewSpace(16)
	rng := rand.New(rand.NewSource(5))
	nw := chord.New(chord.Config{Space: space})
	nodes := sortedNodes(rng, 16, 300)
	for _, x := range nodes {
		if _, err := nw.AddNode(x); err != nil {
			t.Fatal(err)
		}
	}
	nw.StabilizeAll()

	items := make([]id.ID, 40)
	pop := make([]float64, len(items))
	for i := range items {
		items[i] = id.ID(rng.Intn(1 << 16))
		pop[i] = rng.Float64() + 0.01
	}
	p, err := Assign(space, nodes, items, pop, 200)
	if err != nil {
		t.Fatal(err)
	}

	totalPlain, totalCut := 0, 0
	lookups := 0
	for trial := 0; trial < 2000; trial++ {
		src := nodes[rng.Intn(len(nodes))]
		i := rng.Intn(len(items))
		res, path, err := nw.RoutePath(src, items[i])
		if err != nil || !res.OK {
			t.Fatalf("lookup failed: %v %+v", err, res)
		}
		if len(path) != res.Hops+1 {
			t.Fatalf("path length %d inconsistent with %d hops", len(path), res.Hops)
		}
		if path[len(path)-1] != res.Dest {
			t.Fatal("path does not end at the owner")
		}
		cut := p.CutPath(i, path)
		if cut > res.Hops {
			t.Fatalf("cut path %d longer than full path %d", cut, res.Hops)
		}
		totalPlain += res.Hops
		totalCut += cut
		lookups++
	}
	if totalCut >= totalPlain {
		t.Errorf("replication saved nothing: %d vs %d hops over %d lookups", totalCut, totalPlain, lookups)
	}
}
