package tapestry

import (
	"math/rand"
	"testing"

	"peercache/internal/core"
	"peercache/internal/id"
	"peercache/internal/randx"
)

func buildMesh(t *testing.T, bits, digitBits uint, n int, seed int64) *Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	raw := randx.UniqueIDs(rng, n, uint64(1)<<bits)
	ids := make([]id.ID, n)
	for i, x := range raw {
		ids[i] = id.ID(x)
	}
	nw, err := Build(Config{Space: id.NewSpace(bits), DigitBits: digitBits}, ids)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestBuildValidation(t *testing.T) {
	space := id.NewSpace(8)
	if _, err := Build(Config{Space: space, DigitBits: 3}, []id.ID{1, 2}); err == nil {
		t.Error("non-dividing digit size accepted")
	}
	if _, err := Build(Config{Space: space}, []id.ID{1}); err == nil {
		t.Error("single node accepted")
	}
	if _, err := Build(Config{Space: space}, []id.ID{1, 1}); err == nil {
		t.Error("duplicate ids accepted")
	}
	if _, err := Build(Config{Space: space}, []id.ID{1, 999}); err == nil {
		t.Error("out-of-space id accepted")
	}
}

// Table slots must hold nodes with the exact (level, digit) relationship.
func TestTableSlotPlacement(t *testing.T) {
	nw := buildMesh(t, 16, 4, 200, 3)
	space := nw.Space()
	for _, x := range nw.IDs() {
		n := nw.Node(x)
		for l := range n.table {
			for v, w := range n.table[l] {
				if !n.hasEntry[l][v] {
					continue
				}
				if got := space.CommonPrefixLen(x, w) / 4; got != uint(l) {
					t.Fatalf("node %x slot (%d,%x) holds %x sharing %d digits", x, l, v, w, got)
				}
				if nw.digitOf(w, uint(l)) != uint(v) {
					t.Fatalf("node %x slot (%d,%x) holds %x with wrong digit", x, l, v, w)
				}
			}
		}
	}
}

// The surrogate root must share the key's longest achievable digit
// prefix: no node is digit-deeper than the root.
func TestRootIsDeepestPrefixNode(t *testing.T) {
	nw := buildMesh(t, 16, 4, 150, 5)
	space := nw.Space()
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 2000; i++ {
		key := id.ID(rng.Intn(1 << 16))
		root := nw.Root(key)
		if nw.Node(root) == nil {
			t.Fatalf("root %x is not a member", root)
		}
		rl := space.CommonPrefixLen(root, key) / 4
		for _, y := range nw.IDs() {
			if space.CommonPrefixLen(y, key)/4 > rl {
				t.Fatalf("root %x (depth %d) not deepest: %x deeper for key %x", root, rl, y, key)
			}
		}
	}
}

// Every route from every node must converge on the surrogate root.
func TestRouteReachesRoot(t *testing.T) {
	for _, d := range []uint{1, 2, 4} {
		nw := buildMesh(t, 16, d, 300, 7)
		rng := rand.New(rand.NewSource(8))
		ids := nw.IDs()
		for i := 0; i < 2000; i++ {
			from := ids[rng.Intn(len(ids))]
			key := id.ID(rng.Intn(1 << 16))
			res, err := nw.Route(from, key)
			if err != nil {
				t.Fatal(err)
			}
			if !res.OK {
				t.Fatalf("d=%d: route failed from %x to key %x (dest %x)", d, from, key, res.Dest)
			}
			if res.Dest != nw.Root(key) {
				t.Fatalf("d=%d: dest %x, root %x", d, res.Dest, nw.Root(key))
			}
			if res.Hops > 2*int(16/d) {
				t.Errorf("d=%d: route took %d hops", d, res.Hops)
			}
		}
	}
}

func TestSetAuxValidation(t *testing.T) {
	nw := buildMesh(t, 16, 4, 50, 9)
	x := nw.IDs()[0]
	if err := nw.SetAux(x, []id.ID{x}); err == nil {
		t.Error("self-aux accepted")
	}
	if err := nw.SetAux(12345, nil); err == nil {
		t.Error("unknown node accepted")
	}
}

// The paper's claim: Pastry's selection (digit variant) drops measured
// Tapestry lookups with no routing changes.
func TestPastrySelectionPortsToTapestry(t *testing.T) {
	nw := buildMesh(t, 20, 4, 400, 11)
	rng := rand.New(rand.NewSource(12))
	ids := nw.IDs()
	src := ids[0]

	alias := randx.NewAlias(randx.ZipfWeights(len(ids)-1, 1.2))
	perm := rng.Perm(len(ids) - 1)
	mix := make([]id.ID, 4000)
	for i := range mix {
		mix[i] = ids[1+perm[alias.Sample(rng)]]
		nw.Node(src).Counter.Observe(mix[i])
	}
	measure := func() float64 {
		total := 0
		for _, dst := range mix {
			res, err := nw.Route(src, dst)
			if err != nil || !res.OK {
				t.Fatalf("lookup failed: %v %+v", err, res)
			}
			total += res.Hops
		}
		return float64(total) / float64(len(mix))
	}
	before := measure()

	var peers []core.Peer
	for _, e := range nw.Node(src).Counter.Snapshot() {
		peers = append(peers, core.Peer{ID: e.Peer, Freq: float64(e.Count)})
	}
	res, err := core.SelectPastryGreedyDigits(nw.Space(), nw.Node(src).Neighbors(), peers, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.SetAux(src, res.Aux); err != nil {
		t.Fatal(err)
	}
	after := measure()
	if after >= before {
		t.Fatalf("selection did not help on Tapestry: %.3f -> %.3f", before, after)
	}
	if reduction := 100 * (before - after) / before; reduction < 15 {
		t.Errorf("reduction only %.1f%% (before %.3f after %.3f)", reduction, before, after)
	}
}
