// Package tapestry implements a Tapestry overlay (Zhao et al.), the
// remaining system the paper names as a direct target for its Pastry
// techniques (Section I). Tapestry routes digit by digit like Pastry but
// resolves empty routing-table slots with *surrogate routing*: when no
// node exists for the required digit, the message deterministically
// tries the next-higher digit value (wrapping), so every key maps to a
// unique root without leaf sets.
//
// The hop metric is again the prefix distance, so the paper's Pastry
// selection algorithm applies unchanged; auxiliary neighbors join the
// candidate set exactly like routing-table entries.
package tapestry

import (
	"fmt"
	"sort"

	"peercache/internal/freq"
	"peercache/internal/id"
)

// Config parameterizes a Tapestry mesh.
type Config struct {
	// Space is the identifier space.
	Space id.Space
	// DigitBits is the routing digit size (default 4, Tapestry's
	// traditional hex digits). Must divide the identifier length.
	DigitBits uint
	// MaxHops caps a lookup (default 4·digits).
	MaxHops int
}

func (c Config) withDefaults() Config {
	if c.DigitBits == 0 {
		c.DigitBits = 4
	}
	if c.MaxHops == 0 {
		c.MaxHops = 4 * int(c.Space.Bits()/c.DigitBits)
	}
	return c
}

// Node is one Tapestry participant.
type Node struct {
	id id.ID
	// table[l][v] is the level-l neighbor for digit value v: a node
	// sharing l digits with this node and carrying digit v at position
	// l (hasEntry marks populated slots). Built deterministically: the
	// lowest-id qualifying node fills each slot.
	table    [][]id.ID
	hasEntry [][]bool
	aux      []id.ID

	// Counter accumulates lookup destinations.
	Counter *freq.Exact
}

// ID returns the node id.
func (n *Node) ID() id.ID { return n.id }

// Aux returns a copy of the auxiliary set.
func (n *Node) Aux() []id.ID { return append([]id.ID(nil), n.aux...) }

// Neighbors returns the deduplicated routing-table entries — the core
// neighbor set for auxiliary selection.
func (n *Node) Neighbors() []id.ID {
	seen := make(map[id.ID]bool)
	var out []id.ID
	for l := range n.table {
		for v, w := range n.table[l] {
			if n.hasEntry[l][v] && !seen[w] {
				seen[w] = true
				out = append(out, w)
			}
		}
	}
	return out
}

// Network is a built Tapestry mesh over a fixed membership.
type Network struct {
	cfg    Config
	sorted []id.ID
	nodes  map[id.ID]*Node
}

// Build constructs the mesh. Duplicate or out-of-space ids are errors.
func Build(cfg Config, ids []id.ID) (*Network, error) {
	cfg = cfg.withDefaults()
	if cfg.Space.Bits()%cfg.DigitBits != 0 {
		return nil, fmt.Errorf("tapestry: digit size %d does not divide %d-bit ids", cfg.DigitBits, cfg.Space.Bits())
	}
	if len(ids) < 2 {
		return nil, fmt.Errorf("tapestry: need at least 2 nodes, have %d", len(ids))
	}
	nw := &Network{cfg: cfg, nodes: make(map[id.ID]*Node, len(ids))}
	nw.sorted = append([]id.ID(nil), ids...)
	sort.Slice(nw.sorted, func(i, j int) bool { return nw.sorted[i] < nw.sorted[j] })
	for i, x := range nw.sorted {
		if uint64(x) >= cfg.Space.Size() {
			return nil, fmt.Errorf("tapestry: node %d outside %d-bit space", x, cfg.Space.Bits())
		}
		if i > 0 && nw.sorted[i-1] == x {
			return nil, fmt.Errorf("tapestry: duplicate node %d", x)
		}
	}
	digits := cfg.Space.Bits() / cfg.DigitBits
	slots := uint(1) << cfg.DigitBits
	for _, x := range nw.sorted {
		n := &Node{id: x, Counter: freq.NewExact()}
		n.table = make([][]id.ID, digits)
		n.hasEntry = make([][]bool, digits)
		for l := uint(0); l < digits; l++ {
			n.table[l] = make([]id.ID, slots)
			n.hasEntry[l] = make([]bool, slots)
			for v := uint(0); v < slots; v++ {
				if v == nw.digitOf(x, l) {
					continue
				}
				// Lowest-id node sharing l digits with x and carrying
				// digit v: a contiguous id range.
				lo, hi := nw.slotRange(x, l, v)
				i := sort.Search(len(nw.sorted), func(i int) bool { return uint64(nw.sorted[i]) >= lo })
				if i < len(nw.sorted) && uint64(nw.sorted[i]) <= hi {
					n.table[l][v] = nw.sorted[i]
					n.hasEntry[l][v] = true
				}
			}
		}
		nw.nodes[x] = n
	}
	return nw, nil
}

// digitOf returns the i-th digit (MSB-first) of x.
func (nw *Network) digitOf(x id.ID, i uint) uint {
	d := nw.cfg.DigitBits
	shift := nw.cfg.Space.Bits() - (i+1)*d
	return uint(uint64(x)>>shift) & (1<<d - 1)
}

// slotRange returns the id range of nodes with x's first l digits and
// digit v at position l.
func (nw *Network) slotRange(x id.ID, l, v uint) (uint64, uint64) {
	b := nw.cfg.Space.Bits()
	d := nw.cfg.DigitBits
	shift := b - (l+1)*d
	prefix := uint64(x) >> (b - l*d) << d
	lo := (prefix | uint64(v)) << shift
	return lo, lo + (uint64(1)<<shift - 1)
}

// Space returns the identifier space.
func (nw *Network) Space() id.Space { return nw.cfg.Space }

// IDs returns the sorted node ids (do not modify).
func (nw *Network) IDs() []id.ID { return nw.sorted }

// Node returns the node with the given id, or nil.
func (nw *Network) Node(x id.ID) *Node { return nw.nodes[x] }

// SetAux installs node x's auxiliary neighbor set.
func (nw *Network) SetAux(x id.ID, aux []id.ID) error {
	n := nw.nodes[x]
	if n == nil {
		return fmt.Errorf("tapestry: SetAux on unknown node %d", x)
	}
	for _, a := range aux {
		if a == x {
			return fmt.Errorf("tapestry: aux of node %d contains itself", x)
		}
	}
	n.aux = append(n.aux[:0:0], aux...)
	return nil
}

// Root returns the key's surrogate root: the unique node a surrogate
// walk converges to, computed by simulating the walk from the sorted
// membership (every correct route for key ends here).
func (nw *Network) Root(key id.ID) id.ID {
	// Surrogate resolution: fix digits left to right; at each level
	// pick the key's digit if any node matches the prefix so far with
	// that digit, else the next-higher digit value (wrapping) that has
	// nodes. The surviving prefix always contains at least one node.
	digits := nw.cfg.Space.Bits() / nw.cfg.DigitBits
	slots := uint64(1) << nw.cfg.DigitBits
	b := nw.cfg.Space.Bits()
	d := nw.cfg.DigitBits
	prefix := uint64(0) // resolved digits so far, right-aligned
	for l := uint(0); l < digits; l++ {
		shift := b - (l+1)*d
		want := uint64(key) >> shift & (slots - 1)
		for off := uint64(0); off < slots; off++ {
			v := (want + off) % slots
			lo := (prefix<<d | v) << shift
			hi := lo + (uint64(1)<<shift - 1)
			i := sort.Search(len(nw.sorted), func(i int) bool { return uint64(nw.sorted[i]) >= lo })
			if i < len(nw.sorted) && uint64(nw.sorted[i]) <= hi {
				prefix = prefix<<d | v
				break
			}
		}
	}
	return id.ID(prefix)
}

// RouteResult describes one lookup.
type RouteResult struct {
	Dest id.ID
	Hops int
	OK   bool
}

// Route performs a lookup toward key's surrogate root: at each node,
// prefer any known candidate (table entry or auxiliary) extending the
// shared prefix with the key — the deepest wins; when none exists, take
// the surrogate step for the current level (next-higher digit with a
// populated slot, possibly staying put when the node itself is the
// surrogate).
func (nw *Network) Route(from id.ID, key id.ID) (RouteResult, error) {
	src := nw.nodes[from]
	if src == nil {
		return RouteResult{}, fmt.Errorf("tapestry: route from unknown node %d", from)
	}
	dest := nw.Root(key)
	res := RouteResult{Dest: dest}
	space := nw.cfg.Space
	d := nw.cfg.DigitBits
	cur := src
	for cur.id != dest {
		if res.Hops >= nw.cfg.MaxHops {
			return res, nil
		}
		l := space.CommonPrefixLen(cur.id, key) / d
		bestL := l
		var best id.ID
		found := false
		consider := func(w id.ID) {
			if wl := space.CommonPrefixLen(w, key) / d; wl > bestL {
				best, bestL, found = w, wl, true
			}
		}
		for l := range cur.table {
			for v, w := range cur.table[l] {
				if cur.hasEntry[l][v] {
					consider(w)
				}
			}
		}
		for _, w := range cur.aux {
			consider(w)
		}
		if !found {
			// Surrogate step at level l: walk digit values upward from
			// the key's digit; the destination computation guarantees a
			// populated slot exists (possibly the node's own digit, in
			// which case cur moves toward dest via its own subtree —
			// i.e. the surrogate is deeper on cur's side and the next
			// level resolves it). A same-digit stall with cur != dest
			// means cur's subtree contains dest: follow any entry
			// deeper toward dest instead.
			next, ok := nw.surrogateStep(cur, key, l)
			if !ok || next == cur.id {
				return res, nil // dead end (should not happen)
			}
			cur = nw.nodes[next]
			res.Hops++
			continue
		}
		cur = nw.nodes[best]
		res.Hops++
	}
	res.OK = true
	return res, nil
}

// surrogateStep picks the forwarding target when no candidate extends
// the prefix: the entry for the next-higher populated digit at level l,
// or, when the surrogate digit is cur's own, the deepest table entry
// toward the final destination.
func (nw *Network) surrogateStep(cur *Node, key id.ID, l uint) (id.ID, bool) {
	slots := uint(1) << nw.cfg.DigitBits
	want := nw.digitOf(key, l)
	own := nw.digitOf(cur.id, l)
	for off := uint(0); off < slots; off++ {
		v := (want + off) % slots
		if v == own {
			// The surrogate path stays in cur's level-l subtree; the
			// destination differs from cur at some deeper level, where
			// the main loop will find a deeper candidate next round —
			// but only if one exists. Route toward the root directly.
			dest := nw.Root(key)
			if dest == cur.id {
				return cur.id, true
			}
			// Find any entry extending the prefix with dest.
			space := nw.cfg.Space
			dl := space.CommonPrefixLen(cur.id, dest) / nw.cfg.DigitBits
			for ll := range cur.table {
				for vv, w := range cur.table[ll] {
					if cur.hasEntry[ll][vv] &&
						space.CommonPrefixLen(w, dest)/nw.cfg.DigitBits > dl {
						return w, true
					}
				}
			}
			return cur.id, false
		}
		if cur.hasEntry[l][v] {
			return cur.table[l][v], true
		}
	}
	return cur.id, false
}
