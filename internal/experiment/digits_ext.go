package experiment

import "fmt"

// ExtDigits reruns the stable Pastry comparison at several routing digit
// sizes (footnote 2 of the paper; FreePastry deploys with hex digits,
// d = 4). Larger digits shorten every path — one digit resolves per hop
// — which compresses the room between the oblivious baseline and the
// optimum, so the relative reduction shrinks as d grows while the
// absolute hop counts improve across the board.
func ExtDigits(scale Scale) (Table, error) {
	n := scale.fixedN()
	t := Table{
		Title:   fmt.Sprintf("Extension — Pastry digit size (footnote 2): stable reduction vs d (n = %d, k = log n)", n),
		Columns: []string{"digit bits", "avg hops oblivious", "avg hops optimal", "reduction"},
	}
	for _, d := range []uint{1, 2, 4} {
		res, err := RunStable(StableConfig{
			Protocol:     Pastry,
			N:            n,
			Bits:         scale.Bits,
			DigitBits:    d,
			ItemsPerNode: scale.ItemsPerNode,
			NumRankings:  1,
			Seed:         scale.Seed + int64(d),
		})
		if err != nil {
			return Table{}, fmt.Errorf("ext-digits d=%d: %w", d, err)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(d),
			hops(res.PerScheme[Oblivious].AvgHops),
			hops(res.PerScheme[Optimal].AvgHops),
			pct(res.Reduction),
		})
	}
	return t, nil
}
