package experiment

import (
	"fmt"
	"sort"

	"peercache/internal/id"
	"peercache/internal/randx"
	"peercache/internal/sim"
	"peercache/internal/stats"
	"peercache/internal/workload"
)

// ChurnConfig parameterizes a churn-intensive experiment. Defaults match
// Section VI-C: alternating crash/re-join with exponential mean 900 s,
// 4 queries per second network-wide, stabilization every 25 s, auxiliary
// recomputation every 62.5 s.
type ChurnConfig struct {
	Protocol Protocol
	// N is the total node population (about half are up at any time in
	// steady state, as nodes alternate between alive and dead).
	N int
	// Bits is the identifier length (default 32).
	Bits uint
	// K is the auxiliary budget; 0 means KFactor·log2(N).
	K int
	// KFactor scales the default K (default 1).
	KFactor int
	// Alpha is the zipf exponent (default 1.2).
	Alpha float64
	// ItemsPerNode sets the corpus size (default 16).
	ItemsPerNode int
	// NumRankings is the number of popularity rankings (default 5, the
	// paper's Chord setting).
	NumRankings int
	// MeanLifetime is the mean up-time and down-time in seconds
	// (default 900).
	MeanLifetime float64
	// QueryRate is the network-wide query arrival rate per second
	// (default 4).
	QueryRate float64
	// StabilizeEvery is the per-node stabilization period in seconds
	// (default 25).
	StabilizeEvery float64
	// RecomputeEvery is the per-node auxiliary recomputation period in
	// seconds (default 62.5).
	RecomputeEvery float64
	// HistoryWindow, when positive, resets each node's observed
	// frequency history this many seconds after it was last used for a
	// recomputation — a sliding window that discards observations of
	// owners long since churned away (Section III: frequencies are kept
	// "within a time window"). 0 keeps cumulative per-lifetime history.
	HistoryWindow float64
	// Warmup is the simulated time before measurements start (default
	// 900 s, one mean lifetime).
	Warmup float64
	// Duration is the measured simulated time (default 3600 s).
	Duration float64
	// LocalityAware applies to Pastry only (default true).
	LocalityAware *bool
	// SuccListLen is the Chord successor-list length (default 8).
	SuccListLen int
	// Seed drives every random stream. Churn and query streams are
	// identical across schemes for a paired comparison.
	Seed int64
}

func (c ChurnConfig) withDefaults() ChurnConfig {
	if c.Bits == 0 {
		c.Bits = 32
	}
	if c.KFactor == 0 {
		c.KFactor = 1
	}
	if c.K == 0 {
		c.K = c.KFactor * Log2(c.N)
	}
	if c.Alpha == 0 {
		c.Alpha = 1.2
	}
	if c.ItemsPerNode == 0 {
		c.ItemsPerNode = 16
	}
	if c.NumRankings == 0 {
		c.NumRankings = 5
	}
	if c.MeanLifetime == 0 {
		c.MeanLifetime = 900
	}
	if c.QueryRate == 0 {
		c.QueryRate = 4
	}
	if c.StabilizeEvery == 0 {
		c.StabilizeEvery = 25
	}
	if c.RecomputeEvery == 0 {
		c.RecomputeEvery = 62.5
	}
	if c.Warmup == 0 {
		c.Warmup = 900
	}
	if c.Duration == 0 {
		c.Duration = 3600
	}
	if c.LocalityAware == nil {
		t := true
		c.LocalityAware = &t
	}
	return c
}

// ChurnStats summarizes the measured window of one churn run.
type ChurnStats struct {
	// Queries is the number of lookups issued in the measured window.
	Queries int
	// Failures is the number of lookups that never reached the owner.
	Failures int
	// AvgEffHops is the average effective cost (hops plus timeout
	// retries) over successful lookups.
	AvgEffHops float64
	// AvgTimeouts is the average number of timeout retries per
	// successful lookup.
	AvgTimeouts float64
	// MembershipEvents counts crashes plus rejoins over the whole run.
	MembershipEvents int
}

// ChurnComparison pairs the two schemes on identical churn and query
// streams.
type ChurnComparison struct {
	Config    ChurnConfig
	K         int
	Oblivious ChurnStats
	Optimal   ChurnStats
	// Reduction is the percentage reduction in average effective hops
	// of Optimal versus Oblivious.
	Reduction float64
}

// RunChurn simulates one scheme under churn and returns its statistics.
func RunChurn(cfg ChurnConfig, scheme Scheme) (ChurnStats, error) {
	cfg = cfg.withDefaults()
	if cfg.N < 4 {
		return ChurnStats{}, fmt.Errorf("experiment: N = %d too small for churn", cfg.N)
	}
	if cfg.K < 0 {
		return ChurnStats{}, fmt.Errorf("experiment: negative K = %d", cfg.K)
	}
	if scheme == CoreOnly {
		// Valid but uninteresting: aux stays empty; supported for
		// completeness.
		_ = scheme
	}
	space := id.NewSpace(cfg.Bits)
	nodeRNG := randx.New(randx.DeriveSeed(cfg.Seed, "nodes"))
	nodeIDs := make([]id.ID, 0, cfg.N)
	for _, raw := range randx.UniqueIDs(nodeRNG, cfg.N, space.Size()) {
		nodeIDs = append(nodeIDs, id.ID(raw))
	}
	sort.Slice(nodeIDs, func(i, j int) bool { return nodeIDs[i] < nodeIDs[j] })

	ov, err := buildOverlay(cfg.Protocol, space, nodeIDs, overlayOpts{
		locality: *cfg.LocalityAware, succList: cfg.SuccListLen, seed: cfg.Seed,
	})
	if err != nil {
		return ChurnStats{}, err
	}

	w := workload.New(workload.Config{
		Space:       space,
		NumItems:    cfg.ItemsPerNode * cfg.N,
		Alpha:       cfg.Alpha,
		NumRankings: cfg.NumRankings,
		Seed:        randx.DeriveSeed(cfg.Seed, "workload"),
	})
	for _, x := range nodeIDs {
		w.RankingOf(x)
	}

	churnRNG := randx.New(randx.DeriveSeed(cfg.Seed, "churn"))
	queryRNG := randx.New(randx.DeriveSeed(cfg.Seed, "queries"))
	phaseRNG := randx.New(randx.DeriveSeed(cfg.Seed, "phases"))
	selRNG := randx.New(randx.DeriveSeed(cfg.Seed, "oblivious"))

	eng := sim.New()
	var st ChurnStats
	end := cfg.Warmup + cfg.Duration

	// Start at steady state: each node is down with probability 1/2.
	// Draws happen in sorted id order for determinism.
	down := make(map[id.ID]bool, cfg.N)
	for _, x := range nodeIDs {
		if churnRNG.Intn(2) == 0 {
			down[x] = true
		}
	}
	for _, x := range nodeIDs {
		if down[x] {
			if err := ov.Crash(x); err != nil {
				return ChurnStats{}, err
			}
		}
	}
	ov.StabilizeAll()

	// Membership lifecycle: alternate alive/dead with Exp(MeanLifetime)
	// durations.
	var lifecycle func(x id.ID)
	lifecycle = func(x id.ID) {
		eng.After(randx.Exp(churnRNG, cfg.MeanLifetime), func() {
			if eng.Now() > end {
				return
			}
			if down[x] {
				if err := ov.Rejoin(x); err == nil {
					down[x] = false
					st.MembershipEvents++
				}
			} else {
				if ov.NumAlive() > 2 { // never kill the whole overlay
					if err := ov.Crash(x); err == nil {
						down[x] = true
						st.MembershipEvents++
					}
				}
			}
			lifecycle(x)
		})
	}
	for _, x := range nodeIDs {
		lifecycle(x)
	}

	// Per-node stabilization with random phase.
	for _, x := range nodeIDs {
		x := x
		eng.After(phaseRNG.Float64()*cfg.StabilizeEvery, func() {
			eng.Every(cfg.StabilizeEvery, func() bool {
				if eng.Now() > end {
					return false
				}
				ov.Stabilize(x)
				return true
			})
			ov.Stabilize(x)
		})
	}

	// Per-node auxiliary recomputation with random phase. With a
	// history window configured, the counter is rotated after use so
	// each selection sees roughly the last HistoryWindow seconds.
	lastReset := make(map[id.ID]float64, cfg.N)
	recompute := func(x id.ID) {
		if down[x] {
			return
		}
		peers := ov.Observed(x)
		if len(peers) == 0 {
			return
		}
		var aux []id.ID
		switch scheme {
		case CoreOnly:
			aux = nil
		case Oblivious:
			// Random per-range placement over the live membership; no
			// query information is used (Section VI-A).
			aux = ov.SelectOblivious(x, ov.AliveIDs(), cfg.K, selRNG)
		case Optimal:
			var err error
			aux, err = ov.SelectOptimal(x, peers, clampK(cfg.K, len(peers)))
			if err != nil {
				aux = nil
			}
			// When the observed history is smaller than the budget the
			// paper's algorithm cannot fill every slot (A_s ⊆ V − N_s);
			// spend the leftovers like the oblivious scheme does so the
			// comparison holds the routing-state size fixed.
			if len(aux) < cfg.K {
				have := make(map[id.ID]bool, len(aux))
				for _, a := range aux {
					have[a] = true
				}
				for _, a := range ov.SelectOblivious(x, ov.AliveIDs(), cfg.K, selRNG) {
					if len(aux) >= cfg.K {
						break
					}
					if !have[a] {
						have[a] = true
						aux = append(aux, a)
					}
				}
			}
		}
		_ = ov.SetAux(x, aux)
		if cfg.HistoryWindow > 0 && eng.Now()-lastReset[x] >= cfg.HistoryWindow {
			ov.ResetObserved(x)
			lastReset[x] = eng.Now()
		}
	}
	for _, x := range nodeIDs {
		x := x
		eng.After(phaseRNG.Float64()*cfg.RecomputeEvery, func() {
			eng.Every(cfg.RecomputeEvery, func() bool {
				if eng.Now() > end {
					return false
				}
				recompute(x)
				return true
			})
			recompute(x)
		})
	}

	// Poisson query arrivals at the network-wide rate.
	var nextQuery func()
	nextQuery = func() {
		eng.After(randx.Exp(queryRNG, 1/cfg.QueryRate), func() {
			if eng.Now() > end {
				return
			}
			alive := ov.AliveIDs()
			if len(alive) == 0 {
				nextQuery()
				return
			}
			s := alive[queryRNG.Intn(len(alive))]
			key := w.Key(w.SampleItem(queryRNG, s))
			hops, timeouts, dest, ok, err := ov.RouteTo(s, key)
			if err == nil {
				if ok {
					ov.Observe(s, dest)
				}
				if eng.Now() > cfg.Warmup {
					st.Queries++
					if !ok {
						st.Failures++
					} else {
						st.AvgEffHops += float64(hops + timeouts)
						st.AvgTimeouts += float64(timeouts)
					}
				}
			}
			nextQuery()
		})
	}
	nextQuery()

	eng.RunUntil(end)

	if succ := st.Queries - st.Failures; succ > 0 {
		st.AvgEffHops /= float64(succ)
		st.AvgTimeouts /= float64(succ)
	}
	return st, nil
}

// RunChurnComparison runs Oblivious and Optimal on identical churn and
// query streams and reports the paper's reduction metric.
func RunChurnComparison(cfg ChurnConfig) (ChurnComparison, error) {
	cfg = cfg.withDefaults()
	obl, err := RunChurn(cfg, Oblivious)
	if err != nil {
		return ChurnComparison{}, err
	}
	opt, err := RunChurn(cfg, Optimal)
	if err != nil {
		return ChurnComparison{}, err
	}
	return ChurnComparison{
		Config:    cfg,
		K:         cfg.K,
		Oblivious: obl,
		Optimal:   opt,
		Reduction: stats.PercentReduction(obl.AvgEffHops, opt.AvgEffHops),
	}, nil
}
