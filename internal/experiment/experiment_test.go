package experiment

import (
	"math"
	"strings"
	"testing"
)

func TestLog2(t *testing.T) {
	tests := []struct{ n, want int }{
		{1, 0}, {2, 1}, {3, 1}, {4, 2}, {1024, 10}, {2048, 11}, {1500, 10},
	}
	for _, tt := range tests {
		if got := Log2(tt.n); got != tt.want {
			t.Errorf("Log2(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestStringers(t *testing.T) {
	if Chord.String() != "chord" || Pastry.String() != "pastry" {
		t.Error("protocol stringers wrong")
	}
	if CoreOnly.String() != "core-only" || Oblivious.String() != "oblivious" || Optimal.String() != "optimal" {
		t.Error("scheme stringers wrong")
	}
	if !strings.Contains(Protocol(9).String(), "9") || !strings.Contains(Scheme(9).String(), "9") {
		t.Error("unknown-value stringers wrong")
	}
}

func smallStable(p Protocol) StableConfig {
	return StableConfig{Protocol: p, N: 96, Bits: 16, ItemsPerNode: 4, Seed: 11}
}

// The central claim of the paper, at test scale: the optimal selection
// strictly beats the frequency-oblivious baseline, which beats having no
// auxiliary neighbors.
func TestStableSchemeOrdering(t *testing.T) {
	for _, p := range []Protocol{Chord, Pastry} {
		res, err := RunStable(smallStable(p))
		if err != nil {
			t.Fatal(err)
		}
		core := res.PerScheme[CoreOnly].AvgHops
		obl := res.PerScheme[Oblivious].AvgHops
		opt := res.PerScheme[Optimal].AvgHops
		if !(opt < obl && obl < core) {
			t.Fatalf("%v: expected opt < obl < core, got %.3f / %.3f / %.3f", p, opt, obl, core)
		}
		if res.Reduction <= 0 {
			t.Errorf("%v: non-positive reduction %.2f", p, res.Reduction)
		}
		if res.ReductionVsCore <= res.Reduction {
			t.Errorf("%v: reduction vs core (%.2f) should exceed reduction vs oblivious (%.2f)",
				p, res.ReductionVsCore, res.Reduction)
		}
	}
}

func TestStableDeterministic(t *testing.T) {
	a, err := RunStable(smallStable(Chord))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunStable(smallStable(Chord))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Scheme{CoreOnly, Oblivious, Optimal} {
		if a.PerScheme[s].AvgHops != b.PerScheme[s].AvgHops {
			t.Fatalf("scheme %v not deterministic: %v vs %v", s, a.PerScheme[s], b.PerScheme[s])
		}
	}
}

func TestStableSeedChangesResult(t *testing.T) {
	a, err := RunStable(smallStable(Chord))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallStable(Chord)
	cfg.Seed = 12
	b, err := RunStable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.PerScheme[Optimal].AvgHops == b.PerScheme[Optimal].AvgHops {
		t.Error("different seeds produced identical averages (suspicious)")
	}
}

func TestStableSampledObservationsClose(t *testing.T) {
	exact, err := RunStable(smallStable(Chord))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallStable(Chord)
	cfg.ObserveQueries = 512
	sampled, err := RunStable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The selectors optimize the estimated distance, so sampled
	// frequencies can shift routed hops slightly in either direction —
	// but with 512 observations they must land close to the exact-mass
	// result.
	e, sm := exact.PerScheme[Optimal].AvgHops, sampled.PerScheme[Optimal].AvgHops
	if math.Abs(e-sm) > 0.1*e {
		t.Errorf("sampled selection far from exact: %.3f vs %.3f", sm, e)
	}
	if sampled.Reduction <= 0 {
		t.Errorf("sampled reduction %.2f not positive", sampled.Reduction)
	}
}

func TestStableKZeroMatchesCoreOnly(t *testing.T) {
	cfg := smallStable(Chord)
	cfg.K = -1 // sentinel below: withDefaults treats 0 as "derive"
	if _, err := RunStable(cfg); err == nil {
		t.Error("negative K accepted")
	}
}

func TestStableErrors(t *testing.T) {
	if _, err := RunStable(StableConfig{Protocol: Chord, N: 1, Bits: 8}); err == nil {
		t.Error("N=1 accepted")
	}
	if _, err := RunStable(StableConfig{Protocol: Protocol(9), N: 16, Bits: 8, ItemsPerNode: 1}); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestChurnBasics(t *testing.T) {
	cfg := ChurnConfig{Protocol: Chord, N: 48, Bits: 16, ItemsPerNode: 4, Warmup: 200, Duration: 1200, Seed: 5}
	st, err := RunChurn(cfg, Optimal)
	if err != nil {
		t.Fatal(err)
	}
	if st.Queries == 0 {
		t.Fatal("no queries measured")
	}
	if st.MembershipEvents == 0 {
		t.Fatal("no churn happened")
	}
	if st.AvgEffHops <= 0 {
		t.Fatalf("AvgEffHops = %g", st.AvgEffHops)
	}
	if float64(st.Failures) > 0.1*float64(st.Queries) {
		t.Errorf("too many failures: %d/%d", st.Failures, st.Queries)
	}
}

func TestChurnDeterministic(t *testing.T) {
	cfg := ChurnConfig{Protocol: Chord, N: 48, Bits: 16, ItemsPerNode: 4, Warmup: 100, Duration: 600, Seed: 6}
	a, err := RunChurn(cfg, Oblivious)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChurn(cfg, Oblivious)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("churn run not deterministic: %+v vs %+v", a, b)
	}
}

// Paired comparison: churn and query streams must be identical across
// schemes, so both runs see the same number of queries and membership
// events.
func TestChurnPairedStreams(t *testing.T) {
	cfg := ChurnConfig{Protocol: Chord, N: 48, Bits: 16, ItemsPerNode: 4, Warmup: 100, Duration: 900, Seed: 7}
	cmp, err := RunChurnComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Oblivious.Queries != cmp.Optimal.Queries {
		t.Errorf("query streams diverged: %d vs %d", cmp.Oblivious.Queries, cmp.Optimal.Queries)
	}
	if cmp.Oblivious.MembershipEvents != cmp.Optimal.MembershipEvents {
		t.Errorf("churn streams diverged: %d vs %d", cmp.Oblivious.MembershipEvents, cmp.Optimal.MembershipEvents)
	}
	if math.IsNaN(cmp.Reduction) {
		t.Error("NaN reduction")
	}
}

func TestChurnErrors(t *testing.T) {
	if _, err := RunChurn(ChurnConfig{Protocol: Chord, N: 2, Bits: 8}, Optimal); err == nil {
		t.Error("tiny N accepted for churn")
	}
}

func TestChurnPastrySupported(t *testing.T) {
	cfg := ChurnConfig{Protocol: Pastry, N: 48, Bits: 16, ItemsPerNode: 4, Warmup: 100, Duration: 600, Seed: 8}
	st, err := RunChurn(cfg, Optimal)
	if err != nil {
		t.Fatal(err)
	}
	if st.Queries == 0 {
		t.Error("no pastry churn queries measured")
	}
}

func testScale() Scale {
	return Scale{
		Sizes:        []int{48, 96},
		FixedN:       96,
		Bits:         16,
		ItemsPerNode: 2,
		Warmup:       100,
		Duration:     400,
		Seed:         3,
	}
}

func TestFiguresProduceTables(t *testing.T) {
	scale := testScale()
	for name, fn := range map[string]func(Scale) (Table, error){
		"fig3": Fig3, "fig4": Fig4, "fig5": Fig5, "fig6": Fig6,
	} {
		tb, err := fn(scale)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tb.Rows) == 0 || len(tb.Columns) == 0 {
			t.Fatalf("%s: empty table", name)
		}
		for _, row := range tb.Rows {
			if len(row) != len(tb.Columns) {
				t.Fatalf("%s: row width %d != %d columns", name, len(row), len(tb.Columns))
			}
		}
		var sb strings.Builder
		if err := tb.Render(&sb); err != nil {
			t.Fatalf("%s render: %v", name, err)
		}
		out := sb.String()
		if !strings.Contains(out, tb.Columns[0]) || !strings.Contains(out, "---") {
			t.Errorf("%s: render output malformed:\n%s", name, out)
		}
	}
}

func TestTableRender(t *testing.T) {
	tb := Table{
		Title:   "demo",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"x", "1"}, {"yyyy", "2"}},
	}
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("rendered %d lines, want 5:\n%s", len(lines), sb.String())
	}
	if lines[0] != "demo" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "a     long-column") {
		t.Errorf("header = %q", lines[1])
	}
}

func TestTableRenderCSV(t *testing.T) {
	tb := Table{
		Title:   "demo",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"x,with comma", "1"}, {"y", "2"}},
	}
	var sb strings.Builder
	if err := tb.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	want := "# demo\na,b\n\"x,with comma\",1\ny,2\n"
	if out != want {
		t.Fatalf("csv = %q, want %q", out, want)
	}
}

// The sliding history window must change selection inputs: a windowed
// run differs from a cumulative-history run on the same streams.
func TestChurnHistoryWindowTakesEffect(t *testing.T) {
	base := ChurnConfig{Protocol: Chord, N: 64, Bits: 16, ItemsPerNode: 2,
		QueryRate: 64, Warmup: 100, Duration: 900, Seed: 21}
	cum, err := RunChurn(base, Optimal)
	if err != nil {
		t.Fatal(err)
	}
	windowed := base
	windowed.HistoryWindow = 125
	win, err := RunChurn(windowed, Optimal)
	if err != nil {
		t.Fatal(err)
	}
	// Same paired streams, so query counts match; the selections (and
	// therefore hop sums) should differ.
	if cum.Queries != win.Queries {
		t.Fatalf("query streams diverged: %d vs %d", cum.Queries, win.Queries)
	}
	if cum.AvgEffHops == win.AvgEffHops {
		t.Error("history window had no effect on routing costs (suspicious)")
	}
}

// churnRates implements the two readings of the paper's "4 queries per
// second" plus overrides.
func TestChurnRatesReadings(t *testing.T) {
	var s Scale
	rate, window := s.churnRates(1024)
	if rate != 4*1024/2 || window != 250 {
		t.Errorf("defaults = (%g, %g), want (2048, 250)", rate, window)
	}
	s.QueryRatePerNode = -1
	rate, _ = s.churnRates(1024)
	if rate != 4 {
		t.Errorf("network-wide reading = %g, want 4", rate)
	}
	s.QueryRatePerNode = 10
	s.HistoryWindow = 60
	rate, window = s.churnRates(100)
	if rate != 10*100/2 || window != 60 {
		t.Errorf("overrides = (%g, %g), want (500, 60)", rate, window)
	}
}
