package experiment

import (
	"strconv"
	"strings"
	"testing"
)

func TestExtQoS(t *testing.T) {
	tb, err := ExtQoS(Scale{FixedN: 128, Bits: 20, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tb.Rows))
	}
	// Premiums must be non-negative and non-decreasing while feasible.
	prev := -1.0
	for _, row := range tb.Rows {
		if row[3] == "no" {
			continue
		}
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatalf("bad premium cell %q", row[1])
		}
		if v < 0 {
			t.Errorf("negative premium %g", v)
		}
		if v < prev-1e-9 {
			t.Errorf("premium decreased: %g after %g", v, prev)
		}
		prev = v
	}
}

func TestExtEstimate(t *testing.T) {
	tb, err := ExtEstimate(Scale{FixedN: 128, Bits: 20, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (chord, pastry)", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		// The estimate is an upper bound in the steady state: the holds
		// column must be 100% for chord; pastry's leaf-set shortcut can
		// only shorten routes, so it must hold there too.
		if !strings.HasPrefix(row[3], "100.0%") {
			t.Errorf("%s: estimate bound violated in %s of pairs", row[0], row[3])
		}
		est, _ := strconv.ParseFloat(row[1], 64)
		routed, _ := strconv.ParseFloat(row[2], 64)
		if est < routed {
			t.Errorf("%s: mean estimate %.3f below mean routed %.3f", row[0], est, routed)
		}
	}
}

func TestExtSketch(t *testing.T) {
	tb, err := ExtSketch(Scale{FixedN: 128, Bits: 20, ItemsPerNode: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 (exact + 5 capacities)", len(tb.Rows))
	}
	// Larger capacity must never be worse than much smaller capacity by
	// more than noise; the largest capacity should be within 10% of
	// exact.
	last := tb.Rows[len(tb.Rows)-1]
	overhead := strings.TrimSuffix(strings.TrimPrefix(last[3], "+"), "%")
	v, err := strconv.ParseFloat(overhead, 64)
	if err != nil {
		t.Fatalf("bad overhead cell %q", last[3])
	}
	if v > 10 {
		t.Errorf("space-saving-256 overhead %.1f%% too large", v)
	}
}

func TestExtReplication(t *testing.T) {
	tb, err := ExtReplication(Scale{FixedN: 128, Bits: 20, ItemsPerNode: 4, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tb.Rows))
	}
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("bad cell %q", s)
		}
		return v
	}
	plain := parse(tb.Rows[0][1])
	repl := parse(tb.Rows[1][1])
	aux := parse(tb.Rows[2][1])
	if repl >= plain {
		t.Errorf("replication did not reduce hops: %.3f vs %.3f", repl, plain)
	}
	if aux >= plain {
		t.Errorf("pointer caching did not reduce hops: %.3f vs %.3f", aux, plain)
	}
	// Replication must pay real update traffic; pointer caching none.
	if parse(tb.Rows[1][3]) <= 0 {
		t.Error("replication hot-update cost should be positive")
	}
	if tb.Rows[2][3] != "0.0" {
		t.Error("pointer caching should have zero update cost")
	}
}

func TestExtDigits(t *testing.T) {
	tb, err := ExtDigits(Scale{FixedN: 96, Bits: 16, ItemsPerNode: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (d = 1, 2, 4)", len(tb.Rows))
	}
	// Absolute hop counts must drop as digits grow (one digit per hop),
	// and every digit size must still show a positive reduction.
	prevOpt := 1e9
	for _, row := range tb.Rows {
		opt, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("bad cell %q", row[2])
		}
		if opt >= prevOpt {
			t.Errorf("optimal hops did not drop with digit size: %.3f after %.3f", opt, prevOpt)
		}
		prevOpt = opt
		red, err := strconv.ParseFloat(strings.TrimSuffix(row[3], "%"), 64)
		if err != nil {
			t.Fatalf("bad reduction cell %q", row[3])
		}
		if red <= 0 {
			t.Errorf("d=%s: non-positive reduction %q", row[0], row[3])
		}
	}
}

func TestExtPortability(t *testing.T) {
	tb, err := ExtPortability(Scale{FixedN: 96, Bits: 20, ItemsPerNode: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 overlays", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		obl, err1 := strconv.ParseFloat(row[1], 64)
		opt, err2 := strconv.ParseFloat(row[2], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("bad cells in %v", row)
		}
		if opt >= obl {
			t.Errorf("%s: optimal %.3f not better than oblivious %.3f", row[0], opt, obl)
		}
	}
}
