package experiment

import (
	"strconv"
	"strings"
	"testing"
)

func TestExtGlobal(t *testing.T) {
	tb, err := ExtGlobal(Scale{FixedN: 96, Bits: 18, ItemsPerNode: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (round 0..2)", len(tb.Rows))
	}
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("bad cell %q", s)
		}
		return v
	}
	local := parse(tb.Rows[0][1])
	final := parse(tb.Rows[len(tb.Rows)-1][1])
	// Measured-cost refinement sees the real mesh, so it must not be
	// meaningfully worse than the local optimum; typically it improves.
	if final > local*1.02 {
		t.Errorf("refinement made things worse: %.3f -> %.3f", local, final)
	}
	imp := strings.TrimSuffix(tb.Rows[len(tb.Rows)-1][2], "%")
	if _, err := strconv.ParseFloat(imp, 64); err != nil {
		t.Errorf("bad improvement cell %q", tb.Rows[len(tb.Rows)-1][2])
	}
}
