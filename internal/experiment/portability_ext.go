package experiment

import (
	"fmt"
	"sort"

	"peercache/internal/baseline"
	"peercache/internal/core"
	"peercache/internal/id"
	"peercache/internal/pgrid"
	"peercache/internal/randx"
	"peercache/internal/skipgraph"
	"peercache/internal/stats"
	"peercache/internal/tapestry"
	"peercache/internal/workload"
)

// ExtPortability runs the paper's Section I applicability claims as a
// full experiment rather than a single-node demo: on a skip graph, a
// P-Grid and a Tapestry mesh over the same membership and workload,
// every node selects k auxiliary neighbors with the matching paper
// algorithm (Chord's for the skip graph, Pastry's — digit-aware where
// appropriate — for the trie-structured systems), and the sampled
// average lookup cost is compared against the frequency-oblivious
// baseline with the same budget.
func ExtPortability(scale Scale) (Table, error) {
	n := scale.fixedN()
	if n > 512 {
		n = 512
	}
	bits := scale.Bits
	if bits == 0 {
		bits = 24
	}
	itemsPerNode := scale.ItemsPerNode
	if itemsPerNode == 0 {
		itemsPerNode = 8
	}
	k := Log2(n)
	space := id.NewSpace(bits)

	nodeRNG := randx.New(randx.DeriveSeed(scale.Seed, "ext-port-nodes"))
	nodeIDs := make([]id.ID, 0, n)
	for _, raw := range randx.UniqueIDs(nodeRNG, n, space.Size()) {
		nodeIDs = append(nodeIDs, id.ID(raw))
	}
	sort.Slice(nodeIDs, func(i, j int) bool { return nodeIDs[i] < nodeIDs[j] })

	w := workload.New(workload.Config{
		Space:       space,
		NumItems:    itemsPerNode * n,
		Alpha:       1.2,
		NumRankings: 1,
		Seed:        randx.DeriveSeed(scale.Seed, "ext-port-items"),
	})
	qryRNG := randx.New(randx.DeriveSeed(scale.Seed, "ext-port-queries"))
	type lookup struct {
		src id.ID
		key id.ID
	}
	const samples = 30000
	lookups := make([]lookup, samples)
	for i := range lookups {
		src := nodeIDs[qryRNG.Intn(n)]
		lookups[i] = lookup{src: src, key: w.Key(w.SampleItem(qryRNG, src))}
	}

	// portOverlay is the minimal surface each foreign overlay offers.
	type portOverlay struct {
		name string
		// owner of a key, for per-node destination masses.
		owner func(id.ID) id.ID
		// core neighbor set of a node, for selection.
		core func(id.ID) []id.ID
		// install an auxiliary set.
		setAux func(id.ID, []id.ID) error
		// route a lookup, returning hops.
		route func(from, key id.ID) (int, bool)
		// selectors: the paper algorithm and the oblivious baseline.
		selOptimal   func(self id.ID, coreSet []id.ID, peers []core.Peer) ([]id.ID, error)
		selOblivious func(self id.ID, coreSet []id.ID, cands []id.ID) []id.ID
	}

	selRNG := randx.New(randx.DeriveSeed(scale.Seed, "ext-port-obl"))

	sg, err := skipgraph.Build(skipgraph.Config{Space: space, Seed: scale.Seed}, nodeIDs)
	if err != nil {
		return Table{}, err
	}
	pg, err := pgrid.Build(pgrid.Config{Space: space, Seed: scale.Seed}, nodeIDs)
	if err != nil {
		return Table{}, err
	}
	tp, err := tapestry.Build(tapestry.Config{Space: space, DigitBits: 4}, nodeIDs)
	if err != nil {
		return Table{}, err
	}

	overlays := []portOverlay{
		{
			name:   "skip graph + Chord selector",
			owner:  sg.Owner,
			core:   func(x id.ID) []id.ID { return sg.Node(x).Neighbors() },
			setAux: sg.SetAux,
			route: func(from, key id.ID) (int, bool) {
				r, err := sg.Route(from, key)
				return r.Hops, err == nil && r.OK
			},
			selOptimal: func(self id.ID, coreSet []id.ID, peers []core.Peer) ([]id.ID, error) {
				r, err := core.SelectChordFast(space, self, coreSet, peers, clampK(k, len(peers)))
				if err != nil {
					return nil, err
				}
				return r.Aux, nil
			},
			selOblivious: func(self id.ID, coreSet []id.ID, cands []id.ID) []id.ID {
				return baseline.ChordOblivious(space, self, coreSet, cands, k, selRNG)
			},
		},
		{
			name:   "P-Grid + Pastry selector",
			owner:  pg.Owner,
			core:   func(x id.ID) []id.ID { return pg.Node(x).References() },
			setAux: pg.SetAux,
			route: func(from, key id.ID) (int, bool) {
				r, err := pg.Route(from, key)
				return r.Hops, err == nil && r.OK
			},
			selOptimal: func(self id.ID, coreSet []id.ID, peers []core.Peer) ([]id.ID, error) {
				r, err := core.SelectPastryGreedy(space, coreSet, peers, clampK(k, len(peers)))
				if err != nil {
					return nil, err
				}
				return r.Aux, nil
			},
			selOblivious: func(self id.ID, coreSet []id.ID, cands []id.ID) []id.ID {
				return baseline.PastryOblivious(space, self, coreSet, cands, k, selRNG)
			},
		},
		{
			name:   "Tapestry (hex) + Pastry selector",
			owner:  tp.Root,
			core:   func(x id.ID) []id.ID { return tp.Node(x).Neighbors() },
			setAux: tp.SetAux,
			route: func(from, key id.ID) (int, bool) {
				r, err := tp.Route(from, key)
				return r.Hops, err == nil && r.OK
			},
			selOptimal: func(self id.ID, coreSet []id.ID, peers []core.Peer) ([]id.ID, error) {
				r, err := core.SelectPastryGreedyDigits(space, coreSet, peers, clampK(k, len(peers)), 4)
				if err != nil {
					return nil, err
				}
				return r.Aux, nil
			},
			selOblivious: func(self id.ID, coreSet []id.ID, cands []id.ID) []id.ID {
				return baseline.PastryObliviousDigits(space, self, coreSet, cands, k, 4, selRNG)
			},
		},
	}

	t := Table{
		Title:   fmt.Sprintf("Extension — §I portability at full mesh scale (n = %d, k = %d, every node selects)", n, k),
		Columns: []string{"overlay + selector", "avg hops oblivious", "avg hops optimal", "reduction"},
	}

	for _, ov := range overlays {
		// Per-node exact destination masses under this overlay's
		// ownership rule.
		mass := make(map[id.ID]map[id.ID]float64, n)
		owners := make([]id.ID, w.NumItems())
		for i := range owners {
			owners[i] = ov.owner(w.Key(i))
		}
		for _, x := range nodeIDs {
			mass[x] = w.DestMass(x, func(i int) id.ID { return owners[i] })
		}
		measure := func() (float64, error) {
			var r stats.Running
			for _, l := range lookups {
				hops, ok := ov.route(l.src, l.key)
				if !ok {
					return 0, fmt.Errorf("ext-portability: %s lookup failed", ov.name)
				}
				r.Add(float64(hops))
			}
			return r.Mean(), nil
		}
		install := func(sel func(x id.ID) ([]id.ID, error)) error {
			for _, x := range nodeIDs {
				aux, err := sel(x)
				if err != nil {
					return err
				}
				if err := ov.setAux(x, aux); err != nil {
					return err
				}
			}
			return nil
		}

		if err := install(func(x id.ID) ([]id.ID, error) {
			cands := make([]id.ID, 0, len(mass[x]))
			for d := range mass[x] {
				cands = append(cands, d)
			}
			sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
			return ov.selOblivious(x, ov.core(x), cands), nil
		}); err != nil {
			return Table{}, err
		}
		obl, err := measure()
		if err != nil {
			return Table{}, err
		}

		if err := install(func(x id.ID) ([]id.ID, error) {
			peers := make([]core.Peer, 0, len(mass[x]))
			for d, m := range mass[x] {
				peers = append(peers, core.Peer{ID: d, Freq: m})
			}
			sort.Slice(peers, func(i, j int) bool { return peers[i].ID < peers[j].ID })
			return ov.selOptimal(x, ov.core(x), peers)
		}); err != nil {
			return Table{}, err
		}
		opt, err := measure()
		if err != nil {
			return Table{}, err
		}

		t.Rows = append(t.Rows, []string{
			ov.name, hops(obl), hops(opt), pct(stats.PercentReduction(obl, opt)),
		})
	}
	return t, nil
}
