// Package experiment reproduces the paper's evaluation (Section VI): it
// builds Chord or Pastry overlays, generates zipfian workloads, selects
// auxiliary neighbors with the paper's optimal algorithms and with the
// frequency-oblivious baseline, and measures average lookup hops in
// stable and churn-intensive regimes.
//
// Stable-mode results are exact expectations: every (source, destination)
// pair is routed once and weighted by its query probability, so the
// reported averages carry no sampling noise. Churn-mode results are
// sampled from an event-driven simulation with the paper's parameters
// (exponential lifetimes, periodic stabilization and recomputation).
package experiment

import (
	"fmt"
	"math/rand"
	"sort"

	"peercache/internal/baseline"
	"peercache/internal/chord"
	"peercache/internal/core"
	"peercache/internal/freq"
	"peercache/internal/id"
	"peercache/internal/pastry"
)

// Protocol selects the overlay under test.
type Protocol int

const (
	// Chord is the paper's own event-driven Chord variant (Section
	// II-B).
	Chord Protocol = iota
	// Pastry is the FreePastry-style prefix-routing overlay (Section
	// II-A).
	Pastry
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case Chord:
		return "chord"
	case Pastry:
		return "pastry"
	default:
		return fmt.Sprintf("protocol(%d)", int(p))
	}
}

// Scheme selects how auxiliary neighbors are chosen.
type Scheme int

const (
	// CoreOnly uses no auxiliary neighbors at all.
	CoreOnly Scheme = iota
	// Oblivious is the frequency-oblivious baseline of Section VI-A.
	Oblivious
	// Optimal is the paper's frequency-aware optimal selection.
	Optimal
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case CoreOnly:
		return "core-only"
	case Oblivious:
		return "oblivious"
	case Optimal:
		return "optimal"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// overlay abstracts the two simulators behind the operations the harness
// needs.
type overlay interface {
	Space() id.Space
	AliveIDs() []id.ID
	NumAlive() int
	Owner(key id.ID) (id.ID, bool)
	SetAux(x id.ID, aux []id.ID) error
	StabilizeAll()
	Stabilize(x id.ID)
	Crash(x id.ID) error
	Rejoin(x id.ID) error
	// CoreOf returns the node's core neighbor set for selection.
	CoreOf(x id.ID) []id.ID
	// RouteTo routes a lookup for key from node from.
	RouteTo(from, key id.ID) (hops, timeouts int, dest id.ID, ok bool, err error)
	// Observe records a lookup destination in the node's counter.
	Observe(x, dest id.ID)
	// Observed returns the node's observed (peer, count) history.
	Observed(x id.ID) []core.Peer
	// ResetObserved clears the node's counter.
	ResetObserved(x id.ID)
	// SelectOptimal runs the paper's selector for node x.
	SelectOptimal(x id.ID, peers []core.Peer, k int) ([]id.ID, error)
	// SelectOblivious runs the frequency-oblivious baseline for x.
	SelectOblivious(x id.ID, candidates []id.ID, k int, rng *rand.Rand) []id.ID
}

// chordOverlay adapts chord.Network.
type chordOverlay struct{ nw *chord.Network }

func (o chordOverlay) Space() id.Space                 { return o.nw.Space() }
func (o chordOverlay) AliveIDs() []id.ID               { return o.nw.AliveIDs() }
func (o chordOverlay) NumAlive() int                   { return o.nw.NumAlive() }
func (o chordOverlay) Owner(key id.ID) (id.ID, bool)   { return o.nw.Owner(key) }
func (o chordOverlay) SetAux(x id.ID, a []id.ID) error { return o.nw.SetAux(x, a) }
func (o chordOverlay) StabilizeAll()                   { o.nw.StabilizeAll() }
func (o chordOverlay) Stabilize(x id.ID)               { o.nw.Stabilize(x) }
func (o chordOverlay) Crash(x id.ID) error             { return o.nw.Crash(x) }
func (o chordOverlay) Rejoin(x id.ID) error            { return o.nw.Rejoin(x) }
func (o chordOverlay) CoreOf(x id.ID) []id.ID          { return o.nw.Node(x).Fingers() }

func (o chordOverlay) RouteTo(from, key id.ID) (int, int, id.ID, bool, error) {
	res, err := o.nw.Route(from, key)
	return res.Hops, res.Timeouts, res.Dest, res.OK, err
}

func (o chordOverlay) Observe(x, dest id.ID) { o.nw.Node(x).Counter.Observe(dest) }

func (o chordOverlay) Observed(x id.ID) []core.Peer {
	return peersFromSnapshot(o.nw.Node(x).Counter.Snapshot())
}

func (o chordOverlay) ResetObserved(x id.ID) { o.nw.Node(x).Counter.Reset() }

func (o chordOverlay) SelectOptimal(x id.ID, peers []core.Peer, k int) ([]id.ID, error) {
	res, err := core.SelectChordFast(o.nw.Space(), x, o.CoreOf(x), peers, k)
	if err != nil {
		return nil, err
	}
	return res.Aux, nil
}

func (o chordOverlay) SelectOblivious(x id.ID, candidates []id.ID, k int, rng *rand.Rand) []id.ID {
	return baseline.ChordOblivious(o.nw.Space(), x, o.CoreOf(x), candidates, k, rng)
}

// pastryOverlay adapts pastry.Network.
type pastryOverlay struct {
	nw *pastry.Network
}

func (o pastryOverlay) digitBits() uint { return o.nw.Config().DigitBits }

func (o pastryOverlay) Space() id.Space                 { return o.nw.Space() }
func (o pastryOverlay) AliveIDs() []id.ID               { return o.nw.AliveIDs() }
func (o pastryOverlay) NumAlive() int                   { return o.nw.NumAlive() }
func (o pastryOverlay) Owner(key id.ID) (id.ID, bool)   { return o.nw.Owner(key) }
func (o pastryOverlay) SetAux(x id.ID, a []id.ID) error { return o.nw.SetAux(x, a) }
func (o pastryOverlay) StabilizeAll()                   { o.nw.StabilizeAll() }
func (o pastryOverlay) Stabilize(x id.ID)               { o.nw.Stabilize(x) }
func (o pastryOverlay) Crash(x id.ID) error             { return o.nw.Crash(x) }
func (o pastryOverlay) Rejoin(x id.ID) error            { return o.nw.Rejoin(x) }
func (o pastryOverlay) CoreOf(x id.ID) []id.ID          { return o.nw.Node(x).CoreNeighbors() }

func (o pastryOverlay) RouteTo(from, key id.ID) (int, int, id.ID, bool, error) {
	res, err := o.nw.Route(from, key)
	return res.Hops, res.Timeouts, res.Dest, res.OK, err
}

func (o pastryOverlay) Observe(x, dest id.ID) { o.nw.Node(x).Counter.Observe(dest) }

func (o pastryOverlay) Observed(x id.ID) []core.Peer {
	return peersFromSnapshot(o.nw.Node(x).Counter.Snapshot())
}

func (o pastryOverlay) ResetObserved(x id.ID) { o.nw.Node(x).Counter.Reset() }

func (o pastryOverlay) SelectOptimal(x id.ID, peers []core.Peer, k int) ([]id.ID, error) {
	res, err := core.SelectPastryGreedyDigits(o.nw.Space(), o.CoreOf(x), peers, k, o.digitBits())
	if err != nil {
		return nil, err
	}
	return res.Aux, nil
}

func (o pastryOverlay) SelectOblivious(x id.ID, candidates []id.ID, k int, rng *rand.Rand) []id.ID {
	return baseline.PastryObliviousDigits(o.nw.Space(), x, o.CoreOf(x), candidates, k, o.digitBits(), rng)
}

// Log2 returns floor(log2(n)), the paper's k = log n unit.
func Log2(n int) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}

func peersFromSnapshot(entries []freq.Entry) []core.Peer {
	peers := make([]core.Peer, 0, len(entries))
	for _, e := range entries {
		peers = append(peers, core.Peer{ID: e.Peer, Freq: float64(e.Count)})
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i].ID < peers[j].ID })
	return peers
}

// clampK bounds k by the number of available peers so degenerate early
// windows do not error out.
func clampK(k, available int) int {
	if k > available {
		return available
	}
	if k < 0 {
		return 0
	}
	return k
}
