package experiment

import (
	"fmt"
	"math"
	"sort"

	"peercache/internal/core"
	"peercache/internal/id"
	"peercache/internal/randx"
	"peercache/internal/stats"
	"peercache/internal/workload"
)

// ExtGlobal explores the paper's Section VII future-work question: the
// algorithms optimize each node locally against the eq. 6 distance
// estimate, ignoring the auxiliary neighbors other peers install — so
// the "globally" optimal choice can differ. This experiment measures how
// much is left on the table.
//
// It runs rounds of measured-cost refinement on a stable Chord overlay:
// given everyone else's current auxiliary sets, each node greedily
// re-picks its k pointers using *actual routed hop counts* (which see
// the whole mesh) instead of the analytic estimate, restricted to its
// top candidates by query mass. Round 0 is the paper's local optimum.
func ExtGlobal(scale Scale) (Table, error) {
	n := scale.fixedN()
	if n > 512 {
		n = 512 // measured-cost refinement routes O(n·C·T) pairs per round
	}
	bits := scale.Bits
	if bits == 0 {
		bits = 32
	}
	itemsPerNode := scale.ItemsPerNode
	if itemsPerNode == 0 {
		itemsPerNode = 8
	}
	k := Log2(n)
	space := id.NewSpace(bits)

	nodeRNG := randx.New(randx.DeriveSeed(scale.Seed, "ext-global-nodes"))
	nodeIDs := make([]id.ID, 0, n)
	for _, raw := range randx.UniqueIDs(nodeRNG, n, space.Size()) {
		nodeIDs = append(nodeIDs, id.ID(raw))
	}
	sort.Slice(nodeIDs, func(i, j int) bool { return nodeIDs[i] < nodeIDs[j] })
	ov, err := buildOverlay(Chord, space, nodeIDs, overlayOpts{locality: true, seed: scale.Seed})
	if err != nil {
		return Table{}, err
	}

	w := workload.New(workload.Config{
		Space:       space,
		NumItems:    itemsPerNode * n,
		Alpha:       1.2,
		NumRankings: 5,
		Seed:        randx.DeriveSeed(scale.Seed, "ext-global-items"),
	})
	for _, x := range nodeIDs {
		w.RankingOf(x)
	}
	owner := func(i int) id.ID {
		o, _ := ov.Owner(w.Key(i))
		return o
	}
	mass := make(map[id.ID]map[id.ID]float64, n)
	for _, x := range nodeIDs {
		mass[x] = w.DestMass(x, owner)
	}

	// Round 0: the paper's local optimum at every node.
	for _, x := range nodeIDs {
		peers := make([]core.Peer, 0, len(mass[x]))
		for d, m := range mass[x] {
			peers = append(peers, core.Peer{ID: d, Freq: m})
		}
		sort.Slice(peers, func(i, j int) bool { return peers[i].ID < peers[j].ID })
		res, err := ov.SelectOptimal(x, peers, clampK(k, len(peers)))
		if err != nil {
			return Table{}, err
		}
		if err := ov.SetAux(x, res); err != nil {
			return Table{}, err
		}
	}

	measure := func() (float64, error) {
		st, err := measureExact(ov, nodeIDs, mass)
		return st.AvgHops, err
	}
	local, err := measure()
	if err != nil {
		return Table{}, err
	}

	t := Table{
		Title:   fmt.Sprintf("Extension — local vs measured-cost global refinement (Chord, n = %d, k = %d)", n, k),
		Columns: []string{"round", "avg hops", "improvement vs local"},
	}
	t.Rows = append(t.Rows, []string{"0 (paper's local optimum)", hops(local), "0.00%"})

	// Refinement rounds: each node greedily re-picks its pointers by
	// measured cost against the current global mesh.
	refineNode := func(x id.ID) error {
		m := mass[x]
		// Candidates: top 3k destinations by mass.
		type cand struct {
			id   id.ID
			mass float64
		}
		cands := make([]cand, 0, len(m))
		for d, mm := range m {
			cands = append(cands, cand{d, mm})
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].mass != cands[j].mass {
				return cands[i].mass > cands[j].mass
			}
			return cands[i].id < cands[j].id
		})
		if len(cands) > 3*k {
			cands = cands[:3*k]
		}
		dests := make([]id.ID, 0, len(m))
		for d := range m {
			dests = append(dests, d)
		}
		sort.Slice(dests, func(i, j int) bool { return dests[i] < dests[j] })

		// Measured distance from a candidate pointer c to each dest:
		// 1 hop to c plus c's routed distance (using the mesh).
		viaCost := make(map[id.ID][]float64, len(cands))
		for _, c := range cands {
			row := make([]float64, len(dests))
			for i, d := range dests {
				if c.id == d {
					row[i] = 1
					continue
				}
				hop, _, dest, ok, err := ov.RouteTo(c.id, d)
				if err != nil || !ok || dest != d {
					row[i] = math.Inf(1)
					continue
				}
				row[i] = float64(1 + hop)
			}
			viaCost[c.id] = row
		}
		// Base distances via core only: clear aux and route.
		if err := ov.SetAux(x, nil); err != nil {
			return err
		}
		base := make([]float64, len(dests))
		for i, d := range dests {
			hop, _, _, ok, err := ov.RouteTo(x, d)
			if err != nil || !ok {
				base[i] = math.Inf(1)
				continue
			}
			base[i] = float64(hop)
		}
		// Greedy k picks by measured marginal gain.
		cur := append([]float64(nil), base...)
		var aux []id.ID
		chosen := map[id.ID]bool{}
		for len(aux) < k {
			bestGain := 0.0
			var best id.ID
			found := false
			for _, c := range cands {
				if chosen[c.id] {
					continue
				}
				gain := 0.0
				row := viaCost[c.id]
				for i, d := range dests {
					if row[i] < cur[i] {
						gain += m[d] * (cur[i] - row[i])
					}
				}
				if gain > bestGain {
					bestGain, best, found = gain, c.id, true
				}
			}
			if !found {
				break
			}
			chosen[best] = true
			aux = append(aux, best)
			row := viaCost[best]
			for i := range dests {
				if row[i] < cur[i] {
					cur[i] = row[i]
				}
			}
		}
		return ov.SetAux(x, aux)
	}

	orderRNG := randx.New(randx.DeriveSeed(scale.Seed, "ext-global-order"))
	for round := 1; round <= 2; round++ {
		for _, i := range orderRNG.Perm(len(nodeIDs)) {
			if err := refineNode(nodeIDs[i]); err != nil {
				return Table{}, err
			}
		}
		avg, err := measure()
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(round),
			hops(avg),
			fmt.Sprintf("%.2f%%", stats.PercentReduction(local, avg)),
		})
	}
	return t, nil
}
