package experiment

import (
	"fmt"
	"math/rand"
	"sort"

	"peercache/internal/chord"
	"peercache/internal/core"
	"peercache/internal/id"
	"peercache/internal/pastry"
	"peercache/internal/randx"
	"peercache/internal/stats"
	"peercache/internal/workload"
)

// StableConfig parameterizes a stable-mode (no churn) experiment.
// Defaults match Section VI-A: 32-bit ids, k = log n, alpha = 1.2, one
// global popularity ranking, 16 items per node.
type StableConfig struct {
	Protocol Protocol
	// N is the number of nodes.
	N int
	// Bits is the identifier length (default 32).
	Bits uint
	// K is the number of auxiliary neighbors per node; 0 means
	// KFactor·log2(N).
	K int
	// KFactor scales the default K (default 1: k = log n).
	KFactor int
	// Alpha is the zipf exponent (default 1.2).
	Alpha float64
	// ItemsPerNode sets the corpus size N·ItemsPerNode (default 16).
	ItemsPerNode int
	// NumRankings is the number of distinct popularity rankings
	// (default 1 — identical at all nodes).
	NumRankings int
	// LocalityAware enables FreePastry's proximity tie-breaking
	// (Pastry only; default true).
	LocalityAware *bool
	// SuccListLen is the Chord successor-list length (default 8).
	SuccListLen int
	// DigitBits is the Pastry routing digit size (default 1, the
	// paper's binary digits; 4 gives FreePastry-style hex digits).
	DigitBits uint
	// ObserveQueries, when positive, feeds the selectors sampled
	// frequencies — each node observes this many queries drawn from its
	// own popularity distribution before selecting, as the paper's
	// simulator does — instead of the exact destination masses.
	// Measurement always uses the exact masses.
	ObserveQueries int
	// Seed drives every random stream.
	Seed int64
}

func (c StableConfig) withDefaults() StableConfig {
	if c.Bits == 0 {
		c.Bits = 32
	}
	if c.KFactor == 0 {
		c.KFactor = 1
	}
	if c.K == 0 {
		c.K = c.KFactor * Log2(c.N)
	}
	if c.Alpha == 0 {
		c.Alpha = 1.2
	}
	if c.ItemsPerNode == 0 {
		c.ItemsPerNode = 16
	}
	if c.NumRankings == 0 {
		c.NumRankings = 1
	}
	if c.LocalityAware == nil {
		t := true
		c.LocalityAware = &t
	}
	return c
}

// SchemeStats summarizes one scheme's lookups.
type SchemeStats struct {
	// AvgHops is the probability-weighted average hop count.
	AvgHops float64
	// MaxHops is the worst hop count over all weighted pairs.
	MaxHops int
	// PairHops is the distribution of effective hop counts over the
	// evaluated (source, destination) pairs, unweighted.
	PairHops *stats.Histogram
}

// StableResult is the outcome of RunStable.
type StableResult struct {
	Config StableConfig
	// K is the effective auxiliary budget per node.
	K int
	// PerScheme holds the measured averages, indexed by Scheme.
	PerScheme map[Scheme]SchemeStats
	// Reduction is the paper's metric: percentage reduction in average
	// hops of Optimal versus Oblivious.
	Reduction float64
	// ReductionVsCore compares Optimal against no auxiliary neighbors
	// at all.
	ReductionVsCore float64
}

// RunStable builds the overlay and workload, computes each node's exact
// per-destination query mass, selects auxiliary neighbors under each
// scheme, and measures the exact expected lookup cost.
func RunStable(cfg StableConfig) (StableResult, error) {
	cfg = cfg.withDefaults()
	if cfg.N < 2 {
		return StableResult{}, fmt.Errorf("experiment: N = %d too small", cfg.N)
	}
	if cfg.K < 0 {
		return StableResult{}, fmt.Errorf("experiment: negative K = %d", cfg.K)
	}
	space := id.NewSpace(cfg.Bits)
	nodeRNG := randx.New(randx.DeriveSeed(cfg.Seed, "nodes"))
	nodeIDs := make([]id.ID, 0, cfg.N)
	for _, raw := range randx.UniqueIDs(nodeRNG, cfg.N, space.Size()) {
		nodeIDs = append(nodeIDs, id.ID(raw))
	}
	sort.Slice(nodeIDs, func(i, j int) bool { return nodeIDs[i] < nodeIDs[j] })

	ov, err := buildOverlay(cfg.Protocol, space, nodeIDs, overlayOpts{
		locality: *cfg.LocalityAware, succList: cfg.SuccListLen,
		digitBits: cfg.DigitBits, seed: cfg.Seed,
	})
	if err != nil {
		return StableResult{}, err
	}

	w := workload.New(workload.Config{
		Space:       space,
		NumItems:    cfg.ItemsPerNode * cfg.N,
		Alpha:       cfg.Alpha,
		NumRankings: cfg.NumRankings,
		Seed:        randx.DeriveSeed(cfg.Seed, "workload"),
	})
	// Fix ranking assignments in deterministic id order.
	for _, x := range nodeIDs {
		w.RankingOf(x)
	}

	// Item ownership under the stable membership.
	owners := make([]id.ID, w.NumItems())
	for i := range owners {
		o, ok := ov.Owner(w.Key(i))
		if !ok {
			return StableResult{}, fmt.Errorf("experiment: empty overlay")
		}
		owners[i] = o
	}
	ownerOf := func(i int) id.ID { return owners[i] }

	// Exact per-destination mass for every source node.
	mass := make(map[id.ID]map[id.ID]float64, cfg.N)
	for _, x := range nodeIDs {
		mass[x] = w.DestMass(x, ownerOf)
	}

	// The selection input: exact masses, or sampled observation counts
	// when ObserveQueries is set.
	selMass := mass
	if cfg.ObserveQueries > 0 {
		obsRNG := randx.New(randx.DeriveSeed(cfg.Seed, "observations"))
		selMass = make(map[id.ID]map[id.ID]float64, cfg.N)
		for _, x := range nodeIDs {
			counts := make(map[id.ID]float64)
			for q := 0; q < cfg.ObserveQueries; q++ {
				o := owners[w.SampleItem(obsRNG, x)]
				if o != x {
					counts[o]++
				}
			}
			selMass[x] = counts
		}
	}

	selRNG := randx.New(randx.DeriveSeed(cfg.Seed, "oblivious"))
	result := StableResult{Config: cfg, K: cfg.K, PerScheme: make(map[Scheme]SchemeStats)}

	for _, scheme := range []Scheme{CoreOnly, Oblivious, Optimal} {
		for _, x := range nodeIDs {
			aux, err := selectForNode(ov, x, scheme, selMass[x], cfg.K, selRNG)
			if err != nil {
				return StableResult{}, fmt.Errorf("experiment: select %v for node %d: %w", scheme, x, err)
			}
			if err := ov.SetAux(x, aux); err != nil {
				return StableResult{}, err
			}
		}
		st, err := measureExact(ov, nodeIDs, mass)
		if err != nil {
			return StableResult{}, err
		}
		result.PerScheme[scheme] = st
	}

	result.Reduction = stats.PercentReduction(result.PerScheme[Oblivious].AvgHops, result.PerScheme[Optimal].AvgHops)
	result.ReductionVsCore = stats.PercentReduction(result.PerScheme[CoreOnly].AvgHops, result.PerScheme[Optimal].AvgHops)
	return result, nil
}

// overlayOpts collects the substrate knobs buildOverlay honors.
type overlayOpts struct {
	locality  bool
	succList  int
	digitBits uint
	seed      int64
}

// buildOverlay constructs a stabilized overlay of the given nodes.
func buildOverlay(p Protocol, space id.Space, nodeIDs []id.ID, opts overlayOpts) (overlay, error) {
	switch p {
	case Chord:
		nw := chord.New(chord.Config{Space: space, SuccessorListLen: opts.succList})
		for _, x := range nodeIDs {
			if _, err := nw.AddNode(x); err != nil {
				return nil, err
			}
		}
		nw.StabilizeAll()
		return chordOverlay{nw}, nil
	case Pastry:
		nw := pastry.New(pastry.Config{Space: space, LocalityAware: opts.locality, DigitBits: opts.digitBits})
		coordRNG := randx.New(randx.DeriveSeed(opts.seed, "coords"))
		for _, x := range nodeIDs {
			c := pastry.Coord{X: coordRNG.Float64(), Y: coordRNG.Float64()}
			if _, err := nw.AddNode(x, c); err != nil {
				return nil, err
			}
		}
		nw.StabilizeAll()
		return pastryOverlay{nw}, nil
	default:
		return nil, fmt.Errorf("experiment: unknown protocol %v", p)
	}
}

// selectForNode computes node x's auxiliary set under the scheme, given
// its exact destination mass.
func selectForNode(ov overlay, x id.ID, scheme Scheme, destMass map[id.ID]float64, k int, selRNG *rand.Rand) ([]id.ID, error) {
	switch scheme {
	case CoreOnly:
		return nil, nil
	case Oblivious:
		// The frequency-oblivious baseline draws from the whole live
		// membership (Section VI-A: "selects r auxiliary neighbors at
		// random in the range (2^i, 2^{i+1}) for all i"), not from the
		// node's query history — it uses no query information at all.
		return ov.SelectOblivious(x, ov.AliveIDs(), k, selRNG), nil
	case Optimal:
		peers := make([]core.Peer, 0, len(destMass))
		for d, m := range destMass {
			peers = append(peers, core.Peer{ID: d, Freq: m})
		}
		sort.Slice(peers, func(i, j int) bool { return peers[i].ID < peers[j].ID })
		return ov.SelectOptimal(x, peers, clampK(k, len(peers)))
	default:
		return nil, fmt.Errorf("experiment: unknown scheme %v", scheme)
	}
}

// measureExact routes every positive-mass (source, destination) pair once
// and returns the probability-weighted average hop count.
func measureExact(ov overlay, nodeIDs []id.ID, mass map[id.ID]map[id.ID]float64) (SchemeStats, error) {
	var wm stats.WeightedMean
	hist := &stats.Histogram{}
	maxHops := 0
	for _, s := range nodeIDs {
		dests := make([]id.ID, 0, len(mass[s]))
		for d := range mass[s] {
			dests = append(dests, d)
		}
		sort.Slice(dests, func(i, j int) bool { return dests[i] < dests[j] })
		for _, t := range dests {
			hops, timeouts, dest, ok, err := ov.RouteTo(s, t)
			if err != nil {
				return SchemeStats{}, err
			}
			if !ok || dest != t {
				return SchemeStats{}, fmt.Errorf("experiment: stable lookup failed from %d to %d", s, t)
			}
			eff := hops + timeouts
			wm.Add(float64(eff), mass[s][t])
			hist.Add(eff)
			if eff > maxHops {
				maxHops = eff
			}
		}
	}
	return SchemeStats{AvgHops: wm.Mean(), MaxHops: maxHops, PairHops: hist}, nil
}
