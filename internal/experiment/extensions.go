package experiment

import (
	"fmt"
	"math"
	"sort"

	"peercache/internal/core"
	"peercache/internal/freq"
	"peercache/internal/id"
	"peercache/internal/randx"
	"peercache/internal/stats"
	"peercache/internal/workload"
)

// This file holds extension experiments beyond the paper's four figures:
// the QoS premium sweep (Sections IV-D / V-C give the algorithms but no
// evaluation), the eq. 6 estimate-quality ablation (how conservative the
// selection-time distance bound is against real routed hops), and the
// Space-Saving capacity ablation (Section III suggests streaming top-n
// tracking; this measures what constrained memory costs in selection
// quality).

// ExtQoS sweeps the fraction of peers carrying a tight delay bound and
// reports the cost premium the bounds impose on the optimal selection,
// plus where the bounds become infeasible.
func ExtQoS(scale Scale) (Table, error) {
	n := scale.fixedN()
	bits := scale.Bits
	if bits == 0 {
		bits = 32
	}
	space := id.NewSpace(bits)
	rng := randx.New(randx.DeriveSeed(scale.Seed, "ext-qos"))

	raw := randx.UniqueIDs(rng, n+16, space.Size())
	self := id.ID(raw[n+15])
	weights := randx.ZipfWeights(n, 1.2)
	perm := rng.Perm(n)
	peers := make([]core.Peer, n)
	for i := range peers {
		peers[i] = core.Peer{ID: id.ID(raw[i]), Freq: weights[perm[i]] * 1e6}
	}
	var coreSet []id.ID
	succ := peers[0].ID
	best := space.Gap(self, succ)
	for _, p := range peers[1:] {
		if g := space.Gap(self, p.ID); g < best {
			succ, best = p.ID, g
		}
	}
	coreSet = append(coreSet, succ)
	for i := 0; i < 10; i++ {
		coreSet = append(coreSet, id.ID(raw[n+i]))
	}
	k := 2 * Log2(n)

	free, err := core.SelectChordDP(space, self, coreSet, peers, k)
	if err != nil {
		return Table{}, err
	}

	t := Table{
		Title:   fmt.Sprintf("Extension — QoS premium: Chord, n = %d, k = %d, bound d <= 3", n, k),
		Columns: []string{"bounded peers", "cost premium", "premium %", "feasible"},
	}
	for _, frac := range []float64{0.01, 0.05, 0.10, 0.20, 0.40} {
		bounded := int(frac * float64(n))
		if bounded < 1 {
			bounded = 1
		}
		bounds := make(map[id.ID]uint, bounded)
		// Bound the *least* popular peers — the adversarial case, since
		// the unconstrained optimum ignores them.
		byFreq := append([]core.Peer(nil), peers...)
		sort.Slice(byFreq, func(i, j int) bool { return byFreq[i].Freq < byFreq[j].Freq })
		for i := 0; i < bounded; i++ {
			bounds[byFreq[i].ID] = 3
		}
		res, err := core.SelectChordQoS(space, self, coreSet, peers, k, bounds)
		row := []string{fmt.Sprintf("%d (%.0f%%)", bounded, frac*100)}
		if err != nil {
			row = append(row, "-", "-", "no")
		} else {
			premium := res.Cost - free.Cost
			row = append(row,
				fmt.Sprintf("%.0f", premium),
				fmt.Sprintf("%.2f%%", 100*premium/free.Cost),
				"yes")
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// ExtEstimate measures how conservative the selection-time distance
// estimates are: for random (source, destination) pairs it compares the
// eq. 6 / prefix estimates against the hops the simulators actually take.
func ExtEstimate(scale Scale) (Table, error) {
	n := scale.fixedN()
	bits := scale.Bits
	if bits == 0 {
		bits = 32
	}
	t := Table{
		Title:   fmt.Sprintf("Extension — estimate quality: mean routed hops vs mean estimate (n = %d)", n),
		Columns: []string{"protocol", "mean estimate", "mean routed", "estimate >= routed", "mean slack"},
	}
	for _, proto := range []Protocol{Chord, Pastry} {
		space := id.NewSpace(bits)
		rng := randx.New(randx.DeriveSeed(scale.Seed, "ext-estimate"+proto.String()))
		nodeIDs := make([]id.ID, 0, n)
		for _, raw := range randx.UniqueIDs(rng, n, space.Size()) {
			nodeIDs = append(nodeIDs, id.ID(raw))
		}
		sort.Slice(nodeIDs, func(i, j int) bool { return nodeIDs[i] < nodeIDs[j] })
		ov, err := buildOverlay(proto, space, nodeIDs, overlayOpts{locality: true, seed: scale.Seed})
		if err != nil {
			return Table{}, err
		}
		var est, routed stats.Running
		holds := 0
		trials := 4000
		for i := 0; i < trials; i++ {
			from := nodeIDs[rng.Intn(n)]
			to := nodeIDs[rng.Intn(n)]
			if from == to {
				continue
			}
			var e float64
			if proto == Chord {
				e = float64(space.ChordDist(from, to))
			} else {
				e = float64(space.PastryDist(from, to))
			}
			hops, timeouts, dest, ok, err := ov.RouteTo(from, to)
			if err != nil || !ok || dest != to || timeouts != 0 {
				return Table{}, fmt.Errorf("ext-estimate: clean lookup failed (%v, ok=%v)", err, ok)
			}
			est.Add(e)
			routed.Add(float64(hops))
			if e >= float64(hops) {
				holds++
			}
		}
		t.Rows = append(t.Rows, []string{
			proto.String(),
			fmt.Sprintf("%.3f", est.Mean()),
			fmt.Sprintf("%.3f", routed.Mean()),
			fmt.Sprintf("%.1f%%", 100*float64(holds)/float64(est.N())),
			fmt.Sprintf("%.3f", est.Mean()-routed.Mean()),
		})
	}
	return t, nil
}

// ExtSketch measures the selection-quality cost of constrained-memory
// frequency tracking: nodes observe a sampled query stream through a
// Space-Saving sketch of varying capacity and the resulting optimal
// selection is scored against exact counting.
func ExtSketch(scale Scale) (Table, error) {
	n := scale.fixedN()
	bits := scale.Bits
	if bits == 0 {
		bits = 32
	}
	items := scale.ItemsPerNode
	if items == 0 {
		items = 16
	}
	space := id.NewSpace(bits)
	rng := randx.New(randx.DeriveSeed(scale.Seed, "ext-sketch"))

	raw := randx.UniqueIDs(rng, n, space.Size())
	nodeIDs := make([]id.ID, n)
	for i, r := range raw {
		nodeIDs[i] = id.ID(r)
	}
	sort.Slice(nodeIDs, func(i, j int) bool { return nodeIDs[i] < nodeIDs[j] })
	self := nodeIDs[0]

	w := workload.New(workload.Config{
		Space:    space,
		NumItems: items * n,
		Alpha:    1.2,
		Seed:     randx.DeriveSeed(scale.Seed, "ext-sketch-items"),
	})
	// Ownership: predecessor among the node set.
	owner := func(key id.ID) id.ID {
		i := sort.Search(len(nodeIDs), func(i int) bool { return nodeIDs[i] > key })
		if i == 0 {
			i = len(nodeIDs)
		}
		return nodeIDs[i-1]
	}

	var coreSet []id.ID
	coreSet = append(coreSet, nodeIDs[1]) // successor of self
	for i := 2; i < len(nodeIDs); i *= 2 {
		coreSet = append(coreSet, nodeIDs[i])
	}
	k := Log2(n)

	// One query stream observed through every counter simultaneously.
	exact := freq.NewExact()
	capacities := []int{8, 16, 32, 64, 256}
	sketches := make([]*freq.SpaceSaving, len(capacities))
	for i, c := range capacities {
		sketches[i] = freq.NewSpaceSaving(c)
	}
	const observations = 20000
	for q := 0; q < observations; q++ {
		dest := owner(w.Key(w.SampleItem(rng, self)))
		if dest == self {
			continue
		}
		exact.Observe(dest)
		for _, s := range sketches {
			s.Observe(dest)
		}
	}

	toPeers := func(entries []freq.Entry) []core.Peer {
		peers := make([]core.Peer, 0, len(entries))
		for _, e := range entries {
			peers = append(peers, core.Peer{ID: e.Peer, Freq: float64(e.Count)})
		}
		return peers
	}
	truePeers := toPeers(exact.Snapshot())
	// Score any selection against the *true* frequencies.
	score := func(aux []id.ID) float64 {
		return core.EvalChord(space, self, coreSet, truePeers, aux)
	}
	baselineRes, err := core.SelectChordFast(space, self, coreSet, truePeers, k)
	if err != nil {
		return Table{}, err
	}
	exactScore := score(baselineRes.Aux)

	t := Table{
		Title:   fmt.Sprintf("Extension — Space-Saving capacity vs selection quality (n = %d, k = %d, %d observations)", n, k, observations),
		Columns: []string{"counter", "memory (entries)", "weighted distance", "vs exact"},
	}
	t.Rows = append(t.Rows, []string{"exact", fmt.Sprint(exact.Distinct()), fmt.Sprintf("%.0f", exactScore), "+0.0%"})
	for i, s := range sketches {
		peers := toPeers(s.Snapshot())
		kEff := k
		if kEff > len(peers) {
			kEff = len(peers)
		}
		res, err := core.SelectChordFast(space, self, coreSet, peers, kEff)
		if err != nil {
			return Table{}, err
		}
		sc := score(res.Aux)
		overhead := "+0.0%"
		if exactScore > 0 {
			overhead = fmt.Sprintf("%+.1f%%", 100*(sc-exactScore)/exactScore)
		}
		if math.IsInf(sc, 1) {
			overhead = "inf"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("space-saving-%d", capacities[i]),
			fmt.Sprint(capacities[i]),
			fmt.Sprintf("%.0f", sc),
			overhead,
		})
	}
	return t, nil
}
