package experiment

import (
	"fmt"
	"sort"

	"peercache/internal/chord"
	"peercache/internal/core"
	"peercache/internal/id"
	"peercache/internal/randx"
	"peercache/internal/replication"
	"peercache/internal/stats"
	"peercache/internal/workload"
)

// ExtReplication makes the Section I trade-off quantitative: it gives
// item replication (Beehive-flavored, internal/replication) and
// auxiliary-neighbor caching the *same extra-state budget* — n·k replica
// slots versus n·k pointer slots — and compares lookup hops and the
// per-item-update maintenance traffic on a stable Chord overlay.
//
// Replication wins slightly on hops (replicas can answer mid-route) but
// pays one message per replica on every item update; pointer caching
// pays nothing, which is the paper's argument for update-heavy
// workloads like mobile-IP DNS.
func ExtReplication(scale Scale) (Table, error) {
	n := scale.fixedN()
	bits := scale.Bits
	if bits == 0 {
		bits = 32
	}
	itemsPerNode := scale.ItemsPerNode
	if itemsPerNode == 0 {
		itemsPerNode = 16
	}
	k := Log2(n)
	space := id.NewSpace(bits)

	nodeRNG := randx.New(randx.DeriveSeed(scale.Seed, "ext-repl-nodes"))
	nodeIDs := make([]id.ID, 0, n)
	for _, raw := range randx.UniqueIDs(nodeRNG, n, space.Size()) {
		nodeIDs = append(nodeIDs, id.ID(raw))
	}
	sort.Slice(nodeIDs, func(i, j int) bool { return nodeIDs[i] < nodeIDs[j] })

	nw := chord.New(chord.Config{Space: space})
	for _, x := range nodeIDs {
		if _, err := nw.AddNode(x); err != nil {
			return Table{}, err
		}
	}
	nw.StabilizeAll()

	w := workload.New(workload.Config{
		Space:    space,
		NumItems: itemsPerNode * n,
		Alpha:    1.2,
		Seed:     randx.DeriveSeed(scale.Seed, "ext-repl-items"),
	})
	owners := make([]id.ID, w.NumItems())
	pop := make([]float64, w.NumItems())
	for i := range owners {
		o, _ := nw.Owner(w.Key(i))
		owners[i] = o
		pop[i] = w.Prob(nodeIDs[0], i) // single global ranking
	}

	// One sampled lookup stream evaluated under every scheme.
	qryRNG := randx.New(randx.DeriveSeed(scale.Seed, "ext-repl-queries"))
	type lookup struct {
		src  id.ID
		item int
	}
	const samples = 40000
	lookups := make([]lookup, samples)
	for i := range lookups {
		src := nodeIDs[qryRNG.Intn(n)]
		lookups[i] = lookup{src: src, item: w.SampleItem(qryRNG, src)}
	}

	// Scheme 1: plain Chord.
	var plain stats.Running
	for _, l := range lookups {
		res, err := nw.Route(l.src, w.Key(l.item))
		if err != nil || !res.OK {
			return Table{}, fmt.Errorf("ext-replication: plain lookup failed")
		}
		plain.Add(float64(res.Hops))
	}

	// Scheme 2: replication with budget n·k replicas; lookups terminate
	// at the first replica on the plain route.
	placement, err := replication.Assign(space, nodeIDs, w.Items(), pop, n*k)
	if err != nil {
		return Table{}, err
	}
	var repl stats.Running
	for _, l := range lookups {
		res, path, err := nw.RoutePath(l.src, w.Key(l.item))
		if err != nil || !res.OK {
			return Table{}, fmt.Errorf("ext-replication: lookup failed")
		}
		repl.Add(float64(placement.CutPath(l.item, path)))
	}

	// Scheme 3: auxiliary-neighbor caching with the same budget (k
	// pointers per node), selected from exact destination masses.
	for _, x := range nodeIDs {
		mass := w.DestMass(x, func(i int) id.ID { return owners[i] })
		peers := make([]core.Peer, 0, len(mass))
		for d, m := range mass {
			peers = append(peers, core.Peer{ID: d, Freq: m})
		}
		sort.Slice(peers, func(i, j int) bool { return peers[i].ID < peers[j].ID })
		res, err := core.SelectChordFast(space, x, nw.Node(x).Fingers(), peers, clampK(k, len(peers)))
		if err != nil {
			return Table{}, err
		}
		if err := nw.SetAux(x, res.Aux); err != nil {
			return Table{}, err
		}
	}
	var aux stats.Running
	for _, l := range lookups {
		res, err := nw.Route(l.src, w.Key(l.item))
		if err != nil || !res.OK {
			return Table{}, fmt.Errorf("ext-replication: aux lookup failed")
		}
		aux.Add(float64(res.Hops))
	}

	// Maintenance traffic per item update: popularity-weighted (mobile
	// hot hosts move most) and uniform.
	var updHot, updUniform float64
	var popTotal float64
	for i := range owners {
		updHot += pop[i] * float64(placement.UpdateCost(i))
		updUniform += float64(placement.UpdateCost(i))
		popTotal += pop[i]
	}
	updHot /= popTotal
	updUniform /= float64(len(owners))

	statePerNode := float64(placement.TotalReplicas()) / float64(n)
	t := Table{
		Title: fmt.Sprintf("Extension — replication vs pointer caching at equal state budget (Chord, n = %d, budget = n·k = %d)", n, n*k),
		Columns: []string{
			"scheme", "avg hops", "extra state/node", "upd msgs (hot items)", "upd msgs (uniform)",
		},
	}
	t.Rows = append(t.Rows,
		[]string{"plain Chord", fmt.Sprintf("%.3f", plain.Mean()), "0", "0.0", "0.0"},
		[]string{"replication (Beehive-style)", fmt.Sprintf("%.3f", repl.Mean()),
			fmt.Sprintf("%.1f replicas", statePerNode),
			fmt.Sprintf("%.1f", updHot), fmt.Sprintf("%.2f", updUniform)},
		[]string{"pointer caching (paper)", fmt.Sprintf("%.3f", aux.Mean()),
			fmt.Sprintf("%d pointers", k), "0.0", "0.0"},
	)
	return t, nil
}
