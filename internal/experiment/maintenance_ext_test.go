package experiment

import (
	"strconv"
	"strings"
	"testing"
)

func TestExtMaintenance(t *testing.T) {
	tb, err := ExtMaintenance(Scale{FixedN: 64, Bits: 16, ItemsPerNode: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tb.Rows))
	}
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("bad cell %q", s)
		}
		return v
	}
	// Maintenance rate strictly increases with k.
	prev := -1.0
	for _, row := range tb.Rows {
		rate := parse(row[1])
		if rate <= prev {
			t.Errorf("maintenance rate not increasing: %.3f after %.3f", rate, prev)
		}
		prev = rate
	}
	// The k=0 row carries no reduction; the k>0 rows do.
	if !strings.Contains(tb.Rows[0][3], "no aux") {
		t.Errorf("k=0 reduction cell = %q", tb.Rows[0][3])
	}
	for _, row := range tb.Rows[1:] {
		v := parse(strings.TrimSuffix(row[3], "%"))
		if v <= 0 {
			t.Errorf("k=%s: non-positive reduction %q", row[0], row[3])
		}
	}
}
