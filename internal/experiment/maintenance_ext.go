package experiment

import (
	"fmt"
	"math/rand"
	"sort"

	"peercache/internal/chordproto"
	"peercache/internal/id"
	"peercache/internal/randx"
	"peercache/internal/sim"
	"peercache/internal/stats"
)

// ExtMaintenance quantifies the cost side of the paper's routing-table
// size trade-off (Section I): auxiliary neighbors must be pinged like
// core entries, so maintenance traffic grows linearly with k while the
// lookup gain saturates. It runs the message-level Chord protocol
// (internal/chordproto) to a steady state, then measures per-node
// maintenance messages per second at several auxiliary budgets, pairing
// each with the stable-mode hop reduction that budget buys.
func ExtMaintenance(scale Scale) (Table, error) {
	n := scale.fixedN()
	if n > 256 {
		n = 256 // the message-level protocol is for metering, not scale
	}
	bits := scale.Bits
	if bits == 0 {
		bits = 32
	}
	space := id.NewSpace(bits)
	logn := Log2(n)

	// Steady-state protocol ring.
	nodeRNG := randx.New(randx.DeriveSeed(scale.Seed, "ext-maint-nodes"))
	raw := randx.UniqueIDs(nodeRNG, n, space.Size())
	sort.Slice(raw, func(i, j int) bool { return raw[i] < raw[j] })

	buildSteady := func() (*chordproto.Network, *sim.Engine, error) {
		eng := sim.New()
		nw := chordproto.New(chordproto.Config{Space: space, Seed: scale.Seed},
			eng, rand.New(rand.NewSource(scale.Seed)))
		if _, err := nw.Bootstrap(id.ID(raw[0])); err != nil {
			return nil, nil, err
		}
		for i, x := range raw[1:] {
			x := x
			eng.At(float64(i)*2, func() {
				_ = nw.Join(id.ID(x), id.ID(raw[0]), nil)
			})
		}
		eng.RunUntil(float64(n)*2 + 600)
		return nw, eng, nil
	}

	t := Table{
		Title:   fmt.Sprintf("Extension — maintenance traffic vs lookup gain (message-level Chord, n = %d)", n),
		Columns: []string{"k", "maint msgs/node/s", "vs k=0", "stable hop reduction"},
	}

	var baseRate float64
	for _, factor := range []int{0, 1, 2, 3} {
		k := factor * logn
		nw, eng, err := buildSteady()
		if err != nil {
			return Table{}, err
		}
		for _, x := range raw {
			nw.SetAuxPingCount(id.ID(x), k)
		}
		before := nw.Stats().Messages
		const window = 500.0
		eng.RunUntil(eng.Now() + window)
		rate := float64(nw.Stats().Messages-before) / window / float64(n)
		if factor == 0 {
			baseRate = rate
		}

		reduction := "0.0% (no aux)"
		if k > 0 {
			res, err := RunStable(StableConfig{
				Protocol:     Chord,
				N:            n,
				Bits:         bits,
				K:            k,
				ItemsPerNode: scale.ItemsPerNode,
				NumRankings:  5,
				Seed:         scale.Seed,
			})
			if err != nil {
				return Table{}, err
			}
			reduction = pct(stats.PercentReduction(res.PerScheme[CoreOnly].AvgHops, res.PerScheme[Optimal].AvgHops))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d·log n = %d", factor, k),
			fmt.Sprintf("%.3f", rate),
			fmt.Sprintf("%+.0f%%", 100*(rate-baseRate)/baseRate),
			reduction,
		})
	}
	return t, nil
}
