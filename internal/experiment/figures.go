package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: one paper figure regenerated as
// rows of numbers.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Render writes the table as aligned text.
func (t Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as CSV: a comment line with the title, the
// header row, then the data rows.
func (t Table) RenderCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Scale tunes how heavy the figure reproductions are. The zero value
// gives the paper's full settings; tests and benches shrink it.
type Scale struct {
	// Sizes overrides the swept n values (Fig. 3/5); nil keeps the
	// paper's.
	Sizes []int
	// FixedN overrides the fixed n of the k sweeps (Fig. 4/6; paper:
	// 1024).
	FixedN int
	// Bits overrides the id length (paper: 32).
	Bits uint
	// ItemsPerNode overrides the corpus density (default 16).
	ItemsPerNode int
	// Warmup and Duration override the churn windows (paper-scale
	// defaults: 900 s and 3600 s).
	Warmup, Duration float64
	// QueryRatePerNode overrides the churn query rate per live node
	// (default 4, reading the paper's "4 queries per second" per node;
	// the network-wide rate is this times the expected live population
	// n/2). Set negative to force the network-wide-4/s reading.
	QueryRatePerNode float64
	// HistoryWindow overrides the churn observation window in seconds
	// (default 250 — four recomputation periods; Section III keeps
	// frequencies "within a time window").
	HistoryWindow float64
	// Seed shifts every random stream.
	Seed int64
}

func pct(v float64) string  { return fmt.Sprintf("%.1f%%", v) }
func hops(v float64) string { return fmt.Sprintf("%.3f", v) }
func (s Scale) sizes(def []int) []int {
	if len(s.Sizes) > 0 {
		return s.Sizes
	}
	return def
}
func (s Scale) fixedN() int {
	if s.FixedN > 0 {
		return s.FixedN
	}
	return 1024
}

// churnRates resolves the churn query rate and history window for a
// population of n nodes.
func (s Scale) churnRates(n int) (queryRate, window float64) {
	perNode := s.QueryRatePerNode
	switch {
	case perNode < 0:
		queryRate = 4 // the network-wide reading of Section VI-C
	case perNode == 0:
		queryRate = 4 * float64(n) / 2
	default:
		queryRate = perNode * float64(n) / 2
	}
	window = s.HistoryWindow
	if window == 0 {
		window = 250
	}
	return queryRate, window
}

// Fig3 reproduces Figure 3: Pastry, percentage reduction in average hops
// versus n, with k = log n, for alpha = 1.2 and 0.91, identical item
// popularity ranking at all nodes.
func Fig3(scale Scale) (Table, error) {
	t := Table{
		Title:   "Figure 3 — Pastry: % reduction in avg hops vs n (k = log n)",
		Columns: []string{"n", "k", "reduction a=1.2", "reduction a=0.91", "avg hops obliv (1.2)", "avg hops opt (1.2)"},
	}
	for _, n := range scale.sizes([]int{256, 512, 1024, 2048}) {
		var row []string
		var r12 StableResult
		for i, alpha := range []float64{1.2, 0.91} {
			res, err := RunStable(StableConfig{
				Protocol:     Pastry,
				N:            n,
				Bits:         scale.Bits,
				Alpha:        alpha,
				ItemsPerNode: scale.ItemsPerNode,
				NumRankings:  1,
				Seed:         scale.Seed + int64(n),
			})
			if err != nil {
				return Table{}, fmt.Errorf("fig3 n=%d alpha=%g: %w", n, alpha, err)
			}
			if i == 0 {
				r12 = res
				row = append(row, fmt.Sprint(n), fmt.Sprint(res.K), pct(res.Reduction))
			} else {
				row = append(row, pct(res.Reduction))
			}
		}
		row = append(row, hops(r12.PerScheme[Oblivious].AvgHops), hops(r12.PerScheme[Optimal].AvgHops))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig4 reproduces Figure 4: Pastry, percentage reduction versus k for
// k in {log n, 2 log n, 3 log n} at fixed n.
func Fig4(scale Scale) (Table, error) {
	n := scale.fixedN()
	t := Table{
		Title:   fmt.Sprintf("Figure 4 — Pastry: %% reduction in avg hops vs k (n = %d)", n),
		Columns: []string{"k", "reduction a=1.2", "reduction a=0.91"},
	}
	for _, factor := range []int{1, 2, 3} {
		row := []string{fmt.Sprintf("%d·log n = %d", factor, factor*Log2(n))}
		for _, alpha := range []float64{1.2, 0.91} {
			res, err := RunStable(StableConfig{
				Protocol:     Pastry,
				N:            n,
				Bits:         scale.Bits,
				KFactor:      factor,
				Alpha:        alpha,
				ItemsPerNode: scale.ItemsPerNode,
				NumRankings:  1,
				Seed:         scale.Seed + int64(factor),
			})
			if err != nil {
				return Table{}, fmt.Errorf("fig4 factor=%d alpha=%g: %w", factor, alpha, err)
			}
			row = append(row, pct(res.Reduction))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig5 reproduces Figure 5: Chord, percentage reduction versus n with
// k = log n, in a stable system and under heavy churn, with five
// distinct per-node popularity rankings.
func Fig5(scale Scale) (Table, error) {
	t := Table{
		Title:   "Figure 5 — Chord: % reduction in avg hops vs n (k = log n)",
		Columns: []string{"n", "k", "reduction stable", "reduction churn", "churn queries", "churn fail%"},
	}
	for _, n := range scale.sizes([]int{128, 256, 512, 1024}) {
		stable, err := RunStable(StableConfig{
			Protocol:     Chord,
			N:            n,
			Bits:         scale.Bits,
			ItemsPerNode: scale.ItemsPerNode,
			NumRankings:  5,
			Seed:         scale.Seed + int64(n),
		})
		if err != nil {
			return Table{}, fmt.Errorf("fig5 stable n=%d: %w", n, err)
		}
		rate, window := scale.churnRates(n)
		churn, err := RunChurnComparison(ChurnConfig{
			Protocol:      Chord,
			N:             n,
			Bits:          scale.Bits,
			ItemsPerNode:  scale.ItemsPerNode,
			NumRankings:   5,
			QueryRate:     rate,
			HistoryWindow: window,
			Warmup:        scale.Warmup,
			Duration:      scale.Duration,
			Seed:          scale.Seed + int64(n),
		})
		if err != nil {
			return Table{}, fmt.Errorf("fig5 churn n=%d: %w", n, err)
		}
		failPct := 0.0
		if churn.Optimal.Queries > 0 {
			failPct = 100 * float64(churn.Optimal.Failures) / float64(churn.Optimal.Queries)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(stable.K),
			pct(stable.Reduction), pct(churn.Reduction),
			fmt.Sprint(churn.Optimal.Queries), fmt.Sprintf("%.1f%%", failPct),
		})
	}
	return t, nil
}

// Fig6 reproduces Figure 6: Chord, percentage reduction versus k for
// k in {log n, 2 log n, 3 log n} at fixed n, stable and churn.
func Fig6(scale Scale) (Table, error) {
	n := scale.fixedN()
	t := Table{
		Title:   fmt.Sprintf("Figure 6 — Chord: %% reduction in avg hops vs k (n = %d)", n),
		Columns: []string{"k", "reduction stable", "reduction churn"},
	}
	for _, factor := range []int{1, 2, 3} {
		stable, err := RunStable(StableConfig{
			Protocol:     Chord,
			N:            n,
			Bits:         scale.Bits,
			KFactor:      factor,
			ItemsPerNode: scale.ItemsPerNode,
			NumRankings:  5,
			Seed:         scale.Seed + int64(factor),
		})
		if err != nil {
			return Table{}, fmt.Errorf("fig6 stable factor=%d: %w", factor, err)
		}
		rate, window := scale.churnRates(n)
		churn, err := RunChurnComparison(ChurnConfig{
			Protocol:      Chord,
			N:             n,
			Bits:          scale.Bits,
			KFactor:       factor,
			ItemsPerNode:  scale.ItemsPerNode,
			NumRankings:   5,
			QueryRate:     rate,
			HistoryWindow: window,
			Warmup:        scale.Warmup,
			Duration:      scale.Duration,
			Seed:          scale.Seed + int64(factor),
		})
		if err != nil {
			return Table{}, fmt.Errorf("fig6 churn factor=%d: %w", factor, err)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d·log n = %d", factor, factor*Log2(n)),
			pct(stable.Reduction), pct(churn.Reduction),
		})
	}
	return t, nil
}
