package node

import (
	"fmt"
	"testing"
	"time"

	"peercache/internal/id"
	"peercache/internal/node/chordring"
	"peercache/internal/node/pastryring"
	"peercache/internal/node/ring"
	"peercache/internal/wire"
)

// geometries enumerates the in-tree routing factories; the splice
// edge-case tests below run identically against each, pinning down that
// the auxiliary set is a pure overlay in both: installing, removing, or
// losing an aux entry never perturbs the core routing state.
var geometries = []struct {
	name    string
	factory ring.Factory
}{
	{"chord", chordring.New},
	{"pastry", pastryring.New},
}

// waitRing polls until every node's nearest neighbors match the sorted
// ring — successor and predecessor in Chord terms, the first entry of
// each leaf-set side in Pastry terms; the accessors coincide, which is
// what lets this wait (and the kv plane above it) stay protocol-blind.
func waitRing(t *testing.T, nodes []*Node, deadline time.Duration) {
	t.Helper()
	ring := make([]id.ID, len(nodes))
	for i, n := range nodes {
		ring[i] = n.ID()
	}
	sortIDs(ring)
	pos := make(map[id.ID]int, len(ring))
	for i, x := range ring {
		pos[x] = i
	}
	check := func() error {
		for _, n := range nodes {
			i := pos[n.ID()]
			wantSucc := ring[(i+1)%len(ring)]
			wantPred := ring[(i+len(ring)-1)%len(ring)]
			if got := n.Successor(); got.ID != wantSucc {
				return fmt.Errorf("node %d successor %d, want %d", n.ID(), got.ID, wantSucc)
			}
			if p, ok := n.Predecessor(); !ok || p.ID != wantPred {
				return fmt.Errorf("node %d predecessor %v (%t), want %d", n.ID(), p.ID, ok, wantPred)
			}
		}
		return nil
	}
	var last error
	for end := time.Now().Add(deadline); time.Now().Before(end); {
		if last = check(); last == nil {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("ring did not form: %v", last)
}

func sortIDs(xs []id.ID) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// An auxiliary entry that duplicates a core neighbor must be a harmless
// no-op: lookups stay correct while it is installed, and removing it
// removes only the overlay — the core route it shadowed survives.
func TestAuxSpliceDuplicatesCoreNeighbor(t *testing.T) {
	for _, g := range geometries {
		g := g
		t.Run(g.name, func(t *testing.T) {
			space := id.NewSpace(16)
			nodes := startCluster(t, space, []uint64{1000, 30000, 50000}, func(cfg *Config) {
				cfg.NewRing = g.factory
			})
			waitRing(t, nodes, 20*time.Second)
			a := nodes[0]
			succ := a.Successor() // node 30000: already a core neighbor

			lookupAll := func(label string) {
				for _, m := range nodes[1:] {
					owner, _, err := a.Lookup(m.ID())
					if err != nil || owner.ID != m.ID() {
						t.Fatalf("%s: lookup %d: owner %v, err %v", label, m.ID(), owner, err)
					}
				}
			}
			a.Ring().SetAux([]wire.Contact{succ})
			if got := a.Aux(); len(got) != 1 || got[0].ID != succ.ID {
				t.Fatalf("aux after install: %v", got)
			}
			lookupAll("aux shadowing core")

			a.Ring().RemoveAux(succ.ID)
			if got := a.Aux(); len(got) != 0 {
				t.Fatalf("aux after removal: %v", got)
			}
			if got := a.Successor(); got.ID != succ.ID {
				t.Fatalf("removing the aux overlay evicted core successor: %v", got)
			}
			lookupAll("after aux removal")
		})
	}
}

// A lookup that routes through an auxiliary pointer whose target has
// departed must recover, and the dead entry must leave the routing
// state. Two paths retire it: a probe of the dead address that fails
// outright calls DropPeer, and the stabilize round's aux liveness ping
// evicts it. With α-parallel racing a lookup can win through a live
// alternate before the dead probe even times out — that is the point
// of racing — so retirement is eventual, not coupled to the first
// lookup, and the test polls for it.
func TestAuxSpliceTargetDepartsMidLookup(t *testing.T) {
	for _, g := range geometries {
		g := g
		t.Run(g.name, func(t *testing.T) {
			space := id.NewSpace(16)
			// Near-neighbor lists of one, so neither Chord's successor
			// interval nor Pastry's (otherwise ring-covering, underfull)
			// leaf arc short-circuits the lookup before the aux splice
			// gets considered.
			nodes := startCluster(t, space, []uint64{1000, 30000, 50000}, func(cfg *Config) {
				cfg.NewRing = g.factory
				cfg.SuccessorListLen = 1
			})
			waitRing(t, nodes, 20*time.Second)
			b, src := nodes[1], nodes[2]

			// A position-aliased aux pointer at key 20000 (owned by b in
			// both geometries; from src the key is neither in the
			// successor interval nor the leaf arc) whose address belongs
			// to a departed peer, so the splice is a dead end exactly on
			// the measured path.
			key := id.ID(20000)
			src.Ring().SetAux([]wire.Contact{{ID: key, Addr: "127.0.0.1:1"}})

			deadline := time.Now().Add(20 * time.Second)
			for {
				owner, _, err := src.Lookup(key)
				if err == nil && owner.ID == b.ID() {
					break // recovered through core routing
				}
				if err == nil {
					t.Fatalf("lookup %d resolved to %v, want %d", key, owner, b.ID())
				}
				if time.Now().After(deadline) {
					t.Fatalf("lookup never recovered from departed aux target: %v", err)
				}
				time.Sleep(25 * time.Millisecond)
			}
			for {
				installed := false
				for _, e := range src.Aux() {
					if e.ID == key {
						installed = true
					}
				}
				if !installed {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("dead aux entry %d never retired", key)
				}
				time.Sleep(25 * time.Millisecond)
			}
		})
	}
}

// AuxCount = 0 must disable the overlay cleanly in both geometries: an
// explicit recompute selects nothing, installs nothing, and returns no
// error, while core routing keeps resolving.
func TestAuxSpliceZeroBudgetDisables(t *testing.T) {
	for _, g := range geometries {
		g := g
		t.Run(g.name, func(t *testing.T) {
			space := id.NewSpace(16)
			nodes := startCluster(t, space, []uint64{1000, 30000}, func(cfg *Config) {
				cfg.NewRing = g.factory
				cfg.AuxCount = 0
			})
			waitRing(t, nodes, 20*time.Second)
			a, b := nodes[0], nodes[1]
			for i := 0; i < 10; i++ {
				if owner, _, err := a.Lookup(b.ID()); err != nil || owner.ID != b.ID() {
					t.Fatalf("lookup %d: owner %v, err %v", b.ID(), owner, err)
				}
			}
			for _, n := range nodes {
				installed, err := n.RecomputeAux()
				if err != nil {
					t.Fatalf("node %d recompute with k=0: %v", n.ID(), err)
				}
				if installed != 0 || len(n.Aux()) != 0 {
					t.Fatalf("node %d installed aux with k=0: %d, %v", n.ID(), installed, n.Aux())
				}
			}
			if owner, _, err := a.Lookup(b.ID()); err != nil || owner.ID != b.ID() {
				t.Fatalf("post-recompute lookup: owner %v, err %v", owner, err)
			}
		})
	}
}
