package node

// RTT-estimator conformance: EWMA convergence, shift tracking, decay on
// contact eviction, sample hygiene (self/zero/non-positive rejected),
// and the end-to-end path — two live nodes on a memnet link with a
// known base delay must converge their estimates onto the link's RTT.

import (
	"fmt"
	"math"
	"testing"
	"time"

	"peercache/internal/id"
	"peercache/internal/memnet"
	"peercache/internal/wire"
)

func newRTTNode(t *testing.T) *Node {
	t.Helper()
	nw := memnet.New(1)
	t.Cleanup(nw.CloseAll)
	n, err := Start(Config{
		Space:            id.NewSpace(16),
		ID:               1,
		Addr:             "mem/1",
		Listen:           func(addr string) (PacketConn, error) { return nw.Listen(addr) },
		DisableHealProbe: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

func TestRTTEWMAConvergence(t *testing.T) {
	n := newRTTNode(t)
	peer := wire.Contact{ID: 7, Addr: "mem/7"}

	// First sample initializes the estimate directly.
	n.observeRTT(peer, 10*time.Millisecond)
	if got, ok := n.ContactRTT(7); !ok || got != 10*time.Millisecond {
		t.Fatalf("after first sample: %v, %t; want exactly 10ms", got, ok)
	}
	// A constant stream must hold it there.
	for i := 0; i < 100; i++ {
		n.observeRTT(peer, 10*time.Millisecond)
	}
	if got, _ := n.ContactRTT(7); got != 10*time.Millisecond {
		t.Fatalf("constant samples moved the estimate to %v", got)
	}
	// A level shift must be tracked: after k samples the residual decays
	// by (1−α)^k. 50 samples at α=1/8 leave < 0.1% of the 40ms step.
	for i := 0; i < 50; i++ {
		n.observeRTT(peer, 50*time.Millisecond)
	}
	got, _ := n.ContactRTT(7)
	if math.Abs(float64(got-50*time.Millisecond)) > float64(time.Millisecond) {
		t.Fatalf("after shift to 50ms: estimate %v, want within 1ms", got)
	}
	if m := n.Metrics(); m.RTTSamples != 151 || m.RTTContacts != 1 {
		t.Fatalf("metrics: samples=%d contacts=%d, want 151, 1", m.RTTSamples, m.RTTContacts)
	}
}

// One outlier among steady samples must nudge, not replace, the
// estimate — the point of smoothing.
func TestRTTEWMASmoothsOutliers(t *testing.T) {
	n := newRTTNode(t)
	peer := wire.Contact{ID: 9, Addr: "mem/9"}
	for i := 0; i < 30; i++ {
		n.observeRTT(peer, 5*time.Millisecond)
	}
	n.observeRTT(peer, 500*time.Millisecond) // one GC-pause-shaped freak
	got, _ := n.ContactRTT(9)
	want := time.Duration(float64(5*time.Millisecond) + rttAlpha*float64(495*time.Millisecond))
	if math.Abs(float64(got-want)) > float64(100*time.Microsecond) {
		t.Fatalf("outlier moved estimate to %v, want ~%v (α-damped)", got, want)
	}
}

func TestRTTSampleHygiene(t *testing.T) {
	n := newRTTNode(t)
	n.observeRTT(wire.Contact{}, 5*time.Millisecond)    // zero contact
	n.observeRTT(n.self, 5*time.Millisecond)            // self
	n.observeRTT(wire.Contact{ID: 3, Addr: "mem/3"}, 0) // non-positive
	n.observeRTT(wire.Contact{ID: 3, Addr: "mem/3"}, -4*time.Millisecond)
	if got := n.ContactRTTs(); len(got) != 0 {
		t.Fatalf("bad samples were tracked: %+v", got)
	}
	if _, ok := n.ContactRTT(n.self.ID); ok {
		t.Fatal("self acquired an RTT estimate")
	}
}

// Evicting a contact must evict its estimate with it (no orphans), and
// only when the failing address is still current.
func TestRTTDecaysWithContactEviction(t *testing.T) {
	n := newRTTNode(t)
	peer := wire.Contact{ID: 11, Addr: "mem/11"}
	n.observeRTT(peer, 8*time.Millisecond)
	if _, ok := n.ContactRTT(11); !ok {
		t.Fatal("estimate missing before eviction")
	}

	// A stale failure (address already replaced) must not evict.
	n.noteContact(wire.Contact{ID: 11, Addr: "mem/11-new"})
	n.forgetAddr(11, "mem/11")
	if _, ok := n.ContactRTT(11); !ok {
		t.Fatal("stale-address failure evicted a live estimate")
	}

	// A current failure must evict estimate and address together.
	n.forgetAddr(11, "mem/11-new")
	if _, ok := n.ContactRTT(11); ok {
		t.Fatal("estimate survived contact eviction")
	}
	if _, ok := n.addrOf(11); ok {
		t.Fatal("address survived forgetAddr")
	}
	if m := n.Metrics(); m.RTTContacts != 0 {
		t.Fatalf("RTTContacts = %d after eviction, want 0", m.RTTContacts)
	}
}

// ContactRTTs must come out sorted and carry the backing address.
func TestContactRTTsSnapshot(t *testing.T) {
	n := newRTTNode(t)
	for _, x := range []id.ID{40, 10, 30} {
		n.observeRTT(wire.Contact{ID: x, Addr: fmt.Sprintf("mem/%d", x)}, time.Duration(x)*time.Millisecond)
	}
	got := n.ContactRTTs()
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	for i, want := range []id.ID{10, 30, 40} {
		if got[i].ID != want {
			t.Fatalf("snapshot order %v, want ids ascending", got)
		}
		if got[i].Addr != fmt.Sprintf("mem/%d", want) {
			t.Fatalf("entry %d lost its address: %+v", i, got[i])
		}
		if got[i].Samples != 1 || got[i].SRTT != time.Duration(want)*time.Millisecond {
			t.Fatalf("entry %d corrupted: %+v", i, got[i])
		}
	}
}

// End to end: two live nodes on a memnet link with a 2ms one-way base
// delay. Every correlated RPC (join, stabilization, explicit lookups)
// is a sample, and both sides' estimates must land at or above the
// link's 4ms RTT floor — and within a sane multiple of it.
func TestRTTMeasuredOnLiveLink(t *testing.T) {
	nw := memnet.New(3)
	defer nw.CloseAll()
	const oneWay = 2 * time.Millisecond
	nw.SetTopology(memnet.DelayFunc(func(from, to string) time.Duration { return oneWay }))

	space := id.NewSpace(16)
	mk := func(x uint64, bootstrap string) *Node {
		n, err := Start(Config{
			Space:            space,
			ID:               id.ID(x),
			Addr:             fmt.Sprintf("mem/%d", x),
			StabilizeEvery:   20 * time.Millisecond,
			FixFingersEvery:  10 * time.Millisecond,
			RPCTimeout:       200 * time.Millisecond,
			RPCRetries:       1,
			Listen:           func(addr string) (PacketConn, error) { return nw.Listen(addr) },
			DisableHealProbe: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		if bootstrap != "" {
			if err := n.Join(bootstrap); err != nil {
				t.Fatal(err)
			}
		}
		return n
	}
	a := mk(100, "")
	b := mk(200, "mem/100")

	deadline := time.Now().Add(5 * time.Second)
	for {
		ra, oka := a.ContactRTT(200)
		rb, okb := b.ContactRTT(100)
		if oka && okb {
			for _, r := range []time.Duration{ra, rb} {
				if r < 2*oneWay {
					t.Fatalf("estimate %v below the link RTT floor %v", r, 2*oneWay)
				}
				if r > 20*oneWay {
					t.Fatalf("estimate %v absurdly above the link RTT %v", r, 2*oneWay)
				}
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("estimates never appeared: a→b %v %t, b→a %v %t", ra, oka, rb, okb)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
