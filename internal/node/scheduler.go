package node

import (
	"container/heap"
	"runtime"
	"sync"
	"time"
)

// Scheduler abstracts how a node's periodic maintenance work (the
// stabilize / table-repair / aux-recompute / replication rounds) gets
// driven. The default — one goroutine and one time.Ticker per job —
// is exactly right for a daemon running a handful of nodes per
// process: isolation is perfect and the runtime's timer wheel does the
// batching. It is exactly wrong for a thousand-node in-process
// cluster, where four tickers per node mean thousands of goroutines
// doing nothing but sleeping; harnesses (internal/cluster,
// internal/soak, internal/livebench) inject one shared BatchScheduler
// instead and collapse all of it into a single timer heap and a small
// worker pool.
//
// Implementations must be safe for concurrent use: nodes register jobs
// from Start and stop them from Close on arbitrary goroutines.
type Scheduler interface {
	// Every schedules fn to run once per period until the returned
	// handle is stopped. The first run happens no earlier than half a
	// period from now (implementations may stagger it within one
	// period to spread load). Runs of one job never overlap: a slow fn
	// delays its own next run, never stacks it.
	Every(period time.Duration, fn func()) JobHandle
}

// JobHandle controls one scheduled job. The two-phase stop mirrors the
// node's shutdown ordering: Cancel prevents future runs while the
// transport is being torn down (so an in-flight round's RPCs fail fast
// instead of waiting out their timeouts), and Wait then collects the
// in-flight run, guaranteeing no maintenance code is still executing
// when Close returns.
type JobHandle interface {
	// Cancel prevents any future run from starting. It does not wait
	// for an in-flight run. Idempotent.
	Cancel()
	// Wait blocks until no run of the job is executing. Call after
	// Cancel.
	Wait()
}

// goTickers is the default Scheduler: one goroutine per job, exactly
// the pre-Scheduler behavior of the node runtime.
type goTickers struct{}

type tickerJob struct {
	done chan struct{}
	once sync.Once
	wg   sync.WaitGroup
}

func (goTickers) Every(period time.Duration, fn func()) JobHandle {
	j := &tickerJob{done: make(chan struct{})}
	j.wg.Add(1)
	go func() {
		defer j.wg.Done()
		t := time.NewTicker(period)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				fn()
			case <-j.done:
				return
			}
		}
	}()
	return j
}

func (j *tickerJob) Cancel() { j.once.Do(func() { close(j.done) }) }
func (j *tickerJob) Wait()   { j.wg.Wait() }

// BatchScheduler drives any number of periodic jobs with one
// dispatcher goroutine (a timer heap over next-due times) and a fixed
// worker pool. It exists for in-process cluster harnesses: a 1024-node
// cluster registers ~4k maintenance jobs, which as individual tickers
// would be ~4k goroutines permanently parked in runtime timer code;
// batched, they are one heap and (by default) a few dozen workers.
//
// Jobs are re-armed when their run finishes (next due = completion
// time + period), so one job never runs concurrently with itself and a
// stalled fn — a maintenance round waiting out RPC timeouts behind a
// partition — delays only itself. Distinct jobs sharing the pool can
// delay each other when every worker is blocked; size workers for the
// worst expected number of simultaneously-stalled rounds, not for
// throughput (healthy runs are short; blocking on lost RPCs is what
// occupies a worker).
//
// Initial due times are staggered deterministically across one period
// (by registration order) so a thousand nodes registering the same
// stabilize period do not all fire on the same tick forever.
type BatchScheduler struct {
	// base anchors the monotonic clock: every due time is a duration
	// since base, so heap comparisons are two int64s instead of
	// time.Time unpacking — measurable at ~4k jobs re-arming forever.
	base time.Time

	mu     sync.Mutex
	cond   *sync.Cond
	heap   batchHeap
	seq    uint64
	closed bool

	wake  chan struct{}
	runCh chan *batchJob

	dispWG sync.WaitGroup
	workWG sync.WaitGroup
}

// NewBatchScheduler returns a running scheduler with the given worker
// count; workers <= 0 selects a default sized for maintenance rounds
// that may block on RPC timeouts (4×GOMAXPROCS, min 16). Close it only
// after the nodes using it have closed.
func NewBatchScheduler(workers int) *BatchScheduler {
	if workers <= 0 {
		workers = 4 * runtime.GOMAXPROCS(0)
		if workers < 16 {
			workers = 16
		}
	}
	s := &BatchScheduler{
		base:  time.Now(),
		wake:  make(chan struct{}, 1),
		runCh: make(chan *batchJob),
	}
	s.cond = sync.NewCond(&s.mu)
	s.dispWG.Add(1)
	go s.dispatch()
	for i := 0; i < workers; i++ {
		s.workWG.Add(1)
		go s.work()
	}
	return s
}

type batchJob struct {
	s         *BatchScheduler
	period    time.Duration
	fn        func()
	due       time.Duration // monotonic offset from s.base
	seq       uint64
	cancelled bool
	running   bool
}

type batchHeap []*batchJob

func (h batchHeap) Len() int { return len(h) }
func (h batchHeap) Less(i, j int) bool {
	if h[i].due != h[j].due {
		return h[i].due < h[j].due
	}
	return h[i].seq < h[j].seq
}
func (h batchHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *batchHeap) Push(x any)   { *h = append(*h, x.(*batchJob)) }
func (h *batchHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}

func pushJob(h *batchHeap, j *batchJob) { heap.Push(h, j) }
func popJob(h *batchHeap) *batchJob     { return heap.Pop(h).(*batchJob) }

// Every registers a job. On a closed scheduler the job never runs and
// its handle is inert.
func (s *BatchScheduler) Every(period time.Duration, fn func()) JobHandle {
	j := &batchJob{s: s, period: period, fn: fn}
	s.mu.Lock()
	if s.closed {
		j.cancelled = true
		s.mu.Unlock()
		return j
	}
	s.seq++
	j.seq = s.seq
	// Deterministic stagger: spread first runs across one period by
	// registration order, so same-period jobs from a large cluster
	// don't all come due at the same instant every cycle.
	j.due = time.Since(s.base) + period/2 + time.Duration(j.seq%64)*period/64
	pushJob(&s.heap, j)
	s.mu.Unlock()
	s.kick()
	return j
}

// kick nudges the dispatcher out of whatever it is blocked on.
func (s *BatchScheduler) kick() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// dispatch pops due jobs off the heap and hands them to workers. Every
// blocking point selects on s.wake, so Close (which sets closed and
// kicks) is guaranteed to reach the top-of-loop closed check; Close
// must not close runCh until dispatch has returned.
func (s *BatchScheduler) dispatch() {
	defer s.dispWG.Done()
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return
		}
		// Discard cancelled entries eagerly so a churned-down cluster's
		// dead jobs don't linger until their next due time.
		for len(s.heap) > 0 && s.heap[0].cancelled {
			popJob(&s.heap)
		}
		if len(s.heap) == 0 {
			s.mu.Unlock()
			<-s.wake
			continue
		}
		if d := s.heap[0].due - time.Since(s.base); d > 0 {
			s.mu.Unlock()
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(d)
			select {
			case <-timer.C:
			case <-s.wake:
			}
			continue
		}
		j := popJob(&s.heap)
		j.running = true
		s.mu.Unlock()
		select {
		case s.runCh <- j:
		case <-s.wake:
			// Woken while holding a claimed job: unclaim it so Wait
			// callers don't hang on a run that never starts, then loop
			// (the top-of-loop check handles Close; a spurious wake just
			// requeues the job as immediately due again).
			s.mu.Lock()
			j.running = false
			if !j.cancelled && !s.closed {
				pushJob(&s.heap, j)
			}
			s.cond.Broadcast()
			s.mu.Unlock()
		}
	}
}

// work runs jobs handed over by the dispatcher and re-arms them.
func (s *BatchScheduler) work() {
	defer s.workWG.Done()
	for j := range s.runCh {
		s.mu.Lock()
		cancelled := j.cancelled
		s.mu.Unlock()
		if !cancelled {
			j.fn()
		}
		s.mu.Lock()
		j.running = false
		if !j.cancelled && !s.closed {
			j.due = time.Since(s.base) + j.period
			pushJob(&s.heap, j)
		}
		s.cond.Broadcast()
		s.mu.Unlock()
		s.kick()
	}
}

// Close stops the dispatcher and workers, discards pending jobs, and
// waits for in-flight runs to finish. Close the nodes using the
// scheduler first: their shutdown needs a live pool to collect
// in-flight maintenance rounds. Idempotent.
func (s *BatchScheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.heap = nil
	s.mu.Unlock()
	s.kick()
	s.dispWG.Wait() // dispatcher gone: nobody can send on runCh anymore
	close(s.runCh)
	s.workWG.Wait()
	s.mu.Lock()
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (j *batchJob) Cancel() {
	s := j.s
	s.mu.Lock()
	j.cancelled = true
	s.mu.Unlock()
	s.kick()
}

func (j *batchJob) Wait() {
	s := j.s
	s.mu.Lock()
	for j.running {
		s.cond.Wait()
	}
	s.mu.Unlock()
}
