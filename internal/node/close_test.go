package node

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"peercache/internal/id"
	"peercache/internal/memnet"
	"peercache/internal/wire"
)

// memConfig is fastConfig over an in-process memnet network instead of
// a UDP socket.
func memConfig(nw *memnet.Network, space id.Space, x id.ID) Config {
	cfg := fastConfig(space, x)
	cfg.Addr = fmt.Sprintf("mem/%d", uint64(x))
	cfg.Listen = func(addr string) (PacketConn, error) { return nw.Listen(addr) }
	return cfg
}

// Close must tear the node down completely — every goroutine it started
// (read loop, tickers, and any RPC they were blocked in) must exit —
// even when called while RPCs are in flight against a peer that will
// never answer. The goroutine-count assertion is the leak detector; the
// documented shutdown ordering in Node.Close is what makes it pass.
func TestCloseNoGoroutineLeaksWithInflightRPCs(t *testing.T) {
	before := runtime.NumGoroutine()

	space := id.NewSpace(16)
	nw := memnet.New(1)
	const numNodes = 8
	nodes := make([]*Node, numNodes)
	for i := range nodes {
		cfg := memConfig(nw, space, id.ID(1000*(i+1)))
		cfg.RPCTimeout = 10 * time.Second // in-flight calls must be cut short by Close, not by expiry
		n, err := Start(cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
	}

	// Park several RPCs per node against a blackhole address (memnet
	// silently drops unroutable datagrams, so the calls sit blocked in
	// their response wait).
	var wg sync.WaitGroup
	errs := make(chan error, numNodes*4)
	for _, n := range nodes {
		for j := 0; j < 4; j++ {
			wg.Add(1)
			go func(n *Node) {
				defer wg.Done()
				_, err := n.call("mem/blackhole", &wire.Message{Type: wire.TPing})
				errs <- err
			}(n)
		}
	}
	time.Sleep(50 * time.Millisecond) // let the calls reach their blocked select

	start := time.Now()
	for _, n := range nodes {
		if err := n.Close(); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("close with in-flight RPCs took %v; calls were not cut short", elapsed)
	}
	close(errs)
	for err := range errs {
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("in-flight call returned %v, want ErrClosed", err)
		}
	}

	// Double close stays a no-op, and post-close RPCs fail immediately.
	for _, n := range nodes {
		if err := n.Close(); err != nil {
			t.Fatalf("second close: %v", err)
		}
		if _, err := n.call("mem/blackhole", &wire.Message{Type: wire.TPing}); !errors.Is(err, ErrClosed) {
			t.Fatalf("post-close call returned %v, want ErrClosed", err)
		}
	}

	// Every node goroutine must be gone. Poll briefly: runtime
	// bookkeeping (timer goroutines, the race runtime) can lag a tick
	// behind the Close returns.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines before %d, after close %d\n%s", before, now, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// A node shutting down while peers keep sending to it must not answer
// after Close: the peer's datagrams land unroutable and its RPCs time
// out, it does not hang or crash.
func TestCloseStopsAnswering(t *testing.T) {
	space := id.NewSpace(16)
	nw := memnet.New(2)
	a, err := Start(memConfig(nw, space, 100))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Start(memConfig(nw, space, 200))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Join(a.Addr()); err != nil {
		t.Fatal(err)
	}

	// b answers while alive...
	if _, err := a.call(b.Addr(), &wire.Message{Type: wire.TPing}); err != nil {
		t.Fatalf("ping live peer: %v", err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	// ...and is deaf after Close: the RPC must exhaust its attempts.
	if _, err := a.call(b.Addr(), &wire.Message{Type: wire.TPing}); !errors.Is(err, ErrTimeout) {
		t.Fatalf("ping closed peer returned %v, want ErrTimeout", err)
	}
}
