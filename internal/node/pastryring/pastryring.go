// Package pastryring is the Pastry geometry of the live node runtime:
// a leaf set (the LeafHalf numerically nearest nodes on each side) plus
// a binary prefix routing table (one row per common-prefix length),
// behind the protocol-agnostic ring.Routing contract. Routing follows
// the standard Pastry rules — leaf-arc delivery, deepest prefix
// extension, equal-prefix numeric progress — with the paper's auxiliary
// neighbors spliced into the prefix rules, and ownership is numeric
// closeness with ties toward the predecessor side, the same convention
// internal/pastry's oracle and internal/pastryproto use.
//
// Wire footprint: the geometry owns TRowExchange/TRowExchangeResp (a
// peer's populated prefix-table rows; the join walk collects one per
// hop and stabilize gossips one per round) and TLeafProbe/TLeafProbeResp
// (a peer's leaf set; stabilize probes every leaf with it, and a joiner
// announces itself by firing one-way probes at everyone it learned of).
// Lookups ride the runtime's protocol-neutral TFindSucc.
//
// The paired aux maintainer wraps core.PastryMaintainer, the paper's
// O(nkb) greedy selector for the prefix distance metric, rebuilt from
// the rotating frequency window on each selection.
package pastryring

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"peercache/internal/core"
	"peercache/internal/freq"
	"peercache/internal/id"
	"peercache/internal/node/ring"
	"peercache/internal/wire"
)

// Ring is the Pastry routing state plus the maintenance protocol over
// it. Methods take the lock briefly and perform I/O only through the
// Host, so the runtime may call them from the read loop (NextHop, Owns,
// HandleRequest) and its tickers concurrently.
type Ring struct {
	h        ring.Host
	space    id.Space
	self     wire.Contact
	maxHops  int
	leafHalf int

	mu sync.RWMutex
	// leafCW/leafCCW are the clockwise and counter-clockwise leaf-set
	// sides, each sorted nearest-first, at most leafHalf entries.
	leafCW, leafCCW []wire.Contact
	// rows[l] holds a node whose id shares exactly l leading bits with
	// self (binary digits: one slot per row, as in internal/pastryproto).
	rows   []wire.Contact
	hasRow []bool

	aux []wire.Contact // auxiliary neighbors, the paper's A_s

	nextRow uint       // round-robin cursor for RepairTable
	rng     *rand.Rand // stabilize's gossip-partner pick; guarded by mu
}

// New builds the Pastry geometry and its greedy selection maintainer.
// Pass it as node.Config.NewRing to run a Pastry node.
func New(h ring.Host, o ring.Options) (ring.Routing, ring.AuxMaintainer, error) {
	space, self := h.Space(), h.Self()
	r := &Ring{
		h:        h,
		space:    space,
		self:     self,
		maxHops:  o.MaxLookupHops,
		leafHalf: o.NeighborListLen,
		rows:     make([]wire.Contact, space.Bits()),
		hasRow:   make([]bool, space.Bits()),
		rng:      rand.New(rand.NewSource(int64(self.ID) + 1)),
	}
	a := &auxPolicy{
		space:  space,
		self:   self.ID,
		k:      o.AuxCount,
		window: freq.NewWindowed(o.WindowBuckets),
	}
	return r, a, nil
}

// Protocol implements ring.Routing.
func (r *Ring) Protocol() string { return "pastry" }

// Join enters the overlay by walking the runtime's iterative TFindSucc
// toward the node's own id — exactly pastryproto's JOIN route — while
// collecting each path node's prefix-table rows with a TRowExchange and
// the final (numerically closest) node's leaf set with a TLeafProbe.
// The joiner then announces itself with one-way leaf probes to everyone
// it learned of, so their tables fold it in before the first stabilize
// round.
func (r *Ring) Join(bootstrap string) error {
	cur := wire.Contact{Addr: bootstrap}
	for hops := 0; hops <= r.maxHops; hops++ {
		// Route first, collect after: answering a TRowExchange teaches
		// the callee this node's contact, and a path node that already
		// knows the joiner would resolve the joiner's id to the joiner
		// itself — indistinguishable from a genuine duplicate id.
		resp, err := r.h.Call(cur.Addr, &wire.Message{Type: wire.TFindSucc, Target: r.self.ID})
		if err != nil {
			return fmt.Errorf("pastryring: join via %s: %w", bootstrap, err)
		}
		r.h.Note(resp.From)
		if resp.Done {
			if resp.Found.ID == r.self.ID {
				if resp.Found.Addr != "" && resp.Found.Addr != r.self.Addr {
					return fmt.Errorf("pastryring: join: id %d already taken by %s", r.self.ID, resp.Found.Addr)
				}
				// The answer is this node's own contact: despite the
				// route-first ordering, the overlay learned the joiner
				// mid-walk (every request envelope carries From, and
				// gossip spreads it) and now routes its id back to it.
				// That is a join already half-done, not a collision —
				// seed from the answering node, which sits in the
				// joiner's numeric vicinity by virtue of having
				// resolved its id.
				if !resp.From.IsZero() && resp.From.ID != r.self.ID {
					r.learn(resp.From)
					r.collect(resp.From.Addr)
				}
				r.announce()
				return nil
			}
			// The numerically closest node's leaf set seeds ours, and
			// its rows (plus the final path node's, when distinct) seed
			// the prefix table.
			r.learn(resp.Found)
			r.collect(resp.Found.Addr)
			if !resp.From.IsZero() && resp.From.ID != resp.Found.ID {
				r.learn(resp.From)
				r.collect(resp.From.Addr)
			}
			r.announce()
			return nil
		}
		// The path node contributes its rows (and its own contact).
		r.collect(cur.Addr)
		if resp.Next.IsZero() || resp.Next.Addr == cur.Addr {
			return fmt.Errorf("pastryring: join via %s: no progress at %s", bootstrap, cur.Addr)
		}
		r.h.Note(resp.Next)
		cur = resp.Next
	}
	return fmt.Errorf("pastryring: join via %s: exceeded %d hops", bootstrap, r.maxHops)
}

// collect folds one peer's rows and leaves into the joiner's state.
func (r *Ring) collect(addr string) {
	if rx, err := r.h.Call(addr, &wire.Message{Type: wire.TRowExchange}); err == nil {
		r.learn(rx.From)
		for _, row := range rx.Rows {
			r.learn(row.Entry)
		}
	}
	if lp, err := r.h.Call(addr, &wire.Message{Type: wire.TLeafProbe}); err == nil {
		r.learn(lp.From)
		for _, c := range lp.Leaves {
			r.learn(c)
		}
	}
}

// announce fires a one-way TLeafProbe at every contact in the routing
// state; receivers learn the joiner from the request's From and the
// joiner's transport drops their replies as uncorrelated.
func (r *Ring) announce() {
	for _, c := range r.peerList() {
		r.h.Send(c.Addr, &wire.Message{Type: wire.TLeafProbe, From: r.self})
	}
}

// NextHop answers one iterative lookup step for target with the
// standard Pastry decision. Rule 1 (leaf-arc delivery) resolves the
// lookup outright: within the arc the leaves are authoritative, so the
// numerically closest known node — possibly self — is the answer. Rules
// 2 and 3 redirect the caller toward a longer prefix or a numerically
// closer equal-prefix node; the auxiliary set participates in both, so
// a position-aliased aux pointer at a hot key wins rule 2 with a full
// prefix match and lands the lookup on the owner in one hop.
func (r *Ring) NextHop(target id.ID) (wire.Contact, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if target == r.self.ID {
		return r.self, true
	}
	// Rule 1: leaf-set delivery. The leaf arc spans from the farthest
	// counter-clockwise leaf to the farthest clockwise leaf — or the
	// whole ring while either side is underfull, the standard Pastry
	// reading of a leaf set smaller than its bound: the node has seen
	// fewer than leafHalf peers per side, so the leaves are everyone it
	// knows nearby and numeric closeness decides outright. Only real
	// table entries vote for the answer — aux ids may be key positions
	// aliased to an owner's address, never a final Found.
	if len(r.leafCW) > 0 || len(r.leafCCW) > 0 {
		inArc := len(r.leafCW) < r.leafHalf || len(r.leafCCW) < r.leafHalf
		if !inArc {
			ccw := r.leafCCW[len(r.leafCCW)-1].ID
			cw := r.leafCW[len(r.leafCW)-1].ID
			inArc = r.space.Gap(ccw, target) <= r.space.Gap(ccw, cw)
		}
		if inArc {
			best := r.self
			r.eachEntry(func(c wire.Contact) {
				if closer(r.space, c.ID, best.ID, target) {
					best = c
				}
			})
			return best, true
		}
	}
	// Rule 2: deepest strictly longer prefix, aux included.
	l := r.space.CommonPrefixLen(r.self.ID, target)
	bestL := l
	var best wire.Contact
	found := false
	candidate := func(c wire.Contact) {
		if wl := r.space.CommonPrefixLen(c.ID, target); wl > bestL {
			best, bestL, found = c, wl, true
		}
	}
	r.eachEntry(candidate)
	for _, a := range r.aux {
		candidate(a)
	}
	if found {
		return best, false
	}
	// Rule 3: equal prefix, numerically closer, aux included.
	best = r.self
	progress := func(c wire.Contact) {
		if r.space.CommonPrefixLen(c.ID, target) != l {
			return
		}
		if closer(r.space, c.ID, best.ID, target) {
			best, found = c, true
		}
	}
	r.eachEntry(progress)
	for _, a := range r.aux {
		progress(a)
	}
	if !found {
		// Nothing in the table improves on self: claim the key.
		return r.self, true
	}
	return best, false
}

// LookupRequest implements ring.Routing: Pastry lookups ride the
// protocol-neutral TFindSucc.
func (r *Ring) LookupRequest(target id.ID) *wire.Message {
	return &wire.Message{Type: wire.TFindSucc, Target: target}
}

// ParseLookupResponse implements ring.Routing: a find-succ response is
// either the final answer or a single redirect candidate.
func (r *Ring) ParseLookupResponse(target id.ID, resp *wire.Message) (wire.Contact, bool, []wire.Contact) {
	if resp.Done {
		return resp.Found, true, nil
	}
	return wire.Contact{}, false, []wire.Contact{resp.Next}
}

// Distance implements ring.Routing: circular distance to the target —
// rule 3's numeric-progress measure — ranks concurrent probe
// candidates.
func (r *Ring) Distance(target, candidate id.ID) uint64 {
	return circDist(r.space, candidate, target)
}

// Candidates returns next-hop candidates for target, best first: the
// NextHop pick, then the remaining rule-2 contacts by descending prefix
// depth (first-encounter order within a depth, matching NextHop's
// tie-break), then rule-3 equal-prefix contacts by numeric closeness.
// Aux entries participate exactly as in NextHop.
func (r *Ring) Candidates(target id.ID, max int) []wire.Contact {
	hop, done := r.NextHop(target)
	out := []wire.Contact{hop}
	if done || max <= 1 {
		return out
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	l := r.space.CommonPrefixLen(r.self.ID, target)
	seen := map[id.ID]bool{hop.ID: true, r.self.ID: true}
	type cand struct {
		c     wire.Contact
		depth uint
	}
	var deeper []cand
	var equal []wire.Contact
	visit := func(c wire.Contact) {
		if c.IsZero() || seen[c.ID] {
			return
		}
		wl := r.space.CommonPrefixLen(c.ID, target)
		switch {
		case wl > l:
			seen[c.ID] = true
			deeper = append(deeper, cand{c, wl})
		case wl == l && closer(r.space, c.ID, r.self.ID, target):
			seen[c.ID] = true
			equal = append(equal, c)
		}
	}
	r.eachEntry(visit)
	for _, a := range r.aux {
		visit(a)
	}
	sort.SliceStable(deeper, func(i, j int) bool { return deeper[i].depth > deeper[j].depth })
	sort.SliceStable(equal, func(i, j int) bool { return closer(r.space, equal[i].ID, equal[j].ID, target) })
	for _, d := range deeper {
		if len(out) >= max {
			return out
		}
		out = append(out, d.c)
	}
	for _, c := range equal {
		if len(out) >= max {
			return out
		}
		out = append(out, c)
	}
	return out
}

// Owns reports whether this node is numerically closest to key among
// everything in its leaf set and prefix table — Pastry's ownership
// rule, with equidistant ties broken toward the predecessor side.
func (r *Ring) Owns(key id.ID) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.ownsLocked(key)
}

func (r *Ring) ownsLocked(key id.ID) bool {
	owns := true
	r.eachEntry(func(c wire.Contact) {
		if closer(r.space, c.ID, r.self.ID, key) {
			owns = false
		}
	})
	return owns
}

// Responsible implements ring.Routing: the numeric-closeness predicate
// over a snapshot of the current table. Always decidable — a node with
// an empty table is alone and owns everything.
func (r *Ring) Responsible() (func(id.ID) bool, bool) {
	r.mu.RLock()
	others := make([]id.ID, 0, len(r.leafCW)+len(r.leafCCW))
	r.eachEntry(func(c wire.Contact) { others = append(others, c.ID) })
	r.mu.RUnlock()
	self, space := r.self.ID, r.space
	return func(k id.ID) bool {
		for _, w := range others {
			if closer(space, w, self, k) {
				return false
			}
		}
		return true
	}, true
}

// HandleRequest answers the Pastry maintenance RPCs. Read-loop rules:
// local state, Host.Note, one reply — no outbound I/O.
func (r *Ring) HandleRequest(m *wire.Message, resp *wire.Message) bool {
	switch m.Type {
	case wire.TRowExchange:
		resp.Type = wire.TRowExchangeResp
		resp.Rows = r.rowList()
	case wire.TLeafProbe:
		resp.Type = wire.TLeafProbeResp
		resp.Leaves = r.leafList()
	default:
		return false
	}
	r.learn(m.From)
	return true
}

// Stabilize runs one leaf-set maintenance round: probe every leaf with
// TLeafProbe (dead leaves drop out of all state; survivors' leaf sets
// are merged), then trade prefix-table rows with one random peer.
// Gossiped candidates may themselves be stale, so each unknown one is
// pinged before adoption — otherwise dead nodes keep circulating
// between peers that drop and re-learn them (pastryproto's repair rule).
func (r *Ring) Stabilize() {
	for _, lf := range r.leafList() {
		resp, err := r.h.Call(lf.Addr, &wire.Message{Type: wire.TLeafProbe})
		if err != nil {
			r.DropPeer(lf.ID)
			continue
		}
		r.learn(resp.From)
		for _, c := range resp.Leaves {
			r.adopt(c)
		}
	}
	if p, ok := r.randomPeer(); ok {
		resp, err := r.h.Call(p.Addr, &wire.Message{Type: wire.TRowExchange})
		if err != nil {
			r.DropPeer(p.ID)
			return
		}
		r.learn(resp.From)
		for _, row := range resp.Rows {
			r.adopt(row.Entry)
		}
	}
}

// RepairTable maintains one prefix-table row per call, round-robin: a
// populated row is pinged (and cleared if dead); an empty one is
// refilled by resolving an id in the row's subtree — self with bit l
// flipped — and adopting the answer when its common prefix length is
// exactly l.
func (r *Ring) RepairTable() {
	r.mu.Lock()
	l := r.nextRow
	r.nextRow = (r.nextRow + 1) % r.space.Bits()
	has := r.hasRow[l]
	cur := r.rows[l]
	r.mu.Unlock()
	if has {
		if _, err := r.h.Call(cur.Addr, &wire.Message{Type: wire.TPing}); err != nil {
			r.DropPeer(cur.ID)
		}
		return
	}
	target := r.space.SetBit(r.self.ID, l, 1-r.space.Bit(r.self.ID, l))
	c, _, err := r.h.Resolve(target)
	if err != nil || c.ID == r.self.ID || c.Addr == "" {
		return
	}
	if r.space.CommonPrefixLen(r.self.ID, c.ID) == l {
		r.learn(c)
	}
}

// Heal folds a live contact rediscovered by the runtime's heal probe
// back into the table. Numeric-closeness insertion is unconditional in
// Pastry — learn places the contact wherever it improves the state —
// so partition repair needs no special casing beyond this.
func (r *Ring) Heal(live wire.Contact) {
	if live.IsZero() || live.ID == r.self.ID || live.Addr == "" {
		return
	}
	r.learn(live)
}

// DropPeer retires an unreachable peer from the leaf set, the prefix
// table, and the auxiliary set.
func (r *Ring) DropPeer(x id.ID) {
	r.RemoveAux(x)
	r.mu.Lock()
	defer r.mu.Unlock()
	drop := func(side []wire.Contact) []wire.Contact {
		out := side[:0]
		for _, c := range side {
			if c.ID != x {
				out = append(out, c)
			}
		}
		return out
	}
	r.leafCW = drop(r.leafCW)
	r.leafCCW = drop(r.leafCCW)
	for l, ok := range r.hasRow {
		if ok && r.rows[l].ID == x {
			r.hasRow[l] = false
			r.rows[l] = wire.Contact{}
		}
	}
}

// Successors returns the clockwise leaf-set side, nearest first — the
// nodes that replicas of owned items go to.
func (r *Ring) Successors() []wire.Contact {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]wire.Contact(nil), r.leafCW...)
}

// Predecessor returns the nearest counter-clockwise leaf.
func (r *Ring) Predecessor() (wire.Contact, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.leafCCW) == 0 {
		return wire.Contact{}, false
	}
	return r.leafCCW[0], true
}

// TableList returns the populated prefix-table rows, ascending by row.
func (r *Ring) TableList() []wire.Contact {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []wire.Contact
	for l, ok := range r.hasRow {
		if ok {
			out = append(out, r.rows[l])
		}
	}
	return out
}

// TableSize counts the populated prefix-table rows.
func (r *Ring) TableSize() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, ok := range r.hasRow {
		if ok {
			n++
		}
	}
	return n
}

// CoreIDs returns the node's core neighbor set — prefix-table rows and
// both leaf-set sides, self excluded — the N_s of eq. 1, fed to the
// selection maintainer.
func (r *Ring) CoreIDs() []id.ID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	seen := make(map[id.ID]bool)
	var out []id.ID
	r.eachEntry(func(c wire.Contact) {
		if !seen[c.ID] {
			seen[c.ID] = true
			out = append(out, c.ID)
		}
	})
	return out
}

// Leaves returns copies of the two leaf-set sides, nearest first —
// introspection for tests and tooling (the cluster harness's Pastry
// convergence oracle compares them against the ideal ring).
func (r *Ring) Leaves() (cw, ccw []wire.Contact) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]wire.Contact(nil), r.leafCW...), append([]wire.Contact(nil), r.leafCCW...)
}

// Rows returns the populated prefix-table rows keyed by row index.
func (r *Ring) Rows() map[uint]wire.Contact {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[uint]wire.Contact)
	for l, ok := range r.hasRow {
		if ok {
			out[uint(l)] = r.rows[l]
		}
	}
	return out
}

// Aux returns a copy of the auxiliary set.
func (r *Ring) Aux() []wire.Contact {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]wire.Contact(nil), r.aux...)
}

// SetAux installs the auxiliary neighbor set.
func (r *Ring) SetAux(aux []wire.Contact) {
	r.mu.Lock()
	r.aux = append(aux[:0:0], aux...)
	r.mu.Unlock()
}

// RemoveAux drops one auxiliary entry (its liveness ping failed).
func (r *Ring) RemoveAux(dead id.ID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.aux[:0]
	for _, a := range r.aux {
		if a.ID != dead {
			out = append(out, a)
		}
	}
	r.aux = out
}

// eachEntry visits every real table entry — both leaf sides, then the
// populated rows — under the caller's lock. Aux entries are excluded:
// their ids may be key positions rather than nodes.
func (r *Ring) eachEntry(fn func(wire.Contact)) {
	for _, c := range r.leafCW {
		fn(c)
	}
	for _, c := range r.leafCCW {
		fn(c)
	}
	for l, ok := range r.hasRow {
		if ok {
			fn(r.rows[l])
		}
	}
}

// learn folds a contact into the routing state: the matching row if it
// is empty (refreshing the address if the same node already holds it),
// and each leaf-set side if it is among the leafHalf nearest. Every
// learned contact is recorded in the runtime's address cache.
func (r *Ring) learn(c wire.Contact) {
	if c.IsZero() || c.ID == r.self.ID || c.Addr == "" {
		return
	}
	r.h.Note(c)
	r.mu.Lock()
	defer r.mu.Unlock()
	l := r.space.CommonPrefixLen(r.self.ID, c.ID)
	if int(l) < len(r.rows) {
		if !r.hasRow[l] {
			r.rows[l] = c
			r.hasRow[l] = true
		} else if r.rows[l].ID == c.ID {
			r.rows[l] = c
		}
	}
	r.leafCW = insertLeaf(r.space, r.leafCW, r.self.ID, c, r.leafHalf, true)
	r.leafCCW = insertLeaf(r.space, r.leafCCW, r.self.ID, c, r.leafHalf, false)
}

// adopt pings an unknown gossiped candidate and learns it if it
// answers; known contacts and obvious junk are skipped without I/O.
func (r *Ring) adopt(c wire.Contact) {
	if c.IsZero() || c.ID == r.self.ID || c.Addr == "" || r.knows(c.ID) {
		return
	}
	if _, err := r.h.Call(c.Addr, &wire.Message{Type: wire.TPing}); err != nil {
		return
	}
	r.learn(c)
}

// knows reports whether x already appears in the leaf set or the rows.
func (r *Ring) knows(x id.ID) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	found := false
	r.eachEntry(func(c wire.Contact) {
		if c.ID == x {
			found = true
		}
	})
	return found
}

// leafList returns the wire-ready leaf set: clockwise side nearest-first
// then counter-clockwise side, deduplicated, capped at MaxLeaves.
func (r *Ring) leafList() []wire.Contact {
	r.mu.RLock()
	defer r.mu.RUnlock()
	seen := make(map[id.ID]bool, len(r.leafCW)+len(r.leafCCW))
	out := make([]wire.Contact, 0, len(r.leafCW)+len(r.leafCCW))
	for _, c := range append(append([]wire.Contact(nil), r.leafCW...), r.leafCCW...) {
		if seen[c.ID] || len(out) == wire.MaxLeaves {
			continue
		}
		seen[c.ID] = true
		out = append(out, c)
	}
	return out
}

// rowList returns the wire-ready populated rows, strictly ascending by
// index as the codec requires, capped at MaxRows.
func (r *Ring) rowList() []wire.Row {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []wire.Row
	for l, ok := range r.hasRow {
		if ok && l < wire.MaxRows && len(out) < wire.MaxRows {
			out = append(out, wire.Row{Index: uint8(l), Entry: r.rows[l]})
		}
	}
	return out
}

// peerList returns every distinct contact in the routing state.
func (r *Ring) peerList() []wire.Contact {
	r.mu.RLock()
	defer r.mu.RUnlock()
	seen := make(map[id.ID]bool)
	var out []wire.Contact
	r.eachEntry(func(c wire.Contact) {
		if !seen[c.ID] {
			seen[c.ID] = true
			out = append(out, c)
		}
	})
	return out
}

// randomPeer picks one uniformly random contact from the routing state.
func (r *Ring) randomPeer() (wire.Contact, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var pick wire.Contact
	i := 0
	r.eachEntry(func(c wire.Contact) {
		if r.rng.Intn(i+1) == 0 {
			pick = c
		}
		i++
	})
	return pick, i > 0
}

// insertLeaf maintains one leaf-set side: sorted nearest-first by
// clockwise (cw) or counter-clockwise gap, capped at half entries. An
// already-present id has its address refreshed in place.
func insertLeaf(space id.Space, side []wire.Contact, self id.ID, c wire.Contact, half int, cw bool) []wire.Contact {
	gap := func(a id.ID) uint64 {
		if cw {
			return space.Gap(self, a)
		}
		return space.Gap(a, self)
	}
	for i, e := range side {
		if e.ID == c.ID {
			side[i] = c
			return side
		}
	}
	g := gap(c.ID)
	i := 0
	for i < len(side) && gap(side[i].ID) < g {
		i++
	}
	if i >= half {
		return side
	}
	side = append(side, wire.Contact{})
	copy(side[i+1:], side[i:])
	side[i] = c
	if len(side) > half {
		side = side[:half]
	}
	return side
}

func circDist(space id.Space, x, key id.ID) uint64 {
	g1, g2 := space.Gap(x, key), space.Gap(key, x)
	if g1 < g2 {
		return g1
	}
	return g2
}

// closer reports whether a is strictly numerically closer to key than
// b, breaking equidistant ties toward the predecessor side — the same
// deterministic ownership convention as internal/pastry's oracle.
func closer(space id.Space, a, b, key id.ID) bool {
	da, db := circDist(space, a, key), circDist(space, b, key)
	if da != db {
		return da < db
	}
	return space.Gap(a, key) < space.Gap(b, key)
}

// auxPolicy adapts core.PastryMaintainer to the ring.AuxMaintainer
// contract. The maintainer's constructor validates core and peer sets
// together, so rather than patching one incrementally the policy keeps
// only the rotating frequency window and the last core set, and
// rebuilds the maintainer from them on each Select — construction is
// O(nb) against the selector's O(nkb), so nothing is lost. The runtime
// serializes calls, so no locking here.
type auxPolicy struct {
	space  id.Space
	self   id.ID
	k      int
	window *freq.Windowed
	core   []id.ID
}

func (a *auxPolicy) Observe(key id.ID) { a.window.Observe(key) }
func (a *auxPolicy) Rotate()           { a.window.Rotate() }

func (a *auxPolicy) SetCore(ids []id.ID) error {
	a.core = append(ids[:0:0], ids...)
	return nil
}

func (a *auxPolicy) Select() ([]id.ID, error) {
	coreSet := make(map[id.ID]bool, len(a.core))
	for _, c := range a.core {
		coreSet[c] = true
	}
	var peers []core.Peer
	for _, e := range a.window.Snapshot() {
		if e.Count == 0 || e.Peer == a.self || coreSet[e.Peer] {
			continue
		}
		peers = append(peers, core.Peer{ID: e.Peer, Freq: float64(e.Count)})
	}
	m, err := core.NewPastryMaintainer(a.space, a.core, peers, a.k)
	if err != nil {
		return nil, err // core.ErrNoNeighbors while there is nothing yet
	}
	return m.Select().Aux, nil
}

// SelectQoS implements ring.QoSSelector via the Section IV-D
// required-subtree DP (core.SelectPastryQoS), with bounds expressed in
// prefix-digit distance (bit digits, matching the maintainer's metric).
func (a *auxPolicy) SelectQoS(cost func(id.ID) (float64, bool), bound func(id.ID) (uint, bool)) ([]id.ID, error) {
	peers, bounds := core.QoSInstance(a.window.Snapshot(), a.self, a.core, cost, bound)
	res, err := core.SelectPastryQoS(a.space, a.core, peers, a.k, bounds)
	if err != nil {
		return nil, err
	}
	return res.Aux, nil
}
