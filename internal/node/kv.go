package node

import (
	"cmp"
	"errors"
	"fmt"
	"slices"
	"time"

	"peercache/internal/id"
	"peercache/internal/replication"
	"peercache/internal/wire"
)

// Owner-hint cache dimensions. The hints only have to survive between a
// key's lookups and the next aux recomputation; a stale hint costs one
// extra redirect (the old owner's find-successor answer points onward),
// so the cache can be small and short-lived.
const (
	ownerHintCapacity = 1024
	ownerHintTTL      = 2 * time.Minute
)

var (
	// ErrNotFound reports a GET for a key nobody stores.
	ErrNotFound = errors.New("node: key not found")
	// ErrStoreFull reports a PUT refused because the owner's store is at
	// capacity. The store never evicts to make room — see store's doc.
	ErrStoreFull = errors.New("node: store full")
)

// cachedCopy is a locally cached copy of a remote item, the paper's hot
// item kept at the requesting peer. Copies are read-through only: they
// are filled on the GET path, serve later GETs without any network
// traffic, expire on the item-cache TTL, and are invalidated by a local
// PUT. A remote writer's update is invisible until then — the TTL is
// the staleness bound.
type cachedCopy struct {
	value   []byte
	version uint64
}

// PutResult reports where a PUT landed.
type PutResult struct {
	// Owner is the node that accepted the value.
	Owner wire.Contact
	// Version is the item's new version at the owner (1 for a new key).
	Version uint64
	// Hops is the number of lookup RPCs spent resolving the owner; the
	// PUT RPC itself is not counted.
	Hops int
}

// GetResult carries a resolved value.
type GetResult struct {
	Value   []byte
	Version uint64
	// Hops is the number of lookup RPCs spent resolving the owner; the
	// GET RPC itself is not counted. 0 when served locally.
	Hops int
	// Local is true when the store or the item cache answered without
	// touching the network.
	Local bool
}

// Put stores value under key. The key's owner is resolved with the same
// iterative lookup GETs use (so PUT traffic feeds auxiliary selection
// too), then receives the value in a PUT RPC — or stores it directly
// when this node turns out to be the owner. The owner assigns the
// version and replicates the item to its successors on the replication
// ticker.
func (n *Node) Put(key id.ID, value []byte) (PutResult, error) {
	if uint64(key) >= n.cfg.Space.Size() {
		return PutResult{}, fmt.Errorf("node: key %d outside %d-bit space", key, n.cfg.Space.Bits())
	}
	if len(value) > wire.MaxValueLen {
		return PutResult{}, fmt.Errorf(
			"node: put %d: %w: value is %d bytes, limit %d — chunk large objects (internal/chunk, kv.PutLarge, p2pstream)",
			key, wire.ErrValueLen, len(value), wire.MaxValueLen)
	}
	n.putsIssued.Add(1)
	if n.cache != nil {
		// Never serve our own overwritten value from a stale copy.
		n.cache.Invalidate(key)
	}
	owner, hops, err := n.Lookup(key)
	if err != nil {
		return PutResult{}, err
	}
	if owner.ID == n.self.ID {
		version, ok := n.store.putOwned(key, value, time.Now())
		if !ok {
			return PutResult{}, fmt.Errorf("node: put %d: %w", key, ErrStoreFull)
		}
		return PutResult{Owner: owner, Version: version, Hops: hops}, nil
	}
	resp, err := n.call(owner.Addr, &wire.Message{Type: wire.TPut, Key: key, Value: value})
	if err != nil {
		return PutResult{}, fmt.Errorf("node: put %d at %v: %w", key, owner, err)
	}
	if !resp.OK {
		return PutResult{}, fmt.Errorf("node: put %d at %v: %w", key, owner, ErrStoreFull)
	}
	return PutResult{Owner: owner, Version: resp.Version, Hops: hops}, nil
}

// Get resolves key to its value: first from the local store (this node
// owns or replicates the key), then from the item cache (a hot item
// fetched before), and only then over the network — resolve the owner
// with the frequency-observed iterative lookup and fetch the value with
// a GET RPC, caching the copy for subsequent calls. The local tiers
// never misreport absence: a store or cache miss falls through to the
// owner, and only the owner's answer produces ErrNotFound.
func (n *Node) Get(key id.ID) (GetResult, error) {
	if uint64(key) >= n.cfg.Space.Size() {
		return GetResult{}, fmt.Errorf("node: key %d outside %d-bit space", key, n.cfg.Space.Bits())
	}
	n.getsIssued.Add(1)
	now := time.Now()
	if value, version, ok := n.store.get(key, now); ok {
		n.storeHits.Add(1)
		return GetResult{Value: value, Version: version, Local: true}, nil
	}
	if n.cache != nil {
		if c, ok := n.cache.Get(key, now); ok {
			n.cacheHits.Add(1)
			return GetResult{Value: c.value, Version: c.version, Local: true}, nil
		}
	}
	owner, hops, err := n.Lookup(key)
	if err != nil {
		return GetResult{Hops: hops}, err
	}
	if owner.ID == n.self.ID {
		// We own the key and the store already missed.
		return GetResult{Hops: hops}, fmt.Errorf("node: get %d: %w", key, ErrNotFound)
	}
	resp, err := n.call(owner.Addr, &wire.Message{Type: wire.TGet, Key: key})
	if err != nil {
		// The resolved owner is unreachable. Any replica holder can
		// still serve the read under the bounded-staleness contract (its
		// copy is at worst one anti-entropy round behind the last acked
		// write), so race a value-mode lookup that terminates at the
		// first copy holder before giving up. The seed adds our own
		// successor list to the geometry's candidates: ring geometries
		// exclude contacts past the key as routing overshoot, but
		// replicas live exactly there (the owner's successors), and
		// value mode's bidirectional ranking probes whichever side of
		// the key is nearer.
		seed := append(n.rt.Candidates(key, n.cfg.LookupAlpha), n.rt.Successors()...)
		if out, rerr := n.race(key, seed, true); rerr == nil {
			if n.cache != nil {
				n.cache.Put(key, cachedCopy{value: out.value, version: out.version}, now)
			}
			return GetResult{Value: out.value, Version: out.version, Hops: hops + out.hops}, nil
		}
		return GetResult{Hops: hops}, fmt.Errorf("node: get %d at %v: %w", key, owner, err)
	}
	if !resp.OK {
		return GetResult{Hops: hops}, fmt.Errorf("node: get %d at %v: %w", key, owner, ErrNotFound)
	}
	if n.cache != nil {
		n.cache.Put(key, cachedCopy{value: resp.Value, version: resp.Version}, now)
	}
	return GetResult{Value: resp.Value, Version: resp.Version, Hops: hops}, nil
}

// handlePut, handleGet, and handleReplicate run on the read-loop
// goroutine (see handle): store calls only, no I/O beyond the one reply
// the caller sends.

func (n *Node) handlePut(m *wire.Message, resp *wire.Message) {
	n.putsServed.Add(1)
	version, ok := n.store.putOwned(m.Key, m.Value, time.Now())
	resp.OK, resp.Version = ok, version
}

func (n *Node) handleGet(m *wire.Message, resp *wire.Message) {
	n.getsServed.Add(1)
	if value, version, owned, ok := n.store.info(m.Key, time.Now()); ok {
		resp.OK, resp.Value, resp.Version = true, value, version
		if !owned {
			n.replicaServes.Add(1)
		}
	}
}

// handleFindValue answers one step of a Kademlia-style value lookup:
// the value itself when the local store holds the key (as owner or
// replica holder), otherwise the closest known contacts toward it, in
// the canonical strictly-ascending id order (the querier re-ranks by
// its own distance metric; see wire.Message.Closest).
func (n *Node) handleFindValue(m *wire.Message, resp *wire.Message) {
	n.getsServed.Add(1)
	if value, version, owned, ok := n.store.info(m.Key, time.Now()); ok {
		resp.OK, resp.Value, resp.Version = true, value, version
		if !owned {
			n.replicaServes.Add(1)
		}
		return
	}
	// When this node sits in the key's neighborhood — its next hop for
	// the key is terminal — the head of the successor list joins the
	// routing candidates: that names the key's owner AND its replica
	// targets, which ring candidate selection excludes as routing
	// overshoot. A value walk needs exactly those contacts when the
	// owner is unreachable and a replica must answer. Successors go
	// first (nearest first, capped to half the list) so capacity
	// pressure sheds far-away routing candidates, not the neighborhood.
	// Far nodes must NOT advertise successors: a reader whose own id
	// sits just past the key would otherwise see every answerer's
	// successor chain rank as near-the-key (small reverse distance)
	// and crawl away from the owner until the hop budget burns out.
	var pool []wire.Contact
	if _, done := n.rt.NextHop(m.Key); done {
		pool = n.rt.Successors()
		if len(pool) > wire.MaxClosest/2 {
			pool = pool[:wire.MaxClosest/2]
		}
	}
	pool = append(pool, n.rt.Candidates(m.Key, wire.MaxClosest)...)
	seen := make(map[id.ID]bool, len(pool))
	closest := make([]wire.Contact, 0, wire.MaxClosest)
	for _, c := range pool {
		if c.IsZero() || c.Addr == "" || c.ID == m.From.ID || seen[c.ID] {
			continue
		}
		seen[c.ID] = true
		closest = append(closest, c)
		if len(closest) == wire.MaxClosest {
			break
		}
	}
	slices.SortFunc(closest, func(a, b wire.Contact) int {
		return cmp.Compare(a.ID, b.ID)
	})
	resp.Closest = closest
}

// FindValue resolves key to its value with the Kademlia-style combined
// walk: the local store answers outright, then the item cache, then an
// α-parallel race of TFindValue probes that terminates at the first
// peer holding a copy — owner or replica — rather than first resolving
// the owner and then fetching. Successful remote reads feed the
// frequency observer and the item cache exactly like Get.
func (n *Node) FindValue(key id.ID) (GetResult, error) {
	if uint64(key) >= n.cfg.Space.Size() {
		return GetResult{}, fmt.Errorf("node: key %d outside %d-bit space", key, n.cfg.Space.Bits())
	}
	n.getsIssued.Add(1)
	now := time.Now()
	if value, version, ok := n.store.get(key, now); ok {
		n.storeHits.Add(1)
		return GetResult{Value: value, Version: version, Local: true}, nil
	}
	if n.cache != nil {
		if c, ok := n.cache.Get(key, now); ok {
			n.cacheHits.Add(1)
			return GetResult{Value: c.value, Version: c.version, Local: true}, nil
		}
	}
	out, err := n.race(key, n.rt.Candidates(key, n.cfg.LookupAlpha), true)
	if err != nil {
		n.lookupFails.Add(1)
		return GetResult{Hops: out.hops}, fmt.Errorf("node: get %d: %w", key, err)
	}
	n.lookups.Add(1)
	n.lookupHops.Add(uint64(out.hops))
	if out.owner.ID != n.self.ID {
		n.maintMu.Lock()
		n.aux.Observe(key)
		n.maintMu.Unlock()
	}
	if n.cache != nil {
		n.cache.Put(key, cachedCopy{value: out.value, version: out.version}, now)
	}
	return GetResult{Value: out.value, Version: out.version, Hops: out.hops}, nil
}

func (n *Node) handleReplicate(m *wire.Message) {
	n.replicasIn.Add(1)
	n.store.applyReplica(m.Key, m.Value, m.Version, time.Now())
}

// handleReplicateDigest answers one anti-entropy digest batch: the Need
// list is the subset of digest keys whose local copy is missing, older,
// or checksum-divergent. Matching entries have their TTL refreshed by
// needFromDigest — the digest doubles as the owner's liveness signal,
// exactly what a redundant full push used to provide, which is what
// keeps healthy replicas out of the stranded-repair pass. The digest
// arrives strictly ascending by key (the codec enforces it), so the
// Need subset is born in canonical order.
func (n *Node) handleReplicateDigest(m *wire.Message, resp *wire.Message) {
	n.digestsIn.Add(1)
	now := time.Now()
	for _, e := range m.Digest {
		if n.store.needFromDigest(e.Key, e.Version, e.Sum, now) {
			resp.Need = append(resp.Need, e.Key)
		}
	}
}

// Item reports the value this node itself stores under key — as owner
// or replica holder — without network traffic, frequency observation,
// or cache consultation. Introspection only (tests, tooling); use Get
// to read through the overlay.
func (n *Node) Item(key id.ID) (value []byte, version uint64, ok bool) {
	return n.store.get(key, time.Now())
}

// ItemInfo is ItemDetail's snapshot of one locally stored item.
type ItemInfo struct {
	Value   []byte
	Version uint64
	// Owned distinguishes an owned copy from a replica — the authority
	// split the exactly-one-owner invariant checker counts across a
	// cluster.
	Owned bool
}

// ItemDetail is Item plus the copy's authority, again without network
// traffic or cache consultation. Introspection only.
func (n *Node) ItemDetail(key id.ID) (ItemInfo, bool) {
	value, version, owned, ok := n.store.info(key, time.Now())
	if !ok {
		return ItemInfo{}, false
	}
	return ItemInfo{Value: value, Version: version, Owned: owned}, true
}

// ReplicationRound runs one reconciliation and replication pass. The
// ticker calls it every ReplicateEvery; stabilize calls it early when
// the replica target set changes. The pass is anti-entropy, but
// digest-based: instead of re-pushing every owned item to every target
// each round (the PR 3 protocol, whose per-round bytes grow with the
// whole keyspace), the owner summarizes its owned items into
// (key, version, checksum) digest batches, each target answers with the
// keys it actually needs, and only those diffs travel as one-way
// Replicate pushes. A target that does not answer a digest gets the
// full push of that batch as fallback, so coverage never regresses —
// lost datagrams, churned successors, and healed partitions still
// converge without acks or retransmit state. The authority predicate
// comes from the routing geometry (Chord: `(pred, self]`; Pastry:
// numeric closeness over the leaf set); while the geometry cannot tell
// yet, reconciliation skips promotion/demotion.
func (n *Node) ReplicationRound() {
	now := time.Now()
	responsible, ok := n.rt.Responsible()
	if !ok {
		responsible = nil
	}
	promoted, handoff := n.store.reconcile(now, responsible)
	n.promotions.Add(uint64(promoted))
	n.demotions.Add(uint64(len(handoff)))
	// Hand demoted items to their new owner. Loss is tolerable: the item
	// stays here as a replica, and in the scenarios that demote (a
	// healed partition, a join splitting our range) the new owner has
	// been accumulating the key's traffic anyway.
	for _, it := range handoff {
		owner, _, err := n.FindSuccessor(it.key)
		if err != nil || owner.ID == n.self.ID || owner.Addr == "" {
			continue
		}
		n.sendReplica(owner.Addr, it)
	}
	// Re-home stranded replicas: a live owner refreshes its replicas
	// every round — with a digest confirmation now, with a full push
	// before — so a replica that has gone several periods without a
	// refresh has lost its owner somewhere a one-shot handoff could not
	// reach (crash after demotion, push dropped across a partition).
	// Resolve the key's current owner and push the copy there; the owner
	// stores it as a replica and its own reconciliation promotes it to
	// owned, closing the loop without any new message type. Items this
	// node itself has become responsible for don't need the network trip:
	// reconcile above already promoted them.
	n.repairStranded(now)
	targets := n.replicaTargets()
	if len(targets) == 0 {
		return
	}
	owned := n.store.owned()
	if len(owned) == 0 {
		return
	}
	// Digest batches must be strictly ascending by key (the canonical
	// wire order), and sorting once serves every target.
	slices.SortFunc(owned, func(a, b ownedItem) int { return cmp.Compare(a.key, b.key) })
	for _, t := range targets {
		n.replicateTo(t, owned)
	}
}

// replicateTo runs the digest protocol against one replica target: the
// sorted owned items are summarized into MaxDigestEntries-sized digest
// batches, the target answers each with the keys it needs (absent,
// older, or checksum-divergent there), and only those diffs ship as
// Replicate datagrams. The digest RPC is a single attempt — a target
// that misses one digest costs this round a full push of the batch (the
// fallback, also taken against pre-digest peers that never answer), not
// a retry stall; the next round digests again.
//
// Byte accounting: ReplBytesOut accumulates what the protocol actually
// sent (digest requests, diffs, fallback pushes; the target's responses
// are counted on its side), ReplBytesFullPush what the pre-digest
// protocol would have sent for the same batches — every item, every
// round. The pair makes the anti-entropy reduction measurable in a
// single run, with no baseline at equal scale needed.
func (n *Node) replicateTo(t wire.Contact, owned []ownedItem) {
	for start := 0; start < len(owned); start += wire.MaxDigestEntries {
		batch := owned[start:min(start+wire.MaxDigestEntries, len(owned))]
		full := uint64(0)
		for _, it := range batch {
			full += replicateWireSize(len(n.self.Addr), len(it.value))
		}
		n.replBytesFull.Add(full)
		digest := make([]wire.DigestEntry, len(batch))
		for i, it := range batch {
			digest[i] = wire.DigestEntry{Key: it.key, Version: it.version, Sum: it.sum}
		}
		req := &wire.Message{Type: wire.TReplicateDigest, From: n.self, Digest: digest}
		if b, err := wire.Encode(req); err == nil {
			n.replBytesOut.Add(uint64(len(b)))
		}
		n.digestsOut.Add(1)
		resp, err := n.tr.call(t.Addr, req, n.cfg.RPCTimeout, 0)
		if err != nil {
			n.fullPushes.Add(1)
			for _, it := range batch {
				n.replBytesOut.Add(uint64(n.sendReplica(t.Addr, it)))
			}
			continue
		}
		if len(resp.Need) == 0 {
			continue
		}
		n.diffKeysOut.Add(uint64(len(resp.Need)))
		need := make(map[id.ID]bool, len(resp.Need))
		for _, k := range resp.Need {
			need[k] = true
		}
		for _, it := range batch {
			if need[it.key] {
				n.replBytesOut.Add(uint64(n.sendReplica(t.Addr, it)))
			}
		}
	}
}

// replicateWireSize is the encoded size of one Replicate datagram:
// envelope (version 1 + type 1 + msgid 8 + contact id 8 + addr length
// prefix 1 + addr) + key 8 + value length prefix 2 + value + version 8.
// Pinned to the codec by a test so the full-push-equivalent accounting
// cannot drift from what the wire actually costs.
func replicateWireSize(addrLen, valueLen int) uint64 {
	return uint64(37 + addrLen + valueLen)
}

// Stranded-repair pacing: a replica is presumed ownerless after
// strandedAfterPeriods replication periods without a refresh, and one
// round re-homes at most strandedRepairBatch of them (each repair costs
// an iterative lookup plus one replicate datagram).
const (
	strandedAfterPeriods = 3
	strandedRepairBatch  = 32
)

func (n *Node) repairStranded(now time.Time) {
	if n.cfg.ReplicateEvery <= 0 {
		return
	}
	stale := n.store.staleReplicas(now, strandedAfterPeriods*n.cfg.ReplicateEvery, strandedRepairBatch)
	for _, it := range stale {
		owner, _, err := n.FindSuccessor(it.key)
		if err != nil || owner.ID == n.self.ID || owner.Addr == "" {
			continue
		}
		n.strandedRepairs.Add(1)
		n.sendReplica(owner.Addr, it)
	}
}

// sendReplica pushes one item as a one-way Replicate datagram and
// returns the bytes written (0 on a failed send), so callers on the
// anti-entropy path can attribute the traffic to ReplBytesOut.
func (n *Node) sendReplica(addr string, it ownedItem) int {
	n.replicasOut.Add(1)
	return n.tr.send(addr, &wire.Message{Type: wire.TReplicate, From: n.self, Key: it.key, Value: it.value, Version: it.version})
}

// replicaTargets resolves replication.Targets against the geometry's
// near-neighbor list, keeping the contacts' addresses.
func (n *Node) replicaTargets() []wire.Contact {
	succs := n.rt.Successors()
	ids := make([]id.ID, len(succs))
	addrs := make(map[id.ID]string, len(succs))
	for i, s := range succs {
		ids[i] = s.ID
		if _, ok := addrs[s.ID]; !ok {
			addrs[s.ID] = s.Addr
		}
	}
	tids := replication.Targets(n.self.ID, ids, n.cfg.ReplicationFactor)
	out := make([]wire.Contact, 0, len(tids))
	for _, t := range tids {
		if addrs[t] != "" {
			out = append(out, wire.Contact{ID: t, Addr: addrs[t]})
		}
	}
	return out
}

// replicateOnSuccChange triggers a replication round as soon as the
// replica target set differs from the one last pushed to, so a new or
// recovered successor receives its copies within a stabilize period
// instead of a replication period.
func (n *Node) replicateOnSuccChange() {
	if n.cfg.ReplicationFactor < 2 || n.cfg.ReplicateEvery <= 0 {
		return
	}
	targets := n.replicaTargets()
	ids := make([]id.ID, len(targets))
	for i, t := range targets {
		ids[i] = t.ID
	}
	n.replMu.Lock()
	changed := !slices.Equal(ids, n.lastReplTargets)
	if changed {
		n.lastReplTargets = ids
	}
	n.replMu.Unlock()
	if changed {
		n.ReplicationRound()
	}
}
