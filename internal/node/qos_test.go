package node

// Conformance suite for QoS-aware aux selection on the live wiring
// path, across all three geometries:
//
//   - TestAuxQoSBoundsRespected: a peer whose measured RTT exceeds
//     Config.AuxQoSDelayBound must end up with a direct aux pointer
//     (geometry distance 0) after recomputeAux — and demonstrably does
//     NOT when AuxQoS is off, so the test is non-vacuous: disabling the
//     feature makes the bound-conformance assertion fail.
//
//   - TestQoSNoCostsEqualsUnconstrainedLive: property test (quick) that
//     the geometries' SelectQoS with no costs and no bounds is
//     objective-equal to their unconstrained Select — the live-path
//     mirror of core's TestQoSEmptyBoundsEqualsUnconstrained.

import (
	"fmt"
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"peercache/internal/core"
	"peercache/internal/id"
	"peercache/internal/memnet"
	"peercache/internal/node/chordring"
	"peercache/internal/node/kadring"
	"peercache/internal/node/pastryring"
	"peercache/internal/node/ring"
	"peercache/internal/wire"
)

var qosGeometries = []struct {
	name    string
	factory ring.Factory
	eval    func(space id.Space, self id.ID, coreIDs []id.ID, peers []core.Peer, aux []id.ID) float64
}{
	{"chord", chordring.New, func(space id.Space, self id.ID, coreIDs []id.ID, peers []core.Peer, aux []id.ID) float64 {
		return core.EvalChord(space, self, coreIDs, peers, aux)
	}},
	{"pastry", pastryring.New, func(space id.Space, self id.ID, coreIDs []id.ID, peers []core.Peer, aux []id.ID) float64 {
		return core.EvalPastry(space, coreIDs, peers, aux)
	}},
	{"kademlia", kadring.New, func(space id.Space, self id.ID, coreIDs []id.ID, peers []core.Peer, aux []id.ID) float64 {
		return core.EvalKademlia(space, coreIDs, peers, aux)
	}},
}

// observeKeys records count lookups for key the way the runtime's
// lookup path does, under the maintainer lock.
func observeKeys(n *Node, key id.ID, count int) {
	n.maintMu.Lock()
	for i := 0; i < count; i++ {
		n.aux.Observe(key)
	}
	n.maintMu.Unlock()
}

func auxContains(n *Node, x id.ID) bool {
	for _, a := range n.rt.Aux() {
		if a.ID == x {
			return true
		}
	}
	return false
}

// The white-box bound-conformance test. One far peer (measured RTT
// above the delay bound) with light traffic competes against three
// near peers with heavy traffic for a 2-slot aux budget. Hop-greedy
// selection (AuxQoS off) spends both slots on the busy near peers,
// leaving the far peer's bound violated; the QoS selection must spend
// a slot on a direct pointer to the far peer. Flipping AuxQoS off and
// asserting the bound again fails — the feature, not the workload, is
// what satisfies the bound.
func TestAuxQoSBoundsRespected(t *testing.T) {
	const (
		farRTT  = 200 * time.Millisecond // above the 100ms default bound
		nearRTT = 5 * time.Millisecond
	)
	// The far peer sits just before self on the ring — past every heavy
	// target clockwise — so a pointer to it buys hop-greedy selection
	// nothing; only its delay bound can earn it a slot.
	far := id.ID(0xF000)
	near := []id.ID{0x2000, 0x4000, 0x8000}

	for _, g := range qosGeometries {
		t.Run(g.name, func(t *testing.T) {
			nw := memnet.New(1)
			defer nw.CloseAll()
			n, err := Start(Config{
				Space:            id.NewSpace(16),
				ID:               0,
				Addr:             "mem/0",
				NewRing:          g.factory,
				AuxCount:         2,
				AuxQoS:           true,
				Listen:           func(addr string) (PacketConn, error) { return nw.Listen(addr) },
				DisableHealProbe: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer n.Close()

			for _, x := range append(near, far) {
				c := wire.Contact{ID: x, Addr: fmt.Sprintf("mem/%d", x)}
				n.noteContact(c)
				rtt := nearRTT
				if x == far {
					rtt = farRTT
				}
				n.observeRTT(c, rtt)
			}
			for _, x := range near {
				observeKeys(n, x, 100)
			}
			observeKeys(n, far, 1)

			if _, err := n.RecomputeAux(); err != nil {
				t.Fatalf("QoS recompute: %v", err)
			}
			// The bound: every peer with RTT above AuxQoSDelayBound must
			// sit at geometry distance 0 from the aux set, i.e. own a
			// direct pointer.
			if !auxContains(n, far) {
				t.Fatalf("far peer (RTT %v > bound) missing from aux %v: delay bound violated", farRTT, n.rt.Aux())
			}
			m := n.Metrics()
			if m.AuxQoSSelects == 0 {
				t.Fatal("AuxQoSSelects = 0: the QoS selection never ran")
			}
			if m.AuxQoSInfeasible != 0 {
				t.Fatalf("AuxQoSInfeasible = %d: bounds should be satisfiable here", m.AuxQoSInfeasible)
			}
			if !m.AuxQoS {
				t.Fatal("Metrics.AuxQoS = false with the feature on")
			}

			// Non-vacuity: the same workload with AuxQoS off violates the
			// bound — the hop-greedy selection spends both slots on the
			// busy near peers.
			n.SetAuxQoS(false)
			if _, err := n.RecomputeAux(); err != nil {
				t.Fatalf("hop-greedy recompute: %v", err)
			}
			if auxContains(n, far) {
				t.Fatalf("hop-greedy aux %v contains the far peer: the conformance assertion would pass vacuously", n.rt.Aux())
			}
		})
	}
}

// quickHost is the minimal ring.Host the geometry factories need to
// construct an auxPolicy (factories perform no I/O).
type quickHost struct {
	space id.Space
	self  wire.Contact
}

func (h quickHost) Self() wire.Contact { return h.self }
func (h quickHost) Space() id.Space    { return h.space }
func (h quickHost) Call(addr string, req *wire.Message) (*wire.Message, error) {
	return nil, fmt.Errorf("quickhost: no rpc")
}
func (h quickHost) Send(addr string, m *wire.Message) {}
func (h quickHost) Resolve(target id.ID) (wire.Contact, int, error) {
	return wire.Contact{}, 0, fmt.Errorf("quickhost: no resolve")
}
func (h quickHost) Note(c wire.Contact)                 {}
func (h quickHost) AddrOf(x id.ID) (string, bool)       { return "", false }
func (h quickHost) RTTOf(x id.ID) (time.Duration, bool) { return 0, false }

// With every cost unknown and every bound absent, the live SelectQoS
// must be objective-equal to the unconstrained Select on the same
// observations — for random workloads and random core sets, on the
// exact auxPolicy implementations recomputeAux drives.
func TestQoSNoCostsEqualsUnconstrainedLive(t *testing.T) {
	space := id.NewSpace(8)
	self := wire.Contact{ID: 0, Addr: "mem/0"}
	noCost := func(id.ID) (float64, bool) { return 0, false }
	noBound := func(id.ID) (uint, bool) { return 0, false }

	for _, g := range qosGeometries {
		t.Run(g.name, func(t *testing.T) {
			property := func(obs []uint8, coreRaw []uint8) bool {
				_, aux, err := g.factory(quickHost{space: space, self: self}, ring.Options{
					NeighborListLen: 4,
					BucketSize:      4,
					MaxLookupHops:   16,
					AuxCount:        3,
					WindowBuckets:   4,
					DriftThreshold:  0.05,
				})
				if err != nil {
					t.Fatalf("factory: %v", err)
				}
				qs, ok := aux.(ring.QoSSelector)
				if !ok {
					t.Fatalf("%s auxPolicy does not implement ring.QoSSelector", g.name)
				}

				coreSet := make(map[id.ID]bool)
				var coreIDs []id.ID
				for _, c := range coreRaw {
					x := id.ID(c)
					if x == self.ID || coreSet[x] {
						continue
					}
					coreSet[x] = true
					coreIDs = append(coreIDs, x)
				}
				sort.Slice(coreIDs, func(i, j int) bool { return coreIDs[i] < coreIDs[j] })
				if err := aux.SetCore(coreIDs); err != nil {
					t.Fatalf("SetCore(%v): %v", coreIDs, err)
				}
				counts := make(map[id.ID]uint64)
				for _, o := range obs {
					aux.Observe(id.ID(o))
					counts[id.ID(o)]++
				}

				qosAux, qosErr := qs.SelectQoS(noCost, noBound)
				plainAux, plainErr := aux.Select()
				if (qosErr != nil) != (plainErr != nil) {
					t.Logf("error mismatch: qos=%v plain=%v (obs=%v core=%v)", qosErr, plainErr, obs, coreRaw)
					return false
				}
				if qosErr != nil {
					return true // both agree there is nothing to select
				}

				// Same filter the policies apply: observed, not self, not core.
				var peers []core.Peer
				for x, c := range counts {
					if x == self.ID || coreSet[x] {
						continue
					}
					peers = append(peers, core.Peer{ID: x, Freq: float64(c)})
				}
				d := g.eval(space, self.ID, coreIDs, peers, qosAux) -
					g.eval(space, self.ID, coreIDs, peers, plainAux)
				if math.Abs(d) > 1e-9 {
					t.Logf("objective gap %g: qos %v vs plain %v (obs=%v core=%v)", d, qosAux, plainAux, obs, coreRaw)
					return false
				}
				return true
			}
			if err := quick.Check(property, &quick.Config{MaxCount: 60}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
