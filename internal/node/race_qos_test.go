package node

// Conformance tests for the lookup-side half of QoS routing:
// qosProbeIndex's proximity route selection. The selection half
// (recomputeAux through ring.QoSSelector) is covered in qos_test.go;
// this file pins the probe-scheduling rules the race loop relies on:
//
//   - within the eligible window (short prefix, distance within ~2× of
//     the frontier head) the cheapest *measured* link wins;
//   - unmeasured candidates never displace the geometry's pick — with
//     no RTT data the mode must degrade to plain greedy;
//   - a candidate outside the 2× distance band is never chosen no
//     matter how cheap its link, so the walk keeps halving the gap.

import (
	"testing"
	"time"

	"peercache/internal/id"
	"peercache/internal/wire"
)

// probeFrontier builds a distance-sorted frontier from (id, dist)
// pairs, the invariant race() maintains via sorted insertion.
func probeFrontier(entries ...frontierEntry) []frontierEntry {
	for i := 1; i < len(entries); i++ {
		if entries[i].dist < entries[i-1].dist {
			panic("test frontier not distance-sorted")
		}
	}
	return entries
}

func fe(node uint64, dist uint64) frontierEntry {
	return frontierEntry{c: wire.Contact{ID: id.ID(node), Addr: "mem/x"}, dist: dist, depth: 1}
}

func rttTable(t map[id.ID]time.Duration) func(id.ID) (time.Duration, bool) {
	return func(x id.ID) (time.Duration, bool) {
		d, ok := t[x]
		return d, ok
	}
}

func TestQoSProbeOrdering(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }

	cases := []struct {
		name     string
		frontier []frontierEntry
		rtt      map[id.ID]time.Duration
		want     int
	}{
		{
			name:     "no measurements degrades to geometry pick",
			frontier: probeFrontier(fe(1, 100), fe(2, 150), fe(3, 180)),
			rtt:      nil,
			want:     0,
		},
		{
			name:     "cheapest measured link within band wins",
			frontier: probeFrontier(fe(1, 100), fe(2, 150), fe(3, 180)),
			rtt:      map[id.ID]time.Duration{1: ms(40), 2: ms(35), 3: ms(5)},
			want:     2,
		},
		{
			name:     "unmeasured head loses only to a measured rival",
			frontier: probeFrontier(fe(1, 100), fe(2, 150)),
			rtt:      map[id.ID]time.Duration{2: ms(30)},
			want:     1,
		},
		{
			name: "cheap link outside the 2x distance band is ignored",
			// 300>>1 = 150 > 100: entry 2 is past the band even though
			// its link is nearly free.
			frontier: probeFrontier(fe(1, 100), fe(2, 300)),
			rtt:      map[id.ID]time.Duration{1: ms(40), 2: ms(1)},
			want:     0,
		},
		{
			name: "band cut stops the scan, not just the candidate",
			// Entry 2 breaks the band; entry 3 is sorted after it so it
			// must not be reached even though its dist field would pass.
			frontier: probeFrontier(fe(1, 100), fe(2, 300), fe(3, 300)),
			rtt:      map[id.ID]time.Duration{3: ms(1)},
			want:     0,
		},
		{
			name: "window caps the scan at qosProbeWindow entries",
			frontier: probeFrontier(
				fe(1, 100), fe(2, 100), fe(3, 100), fe(4, 100), fe(5, 100)),
			rtt:  map[id.ID]time.Duration{5: ms(1)},
			want: 0,
		},
		{
			name: "full-width distances do not overflow the band test",
			// dist near 2^64: 2*dist would wrap; the shift form must
			// still accept the head's equal-distance rival.
			frontier: probeFrontier(fe(1, ^uint64(0)-1), fe(2, ^uint64(0))),
			rtt:      map[id.ID]time.Duration{2: ms(3)},
			want:     1,
		},
		{
			name:     "tie on RTT keeps the earlier (nearer) candidate",
			frontier: probeFrontier(fe(1, 100), fe(2, 120)),
			rtt:      map[id.ID]time.Duration{1: ms(10), 2: ms(10)},
			want:     0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := qosProbeIndex(tc.frontier, rttTable(tc.rtt))
			if got != tc.want {
				t.Fatalf("qosProbeIndex = %d, want %d", got, tc.want)
			}
		})
	}
}
