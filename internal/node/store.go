package node

import (
	"sync"
	"time"

	"peercache/internal/id"
)

// itemKind distinguishes the two authorities a stored item can carry.
// Cached copies picked up on the GET path are NOT stored here — they
// live in the node's bounded TTL cache (itemcache.TTLCache), where
// staleness is acceptable and capacity pressure evicts freely. The
// store only holds data the node is answerable for.
type itemKind uint8

const (
	// kindOwned: this node is (or believes it is) the key's successor;
	// it accepted the PUT, assigns versions, and replicates the item.
	kindOwned itemKind = iota
	// kindReplica: a copy pushed by an owner for durability. Replicas
	// answer GETs and are promoted to owned when ring responsibility
	// shifts onto this node (owner failure, partition reorganization).
	kindReplica
)

// storedItem is one key's state in the store.
type storedItem struct {
	value   []byte
	version uint64
	kind    itemKind
	// refreshed is the wall-clock time of the last write or replica
	// refresh; the optional store TTL expires items against it.
	refreshed time.Time
}

// ownedItem is the replication ticker's snapshot of one owned item.
type ownedItem struct {
	key     id.ID
	value   []byte
	version uint64
}

// store is the node's mutex-guarded, capacity-bounded item store. Unlike
// a cache it never evicts to make room: losing owned or replicated data
// silently would break the durability the replication layer exists to
// provide, so a full store rejects new keys instead (the PutAck carries
// the refusal back to the writer). Methods take the lock briefly and
// never perform I/O, so the packet handler can call them from the read
// loop.
type store struct {
	mu       sync.Mutex
	capacity int
	ttl      time.Duration // 0 = items never expire
	items    map[id.ID]*storedItem
}

func newStore(capacity int, ttl time.Duration) *store {
	return &store{
		capacity: capacity,
		ttl:      ttl,
		items:    make(map[id.ID]*storedItem),
	}
}

// putOwned applies a local or remote PUT: the node stores the value as
// owner and assigns the next version (1 for a new key). A full store
// rejects new keys (ok=false) but always accepts overwrites of known
// ones. An incoming PUT also re-asserts ownership: a key held as
// replica flips to owned, because the writer just resolved this node as
// the key's successor.
func (s *store) putOwned(key id.ID, value []byte, now time.Time) (version uint64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if it, exists := s.items[key]; exists {
		it.value = append([]byte(nil), value...)
		it.version++
		it.kind = kindOwned
		it.refreshed = now
		return it.version, true
	}
	if len(s.items) >= s.capacity {
		return 0, false
	}
	s.items[key] = &storedItem{
		value:     append([]byte(nil), value...),
		version:   1,
		kind:      kindOwned,
		refreshed: now,
	}
	return 1, true
}

// applyReplica merges a replica push. A strictly newer version always
// wins (value and version update, kind is preserved — an owner learning
// of a newer write keeps ownership); an equal or older version only
// refreshes the TTL of an existing replica. New keys are stored as
// replicas unless the store is full, in which case the push is dropped —
// the owner's next anti-entropy round will retry, and by then either
// capacity or membership has changed.
func (s *store) applyReplica(key id.ID, value []byte, version uint64, now time.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if it, exists := s.items[key]; exists {
		if version > it.version {
			it.value = append([]byte(nil), value...)
			it.version = version
		}
		it.refreshed = now
		return true
	}
	if len(s.items) >= s.capacity {
		return false
	}
	s.items[key] = &storedItem{
		value:     append([]byte(nil), value...),
		version:   version,
		kind:      kindReplica,
		refreshed: now,
	}
	return true
}

// get returns the stored value and version for key, owned and replica
// alike — a replica answering a GET is the point of keeping it.
func (s *store) get(key id.ID, now time.Time) (value []byte, version uint64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	it, exists := s.items[key]
	if !exists || s.expiredLocked(it, now) {
		return nil, 0, false
	}
	return it.value, it.version, true
}

func (s *store) expiredLocked(it *storedItem, now time.Time) bool {
	return s.ttl > 0 && now.Sub(it.refreshed) >= s.ttl
}

// reconcile is the replication ticker's bookkeeping pass: expired items
// are dropped, replicas of keys this node has become responsible for are
// promoted to owned, and owned items whose keys have moved out of the
// node's range are demoted to replicas and returned for handoff to the
// new owner. responsible reports whether a key falls in the node's
// current ownership range; a node whose predecessor is unknown cannot
// judge responsibility and must pass nil, which skips promotion and
// demotion for the round (data is never reclassified on guesswork).
func (s *store) reconcile(now time.Time, responsible func(id.ID) bool) (promoted int, handoff []ownedItem) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for key, it := range s.items {
		if s.expiredLocked(it, now) {
			delete(s.items, key)
			continue
		}
		if responsible == nil {
			continue
		}
		switch {
		case it.kind == kindReplica && responsible(key):
			it.kind = kindOwned
			promoted++
		case it.kind == kindOwned && !responsible(key):
			it.kind = kindReplica
			handoff = append(handoff, ownedItem{key: key, value: it.value, version: it.version})
		}
	}
	return promoted, handoff
}

// owned snapshots every owned item for the replication round. Values are
// aliased, not copied: the store never mutates a stored value in place
// (putOwned and applyReplica replace the slice), so the snapshot is safe
// to encode concurrently.
func (s *store) owned() []ownedItem {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ownedItem, 0, len(s.items))
	for key, it := range s.items {
		if it.kind == kindOwned {
			out = append(out, ownedItem{key: key, value: it.value, version: it.version})
		}
	}
	return out
}

// staleReplicas returns up to max replica items whose last refresh is
// older than now−olderThan. A live owner re-pushes every replica each
// replication period, so a replica this stale has no owner refreshing
// it — the signature of a key stranded by a failed handoff (owner
// crashed after demotion, push lost across a partition). Returned items
// have their refreshed stamp bumped, which both paces the repair (a key
// is re-examined one staleness period later, not every tick) and keeps
// the store TTL from reaping data the repair loop is actively re-homing.
func (s *store) staleReplicas(now time.Time, olderThan time.Duration, max int) []ownedItem {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []ownedItem
	for key, it := range s.items {
		if it.kind != kindReplica || now.Sub(it.refreshed) < olderThan {
			continue
		}
		it.refreshed = now
		out = append(out, ownedItem{key: key, value: it.value, version: it.version})
		if len(out) >= max {
			break
		}
	}
	return out
}

// info reports one key's state including its authority, for
// introspection: checkers counting owners across a cluster need to
// distinguish an owned copy from a replica, which get deliberately
// hides.
func (s *store) info(key id.ID, now time.Time) (value []byte, version uint64, owned, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	it, exists := s.items[key]
	if !exists || s.expiredLocked(it, now) {
		return nil, 0, false, false
	}
	return it.value, it.version, it.kind == kindOwned, true
}

// counts returns the current owned and replica item counts.
func (s *store) counts() (owned, replicas int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, it := range s.items {
		if it.kind == kindOwned {
			owned++
		} else {
			replicas++
		}
	}
	return owned, replicas
}
