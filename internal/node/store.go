package node

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"peercache/internal/id"
)

// itemKind distinguishes the two authorities a stored item can carry.
// Cached copies picked up on the GET path are NOT stored here — they
// live in the node's bounded TTL cache (itemcache.TTLCache), where
// staleness is acceptable and capacity pressure evicts freely. The
// store only holds data the node is answerable for.
type itemKind uint8

const (
	// kindOwned: this node is (or believes it is) the key's successor;
	// it accepted the PUT, assigns versions, and replicates the item.
	kindOwned itemKind = iota
	// kindReplica: a copy pushed by an owner for durability. Replicas
	// answer GETs and are promoted to owned when ring responsibility
	// shifts onto this node (owner failure, partition reorganization).
	kindReplica
)

// storedItem is one key's state in the store.
type storedItem struct {
	value   []byte
	version uint64
	// sum is the FNV-64a checksum of value, maintained on every write so
	// the anti-entropy digest can summarize an item in 8 bytes without
	// rehashing the whole store each round.
	sum  uint64
	kind itemKind
	// refreshed is the wall-clock time of the last write or replica
	// refresh; the optional store TTL expires items against it.
	refreshed time.Time
}

// ownedItem is the replication ticker's snapshot of one owned item.
type ownedItem struct {
	key     id.ID
	value   []byte
	version uint64
	sum     uint64
}

// valueSum is the FNV-64a hash of a value — the checksum carried by
// anti-entropy digests. Inlined rather than hash/fnv to stay
// allocation-free on the write path.
func valueSum(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// storeShard is one lock domain of the sharded store: a plain map under
// its own mutex. The pad keeps neighboring shard locks off one cache
// line so uncontended shards do not false-share.
type storeShard struct {
	mu    sync.Mutex
	items map[id.ID]*storedItem
	_     [40]byte
}

// store is the node's sharded, capacity-bounded item store. Unlike a
// cache it never evicts to make room: losing owned or replicated data
// silently would break the durability the replication layer exists to
// provide, so a full store rejects new keys instead (the PutAck carries
// the refusal back to the writer).
//
// Keys are partitioned across a power-of-two number of shards by id
// *prefix* (the top log2(shards) bits of the identifier), so a range of
// consecutive keys — what ring reconciliation and anti-entropy walk —
// lands in few shards, and independent writers on distant keys never
// contend on one mutex. The capacity bound is global, enforced with an
// atomic count (increment-then-rollback, so the bound is never
// exceeded, exactly matching the single-mutex store's rejection
// behavior). Methods lock one shard at a time and never perform I/O, so
// the packet handler can call them from the read loop.
type store struct {
	shards   []storeShard
	shift    uint // key >> shift selects the shard
	mask     uint64
	capacity int
	ttl      time.Duration // 0 = items never expire
	used     atomic.Int64
}

// newStore builds a store of the requested shard count (rounded up to a
// power of two, clamped so a shard always covers at least one id) over
// a spaceBits-bit key space.
func newStore(capacity int, ttl time.Duration, shards int, spaceBits uint) *store {
	if shards < 1 {
		shards = 1
	}
	lg := uint(bits.Len(uint(shards - 1))) // ceil(log2(shards))
	if lg > spaceBits {
		lg = spaceBits
	}
	n := 1 << lg
	s := &store{
		shards:   make([]storeShard, n),
		shift:    spaceBits - lg,
		mask:     uint64(n - 1),
		capacity: capacity,
		ttl:      ttl,
	}
	for i := range s.shards {
		s.shards[i].items = make(map[id.ID]*storedItem)
	}
	return s
}

// shardFor routes a key to its prefix shard. The mask guards against
// keys carrying bits above the id space (wire input is arbitrary
// uint64s): they fold into a valid shard instead of indexing out of
// range.
func (s *store) shardFor(key id.ID) *storeShard {
	return &s.shards[(uint64(key)>>s.shift)&s.mask]
}

// shardCount reports the number of lock domains, for metrics.
func (s *store) shardCount() int { return len(s.shards) }

// putOwned applies a local or remote PUT: the node stores the value as
// owner and assigns the next version (1 for a new key). A full store
// rejects new keys (ok=false) but always accepts overwrites of known
// ones. An incoming PUT also re-asserts ownership: a key held as
// replica flips to owned, because the writer just resolved this node as
// the key's successor.
func (s *store) putOwned(key id.ID, value []byte, now time.Time) (version uint64, ok bool) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if it, exists := sh.items[key]; exists {
		it.value = append([]byte(nil), value...)
		it.version++
		it.sum = valueSum(value)
		it.kind = kindOwned
		it.refreshed = now
		return it.version, true
	}
	if s.used.Add(1) > int64(s.capacity) {
		s.used.Add(-1)
		return 0, false
	}
	sh.items[key] = &storedItem{
		value:     append([]byte(nil), value...),
		version:   1,
		sum:       valueSum(value),
		kind:      kindOwned,
		refreshed: now,
	}
	return 1, true
}

// applyReplica merges a replica push. A strictly newer version always
// wins (value and version update, kind is preserved — an owner learning
// of a newer write keeps ownership); an equal or older version only
// refreshes the TTL of an existing replica. New keys are stored as
// replicas unless the store is full, in which case the push is dropped —
// the owner's next anti-entropy round will retry, and by then either
// capacity or membership has changed.
func (s *store) applyReplica(key id.ID, value []byte, version uint64, now time.Time) bool {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if it, exists := sh.items[key]; exists {
		if version > it.version {
			it.value = append([]byte(nil), value...)
			it.version = version
			it.sum = valueSum(value)
		}
		it.refreshed = now
		return true
	}
	if s.used.Add(1) > int64(s.capacity) {
		s.used.Add(-1)
		return false
	}
	sh.items[key] = &storedItem{
		value:     append([]byte(nil), value...),
		version:   version,
		sum:       valueSum(value),
		kind:      kindReplica,
		refreshed: now,
	}
	return true
}

// needFromDigest answers one anti-entropy digest entry: does this node
// need the owner to ship (key, version)? Yes when the key is absent
// (or expired), the local copy is older, or the version matches but the
// checksum does not (a divergent copy — corruption, but 8 bytes to
// detect and one push to heal). When the local copy is current, the
// digest doubles as the owner's liveness signal for the key: the
// refreshed stamp is bumped exactly as a redundant full push used to,
// which is what keeps healthy replicas out of the stranded-repair
// pass's staleness net.
func (s *store) needFromDigest(key id.ID, version, sum uint64, now time.Time) bool {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	it, exists := sh.items[key]
	if !exists || s.expiredLocked(it, now) {
		return true
	}
	if it.version < version || (it.version == version && it.sum != sum) {
		return true
	}
	it.refreshed = now
	return false
}

// get returns the stored value and version for key, owned and replica
// alike — a replica answering a GET is the point of keeping it.
func (s *store) get(key id.ID, now time.Time) (value []byte, version uint64, ok bool) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	it, exists := sh.items[key]
	if !exists || s.expiredLocked(it, now) {
		return nil, 0, false
	}
	return it.value, it.version, true
}

func (s *store) expiredLocked(it *storedItem, now time.Time) bool {
	return s.ttl > 0 && now.Sub(it.refreshed) >= s.ttl
}

// reconcile is the replication ticker's bookkeeping pass: expired items
// are dropped, replicas of keys this node has become responsible for are
// promoted to owned, and owned items whose keys have moved out of the
// node's range are demoted to replicas and returned for handoff to the
// new owner. responsible reports whether a key falls in the node's
// current ownership range; a node whose predecessor is unknown cannot
// judge responsibility and must pass nil, which skips promotion and
// demotion for the round (data is never reclassified on guesswork).
// Shards are reconciled one at a time, so concurrent readers of other
// shards never stall behind the pass.
func (s *store) reconcile(now time.Time, responsible func(id.ID) bool) (promoted int, handoff []ownedItem) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for key, it := range sh.items {
			if s.expiredLocked(it, now) {
				delete(sh.items, key)
				s.used.Add(-1)
				continue
			}
			if responsible == nil {
				continue
			}
			switch {
			case it.kind == kindReplica && responsible(key):
				it.kind = kindOwned
				promoted++
			case it.kind == kindOwned && !responsible(key):
				it.kind = kindReplica
				handoff = append(handoff, ownedItem{key: key, value: it.value, version: it.version, sum: it.sum})
			}
		}
		sh.mu.Unlock()
	}
	return promoted, handoff
}

// owned snapshots every owned item for the replication round. Values are
// aliased, not copied: the store never mutates a stored value in place
// (putOwned and applyReplica replace the slice), so the snapshot is safe
// to encode concurrently.
func (s *store) owned() []ownedItem {
	var out []ownedItem
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for key, it := range sh.items {
			if it.kind == kindOwned {
				out = append(out, ownedItem{key: key, value: it.value, version: it.version, sum: it.sum})
			}
		}
		sh.mu.Unlock()
	}
	return out
}

// staleReplicas returns up to max replica items whose last refresh is
// older than now−olderThan. A live owner refreshes every replica each
// replication period — with a full push before the digest protocol,
// with a digest confirmation now — so a replica this stale has no owner
// maintaining it: the signature of a key stranded by a failed handoff
// (owner crashed after demotion, push lost across a partition).
// Returned items have their refreshed stamp bumped, which both paces
// the repair (a key is re-examined one staleness period later, not
// every tick) and keeps the store TTL from reaping data the repair loop
// is actively re-homing.
func (s *store) staleReplicas(now time.Time, olderThan time.Duration, max int) []ownedItem {
	var out []ownedItem
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for key, it := range sh.items {
			if it.kind != kindReplica || now.Sub(it.refreshed) < olderThan {
				continue
			}
			it.refreshed = now
			out = append(out, ownedItem{key: key, value: it.value, version: it.version, sum: it.sum})
			if len(out) >= max {
				break
			}
		}
		sh.mu.Unlock()
		if len(out) >= max {
			break
		}
	}
	return out
}

// info reports one key's state including its authority, for
// introspection: checkers counting owners across a cluster need to
// distinguish an owned copy from a replica, which get deliberately
// hides.
func (s *store) info(key id.ID, now time.Time) (value []byte, version uint64, owned, ok bool) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	it, exists := sh.items[key]
	if !exists || s.expiredLocked(it, now) {
		return nil, 0, false, false
	}
	return it.value, it.version, it.kind == kindOwned, true
}

// counts returns the current owned and replica item counts.
func (s *store) counts() (owned, replicas int) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, it := range sh.items {
			if it.kind == kindOwned {
				owned++
			} else {
				replicas++
			}
		}
		sh.mu.Unlock()
	}
	return owned, replicas
}
