package node

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"peercache/internal/id"
	"peercache/internal/wire"
)

// Shard geometry: counts round up to powers of two, clamp to the id
// space, and route by key prefix so consecutive keys share a shard.
func TestStoreShardGeometry(t *testing.T) {
	cases := []struct {
		shards    int
		spaceBits uint
		want      int
	}{
		{1, 16, 1},
		{2, 16, 2},
		{3, 16, 4}, // rounds up
		{16, 16, 16},
		{16, 3, 8},  // clamped: a shard must cover at least one id
		{-5, 16, 1}, // nonsense collapses to one shard
		{0, 16, 1},
	}
	for _, c := range cases {
		s := newStore(100, 0, c.shards, c.spaceBits)
		if got := s.shardCount(); got != c.want {
			t.Errorf("newStore(shards=%d, bits=%d): %d shards, want %d", c.shards, c.spaceBits, got, c.want)
		}
	}

	// Prefix routing: with 16 shards over 16 bits, the top 4 bits select
	// the shard, so a run of consecutive keys lands together while keys
	// differing in the prefix land apart.
	s := newStore(100, 0, 16, 16)
	if s.shardFor(0x1000) != s.shardFor(0x1FFF) {
		t.Error("keys sharing a prefix landed in different shards")
	}
	if s.shardFor(0x1000) == s.shardFor(0x2000) {
		t.Error("keys with distinct prefixes landed in the same shard")
	}
	// Keys above the id space (arbitrary wire input) must fold into a
	// valid shard rather than index out of range.
	_ = s.shardFor(id.ID(1 << 40))
}

// The capacity bound is global across shards and behaves exactly like
// the single-mutex store: new keys are rejected once full, overwrites
// of known keys always succeed, and expiry frees capacity.
func TestStoreCapacityGlobalAcrossShards(t *testing.T) {
	now := time.Now()
	s := newStore(4, 0, 8, 16)
	// Spread keys across shards; the 5th insert must fail wherever it
	// lands.
	keys := []id.ID{0x0001, 0x2001, 0x4001, 0x6001}
	for _, k := range keys {
		if _, ok := s.putOwned(k, []byte("v"), now); !ok {
			t.Fatalf("put %d rejected below capacity", k)
		}
	}
	if _, ok := s.putOwned(0x8001, []byte("v"), now); ok {
		t.Fatal("put accepted beyond global capacity")
	}
	if ok := s.applyReplica(0xA001, []byte("v"), 1, now); ok {
		t.Fatal("replica accepted beyond global capacity")
	}
	// Overwrites of known keys never count against capacity.
	if v, ok := s.putOwned(keys[0], []byte("v2"), now); !ok || v != 2 {
		t.Fatalf("overwrite at capacity: version %d ok %t, want 2 true", v, ok)
	}

	// Expiry during reconcile frees capacity for new keys.
	st := newStore(1, 10*time.Millisecond, 8, 16)
	st.putOwned(0x0001, []byte("v"), now)
	if _, ok := st.putOwned(0x2001, []byte("v"), now); ok {
		t.Fatal("second key accepted in capacity-1 store")
	}
	st.reconcile(now.Add(20*time.Millisecond), nil)
	if _, ok := st.putOwned(0x2001, []byte("v"), now.Add(20*time.Millisecond)); !ok {
		t.Fatal("capacity not reclaimed after expiry")
	}
}

// needFromDigest is the replica half of the anti-entropy protocol:
// absent, older, and checksum-divergent copies are requested; a current
// copy is not, and the digest match refreshes its TTL exactly as a
// redundant full push used to — the liveness signal that keeps healthy
// replicas out of the stranded-repair net.
func TestStoreNeedFromDigest(t *testing.T) {
	now := time.Now()
	s := newStore(10, time.Second, 4, 16)
	val := []byte("value")
	sum := valueSum(val)

	if !s.needFromDigest(42, 1, sum, now) {
		t.Error("absent key not requested")
	}
	s.applyReplica(42, val, 1, now)
	if s.needFromDigest(42, 1, sum, now) {
		t.Error("current copy requested")
	}
	if !s.needFromDigest(42, 2, sum, now) {
		t.Error("older copy not requested")
	}
	if !s.needFromDigest(42, 1, sum+1, now) {
		t.Error("checksum-divergent copy not requested")
	}
	// Expired copies count as absent.
	if !s.needFromDigest(42, 1, sum, now.Add(2*time.Second)) {
		t.Error("expired copy not requested")
	}

	// The TTL refresh: a matching digest at t+900ms must keep the copy
	// alive past its original t+1s expiry.
	s2 := newStore(10, time.Second, 4, 16)
	s2.applyReplica(7, val, 1, now)
	if s2.needFromDigest(7, 1, sum, now.Add(900*time.Millisecond)) {
		t.Fatal("current copy requested at 900ms")
	}
	if _, _, ok := s2.get(7, now.Add(1800*time.Millisecond)); !ok {
		t.Error("digest match did not refresh the TTL")
	}
}

// Parallel writers, readers, digest answers, and reconcile passes on
// keys spread across every shard — the refactor's contended paths under
// the race detector. Correctness assertions are minimal (no torn
// values, capacity never exceeded); the detector carries the test.
func TestStoreConcurrentAcrossShards(t *testing.T) {
	s := newStore(4096, time.Minute, 16, 16)
	const (
		workers = 8
		keysPer = 64
		rounds  = 50
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := id.ID(w << 12) // one prefix region per worker, plus overlap below
			for r := 0; r < rounds; r++ {
				now := time.Now()
				for i := 0; i < keysPer; i++ {
					k := base + id.ID(i)
					val := []byte(fmt.Sprintf("w%d-r%d", w, r))
					s.putOwned(k, val, now)
					s.applyReplica(k+1, val, uint64(r+1), now)
					s.needFromDigest(k, uint64(r), valueSum(val), now)
					if v, _, ok := s.get(k, now); ok && len(v) == 0 {
						t.Error("torn read: empty value")
						return
					}
				}
				// Cross-shard passes interleaved with the writes.
				s.reconcile(now, func(id.ID) bool { return true })
				s.owned()
				s.counts()
				s.staleReplicas(now, time.Hour, 8)
			}
		}(w)
	}
	wg.Wait()
	owned, replicas := s.counts()
	if owned+replicas > 4096 {
		t.Fatalf("store holds %d items, capacity 4096", owned+replicas)
	}
	if int64(owned+replicas) != s.used.Load() {
		t.Fatalf("used counter %d disagrees with actual count %d", s.used.Load(), owned+replicas)
	}
}

// replicateWireSize — the full-push-equivalent accounting — must match
// what the codec actually produces for a Replicate datagram, or the
// anti-entropy reduction ratio drifts from reality.
func TestReplicateWireSizeMatchesCodec(t *testing.T) {
	for _, valLen := range []int{0, 1, 100, 1024} {
		addr := "127.0.0.1:49152"
		m := &wire.Message{
			Type:    wire.TReplicate,
			MsgID:   1,
			From:    wire.Contact{ID: 12345, Addr: addr},
			Key:     67890,
			Value:   make([]byte, valLen),
			Version: 42,
		}
		b, err := wire.Encode(m)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		if got, want := replicateWireSize(len(addr), valLen), uint64(len(b)); got != want {
			t.Errorf("replicateWireSize(addr=%d, value=%d) = %d, codec produced %d", len(addr), valLen, got, want)
		}
	}
}
