package node

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"peercache/internal/id"
	"peercache/internal/memnet"
)

// startMemCluster boots nodes over a memnet switchboard with manual
// replication (ReplicateEvery < 0 disables the ticker, the
// successor-change trigger, and stranded repair), so digest tests drive
// ReplicationRound explicitly and every datagram on the wire is theirs.
func startMemCluster(t *testing.T, space id.Space, nw *memnet.Network, ids []uint64) []*Node {
	t.Helper()
	nodes := make([]*Node, 0, len(ids))
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Close()
		}
	})
	for i, x := range ids {
		cfg := Config{
			Space:             space,
			ID:                id.ID(x),
			Addr:              fmt.Sprintf("mem/%d", x),
			StabilizeEvery:    25 * time.Millisecond,
			FixFingersEvery:   5 * time.Millisecond,
			RPCTimeout:        100 * time.Millisecond,
			RPCRetries:        1,
			ReplicationFactor: 2,
			ReplicateEvery:    -1,
			Listen: func(addr string) (PacketConn, error) {
				return nw.Listen(addr)
			},
		}
		n, err := Start(cfg)
		if err != nil {
			t.Fatalf("start node %d: %v", x, err)
		}
		nodes = append(nodes, n)
		if i > 0 {
			if err := n.Join(nodes[0].Addr()); err != nil {
				t.Fatalf("join node %d: %v", x, err)
			}
		}
	}
	return nodes
}

// waitReplica polls until n holds key (the one-way Replicate pushes a
// round emits are delivered asynchronously by the switchboard).
func waitReplica(t *testing.T, n *Node, key id.ID) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, ok := n.Item(key); ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica %d never reached node %d: %+v", key, n.ID(), n.Metrics())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// A steady-state replication round ships digests, not data: the first
// round transfers every item as a diff, subsequent rounds send one
// digest batch and nothing else, and an overwrite ships exactly the one
// changed key. The byte counters must show the protocol beating the
// full-push equivalent once state is in sync.
func TestDigestRoundShipsOnlyDiff(t *testing.T) {
	space := id.NewSpace(16)
	nw := memnet.New(1)
	nodes := startMemCluster(t, space, nw, []uint64{100, 20000, 40000})
	waitConverged(t, space, nodes, 10*time.Second)
	a, b, c := nodes[0], nodes[1], nodes[2]

	// 20 keys in (100, 20000]: all owned by b, replicated to c.
	const keys = 20
	for i := 0; i < keys; i++ {
		if _, err := a.Put(id.ID(1000+i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("put %d: %v", 1000+i, err)
		}
	}

	b.ReplicationRound()
	m := b.Metrics()
	if m.DigestsOut != 1 || m.DiffKeysOut != keys || m.ReplicasOut != keys || m.FullPushFallbacks != 0 {
		t.Fatalf("first round: %d digests, %d diff keys, %d pushes, %d fallbacks; want 1/%d/%d/0",
			m.DigestsOut, m.DiffKeysOut, m.ReplicasOut, m.FullPushFallbacks, keys, keys)
	}
	for i := 0; i < keys; i++ {
		waitReplica(t, c, id.ID(1000+i))
	}
	if got := c.Metrics().DigestsIn; got != 1 {
		t.Fatalf("c answered %d digests, want 1", got)
	}

	// Steady state: two more rounds move digests only.
	b.ReplicationRound()
	b.ReplicationRound()
	m = b.Metrics()
	if m.DigestsOut != 3 || m.DiffKeysOut != keys || m.ReplicasOut != keys {
		t.Fatalf("steady state: %d digests, %d diff keys, %d pushes; want 3/%d/%d",
			m.DigestsOut, m.DiffKeysOut, m.ReplicasOut, keys, keys)
	}
	if m.ReplBytesOut == 0 || m.ReplBytesFullPush == 0 || m.ReplBytesOut >= m.ReplBytesFullPush {
		t.Fatalf("after 3 rounds anti-entropy sent %d bytes vs %d full-push equivalent; want a reduction",
			m.ReplBytesOut, m.ReplBytesFullPush)
	}

	// An overwrite ships exactly the changed key.
	if _, err := a.Put(1000, []byte("v0-new")); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	b.ReplicationRound()
	m2 := b.Metrics()
	if m2.ReplicasOut != m.ReplicasOut+1 || m2.DiffKeysOut != m.DiffKeysOut+1 {
		t.Fatalf("overwrite round pushed %d keys (diff %d), want exactly 1 more than %d (%d)",
			m2.ReplicasOut, m2.DiffKeysOut, m.ReplicasOut, m.DiffKeysOut)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, version, ok := c.Item(1000); ok && version == 2 && bytes.Equal(v, []byte("v0-new")) {
			break
		}
		if time.Now().After(deadline) {
			v, version, ok := c.Item(1000)
			t.Fatalf("c replica after overwrite: %q v%d ok=%t, want v0-new v2", v, version, ok)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// When a replica target never answers digests — a pre-digest peer, a
// lossy response path — the owner falls back to pushing the whole batch,
// so convergence never regresses below the PR 3 protocol. Here the
// response direction c→b is blacked out: b's digest times out, the
// fallback pushes still land on c, and once the path heals the next
// round is digest-only again.
func TestDigestFallbackFullPush(t *testing.T) {
	space := id.NewSpace(16)
	nw := memnet.New(1)
	nodes := startMemCluster(t, space, nw, []uint64{100, 20000, 40000})
	waitConverged(t, space, nodes, 10*time.Second)
	a, b, c := nodes[0], nodes[1], nodes[2]

	const keys = 5
	for i := 0; i < keys; i++ {
		if _, err := a.Put(id.ID(1000+i), []byte("v")); err != nil {
			t.Fatalf("put: %v", err)
		}
	}

	nw.SetLinkPolicy(c.Addr(), b.Addr(), memnet.LinkPolicy{Drop: 1})
	b.ReplicationRound()
	m := b.Metrics()
	if m.FullPushFallbacks != 1 || m.ReplicasOut != keys {
		t.Fatalf("blacked-out round: %d fallbacks, %d pushes; want 1, %d", m.FullPushFallbacks, m.ReplicasOut, keys)
	}
	for i := 0; i < keys; i++ {
		waitReplica(t, c, id.ID(1000+i))
	}

	nw.SetLinkPolicy(c.Addr(), b.Addr(), memnet.LinkPolicy{})
	b.ReplicationRound()
	m2 := b.Metrics()
	if m2.FullPushFallbacks != 1 || m2.ReplicasOut != keys {
		t.Fatalf("healed round: %d fallbacks, %d pushes; want still 1, %d", m2.FullPushFallbacks, m2.ReplicasOut, keys)
	}
}

// The bounded-staleness contract: a replica-served read is never older
// than the last acknowledged write minus one anti-entropy round. With
// manual rounds the bound is exact — after the write the replica still
// holds the previous acked version, and one round closes the gap.
func TestBoundedStalenessOneRound(t *testing.T) {
	space := id.NewSpace(16)
	nw := memnet.New(1)
	nodes := startMemCluster(t, space, nw, []uint64{100, 20000, 40000})
	waitConverged(t, space, nodes, 10*time.Second)
	a, b, c := nodes[0], nodes[1], nodes[2]

	key := id.ID(10000) // owned by b, replicated to c
	if _, err := a.Put(key, []byte("v1")); err != nil {
		t.Fatalf("put: %v", err)
	}
	b.ReplicationRound()
	waitReplica(t, c, key)
	if _, version, ok := c.Item(key); !ok || version != 1 {
		t.Fatalf("replica at c: v%d ok=%t, want v1", version, ok)
	}

	if _, err := a.Put(key, []byte("v2")); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	// Before the round the replica lags the acked write by exactly one
	// version — the contract's worst case, never worse.
	if _, version, ok := c.Item(key); !ok || version != 1 {
		t.Fatalf("replica between rounds: v%d ok=%t, want the previous acked v1", version, ok)
	}
	b.ReplicationRound()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, version, ok := c.Item(key); ok && version == 2 && bytes.Equal(v, []byte("v2")) {
			break
		}
		if time.Now().After(deadline) {
			v, version, ok := c.Item(key)
			t.Fatalf("replica after round: %q v%d ok=%t, want v2", v, version, ok)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Get's replica fallback: when the resolved owner is unreachable, the
// read races a value-mode lookup and any replica holder answers under
// the bounded-staleness contract, instead of surfacing the owner's RPC
// error.
func TestGetFallsBackToReplicaWhenOwnerDown(t *testing.T) {
	space := id.NewSpace(16)
	nw := memnet.New(1)
	nodes := startMemCluster(t, space, nw, []uint64{100, 20000, 40000})
	waitConverged(t, space, nodes, 10*time.Second)
	a, b, c := nodes[0], nodes[1], nodes[2]

	key := id.ID(10000) // owned by b, replicated to c
	if _, err := a.Put(key, []byte("durable")); err != nil {
		t.Fatalf("put: %v", err)
	}
	b.ReplicationRound()
	waitReplica(t, c, key)

	// Cut the owner off entirely. a still resolves b as the owner from
	// its routing state; the GET RPC fails; the fallback race reaches c.
	nw.Partition("owner-down", b.Addr())
	defer nw.Heal("owner-down")
	got, err := a.Get(key)
	if err != nil {
		t.Fatalf("get with owner partitioned: %v", err)
	}
	if !bytes.Equal(got.Value, []byte("durable")) || got.Version != 1 {
		t.Fatalf("replica-served read: %q v%d, want durable v1", got.Value, got.Version)
	}
	if got := c.Metrics().ReplicaServes; got < 1 {
		t.Fatalf("c served %d replica reads, want at least 1", got)
	}
}
