package node

import (
	"math/rand"
	"sync"

	"peercache/internal/id"
	"peercache/internal/wire"
)

// table is the node's mutex-guarded routing state: successor list,
// predecessor, finger table, auxiliary neighbors, and a contact cache
// mapping every id the node has ever heard from to its last known
// transport address (the live-network analogue of the simulator's global node
// map — without it a freshly selected auxiliary id would be
// unroutable). Methods take the lock briefly and never perform I/O, so
// the packet handler can call them from the read loop.
type table struct {
	mu    sync.RWMutex
	space id.Space
	self  wire.Contact

	succs   []wire.Contact // nearest first; never empty (falls back to self)
	maxSucc int
	pred    wire.Contact
	hasPred bool

	fingers   []wire.Contact // fingers[i] covers (self+2^i, self+2^{i+1}]
	hasFinger []bool

	aux []wire.Contact // auxiliary neighbors, the paper's A_s

	addrs map[id.ID]string
}

func newTable(space id.Space, self wire.Contact, maxSucc int) *table {
	return &table{
		space:     space,
		self:      self,
		succs:     []wire.Contact{self},
		maxSucc:   maxSucc,
		fingers:   make([]wire.Contact, space.Bits()),
		hasFinger: make([]bool, space.Bits()),
		addrs:     make(map[id.ID]string),
	}
}

// noteContact records c's address. Self and addressless contacts are
// ignored.
func (t *table) noteContact(c wire.Contact) {
	if c.ID == t.self.ID || c.Addr == "" {
		return
	}
	t.mu.Lock()
	t.addrs[c.ID] = c.Addr
	t.mu.Unlock()
}

// randomCached reservoir-samples one contact from the address cache
// (the heal probe's candidate pool: every peer the node has ever heard
// from, including ones long dropped from the routing state).
func (t *table) randomCached(rng *rand.Rand) (wire.Contact, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var pick wire.Contact
	i := 0
	for x, addr := range t.addrs {
		if rng.Intn(i+1) == 0 {
			pick = wire.Contact{ID: x, Addr: addr}
		}
		i++
	}
	return pick, i > 0
}

// addrOf returns the cached address for x.
func (t *table) addrOf(x id.ID) (string, bool) {
	t.mu.RLock()
	a, ok := t.addrs[x]
	t.mu.RUnlock()
	return a, ok
}

// successor returns the first entry of the successor list (self when
// alone).
func (t *table) successor() wire.Contact {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.succs[0]
}

// succList returns a copy of the successor list.
func (t *table) succList() []wire.Contact {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]wire.Contact(nil), t.succs...)
}

// setSuccs installs a new successor list: zero contacts are dropped,
// duplicates keep their first (nearest) occurrence, and the result is
// truncated to maxSucc. An empty result falls back to self.
func (t *table) setSuccs(list []wire.Contact) {
	t.mu.Lock()
	defer t.mu.Unlock()
	seen := make(map[id.ID]bool, len(list))
	out := make([]wire.Contact, 0, t.maxSucc)
	for _, c := range list {
		if c.IsZero() || seen[c.ID] {
			continue
		}
		seen[c.ID] = true
		out = append(out, c)
		if c.ID != t.self.ID && c.Addr != "" {
			t.addrs[c.ID] = c.Addr
		}
		if len(out) == t.maxSucc {
			break
		}
	}
	if len(out) == 0 {
		out = append(out, t.self)
	}
	t.succs = out
}

// adoptSuccessor prepends c as the new immediate successor.
func (t *table) adoptSuccessor(c wire.Contact) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.succs[0].ID == c.ID {
		t.succs[0] = c // refresh the address
		return
	}
	list := append([]wire.Contact{c}, t.succs...)
	if len(list) > t.maxSucc {
		list = list[:t.maxSucc]
	}
	t.succs = list
	if c.ID != t.self.ID && c.Addr != "" {
		t.addrs[c.ID] = c.Addr
	}
}

// dropSuccessor removes a dead successor, falling back on the rest of
// the list (and on self as the last resort, a ring of one until the
// maintenance loops re-integrate the node).
func (t *table) dropSuccessor(dead id.ID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := t.succs[:0]
	for _, s := range t.succs {
		if s.ID != dead {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		out = append(out, t.self)
	}
	t.succs = out
}

// predecessor returns the current predecessor pointer.
func (t *table) predecessor() (wire.Contact, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.pred, t.hasPred
}

// clearPred forgets the predecessor (its ping timed out).
func (t *table) clearPred() {
	t.mu.Lock()
	t.hasPred = false
	t.pred = wire.Contact{}
	t.mu.Unlock()
}

// notify processes a notify(c): adopt c as predecessor if there is none
// or c sits between the current predecessor and self.
func (t *table) notify(c wire.Contact) {
	if c.ID == t.self.ID || c.Addr == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.hasPred || t.space.Between(c.ID, t.pred.ID, t.self.ID) {
		t.pred = c
		t.hasPred = true
	}
	t.addrs[c.ID] = c.Addr
}

// setFinger installs (or clears, when ok is false) finger i.
func (t *table) setFinger(i uint, c wire.Contact, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.hasFinger[i] = ok
	if ok {
		t.fingers[i] = c
		if c.ID != t.self.ID && c.Addr != "" {
			t.addrs[c.ID] = c.Addr
		}
	} else {
		t.fingers[i] = wire.Contact{}
	}
}

// fingerList returns the populated fingers, deduplicated, ascending by
// interval.
func (t *table) fingerList() []wire.Contact {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []wire.Contact
	for i, ok := range t.hasFinger {
		if !ok {
			continue
		}
		f := t.fingers[i]
		if len(out) > 0 && out[len(out)-1].ID == f.ID {
			continue
		}
		out = append(out, f)
	}
	return out
}

// coreIDs returns the node's core neighbor set — fingers and successor
// list, self excluded — the N_s of eq. 1, fed to the selection
// maintainer.
func (t *table) coreIDs() []id.ID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	seen := make(map[id.ID]bool)
	var out []id.ID
	add := func(c wire.Contact) {
		if c.IsZero() || c.ID == t.self.ID || seen[c.ID] {
			return
		}
		seen[c.ID] = true
		out = append(out, c.ID)
	}
	for i, ok := range t.hasFinger {
		if ok {
			add(t.fingers[i])
		}
	}
	for _, s := range t.succs {
		add(s)
	}
	return out
}

// setAux installs the auxiliary neighbor set.
func (t *table) setAux(aux []wire.Contact) {
	t.mu.Lock()
	t.aux = append(aux[:0:0], aux...)
	t.mu.Unlock()
}

// auxList returns a copy of the auxiliary set.
func (t *table) auxList() []wire.Contact {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]wire.Contact(nil), t.aux...)
}

// removeAux drops one auxiliary entry (its liveness ping failed).
func (t *table) removeAux(dead id.ID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := t.aux[:0]
	for _, a := range t.aux {
		if a.ID != dead {
			out = append(out, a)
		}
	}
	t.aux = out
}

// closestPreceding picks the next hop for target: over fingers,
// successor list, and auxiliary neighbors, the contact with the largest
// clockwise gap from self that does not overshoot the target — the
// candidate window is (self, target], matching the simulator's routing
// (internal/chord), so an auxiliary pointer at the destination itself
// is a legal (and ideal, one-hop) next step. Falls back to the
// successor when nothing qualifies.
func (t *table) closestPreceding(target id.ID) wire.Contact {
	t.mu.RLock()
	defer t.mu.RUnlock()
	gt := t.space.Gap(t.self.ID, target)
	best := t.succs[0]
	bestGap := uint64(0)
	consider := func(c wire.Contact) {
		if c.IsZero() || c.ID == t.self.ID {
			return
		}
		g := t.space.Gap(t.self.ID, c.ID)
		if g == 0 || g > gt {
			return // self or overshoot
		}
		if g > bestGap {
			best, bestGap = c, g
		}
	}
	for i, ok := range t.hasFinger {
		if ok {
			consider(t.fingers[i])
		}
	}
	for _, s := range t.succs {
		consider(s)
	}
	for _, a := range t.aux {
		consider(a)
	}
	return best
}
