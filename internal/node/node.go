// Package node is the live counterpart of the discrete-event
// simulators: a real datagram-based overlay node hosting the paper's
// peer-caching layer. Where the simulators exchange messages inside
// internal/sim's virtual clock, a node.Node opens a datagram endpoint,
// runs maintenance protocol rounds as goroutine tickers against
// wall-clock time, answers iterative find-successor steps from peers,
// and — the point of the exercise — observes its own lookup traffic in
// a frequency counter and periodically recomputes the optimal auxiliary
// neighbor set, splicing the result into every routing decision it
// makes or answers.
//
// The routing geometry is pluggable: the runtime here owns the
// transport, RPC correlation, the iterative lookup driver, the kv data
// plane, replication, the contact-address cache, and the tickers, while
// everything protocol-specific lives behind the ring.Routing and
// ring.AuxMaintainer interfaces (internal/node/ring). Chord
// (internal/node/chordring, the default) and Pastry
// (internal/node/pastryring) implement them today; Config.NewRing
// selects the geometry.
//
// The transport is equally pluggable: everything here depends only on
// the PacketConn contract (packetconn.go). Production nodes run over
// real UDP sockets via ListenUDP (cmd/p2pnode selects it; it is also
// the default); tests run 50+ node clusters in one process over
// internal/memnet's fault-injecting switchboard, which satisfies the
// same contract.
//
// Concurrency model: one goroutine reads the endpoint and handles
// requests inline (handlers only touch the mutex-guarded routing state
// and write one reply datagram, so the read loop never blocks on
// protocol work); responses are correlated to blocked RPC callers
// through an inflight map keyed by MsgID. The maintenance loops and any
// number of application Lookup calls run on their own goroutines and
// issue synchronous RPCs with per-call timeouts and bounded retry.
package node

import (
	"errors"
	"fmt"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"peercache/internal/core"
	"peercache/internal/id"
	"peercache/internal/itemcache"
	"peercache/internal/node/chordring"
	"peercache/internal/node/ring"
	"peercache/internal/wire"
)

// Config parameterizes a live node.
type Config struct {
	// Space is the identifier space (required).
	Space id.Space
	// ID is the node's ring identifier (must fit in Space).
	ID id.ID
	// Addr is the listen address, interpreted by the Listen provider
	// (default "127.0.0.1:0", an ephemeral UDP port under ListenUDP).
	Addr string
	// Advertise overrides the address told to peers (default: the
	// bound address). Needed when binding a wildcard address.
	Advertise string

	// NewRing selects the routing geometry and its auxiliary-selection
	// policy (default chordring.New; pastryring.New is the other
	// in-tree geometry). The factory runs before the transport starts.
	NewRing ring.Factory

	// SuccessorListLen bounds the geometry's near-neighbor list: the
	// successor list in Chord, one leaf-set side in Pastry (default 4,
	// max wire.MaxSuccs).
	SuccessorListLen int
	// BucketSize bounds one Kademlia k-bucket (default 0: the geometry's
	// own default, 20). The ring geometries ignore it.
	BucketSize int
	// LookupAlpha is α, the number of candidate probes the iterative
	// lookup driver keeps in flight concurrently (default 3, max 16).
	// 1 reproduces the pre-racing serial walk exactly: one probe at a
	// time, each chosen by the geometry's NextHop.
	LookupAlpha int
	// AuxCount is k, the auxiliary-neighbor budget (default 0: the
	// node routes with core entries only).
	AuxCount int

	// StabilizeEvery is the near-neighbor maintenance period (default
	// 500ms).
	StabilizeEvery time.Duration
	// FixFingersEvery is the long-range-table repair period (default
	// 125ms; FixFingersBatch entries per tick, round-robin).
	FixFingersEvery time.Duration
	// FixFingersBatch is how many long-range table entries each repair
	// tick refreshes (default 1, the historical one-finger-per-tick
	// cadence). Chord honors it — raising it multiplies lookup traffic
	// per tick but divides cold-start finger convergence time, which is
	// what large benchmark overlays wait on; Pastry and Kademlia repair
	// by exchange and ignore it.
	FixFingersBatch int
	// AuxEvery is the auxiliary recomputation period. 0 (the
	// default) disables the ticker; RecomputeAux can still be called
	// explicitly.
	AuxEvery time.Duration
	// WindowBuckets is the number of rotating frequency buckets; the
	// observation window spans WindowBuckets aux ticks (default 4).
	WindowBuckets int
	// DriftThreshold is the total-variation drift that triggers an
	// actual re-selection inside the maintainer (default 0.05).
	DriftThreshold float64
	// AuxQoS enables latency-aware aux selection: recomputeAux weights
	// each observed peer's lookup frequency by its measured smoothed
	// RTT and runs the paper's delay-bound-constrained selection
	// (SelectChordQoS / SelectPastryQoS), so the auxiliary budget goes
	// where it saves the most *time*, not the most hops. Peers whose
	// smoothed RTT exceeds AuxQoSDelayBound get a hard distance bound
	// of 0 — they must be reachable in one hop or the selection is
	// infeasible (the runtime then falls back to the unconstrained
	// selection and counts it). Togglable at runtime via SetAuxQoS.
	AuxQoS bool
	// AuxQoSDelayBound is the smoothed-RTT threshold above which a
	// peer's lookups must not pay any extra routing hops (default
	// 100ms; negative disables the bound, leaving pure RTT-weighted
	// frequency optimization).
	AuxQoSDelayBound time.Duration

	// RPCTimeout bounds one RPC attempt (default 500ms).
	RPCTimeout time.Duration
	// RPCRetries is how many times a timed-out RPC is retried with a
	// fresh MsgID (default 2).
	RPCRetries int
	// MaxLookupHops aborts runaway lookups (default 64).
	MaxLookupHops int

	// ReplicationFactor is the total number of copies of each owned
	// item, the owner included (default 2; 1 keeps items on their owner
	// only). The owner pushes copies to its first factor-1 distinct
	// successors; when the successor list is shorter the placement
	// degrades gracefully and recovers with the membership.
	ReplicationFactor int
	// ReplicateEvery is the replication/reconciliation period: each
	// round re-pushes every owned item to the current successor targets
	// (anti-entropy — successor changes are picked up automatically),
	// promotes replicas the node has become responsible for, and hands
	// off items whose keys have left its range (default 5s; negative
	// disables the ticker, ReplicationRound can still be called).
	ReplicateEvery time.Duration
	// StoreCapacity bounds the item store, owned and replica items
	// together (default 4096). A full store rejects new keys.
	StoreCapacity int
	// StoreShards is the number of prefix-sharded lock domains in the
	// item store and the owner-hint cache (default 16). Rounded up to a
	// power of two and clamped to the id space; keys partition by their
	// top log2(shards) identifier bits, so concurrent writers on
	// distant keys never contend on one mutex.
	StoreShards int
	// StoreTTL expires store items that have not been written or
	// replica-refreshed within it (default 0: items never expire).
	StoreTTL time.Duration
	// ItemCacheCapacity bounds the local cache of item copies picked up
	// on the GET path — the paper's peer caching of hot items (default
	// 256; negative disables the cache).
	ItemCacheCapacity int
	// ItemCacheTTL bounds how stale a cached copy may be served
	// (default 30s).
	ItemCacheTTL time.Duration

	// Listen opens the node's datagram endpoint (default ListenUDP,
	// the real-socket provider). Tests swap in memnet to run whole
	// clusters in one process; Addr is interpreted by the provider.
	Listen Listener
	// Scheduler drives the maintenance loops (default: one goroutine
	// and one time.Ticker per job). Large in-process clusters inject a
	// shared NewBatchScheduler so thousands of nodes share one timer
	// heap and a bounded worker pool instead of spawning four ticker
	// goroutines each. The scheduler must outlive the node: close nodes
	// before closing a shared scheduler.
	Scheduler Scheduler
	// DisableHealProbe turns off the per-stabilize probe of one random
	// cached contact. The probe is what lets two rings that diverged
	// during a network partition merge again after it heals; disable
	// it only in tests that need a fully quiescent node.
	DisableHealProbe bool
}

func (c Config) withDefaults() (Config, error) {
	if c.Space.Bits() == 0 {
		return c, fmt.Errorf("node: zero-value id space")
	}
	if uint64(c.ID) >= c.Space.Size() {
		return c, fmt.Errorf("node: id %d outside %d-bit space", c.ID, c.Space.Bits())
	}
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.NewRing == nil {
		c.NewRing = chordring.New
	}
	if c.SuccessorListLen == 0 {
		c.SuccessorListLen = 4
	}
	if c.SuccessorListLen < 1 || c.SuccessorListLen > wire.MaxSuccs {
		return c, fmt.Errorf("node: successor list length %d outside [1, %d]", c.SuccessorListLen, wire.MaxSuccs)
	}
	if c.BucketSize < 0 {
		return c, fmt.Errorf("node: negative bucket size %d", c.BucketSize)
	}
	if c.LookupAlpha == 0 {
		c.LookupAlpha = 3
	}
	if c.LookupAlpha < 1 || c.LookupAlpha > 16 {
		return c, fmt.Errorf("node: lookup alpha %d outside [1, 16]", c.LookupAlpha)
	}
	if c.AuxCount < 0 {
		return c, fmt.Errorf("node: negative aux count %d", c.AuxCount)
	}
	if c.StabilizeEvery == 0 {
		c.StabilizeEvery = 500 * time.Millisecond
	}
	if c.FixFingersEvery == 0 {
		c.FixFingersEvery = 125 * time.Millisecond
	}
	if c.FixFingersBatch == 0 {
		c.FixFingersBatch = 1
	}
	if c.FixFingersBatch < 1 {
		return c, fmt.Errorf("node: fix-fingers batch %d below 1", c.FixFingersBatch)
	}
	if c.WindowBuckets == 0 {
		c.WindowBuckets = 4
	}
	if c.DriftThreshold == 0 {
		c.DriftThreshold = 0.05
	}
	if c.AuxQoSDelayBound == 0 {
		c.AuxQoSDelayBound = 100 * time.Millisecond
	}
	if c.RPCTimeout == 0 {
		c.RPCTimeout = 500 * time.Millisecond
	}
	if c.RPCRetries == 0 {
		c.RPCRetries = 2
	}
	if c.MaxLookupHops == 0 {
		c.MaxLookupHops = 64
	}
	if c.ReplicationFactor == 0 {
		c.ReplicationFactor = 2
	}
	if c.ReplicationFactor < 1 {
		return c, fmt.Errorf("node: replication factor %d below 1", c.ReplicationFactor)
	}
	if c.ReplicateEvery == 0 {
		c.ReplicateEvery = 5 * time.Second
	}
	if c.StoreCapacity == 0 {
		c.StoreCapacity = 4096
	}
	if c.StoreCapacity < 0 {
		return c, fmt.Errorf("node: negative store capacity %d", c.StoreCapacity)
	}
	if c.StoreShards == 0 {
		c.StoreShards = 16
	}
	if c.StoreShards < 0 {
		return c, fmt.Errorf("node: negative store shard count %d", c.StoreShards)
	}
	if c.StoreTTL < 0 {
		return c, fmt.Errorf("node: negative store TTL %v", c.StoreTTL)
	}
	if c.ItemCacheCapacity == 0 {
		c.ItemCacheCapacity = 256
	}
	if c.ItemCacheTTL == 0 {
		c.ItemCacheTTL = 30 * time.Second
	}
	if c.ItemCacheTTL < 0 {
		return c, fmt.Errorf("node: negative item cache TTL %v", c.ItemCacheTTL)
	}
	if c.Listen == nil {
		c.Listen = ListenUDP
	}
	if c.Scheduler == nil {
		c.Scheduler = goTickers{}
	}
	return c, nil
}

// Metrics is a snapshot of the node's counters.
type Metrics struct {
	DatagramsIn, DatagramsOut uint64
	// BytesIn/BytesOut are cumulative wire bytes through the endpoint
	// (payload bytes as handed to/from the datagram transport).
	BytesIn, BytesOut       uint64
	DecodeErrors            uint64
	RPCs, Retries, Timeouts uint64
	Lookups, LookupHops     uint64
	LookupFailures          uint64
	AuxRecomputes           uint64
	// AuxHits counts resolved lookups whose winning first-hop probe hit
	// a current auxiliary neighbor — the paper's cache-hit event: the
	// aux shortcut finished the walk in one step.
	AuxHits uint64

	// Data plane (kv.go). Issued counters track this node acting as a
	// client, Served counters track it answering peers; StoreHits and
	// CacheHits are GETs answered locally without touching the network.
	PutsIssued, GetsIssued  uint64
	PutsServed, GetsServed  uint64
	StoreHits, CacheHits    uint64
	ReplicasIn, ReplicasOut uint64
	Promotions, Demotions   uint64
	// StrandedRepairs counts replica-only items whose owner this node
	// re-resolved and re-pushed on the anti-entropy ticker — the repair
	// loop that re-homes keys stranded by a failed handoff (no live
	// owner refreshing them).
	StrandedRepairs uint64

	// Digest anti-entropy (kv.go). DigestsOut counts digest batches this
	// node sent as an owner, DigestsIn digest batches it answered as a
	// replica target, DiffKeysOut the keys peers requested after a digest
	// (the diff actually shipped), and FullPushFallbacks digest batches
	// that fell back to the full per-item push because the target never
	// answered the digest.
	DigestsOut, DigestsIn uint64
	DiffKeysOut           uint64
	FullPushFallbacks     uint64
	// ReplBytesOut is the anti-entropy push phase's actual wire bytes
	// (digest requests, digest responses served, and Replicate diffs);
	// ReplBytesFullPush is what the same rounds would have cost under
	// the pre-digest protocol (every owned item re-pushed to every
	// target, every round). The ratio is the digest protocol's byte
	// reduction, independent of scale and tick rate.
	ReplBytesOut, ReplBytesFullPush uint64
	// ReplicaServes counts reads this node answered from a replica copy
	// (TGet or TFindValue on a key it does not own) — the hot-key
	// capacity that scales with ReplicationFactor.
	ReplicaServes uint64

	// Latency plane (rtt.go). RTTSamples counts correlated RPC
	// responses folded into the per-contact EWMA estimates;
	// AuxQoSSelects counts aux recomputations that ran the
	// delay-bound-constrained QoS selection, AuxQoSInfeasible the ones
	// whose bounds could not be met with the configured aux budget
	// (the runtime then falls back to the unconstrained selection).
	RTTSamples       uint64
	AuxQoSSelects    uint64
	AuxQoSInfeasible uint64
	// AuxQoS reports whether QoS-aware aux selection is currently
	// enabled (Config.AuxQoS, togglable at runtime via SetAuxQoS).
	AuxQoS bool
	// RTTContacts is the number of contacts with a live RTT estimate.
	RTTContacts int

	// Gauges: current item counts by authority.
	ItemsOwned, ItemsReplica, ItemsCached int
	// Alpha is the lookup driver's live probe concurrency.
	Alpha int
	// StoreShards is the item store's lock-domain count.
	StoreShards int
}

// Node is a running protocol participant. Create with Start, stop with
// Close.
type Node struct {
	cfg  Config
	self wire.Contact
	tr   *transport

	// rt is the routing geometry; everything protocol-specific
	// (successors vs. leaves, fingers vs. prefix rows) lives behind it.
	rt ring.Routing

	// maintMu guards the aux maintainer (not goroutine-safe) and the
	// core-set dedupe that avoids invalidating its cache on no-op
	// SetCore calls.
	maintMu  sync.Mutex
	aux      ring.AuxMaintainer
	lastCore []id.ID // sorted

	// addrMu guards the contact cache: every id the node has ever heard
	// from, mapped to its last known transport address (the live-network
	// analogue of the simulator's global node map — without it a freshly
	// selected auxiliary id would be unroutable). Shared by all
	// geometries; the heal probe samples it.
	addrMu sync.RWMutex
	addrs  map[id.ID]string
	// rtt holds the smoothed per-contact RTT estimates (rtt.go), under
	// addrMu so estimate eviction is atomic with address eviction:
	// every estimate has a backing addrs entry.
	rtt map[id.ID]rttEstimate

	// Data plane (kv.go): the authoritative item store, the bounded
	// cache of copies picked up on the GET path (nil when disabled),
	// and the key→owner hint cache that lets recomputeAux alias an aux
	// pointer at a hot key's ring position to the owner's address.
	store      *store
	cache      *itemcache.TTLCache[cachedCopy]
	ownerHints *itemcache.ShardedTTL[wire.Contact]

	// replMu guards the target set of the last replication push, so
	// stabilize can trigger an extra round when the successors change.
	replMu          sync.Mutex
	lastReplTargets []id.ID

	// jobs are the maintenance loops registered with the scheduler;
	// populated once in Start, then read-only until shutdown.
	jobs     []JobHandle
	stopOnce sync.Once

	lookups     atomic.Uint64
	lookupHops  atomic.Uint64
	lookupFails atomic.Uint64
	auxRecomps  atomic.Uint64
	auxHits     atomic.Uint64

	// QoS aux selection (rtt.go, recomputeAux): the runtime toggle and
	// the selection-outcome counters.
	auxQoS           atomic.Bool
	auxQoSSelects    atomic.Uint64
	auxQoSInfeasible atomic.Uint64
	rttSamples       atomic.Uint64

	putsIssued, getsIssued  atomic.Uint64
	putsServed, getsServed  atomic.Uint64
	storeHits, cacheHits    atomic.Uint64
	replicasIn, replicasOut atomic.Uint64
	promotions, demotions   atomic.Uint64
	strandedRepairs         atomic.Uint64

	digestsOut, digestsIn       atomic.Uint64
	diffKeysOut, fullPushes     atomic.Uint64
	replBytesOut, replBytesFull atomic.Uint64
	replicaServes               atomic.Uint64
}

// host adapts a Node to the ring.Host surface its geometry programs
// against.
type host struct{ n *Node }

func (h host) Self() wire.Contact { return h.n.self }
func (h host) Space() id.Space    { return h.n.cfg.Space }
func (h host) Call(addr string, req *wire.Message) (*wire.Message, error) {
	return h.n.call(addr, req)
}
func (h host) Send(addr string, m *wire.Message)               { h.n.tr.send(addr, m) }
func (h host) Resolve(target id.ID) (wire.Contact, int, error) { return h.n.FindSuccessor(target) }
func (h host) Note(c wire.Contact)                             { h.n.noteContact(c) }
func (h host) AddrOf(x id.ID) (string, bool)                   { return h.n.addrOf(x) }
func (h host) RTTOf(x id.ID) (time.Duration, bool)             { return h.n.ContactRTT(x) }

// Start opens the datagram endpoint through the configured Listener
// (real UDP by default), builds the routing geometry, starts the read
// loop and the maintenance tickers, and returns the node as a ring of
// one. Call Join to enter an existing overlay.
func Start(cfg Config) (*Node, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	conn, err := cfg.Listen(cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("node: %w", err)
	}
	adv := cfg.Advertise
	if adv == "" {
		adv = conn.LocalAddr()
	}
	if len(adv) > wire.MaxAddrLen {
		conn.Close()
		return nil, fmt.Errorf("node: advertise address %q exceeds %d bytes", adv, wire.MaxAddrLen)
	}
	n := &Node{
		cfg:   cfg,
		self:  wire.Contact{ID: cfg.ID, Addr: adv},
		addrs: make(map[id.ID]string),
		rtt:   make(map[id.ID]rttEstimate),
	}
	n.auxQoS.Store(cfg.AuxQoS)
	n.store = newStore(cfg.StoreCapacity, cfg.StoreTTL, cfg.StoreShards, cfg.Space.Bits())
	if cfg.ItemCacheCapacity > 0 {
		n.cache = itemcache.NewTTL[cachedCopy](cfg.ItemCacheCapacity, cfg.ItemCacheTTL)
	}
	n.ownerHints = itemcache.NewShardedTTL[wire.Contact](ownerHintCapacity, ownerHintTTL, cfg.StoreShards, cfg.Space.Bits())
	// The transport exists before the factory runs (so the geometry can
	// capture a working Host) but starts reading only after, so no
	// request races the geometry's construction.
	n.tr = newTransport(conn, n.self, n.handle)
	n.tr.onRTT = n.observeRTT
	n.rt, n.aux, err = cfg.NewRing(host{n}, ring.Options{
		NeighborListLen: cfg.SuccessorListLen,
		BucketSize:      cfg.BucketSize,
		MaxLookupHops:   cfg.MaxLookupHops,
		AuxCount:        cfg.AuxCount,
		WindowBuckets:   cfg.WindowBuckets,
		DriftThreshold:  cfg.DriftThreshold,
		RepairBatch:     cfg.FixFingersBatch,
	})
	if err != nil {
		conn.Close()
		return nil, err
	}
	n.tr.start()

	n.every(cfg.StabilizeEvery, n.stabilize)
	n.every(cfg.FixFingersEvery, n.rt.RepairTable)
	if cfg.AuxEvery > 0 && cfg.AuxCount > 0 {
		n.every(cfg.AuxEvery, func() {
			n.recomputeAux(true)
		})
	}
	if cfg.ReplicateEvery > 0 {
		n.every(cfg.ReplicateEvery, n.ReplicationRound)
	}
	return n, nil
}

// every registers fn with the scheduler to run each period until Close.
func (n *Node) every(period time.Duration, fn func()) {
	n.jobs = append(n.jobs, n.cfg.Scheduler.Every(period, fn))
}

// Close stops the maintenance loops and shuts the endpoint down. Safe
// to call more than once, and safe to call while RPCs are in flight.
//
// Shutdown ordering, which the goroutine-leak test in close_test.go
// pins down:
//
//  1. Every maintenance job is cancelled: no new round starts (under
//     the default scheduler the ticker goroutine exits at its next
//     select).
//  2. The transport closes its done channel, so every RPC currently
//     blocked in call — including ones issued by a round mid-flight —
//     returns ErrClosed immediately instead of waiting out its timeout.
//  3. The endpoint is closed, unblocking the read loop's ReadFrom, and
//     the transport waits for the read loop to return.
//  4. Waiting on each job collects the in-flight maintenance rounds
//     (now unblocked by 2).
//
// After Close returns, no maintenance code of this node is executing
// and no new datagram can be sent: transport.send and call both fail
// against the closed endpoint, so a straggling caller cannot write to
// the network post-close.
func (n *Node) Close() error { return n.shutdown(false) }

// Crash stops the node as a crash-stop failure for tests and the soak
// harness: the transport dies first — mid-protocol, with tickers still
// running — so peers see the node vanish exactly as they would a
// killed process, and only then are the maintenance goroutines
// collected. No handoff, no final replication push; whatever the
// replicas already hold is all that survives. Like Close it reaps
// every goroutine before returning (the crash being simulated is the
// node's, not the test harness's) and is idempotent with it: whichever
// of Close/Crash runs first wins, the other is a no-op.
func (n *Node) Crash() error { return n.shutdown(true) }

// Leave departs gracefully: one final replication round hands off and
// re-pushes every owned item before the node shuts down. The pushes
// are one-way datagrams, so durability across a leave is still the
// replication factor's job — a caller that needs certainty must verify
// another holder has the data before calling (the soak harness does).
func (n *Node) Leave() error {
	n.ReplicationRound()
	return n.Close()
}

func (n *Node) shutdown(crash bool) error {
	var err error
	n.stopOnce.Do(func() {
		if crash {
			// Crash-stop: the transport dies first, mid-protocol, with
			// the maintenance jobs still armed — peers see the node
			// vanish exactly as they would a killed process.
			err = n.tr.close()
			for _, j := range n.jobs {
				j.Cancel()
			}
		} else {
			for _, j := range n.jobs {
				j.Cancel()
			}
			err = n.tr.close()
		}
		for _, j := range n.jobs {
			j.Wait()
		}
	})
	return err
}

// ID returns the node's ring identifier.
func (n *Node) ID() id.ID { return n.self.ID }

// Addr returns the advertised transport address.
func (n *Node) Addr() string { return n.self.Addr }

// Contact returns the node's own contact.
func (n *Node) Contact() wire.Contact { return n.self }

// Protocol names the active routing geometry.
func (n *Node) Protocol() string { return n.rt.Protocol() }

// Ring exposes the routing geometry for introspection (tests, tools).
func (n *Node) Ring() ring.Routing { return n.rt }

// Successor returns the current immediate successor (self when alone).
func (n *Node) Successor() wire.Contact {
	if s := n.rt.Successors(); len(s) > 0 {
		return s[0]
	}
	return n.self
}

// Successors returns the geometry's near-neighbor list, nearest first
// (self when alone).
func (n *Node) Successors() []wire.Contact {
	if s := n.rt.Successors(); len(s) > 0 {
		return s
	}
	return []wire.Contact{n.self}
}

// Predecessor returns the current predecessor pointer.
func (n *Node) Predecessor() (wire.Contact, bool) { return n.rt.Predecessor() }

// Fingers returns the populated long-range table entries (Chord:
// fingers; Pastry: prefix-table rows).
func (n *Node) Fingers() []wire.Contact { return n.rt.TableList() }

// TableSize counts the populated long-range table entries.
func (n *Node) TableSize() int { return n.rt.TableSize() }

// Aux returns the current auxiliary neighbor set.
func (n *Node) Aux() []wire.Contact { return n.rt.Aux() }

// Metrics returns a snapshot of the node's counters.
func (n *Node) Metrics() Metrics {
	owned, replicas := n.store.counts()
	cached := 0
	if n.cache != nil {
		cached = n.cache.Len()
	}
	return Metrics{
		DatagramsIn:       n.tr.datagramsIn.Load(),
		DatagramsOut:      n.tr.datagramsOut.Load(),
		DecodeErrors:      n.tr.decodeErrs.Load(),
		RPCs:              n.tr.rpcs.Load(),
		Retries:           n.tr.retries.Load(),
		Timeouts:          n.tr.timeouts.Load(),
		Lookups:           n.lookups.Load(),
		LookupHops:        n.lookupHops.Load(),
		LookupFailures:    n.lookupFails.Load(),
		AuxRecomputes:     n.auxRecomps.Load(),
		AuxHits:           n.auxHits.Load(),
		BytesIn:           n.tr.bytesIn.Load(),
		BytesOut:          n.tr.bytesOut.Load(),
		PutsIssued:        n.putsIssued.Load(),
		GetsIssued:        n.getsIssued.Load(),
		PutsServed:        n.putsServed.Load(),
		GetsServed:        n.getsServed.Load(),
		StoreHits:         n.storeHits.Load(),
		CacheHits:         n.cacheHits.Load(),
		ReplicasIn:        n.replicasIn.Load(),
		ReplicasOut:       n.replicasOut.Load(),
		Promotions:        n.promotions.Load(),
		Demotions:         n.demotions.Load(),
		StrandedRepairs:   n.strandedRepairs.Load(),
		DigestsOut:        n.digestsOut.Load(),
		DigestsIn:         n.digestsIn.Load(),
		DiffKeysOut:       n.diffKeysOut.Load(),
		FullPushFallbacks: n.fullPushes.Load(),
		ReplBytesOut:      n.replBytesOut.Load(),
		ReplBytesFullPush: n.replBytesFull.Load(),
		ReplicaServes:     n.replicaServes.Load(),
		RTTSamples:        n.rttSamples.Load(),
		AuxQoSSelects:     n.auxQoSSelects.Load(),
		AuxQoSInfeasible:  n.auxQoSInfeasible.Load(),
		AuxQoS:            n.auxQoS.Load(),
		RTTContacts:       n.rttContacts(),
		ItemsOwned:        owned,
		ItemsReplica:      replicas,
		ItemsCached:       cached,
		Alpha:             n.cfg.LookupAlpha,
		StoreShards:       n.store.shardCount(),
	}
}

// rttContacts is the tracked-estimate count gauge.
func (n *Node) rttContacts() int {
	n.addrMu.RLock()
	defer n.addrMu.RUnlock()
	return len(n.rtt)
}

// call is the node's RPC entry point with the configured timeout/retry
// policy.
func (n *Node) call(addr string, req *wire.Message) (*wire.Message, error) {
	return n.tr.call(addr, req, n.cfg.RPCTimeout, n.cfg.RPCRetries)
}

// Ping sends one liveness probe to addr and waits for the pong. Beyond
// liveness, the correlated round trip feeds the contact RTT estimator
// like any other RPC, so harnesses and operators can actively prime
// latency estimates for peers the lookup path has not yet timed — the
// measurement step QoS-aware aux selection builds on.
func (n *Node) Ping(addr string) error {
	_, err := n.call(addr, &wire.Message{Type: wire.TPing})
	return err
}

// noteContact records c's address in the contact cache. Self and
// addressless contacts are ignored — in particular the zero sender
// contact of anonymous kv clients never pollutes routing state.
func (n *Node) noteContact(c wire.Contact) {
	if c.ID == n.self.ID || c.Addr == "" {
		return
	}
	// Fast path: almost every note re-records an address the cache
	// already has (every handled request and parsed response notes its
	// contacts), so check under the read lock first — at cluster scale
	// the unconditional write lock here serialized the read loops of
	// every node in the process.
	n.addrMu.RLock()
	known := n.addrs[c.ID] == c.Addr
	n.addrMu.RUnlock()
	if known {
		return
	}
	n.addrMu.Lock()
	n.addrs[c.ID] = c.Addr
	n.addrMu.Unlock()
}

// addrOf returns the cached address for x.
func (n *Node) addrOf(x id.ID) (string, bool) {
	n.addrMu.RLock()
	a, ok := n.addrs[x]
	n.addrMu.RUnlock()
	return a, ok
}

// forgetAddr drops x's contact-cache entry, but only while it still
// maps to the address that just failed — a concurrent noteContact may
// have learned a fresher address, and that one must survive.
func (n *Node) forgetAddr(x id.ID, failed string) {
	n.addrMu.Lock()
	if n.addrs[x] == failed {
		delete(n.addrs, x)
		delete(n.rtt, x) // estimate eviction is atomic with the address
	}
	n.addrMu.Unlock()
}

// randomCached samples one contact from the address cache (the heal
// probe's candidate pool: every peer the node has ever heard from,
// including ones long dropped from the routing state). It takes the
// first entry of a map iteration — the runtime starts each iteration
// at a random position, which gives every entry a nonzero chance per
// round without walking the whole cache. The slight bucket-occupancy
// bias is irrelevant for a liveness probe, and a full reservoir pass
// was the top per-round cost at thousand-node scale (O(n) iteration
// plus an RNG draw per entry, per node, per stabilize round).
func (n *Node) randomCached() (wire.Contact, bool) {
	n.addrMu.RLock()
	defer n.addrMu.RUnlock()
	for x, addr := range n.addrs {
		return wire.Contact{ID: x, Addr: addr}, true
	}
	return wire.Contact{}, false
}

// Join enters the overlay through a peer listening at bootstrap,
// delegating the protocol-specific walk (and duplicate-id detection) to
// the geometry.
func (n *Node) Join(bootstrap string) error {
	return n.rt.Join(bootstrap)
}

// handle processes one incoming request on the read-loop goroutine. It
// must not block: local state plus one reply datagram only. Types the
// runtime does not own are offered to the geometry; unknown requests
// are dropped without a reply.
func (n *Node) handle(m *wire.Message, src string) {
	n.noteContact(m.From)
	resp := &wire.Message{MsgID: m.MsgID, From: n.self}
	switch m.Type {
	case wire.TPing:
		resp.Type = wire.TPong
	case wire.TFindSucc:
		resp.Type = wire.TFindSuccResp
		hop, done := n.rt.NextHop(m.Target)
		if done {
			resp.Done, resp.Found = true, hop
		} else {
			resp.Next = hop
		}
	case wire.TPut:
		resp.Type = wire.TPutAck
		n.handlePut(m, resp)
	case wire.TGet:
		resp.Type = wire.TGetResp
		n.handleGet(m, resp)
	case wire.TFindValue:
		resp.Type = wire.TFindValueResp
		n.handleFindValue(m, resp)
	case wire.TReplicate:
		n.handleReplicate(m)
		return // one-way: no response
	case wire.TReplicateDigest:
		resp.Type = wire.TReplicateDigestResp
		n.handleReplicateDigest(m, resp)
	default:
		if !n.rt.HandleRequest(m, resp) {
			return // unknown request; nothing sensible to reply
		}
	}
	sent := n.tr.send(src, resp)
	if resp.Type == wire.TReplicateDigestResp {
		// The digest response is replication-plane traffic: account it
		// here so cluster-summed ReplBytesOut covers both directions of
		// the protocol.
		n.replBytesOut.Add(uint64(sent))
	}
}

// FindSuccessor resolves the node responsible for target by driving the
// α-parallel iterative lookup: ask the geometry for the best local step
// (auxiliary neighbors included — a cache hit short-circuits the whole
// walk), then race up to LookupAlpha concurrent probes over the
// geometry-ordered candidate frontier until one answers Done. The hop
// count is the winning response's path depth on success (so a racing
// lookup reports the length of the path that resolved the key, directly
// comparable to the serial walk's RPC count) and the number of probes
// launched on failure; at α=1 both equal the pre-racing serial count
// exactly.
func (n *Node) FindSuccessor(target id.ID) (wire.Contact, int, error) {
	cur, done := n.rt.NextHop(target)
	if done {
		return cur, 0, nil
	}
	var seed []wire.Contact
	if n.cfg.LookupAlpha == 1 {
		// Exactly the serial walk's first probe; Candidates would pick
		// the same contact first, but seeding from NextHop keeps α=1
		// byte-for-byte faithful to the old driver.
		seed = []wire.Contact{cur}
	} else {
		seed = n.rt.Candidates(target, n.cfg.LookupAlpha)
	}
	out, err := n.race(target, seed, false)
	return out.owner, out.hops, err
}

// raceOutcome is one settled α-parallel lookup: the resolving contact
// (plus, in value mode, the value it answered with) and the hop count.
type raceOutcome struct {
	owner    wire.Contact
	value    []byte
	version  uint64
	hasValue bool
	hops     int
}

// probeResult carries one probe's answer back to the race loop.
type probeResult struct {
	peer  wire.Contact
	depth int
	resp  *wire.Message
	err   error
}

// frontierEntry is one unprobed lookup candidate: the contact, its
// geometry distance to the target (the frontier's sort key), and the
// path depth its probe would report.
type frontierEntry struct {
	c     wire.Contact
	dist  uint64
	depth int
}

// qosProbeWindow caps how many frontier candidates an RTT-aware lookup
// step inspects. The frontier is distance-sorted, so anything past a
// short prefix is a worse routing step regardless of link cost.
const qosProbeWindow = 4

// qosProbeIndex picks the frontier index to probe next when the node
// routes QoS-aware (proximity route selection, the lookup-side half of
// the paper's delay model): among the first qosProbeWindow candidates
// whose geometry distance is within ~2× the best remaining distance —
// so a cheap-link detour still halves the gap and the walk keeps its
// O(log n) convergence — the one with the lowest measured smoothed
// RTT. Candidates without a measurement are skipped (no opinion), and
// if nothing in the window is measured the geometry's own first pick
// stands, so the mode degrades to plain greedy exactly where the RTT
// plane has no data. The 2× test is done as dist>>1 <= best to stay
// overflow-safe on full-width ring distances.
func qosProbeIndex(frontier []frontierEntry, rtt func(id.ID) (time.Duration, bool)) int {
	best := -1
	var bestRTT time.Duration
	limit := len(frontier)
	if limit > qosProbeWindow {
		limit = qosProbeWindow
	}
	for i := 0; i < limit; i++ {
		if frontier[i].dist>>1 > frontier[0].dist {
			break // sorted frontier: every later entry is farther still
		}
		if d, ok := rtt(frontier[i].c.ID); ok && (best < 0 || d < bestRTT) {
			best, bestRTT = i, d
		}
	}
	if best < 0 {
		return 0
	}
	return best
}

// race drives one iterative lookup with up to LookupAlpha probes in
// flight. The frontier holds unprobed candidates ordered by the
// geometry's Distance (ties by id); each launched probe carries its
// path depth — seed contacts are depth 1, contacts learned from a
// depth-d response are depth d+1 — and the first response that resolves
// the target wins with hops equal to its depth. The deferred close of
// the cancel channel aborts the losing probes; their callCancel
// deregisters each inflight entry, and a response straggling in later
// finds no waiter and is dropped, so cancelled probes leak nothing (see
// transport.callCancel).
//
// Launches are hedged, not eager: every response or probe failure
// launches one follow-up probe immediately (the chain a serial walk
// would make), and an *additional* probe launches only when no event
// has arrived for RPCTimeout/4. On a healthy network the first probe
// of each step answers well inside the stagger, so traffic stays at
// the serial walk's one-probe-per-step; under loss or a stalled peer
// the hedge fires long before the full timeout-and-retry budget burns,
// which is where racing wins. Eagerly filling all α slots per step
// triples healthy-path traffic for nothing — and worse, one scheduling
// stall then times out α probes at once, and the resulting DropPeer
// burst can collapse a chord node's entire successor list, after which
// it answers lookups as a ring of one and overclaims keys it does not
// own.
//
// With AuxQoS on, each launch routes by proximity instead of taking
// the frontier head blindly: qosProbeIndex may promote a near-in-
// distance candidate with a known-cheap link over the geometry's
// strict pick (see its comment for the convergence argument). The
// choice is latched once per lookup so a mid-walk SetAuxQoS flip
// cannot mix policies within one walk.
//
// Failure reporting mirrors the old serial driver: a probe error
// retires the peer via DropPeer and is remembered verbatim, and when
// the frontier drains without an answer the lookup fails with (in
// precedence order) the last probe error, the hop-budget error, a
// not-found error in value mode, or a no-progress error naming the
// last peer that answered.
func (n *Node) race(target id.ID, seed []wire.Contact, valueMode bool) (raceOutcome, error) {
	alpha := n.cfg.LookupAlpha
	var frontier []frontierEntry
	queried := map[id.ID]bool{n.self.ID: true}
	push := func(c wire.Contact, depth int) {
		if c.IsZero() || c.Addr == "" || queried[c.ID] {
			return
		}
		queried[c.ID] = true
		d := n.rt.Distance(target, c.ID)
		if valueMode {
			// Copies live at the key's owner and the owner's replica
			// successors — on an asymmetric ring metric (chord's
			// clockwise gap) those rank as the FARTHEST candidates,
			// because the metric measures routing progress toward the
			// key and a holder sits just past it. Ranking by whichever
			// side of the key is nearer keeps the predecessor walk
			// converging while probing named holders immediately,
			// instead of draining every predecessor in the ring (and
			// the hop budget with it) before the one contact that can
			// answer. Symmetric metrics (XOR, circular) are unchanged.
			if rd := n.rt.Distance(c.ID, target); rd < d {
				d = rd
			}
		}
		i := sort.Search(len(frontier), func(i int) bool {
			return frontier[i].dist > d || (frontier[i].dist == d && frontier[i].c.ID > c.ID)
		})
		frontier = append(frontier, frontierEntry{})
		copy(frontier[i+1:], frontier[i:])
		frontier[i] = frontierEntry{c: c, dist: d, depth: depth}
	}
	for _, c := range seed {
		push(c, 1)
	}
	makeReq := func() *wire.Message {
		// A fresh message per probe: callCancel stamps MsgID and From,
		// so concurrent probes must not share one.
		if valueMode {
			return &wire.Message{Type: wire.TFindValue, Key: target}
		}
		return n.rt.LookupRequest(target)
	}
	results := make(chan probeResult, alpha)
	cancel := make(chan struct{})
	defer close(cancel)
	var (
		inflight int
		hops     int
		lastErr  error
		lastPeer wire.Contact
	)
	qosRoute := n.auxQoS.Load()
	launch := func() {
		if inflight < alpha && len(frontier) > 0 && hops < n.cfg.MaxLookupHops {
			i := 0
			if qosRoute {
				i = qosProbeIndex(frontier, n.ContactRTT)
			}
			e := frontier[i]
			frontier = append(frontier[:i], frontier[i+1:]...)
			hops++
			inflight++
			go func(e frontierEntry) {
				resp, err := n.tr.callCancel(e.c.Addr, makeReq(), n.cfg.RPCTimeout, n.cfg.RPCRetries, cancel)
				results <- probeResult{peer: e.c, depth: e.depth, resp: resp, err: err}
			}(e)
		}
	}
	stagger := n.cfg.RPCTimeout / 4
	if stagger <= 0 {
		stagger = time.Millisecond
	}
	hedge := time.NewTimer(stagger)
	defer hedge.Stop()
	launch()
	for inflight > 0 {
		if !hedge.Stop() {
			select {
			case <-hedge.C:
			default:
			}
		}
		hedge.Reset(stagger)
		var r probeResult
		select {
		case r = <-results:
		case <-hedge.C:
			launch()
			continue
		}
		inflight--
		lastPeer = r.peer
		if r.err != nil {
			// The contact is unreachable: retire it from the routing
			// state so the maintenance loops repair around it.
			n.rt.DropPeer(r.peer.ID)
			lastErr = fmt.Errorf("node: lookup %d at %v: %w", target, r.peer, r.err)
			launch()
			continue
		}
		n.noteContact(r.resp.From)
		if valueMode {
			if r.resp.OK {
				n.noteAuxHit(r)
				return raceOutcome{owner: r.peer, value: r.resp.Value, version: r.resp.Version, hasValue: true, hops: r.depth}, nil
			}
			for _, c := range r.resp.Closest {
				n.noteContact(c)
				push(c, r.depth+1)
			}
			launch()
			continue
		}
		found, done, candidates := n.rt.ParseLookupResponse(target, r.resp)
		if done {
			if found.IsZero() {
				lastErr = fmt.Errorf("node: lookup %d: empty answer from %v", target, r.peer)
				launch()
				continue
			}
			n.noteContact(found)
			n.noteAuxHit(r)
			return raceOutcome{owner: found, hops: r.depth}, nil
		}
		for _, c := range candidates {
			n.noteContact(c)
			push(c, r.depth+1)
		}
		launch()
	}
	if lastErr != nil {
		return raceOutcome{hops: hops}, lastErr
	}
	if hops >= n.cfg.MaxLookupHops {
		return raceOutcome{hops: hops}, fmt.Errorf("node: lookup %d: exceeded %d hops", target, n.cfg.MaxLookupHops)
	}
	if valueMode {
		return raceOutcome{hops: hops}, fmt.Errorf("node: find-value %d: %w", target, ErrNotFound)
	}
	return raceOutcome{hops: hops}, fmt.Errorf("node: lookup %d: no progress at %v", target, lastPeer)
}

// noteAuxHit records the paper's cache-hit event: the probe that
// resolved the lookup was a first-hop probe aimed at a current
// auxiliary neighbor, so the aux shortcut finished the walk in one
// step. Owner-aliased entries count too — their frontier contact
// carries the aliased key position as its id, which is exactly what
// the aux set holds.
func (n *Node) noteAuxHit(r probeResult) {
	if r.depth != 1 {
		return
	}
	for _, a := range n.rt.Aux() {
		if a.ID == r.peer.ID {
			n.auxHits.Add(1)
			return
		}
	}
}

// Lookup is FindSuccessor for application traffic: the looked-up key is
// recorded in the frequency observer (the input to auxiliary selection,
// Section III of the paper) and the hop count feeds the node's metrics.
//
// The observer sees the key's own ring position, not the owner's node
// id: auxiliary selection then optimizes for the item access
// distribution the data plane actually produces. When a selected
// position has no node on it, recomputeAux aliases the aux pointer to
// the key's owner through the owner-hint cache recorded here — the
// pointer sits exactly at the hot key, so next-hop selection picks it
// for that key's lookups and the owner finishes them in one hop via its
// ownership check. For lookups whose key is a node id (the control
// plane's joins and finger fixes), position and owner coincide and the
// behavior is unchanged.
func (n *Node) Lookup(key id.ID) (wire.Contact, int, error) {
	owner, hops, err := n.FindSuccessor(key)
	if err != nil {
		n.lookupFails.Add(1)
		return owner, hops, err
	}
	n.lookups.Add(1)
	n.lookupHops.Add(uint64(hops))
	if owner.ID != n.self.ID {
		n.maintMu.Lock()
		n.aux.Observe(key)
		n.maintMu.Unlock()
		if owner.Addr != "" {
			n.ownerHints.Put(key, owner, time.Now())
		}
	}
	return owner, hops, nil
}

// stabilize runs one maintenance round: the geometry's near-neighbor
// protocol first, then the runtime-owned pieces that are the same for
// every geometry — auxiliary liveness pings (Section III's point that
// auxiliary neighbors ride the same ping process as core ones), a
// replication push when the replica target set changed, and the heal
// probe that lets rings separated by a network partition find each
// other again once it lifts.
func (n *Node) stabilize() {
	n.rt.Stabilize()
	for _, a := range n.rt.Aux() {
		if _, err := n.call(a.Addr, &wire.Message{Type: wire.TPing}); err != nil {
			n.rt.RemoveAux(a.ID)
			// Also retire the caches the entry was installed from, or
			// the very next recompute would re-select the id, find the
			// same dead address, and reinstall the entry — an evict/
			// reinstall loop that never converges. Dropping the caches
			// bounds eviction: once a recompute runs after this round,
			// the id either resolves to a live address learned since or
			// is skipped. (The aux id is a node id for directly selected
			// entries — forget its contact-cache address — and a key
			// position for owner-aliased ones — invalidate its owner
			// hint; the wrong-side call of each pair is a no-op.)
			n.forgetAddr(a.ID, a.Addr)
			n.ownerHints.Invalidate(a.ID)
		}
	}
	n.replicateOnSuccChange()
	n.healProbe()
}

// healProbe pings one random contact from the address cache and offers
// any live answer to the geometry's Heal. This is the partition-repair
// mechanism: the maintenance protocol only ever talks to nodes already
// in the routing state, so two overlays that diverged while a partition
// was up would otherwise never re-merge — every node of each side is
// perfectly happy with its own subring. The cache still remembers
// contacts from before the split, and once a single probe re-adopts a
// cross-ring neighbor, the ordinary maintenance rounds propagate the
// merge exactly as they integrate concurrent joins. A node that has
// collapsed to a ring of one adopts any live probed contact, which also
// re-enters a node that was fully isolated.
//
// The probe is a single attempt (no retries) so a dead or unreachable
// cache entry costs at most one RPCTimeout per stabilize round.
func (n *Node) healProbe() {
	if n.cfg.DisableHealProbe {
		return
	}
	c, ok := n.randomCached()
	if !ok {
		return
	}
	resp, err := n.tr.call(c.Addr, &wire.Message{Type: wire.TPing}, n.cfg.RPCTimeout, 0)
	if err != nil {
		return
	}
	live := resp.From
	if live.IsZero() || live.ID == n.self.ID || live.Addr == "" {
		return
	}
	n.noteContact(live)
	n.rt.Heal(live)
}

// SetAuxQoS flips latency-aware aux selection on or off at runtime —
// what lets a bench A/B hop-greedy against QoS placement on the same
// live overlay. It takes effect at the next aux recomputation.
func (n *Node) SetAuxQoS(on bool) { n.auxQoS.Store(on) }

// AuxQoSEnabled reports whether QoS-aware aux selection is active.
func (n *Node) AuxQoSEnabled() bool { return n.auxQoS.Load() }

// RecomputeAux recomputes the auxiliary neighbor set from the observed
// frequencies immediately (the ticker does the same on AuxEvery, plus a
// window rotation). It reports how many of the selected ids were
// routable; ids whose address the node has never learned are skipped.
func (n *Node) RecomputeAux() (int, error) {
	return n.recomputeAux(false)
}

func (n *Node) recomputeAux(rotate bool) (int, error) {
	coreIDs := n.rt.CoreIDs()
	sort.Slice(coreIDs, func(i, j int) bool { return coreIDs[i] < coreIDs[j] })
	n.maintMu.Lock()
	if !slices.Equal(coreIDs, n.lastCore) {
		// SetCore invalidates the maintainer's drift cache, so only
		// report genuine core changes.
		if err := n.aux.SetCore(coreIDs); err != nil {
			n.maintMu.Unlock()
			return 0, err
		}
		n.lastCore = coreIDs
	}
	ids, err := n.selectAuxLocked()
	if rotate {
		n.aux.Rotate()
	}
	n.maintMu.Unlock()
	if err != nil {
		if errors.Is(err, core.ErrNoNeighbors) {
			return 0, nil // nothing observed and no core yet; keep waiting
		}
		return 0, err
	}
	aux := make([]wire.Contact, 0, len(ids))
	now := time.Now()
	for _, a := range ids {
		if addr, ok := n.addrOf(a); ok {
			aux = append(aux, wire.Contact{ID: a, Addr: addr})
			continue
		}
		// The selected id is a key's ring position, not a node the
		// cache knows: alias the aux pointer to the key's owner. The
		// entry sits exactly at the hot key, so next-hop selection picks
		// it for that key's lookups and the owner's ownership check
		// finishes them in one hop.
		if owner, ok := n.ownerHints.Get(a, now); ok {
			aux = append(aux, wire.Contact{ID: a, Addr: owner.Addr})
		}
	}
	n.rt.SetAux(aux)
	n.auxRecomps.Add(1)
	return len(aux), nil
}

// selectAuxLocked picks the next aux id set under maintMu: the plain
// frequency-greedy selection, or — with AuxQoS on and a geometry that
// implements ring.QoSSelector — the paper's delay-bound-constrained
// selection with measured RTTs as peer costs. When the bounds are
// infeasible (no k-subset can give every far peer a direct pointer)
// the node drops the bounds but keeps the RTT costs: the retry is the
// unconstrained cost-weighted optimum, still latency-aware, rather
// than a silent reversion to hop-greedy. The fallback is counted so
// benches can see it.
func (n *Node) selectAuxLocked() ([]id.ID, error) {
	if !n.auxQoS.Load() {
		return n.aux.Select()
	}
	qs, ok := n.aux.(ring.QoSSelector)
	if !ok {
		return n.aux.Select()
	}
	ids, err := qs.SelectQoS(n.qosCost, n.qosBound)
	if errors.Is(err, core.ErrInfeasible) {
		n.auxQoSInfeasible.Add(1)
		ids, err = qs.SelectQoS(n.qosCost, nil)
	}
	if err != nil {
		return nil, err
	}
	n.auxQoSSelects.Add(1)
	return ids, nil
}

// peerRTT resolves the latency estimate behind one observed frequency
// id: directly for a node id the contact cache has timed, and through
// the owner-hint cache for a key's ring position (the aux pointer
// would alias to the owner, so the owner's RTT is the right cost).
func (n *Node) peerRTT(x id.ID) (time.Duration, bool) {
	if d, ok := n.ContactRTT(x); ok {
		return d, true
	}
	if owner, ok := n.ownerHints.Get(x, time.Now()); ok {
		return n.ContactRTT(owner.ID)
	}
	return 0, false
}

// qosCost is the QoS selection's cost callback: measured smoothed RTT
// in milliseconds. Unmeasured peers report false and weigh 1.
func (n *Node) qosCost(x id.ID) (float64, bool) {
	d, ok := n.peerRTT(x)
	if !ok {
		return 0, false
	}
	return float64(d) / float64(time.Millisecond), true
}

// qosBound is the QoS selection's bound callback: a peer whose
// smoothed RTT exceeds Config.AuxQoSDelayBound must not pay any extra
// routing hops — distance bound 0, a direct pointer. A negative
// configured bound disables bounding entirely.
func (n *Node) qosBound(x id.ID) (uint, bool) {
	if n.cfg.AuxQoSDelayBound < 0 {
		return 0, false
	}
	if d, ok := n.peerRTT(x); ok && d > n.cfg.AuxQoSDelayBound {
		return 0, true
	}
	return 0, false
}
