// Package node is the live counterpart of the discrete-event simulators:
// a real datagram-based Chord node hosting the paper's peer-caching
// layer. Where internal/chordproto exchanges messages inside
// internal/sim's virtual clock, a node.Node opens a datagram endpoint,
// runs the join / stabilize / notify / fix-fingers maintenance protocol
// as goroutine tickers against wall-clock time, answers iterative
// find-successor steps from peers, and — the point of the exercise —
// observes its own lookup traffic in a frequency counter and
// periodically recomputes the optimal auxiliary neighbor set (eq. 1,
// via core.SelectChordFast inside a core.ChordMaintainer), splicing the
// result into every routing decision it makes or answers.
//
// The transport is pluggable: everything here depends only on the
// PacketConn contract (packetconn.go). Production nodes run over real
// UDP sockets via ListenUDP (cmd/p2pnode selects it; it is also the
// default); tests run 50+ node clusters in one process over
// internal/memnet's fault-injecting switchboard, which satisfies the
// same contract.
//
// Concurrency model: one goroutine reads the endpoint and handles
// requests inline (handlers only touch the mutex-guarded routing table
// and write one reply datagram, so the read loop never blocks on
// protocol work); responses are correlated to blocked RPC callers
// through an inflight map keyed by MsgID. The maintenance loops and any
// number of application Lookup calls run on their own goroutines and
// issue synchronous RPCs with per-call timeouts and bounded retry.
package node

import (
	"fmt"
	"math/rand"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"peercache/internal/core"
	"peercache/internal/freq"
	"peercache/internal/id"
	"peercache/internal/itemcache"
	"peercache/internal/wire"
)

// Config parameterizes a live node.
type Config struct {
	// Space is the identifier space (required).
	Space id.Space
	// ID is the node's ring identifier (must fit in Space).
	ID id.ID
	// Addr is the listen address, interpreted by the Listen provider
	// (default "127.0.0.1:0", an ephemeral UDP port under ListenUDP).
	Addr string
	// Advertise overrides the address told to peers (default: the
	// bound address). Needed when binding a wildcard address.
	Advertise string

	// SuccessorListLen bounds the successor list (default 4, max
	// wire.MaxSuccs).
	SuccessorListLen int
	// AuxCount is k, the auxiliary-neighbor budget (default 0: the
	// node routes with core entries only).
	AuxCount int

	// StabilizeEvery is the stabilize/notify period (default 500ms).
	StabilizeEvery time.Duration
	// FixFingersEvery is the per-finger refresh period (default
	// 125ms; one finger per tick, round-robin).
	FixFingersEvery time.Duration
	// AuxEvery is the auxiliary recomputation period. 0 (the
	// default) disables the ticker; RecomputeAux can still be called
	// explicitly.
	AuxEvery time.Duration
	// WindowBuckets is the number of rotating frequency buckets; the
	// observation window spans WindowBuckets aux ticks (default 4).
	WindowBuckets int
	// DriftThreshold is the total-variation drift that triggers an
	// actual re-selection inside the maintainer (default 0.05).
	DriftThreshold float64

	// RPCTimeout bounds one RPC attempt (default 500ms).
	RPCTimeout time.Duration
	// RPCRetries is how many times a timed-out RPC is retried with a
	// fresh MsgID (default 2).
	RPCRetries int
	// MaxLookupHops aborts runaway lookups (default 64).
	MaxLookupHops int

	// ReplicationFactor is the total number of copies of each owned
	// item, the owner included (default 2; 1 keeps items on their owner
	// only). The owner pushes copies to its first factor-1 distinct
	// successors; when the successor list is shorter the placement
	// degrades gracefully and recovers with the membership.
	ReplicationFactor int
	// ReplicateEvery is the replication/reconciliation period: each
	// round re-pushes every owned item to the current successor targets
	// (anti-entropy — successor changes are picked up automatically),
	// promotes replicas the node has become responsible for, and hands
	// off items whose keys have left its range (default 5s; negative
	// disables the ticker, ReplicationRound can still be called).
	ReplicateEvery time.Duration
	// StoreCapacity bounds the item store, owned and replica items
	// together (default 4096). A full store rejects new keys.
	StoreCapacity int
	// StoreTTL expires store items that have not been written or
	// replica-refreshed within it (default 0: items never expire).
	StoreTTL time.Duration
	// ItemCacheCapacity bounds the local cache of item copies picked up
	// on the GET path — the paper's peer caching of hot items (default
	// 256; negative disables the cache).
	ItemCacheCapacity int
	// ItemCacheTTL bounds how stale a cached copy may be served
	// (default 30s).
	ItemCacheTTL time.Duration

	// Listen opens the node's datagram endpoint (default ListenUDP,
	// the real-socket provider). Tests swap in memnet to run whole
	// clusters in one process; Addr is interpreted by the provider.
	Listen Listener
	// DisableHealProbe turns off the per-stabilize probe of one random
	// cached contact. The probe is what lets two rings that diverged
	// during a network partition merge again after it heals; disable
	// it only in tests that need a fully quiescent node.
	DisableHealProbe bool
}

func (c Config) withDefaults() (Config, error) {
	if c.Space.Bits() == 0 {
		return c, fmt.Errorf("node: zero-value id space")
	}
	if uint64(c.ID) >= c.Space.Size() {
		return c, fmt.Errorf("node: id %d outside %d-bit space", c.ID, c.Space.Bits())
	}
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.SuccessorListLen == 0 {
		c.SuccessorListLen = 4
	}
	if c.SuccessorListLen < 1 || c.SuccessorListLen > wire.MaxSuccs {
		return c, fmt.Errorf("node: successor list length %d outside [1, %d]", c.SuccessorListLen, wire.MaxSuccs)
	}
	if c.AuxCount < 0 {
		return c, fmt.Errorf("node: negative aux count %d", c.AuxCount)
	}
	if c.StabilizeEvery == 0 {
		c.StabilizeEvery = 500 * time.Millisecond
	}
	if c.FixFingersEvery == 0 {
		c.FixFingersEvery = 125 * time.Millisecond
	}
	if c.WindowBuckets == 0 {
		c.WindowBuckets = 4
	}
	if c.DriftThreshold == 0 {
		c.DriftThreshold = 0.05
	}
	if c.RPCTimeout == 0 {
		c.RPCTimeout = 500 * time.Millisecond
	}
	if c.RPCRetries == 0 {
		c.RPCRetries = 2
	}
	if c.MaxLookupHops == 0 {
		c.MaxLookupHops = 64
	}
	if c.ReplicationFactor == 0 {
		c.ReplicationFactor = 2
	}
	if c.ReplicationFactor < 1 {
		return c, fmt.Errorf("node: replication factor %d below 1", c.ReplicationFactor)
	}
	if c.ReplicateEvery == 0 {
		c.ReplicateEvery = 5 * time.Second
	}
	if c.StoreCapacity == 0 {
		c.StoreCapacity = 4096
	}
	if c.StoreCapacity < 0 {
		return c, fmt.Errorf("node: negative store capacity %d", c.StoreCapacity)
	}
	if c.StoreTTL < 0 {
		return c, fmt.Errorf("node: negative store TTL %v", c.StoreTTL)
	}
	if c.ItemCacheCapacity == 0 {
		c.ItemCacheCapacity = 256
	}
	if c.ItemCacheTTL == 0 {
		c.ItemCacheTTL = 30 * time.Second
	}
	if c.ItemCacheTTL < 0 {
		return c, fmt.Errorf("node: negative item cache TTL %v", c.ItemCacheTTL)
	}
	if c.Listen == nil {
		c.Listen = ListenUDP
	}
	return c, nil
}

// Metrics is a snapshot of the node's counters.
type Metrics struct {
	DatagramsIn, DatagramsOut uint64
	DecodeErrors              uint64
	RPCs, Retries, Timeouts   uint64
	Lookups, LookupHops       uint64
	LookupFailures            uint64
	AuxRecomputes             uint64

	// Data plane (kv.go). Issued counters track this node acting as a
	// client, Served counters track it answering peers; StoreHits and
	// CacheHits are GETs answered locally without touching the network.
	PutsIssued, GetsIssued  uint64
	PutsServed, GetsServed  uint64
	StoreHits, CacheHits    uint64
	ReplicasIn, ReplicasOut uint64
	Promotions, Demotions   uint64

	// Gauges: current item counts by authority.
	ItemsOwned, ItemsReplica, ItemsCached int
}

// Node is a running protocol participant. Create with Start, stop with
// Close.
type Node struct {
	cfg  Config
	self wire.Contact
	tr   *transport
	tbl  *table

	// maintMu guards the maintainer and its windowed counter (neither
	// is goroutine-safe) and the round-robin finger cursor.
	maintMu    sync.Mutex
	maint      *core.ChordMaintainer
	window     *freq.Windowed
	lastCore   []id.ID // sorted; avoids invalidating the maintainer's cache on no-op SetCore
	nextFinger uint

	// probeRNG picks the heal-probe target. Only the stabilize ticker
	// goroutine touches it, so it needs no lock; seeding it from the
	// node id keeps multi-node tests reproducible.
	probeRNG *rand.Rand

	// Data plane (kv.go): the authoritative item store, the bounded
	// cache of copies picked up on the GET path (nil when disabled),
	// and the key→owner hint cache that lets recomputeAux alias an aux
	// pointer at a hot key's ring position to the owner's address.
	store      *store
	cache      *itemcache.TTLCache[cachedCopy]
	ownerHints *itemcache.TTLCache[wire.Contact]

	// replMu guards the target set of the last replication push, so
	// stabilize can trigger an extra round when the successors change.
	replMu          sync.Mutex
	lastReplTargets []id.ID

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	lookups     atomic.Uint64
	lookupHops  atomic.Uint64
	lookupFails atomic.Uint64
	auxRecomps  atomic.Uint64

	putsIssued, getsIssued  atomic.Uint64
	putsServed, getsServed  atomic.Uint64
	storeHits, cacheHits    atomic.Uint64
	replicasIn, replicasOut atomic.Uint64
	promotions, demotions   atomic.Uint64
}

// Start opens the datagram endpoint through the configured Listener
// (real UDP by default), starts the read loop and the maintenance
// tickers, and returns the node as a ring of one. Call Join to enter an
// existing overlay.
func Start(cfg Config) (*Node, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	conn, err := cfg.Listen(cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("node: %w", err)
	}
	adv := cfg.Advertise
	if adv == "" {
		adv = conn.LocalAddr()
	}
	if len(adv) > wire.MaxAddrLen {
		conn.Close()
		return nil, fmt.Errorf("node: advertise address %q exceeds %d bytes", adv, wire.MaxAddrLen)
	}
	n := &Node{
		cfg:      cfg,
		self:     wire.Contact{ID: cfg.ID, Addr: adv},
		stop:     make(chan struct{}),
		window:   freq.NewWindowed(cfg.WindowBuckets),
		probeRNG: rand.New(rand.NewSource(int64(cfg.ID) + 1)),
	}
	n.tbl = newTable(cfg.Space, n.self, cfg.SuccessorListLen)
	n.maint, err = core.NewChordMaintainerWithCounter(cfg.Space, cfg.ID, nil, cfg.AuxCount, cfg.DriftThreshold, n.window)
	if err != nil {
		conn.Close()
		return nil, err
	}
	n.store = newStore(cfg.StoreCapacity, cfg.StoreTTL)
	if cfg.ItemCacheCapacity > 0 {
		n.cache = itemcache.NewTTL[cachedCopy](cfg.ItemCacheCapacity, cfg.ItemCacheTTL)
	}
	n.ownerHints = itemcache.NewTTL[wire.Contact](ownerHintCapacity, ownerHintTTL)
	n.tr = newTransport(conn, n.self, n.handle)
	n.tr.start()

	n.ticker(cfg.StabilizeEvery, n.stabilize)
	n.ticker(cfg.FixFingersEvery, n.fixNextFinger)
	if cfg.AuxEvery > 0 && cfg.AuxCount > 0 {
		n.ticker(cfg.AuxEvery, func() {
			n.recomputeAux(true)
		})
	}
	if cfg.ReplicateEvery > 0 {
		n.ticker(cfg.ReplicateEvery, n.ReplicationRound)
	}
	return n, nil
}

// ticker runs fn every period until Close.
func (n *Node) ticker(period time.Duration, fn func()) {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		t := time.NewTicker(period)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				fn()
			case <-n.stop:
				return
			}
		}
	}()
}

// Close stops the maintenance loops and shuts the endpoint down. Safe
// to call more than once, and safe to call while RPCs are in flight.
//
// Shutdown ordering, which the goroutine-leak test in close_test.go
// pins down:
//
//  1. n.stop is closed: every ticker goroutine exits at its next select.
//  2. The transport closes its done channel, so every RPC currently
//     blocked in call — including ones issued by a ticker mid-round —
//     returns ErrClosed immediately instead of waiting out its timeout.
//  3. The endpoint is closed, unblocking the read loop's ReadFrom, and
//     the transport waits for the read loop to return.
//  4. n.wg.Wait() collects the ticker goroutines (now unblocked by 2).
//
// After Close returns, no goroutine started by this node survives and
// no new datagram can be sent: transport.send and call both fail
// against the closed endpoint, so a straggling caller cannot write to
// the network post-close.
func (n *Node) Close() error {
	var err error
	n.stopOnce.Do(func() {
		close(n.stop)
		err = n.tr.close()
		n.wg.Wait()
	})
	return err
}

// ID returns the node's ring identifier.
func (n *Node) ID() id.ID { return n.self.ID }

// Addr returns the advertised transport address.
func (n *Node) Addr() string { return n.self.Addr }

// Contact returns the node's own contact.
func (n *Node) Contact() wire.Contact { return n.self }

// Successor returns the current immediate successor.
func (n *Node) Successor() wire.Contact { return n.tbl.successor() }

// Successors returns a copy of the successor list, nearest first.
func (n *Node) Successors() []wire.Contact { return n.tbl.succList() }

// Predecessor returns the current predecessor pointer.
func (n *Node) Predecessor() (wire.Contact, bool) { return n.tbl.predecessor() }

// Fingers returns the populated finger entries.
func (n *Node) Fingers() []wire.Contact { return n.tbl.fingerList() }

// Aux returns the current auxiliary neighbor set.
func (n *Node) Aux() []wire.Contact { return n.tbl.auxList() }

// Metrics returns a snapshot of the node's counters.
func (n *Node) Metrics() Metrics {
	owned, replicas := n.store.counts()
	cached := 0
	if n.cache != nil {
		cached = n.cache.Len()
	}
	return Metrics{
		DatagramsIn:    n.tr.datagramsIn.Load(),
		DatagramsOut:   n.tr.datagramsOut.Load(),
		DecodeErrors:   n.tr.decodeErrs.Load(),
		RPCs:           n.tr.rpcs.Load(),
		Retries:        n.tr.retries.Load(),
		Timeouts:       n.tr.timeouts.Load(),
		Lookups:        n.lookups.Load(),
		LookupHops:     n.lookupHops.Load(),
		LookupFailures: n.lookupFails.Load(),
		AuxRecomputes:  n.auxRecomps.Load(),
		PutsIssued:     n.putsIssued.Load(),
		GetsIssued:     n.getsIssued.Load(),
		PutsServed:     n.putsServed.Load(),
		GetsServed:     n.getsServed.Load(),
		StoreHits:      n.storeHits.Load(),
		CacheHits:      n.cacheHits.Load(),
		ReplicasIn:     n.replicasIn.Load(),
		ReplicasOut:    n.replicasOut.Load(),
		Promotions:     n.promotions.Load(),
		Demotions:      n.demotions.Load(),
		ItemsOwned:     owned,
		ItemsReplica:   replicas,
		ItemsCached:    cached,
	}
}

// call is the node's RPC entry point with the configured timeout/retry
// policy.
func (n *Node) call(addr string, req *wire.Message) (*wire.Message, error) {
	return n.tr.call(addr, req, n.cfg.RPCTimeout, n.cfg.RPCRetries)
}

// Join enters the overlay through a peer listening at bootstrap: an
// iterative find-successor for the node's own id yields its successor;
// stabilization then integrates the node into the ring, exactly as in
// chordproto.Join.
func (n *Node) Join(bootstrap string) error {
	cur := bootstrap
	for hops := 0; hops <= n.cfg.MaxLookupHops; hops++ {
		resp, err := n.call(cur, &wire.Message{Type: wire.TFindSucc, Target: n.self.ID})
		if err != nil {
			return fmt.Errorf("node: join via %s: %w", bootstrap, err)
		}
		n.tbl.noteContact(resp.From)
		if resp.Done {
			if resp.Found.ID == n.self.ID {
				return fmt.Errorf("node: join: id %d already taken by %s", n.self.ID, resp.Found.Addr)
			}
			n.tbl.adoptSuccessor(resp.Found)
			return nil
		}
		if resp.Next.IsZero() || resp.Next.Addr == cur {
			return fmt.Errorf("node: join via %s: no progress at %s", bootstrap, cur)
		}
		n.tbl.noteContact(resp.Next)
		cur = resp.Next.Addr
	}
	return fmt.Errorf("node: join via %s: exceeded %d hops", bootstrap, n.cfg.MaxLookupHops)
}

// handle processes one incoming request on the read-loop goroutine. It
// must not block: local state plus one reply datagram only.
func (n *Node) handle(m *wire.Message, src string) {
	n.tbl.noteContact(m.From)
	resp := &wire.Message{MsgID: m.MsgID, From: n.self}
	switch m.Type {
	case wire.TPing:
		resp.Type = wire.TPong
	case wire.TGetPred:
		resp.Type = wire.TGetPredResp
		resp.Pred, resp.HasPred = n.tbl.predecessor()
		succs := n.tbl.succList()
		if len(succs) > wire.MaxSuccs {
			succs = succs[:wire.MaxSuccs]
		}
		resp.Succs = succs
	case wire.TNotify:
		n.tbl.notify(m.From)
		resp.Type = wire.TNotifyAck
	case wire.TFindSucc:
		resp.Type = wire.TFindSuccResp
		n.answerFindSucc(m.Target, resp)
	case wire.TPut:
		resp.Type = wire.TPutAck
		n.handlePut(m, resp)
	case wire.TGet:
		resp.Type = wire.TGetResp
		n.handleGet(m, resp)
	case wire.TReplicate:
		n.handleReplicate(m)
		return // one-way: no response
	default:
		return // unknown request; nothing sensible to reply
	}
	n.tr.send(src, resp)
}

// answerFindSucc fills in one iterative lookup step for target: either
// the final answer (Done) or the closest preceding contact from the
// node's fingers, successor list, and auxiliary neighbors.
func (n *Node) answerFindSucc(target id.ID, resp *wire.Message) {
	if target == n.self.ID || n.ownsKey(target) {
		resp.Done, resp.Found = true, n.self
		return
	}
	s := n.tbl.successor()
	if s.ID == n.self.ID {
		// Ring of one: every key is ours.
		resp.Done, resp.Found = true, n.self
		return
	}
	if n.cfg.Space.BetweenIncl(target, n.self.ID, s.ID) {
		resp.Done, resp.Found = true, s
		return
	}
	next := n.tbl.closestPreceding(target)
	if next.ID == n.self.ID {
		// Defensive: cannot happen while a distinct successor exists,
		// but never redirect a caller to ourselves.
		resp.Done, resp.Found = true, s
		return
	}
	resp.Next = next
}

// FindSuccessor resolves the node responsible for target by driving the
// iterative lookup: pick the closest preceding contact from local state
// (auxiliary neighbors included — a cache hit short-circuits the whole
// walk), then follow each callee's answer until one reports Done. The
// hop count is the number of lookup RPCs issued, 0 when local state
// resolves the target outright.
func (n *Node) FindSuccessor(target id.ID) (wire.Contact, int, error) {
	if target == n.self.ID || n.ownsKey(target) {
		return n.self, 0, nil
	}
	s := n.tbl.successor()
	if s.ID == n.self.ID {
		return n.self, 0, nil
	}
	if n.cfg.Space.BetweenIncl(target, n.self.ID, s.ID) {
		return s, 0, nil
	}
	cur := n.tbl.closestPreceding(target)
	for hops := 0; hops < n.cfg.MaxLookupHops; {
		resp, err := n.call(cur.Addr, &wire.Message{Type: wire.TFindSucc, Target: target})
		hops++
		if err != nil {
			// The contact is unreachable: retire it from the routing
			// state so the maintenance loops repair around it.
			n.tbl.removeAux(cur.ID)
			n.tbl.dropSuccessor(cur.ID)
			return wire.Contact{}, hops, fmt.Errorf("node: lookup %d at %v: %w", target, cur, err)
		}
		n.tbl.noteContact(resp.From)
		if resp.Done {
			if resp.Found.IsZero() {
				return wire.Contact{}, hops, fmt.Errorf("node: lookup %d: empty answer from %v", target, cur)
			}
			n.tbl.noteContact(resp.Found)
			return resp.Found, hops, nil
		}
		if resp.Next.IsZero() || resp.Next.ID == cur.ID {
			return wire.Contact{}, hops, fmt.Errorf("node: lookup %d: no progress at %v", target, cur)
		}
		n.tbl.noteContact(resp.Next)
		cur = resp.Next
	}
	return wire.Contact{}, n.cfg.MaxLookupHops, fmt.Errorf("node: lookup %d: exceeded %d hops", target, n.cfg.MaxLookupHops)
}

// Lookup is FindSuccessor for application traffic: the looked-up key is
// recorded in the frequency observer (the input to auxiliary selection,
// Section III of the paper) and the hop count feeds the node's metrics.
//
// The observer sees the key's own ring position, not the owner's node
// id: auxiliary selection then optimizes for the item access
// distribution the data plane actually produces. When a selected
// position has no node on it, recomputeAux aliases the aux pointer to
// the key's owner through the owner-hint cache recorded here — the
// pointer sits exactly at the hot key, so closestPreceding picks it for
// that key's lookups and the owner finishes them in one hop via its
// ownership check. For lookups whose key is a node id (the control
// plane's joins and finger fixes), position and owner coincide and the
// behavior is unchanged.
func (n *Node) Lookup(key id.ID) (wire.Contact, int, error) {
	owner, hops, err := n.FindSuccessor(key)
	if err != nil {
		n.lookupFails.Add(1)
		return owner, hops, err
	}
	n.lookups.Add(1)
	n.lookupHops.Add(uint64(hops))
	if owner.ID != n.self.ID {
		n.maintMu.Lock()
		n.maint.Observe(key)
		n.maintMu.Unlock()
		if owner.Addr != "" {
			n.ownerHints.Put(key, owner, time.Now())
		}
	}
	return owner, hops, nil
}

// stabilize runs one maintenance round: refresh the successor (adopting
// its predecessor when that node sits between), notify it, rebuild the
// successor list from its list, and ping the predecessor and every
// auxiliary entry — Section III's point that auxiliary neighbors ride
// the same ping process as core ones. Each round ends with a heal
// probe (healProbe) so rings separated by a network partition find each
// other again once it lifts.
func (n *Node) stabilize() {
	defer n.healProbe()
	s := n.tbl.successor()
	if s.ID == n.self.ID {
		// Ring of one: adopt any known predecessor as successor.
		if p, ok := n.tbl.predecessor(); ok && p.ID != n.self.ID {
			n.tbl.adoptSuccessor(p)
		}
		return
	}
	resp, err := n.call(s.Addr, &wire.Message{Type: wire.TGetPred})
	if err != nil {
		n.tbl.dropSuccessor(s.ID)
		return
	}
	cand := s
	if resp.HasPred && resp.Pred.ID != n.self.ID && resp.Pred.Addr != "" &&
		n.cfg.Space.Between(resp.Pred.ID, n.self.ID, s.ID) {
		// A closer successor exists — verify it answers before
		// adopting it (chordproto consults liveness here too).
		if _, err := n.call(resp.Pred.Addr, &wire.Message{Type: wire.TPing}); err == nil {
			n.tbl.adoptSuccessor(resp.Pred)
			cand = resp.Pred
		}
	}
	if _, err := n.call(cand.Addr, &wire.Message{Type: wire.TNotify}); err != nil {
		n.tbl.dropSuccessor(cand.ID)
		return
	}
	// Successor-list refresh: our successor first, then its list.
	list := make([]wire.Contact, 0, n.cfg.SuccessorListLen+2)
	list = append(list, cand)
	if cand.ID != s.ID {
		list = append(list, s)
	}
	list = append(list, resp.Succs...)
	n.tbl.setSuccs(list)

	// Predecessor liveness.
	if p, ok := n.tbl.predecessor(); ok && p.ID != n.self.ID && p.Addr != "" {
		if _, err := n.call(p.Addr, &wire.Message{Type: wire.TPing}); err != nil {
			n.tbl.clearPred()
		}
	}
	// Auxiliary liveness pings.
	for _, a := range n.tbl.auxList() {
		if _, err := n.call(a.Addr, &wire.Message{Type: wire.TPing}); err != nil {
			n.tbl.removeAux(a.ID)
		}
	}
	// Push owned items to any new replica holders right away instead of
	// waiting out the replication tick.
	n.replicateOnSuccChange()
}

// healProbe pings one random contact from the address cache and, if it
// answers and sits between this node and its current successor, adopts
// it as the new successor. This is the partition-repair mechanism:
// stabilize and notify only ever talk to nodes already in the routing
// state, so two rings that diverged while a partition was up would
// otherwise never re-merge — every node of each ring is perfectly happy
// with its own subring. The cache still remembers contacts from before
// the split, and once a single probe re-adopts a cross-ring successor,
// the ordinary stabilize/notify rounds propagate the merge exactly as
// they integrate concurrent joins. A node that has collapsed to a ring
// of one adopts any live probed contact, which also re-enters a node
// that was fully isolated.
//
// The probe is a single attempt (no retries) so a dead or unreachable
// cache entry costs at most one RPCTimeout per stabilize round.
func (n *Node) healProbe() {
	if n.cfg.DisableHealProbe {
		return
	}
	c, ok := n.tbl.randomCached(n.probeRNG)
	if !ok {
		return
	}
	resp, err := n.tr.call(c.Addr, &wire.Message{Type: wire.TPing}, n.cfg.RPCTimeout, 0)
	if err != nil {
		return
	}
	live := resp.From
	if live.IsZero() || live.ID == n.self.ID || live.Addr == "" {
		return
	}
	n.tbl.noteContact(live)
	s := n.tbl.successor()
	if s.ID == n.self.ID || n.cfg.Space.Between(live.ID, n.self.ID, s.ID) {
		n.tbl.adoptSuccessor(live)
	}
}

// fixNextFinger refreshes one finger per tick, round-robin: finger i is
// the first node in (self+2^i, self+2^{i+1}], found with an iterative
// lookup; an out-of-interval answer clears the entry (chordproto's
// interval rule).
func (n *Node) fixNextFinger() {
	n.maintMu.Lock()
	i := n.nextFinger
	n.nextFinger = (n.nextFinger + 1) % n.cfg.Space.Bits()
	n.maintMu.Unlock()
	space := n.cfg.Space
	start := space.Add(n.self.ID, (uint64(1)<<i)+1)
	c, _, err := n.FindSuccessor(start)
	if err != nil {
		return
	}
	g := space.Gap(n.self.ID, c.ID)
	if c.ID != n.self.ID && g > uint64(1)<<i && g <= uint64(1)<<(i+1) {
		n.tbl.setFinger(i, c, true)
	} else {
		n.tbl.setFinger(i, wire.Contact{}, false)
	}
}

// RecomputeAux recomputes the auxiliary neighbor set from the observed
// frequencies immediately (the ticker does the same on AuxEvery, plus a
// window rotation). It reports how many of the selected ids were
// routable; ids whose address the node has never learned are skipped.
func (n *Node) RecomputeAux() (int, error) {
	return n.recomputeAux(false)
}

func (n *Node) recomputeAux(rotate bool) (int, error) {
	coreIDs := n.tbl.coreIDs()
	sort.Slice(coreIDs, func(i, j int) bool { return coreIDs[i] < coreIDs[j] })
	n.maintMu.Lock()
	if !slices.Equal(coreIDs, n.lastCore) {
		// SetCore invalidates the maintainer's drift cache, so only
		// report genuine core changes.
		if err := n.maint.SetCore(coreIDs); err != nil {
			n.maintMu.Unlock()
			return 0, err
		}
		n.lastCore = coreIDs
	}
	res, err := n.maint.Select()
	if rotate {
		n.window.Rotate()
	}
	n.maintMu.Unlock()
	if err != nil {
		if err == core.ErrNoNeighbors {
			return 0, nil // nothing observed and no core yet; keep waiting
		}
		return 0, err
	}
	aux := make([]wire.Contact, 0, len(res.Aux))
	now := time.Now()
	for _, a := range res.Aux {
		if addr, ok := n.tbl.addrOf(a); ok {
			aux = append(aux, wire.Contact{ID: a, Addr: addr})
			continue
		}
		// The selected id is a key's ring position, not a node the
		// table knows: alias the aux pointer to the key's owner. The
		// entry sits exactly at the hot key, so closestPreceding picks
		// it for that key's lookups and the owner's ownership check
		// finishes them in one hop.
		if owner, ok := n.ownerHints.Get(a, now); ok {
			aux = append(aux, wire.Contact{ID: a, Addr: owner.Addr})
		}
	}
	n.tbl.setAux(aux)
	n.auxRecomps.Add(1)
	return len(aux), nil
}
