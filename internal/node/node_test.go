package node

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"testing"
	"time"

	"peercache/internal/id"
	"peercache/internal/randx"
	"peercache/internal/wire"
)

// fastConfig returns timings tuned for loopback tests: tight maintenance
// periods, short RPC timeouts.
func fastConfig(space id.Space, x id.ID) Config {
	return Config{
		Space:           space,
		ID:              x,
		Addr:            "127.0.0.1:0",
		StabilizeEvery:  50 * time.Millisecond,
		FixFingersEvery: 10 * time.Millisecond,
		RPCTimeout:      250 * time.Millisecond,
		RPCRetries:      2,
	}
}

// startCluster boots one node per id on loopback, joining everyone
// through the first. Cleanup closes all of them.
func startCluster(t *testing.T, space id.Space, ids []uint64, mod func(*Config)) []*Node {
	t.Helper()
	nodes := make([]*Node, 0, len(ids))
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Close()
		}
	})
	for i, x := range ids {
		cfg := fastConfig(space, id.ID(x))
		if mod != nil {
			mod(&cfg)
		}
		n, err := Start(cfg)
		if err != nil {
			t.Fatalf("start node %d: %v", x, err)
		}
		nodes = append(nodes, n)
		if i > 0 {
			if err := n.Join(nodes[0].Addr()); err != nil {
				t.Fatalf("join node %d: %v", x, err)
			}
		}
	}
	return nodes
}

// expectedFingers computes the converged finger list of x over the given
// sorted ring, with the protocol's interval rule and consecutive-dup
// elision (the same derivation chordproto's tests make via the oracle).
func expectedFingers(space id.Space, ring []id.ID, x id.ID) []id.ID {
	var out []id.ID
	for i := uint(0); i < space.Bits(); i++ {
		var best id.ID
		bestGap := uint64(0)
		found := false
		for _, y := range ring {
			g := space.Gap(x, y)
			if g > uint64(1)<<i && g <= uint64(1)<<(i+1) {
				if !found || g < bestGap {
					best, bestGap, found = y, g, true
				}
			}
		}
		if found && (len(out) == 0 || out[len(out)-1] != best) {
			out = append(out, best)
		}
	}
	return out
}

func contactIDs(cs []wire.Contact) []id.ID {
	out := make([]id.ID, len(cs))
	for i, c := range cs {
		out[i] = c.ID
	}
	return out
}

func idsEqual(a, b []id.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// waitConverged polls until every node's successor, predecessor, and
// finger table match the ideal ring, or the deadline passes.
func waitConverged(t *testing.T, space id.Space, nodes []*Node, deadline time.Duration) {
	t.Helper()
	ring := make([]id.ID, len(nodes))
	for i, n := range nodes {
		ring[i] = n.ID()
	}
	sort.Slice(ring, func(i, j int) bool { return ring[i] < ring[j] })
	pos := make(map[id.ID]int, len(ring))
	for i, x := range ring {
		pos[x] = i
	}
	check := func() error {
		for _, n := range nodes {
			i := pos[n.ID()]
			wantSucc := ring[(i+1)%len(ring)]
			wantPred := ring[(i+len(ring)-1)%len(ring)]
			if got := n.Successor(); got.ID != wantSucc {
				return fmt.Errorf("node %d successor %d, want %d", n.ID(), got.ID, wantSucc)
			}
			if p, ok := n.Predecessor(); !ok || p.ID != wantPred {
				return fmt.Errorf("node %d predecessor %v (%t), want %d", n.ID(), p.ID, ok, wantPred)
			}
			if got, want := contactIDs(n.Fingers()), expectedFingers(space, ring, n.ID()); !idsEqual(got, want) {
				return fmt.Errorf("node %d fingers %v, want %v", n.ID(), got, want)
			}
		}
		return nil
	}
	var last error
	for end := time.Now().Add(deadline); time.Now().Before(end); {
		if last = check(); last == nil {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("cluster did not converge: %v", last)
}

func TestTwoNodesFormRing(t *testing.T) {
	space := id.NewSpace(16)
	nodes := startCluster(t, space, []uint64{100, 40000}, nil)
	waitConverged(t, space, nodes, 10*time.Second)

	a, b := nodes[0], nodes[1]
	// Each resolves arbitrary keys to the correct owner.
	owner, _, err := a.Lookup(id.ID(200)) // (100, 40000] -> 40000
	if err != nil || owner.ID != b.ID() {
		t.Fatalf("lookup 200 from a: %v %v", owner, err)
	}
	owner, _, err = b.Lookup(id.ID(50000)) // wraps -> 100
	if err != nil || owner.ID != a.ID() {
		t.Fatalf("lookup 50000 from b: %v %v", owner, err)
	}
	// A node id resolves to that node itself.
	owner, _, err = a.Lookup(b.ID())
	if err != nil || owner.ID != b.ID() {
		t.Fatalf("lookup %d from a: %v %v", b.ID(), owner, err)
	}
}

func TestRingConvergesAndLooksUp(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node loopback test")
	}
	space := id.NewSpace(16)
	rng := rand.New(rand.NewSource(11))
	ids := randx.UniqueIDs(rng, 8, space.Size())
	nodes := startCluster(t, space, ids, nil)
	waitConverged(t, space, nodes, 30*time.Second)

	// Every node resolves every key deterministically to the ring
	// owner.
	ring := make([]id.ID, len(ids))
	for i, x := range ids {
		ring[i] = id.ID(x)
	}
	sort.Slice(ring, func(i, j int) bool { return ring[i] < ring[j] })
	// ownerOf is the first ring id clockwise from k, inclusive.
	ownerOf := func(k id.ID) id.ID {
		for _, x := range ring {
			if uint64(x) >= uint64(k) {
				return x
			}
		}
		return ring[0]
	}
	for _, n := range nodes {
		for q := 0; q < 20; q++ {
			k := id.ID(rng.Uint64() & (space.Size() - 1))
			owner, hops, err := n.Lookup(k)
			if err != nil {
				t.Fatalf("lookup %d from %d: %v", k, n.ID(), err)
			}
			if owner.ID != ownerOf(k) {
				t.Fatalf("lookup %d from %d: owner %d, want %d", k, n.ID(), owner.ID, ownerOf(k))
			}
			if hops > 8 {
				t.Fatalf("lookup %d from %d took %d hops in an 8-node ring", k, n.ID(), hops)
			}
		}
	}
}

// An RPC to a port nobody listens on must exhaust its retries and
// surface ErrTimeout, with the retry counter reflecting every attempt.
func TestRPCTimeoutAndRetry(t *testing.T) {
	space := id.NewSpace(8)
	cfg := fastConfig(space, 1)
	cfg.RPCTimeout = 60 * time.Millisecond
	cfg.RPCRetries = 2
	n, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	// Reserve a port and close it so nothing answers there.
	c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	dead := c.LocalAddr().String()
	c.Close()

	start := time.Now()
	_, err = n.call(dead, &wire.Message{Type: wire.TPing})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed < 3*cfg.RPCTimeout {
		t.Fatalf("gave up after %v, want >= %v (3 attempts)", elapsed, 3*cfg.RPCTimeout)
	}
	m := n.Metrics()
	if m.Retries < 2 || m.Timeouts < 3 {
		t.Fatalf("metrics retries=%d timeouts=%d, want >=2/>=3", m.Retries, m.Timeouts)
	}

	// Join through the dead address reports the failure.
	if err := n.Join(dead); err == nil {
		t.Fatal("join via dead bootstrap succeeded")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Start(Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
	if _, err := Start(Config{Space: id.NewSpace(8), ID: 1 << 9}); err == nil {
		t.Fatal("out-of-space id accepted")
	}
	if _, err := Start(Config{Space: id.NewSpace(8), ID: 1, AuxCount: -1}); err == nil {
		t.Fatal("negative aux count accepted")
	}
	if _, err := Start(Config{Space: id.NewSpace(8), ID: 1, SuccessorListLen: wire.MaxSuccs + 1}); err == nil {
		t.Fatal("oversized successor list accepted")
	}
}

// A node id that is already taken must be rejected at join time.
func TestJoinDetectsDuplicateID(t *testing.T) {
	space := id.NewSpace(16)
	nodes := startCluster(t, space, []uint64{7, 9}, nil)
	waitConverged(t, space, nodes, 10*time.Second)
	dup, err := Start(fastConfig(space, 7))
	if err != nil {
		t.Fatal(err)
	}
	defer dup.Close()
	if err := dup.Join(nodes[1].Addr()); err == nil {
		t.Fatal("duplicate id joined successfully")
	}
}
