package node

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"peercache/internal/id"
	"peercache/internal/wire"
)

// A ring of one owns everything: PUT and GET stay local, and a missing
// key is reported by the owner itself.
func TestKVSingleNode(t *testing.T) {
	space := id.NewSpace(16)
	n, err := Start(fastConfig(space, 100))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	put, err := n.Put(7, []byte("hello"))
	if err != nil {
		t.Fatalf("put: %v", err)
	}
	if put.Owner.ID != n.ID() || put.Version != 1 || put.Hops != 0 {
		t.Fatalf("put result %+v, want owner self, version 1, 0 hops", put)
	}
	// Overwrite bumps the version.
	if put, err = n.Put(7, []byte("hello2")); err != nil || put.Version != 2 {
		t.Fatalf("overwrite: %+v, %v, want version 2", put, err)
	}
	got, err := n.Get(7)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if !bytes.Equal(got.Value, []byte("hello2")) || got.Version != 2 || !got.Local {
		t.Fatalf("get result %+v, want hello2/v2 served locally", got)
	}
	if _, err := n.Get(8); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get of missing key: %v, want ErrNotFound", err)
	}

	// Bounds: oversized values and out-of-space keys are rejected before
	// any network traffic.
	if _, err := n.Put(7, make([]byte, wire.MaxValueLen+1)); !errors.Is(err, wire.ErrValueLen) {
		t.Fatalf("oversized put: %v, want ErrValueLen", err)
	}
	if _, err := n.Put(id.ID(space.Size()), []byte("x")); err == nil {
		t.Fatal("put with out-of-space key succeeded")
	}
	if _, err := n.Get(id.ID(space.Size())); err == nil {
		t.Fatal("get with out-of-space key succeeded")
	}

	m := n.Metrics()
	if m.ItemsOwned != 1 || m.PutsIssued != 2 || m.GetsIssued != 2 || m.StoreHits != 1 {
		t.Fatalf("metrics %+v", m)
	}
}

// PUT and GET route across the ring to the key's owner; a repeated GET
// is served from the requester's item cache without network traffic.
func TestKVAcrossRingAndCache(t *testing.T) {
	space := id.NewSpace(16)
	nodes := startCluster(t, space, []uint64{100, 20000, 40000}, nil)
	waitConverged(t, space, nodes, 10*time.Second)
	a, b := nodes[0], nodes[1]

	key := id.ID(10000) // (100, 20000] -> owned by b
	put, err := a.Put(key, []byte("routed"))
	if err != nil {
		t.Fatalf("put: %v", err)
	}
	if put.Owner.ID != b.ID() {
		t.Fatalf("put owner %d, want %d", put.Owner.ID, b.ID())
	}
	if v, ver, ok := b.store.get(key, time.Now()); !ok || !bytes.Equal(v, []byte("routed")) || ver != 1 {
		t.Fatalf("owner store holds %q/%d/%t", v, ver, ok)
	}

	got, err := a.Get(key)
	if err != nil || got.Local || !bytes.Equal(got.Value, []byte("routed")) {
		t.Fatalf("first get %+v, %v: want remote hit", got, err)
	}
	got, err = a.Get(key)
	if err != nil || !got.Local || !bytes.Equal(got.Value, []byte("routed")) {
		t.Fatalf("second get %+v, %v: want cached local hit", got, err)
	}
	if m := a.Metrics(); m.CacheHits != 1 || m.ItemsCached != 1 {
		t.Fatalf("metrics after cached get: %+v", m)
	}
	// A local PUT invalidates the cached copy, so the next GET sees the
	// new value immediately.
	if _, err := a.Put(key, []byte("routed2")); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	got, err = a.Get(key)
	if err != nil || got.Local || !bytes.Equal(got.Value, []byte("routed2")) {
		t.Fatalf("get after overwrite %+v, %v: want fresh remote value", got, err)
	}
	// >= rather than ==: a retried RPC (slow CI) is served twice.
	if m := b.Metrics(); m.PutsServed < 2 || m.GetsServed < 2 {
		t.Fatalf("owner served counters: %+v", m)
	}
}

// A full store refuses new keys and the refusal travels back over the
// wire as a failed PutAck.
func TestKVPutRejectedWhenStoreFull(t *testing.T) {
	space := id.NewSpace(16)
	nodes := startCluster(t, space, []uint64{100, 40000}, func(c *Config) {
		if c.ID == 40000 {
			c.StoreCapacity = 1
		}
		c.ReplicateEvery = -1 // keep the stores exactly as the PUTs leave them
	})
	waitConverged(t, space, nodes, 10*time.Second)
	a := nodes[0]

	if _, err := a.Put(1000, []byte("first")); err != nil { // owner: 40000
		t.Fatalf("first put: %v", err)
	}
	if _, err := a.Put(2000, []byte("second")); !errors.Is(err, ErrStoreFull) {
		t.Fatalf("second put: %v, want ErrStoreFull", err)
	}
	// Overwrites of stored keys are always accepted.
	if put, err := a.Put(1000, []byte("first2")); err != nil || put.Version != 2 {
		t.Fatalf("overwrite on full store: %+v, %v", put, err)
	}
}

// Owned items are replicated to the successor, and when the owner dies
// the successor promotes its replica and serves the key.
func TestKVReplicationSurvivesOwnerFailure(t *testing.T) {
	space := id.NewSpace(16)
	nodes := startCluster(t, space, []uint64{100, 20000, 40000}, func(c *Config) {
		c.ReplicateEvery = 100 * time.Millisecond
	})
	waitConverged(t, space, nodes, 10*time.Second)
	a, b, c := nodes[0], nodes[1], nodes[2]

	key := id.ID(10000) // owned by b (20000); replica goes to c (40000)
	if _, err := a.Put(key, []byte("durable")); err != nil {
		t.Fatalf("put: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, _, ok := c.store.get(key, time.Now()); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never reached successor: c metrics %+v", c.Metrics())
		}
		time.Sleep(20 * time.Millisecond)
	}

	b.Close()
	// The ring heals around the dead owner; c becomes responsible for
	// the key, promotes its replica, and answers a's GET.
	for {
		got, err := a.Get(key)
		if err == nil {
			if !bytes.Equal(got.Value, []byte("durable")) {
				t.Fatalf("recovered value %q", got.Value)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("key lost after owner failure: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	// Promotion needs c's predecessor pointer to heal around the dead
	// owner first, so it can lag the first successful GET (which a
	// replica answers just as well).
	for c.Metrics().Promotions == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("successor never promoted its replica: %+v", c.Metrics())
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// FindValue's probe frontier must rank the key's owner side early on
// chord's asymmetric clockwise metric. The metric measures routing
// progress toward the key, so the owner — sitting just past it — ranks
// as the farthest contact in the ring; ordered naively, the walk drains
// every predecessor (and the hop budget) before probing the one node
// that holds the value. With the hop budget clamped well below the node
// count, only owner-side ranking lets every lookup succeed.
func TestKVFindValueReachesOwnerWithinHopBudget(t *testing.T) {
	space := id.NewSpace(16)
	ids := []uint64{100, 2000, 7000, 11000, 16000, 21000, 25000, 29000,
		33000, 37000, 41000, 45000, 49000, 52000, 55000, 58000,
		60000, 61500, 63000, 64500}
	nodes := startCluster(t, space, ids, func(cfg *Config) {
		cfg.MaxLookupHops = 8 // log2(20) plus slack, far below n
		cfg.ItemCacheCapacity = -1
	})
	waitConverged(t, space, nodes, 30*time.Second)

	// One key per node range: each owner stores one value.
	for i, x := range ids {
		key := id.ID(x) // the owner's own id: owned by that node
		if _, err := nodes[(i+7)%len(nodes)].Put(key, []byte{byte(i)}); err != nil {
			t.Fatalf("put %d: %v", key, err)
		}
	}
	for i, x := range ids {
		key := id.ID(x)
		origin := nodes[(i+11)%len(nodes)]
		res, err := origin.FindValue(key)
		if err != nil {
			t.Fatalf("find-value %d from node %d: %v", key, origin.ID(), err)
		}
		if !bytes.Equal(res.Value, []byte{byte(i)}) {
			t.Fatalf("find-value %d: value %v, want %v", key, res.Value, []byte{byte(i)})
		}
	}
}

// A value-walk answerer advertises its successor neighborhood only
// when it actually sits in the key's neighborhood (its next hop for
// the key is terminal). A far node naming its own successors hands the
// walk overshoot contacts; the value-mode bidirectional metric ranks
// any contact just past the reader's own position as near-the-key, so
// a reader whose id sits shortly past the key would chase successor
// chains away from the owner until the hop budget burns out (seen
// live at n = 1024 before the next-hop gate existed).
func TestKVFindValueClosestGatesSuccessorAdvertisement(t *testing.T) {
	space := id.NewSpace(16)
	nodes := startCluster(t, space, []uint64{100, 20000, 40000}, nil)
	waitConverged(t, space, nodes, 10*time.Second)
	pred, far := nodes[0], nodes[2] // key 10000: owner 20000, predecessor 100

	key := id.ID(10000)
	m := &wire.Message{Key: key, From: wire.Contact{ID: 65535, Addr: "q"}}

	var resp wire.Message
	far.handleFindValue(m, &resp)
	if len(resp.Closest) == 0 {
		t.Fatalf("far node %d returned no contacts for key %d", far.ID(), key)
	}
	gapToKey := space.Gap(far.ID(), key)
	for _, c := range resp.Closest {
		if g := space.Gap(far.ID(), c.ID); g == 0 || g > gapToKey {
			t.Fatalf("far node %d advertised overshoot contact %d for key %d (closest %v)",
				far.ID(), c.ID, key, resp.Closest)
		}
	}

	resp = wire.Message{}
	pred.handleFindValue(m, &resp)
	named := make(map[id.ID]bool, len(resp.Closest))
	for _, c := range resp.Closest {
		named[c.ID] = true
	}
	if !named[20000] || !named[40000] {
		t.Fatalf("predecessor %d must name the key's owner and replica target, got %v",
			pred.ID(), resp.Closest)
	}
}
