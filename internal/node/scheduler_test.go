package node

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Both Scheduler implementations must run a job repeatedly and honor
// the two-phase Cancel/Wait stop.
func TestSchedulersRunAndStop(t *testing.T) {
	batch := NewBatchScheduler(4)
	defer batch.Close()
	for name, s := range map[string]Scheduler{
		"goTickers": goTickers{},
		"batch":     batch,
	} {
		var runs atomic.Int64
		h := s.Every(2*time.Millisecond, func() { runs.Add(1) })
		deadline := time.Now().Add(5 * time.Second)
		for runs.Load() < 3 {
			if time.Now().After(deadline) {
				t.Fatalf("%s: job ran %d times in 5s, want >= 3", name, runs.Load())
			}
			time.Sleep(time.Millisecond)
		}
		h.Cancel()
		h.Cancel() // idempotent
		h.Wait()
		stopped := runs.Load()
		time.Sleep(20 * time.Millisecond)
		if got := runs.Load(); got != stopped {
			t.Fatalf("%s: job ran %d more times after Cancel+Wait", name, got-stopped)
		}
	}
}

// Wait must block until an in-flight run has finished — a caller that
// returns from Cancel+Wait needs the guarantee that no job code is
// still executing (the node relies on this to tear down its transport
// safely).
func TestBatchSchedulerWaitCollectsInFlightRun(t *testing.T) {
	s := NewBatchScheduler(2)
	defer s.Close()

	started := make(chan struct{})
	release := make(chan struct{})
	var inFn atomic.Bool
	h := s.Every(time.Millisecond, func() {
		inFn.Store(true)
		started <- struct{}{}
		<-release
		inFn.Store(false)
	})

	<-started // a run is now blocked inside fn
	h.Cancel()
	waited := make(chan struct{})
	go func() {
		h.Wait()
		close(waited)
	}()
	select {
	case <-waited:
		t.Fatal("Wait returned while the run was still executing")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	select {
	case <-waited:
	case <-time.After(5 * time.Second):
		t.Fatal("Wait never returned after the run finished")
	}
	if inFn.Load() {
		t.Fatal("fn still marked in-flight after Wait")
	}
}

// A job must never overlap itself: a slow run delays the next one
// rather than stacking a second execution on another worker.
func TestBatchSchedulerNoSelfOverlap(t *testing.T) {
	s := NewBatchScheduler(8)
	defer s.Close()

	var concurrent, max atomic.Int64
	h := s.Every(time.Millisecond, func() {
		c := concurrent.Add(1)
		for {
			m := max.Load()
			if c <= m || max.CompareAndSwap(m, c) {
				break
			}
		}
		time.Sleep(3 * time.Millisecond) // slower than the period
		concurrent.Add(-1)
	})
	time.Sleep(50 * time.Millisecond)
	h.Cancel()
	h.Wait()
	if m := max.Load(); m != 1 {
		t.Fatalf("job overlapped itself: %d concurrent runs observed", m)
	}
}

// Many short jobs must share the fixed pool without loss, and Close
// must collect everything without deadlock while handles are being
// cancelled concurrently (run under -race).
func TestBatchSchedulerManyJobsAndClose(t *testing.T) {
	s := NewBatchScheduler(4)
	const jobs = 200
	var runs atomic.Int64
	handles := make([]JobHandle, jobs)
	for i := range handles {
		handles[i] = s.Every(2*time.Millisecond, func() { runs.Add(1) })
	}
	deadline := time.Now().Add(10 * time.Second)
	for runs.Load() < jobs { // every job fires at least... some do; pool keeps up
		if time.Now().After(deadline) {
			t.Fatalf("only %d runs across %d jobs in 10s", runs.Load(), jobs)
		}
		time.Sleep(time.Millisecond)
	}
	var wg sync.WaitGroup
	for _, h := range handles[:jobs/2] {
		wg.Add(1)
		go func(h JobHandle) {
			defer wg.Done()
			h.Cancel()
			h.Wait()
		}(h)
	}
	wg.Wait()
	s.Close()
	s.Close() // idempotent

	// A closed scheduler hands back inert handles.
	h := s.Every(time.Millisecond, func() { t.Error("job ran on a closed scheduler") })
	h.Cancel()
	h.Wait()
	time.Sleep(10 * time.Millisecond)
}
