package node

import (
	"math/rand"
	"testing"
	"time"

	"peercache/internal/id"
	"peercache/internal/randx"
)

// TestAuxReducesMeanHopsLive is the acceptance test for the live
// runtime: a 12-node UDP overlay on loopback converges, every node
// serves the same seeded Zipf query stream twice — first with core-only
// routing while the frequency observers accumulate, then after each
// node recomputes its optimal auxiliary set (eq. 1) from what it
// observed — and the measured mean hop count of the second pass must be
// strictly lower. This is the paper's claim exercised end to end over
// real sockets and real concurrency instead of the discrete-event
// engine.
func TestAuxReducesMeanHopsLive(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node loopback test")
	}
	const (
		numNodes = 12
		k        = 6
		alpha    = 1.2
		queries  = 1200
		seed     = 5
	)
	space := id.NewSpace(16)
	rng := rand.New(rand.NewSource(seed))
	ids := randx.UniqueIDs(rng, numNodes, space.Size())
	nodes := startCluster(t, space, ids, func(c *Config) {
		c.AuxCount = k
		// Recomputation is driven explicitly between the two passes so
		// both measure a fixed routing state.
		c.AuxEvery = 0
	})
	waitConverged(t, space, nodes, 60*time.Second)

	// Per-source Zipf destination mix over the other nodes, with a
	// node-specific popularity ranking (the experiment harness's
	// NumRankings idea): rank r of source i is destsByRank[i][r].
	alias := randx.NewAlias(randx.ZipfWeights(numNodes-1, alpha))
	destsByRank := make([][]id.ID, numNodes)
	for i := range nodes {
		others := make([]id.ID, 0, numNodes-1)
		for j, n := range nodes {
			if j != i {
				others = append(others, n.ID())
			}
		}
		perm := rng.Perm(len(others))
		ranked := make([]id.ID, len(others))
		for r, p := range perm {
			ranked[r] = others[p]
		}
		destsByRank[i] = ranked
	}
	type query struct {
		src    int
		target id.ID
	}
	stream := make([]query, queries)
	for q := range stream {
		src := q % numNodes
		stream[q] = query{src: src, target: destsByRank[src][alias.Sample(rng)]}
	}

	runStream := func(label string) (meanHops float64) {
		total := 0
		for _, q := range stream {
			owner, hops, err := nodes[q.src].Lookup(q.target)
			if err != nil {
				t.Fatalf("%s: lookup %d from node %d: %v", label, q.target, nodes[q.src].ID(), err)
			}
			if owner.ID != q.target {
				t.Fatalf("%s: lookup %d resolved to %d", label, q.target, owner.ID)
			}
			total += hops
		}
		return float64(total) / float64(len(stream))
	}

	coreOnly := runStream("core-only")
	for _, n := range nodes {
		if len(n.Aux()) != 0 {
			t.Fatalf("node %d has auxiliary neighbors before any recompute", n.ID())
		}
	}

	// Every node selects its auxiliary set from the traffic it just
	// observed and splices it into routing.
	installed := 0
	for _, n := range nodes {
		got, err := n.RecomputeAux()
		if err != nil {
			t.Fatalf("recompute aux at node %d: %v", n.ID(), err)
		}
		installed += got
	}
	if installed == 0 {
		t.Fatal("no node installed any auxiliary neighbor")
	}

	withAux := runStream("with-aux")

	t.Logf("mean hops: core-only %.4f, with %d aux %.4f (%d nodes, %d queries, %d aux entries installed)",
		coreOnly, k, withAux, numNodes, queries, installed)
	if !(withAux < coreOnly) {
		t.Fatalf("auxiliary neighbors did not reduce mean hops: core-only %.4f, with-aux %.4f", coreOnly, withAux)
	}

	// The caching layer must not have broken correctness or health.
	for _, n := range nodes {
		m := n.Metrics()
		if m.LookupFailures != 0 {
			t.Errorf("node %d: %d lookup failures", n.ID(), m.LookupFailures)
		}
		if m.DecodeErrors != 0 {
			t.Errorf("node %d: %d decode errors", n.ID(), m.DecodeErrors)
		}
	}
}

// The automatic recompute ticker must install auxiliary neighbors on
// its own once traffic flows — the fully autonomous mode cmd/p2pnode
// runs in.
func TestAuxTickerRecomputes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node loopback test")
	}
	space := id.NewSpace(16)
	rng := rand.New(rand.NewSource(9))
	// 16 nodes with a short successor list: the core set covers only
	// part of the ring, leaving genuinely cacheable destinations.
	ids := randx.UniqueIDs(rng, 16, space.Size())
	nodes := startCluster(t, space, ids, func(c *Config) {
		c.AuxCount = 3
		c.AuxEvery = 150 * time.Millisecond
		c.SuccessorListLen = 2
	})
	waitConverged(t, space, nodes, 30*time.Second)

	src := nodes[0]
	targets := make([]id.ID, 0, len(nodes)-1)
	for _, n := range nodes[1:] {
		targets = append(targets, n.ID())
	}
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		for _, target := range targets {
			if _, _, err := src.Lookup(target); err != nil {
				t.Fatalf("lookup %d: %v", target, err)
			}
		}
		if len(src.Aux()) > 0 && src.Metrics().AuxRecomputes > 0 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("aux ticker never installed neighbors: aux=%v recomputes=%d",
		src.Aux(), src.Metrics().AuxRecomputes)
}
