package node

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"peercache/internal/wire"
)

// Transport errors.
var (
	// ErrTimeout is returned by an RPC whose every attempt (initial
	// send plus retries) expired without a response.
	ErrTimeout = errors.New("node: rpc timed out")
	// ErrClosed is returned once the node has shut down.
	ErrClosed = errors.New("node: closed")
	// ErrCancelled is returned by a cancellable RPC whose cancel channel
	// closed before a response arrived (the α-parallel lookup driver
	// cancels the losing probes once one response settles a step).
	ErrCancelled = errors.New("node: rpc cancelled")
)

// transport owns the datagram endpoint: a single read loop decodes
// datagrams and routes responses to the inflight waiter registered under
// their MsgID, while requests go to the node's handler. RPCs are
// synchronous for the caller — register a waiter, send, block on the
// waiter channel with a timeout — but any number may be in flight
// concurrently, and the read loop itself never blocks on protocol work
// (handlers only touch local state and write one reply datagram).
//
// The transport is medium-agnostic: it speaks only PacketConn, so the
// same correlation/retry machinery runs unchanged over a real UDP
// socket or memnet's in-process fault-injecting switchboard.
type transport struct {
	conn PacketConn
	self wire.Contact
	// handler processes incoming requests; set before the read loop
	// starts and never changed.
	handler func(m *wire.Message, src string)

	mu       sync.Mutex
	inflight map[uint64]chan *wire.Message
	nextID   atomic.Uint64

	// onRTT, when set before start, receives one RTT sample per
	// completed RPC attempt: the elapsed time between an attempt's
	// datagram going out and its correlated response arriving,
	// attributed to the responder's contact. Retried attempts measure
	// from their own send, so a retry cannot inflate the sample.
	onRTT func(from wire.Contact, sample time.Duration)

	done   chan struct{}
	closed atomic.Bool
	wg     sync.WaitGroup

	// Counters, all atomic; surfaced through Node.Metrics.
	datagramsIn  atomic.Uint64
	datagramsOut atomic.Uint64
	bytesIn      atomic.Uint64
	bytesOut     atomic.Uint64
	decodeErrs   atomic.Uint64
	rpcs         atomic.Uint64
	retries      atomic.Uint64
	timeouts     atomic.Uint64
}

// encBufs recycles encode buffers across sends. Both datagram writers
// (real UDP sockets and memnet endpoints) copy the payload before
// WriteTo returns, so a buffer can go back in the pool immediately
// after the write; without this every datagram — including each hop of
// every lookup — allocated its own encode buffer, the top allocation
// site in the 1k-node live-bench profile.
var encBufs = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 256)
		return &b
	},
}

func newTransport(conn PacketConn, self wire.Contact, handler func(*wire.Message, string)) *transport {
	return &transport{
		conn:     conn,
		self:     self,
		handler:  handler,
		inflight: make(map[uint64]chan *wire.Message),
		done:     make(chan struct{}),
	}
}

// start launches the read loop. Separate from construction so the
// owning Node can finish wiring itself up before the first datagram can
// reach the handler.
func (t *transport) start() {
	t.wg.Add(1)
	go t.readLoop()
}

// readLoop is the node's only endpoint reader. A response datagram
// claims (and deregisters) its waiter; delivery cannot block because
// each waiter channel has capacity 1 and is sent to at most once —
// whoever deletes the map entry owns the send.
func (t *transport) readLoop() {
	defer t.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, src, err := t.conn.ReadFrom(buf)
		if err != nil {
			if t.closed.Load() || errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		t.datagramsIn.Add(1)
		t.bytesIn.Add(uint64(n))
		m, err := wire.Decode(buf[:n])
		if err != nil {
			t.decodeErrs.Add(1)
			continue
		}
		if m.Type.IsResponse() {
			t.mu.Lock()
			ch, ok := t.inflight[m.MsgID]
			if ok {
				delete(t.inflight, m.MsgID)
			}
			t.mu.Unlock()
			if ok {
				ch <- m
			}
			continue
		}
		t.handler(m, src)
	}
}

// send encodes and writes one datagram, returning the bytes written (0
// when the send failed — over a datagram network a lost send and a lost
// packet are the same event, and the caller's timeout handles both; the
// byte count exists so per-plane accounting like the replication
// counters can attribute traffic without re-encoding).
func (t *transport) send(dst string, m *wire.Message) int {
	bp := encBufs.Get().(*[]byte)
	b, err := wire.AppendEncode((*bp)[:0], m)
	if err != nil {
		encBufs.Put(bp)
		return 0
	}
	sent := 0
	if _, err := t.conn.WriteTo(b, dst); err == nil {
		t.datagramsOut.Add(1)
		t.bytesOut.Add(uint64(len(b)))
		sent = len(b)
	}
	*bp = b[:0]
	encBufs.Put(bp)
	return sent
}

// call performs one RPC: it fills in From and a fresh MsgID, sends, and
// waits up to timeout for the paired response, retrying up to retries
// further times. Each attempt uses a new MsgID, so a response straggling
// in after its attempt timed out finds no waiter and is dropped rather
// than being mistaken for an answer to the retry. (The same rule also
// makes duplicated datagrams harmless: the second copy of a response
// finds its waiter already claimed and is discarded.)
func (t *transport) call(addr string, req *wire.Message, timeout time.Duration, retries int) (*wire.Message, error) {
	return t.callCancel(addr, req, timeout, retries, nil)
}

// callCancel is call with a cancellation channel: when cancel closes
// before a response arrives, the attempt's inflight entry is
// deregistered and ErrCancelled returned immediately — no retries. A
// response straggling in after cancellation finds no waiter and is
// dropped by the read loop, so cancelled probes can never leak inflight
// entries or deliver into a dead lookup. A nil cancel never fires.
func (t *transport) callCancel(addr string, req *wire.Message, timeout time.Duration, retries int, cancel <-chan struct{}) (*wire.Message, error) {
	if t.closed.Load() {
		return nil, ErrClosed
	}
	req.From = t.self
	want := req.Type.Response()
	t.rpcs.Add(1)
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for attempt := 0; ; attempt++ {
		msgID := t.nextID.Add(1)
		req.MsgID = msgID
		bp := encBufs.Get().(*[]byte)
		b, err := wire.AppendEncode((*bp)[:0], req)
		if err != nil {
			encBufs.Put(bp)
			return nil, err // malformed request: retrying cannot help
		}
		ch := make(chan *wire.Message, 1)
		t.mu.Lock()
		t.inflight[msgID] = ch
		t.mu.Unlock()
		deregister := func() {
			t.mu.Lock()
			delete(t.inflight, msgID)
			t.mu.Unlock()
		}
		sentAt := time.Now()
		_, werr := t.conn.WriteTo(b, addr)
		n := len(b)
		*bp = b[:0]
		encBufs.Put(bp)
		if werr != nil {
			deregister()
			if t.closed.Load() {
				return nil, ErrClosed
			}
			return nil, fmt.Errorf("node: rpc %v to %s: %w", req.Type, addr, werr)
		}
		t.datagramsOut.Add(1)
		t.bytesOut.Add(uint64(n))
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(timeout)
		select {
		case resp := <-ch:
			if resp.Type != want {
				deregister()
				return nil, fmt.Errorf("node: rpc %v to %s: got %v response", req.Type, addr, resp.Type)
			}
			if t.onRTT != nil {
				t.onRTT(resp.From, time.Since(sentAt))
			}
			return resp, nil
		case <-timer.C:
			deregister()
			t.timeouts.Add(1)
		case <-cancel:
			deregister()
			return nil, ErrCancelled
		case <-t.done:
			deregister()
			return nil, ErrClosed
		}
		if attempt >= retries {
			return nil, fmt.Errorf("node: rpc %v to %s after %d attempts: %w", req.Type, addr, attempt+1, ErrTimeout)
		}
		t.retries.Add(1)
	}
}

// inflightLen reports the number of registered RPC waiters — every
// entry belongs to an attempt that is still blocked in callCancel, so
// anything else (a cancelled or timed-out probe, say) leaking an entry
// is a bug the regression tests check for.
func (t *transport) inflightLen() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.inflight)
}

// close shuts the endpoint down and waits for the read loop to exit.
// Ordering matters: done is closed first so every blocked call returns
// ErrClosed immediately, then the endpoint close unblocks the read
// loop's ReadFrom; only then does close return, guaranteeing no
// transport goroutine survives it.
func (t *transport) close() error {
	if t.closed.Swap(true) {
		return nil
	}
	close(t.done)
	err := t.conn.Close()
	t.wg.Wait()
	return err
}
