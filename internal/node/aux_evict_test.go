// Aux eviction bound under a crashed target, table-driven over both
// geometries. External test package: the soak clock (internal/soak)
// imports internal/cluster which imports internal/node, so these tests
// must sit outside package node to avoid the cycle — which also pins
// that the whole scenario is expressible through the exported API.
package node_test

import (
	"fmt"
	"testing"
	"time"

	"peercache/internal/cluster"
	"peercache/internal/id"
	"peercache/internal/memnet"
	"peercache/internal/node"
	"peercache/internal/node/chordring"
	"peercache/internal/node/kadring"
	"peercache/internal/node/pastryring"
	"peercache/internal/node/ring"
	"peercache/internal/soak"
)

// evictGeometries mirrors the package-internal table in
// aux_splice_test.go for the external tests here, plus the geometry's
// full-knowledge wait: successor/predecessor agreement where the ring
// accessors coincide (Chord, Pastry), the bucket-coverage oracle for
// Kademlia (four nodes fit every region into the default bucket size,
// so the oracle demands complete mutual knowledge).
var evictGeometries = []struct {
	name    string
	factory ring.Factory
	wait    func(t *testing.T, clock *soak.Clock, nodes []*node.Node)
}{
	{"chord", chordring.New, waitRingFormed},
	{"pastry", pastryring.New, waitRingFormed},
	{"kademlia", kadring.New, waitBucketsFormed},
}

// waitBucketsFormed polls under the soak clock until the nodes satisfy
// the Kademlia expected-bucket-coverage oracle.
func waitBucketsFormed(t *testing.T, clock *soak.Clock, nodes []*node.Node) {
	t.Helper()
	space := id.NewSpace(16)
	err := clock.WaitUntil(2000, func() error {
		return cluster.CheckKademliaConverged(space, nodes, kadring.DefaultBucketSize)
	})
	if err != nil {
		t.Fatalf("buckets did not form: %v", err)
	}
}

func startEvictNode(t *testing.T, nw *memnet.Network, space id.Space, x uint64, factory ring.Factory, bootstrap string) *node.Node {
	t.Helper()
	n, err := node.Start(node.Config{
		Space:            space,
		ID:               id.ID(x),
		Addr:             fmt.Sprintf("mem/%d", x),
		NewRing:          factory,
		AuxCount:         2,
		StabilizeEvery:   25 * time.Millisecond,
		FixFingersEvery:  5 * time.Millisecond,
		RPCTimeout:       100 * time.Millisecond,
		RPCRetries:       1,
		Listen:           func(addr string) (node.PacketConn, error) { return nw.Listen(addr) },
		DisableHealProbe: true, // the crashed target must stay gone
	})
	if err != nil {
		t.Fatalf("start %d: %v", x, err)
	}
	t.Cleanup(func() { n.Close() })
	if bootstrap != "" {
		if err := n.Join(bootstrap); err != nil {
			t.Fatalf("join %d: %v", x, err)
		}
	}
	return n
}

// waitRingFormed polls under the soak clock until each node's nearest
// neighbors match the sorted ring (the accessors coincide across
// geometries, so the wait is protocol-blind).
func waitRingFormed(t *testing.T, clock *soak.Clock, nodes []*node.Node) {
	t.Helper()
	ring := make([]id.ID, len(nodes))
	for i, n := range nodes {
		ring[i] = n.ID()
	}
	for i := 1; i < len(ring); i++ {
		for j := i; j > 0 && ring[j] < ring[j-1]; j-- {
			ring[j], ring[j-1] = ring[j-1], ring[j]
		}
	}
	pos := make(map[id.ID]int, len(ring))
	for i, x := range ring {
		pos[x] = i
	}
	err := clock.WaitUntil(2000, func() error {
		for _, n := range nodes {
			i := pos[n.ID()]
			if got := n.Successor(); got.ID != ring[(i+1)%len(ring)] {
				return fmt.Errorf("node %d successor %d", n.ID(), got.ID)
			}
			if p, ok := n.Predecessor(); !ok || p.ID != ring[(i+len(ring)-1)%len(ring)] {
				return fmt.Errorf("node %d predecessor %v (%t)", n.ID(), p.ID, ok)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("ring did not form: %v", err)
	}
}

// auxEntryAt reports whether n has an auxiliary entry routed at addr.
func auxEntryAt(n *node.Node, addr string) bool {
	for _, a := range n.Aux() {
		if a.Addr == addr {
			return true
		}
	}
	return false
}

// When the node behind an installed auxiliary pointer crashes, the
// entry must be evicted within a bounded number of steps AND stay out
// across explicit recomputes: the stabilize ping that detects the dead
// target also retires the contact-cache and owner-hint state the
// pointer was installed from, so a recompute cannot reinstall the dead
// address from a stale cache — the evict/reinstall livelock this test
// exists to catch. All budgets are soak-clock steps, not ad-hoc
// sleeps.
func TestAuxEvictionBoundWhenTargetCrashes(t *testing.T) {
	for _, g := range evictGeometries {
		g := g
		t.Run(g.name, func(t *testing.T) {
			clock := soak.NewClock(10 * time.Millisecond)
			nw := memnet.New(11)
			space := id.NewSpace(16)
			// Key 35000's owner is node 40000 in all three geometries:
			// Chord takes the first node clockwise from the key, Pastry
			// the numerically closest, Kademlia the XOR-closest
			// (35000 XOR 40000 = 5368, the smallest of the four). From
			// node 1000 the key is neither in the successor interval nor
			// adjacent, so lookups for it route — and the aux splice
			// matters.
			const hotKey = id.ID(35000)
			a := startEvictNode(t, nw, space, 1000, g.factory, "")
			b := startEvictNode(t, nw, space, 20000, g.factory, a.Addr())
			c := startEvictNode(t, nw, space, 40000, g.factory, a.Addr())
			d := startEvictNode(t, nw, space, 50000, g.factory, a.Addr())
			g.wait(t, clock, []*node.Node{a, b, c, d})

			// Make the key hot at a, then recompute until the
			// owner-aliased aux pointer {hotKey -> c's address} is
			// installed. The install itself may need a few rounds (the
			// hint cache fills from the lookups).
			if err := clock.WaitUntil(500, func() error {
				if _, _, err := a.Lookup(hotKey); err != nil {
					return fmt.Errorf("lookup: %w", err)
				}
				if _, err := a.RecomputeAux(); err != nil {
					return fmt.Errorf("recompute: %w", err)
				}
				if !auxEntryAt(a, c.Addr()) {
					return fmt.Errorf("aux %v lacks alias to %s", a.Aux(), c.Addr())
				}
				return nil
			}); err != nil {
				t.Fatalf("aux pointer never installed: %v", err)
			}

			if err := c.Crash(); err != nil {
				t.Fatalf("crash: %v", err)
			}

			// Eviction bound: the stabilize round pings the aux entry,
			// fails, and retires it. 200 steps (2s) covers several ping
			// timeouts with margin; the point is that the bound exists.
			if err := clock.WaitUntil(200, func() error {
				if auxEntryAt(a, c.Addr()) {
					return fmt.Errorf("dead aux %s still installed", c.Addr())
				}
				return nil
			}); err != nil {
				t.Fatalf("aux entry not evicted within bound: %v", err)
			}

			// Bounded means once, not once per recompute: explicit
			// recomputes — with the key still hot in the observation
			// window — must not resurrect the dead address from the
			// contact or owner-hint caches.
			for i := 0; i < 5; i++ {
				if _, err := a.RecomputeAux(); err != nil {
					t.Fatalf("recompute %d: %v", i, err)
				}
				if auxEntryAt(a, c.Addr()) {
					t.Fatalf("recompute %d reinstalled dead aux %s", i, c.Addr())
				}
				clock.Step()
			}

			// The overlay itself must have recovered: the hot key's
			// lookups re-resolve to the new owner (d in Chord — the
			// next node clockwise; b or d in Pastry by closeness; d in
			// Kademlia — XOR-closest survivor), and any re-aliased aux
			// entry points at a live node.
			if err := clock.WaitUntil(500, func() error {
				owner, _, err := a.Lookup(hotKey)
				if err != nil {
					return err
				}
				if owner.ID == c.ID() {
					return fmt.Errorf("lookup still resolves to crashed node %d", owner.ID)
				}
				return nil
			}); err != nil {
				t.Fatalf("lookup never recovered past the crashed owner: %v", err)
			}
			if auxEntryAt(a, c.Addr()) {
				t.Fatalf("post-recovery aux still aliases the dead address: %v", a.Aux())
			}
		})
	}
}
