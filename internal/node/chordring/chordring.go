// Package chordring is the Chord geometry of the live node runtime: the
// successor list, predecessor pointer, and finger table that
// internal/node embedded directly before the ring.Routing split, now
// behind the protocol-agnostic contract. The runtime drives it with
// tickers (Stabilize, RepairTable) and iterative lookups (NextHop); the
// paired aux maintainer wraps core.ChordMaintainer, the paper's
// selection policy for the ring distance metric, over a rotating
// frequency window.
package chordring

import (
	"fmt"
	"sort"
	"sync"

	"peercache/internal/core"
	"peercache/internal/freq"
	"peercache/internal/id"
	"peercache/internal/node/ring"
	"peercache/internal/wire"
)

// Ring is the Chord routing state plus the maintenance protocol over
// it. Methods take the lock briefly and perform I/O only through the
// Host, so the runtime may call them from the read loop (NextHop, Owns,
// HandleRequest) and its tickers concurrently.
type Ring struct {
	h       ring.Host
	space   id.Space
	self    wire.Contact
	maxHops int

	mu      sync.RWMutex
	succs   []wire.Contact // nearest first; never empty (falls back to self)
	maxSucc int
	pred    wire.Contact
	hasPred bool

	fingers   []wire.Contact // fingers[i] covers (self+2^i, self+2^{i+1}]
	hasFinger []bool

	aux []wire.Contact // auxiliary neighbors, the paper's A_s

	nextFinger  uint // round-robin cursor for RepairTable
	repairBatch int  // fingers refreshed per RepairTable call
}

// New builds the Chord geometry and its drift-gated selection
// maintainer. It is the default ring.Factory of node.Config.
func New(h ring.Host, o ring.Options) (ring.Routing, ring.AuxMaintainer, error) {
	space, self := h.Space(), h.Self()
	batch := o.RepairBatch
	if batch < 1 {
		batch = 1
	}
	if batch > int(space.Bits()) {
		batch = int(space.Bits())
	}
	r := &Ring{
		h:           h,
		space:       space,
		self:        self,
		maxHops:     o.MaxLookupHops,
		succs:       []wire.Contact{self},
		maxSucc:     o.NeighborListLen,
		fingers:     make([]wire.Contact, space.Bits()),
		hasFinger:   make([]bool, space.Bits()),
		repairBatch: batch,
	}
	window := freq.NewWindowed(o.WindowBuckets)
	m, err := core.NewChordMaintainerWithCounter(space, self.ID, nil, o.AuxCount, o.DriftThreshold, window)
	if err != nil {
		return nil, nil, err
	}
	return r, &auxPolicy{m: m, window: window, space: space, self: self.ID, k: o.AuxCount}, nil
}

// Protocol implements ring.Routing.
func (r *Ring) Protocol() string { return "chord" }

// Join enters the overlay through a peer listening at bootstrap: an
// iterative find-successor for the node's own id yields its successor;
// stabilization then integrates the node into the ring, exactly as in
// chordproto.Join.
func (r *Ring) Join(bootstrap string) error {
	cur := bootstrap
	for hops := 0; hops <= r.maxHops; hops++ {
		resp, err := r.h.Call(cur, &wire.Message{Type: wire.TFindSucc, Target: r.self.ID})
		if err != nil {
			return fmt.Errorf("chordring: join via %s: %w", bootstrap, err)
		}
		r.h.Note(resp.From)
		if resp.Done {
			if resp.Found.ID == r.self.ID {
				if resp.Found.Addr != "" && resp.Found.Addr != r.self.Addr {
					return fmt.Errorf("chordring: join: id %d already taken by %s", r.self.ID, resp.Found.Addr)
				}
				// The walk resolved to this node's own contact: the
				// overlay learned the joiner mid-walk (request
				// envelopes carry From, and gossip spreads it) and the
				// last hop routed its id straight back. Not a
				// collision — adopt the answering node as the
				// provisional successor and let stabilization settle
				// the exact position.
				if !resp.From.IsZero() && resp.From.ID != r.self.ID {
					if r.successorVia(resp.From) {
						return nil
					}
					r.adoptSuccessor(resp.From)
					return nil
				}
				if r.successorVia(wire.Contact{Addr: bootstrap}) {
					return nil
				}
				return fmt.Errorf("chordring: join via %s: resolved to self with no usable peer", bootstrap)
			}
			r.adoptSuccessor(resp.Found)
			return nil
		}
		if resp.Next.IsZero() || resp.Next.Addr == cur {
			return fmt.Errorf("chordring: join via %s: no progress at %s", bootstrap, cur)
		}
		if resp.Next.ID == r.self.ID || resp.Next.Addr == r.self.Addr {
			// The walk is being funneled back at the joiner itself: a
			// previous incarnation at (or aliased to) this position left
			// stale aux or finger pointers behind, and following them
			// would make a freshly reborn ring-of-one claim the whole
			// keyspace. Repair sideways instead: take the redirecting
			// peer's successor list and adopt the closest live entry that
			// is not us, falling back to the redirecting peer itself.
			if r.successorVia(resp.From) {
				return nil
			}
			if !resp.From.IsZero() && resp.From.ID != r.self.ID && resp.From.Addr != r.self.Addr {
				r.adoptSuccessor(resp.From)
				return nil
			}
			return fmt.Errorf("chordring: join via %s: redirected to self at %s", bootstrap, cur)
		}
		r.h.Note(resp.Next)
		cur = resp.Next.Addr
	}
	return fmt.Errorf("chordring: join via %s: exceeded %d hops", bootstrap, r.maxHops)
}

// successorVia asks peer for its predecessor/successor-list view and
// adopts the clockwise-closest live entry that is not this node as the
// provisional successor (stabilization settles the exact position, as
// in the resolved-to-self join path). It is the join walk's escape
// hatch when stale position-aliased pointers route the joiner's own id
// back at it; returns false when the peer is unreachable or its view
// contains no usable contact.
func (r *Ring) successorVia(peer wire.Contact) bool {
	if peer.Addr == "" || peer.Addr == r.self.Addr {
		return false
	}
	resp, err := r.h.Call(peer.Addr, &wire.Message{Type: wire.TGetPred})
	if err != nil {
		return false
	}
	r.h.Note(resp.From)
	// resp.From is the responder's authoritative self-contact, so the
	// caller-supplied peer (which may be an address-only bootstrap
	// stub with no id) never needs to be a candidate itself.
	cands := make([]wire.Contact, 0, len(resp.Succs)+1)
	cands = append(cands, resp.Succs...)
	cands = append(cands, resp.From)
	var best wire.Contact
	for _, c := range cands {
		if c.IsZero() || c.Addr == "" || c.ID == r.self.ID || c.Addr == r.self.Addr {
			continue
		}
		if best.IsZero() || r.space.Gap(r.self.ID, c.ID) < r.space.Gap(r.self.ID, best.ID) {
			best = c
		}
	}
	if best.IsZero() {
		return false
	}
	r.adoptSuccessor(best)
	return true
}

// NextHop answers one iterative lookup step for target: either the
// final answer (done) or the closest preceding contact from the node's
// fingers, successor list, and auxiliary neighbors.
func (r *Ring) NextHop(target id.ID) (wire.Contact, bool) {
	if target == r.self.ID || r.Owns(target) {
		return r.self, true
	}
	s := r.successor()
	if s.ID == r.self.ID {
		// Ring of one: every key is ours.
		return r.self, true
	}
	if r.space.BetweenIncl(target, r.self.ID, s.ID) {
		return s, true
	}
	next := r.closestPreceding(target)
	if next.ID == r.self.ID {
		// Defensive: cannot happen while a distinct successor exists,
		// but never redirect a caller to ourselves.
		return s, true
	}
	return next, false
}

// LookupRequest implements ring.Routing: Chord lookups step with
// TFindSucc.
func (r *Ring) LookupRequest(target id.ID) *wire.Message {
	return &wire.Message{Type: wire.TFindSucc, Target: target}
}

// ParseLookupResponse implements ring.Routing: a find-succ response is
// either the final answer or a single redirect candidate.
func (r *Ring) ParseLookupResponse(target id.ID, resp *wire.Message) (wire.Contact, bool, []wire.Contact) {
	if resp.Done {
		return resp.Found, true, nil
	}
	return wire.Contact{}, false, []wire.Contact{resp.Next}
}

// Distance implements ring.Routing: the clockwise gap remaining from
// the candidate to the target, so the α-parallel driver prefers the
// closest preceding contact exactly as closestPreceding does.
func (r *Ring) Distance(target, candidate id.ID) uint64 {
	return r.space.Gap(candidate, target)
}

// Candidates returns next-hop candidates for target, best first: the
// NextHop pick, then the rest of the `(self, target]` window — fingers,
// successor list, and auxiliary neighbors — by descending gap from
// self, i.e. closest to the target first.
func (r *Ring) Candidates(target id.ID, max int) []wire.Contact {
	hop, done := r.NextHop(target)
	out := []wire.Contact{hop}
	if done || max <= 1 {
		return out
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	gt := r.space.Gap(r.self.ID, target)
	type cand struct {
		c wire.Contact
		g uint64
	}
	seen := map[id.ID]bool{hop.ID: true, r.self.ID: true}
	var cs []cand
	add := func(c wire.Contact) {
		if c.IsZero() || seen[c.ID] {
			return
		}
		g := r.space.Gap(r.self.ID, c.ID)
		if g == 0 || g > gt {
			return // self or overshoot
		}
		seen[c.ID] = true
		cs = append(cs, cand{c, g})
	}
	for i, ok := range r.hasFinger {
		if ok {
			add(r.fingers[i])
		}
	}
	for _, s := range r.succs {
		add(s)
	}
	for _, a := range r.aux {
		add(a)
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i].g > cs[j].g })
	for _, x := range cs {
		if len(out) >= max {
			break
		}
		out = append(out, x.c)
	}
	return out
}

// Owns reports whether this node is currently responsible for key: its
// predecessor is known and key lies in (pred, self]. An owner claims
// its keys outright in the lookup path — in particular when a
// position-aliased aux pointer lands a lookup directly on the owner,
// whose successor-interval rule alone would route the query all the way
// around the ring.
func (r *Ring) Owns(key id.ID) bool {
	r.mu.RLock()
	p, ok := r.pred, r.hasPred
	r.mu.RUnlock()
	if !ok || p.ID == r.self.ID {
		return false
	}
	return r.space.BetweenIncl(key, p.ID, r.self.ID)
}

// Responsible implements ring.Routing: `(pred, self]` when a
// predecessor is known, everything on a ring of one, unknown otherwise.
func (r *Ring) Responsible() (func(id.ID) bool, bool) {
	r.mu.RLock()
	p, hasPred := r.pred, r.hasPred
	alone := r.succs[0].ID == r.self.ID
	r.mu.RUnlock()
	switch {
	case hasPred && p.ID != r.self.ID:
		pid := p.ID
		return func(k id.ID) bool { return r.space.BetweenIncl(k, pid, r.self.ID) }, true
	case !hasPred && alone:
		// Ring of one: every key is ours.
		return func(id.ID) bool { return true }, true
	}
	return nil, false
}

// HandleRequest answers the Chord maintenance RPCs.
func (r *Ring) HandleRequest(m *wire.Message, resp *wire.Message) bool {
	switch m.Type {
	case wire.TGetPred:
		resp.Type = wire.TGetPredResp
		resp.Pred, resp.HasPred = r.Predecessor()
		succs := r.succList()
		if len(succs) > wire.MaxSuccs {
			succs = succs[:wire.MaxSuccs]
		}
		resp.Succs = succs
	case wire.TNotify:
		r.notify(m.From)
		resp.Type = wire.TNotifyAck
	default:
		return false
	}
	return true
}

// Stabilize runs one maintenance round: refresh the successor (adopting
// its predecessor when that node sits between), notify it, rebuild the
// successor list from its list, and check the predecessor's liveness.
func (r *Ring) Stabilize() {
	s := r.successor()
	if s.ID == r.self.ID {
		// Ring of one: adopt any known predecessor as successor.
		if p, ok := r.Predecessor(); ok && p.ID != r.self.ID {
			r.adoptSuccessor(p)
		}
		return
	}
	resp, err := r.h.Call(s.Addr, &wire.Message{Type: wire.TGetPred})
	if err != nil {
		r.dropSuccessor(s.ID)
		return
	}
	cand := s
	if resp.HasPred && resp.Pred.ID != r.self.ID && resp.Pred.Addr != "" &&
		r.space.Between(resp.Pred.ID, r.self.ID, s.ID) {
		// A closer successor exists — verify it answers before
		// adopting it (chordproto consults liveness here too).
		if _, err := r.h.Call(resp.Pred.Addr, &wire.Message{Type: wire.TPing}); err == nil {
			r.adoptSuccessor(resp.Pred)
			cand = resp.Pred
		}
	}
	if _, err := r.h.Call(cand.Addr, &wire.Message{Type: wire.TNotify}); err != nil {
		r.dropSuccessor(cand.ID)
		return
	}
	// Successor-list refresh: our successor first, then its list.
	list := make([]wire.Contact, 0, r.maxSucc+2)
	list = append(list, cand)
	if cand.ID != s.ID {
		list = append(list, s)
	}
	list = append(list, resp.Succs...)
	r.setSuccs(list)

	// Predecessor liveness.
	if p, ok := r.Predecessor(); ok && p.ID != r.self.ID && p.Addr != "" {
		if _, err := r.h.Call(p.Addr, &wire.Message{Type: wire.TPing}); err != nil {
			r.clearPred()
		}
	}
}

// RepairTable refreshes RepairBatch fingers per call (one by default),
// round-robin: finger i is the first node in (self+2^i, self+2^{i+1}],
// found with an iterative lookup; an out-of-interval answer clears the
// entry (chordproto's interval rule). Batching divides the table's full
// refresh time by issuing several independent lookups per tick — the
// lever that pulls large-ring cold-start convergence down from minutes.
func (r *Ring) RepairTable() {
	for b := 0; b < r.repairBatch; b++ {
		r.mu.Lock()
		i := r.nextFinger
		r.nextFinger = (r.nextFinger + 1) % r.space.Bits()
		r.mu.Unlock()
		start := r.space.Add(r.self.ID, (uint64(1)<<i)+1)
		c, _, err := r.h.Resolve(start)
		if err != nil {
			continue
		}
		g := r.space.Gap(r.self.ID, c.ID)
		if c.ID != r.self.ID && g > uint64(1)<<i && g <= uint64(1)<<(i+1) {
			r.setFinger(i, c, true)
		} else {
			r.setFinger(i, wire.Contact{}, false)
		}
	}
}

// Heal folds a live contact rediscovered by the runtime's heal probe
// back into the ring: adopt it as successor when it sits between this
// node and the current successor, or unconditionally on a ring of one.
// This is the partition-repair mechanism — stabilize and notify only
// ever talk to nodes already in the routing state, so two rings that
// diverged while a partition was up would otherwise never re-merge.
func (r *Ring) Heal(live wire.Contact) {
	if live.IsZero() || live.ID == r.self.ID || live.Addr == "" {
		return
	}
	s := r.successor()
	if s.ID == r.self.ID || r.space.Between(live.ID, r.self.ID, s.ID) {
		r.adoptSuccessor(live)
	}
}

// DropPeer retires an unreachable peer from the successor list and the
// auxiliary set (fingers heal on their own round-robin refresh).
func (r *Ring) DropPeer(x id.ID) {
	r.RemoveAux(x)
	r.dropSuccessor(x)
}

// Successors returns a copy of the successor list.
func (r *Ring) Successors() []wire.Contact { return r.succList() }

// Predecessor returns the current predecessor pointer.
func (r *Ring) Predecessor() (wire.Contact, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.pred, r.hasPred
}

// TableList returns the populated fingers, deduplicated, ascending by
// interval.
func (r *Ring) TableList() []wire.Contact {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []wire.Contact
	for i, ok := range r.hasFinger {
		if !ok {
			continue
		}
		f := r.fingers[i]
		if len(out) > 0 && out[len(out)-1].ID == f.ID {
			continue
		}
		out = append(out, f)
	}
	return out
}

// TableSize counts distinct populated finger entries.
func (r *Ring) TableSize() int { return len(r.TableList()) }

// CoreIDs returns the node's core neighbor set — fingers and successor
// list, self excluded — the N_s of eq. 1, fed to the selection
// maintainer.
func (r *Ring) CoreIDs() []id.ID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	seen := make(map[id.ID]bool)
	var out []id.ID
	add := func(c wire.Contact) {
		if c.IsZero() || c.ID == r.self.ID || seen[c.ID] {
			return
		}
		seen[c.ID] = true
		out = append(out, c.ID)
	}
	for i, ok := range r.hasFinger {
		if ok {
			add(r.fingers[i])
		}
	}
	for _, s := range r.succs {
		add(s)
	}
	return out
}

// Aux returns a copy of the auxiliary set.
func (r *Ring) Aux() []wire.Contact {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]wire.Contact(nil), r.aux...)
}

// SetAux installs the auxiliary neighbor set.
func (r *Ring) SetAux(aux []wire.Contact) {
	r.mu.Lock()
	r.aux = append(aux[:0:0], aux...)
	r.mu.Unlock()
}

// RemoveAux drops one auxiliary entry (its liveness ping failed).
func (r *Ring) RemoveAux(dead id.ID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.aux[:0]
	for _, a := range r.aux {
		if a.ID != dead {
			out = append(out, a)
		}
	}
	r.aux = out
}

// successor returns the first entry of the successor list (self when
// alone).
func (r *Ring) successor() wire.Contact {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.succs[0]
}

func (r *Ring) succList() []wire.Contact {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]wire.Contact(nil), r.succs...)
}

// setSuccs installs a new successor list: zero contacts are dropped,
// duplicates keep their first (nearest) occurrence, and the result is
// truncated to maxSucc. An empty result falls back to self.
func (r *Ring) setSuccs(list []wire.Contact) {
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := make(map[id.ID]bool, len(list))
	out := make([]wire.Contact, 0, r.maxSucc)
	for _, c := range list {
		if c.IsZero() || seen[c.ID] {
			continue
		}
		seen[c.ID] = true
		out = append(out, c)
		r.h.Note(c)
		if len(out) == r.maxSucc {
			break
		}
	}
	if len(out) == 0 {
		out = append(out, r.self)
	}
	r.succs = out
}

// adoptSuccessor prepends c as the new immediate successor.
func (r *Ring) adoptSuccessor(c wire.Contact) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.succs[0].ID == c.ID {
		r.succs[0] = c // refresh the address
		return
	}
	list := append([]wire.Contact{c}, r.succs...)
	if len(list) > r.maxSucc {
		list = list[:r.maxSucc]
	}
	r.succs = list
	r.h.Note(c)
}

// dropSuccessor removes a dead successor, falling back on the rest of
// the list (and on self as the last resort, a ring of one until the
// maintenance loops re-integrate the node).
func (r *Ring) dropSuccessor(dead id.ID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.succs[:0]
	for _, s := range r.succs {
		if s.ID != dead {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		out = append(out, r.self)
	}
	r.succs = out
}

func (r *Ring) clearPred() {
	r.mu.Lock()
	r.hasPred = false
	r.pred = wire.Contact{}
	r.mu.Unlock()
}

// notify processes a notify(c): adopt c as predecessor if there is none
// or c sits between the current predecessor and self.
func (r *Ring) notify(c wire.Contact) {
	if c.ID == r.self.ID || c.Addr == "" {
		return
	}
	r.mu.Lock()
	if !r.hasPred || r.space.Between(c.ID, r.pred.ID, r.self.ID) {
		r.pred = c
		r.hasPred = true
	}
	r.mu.Unlock()
	r.h.Note(c)
}

// setFinger installs (or clears, when ok is false) finger i.
func (r *Ring) setFinger(i uint, c wire.Contact, ok bool) {
	r.mu.Lock()
	r.hasFinger[i] = ok
	if ok {
		r.fingers[i] = c
	} else {
		r.fingers[i] = wire.Contact{}
	}
	r.mu.Unlock()
	if ok {
		r.h.Note(c)
	}
}

// closestPreceding picks the next hop for target: over fingers,
// successor list, and auxiliary neighbors, the contact with the largest
// clockwise gap from self that does not overshoot the target — the
// candidate window is (self, target], matching the simulator's routing
// (internal/chord), so an auxiliary pointer at the destination itself
// is a legal (and ideal, one-hop) next step. Falls back to the
// successor when nothing qualifies.
func (r *Ring) closestPreceding(target id.ID) wire.Contact {
	r.mu.RLock()
	defer r.mu.RUnlock()
	gt := r.space.Gap(r.self.ID, target)
	best := r.succs[0]
	bestGap := uint64(0)
	consider := func(c wire.Contact) {
		if c.IsZero() || c.ID == r.self.ID {
			return
		}
		g := r.space.Gap(r.self.ID, c.ID)
		if g == 0 || g > gt {
			return // self or overshoot
		}
		if g > bestGap {
			best, bestGap = c, g
		}
	}
	for i, ok := range r.hasFinger {
		if ok {
			consider(r.fingers[i])
		}
	}
	for _, s := range r.succs {
		consider(s)
	}
	for _, a := range r.aux {
		consider(a)
	}
	return best
}

// auxPolicy adapts core.ChordMaintainer (plus its rotating frequency
// window) to the ring.AuxMaintainer contract. It also implements
// ring.QoSSelector: the QoS path bypasses the maintainer's drift cache
// (costs change with every RTT sample, so caching on frequency drift
// alone would serve stale selections) and runs the Section V-C DP
// directly on the windowed snapshot, which is why it keeps its own copy
// of the core set. The runtime serializes calls, so no locking here.
type auxPolicy struct {
	m      *core.ChordMaintainer
	window *freq.Windowed
	space  id.Space
	self   id.ID
	k      int
	core   []id.ID
}

func (a *auxPolicy) Observe(key id.ID) { a.m.Observe(key) }
func (a *auxPolicy) Rotate()           { a.window.Rotate() }

func (a *auxPolicy) SetCore(ids []id.ID) error {
	a.core = append(ids[:0:0], ids...)
	return a.m.SetCore(ids)
}

func (a *auxPolicy) Select() ([]id.ID, error) {
	res, err := a.m.Select()
	if err != nil {
		return nil, err
	}
	return res.Aux, nil
}

// SelectQoS implements ring.QoSSelector via the Section V-C DP
// (core.SelectChordQoS), with bounds expressed in ChordDist hops.
func (a *auxPolicy) SelectQoS(cost func(id.ID) (float64, bool), bound func(id.ID) (uint, bool)) ([]id.ID, error) {
	peers, bounds := core.QoSInstance(a.window.Snapshot(), a.self, a.core, cost, bound)
	res, err := core.SelectChordQoS(a.space, a.self, a.core, peers, a.k, bounds)
	if err != nil {
		return nil, err
	}
	return res.Aux, nil
}
