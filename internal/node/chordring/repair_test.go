package chordring

import (
	"fmt"
	"testing"
	"time"

	"peercache/internal/id"
	"peercache/internal/node/ring"
	"peercache/internal/wire"
)

// stubHost satisfies ring.Host with a canned resolver so RepairTable
// can be driven without a network: Resolve answers every target with
// the first ring member clockwise of it.
type stubHost struct {
	space    id.Space
	self     wire.Contact
	members  []id.ID // sorted ascending
	resolves int
}

func (h *stubHost) Self() wire.Contact { return h.self }
func (h *stubHost) Space() id.Space    { return h.space }
func (h *stubHost) Call(addr string, req *wire.Message) (*wire.Message, error) {
	return nil, fmt.Errorf("stub: no rpc")
}
func (h *stubHost) Send(addr string, m *wire.Message)   {}
func (h *stubHost) Note(c wire.Contact)                 {}
func (h *stubHost) AddrOf(x id.ID) (string, bool)       { return "", false }
func (h *stubHost) RTTOf(x id.ID) (time.Duration, bool) { return 0, false }
func (h *stubHost) Resolve(target id.ID) (wire.Contact, int, error) {
	h.resolves++
	for _, m := range h.members {
		if m >= target {
			return wire.Contact{ID: m, Addr: fmt.Sprintf("mem/%d", m)}, 1, nil
		}
	}
	return wire.Contact{ID: h.members[0], Addr: fmt.Sprintf("mem/%d", h.members[0])}, 1, nil
}

func newTestRing(t *testing.T, h *stubHost, batch int) *Ring {
	t.Helper()
	rt, _, err := New(h, ring.Options{
		NeighborListLen: 4,
		MaxLookupHops:   32,
		WindowBuckets:   4,
		DriftThreshold:  0.05,
		RepairBatch:     batch,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rt.(*Ring)
}

// TestRepairTableBatch: one RepairTable call refreshes RepairBatch
// fingers (one resolve each), advancing the round-robin cursor by the
// batch — so a batch of b converges the full table in bits/b calls
// where the default needs bits.
func TestRepairTableBatch(t *testing.T) {
	space := id.NewSpace(8)
	members := []id.ID{10, 80, 150, 220}
	for _, batch := range []int{0, 1, 4, 8, 100} {
		h := &stubHost{space: space, self: wire.Contact{ID: 10, Addr: "mem/10"}, members: members}
		r := newTestRing(t, h, batch)
		want := batch
		if want < 1 {
			want = 1
		}
		if want > int(space.Bits()) {
			want = int(space.Bits()) // clamped: no point lapping the table in one call
		}
		r.RepairTable()
		if h.resolves != want {
			t.Errorf("batch=%d: one call made %d resolves, want %d", batch, h.resolves, want)
		}
	}
}

// TestRepairTableBatchConverges: with batch = bits, a single call
// populates exactly the fingers the converged oracle expects — the same
// entries the default cadence reaches only after bits calls.
func TestRepairTableBatchConverges(t *testing.T) {
	space := id.NewSpace(8)
	members := []id.ID{10, 80, 150, 220}
	h := &stubHost{space: space, self: wire.Contact{ID: 10, Addr: "mem/10"}, members: members}
	batched := newTestRing(t, h, int(space.Bits()))
	batched.RepairTable()

	h2 := &stubHost{space: space, self: wire.Contact{ID: 10, Addr: "mem/10"}, members: members}
	serial := newTestRing(t, h2, 1)
	for i := 0; i < int(space.Bits()); i++ {
		serial.RepairTable()
	}

	got, want := batched.TableList(), serial.TableList()
	if len(got) == 0 {
		t.Fatal("batched repair populated no fingers")
	}
	if len(got) != len(want) {
		t.Fatalf("batched table %v differs from serial %v", got, want)
	}
	for i := range got {
		if got[i].ID != want[i].ID {
			t.Fatalf("finger list diverges at %d: batched %v, serial %v", i, got, want)
		}
	}
}
