package node

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"peercache/internal/id"
	"peercache/internal/randx"
	"peercache/internal/wire"
)

// serialWalk is the pre-racing lookup loop, kept verbatim as the
// reference the α=1 driver is measured against: one probe at a time,
// hop counted per call, ending on Done, an empty answer, no progress,
// or the hop budget. The racing driver with LookupAlpha == 1 must
// reproduce it exactly — same owner, same hop count, same outcome.
func serialWalk(n *Node, target id.ID) (wire.Contact, int, error) {
	cur, done := n.rt.NextHop(target)
	if done {
		return cur, 0, nil
	}
	for hops := 0; hops < n.cfg.MaxLookupHops; {
		resp, err := n.call(cur.Addr, n.rt.LookupRequest(target))
		hops++
		if err != nil {
			n.rt.DropPeer(cur.ID)
			return wire.Contact{}, hops, fmt.Errorf("node: lookup %d at %v: %w", target, cur, err)
		}
		n.noteContact(resp.From)
		found, ok, cands := n.rt.ParseLookupResponse(target, resp)
		if ok {
			if found.IsZero() {
				return wire.Contact{}, hops, fmt.Errorf("node: lookup %d: empty answer from %v", target, cur)
			}
			n.noteContact(found)
			return found, hops, nil
		}
		if len(cands) == 0 || cands[0].IsZero() || cands[0].ID == cur.ID {
			return wire.Contact{}, hops, fmt.Errorf("node: lookup %d: no progress at %v", target, cur)
		}
		n.noteContact(cands[0])
		cur = cands[0]
	}
	return wire.Contact{}, n.cfg.MaxLookupHops, fmt.Errorf("node: lookup %d: exceeded %d hops", target, n.cfg.MaxLookupHops)
}

// On a converged, healthy overlay the α=1 driver must agree with the
// serial reference on every lookup: same owner and same hop count, from
// every source to targets across the whole space. Both paths only
// refresh routing state they already agree on, so running them back to
// back is comparison under identical state.
func TestAlphaOneMatchesSerialWalk(t *testing.T) {
	space := id.NewSpace(16)
	ids := []uint64{500, 9000, 17000, 26000, 33000, 42000, 50500, 61000}
	nodes := startCluster(t, space, ids, func(cfg *Config) {
		cfg.LookupAlpha = 1
	})
	waitConverged(t, space, nodes, 20*time.Second)

	rng := rand.New(rand.NewSource(13))
	for _, n := range nodes {
		for q := 0; q < 40; q++ {
			target := id.ID(rng.Uint64() & (space.Size() - 1))
			wantOwner, wantHops, wantErr := serialWalk(n, target)
			owner, hops, err := n.FindSuccessor(target)
			if (err == nil) != (wantErr == nil) {
				t.Fatalf("node %d target %d: driver err %v, serial err %v", n.ID(), target, err, wantErr)
			}
			if err == nil && (owner.ID != wantOwner.ID || hops != wantHops) {
				t.Fatalf("node %d target %d: driver (%d, %d hops), serial (%d, %d hops)",
					n.ID(), target, owner.ID, hops, wantOwner.ID, wantHops)
			}
		}
	}
}

// Racing cancels the losing probes of every step; a cancelled probe
// must deregister its message id instead of parking forever in the
// transport's inflight map. The regression this pins: drive thousands
// of raced lookups — each one cancelling up to α−1 stragglers — and
// require every node's inflight map to drain back to empty.
func TestRacingCancelDrainsInflight(t *testing.T) {
	space := id.NewSpace(16)
	rng := rand.New(rand.NewSource(47))
	ids := randx.UniqueIDs(rng, 8, space.Size())
	nodes := startCluster(t, space, ids, func(cfg *Config) {
		cfg.LookupAlpha = 3
	})
	waitConverged(t, space, nodes, 20*time.Second)

	for round := 0; round < 40; round++ {
		for _, n := range nodes {
			target := id.ID(rng.Uint64() & (space.Size() - 1))
			if _, _, err := n.FindSuccessor(target); err != nil {
				t.Fatalf("round %d: lookup %d from node %d: %v", round, target, n.ID(), err)
			}
		}
	}
	// Maintenance RPCs come and go; only a residue that never drains is
	// a leak.
	deadline := time.Now().Add(5 * time.Second)
	for {
		stuck := 0
		for _, n := range nodes {
			stuck += n.tr.inflightLen()
		}
		if stuck == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d inflight entries never drained after %d raced lookups", stuck, 40*len(nodes))
		}
		time.Sleep(50 * time.Millisecond)
	}
}
