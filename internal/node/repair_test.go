package node

import (
	"bytes"
	"testing"
	"time"

	"peercache/internal/id"
)

// TestStrandedReplicaRepaired: a replica-only key with no live owner —
// the aftermath of a handoff whose push never landed — is detected by
// the holder's anti-entropy round (no refresh for several periods) and
// re-homed to the key's current owner, which promotes it. The soak
// harness's "stranded" invariant rides on exactly this loop.
func TestStrandedReplicaRepaired(t *testing.T) {
	space := id.NewSpace(16)
	nodes := startCluster(t, space, []uint64{100, 20000, 40000}, func(c *Config) {
		c.ReplicateEvery = 100 * time.Millisecond
	})
	waitConverged(t, space, nodes, 10*time.Second)
	a, b, c := nodes[0], nodes[1], nodes[2]

	// Inject a replica of a key owned by b into c only, already stale:
	// no owner exists anywhere, so nothing will ever refresh it. The
	// backdated stamp stands in for the periods the key would otherwise
	// sit unrefreshed.
	key := id.ID(10000) // (100, 20000] -> b's range
	value := []byte("stranded")
	if !c.store.applyReplica(key, value, 7, time.Now().Add(-time.Hour)) {
		t.Fatal("seed replica rejected")
	}

	deadline := time.Now().Add(15 * time.Second)
	for {
		if info, ok := b.ItemDetail(key); ok && info.Owned {
			if !bytes.Equal(info.Value, value) || info.Version != 7 {
				t.Fatalf("re-homed item %q v%d, want %q v7", info.Value, info.Version, value)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("key never re-homed: b=%v c=%+v", b.Metrics(), c.Metrics())
		}
		time.Sleep(25 * time.Millisecond)
	}
	if got := c.Metrics().StrandedRepairs; got < 1 {
		t.Fatalf("holder counted %d stranded repairs, want >= 1", got)
	}
	// The whole ring can now read the key.
	got, err := a.Get(key)
	if err != nil || !bytes.Equal(got.Value, value) {
		t.Fatalf("get after repair: %+v, %v", got, err)
	}
}

// TestFreshReplicaNotRepaired: a replica the owner is actively
// refreshing must never trigger repair traffic — the staleness window
// is what separates normal replication from stranding.
func TestFreshReplicaNotRepaired(t *testing.T) {
	space := id.NewSpace(16)
	nodes := startCluster(t, space, []uint64{100, 20000, 40000}, func(c *Config) {
		c.ReplicateEvery = 100 * time.Millisecond
	})
	waitConverged(t, space, nodes, 10*time.Second)
	a := nodes[0]

	key := id.ID(10000)
	if _, err := a.Put(key, []byte("healthy")); err != nil {
		t.Fatalf("put: %v", err)
	}
	// Let several replication periods elapse: the owner keeps the
	// replica fresh, so no holder should ever classify it as stranded.
	time.Sleep(600 * time.Millisecond)
	for _, n := range nodes {
		if got := n.Metrics().StrandedRepairs; got != 0 {
			t.Fatalf("node %d repaired %d healthy replicas", n.ID(), got)
		}
	}
}
