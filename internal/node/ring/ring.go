// Package ring defines the contract between the protocol-agnostic live
// node runtime (internal/node) and a pluggable routing geometry. The
// runtime owns everything a geometry should not care about — the
// datagram transport, RPC timeouts and retries, the iterative lookup
// driver, the kv data plane, replication, the contact-address cache,
// and the tickers — while the geometry owns the routing state and the
// decisions only it can make: the next hop toward a key, whether this
// node is responsible for a key, which wire messages each maintenance
// tick sends, and how incoming protocol requests mutate the table.
//
// Three geometries implement the contract today: chordring (successor
// list + finger table + `(pred, self]` ownership, the default),
// pastryring (leaf set + prefix routing table + numeric-closeness
// ownership), and kadring (XOR-metric k-buckets + closest-node
// ownership). Each pairs its Routing with an AuxMaintainer that turns
// the node's observed lookup frequencies into the paper's auxiliary
// neighbor set — core.ChordMaintainer for the ring distance metric,
// core.PastryMaintainer for the prefix metric, core.KademliaMaintainer
// for the XOR bucket ladder — so the peer-caching layer rides on top
// of any geometry unchanged.
//
// Adding a third geometry means implementing Routing (and, if the
// paper's selection framework has a metric for it, an AuxMaintainer)
// and passing its Factory as node.Config.NewRing; the runtime, data
// plane, cluster harness, and cmd/p2pnode need no changes. See
// DESIGN.md's "Routing/AuxMaintainer contract" section for the
// step-by-step recipe.
package ring

import (
	"time"

	"peercache/internal/id"
	"peercache/internal/wire"
)

// Host is the runtime surface a Routing implementation programs
// against. All methods are safe for concurrent use. Call and Resolve
// perform network I/O and must not be used from HandleRequest (which
// runs on the read loop); Send is fire-and-forget and is safe anywhere.
type Host interface {
	// Self returns this node's own contact.
	Self() wire.Contact
	// Space returns the identifier space.
	Space() id.Space
	// Call issues one RPC with the node's timeout/retry policy.
	Call(addr string, req *wire.Message) (*wire.Message, error)
	// Send transmits one datagram without waiting for a response. The
	// geometry must fill every field including From.
	Send(addr string, m *wire.Message)
	// Resolve runs a full iterative lookup for target through the
	// runtime's retry/hop-count machinery (chordring's finger refresh
	// uses it; a geometry that repairs purely by gossip never needs it).
	Resolve(target id.ID) (wire.Contact, int, error)
	// Note records a contact in the runtime's address cache, the pool
	// the heal probe samples and aux aliasing resolves against.
	Note(c wire.Contact)
	// AddrOf looks up a cached address for x.
	AddrOf(x id.ID) (string, bool)
	// RTTOf looks up the runtime's smoothed RTT estimate for x —
	// measured on every correlated RPC the transport completes. False
	// until at least one response from x has been timed (or after the
	// contact was evicted from the cache).
	RTTOf(x id.ID) (time.Duration, bool)
}

// Options carries the geometry-relevant slice of node.Config.
type Options struct {
	// NeighborListLen bounds the geometry's near-neighbor list: the
	// successor list in Chord, one leaf-set side in Pastry.
	NeighborListLen int
	// BucketSize bounds one k-bucket in Kademlia (0 means the
	// geometry's default, 20); the ring geometries ignore it.
	BucketSize int
	// MaxLookupHops bounds join walks and lookups.
	MaxLookupHops int
	// AuxCount is k, the auxiliary-neighbor budget.
	AuxCount int
	// WindowBuckets and DriftThreshold parameterize the AuxMaintainer's
	// frequency window and recomputation trigger.
	WindowBuckets  int
	DriftThreshold float64
	// RepairBatch is how many long-range table entries one RepairTable
	// call refreshes (0 or 1: one per call, the historical behavior).
	// Chord honors it — each extra finger costs one iterative lookup per
	// tick but divides the table's full refresh time, which dominates
	// cold-start convergence at large n. Pastry and Kademlia repair by
	// row exchange / bucket refresh and ignore it.
	RepairBatch int
}

// Routing is a live routing geometry. The runtime calls NextHop,
// Owns, Responsible, and HandleRequest from the read loop and from
// concurrent lookups, and the maintenance methods from its tickers, so
// implementations guard their state with their own lock and never
// perform I/O except through the Host — and never from HandleRequest.
type Routing interface {
	// Protocol names the geometry ("chord", "pastry"); surfaced in
	// metrics and logs.
	Protocol() string

	// Join integrates the node into an existing overlay through a peer
	// at bootstrap. It must detect a duplicate identifier and return an
	// error without corrupting the remote ring.
	Join(bootstrap string) error

	// NextHop answers one step of an iterative lookup: the contact to
	// forward to, or (with done) the contact that resolves target. The
	// runtime uses it both to answer TFindSucc from peers and as the
	// first step of its own lookups; auxiliary entries installed via
	// SetAux must be considered here — that splice is the paper's whole
	// mechanism.
	NextHop(target id.ID) (hop wire.Contact, done bool)

	// LookupRequest returns the wire request that advances an iterative
	// lookup for target by one step at a remote peer: TFindSucc for the
	// ring geometries, TFindNode for Kademlia. The runtime's lookup
	// driver fills MsgID and From.
	LookupRequest(target id.ID) *wire.Message

	// ParseLookupResponse interprets one peer's answer to LookupRequest:
	// done with the resolving contact, or further candidates to probe
	// (for the ring geometries the single redirect contact, for Kademlia
	// the closest-contact list). The geometry may fold learned contacts
	// into its own table — the call runs off the read loop — but must
	// not perform I/O. The driver validates candidates (drops zero
	// contacts, itself, and peers it already probed).
	ParseLookupResponse(target id.ID, resp *wire.Message) (found wire.Contact, done bool, candidates []wire.Contact)

	// Distance ranks lookup candidates for target — smaller is closer:
	// clockwise gap from the candidate to target for Chord, circular
	// distance for Pastry, XOR for Kademlia. The α-parallel lookup
	// driver keeps its probe frontier ordered by it.
	Distance(target, candidate id.ID) uint64

	// Candidates returns up to max distinct next-hop candidates for
	// target in the geometry's preference order, best first; when a
	// lookup is not already done, the first entry must be the same
	// contact NextHop would return, so an α=1 lookup reproduces the
	// serial probe sequence exactly. The driver seeds its frontier from
	// it, and the runtime answers FindValue redirects with it.
	Candidates(target id.ID, max int) []wire.Contact

	// Owns reports whether this node is currently responsible for key.
	// The lookup path uses it so an owner claims its keys outright (in
	// particular when a position-aliased aux pointer lands a lookup
	// directly on the owner).
	Owns(key id.ID) bool

	// Responsible returns the data plane's authority predicate for
	// store reconciliation, or ok=false while the geometry cannot yet
	// tell (e.g. Chord before a predecessor is known) — the store then
	// skips promotions and demotions for the round.
	Responsible() (pred func(key id.ID) bool, ok bool)

	// HandleRequest answers a geometry-specific request (for Chord
	// TGetPred/TNotify, for Pastry TRowExchange/TLeafProbe) by filling
	// resp, whose MsgID and From the runtime has set. It returns false
	// for types the geometry does not own, and must not block: local
	// state (plus at most Host.Note) and one reply only — never Call,
	// Send, or Resolve, which would stall the read loop.
	HandleRequest(req *wire.Message, resp *wire.Message) bool

	// Stabilize runs one near-neighbor maintenance round (Chord:
	// successor/predecessor stabilization; Pastry: leaf-set probes).
	Stabilize()

	// RepairTable runs one long-range-table maintenance step (Chord:
	// fix one finger; Pastry: probe one prefix-table entry).
	RepairTable()

	// Heal offers a live contact rediscovered by the runtime's heal
	// probe; the geometry folds it back in if it improves the table.
	Heal(live wire.Contact)

	// DropPeer retires an unreachable peer from all routing state.
	DropPeer(x id.ID)

	// Successors returns the contacts that replicas of owned items go
	// to, nearest first (Chord: the successor list; Pastry: the
	// clockwise leaf-set side). Empty when the node is alone.
	Successors() []wire.Contact
	// Predecessor returns the nearest counter-clockwise neighbor.
	Predecessor() (wire.Contact, bool)

	// TableList returns the populated long-range table entries.
	TableList() []wire.Contact
	// TableSize is len(TableList()) without the copy, for metrics.
	TableSize() int

	// CoreIDs returns the geometry's core neighbor set N_s (eq. 1 of
	// the paper) — every peer the table routes through, self excluded —
	// fed to the AuxMaintainer before each selection.
	CoreIDs() []id.ID

	// Aux, SetAux, and RemoveAux manage the installed auxiliary
	// neighbor set A_s. The runtime owns selection and liveness; the
	// geometry only stores the set and splices it into NextHop.
	Aux() []wire.Contact
	SetAux(aux []wire.Contact)
	RemoveAux(x id.ID)
}

// AuxMaintainer is the selection policy behind a geometry's auxiliary
// set: it accumulates the node's lookup-frequency observations and
// recomputes the optimal k auxiliary ids on demand. The runtime
// serializes all calls under one mutex, so implementations need no
// internal locking.
type AuxMaintainer interface {
	// Observe records one lookup for key (the key's own ring position,
	// not its owner's id — see node.Lookup).
	Observe(key id.ID)
	// SetCore replaces the core neighbor set the selection works
	// around. The runtime deduplicates no-op updates before calling.
	SetCore(core []id.ID) error
	// Select returns the currently optimal auxiliary ids. It returns
	// core.ErrNoNeighbors while there is nothing to select from (no
	// core and nothing observed); the runtime treats that as "keep
	// waiting", not as failure.
	Select() ([]id.ID, error)
	// Rotate ages the frequency window one bucket (called once per aux
	// recomputation tick).
	Rotate()
}

// QoSSelector is the optional AuxMaintainer extension for geometries
// whose selection framework has a delay-bound-constrained variant (the
// paper's Section IV-D for the prefix metrics, V-C for Chord; all three
// shipped geometries implement it). The runtime probes for it with a
// type assertion when Config.AuxQoS is on and serializes calls exactly
// as it does the base interface.
type QoSSelector interface {
	// SelectQoS is Select with a latency model. cost returns the
	// runtime's relative latency weight for a peer (any unit, as long
	// as it is consistent — the live node feeds smoothed RTTs); peers
	// without a cost (false) weigh 1. Each observed peer's frequency is
	// multiplied by its cost, so the objective Σ f(v)·d(v, N∪A) becomes
	// expected *latency*, not expected hops. bound returns a hard
	// geometry-distance bound for a peer (true to constrain it): the
	// selected set must bring that peer within the bound — bound 0
	// forces a direct pointer. A nil bound callback constrains nothing
	// — the cost-weighted unconstrained selection (the runtime's
	// infeasibility fallback). Returns an error wrapping
	// core.ErrInfeasible when the bounds cannot all be met with the
	// configured aux budget; the caller decides the fallback.
	//
	// With every cost false and every bound false, SelectQoS must
	// return a set with the same objective value as Select — pinned by
	// the live-path property test in internal/node.
	SelectQoS(cost func(id.ID) (float64, bool), bound func(id.ID) (uint, bool)) ([]id.ID, error)
}

// Factory builds a geometry bound to a Host. It must not perform
// network I/O: the transport is not running yet when it is called.
type Factory func(h Host, o Options) (Routing, AuxMaintainer, error)
