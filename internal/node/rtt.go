package node

// Per-contact smoothed RTT. Every correlated RPC that completes is a
// free latency measurement: the transport knows exactly when an
// attempt's datagram went out and when its paired response arrived, and
// the response's From identifies the peer. The node folds those samples
// into a TCP-style EWMA per contact, stored alongside the address cache
// under the same lock so eviction stays atomic: forgetAddr drops a
// peer's estimate with its address, never leaving an orphaned estimate
// (the soak suite's latency-sane invariant).
//
// The estimates are the live runtime's cost model for the paper's QoS
// selection (recomputeAux's AuxQoS mode weights observed lookup
// frequencies by measured RTT and bounds far peers), and are surfaced
// through ring.Host.RTTOf and the p2pnode metrics JSON.

import (
	"sort"
	"time"

	"peercache/internal/id"
	"peercache/internal/wire"
)

// rttAlpha is the EWMA smoothing gain — TCP's SRTT constant (RFC 6298):
// each new sample moves the estimate 1/8 of the way to itself, heavy
// enough to converge in a dozen samples, light enough to ride out one
// freak scheduling stall.
const rttAlpha = 0.125

// rttEstimate is one contact's smoothed RTT state.
type rttEstimate struct {
	srtt    float64 // smoothed RTT, nanoseconds
	samples uint64
}

// observeRTT folds one measured sample into the peer's estimate. A peer
// that answered an RPC is by definition a live, routable contact, so
// the address cache learns it in the same critical section — keeping
// the invariant that every RTT estimate has a backing address entry.
// Non-positive samples, self, and zero contacts are ignored.
func (n *Node) observeRTT(c wire.Contact, sample time.Duration) {
	if sample <= 0 || c.IsZero() || c.ID == n.self.ID || len(c.Addr) > wire.MaxAddrLen {
		return
	}
	n.addrMu.Lock()
	n.addrs[c.ID] = c.Addr
	e := n.rtt[c.ID]
	if e.samples == 0 {
		e.srtt = float64(sample)
	} else {
		e.srtt += rttAlpha * (float64(sample) - e.srtt)
	}
	e.samples++
	n.rtt[c.ID] = e
	n.addrMu.Unlock()
	n.rttSamples.Add(1)
}

// ContactRTT returns the smoothed RTT to x, if any sample has ever been
// folded in (and the contact has not been evicted since).
func (n *Node) ContactRTT(x id.ID) (time.Duration, bool) {
	n.addrMu.RLock()
	e, ok := n.rtt[x]
	n.addrMu.RUnlock()
	if !ok || e.samples == 0 {
		return 0, false
	}
	return time.Duration(e.srtt), true
}

// ContactRTTInfo is one contact's latency snapshot, as surfaced in the
// p2pnode metrics JSON.
type ContactRTTInfo struct {
	ID      id.ID
	Addr    string
	SRTT    time.Duration
	Samples uint64
}

// ContactRTTs snapshots every tracked estimate, sorted by id for
// deterministic output.
func (n *Node) ContactRTTs() []ContactRTTInfo {
	n.addrMu.RLock()
	out := make([]ContactRTTInfo, 0, len(n.rtt))
	for x, e := range n.rtt {
		out = append(out, ContactRTTInfo{
			ID:      x,
			Addr:    n.addrs[x],
			SRTT:    time.Duration(e.srtt),
			Samples: e.samples,
		})
	}
	n.addrMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
