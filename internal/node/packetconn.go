package node

import (
	"fmt"
	"net"
)

// PacketConn is the datagram transport the node runtime depends on. It
// is the seam between the protocol machinery (transport.go, node.go) and
// the medium datagrams actually cross: production nodes run over real
// UDP sockets (ListenUDP, selected by cmd/p2pnode), while tests run
// whole clusters over internal/memnet's in-process switchboard, which
// satisfies this interface structurally without importing this package.
//
// Addresses are opaque strings. The runtime never parses them — it only
// compares them and hands them back to WriteTo — so a provider is free
// to use "host:port", "mem/7", or anything else, as long as the string
// a peer advertises (its LocalAddr) routes back to it on the same
// network.
//
// Semantics every provider must honor, because the retry and shutdown
// logic is built on them:
//
//   - Delivery is best-effort and unordered, like UDP. Loss, duplication
//     and reordering are all legal; the transport's timeout/retry policy
//     and MsgID correlation absorb them.
//   - ReadFrom blocks until a datagram arrives or the endpoint is
//     closed; after Close it must return an error satisfying
//     errors.Is(err, net.ErrClosed) so the read loop knows to exit
//     rather than spin.
//   - WriteTo never blocks indefinitely. A send the network cannot
//     deliver (unroutable address, full receiver) is dropped, not an
//     error — over a datagram network a failed send and a lost packet
//     are indistinguishable to the caller anyway.
//   - Close unblocks any in-flight ReadFrom and makes subsequent
//     WriteTo calls fail; it is idempotent.
type PacketConn interface {
	// ReadFrom blocks for the next datagram, copies it into p, and
	// returns its length and the sender's address.
	ReadFrom(p []byte) (n int, from string, err error)
	// WriteTo sends one datagram to addr, best-effort.
	WriteTo(p []byte, addr string) (n int, err error)
	// LocalAddr returns the bound address peers can reach this
	// endpoint at.
	LocalAddr() string
	// Close shuts the endpoint down, unblocking ReadFrom.
	Close() error
}

// Listener opens a PacketConn bound to addr. Config.Listen takes one;
// ListenUDP is the production implementation.
type Listener func(addr string) (PacketConn, error)

// ListenUDP is the real-network provider: it binds a UDP socket and
// adapts *net.UDPConn to the PacketConn contract. cmd/p2pnode selects
// it explicitly; it is also the default when Config.Listen is nil, so
// library users keep the PR-1 behavior unchanged.
func ListenUDP(addr string) (PacketConn, error) {
	laddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("node: listen address %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, err
	}
	return &udpConn{conn: conn}, nil
}

// udpConn adapts *net.UDPConn. Address strings are the usual
// "host:port" form; WriteTo re-resolves them per send, which for
// literal ip:port strings is a cheap parse (no DNS).
type udpConn struct {
	conn *net.UDPConn
}

func (u *udpConn) ReadFrom(p []byte) (int, string, error) {
	n, src, err := u.conn.ReadFromUDP(p)
	if err != nil {
		return n, "", err
	}
	return n, src.String(), nil
}

func (u *udpConn) WriteTo(p []byte, addr string) (int, error) {
	dst, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return 0, fmt.Errorf("node: send to %q: %w", addr, err)
	}
	return u.conn.WriteToUDP(p, dst)
}

func (u *udpConn) LocalAddr() string { return u.conn.LocalAddr().String() }

func (u *udpConn) Close() error { return u.conn.Close() }
