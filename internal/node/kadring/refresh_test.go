package kadring

import (
	"fmt"
	"testing"
	"time"

	"peercache/internal/id"
	"peercache/internal/node/ring"
	"peercache/internal/wire"
)

// fakeHost wires Rings together in memory for white-box maintenance
// tests. Call dispatches to the addressed ring's HandleRequest exactly
// as the runtime's read loop would (answering the runtime-owned TPing
// itself, noting the requester only in an address cache the way
// node.noteContact does — geometries learn pingers from protocol
// answers, not from pings). Resolve fails the test outright: bucket
// refresh must not ride the runtime's lookup driver, whose
// done-at-self short-circuit is exactly what an empty bucket triggers.
type fakeHost struct {
	t     *testing.T
	self  wire.Contact
	space id.Space
	net   map[string]*Ring
}

func (h *fakeHost) Self() wire.Contact { return h.self }
func (h *fakeHost) Space() id.Space    { return h.space }

func (h *fakeHost) Call(addr string, req *wire.Message) (*wire.Message, error) {
	peer, ok := h.net[addr]
	if !ok {
		return nil, fmt.Errorf("fakehost: no listener at %s", addr)
	}
	req.From = h.self
	resp := &wire.Message{From: peer.self}
	if req.Type == wire.TPing {
		resp.Type = wire.TPong
		return resp, nil
	}
	if !peer.HandleRequest(req, resp) {
		return nil, fmt.Errorf("fakehost: node %d rejected request type %d", peer.self.ID, req.Type)
	}
	return resp, nil
}

func (h *fakeHost) Send(addr string, m *wire.Message) {}

func (h *fakeHost) Resolve(target id.ID) (wire.Contact, int, error) {
	h.t.Errorf("bucket maintenance called Host.Resolve(%d): refresh must walk FIND_NODE itself", target)
	return wire.Contact{}, 0, fmt.Errorf("fakehost: resolve unavailable")
}

func (h *fakeHost) Note(c wire.Contact)                 {}
func (h *fakeHost) AddrOf(x id.ID) (string, bool)       { return "", false }
func (h *fakeHost) RTTOf(x id.ID) (time.Duration, bool) { return 0, false }

// newTestRing builds one Ring on the shared in-memory net.
func newTestRing(t *testing.T, space id.Space, net map[string]*Ring, x id.ID) *Ring {
	t.Helper()
	self := wire.Contact{ID: x, Addr: fmt.Sprintf("fake/%d", x)}
	rt, _, err := New(&fakeHost{t: t, self: self, space: space, net: net}, ring.Options{
		NeighborListLen: 4,
		BucketSize:      4,
		MaxLookupHops:   16,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rt.(*Ring)
	net[self.Addr] = r
	return r
}

// TestRepairTableRefreshDiscoversUnknownRegion reproduces the soak
// harness's kademlia convergence failure in miniature: node A's bucket
// for C's subtree is empty, so A itself is XOR-closest to that whole
// subtree among everything A knows — any lookup A drives through the
// runtime short-circuits at done-self without a single RPC, and the
// bucket could never fill. The refresh walk must ask the network
// anyway: probing B (A's only contact) for a target in the subtree
// surfaces C from B's closest list, the walk probes C directly, and
// C's own answer — direct evidence, not hearsay — admits it.
func TestRepairTableRefreshDiscoversUnknownRegion(t *testing.T) {
	space := id.NewSpace(16)
	net := make(map[string]*Ring)
	// A = 0x0000 and B = 0x0001 share 15 leading bits; C = 0x4000
	// diverges from A at bit 1, so C belongs in A's bucket 1 and is the
	// subtree's only member.
	a := newTestRing(t, space, net, 0x0000)
	b := newTestRing(t, space, net, 0x0001)
	c := newTestRing(t, space, net, 0x4000)

	a.learn(b.self)
	b.learn(a.self)
	b.learn(c.self)
	c.learn(b.self)

	cBucket := a.bucketIndex(c.self.ID)
	if got := a.Buckets()[cBucket]; len(got) != 0 {
		t.Fatalf("precondition: A's bucket %d already holds %v", cBucket, got)
	}
	// The trap that motivates the walk: with the bucket empty, A claims
	// the whole subtree, so a driver that trusts NextHop stops here.
	// (an even probe: B = 0x0001 must not undercut A's distance on the
	// low bit)
	probe := space.SetBit(a.self.ID, 1, 1) | 0x00fe
	if hop, done := a.NextHop(probe); !done || hop.ID != a.self.ID {
		t.Fatalf("precondition: A's NextHop(%d) = %d done=%t, want done at self", probe, hop.ID, done)
	}

	// One full round-robin sweep visits every bucket once; the pass
	// over bucket 1 must run the refresh walk and admit C.
	for i := uint(0); i < space.Bits(); i++ {
		a.RepairTable()
	}
	found := false
	for _, e := range a.Buckets()[cBucket] {
		if e.ID == c.self.ID && e.Addr == c.self.Addr {
			found = true
		}
	}
	if !found {
		t.Fatalf("after a repair sweep, A's bucket %d = %v, want contact %d", cBucket, a.Buckets()[cBucket], c.self.ID)
	}
}

// TestRepairTableRefreshTopsUpUnderfullBucket pins the second half of
// the refresh contract: a bucket that is populated but short of
// bucketSize still refreshes after its LRU ping. Node A knows one of
// the two members of C's subtree; only a walk through that known
// member can surface the other, because once workload traffic stops
// nothing else ever mentions it.
func TestRepairTableRefreshTopsUpUnderfullBucket(t *testing.T) {
	space := id.NewSpace(16)
	net := make(map[string]*Ring)
	a := newTestRing(t, space, net, 0x0000)
	c1 := newTestRing(t, space, net, 0x4000)
	c2 := newTestRing(t, space, net, 0x4001)

	a.learn(c1.self)
	c1.learn(a.self)
	c1.learn(c2.self)
	c2.learn(c1.self)

	bucket := a.bucketIndex(c1.self.ID)
	if bucket != a.bucketIndex(c2.self.ID) {
		t.Fatalf("setup: %d and %d land in different buckets", c1.self.ID, c2.self.ID)
	}
	for i := uint(0); i < space.Bits(); i++ {
		a.RepairTable()
	}
	got := a.Buckets()[bucket]
	if len(got) != 2 {
		t.Fatalf("after a repair sweep, A's bucket %d = %v, want both %d and %d",
			bucket, got, c1.self.ID, c2.self.ID)
	}
}
